package hdl

import "testing"

func BenchmarkParseCounter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench.v", counterSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLexCounter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := LexAll("bench.v", counterSrc); err != nil {
			b.Fatal(err)
		}
	}
}
