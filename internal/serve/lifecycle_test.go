package serve_test

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/serve"
	"repro/internal/serve/servetest"
)

// parkedConfig builds a config whose OnAdmitted seam parks every
// admitted request until the test releases it — the deterministic
// handle the drain and queue-full tests are built on.
func parkedConfig(concurrent, depth int) (serve.Config, chan string, chan struct{}) {
	admitted := make(chan string, 16)
	release := make(chan struct{}, 16)
	cfg := serve.Config{
		Concurrency:   1,
		MaxConcurrent: concurrent,
		QueueDepth:    depth,
		OnAdmitted: func(endpoint string) {
			admitted <- endpoint
			<-release
		},
	}
	return cfg, admitted, release
}

// TestDrainGraceful: SIGTERM semantics end to end. A request admitted
// before the drain runs to completion and answers 200; /healthz flips
// to 503 the moment the drain starts; new requests are refused with
// 503; and the HTTP shutdown returns once the in-flight handler is
// done.
func TestDrainGraceful(t *testing.T) {
	cfg, admitted, release := parkedConfig(2, 4)
	h := servetest.Start(t, cfg)
	cl := h.Client(false)
	req := servetest.PaperRequest(t, "alpha", 2)

	if code, err := cl.Healthz(context.Background()); err != nil || code != http.StatusOK {
		t.Fatalf("pre-drain healthz = %d, %v", code, err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, err := cl.Measure(context.Background(), req)
		inflight <- err
	}()
	<-admitted // the request holds a slot and is parked mid-handler

	h.Server.StartDrain()

	if code, err := cl.Healthz(context.Background()); err != nil || code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, %v; want 503", code, err)
	}
	if _, err := cl.Measure(context.Background(), req); err == nil {
		t.Fatal("new request during drain succeeded, want 503")
	} else {
		var st *servetest.Status
		if !errors.As(err, &st) || st.Code != http.StatusServiceUnavailable {
			t.Fatalf("new request during drain: %v, want HTTP 503", err)
		}
	}

	// Release the parked in-flight request: it must complete normally
	// despite the drain.
	release <- struct{}{}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request during drain: %v, want success", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	if m := h.Server.Metrics(); !m.Draining || m.Drained == 0 {
		t.Fatalf("post-drain metrics = draining:%t drained:%d", m.Draining, m.Drained)
	}
}

// TestQueueFull429: with the single slot parked and the depth-1 queue
// occupied, the next request is shed immediately with 429 and a
// Retry-After hint; once the slot frees, the queued request is served
// normally (FIFO, no starvation).
func TestQueueFull429(t *testing.T) {
	cfg, admitted, release := parkedConfig(1, 1)
	h := servetest.Start(t, cfg)
	cl := h.Client(false)
	req := servetest.PaperRequest(t, "alpha", 2)

	first := make(chan error, 1)
	go func() {
		_, err := cl.Measure(context.Background(), req)
		first <- err
	}()
	<-admitted // slot held, parked

	second := make(chan error, 1)
	go func() {
		_, err := cl.Measure(context.Background(), req)
		second <- err
	}()
	// Wait until the second request actually occupies the queue.
	for h.Server.Metrics().Queued != 1 {
		time.Sleep(time.Millisecond)
	}

	_, err := cl.Measure(context.Background(), req)
	var st *servetest.Status
	if !errors.As(err, &st) || st.Code != http.StatusTooManyRequests {
		t.Fatalf("over-depth request: %v, want HTTP 429", err)
	}
	if st.RetryAfter == "" {
		t.Fatal("429 response missing Retry-After")
	}

	release <- struct{}{} // first completes, slot hands to second
	if err := <-first; err != nil {
		t.Fatalf("parked first request: %v", err)
	}
	<-admitted // second now admitted
	release <- struct{}{}
	if err := <-second; err != nil {
		t.Fatalf("queued second request: %v, want success after hand-off", err)
	}
	if m := h.Server.Metrics(); m.Rejected != 1 || m.Measures != 2 {
		t.Fatalf("metrics rejected=%d measures=%d, want 1/2", m.Rejected, m.Measures)
	}
}

// TestRequestTimeoutCancelsSynthesis: a request whose timeout_ms
// expires mid-batch gets 504, and — the part that needs the ctx
// plumbing all the way down — synthesis actually stopped: the session
// synthesized strictly fewer signatures than the full batch needs.
// The same request without a timeout then succeeds on the same daemon
// with bit-identical results, proving the abandoned flights were
// evicted rather than left poisoning the shared table.
func TestRequestTimeoutCancelsSynthesis(t *testing.T) {
	req := servetest.GeneratedRequest(t, "alpha", 64, 9)
	opts := measure.Options{Concurrency: 1}
	ref := servetest.Reference(t, req, opts)
	fullSynth := servetest.ReferenceSynth(t, req, opts)

	h := servetest.Start(t, serve.Config{Concurrency: 1, MaxConcurrent: 2})
	cl := h.Client(false)

	timed := &serve.Request{Tenant: req.Tenant, Sources: req.Sources, Units: req.Units, TimeoutMS: 30}
	_, err := cl.Measure(context.Background(), timed)
	var st *servetest.Status
	if !errors.As(err, &st) || st.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed request: %v, want HTTP 504", err)
	}

	m := h.Server.Metrics()
	if m.Timeouts == 0 {
		t.Fatal("timeout not counted in metrics")
	}
	if m.Session.Synthesized >= fullSynth {
		t.Fatalf("timeout did not stop synthesis: %d signatures synthesized, full batch needs %d",
			m.Session.Synthesized, fullSynth)
	}

	// Recovery on the same daemon and session: full batch, no
	// timeout, bit-identical to the direct reference.
	resp, err := cl.Measure(context.Background(), req)
	if err != nil {
		t.Fatalf("post-timeout request: %v", err)
	}
	compareResults(t, "post-timeout recovery", resp.Results, ref)
}
