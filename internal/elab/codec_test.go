package elab

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/hdl"
)

func TestReportCodecRoundtrip(t *testing.T) {
	rep := &Report{Constructs: map[ConstructKey]Construct{
		{Kind: "if", Pos: hdl.Pos{File: "a.v", Line: 10, Col: 3}}: {
			Kind: "if", Alive: true, NonConst: true,
			Branches: map[string]bool{"then": true, "else": false},
		},
		{Kind: "case", Pos: hdl.Pos{File: "a.v", Line: 20, Col: 1}}: {
			Kind: "case", Alive: false,
			Branches: map[string]bool{"0": true, "1": true, "default": false},
		},
		{Kind: "if", Pos: hdl.Pos{File: "b.v", Line: 2, Col: 2}}: {
			Kind: "if",
		},
	}}
	buf := AppendReport(nil, rep)
	r := codec.NewReader(buf)
	got, err := DecodeReport(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Constructs, rep.Constructs) {
		t.Errorf("round-trip changed the report:\n got %+v\nwant %+v", got.Constructs, rep.Constructs)
	}
	// Map iteration order must not leak into the encoding.
	for i := 0; i < 8; i++ {
		if string(AppendReport(nil, rep)) != string(buf) {
			t.Fatal("report encoding not deterministic")
		}
	}
}

func TestReportCodecEmpty(t *testing.T) {
	buf := AppendReport(nil, &Report{})
	got, err := DecodeReport(codec.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Constructs != nil {
		t.Errorf("empty report decoded with a non-nil map: %v", got.Constructs)
	}
}

func TestReportCodecHostileInput(t *testing.T) {
	rep := &Report{Constructs: map[ConstructKey]Construct{
		{Kind: "if", Pos: hdl.Pos{File: "x.v", Line: 1, Col: 1}}: {
			Kind: "if", Alive: true, Branches: map[string]bool{"then": true},
		},
	}}
	buf := AppendReport(nil, rep)
	for cut := 0; cut < len(buf); cut++ {
		r := codec.NewReader(buf[:cut])
		if _, err := DecodeReport(r); err == nil {
			if err := r.Finish(); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		} else if !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("truncation at %d: %v does not wrap ErrCorrupt", cut, err)
		}
	}
}
