package stats

import (
	"fmt"
	"math"
)

// Lognormal is a lognormal distribution: X is lognormal(Mu, Sigma) when
// ln(X) is normal with mean Mu and standard deviation Sigma.
//
// The paper (Section 3.1) uses lognormal distributions with Mu = 0 for
// both the productivity factor ρ and the multiplicative error ε, so that
// the median of each is exactly 1: half the projects have ρ > 1 and half
// have ρ < 1.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// NewLognormal returns a Lognormal distribution with log-mean mu and
// log-standard-deviation sigma. It panics if sigma is not positive.
func NewLognormal(mu, sigma float64) Lognormal {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("stats: NewLognormal: sigma must be positive, got %v", sigma))
	}
	return Lognormal{Mu: mu, Sigma: sigma}
}

// PDF returns the probability density at x. The density is zero for
// x <= 0.
func (l Lognormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-0.5*z*z) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x). The CDF is zero for x <= 0.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Quantile returns the value x such that CDF(x) = p. It panics if p is
// outside (0, 1).
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(Normal{Mu: l.Mu, Sigma: l.Sigma}.Quantile(p))
}

// Mean returns the mean exp(Mu + Sigma²/2). With Mu = 0 this is the
// e^(σ²/2) factor of Equation 4 in the paper, which converts the median
// design-effort estimate into the mean estimate.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Median returns the median exp(Mu). With Mu = 0 the median is 1.
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// Mode returns the mode exp(Mu - Sigma²).
func (l Lognormal) Mode() float64 {
	return math.Exp(l.Mu - l.Sigma*l.Sigma)
}

// Variance returns the variance (exp(Sigma²)-1)·exp(2Mu+Sigma²).
func (l Lognormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// ConfidenceFactors returns the multiplicative factors (yl, yh) such
// that a lognormal(0, sigma) variable lies in [yl, yh] with probability
// conf. This is the mapping plotted in Figures 3 and 4 of the paper:
// given an estimate eff and an error SD σε, the conf-level confidence
// interval for the true effort is (yl·eff, yh·eff).
//
// For example, ConfidenceFactors(0.45, 0.90) ≈ (0.48, 2.10), matching
// the yl ≈ 0.5, yh ≈ 2.1 worked example in the paper.
func ConfidenceFactors(sigma, conf float64) (yl, yh float64) {
	if sigma < 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("stats: ConfidenceFactors: sigma must be non-negative, got %v", sigma))
	}
	if conf <= 0 || conf >= 1 {
		panic(fmt.Sprintf("stats: ConfidenceFactors: conf must be in (0,1), got %v", conf))
	}
	if sigma == 0 {
		return 1, 1
	}
	l := NewLognormal(0, sigma)
	alpha := (1 - conf) / 2
	return l.Quantile(alpha), l.Quantile(1 - alpha)
}
