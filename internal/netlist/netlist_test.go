package netlist

import (
	"testing"
)

func TestBuilderConstFolding(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	if got := b.And(b.Const0(), a); got != b.Const0() {
		t.Error("0 & a must fold to 0")
	}
	if got := b.And(b.Const1(), a); got != a {
		t.Error("1 & a must fold to a")
	}
	if got := b.Or(b.Const1(), a); got != b.Const1() {
		t.Error("1 | a must fold to 1")
	}
	if got := b.Xor(a, a); got != b.Const0() {
		t.Error("a ^ a must fold to 0")
	}
	if got := b.Not(b.Const0()); got != b.Const1() {
		t.Error("~0 must fold to 1")
	}
	if got := b.Mux(b.Const1(), a, b.Const0()); got != b.Const0() {
		t.Error("mux(1,a,0) must fold to 0")
	}
	if got := b.Mux(a, b.Const0(), b.Const1()); got != a {
		t.Error("mux(s,0,1) must fold to s")
	}
	s := b.NewNet("s")
	if got := b.Mux(s, b.Const1(), b.Const0()); got == s {
		t.Error("mux(s,1,0) must be ~s, not s")
	}
}

func TestBuilderAliasMergesNets(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	x := b.NewNet("") // anonymous
	if err := b.Alias(a, x); err != nil {
		t.Fatal(err)
	}
	if b.Find(x) != b.Find(a) {
		t.Error("alias failed")
	}
	// Named net wins representation.
	if b.Find(x) != a {
		t.Errorf("representative = %d, want named net %d", b.Find(x), a)
	}
	// Constant aliasing.
	y := b.NewNet("y")
	if err := b.Alias(y, b.Const1()); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.IsConst(y); !ok || !v {
		t.Error("y must now be const1")
	}
	if err := b.Alias(b.Const0(), y); err == nil {
		t.Error("aliasing const0 to const1 must fail")
	}
}

func TestBuildDetectsMultipleDrivers(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	c := b.NewNet("c")
	g1 := b.And(a, c)
	g2 := b.Or(a, c)
	if err := b.Alias(g1, g2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected multiple-driver error")
	}
}

func TestBuildCompactsNets(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	b.NewNet("unused1")
	b.NewNet("unused2")
	y := b.Not(a)
	b.AddInput("a", a)
	b.AddOutput("y", y)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// const0, const1, a, y = 4 nets; the unused ones disappear.
	if nl.NumNets() != 4 {
		t.Errorf("nets = %d, want 4", nl.NumNets())
	}
	if err := Validate(nl); err != nil {
		t.Fatal(err)
	}
}

// buildFullAdder constructs sum/carry from three inputs.
func buildFullAdder(b *Builder, x, y, cin NetID) (sum, cout NetID) {
	s1 := b.Xor(x, y)
	sum = b.Xor(s1, cin)
	cout = b.Or(b.And(x, y), b.And(s1, cin))
	return sum, cout
}

func TestTopoOrder(t *testing.T) {
	b := NewBuilder()
	x := b.NewNet("x")
	y := b.NewNet("y")
	cin := b.NewNet("cin")
	sum, cout := buildFullAdder(b, x, y, cin)
	b.AddInput("x", x)
	b.AddInput("y", y)
	b.AddInput("cin", cin)
	b.AddOutput("sum", sum)
	b.AddOutput("cout", cout)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(nl.Cells) {
		t.Fatalf("topo covers %d of %d cells", len(order), len(nl.Cells))
	}
	// Every cell's inputs must be produced before it.
	pos := map[int]int{}
	for i, ci := range order {
		pos[ci] = i
	}
	drivers := nl.Drivers()
	for i, ci := range order {
		for _, in := range nl.Cells[ci].Inputs() {
			if d := drivers[in]; d >= 0 && !nl.Cells[d].Type.IsSequential() && pos[d] > i {
				t.Fatalf("cell %d consumed before producer %d", ci, d)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	g1 := b.And(a, a) // will rewrite below
	_ = g1
	// Construct a deliberate cycle: two INVs feeding each other.
	n1 := b.NewNet("n1")
	inv1 := b.Not(n1)
	if err := b.Alias(n1, b.Not(inv1)); err != nil {
		t.Fatal(err)
	}
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// q = DFF(~q) is a valid sequential loop (toggle flop).
	b := NewBuilder()
	clk := b.NewNet("clk")
	q := b.NewNet("q")
	d := b.Not(q)
	qd := b.NewDFF(d, clk)
	if err := b.Alias(q, qd); err != nil {
		t.Fatal(err)
	}
	b.AddInput("clk", clk)
	b.AddOutput("q", q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.TopoOrder(); err != nil {
		t.Fatalf("sequential loop must not be a cycle: %v", err)
	}
	if nl.NumFFs() != 1 {
		t.Errorf("FFs = %d", nl.NumFFs())
	}
}

func TestOptimizeConstantPropagation(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	c := b.NewNet("c")
	// Build gates that constant-fold only after CSE/subst: (a&c) XOR (a&c).
	g1 := b.rawCell(And2, a, c, Nil, Nil)
	g2 := b.rawCell(And2, a, c, Nil, Nil)
	x := b.rawCell(Xor2, g1, g2, Nil, Nil)
	b.AddInput("a", a)
	b.AddInput("c", c)
	b.AddOutput("x", x)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, res, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 {
		t.Error("expected CSE merge")
	}
	// x = g XOR g = 0 → everything dead, output tied to const0.
	if len(opt.Cells) != 0 {
		t.Errorf("cells = %d, want 0 (all folded): %+v", len(opt.Cells), opt.Cells)
	}
	if opt.Outputs[0].Net != opt.Const0 {
		t.Error("output must be const0")
	}
}

func TestOptimizeRemovesDeadLogic(t *testing.T) {
	b := NewBuilder()
	a := b.NewNet("a")
	c := b.NewNet("c")
	used := b.And(a, c)
	b.Or(a, c) // dead: never observed
	b.AddInput("a", a)
	b.AddInput("c", c)
	b.AddOutput("y", used)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, res, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadRemoved == 0 {
		t.Error("expected dead removal")
	}
	if len(opt.Cells) != 1 {
		t.Errorf("cells = %d, want 1", len(opt.Cells))
	}
}

func TestOptimizeRemovesUnobservedFF(t *testing.T) {
	b := NewBuilder()
	clk := b.NewNet("clk")
	d := b.NewNet("d")
	b.NewDFF(d, clk) // Q never used
	keep := b.NewDFF(d, clk)
	b.AddInput("clk", clk)
	b.AddInput("d", d)
	b.AddOutput("q", keep)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumFFs() != 1 {
		t.Errorf("FFs = %d, want 1", opt.NumFFs())
	}
}

func TestOptimizePreservesRAMLogic(t *testing.T) {
	b := NewBuilder()
	clk := b.NewNet("clk")
	en := b.NewNet("en")
	addr := []NetID{b.NewNet("addr0")}
	data := []NetID{b.And(en, addr[0])}
	rout := []NetID{b.NewNet("rd0")}
	b.AddRAM(&RAM{
		Name: "m", Width: 1, Depth: 2,
		Clk:        clk,
		WritePorts: []RAMWritePort{{En: en, Addr: addr, Data: data}},
		ReadPorts:  []RAMReadPort{{Addr: []NetID{addr[0]}, Out: rout}},
	})
	b.AddInput("clk", clk)
	b.AddInput("en", en)
	b.AddInput("addr0", addr[0])
	b.AddOutput("q", rout[0])
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	// The AND feeding write data must survive (RAM pins are roots).
	if len(opt.Cells) != 1 {
		t.Errorf("cells = %d, want 1", len(opt.Cells))
	}
	st := opt.Stats()
	if st.RAMs != 1 || st.Cells != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsCounts(t *testing.T) {
	b := NewBuilder()
	clk := b.NewNet("clk")
	d := b.NewNet("d")
	q := b.NewDFF(d, clk)
	y := b.Not(q)
	b.AddInput("clk", clk)
	b.AddInput("d", d)
	b.AddOutput("y", y)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Cells != 2 || st.FFs != 1 {
		t.Errorf("stats = %+v", st)
	}
	// nets: clk, d, q, y — constants unused.
	if st.Nets != 4 {
		t.Errorf("nets = %d, want 4", st.Nets)
	}
}

func TestCellTypeProperties(t *testing.T) {
	if !DFF.IsSequential() || !Latch.IsSequential() || And2.IsSequential() {
		t.Error("IsSequential misclassifies")
	}
	if Inv.NumInputs() != 1 || Mux2.NumInputs() != 3 || Latch.NumInputs() != 2 || And2.NumInputs() != 2 {
		t.Error("NumInputs wrong")
	}
	for ct := CellType(0); ct < numCellTypes; ct++ {
		if ct.String() == "" {
			t.Errorf("missing name for cell type %d", ct)
		}
	}
}
