package netlist

import "repro/internal/scratch"

// Workspace holds reusable scratch for the netlist kernels: the
// builder's net/cell buffers and the optimizer's union-find, adjacency,
// hash-table, worklist, and liveness arrays. A workspace is owned by
// exactly one goroutine at a time (measurement sessions hand one to
// each pool worker); every kernel that accepts one re-initializes the
// slices it takes before use, so a workspace carries capacity between
// runs, never values. Passing nil everywhere a *Workspace is accepted
// selects the original fresh-allocation path — the reference the
// golden tests pin reuse against.
//
// Everything a kernel returns (the built or optimized netlist) is
// freshly allocated even under a workspace: only intermediate scratch
// is reused, so results never alias workspace memory.
type Workspace struct {
	// Builder state (taken over by NewBuilderWS for one build).
	bNames    []string
	bParent   []NetID
	bNamed    []bool
	bCells    []Cell
	bInputs   []PortBit
	bOutputs  []PortBit
	bRAMs     []*RAM
	bAliasLog []AliasPair
	bSeen     []int32
	bRemap    []NetID
	bNameOut  []string

	// Optimizer state.
	oParent    []NetID
	oRing      []int32
	oStart     []int32
	oConsumers []int32
	oFill      []int32
	oKeys      []hashKey
	oKfull     []bool
	oKout      []NetID
	oQueue     []int32
	oInQueue   []bool
	oProcessed []bool
	oRemoved   []bool
	oDriver    []int32
	oLive      []bool
	oSeenNet   []bool
	oStack     []NetID

	// Raw-netlist analysis scratch: the optimizer's input is discarded
	// right after the pass, so its driver table and topological order
	// are computed here instead of being memoized into the netlist.
	tDrivers []int
	tState   []byte
	tOrder   []int
	tStack   []topoFrame
}

// Reset drops references the workspace may hold into a previous run's
// data (strings, RAM macros, port bits) while keeping every buffer's
// capacity. The kernels re-initialize value scratch themselves, so
// Reset is about not pinning old heap objects, not about correctness
// of the next run — running a kernel on a dirty, un-Reset workspace
// produces bit-identical results.
func (w *Workspace) Reset() {
	clearFull(w.bNames)
	clearFull(w.bRAMs)
	clearFull(w.bInputs)
	clearFull(w.bOutputs)
	clearFull(w.bNameOut)
}

// clearFull zeroes a slice over its whole capacity, so no element of a
// previous, longer use survives as a live reference.
func clearFull[T any](s []T) {
	if cap(s) > 0 {
		clear(s[:cap(s)])
	}
}

// topoFrame is one iterative-DFS frame of the topological sort (shared
// with the memoized TopoOrder path).
type topoFrame struct {
	cell int
	pin  int
}

// topoInto computes the driver table and combinational topological
// order of n into the workspace's scratch buffers, without touching
// n's memoized derived tables. The returned slices are valid until the
// workspace's next use.
func (w *Workspace) topoInto(n *Netlist) (drivers []int, order []int, err error) {
	drivers = scratch.Raw(&w.tDrivers, n.NumNets())
	for i := range drivers {
		drivers[i] = -1
	}
	for i := range n.Cells {
		drivers[n.Cells[i].Out] = i
	}
	order, stack, err := n.topoOrderInto(drivers, scratch.Zero(&w.tState, len(n.Cells)), w.tStack[:0], w.tOrder[:0])
	w.tOrder = order[:0]
	w.tStack = stack[:0]
	return drivers, order, err
}
