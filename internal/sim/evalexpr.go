package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/elab"
	"repro/internal/hdl"
)

// naturalWidth mirrors the synthesizer's width rules exactly — the
// interpreter must truncate intermediate results at the same points
// the hardware does, or equivalence checking would flag false
// mismatches (e.g. (a+b)>>1 loses the carry in 8-bit hardware).
func (r *RTLSim) naturalWidth(inst *elab.Instance, env *elab.Env, st *execState, e hdl.Expr) (int, error) {
	switch v := e.(type) {
	case *hdl.Number:
		if v.Width > 0 {
			return v.Width, nil
		}
		return 32, nil
	case *hdl.Ident:
		if _, ok := env.Lookup(v.Name); ok {
			return 32, nil
		}
		if st != nil {
			if _, ok := st.intvars[v.Name]; ok {
				return 32, nil
			}
		}
		if n, ok := inst.ResolveNet(v.Name, env); ok {
			return n.Width, nil
		}
		if inst.IsIntVar(v.Name) {
			return 32, nil
		}
		return 0, fmt.Errorf("undeclared signal %q", v.Name)
	case *hdl.Unary:
		switch v.Op {
		case hdl.OpNot, hdl.OpNeg:
			return r.naturalWidth(inst, env, st, v.X)
		default:
			return 1, nil
		}
	case *hdl.Binary:
		switch v.Op {
		case hdl.OpAdd, hdl.OpSub, hdl.OpMul, hdl.OpDiv, hdl.OpMod,
			hdl.OpAnd, hdl.OpOr, hdl.OpXor, hdl.OpXnor:
			lw, err := r.naturalWidth(inst, env, st, v.L)
			if err != nil {
				return 0, err
			}
			rw, err := r.naturalWidth(inst, env, st, v.R)
			if err != nil {
				return 0, err
			}
			if rw > lw {
				lw = rw
			}
			return lw, nil
		case hdl.OpShl, hdl.OpShr:
			return r.naturalWidth(inst, env, st, v.L)
		default:
			return 1, nil
		}
	case *hdl.Ternary:
		tw, err := r.naturalWidth(inst, env, st, v.Then)
		if err != nil {
			return 0, err
		}
		ew, err := r.naturalWidth(inst, env, st, v.Else)
		if err != nil {
			return 0, err
		}
		if ew > tw {
			tw = ew
		}
		return tw, nil
	case *hdl.Index:
		if base, ok := v.Base.(*hdl.Ident); ok {
			if m, ok := inst.ResolveMem(base.Name, env); ok {
				return m.Width, nil
			}
		}
		return 1, nil
	case *hdl.PartSelect:
		msb, err := elab.Eval(v.MSB, envWith(env, st))
		if err != nil {
			return 0, err
		}
		lsb, err := elab.Eval(v.LSB, envWith(env, st))
		if err != nil {
			return 0, err
		}
		if msb < lsb {
			return 0, fmt.Errorf("reversed part select")
		}
		return int(msb - lsb + 1), nil
	case *hdl.Concat:
		total := 0
		for _, p := range v.Parts {
			w, err := r.naturalWidth(inst, env, st, p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	case *hdl.Repl:
		cnt, err := elab.Eval(v.Count, envWith(env, st))
		if err != nil {
			return 0, err
		}
		w, err := r.naturalWidth(inst, env, st, v.X)
		if err != nil {
			return 0, err
		}
		return int(cnt) * w, nil
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

// eval evaluates an expression at width max(cw, natural), masked to
// that width.
func (r *RTLSim) eval(inst *elab.Instance, env *elab.Env, st *execState, e hdl.Expr, cw int) (uint64, error) {
	nw, err := r.naturalWidth(inst, env, st, e)
	if err != nil {
		return 0, err
	}
	w := nw
	if cw > w {
		w = cw
	}
	if w > 64 {
		return 0, fmt.Errorf("expression wider than 64 bits (%d)", w)
	}
	return r.evalAt(inst, env, st, e, w)
}

// readNet returns the current value of a net, honoring the block's
// blocking-assignment shadow.
func (r *RTLSim) readNet(inst *elab.Instance, st *execState, n *elab.Net) uint64 {
	key := r.netKey(inst, n.Name)
	if st != nil {
		if v, ok := st.shadow[key]; ok {
			return v & mask(n.Width)
		}
	}
	return r.vals[key] & mask(n.Width)
}

func (r *RTLSim) evalAt(inst *elab.Instance, env *elab.Env, st *execState, e hdl.Expr, w int) (uint64, error) {
	m := mask(w)
	switch v := e.(type) {
	case *hdl.Number:
		return v.Value & m, nil

	case *hdl.Ident:
		if val, ok := env.Lookup(v.Name); ok {
			return uint64(val) & m, nil
		}
		if st != nil {
			if val, ok := st.intvars[v.Name]; ok {
				return uint64(val) & m, nil
			}
		}
		n, ok := inst.ResolveNet(v.Name, env)
		if !ok {
			return 0, fmt.Errorf("undeclared signal %q", v.Name)
		}
		return r.readNet(inst, st, n) & m, nil

	case *hdl.Unary:
		switch v.Op {
		case hdl.OpNot:
			x, err := r.evalAt(inst, env, st, v.X, w)
			if err != nil {
				return 0, err
			}
			return ^x & m, nil
		case hdl.OpNeg:
			x, err := r.evalAt(inst, env, st, v.X, w)
			if err != nil {
				return 0, err
			}
			return (-x) & m, nil
		case hdl.OpLogNot:
			c, err := r.evalCond(inst, env, st, v.X)
			if err != nil {
				return 0, err
			}
			return b2u(!c) & m, nil
		}
		nw, err := r.naturalWidth(inst, env, st, v.X)
		if err != nil {
			return 0, err
		}
		x, err := r.evalAt(inst, env, st, v.X, nw)
		if err != nil {
			return 0, err
		}
		full := x == mask(nw)
		any := x != 0
		par := uint64(bits.OnesCount64(x)) & 1
		switch v.Op {
		case hdl.OpRedAnd:
			return b2u(full) & m, nil
		case hdl.OpRedOr:
			return b2u(any) & m, nil
		case hdl.OpRedXor:
			return par & m, nil
		case hdl.OpRedNand:
			return b2u(!full) & m, nil
		case hdl.OpRedNor:
			return b2u(!any) & m, nil
		case hdl.OpRedXnor:
			return (par ^ 1) & m, nil
		}
		return 0, fmt.Errorf("unsupported unary operator")

	case *hdl.Binary:
		return r.evalBinary(inst, env, st, v, w)

	case *hdl.Ternary:
		c, err := r.evalCond(inst, env, st, v.Cond)
		if err != nil {
			return 0, err
		}
		if c {
			return r.evalAt(inst, env, st, v.Then, w)
		}
		return r.evalAt(inst, env, st, v.Else, w)

	case *hdl.Index:
		base, ok := v.Base.(*hdl.Ident)
		if !ok {
			return 0, fmt.Errorf("unsupported nested index")
		}
		if mem, ok := inst.ResolveMem(base.Name, env); ok {
			addr, err := r.eval(inst, env, st, v.Idx, 64)
			if err != nil {
				return 0, err
			}
			words := r.mems[r.netKey(inst, mem.Name)]
			a := addr - uint64(mem.MinIdx)
			if a >= uint64(len(words)) {
				return 0, nil
			}
			return words[a] & m, nil
		}
		n, ok := inst.ResolveNet(base.Name, env)
		if !ok {
			return 0, fmt.Errorf("undeclared signal %q", base.Name)
		}
		idx, err := r.eval(inst, env, st, v.Idx, 64)
		if err != nil {
			return 0, err
		}
		bit := int64(idx) - n.LSB
		if bit < 0 || bit >= int64(n.Width) {
			return 0, nil
		}
		return (r.readNet(inst, st, n) >> uint(bit)) & 1 & m, nil

	case *hdl.PartSelect:
		base, ok := v.Base.(*hdl.Ident)
		if !ok {
			return 0, fmt.Errorf("unsupported nested part select")
		}
		n, ok := inst.ResolveNet(base.Name, env)
		if !ok {
			return 0, fmt.Errorf("undeclared signal %q", base.Name)
		}
		msb, err := elab.Eval(v.MSB, envWith(env, st))
		if err != nil {
			return 0, err
		}
		lsb, err := elab.Eval(v.LSB, envWith(env, st))
		if err != nil {
			return 0, err
		}
		lo := lsb - n.LSB
		hi := msb - n.LSB
		if lo > hi || lo < 0 || hi >= int64(n.Width) {
			return 0, fmt.Errorf("part select [%d:%d] out of range for %q", msb, lsb, base.Name)
		}
		val := r.readNet(inst, st, n) >> uint(lo)
		return val & mask(int(hi-lo+1)) & m, nil

	case *hdl.Concat:
		var out uint64
		shift := 0
		for i := len(v.Parts) - 1; i >= 0; i-- {
			pw, err := r.naturalWidth(inst, env, st, v.Parts[i])
			if err != nil {
				return 0, err
			}
			pv, err := r.evalAt(inst, env, st, v.Parts[i], pw)
			if err != nil {
				return 0, err
			}
			if shift < 64 {
				out |= pv << uint(shift)
			}
			shift += pw
		}
		return out & m, nil

	case *hdl.Repl:
		cnt, err := elab.Eval(v.Count, envWith(env, st))
		if err != nil {
			return 0, err
		}
		xw, err := r.naturalWidth(inst, env, st, v.X)
		if err != nil {
			return 0, err
		}
		xv, err := r.evalAt(inst, env, st, v.X, xw)
		if err != nil {
			return 0, err
		}
		var out uint64
		shift := 0
		for i := int64(0); i < cnt && shift < 64; i++ {
			out |= xv << uint(shift)
			shift += xw
		}
		return out & m, nil
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

func (r *RTLSim) evalBinary(inst *elab.Instance, env *elab.Env, st *execState, v *hdl.Binary, w int) (uint64, error) {
	m := mask(w)
	both := func(ow int) (uint64, uint64, error) {
		l, err := r.evalAt(inst, env, st, v.L, ow)
		if err != nil {
			return 0, 0, err
		}
		rr, err := r.evalAt(inst, env, st, v.R, ow)
		return l, rr, err
	}
	switch v.Op {
	case hdl.OpAnd, hdl.OpOr, hdl.OpXor, hdl.OpXnor, hdl.OpAdd, hdl.OpSub, hdl.OpMul:
		l, rr, err := both(w)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case hdl.OpAnd:
			return l & rr & m, nil
		case hdl.OpOr:
			return (l | rr) & m, nil
		case hdl.OpXor:
			return (l ^ rr) & m, nil
		case hdl.OpXnor:
			return ^(l ^ rr) & m, nil
		case hdl.OpAdd:
			return (l + rr) & m, nil
		case hdl.OpSub:
			return (l - rr) & m, nil
		case hdl.OpMul:
			return (l * rr) & m, nil
		}
	case hdl.OpDiv, hdl.OpMod:
		d, err := elab.Eval(v.R, envWith(env, st))
		if err != nil {
			return 0, fmt.Errorf("division/modulo requires a constant divisor: %v", err)
		}
		if d <= 0 || d&(d-1) != 0 {
			return 0, fmt.Errorf("division/modulo only supported by positive powers of two, got %d", d)
		}
		l, err := r.evalAt(inst, env, st, v.L, w)
		if err != nil {
			return 0, err
		}
		if v.Op == hdl.OpDiv {
			return (l / uint64(d)) & m, nil
		}
		return (l % uint64(d)) & m, nil
	case hdl.OpShl, hdl.OpShr:
		l, err := r.evalAt(inst, env, st, v.L, w)
		if err != nil {
			return 0, err
		}
		rw, err := r.naturalWidth(inst, env, st, v.R)
		if err != nil {
			return 0, err
		}
		amt, err := r.evalAt(inst, env, st, v.R, rw)
		if err != nil {
			return 0, err
		}
		if amt >= 64 {
			return 0, nil
		}
		if v.Op == hdl.OpShl {
			return (l << amt) & m, nil
		}
		return (l >> amt) & m, nil
	case hdl.OpEq, hdl.OpNeq, hdl.OpLt, hdl.OpLe, hdl.OpGt, hdl.OpGe:
		lw, err := r.naturalWidth(inst, env, st, v.L)
		if err != nil {
			return 0, err
		}
		rw, err := r.naturalWidth(inst, env, st, v.R)
		if err != nil {
			return 0, err
		}
		ow := lw
		if rw > ow {
			ow = rw
		}
		l, rr, err := both(ow)
		if err != nil {
			return 0, err
		}
		var res bool
		switch v.Op {
		case hdl.OpEq:
			res = l == rr
		case hdl.OpNeq:
			res = l != rr
		case hdl.OpLt:
			res = l < rr
		case hdl.OpLe:
			res = l <= rr
		case hdl.OpGt:
			res = l > rr
		case hdl.OpGe:
			res = l >= rr
		}
		return b2u(res) & m, nil
	case hdl.OpLogAnd, hdl.OpLogOr:
		lc, err := r.evalCond(inst, env, st, v.L)
		if err != nil {
			return 0, err
		}
		rc, err := r.evalCond(inst, env, st, v.R)
		if err != nil {
			return 0, err
		}
		if v.Op == hdl.OpLogAnd {
			return b2u(lc && rc) & m, nil
		}
		return b2u(lc || rc) & m, nil
	}
	return 0, fmt.Errorf("unsupported binary operator")
}

func (r *RTLSim) evalCond(inst *elab.Instance, env *elab.Env, st *execState, e hdl.Expr) (bool, error) {
	nw, err := r.naturalWidth(inst, env, st, e)
	if err != nil {
		return false, err
	}
	v, err := r.evalAt(inst, env, st, e, nw)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
