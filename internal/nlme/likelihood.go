package nlme

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// LogLikelihood evaluates the exact marginal log-likelihood of the
// mixed model at the given parameters (weights, σε, σρ), using the
// closed form: the log-residual vector of each group is multivariate
// normal with covariance σε²·I + σρ²·J, whose determinant and inverse
// follow from the matrix determinant lemma and Sherman–Morrison.
func LogLikelihood(d *Data, weights []float64, sigmaEps, sigmaRho float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if sigmaEps <= 0 {
		return 0, fmt.Errorf("nlme: sigmaEps must be positive, got %v", sigmaEps)
	}
	if sigmaRho < 0 {
		return 0, fmt.Errorf("nlme: sigmaRho must be non-negative, got %v", sigmaRho)
	}
	logEta, err := d.predictorLogs(weights)
	if err != nil {
		return 0, err
	}
	_, members := d.groupIndex()
	se2 := sigmaEps * sigmaEps
	sr2 := sigmaRho * sigmaRho
	var ll float64
	for _, idx := range members {
		ni := float64(len(idx))
		var sum, sumsq float64
		for _, i := range idx {
			r := math.Log(d.Efforts[i]) - logEta[i]
			sum += r
			sumsq += r * r
		}
		logDet := (ni-1)*math.Log(se2) + math.Log(se2+ni*sr2)
		quad := (sumsq - sr2/(se2+ni*sr2)*sum*sum) / se2
		ll += -0.5 * (ni*math.Log(2*math.Pi) + logDet + quad)
	}
	return ll, nil
}

// LogLikelihoodGH evaluates the same marginal log-likelihood by
// integrating the random effect out numerically with an adaptive
// Gauss–Hermite rule of the given size, centered on each group's
// posterior mode. This mirrors how SAS PROC NLMIXED evaluates the
// integral and serves as an independent check of LogLikelihood.
func LogLikelihoodGH(d *Data, weights []float64, sigmaEps, sigmaRho float64, nodes int) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if sigmaEps <= 0 {
		return 0, fmt.Errorf("nlme: sigmaEps must be positive, got %v", sigmaEps)
	}
	if sigmaRho <= 0 {
		return 0, fmt.Errorf("nlme: sigmaRho must be positive for quadrature, got %v", sigmaRho)
	}
	if nodes < 2 {
		return 0, fmt.Errorf("nlme: need at least 2 quadrature nodes, got %d", nodes)
	}
	logEta, err := d.predictorLogs(weights)
	if err != nil {
		return 0, err
	}
	gh := stats.NewGaussHermite(nodes)
	se2 := sigmaEps * sigmaEps
	sr2 := sigmaRho * sigmaRho
	_, members := d.groupIndex()

	var ll float64
	for _, idx := range members {
		ni := float64(len(idx))
		var sum float64
		resid := make([]float64, 0, len(idx))
		for _, i := range idx {
			r := math.Log(d.Efforts[i]) - logEta[i]
			resid = append(resid, r)
			sum += r
		}
		// Gaussian posterior of the random effect b given the residuals:
		// precision = n/σε² + 1/σρ², mean = (Σr/σε²)/precision.
		prec := ni/se2 + 1/sr2
		mu := (sum / se2) / prec
		sd := 1 / math.Sqrt(prec)

		// log f(b) = Σ_j log N(r_j; b, σε²) + log N(b; 0, σρ²)
		logf := func(b float64) float64 {
			v := -0.5*b*b/sr2 - 0.5*math.Log(2*math.Pi*sr2)
			for _, r := range resid {
				z := (r - b) / sigmaEps
				v += -0.5*z*z - 0.5*math.Log(2*math.Pi*se2)
			}
			return v
		}

		// Adaptive GH: ∫f(b)db = √2·sd·Σ_l w_l·e^{t_l²}·f(mu+√2·sd·t_l),
		// computed with log-sum-exp for numerical robustness.
		terms := make([]float64, len(gh.Nodes))
		maxTerm := math.Inf(-1)
		for l, t := range gh.Nodes {
			b := mu + math.Sqrt2*sd*t
			terms[l] = math.Log(gh.Weights[l]) + t*t + logf(b)
			if terms[l] > maxTerm {
				maxTerm = terms[l]
			}
		}
		var s float64
		for _, tv := range terms {
			s += math.Exp(tv - maxTerm)
		}
		ll += maxTerm + math.Log(s) + math.Log(math.Sqrt2*sd)
	}
	return ll, nil
}

// Residuals returns the log-scale residuals log Eff − log η under the
// given weights, in observation order.
func Residuals(d *Data, weights []float64) ([]float64, error) {
	logEta, err := d.predictorLogs(weights)
	if err != nil {
		return nil, err
	}
	out := make([]float64, d.NumObs())
	for i := range out {
		out[i] = math.Log(d.Efforts[i]) - logEta[i]
	}
	return out, nil
}
