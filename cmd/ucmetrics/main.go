// Command ucmetrics measures the Table 3 metrics of a µHDL design
// component using the µComplexity accounting procedure.
//
// Usage:
//
//	ucmetrics -top <module> file.v [more.v ...]   measure your own design
//	ucmetrics -builtin <Project-Name>             measure a bundled synthetic component
//	ucmetrics -builtin all                        measure the whole corpus
//
// Flags:
//
//	-no-accounting   disable the Section 2.2 accounting procedure
//	-csv             emit the measurement as a CSV database row
//	-cache-dir DIR   cache measurements on disk (default
//	                 $UCOMPLEXITY_CACHE; results are identical with
//	                 and without the cache)
//	-cache-stats     report the cache's on-disk footprint (entries,
//	                 bytes, compression ratio) and this run's decode
//	                 cost on stderr
//	-cpuprofile FILE write a CPU profile of the run
//	-memprofile FILE write a heap profile of the run
//	-alloc-stats     report runtime.MemStats deltas (allocations,
//	                 bytes, GC cycles) for the measurement on stderr
//
// All measurements run through one measure.Session: with -builtin all
// the whole corpus is parsed once and each distinct (module,
// parameters) signature is synthesized exactly once across the 18
// components. A session summary (components measured, signatures
// planned / synthesized / shared) is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/designs"
	"repro/internal/hdl"
	"repro/internal/measure"
)

func main() {
	top := flag.String("top", "", "top module to measure")
	builtin := flag.String("builtin", "", "bundled component label (e.g. IVM-Rename) or 'all'")
	noAccounting := flag.Bool("no-accounting", false, "disable the accounting procedure")
	asCSV := flag.Bool("csv", false, "emit CSV database rows")
	cacheDir := flag.String("cache-dir", cache.DefaultDir(), "measurement cache directory (default $"+cache.EnvVar+"; empty = no cache)")
	cacheStats := flag.Bool("cache-stats", false, "report cache disk footprint and decode cost on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write CPU profile to file")
	memProfile := flag.String("memprofile", "", "write heap profile to file")
	allocStats := flag.Bool("alloc-stats", false, "report runtime.MemStats deltas for the run on stderr")
	flag.Parse()

	if err := profiledRun(*top, *builtin, !*noAccounting, *asCSV, *cacheDir, *cacheStats, *cpuProfile, *memProfile, *allocStats, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ucmetrics:", err)
		os.Exit(1)
	}
}

// profiledRun wraps run with the observability flags: CPU/heap
// profiles (same shape as ucpaper's) and the -alloc-stats MemStats
// delta line used to sanity-check steady-state allocation behaviour
// without a benchmark harness.
func profiledRun(top, builtin string, useAccounting, asCSV bool, cacheDir string, cacheStats bool, cpuProfile, memProfile string, allocStats bool, files []string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ucmetrics:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ucmetrics:", err)
			}
		}()
	}

	var before runtime.MemStats
	if allocStats {
		runtime.ReadMemStats(&before)
	}
	err := run(top, builtin, useAccounting, asCSV, cacheDir, cacheStats, files)
	if allocStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		fmt.Fprintf(os.Stderr, "alloc-stats: %d allocs, %d bytes allocated, %d GC cycles, %.3f ms GC pause\n",
			after.Mallocs-before.Mallocs,
			after.TotalAlloc-before.TotalAlloc,
			after.NumGC-before.NumGC,
			float64(after.PauseTotalNs-before.PauseTotalNs)/1e6)
	}
	return err
}

// target names one component to measure within the session's design.
type target struct {
	project string
	top     string
	effort  float64
}

func run(top, builtin string, useAccounting, asCSV bool, cacheDir string, cacheStats bool, files []string) error {
	opts := measure.Options{}
	if cacheDir != "" {
		c, err := cache.Open(cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = c
		if cacheStats {
			defer printCacheStats(c)
		}
	} else if cacheStats {
		return fmt.Errorf("-cache-stats needs a cache (-cache-dir or $%s)", cache.EnvVar)
	}

	var d *hdl.Design
	var targets []target
	switch {
	case builtin == "all":
		full, err := designs.FullDesign()
		if err != nil {
			return err
		}
		d = full
		for _, c := range designs.All() {
			targets = append(targets, target{c.Project, c.Top, c.Effort})
		}
	case builtin != "":
		c, err := designs.ByLabel(builtin)
		if err != nil {
			return err
		}
		d, err = designs.Design(c)
		if err != nil {
			return err
		}
		targets = []target{{c.Project, c.Top, c.Effort}}
	default:
		if top == "" || len(files) == 0 {
			return fmt.Errorf("need -top and at least one source file (or -builtin)")
		}
		sources := map[string]string{}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			sources[f] = string(data)
		}
		var err error
		d, err = hdl.ParseDesign(sources)
		if err != nil {
			return err
		}
		targets = []target{{"user", top, 0}}
	}

	sess := measure.NewSession(d)
	units := make([]measure.Unit, len(targets))
	for i, t := range targets {
		units[i] = measure.Unit{Top: t.top, UseAccounting: useAccounting}
	}
	results, err := sess.MeasureAll(units, opts)
	if err != nil {
		return err
	}

	rows := make([]dataset.Component, len(targets))
	for i, t := range targets {
		rows[i] = dataset.Component{
			Project: t.project,
			Name:    t.top,
			Effort:  t.effort,
			Metrics: results[i].Metrics.MetricMap(),
		}
		if !asCSV {
			printResult(t.project, t.top, results[i])
		}
	}

	s := sess.Stats()
	e := sess.ElabStats()
	fmt.Fprintf(os.Stderr, "session: %d components measured, %d signatures planned, %d synthesized, %d shared; elab cache %d hits, %d misses\n",
		s.Components, s.Planned, s.Synthesized, s.Shared, e.Hits, e.Misses)

	if asCSV {
		return dataset.WriteCSV(os.Stdout, rows)
	}
	return nil
}

// printCacheStats reports the on-disk footprint (one directory scan)
// and this run's warm-path decode accounting on stderr.
func printCacheStats(c *cache.Cache) {
	s := c.Stats()
	ds, err := c.DiskStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucmetrics: cache-stats:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cache-stats: %d entries, %d bytes on disk (%s)\n", ds.Entries, ds.Bytes, c.Dir())
	if s.BytesStored > 0 {
		fmt.Fprintf(os.Stderr, "cache-stats: read %d stored bytes -> %d raw bytes (%.2fx compression), decode %.3f ms\n",
			s.BytesStored, s.BytesRaw, float64(s.BytesRaw)/float64(s.BytesStored), float64(s.DecodeNanos)/1e6)
	}
}

func printResult(project, top string, res *measure.ComponentResult) {
	m := res.Metrics
	fmt.Printf("%s-%s:\n", project, top)
	fmt.Printf("  Stmts=%d LoC=%d\n", m.Stmts, m.LoC)
	fmt.Printf("  FanInLC=%d (exact cones: %d)  Nets=%d  Cells=%d  FFs=%d\n",
		m.FanInLC, m.FanInLCExact, m.Nets, m.Cells, m.FFs)
	fmt.Printf("  Freq=%.1f MHz  AreaL=%.0f um2  AreaS=%.0f um2  PowerD=%.3f mW  PowerS=%.2f uW\n",
		m.FreqMHz, m.AreaL, m.AreaS, m.PowerD, m.PowerS)
	fmt.Printf("  accounting: %d unique modules, %d instances, %d deduplicated\n",
		len(res.UniqueModules), res.InstanceCount, res.DedupedInstances)
	if res.ElabCacheHits+res.ElabCacheMisses > 0 {
		fmt.Printf("  search memo: %d probe hits, %d probe misses\n",
			res.ElabCacheHits, res.ElabCacheMisses)
	}
	if len(res.MinimizedParams) > 0 {
		names := make([]string, 0, len(res.MinimizedParams))
		for n := range res.MinimizedParams {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  minimized parameters:")
		for _, n := range names {
			fmt.Printf(" %s=%d", n, res.MinimizedParams[n])
		}
		fmt.Println()
	}
	fmt.Println()
}
