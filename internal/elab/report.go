package elab

import (
	"fmt"
	"sort"
	"strings"
)

// Construct records the elaboration fate of one parameter-sensitive
// syntactic construct, keyed by its source position. Constructs inside
// generate loops are elaborated repeatedly; their records aggregate all
// elaborations.
type Construct struct {
	Kind string // "genfor", "genif", "if", "case", "for", "mem", "repl"
	// Alive is true when the construct did real work in at least one
	// elaboration: a loop ran ≥1 iteration, a memory has depth ≥2, a
	// replication count was ≥1.
	Alive bool
	// Branches is the set of arms taken by a constant conditional
	// ("then"/"else" for ifs, "arm<N>"/"default" for cases) across all
	// elaborations. Allocated lazily — nil until the first arm is
	// recorded (loop and memory constructs never record arms).
	Branches map[string]bool
	// NonConst is true when the condition/subject was signal-dependent
	// in at least one elaboration (no branch constraint applies).
	NonConst bool
}

// Report is the elaboration signature of a design under one parameter
// assignment: every parameter-sensitive construct and its fate.
type Report struct {
	Constructs map[string]*Construct // key: kind + "@" + position
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{Constructs: map[string]*Construct{}}
}

func (r *Report) construct(kind, pos string) *Construct {
	key := kind + "@" + pos
	c, ok := r.Constructs[key]
	if !ok {
		c = &Construct{Kind: kind}
		r.Constructs[key] = c
	}
	return c
}

// recordLoop records a loop elaboration with the given trip count.
func (r *Report) recordLoop(kind, pos string, trips int64) {
	c := r.construct(kind, pos)
	if trips >= 1 {
		c.Alive = true
	}
}

// recordBranch records a constant conditional taking one arm.
func (r *Report) recordBranch(kind, pos, arm string) {
	c := r.construct(kind, pos)
	c.Alive = true
	if c.Branches == nil {
		c.Branches = map[string]bool{}
	}
	c.Branches[arm] = true
}

// recordNonConst records a signal-dependent conditional.
func (r *Report) recordNonConst(kind, pos string) {
	c := r.construct(kind, pos)
	c.Alive = true
	c.NonConst = true
}

// mergeFrom folds another report's constructs into r. Every record is
// a monotone union (Alive/NonConst flags, branch-arm sets), so merging
// a subtree's fragment is exactly equivalent to replaying its record
// calls, in any order. Constructs are always copied on first insert —
// never aliased — so fragments held by a session Cache stay immutable.
func (r *Report) mergeFrom(o *Report) {
	for key, oc := range o.Constructs {
		c, ok := r.Constructs[key]
		if !ok {
			c = &Construct{Kind: oc.Kind}
			r.Constructs[key] = c
		}
		if oc.Alive {
			c.Alive = true
		}
		if oc.NonConst {
			c.NonConst = true
		}
		if len(oc.Branches) > 0 && c.Branches == nil {
			c.Branches = make(map[string]bool, len(oc.Branches))
		}
		for arm := range oc.Branches {
			c.Branches[arm] = true
		}
	}
}

// recordMem records a memory elaboration with the given depth.
func (r *Report) recordMem(pos string, depth int64) {
	c := r.construct("mem", pos)
	if depth >= 2 {
		c.Alive = true
	}
}

// CompatibleWith reports whether candidate cand preserves every
// construct of reference r, per the scaling rule of Section 2.2: no
// loop alive in the reference may collapse to zero iterations, no
// branch taken in the reference may become unreachable, no non-trivial
// memory may degenerate, and no construct may disappear entirely.
// The returned reason describes the first violation.
func (r *Report) CompatibleWith(cand *Report) (bool, string) {
	keys := make([]string, 0, len(r.Constructs))
	for k := range r.Constructs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ref := r.Constructs[key]
		c, ok := cand.Constructs[key]
		if !ok {
			if ref.Alive {
				return false, fmt.Sprintf("%s disappeared", key)
			}
			continue
		}
		if ref.Alive && !c.Alive {
			return false, fmt.Sprintf("%s optimized away", key)
		}
		if !ref.NonConst && !c.NonConst {
			for arm := range ref.Branches {
				if !c.Branches[arm] {
					return false, fmt.Sprintf("%s: branch %q became dead", key, arm)
				}
			}
		}
		if ref.NonConst && !c.NonConst && len(c.Branches) > 0 {
			return false, fmt.Sprintf("%s: condition became constant", key)
		}
	}
	return true, ""
}

// String renders the report compactly, sorted by key, for debugging
// and golden tests.
func (r *Report) String() string {
	keys := make([]string, 0, len(r.Constructs))
	for k := range r.Constructs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		c := r.Constructs[k]
		fmt.Fprintf(&b, "%s alive=%v", k, c.Alive)
		if c.NonConst {
			b.WriteString(" nonconst")
		}
		if len(c.Branches) > 0 {
			arms := make([]string, 0, len(c.Branches))
			for a := range c.Branches {
				arms = append(arms, a)
			}
			sort.Strings(arms)
			fmt.Fprintf(&b, " branches=%v", arms)
		}
		b.WriteString("\n")
	}
	return b.String()
}
