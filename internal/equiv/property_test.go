package equiv

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/hdl"
	"repro/internal/sim"
	"repro/internal/synth"
)

// opHarness caches synthesized binary-operator netlists per (op,
// width) so the quick.Check property can evaluate thousands of input
// pairs cheaply.
type opHarness struct {
	sims map[string]*sim.GateSim
}

func (h *opHarness) get(t *testing.T, op string, width int) *sim.GateSim {
	key := fmt.Sprintf("%s/%d", op, width)
	if g, ok := h.sims[key]; ok {
		return g
	}
	src := fmt.Sprintf(`
module op (input [%d:0] a, b, output [%d:0] y, output flag);
  assign y = a %s b;
  assign flag = (a %s b) != 0;
endmodule`, width-1, width-1, op, op)
	d, err := hdl.ParseDesign(map[string]string{"op.v": src})
	if err != nil {
		t.Fatalf("%s: %v", key, err)
	}
	res, err := synth.Synthesize(d, "op", nil)
	if err != nil {
		t.Fatalf("%s: %v", key, err)
	}
	g, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	h.sims[key] = g
	return g
}

// TestGateArithmeticMatchesGoSemantics checks, over quick-generated
// operand pairs, that the synthesized ripple/array/barrel hardware for
// every binary operator computes exactly the width-masked Go result.
func TestGateArithmeticMatchesGoSemantics(t *testing.T) {
	h := &opHarness{sims: map[string]*sim.GateSim{}}
	const width = 12
	m := uint64(1)<<width - 1

	golden := map[string]func(a, b uint64) uint64{
		"+":  func(a, b uint64) uint64 { return (a + b) & m },
		"-":  func(a, b uint64) uint64 { return (a - b) & m },
		"*":  func(a, b uint64) uint64 { return (a * b) & m },
		"&":  func(a, b uint64) uint64 { return a & b },
		"|":  func(a, b uint64) uint64 { return a | b },
		"^":  func(a, b uint64) uint64 { return a ^ b },
		"<":  func(a, b uint64) uint64 { return b2u(a < b) },
		"<=": func(a, b uint64) uint64 { return b2u(a <= b) },
		"==": func(a, b uint64) uint64 { return b2u(a == b) },
		"!=": func(a, b uint64) uint64 { return b2u(a != b) },
	}
	for op, want := range golden {
		op, want := op, want
		g := h.get(t, op, width)
		prop := func(ra, rb uint64) bool {
			a, b := ra&m, rb&m
			g.SetInput("a", a)
			g.SetInput("b", b)
			if err := g.Eval(); err != nil {
				return false
			}
			y, err := g.Output("y")
			if err != nil {
				return false
			}
			return y == want(a, b)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("operator %q: %v", op, err)
		}
	}
}

// TestGateShiftsMatchGoSemantics covers variable shifts, whose barrel
// implementation has the trickiest corner cases (amounts ≥ width).
func TestGateShiftsMatchGoSemantics(t *testing.T) {
	const width = 12
	m := uint64(1)<<width - 1
	src := fmt.Sprintf(`
module sh (input [%d:0] a, input [4:0] n, output [%d:0] l, r);
  assign l = a << n;
  assign r = a >> n;
endmodule`, width-1, width-1)
	d, err := hdl.ParseDesign(map[string]string{"sh.v": src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, "sh", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(ra uint64, rn uint8) bool {
		a := ra & m
		n := uint64(rn) & 0x1F // 5-bit amount: can exceed the width
		g.SetInput("a", a)
		g.SetInput("n", n)
		if err := g.Eval(); err != nil {
			return false
		}
		l, _ := g.Output("l")
		r, _ := g.Output("r")
		wantL := (a << n) & m
		wantR := a >> n
		if n >= 64 {
			wantL, wantR = 0, 0
		}
		return l == wantL && r == wantR
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
