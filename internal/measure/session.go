package measure

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/parallel"
	"repro/internal/srcmetrics"
	"repro/internal/synth"
)

// Unit is one measurement request in a Session batch: a top module
// measured with or without the accounting procedure.
type Unit struct {
	Top           string
	UseAccounting bool
}

// SessionStats summarizes the cross-component sharing one Session
// achieved. Counters accumulate across MeasureAll calls.
type SessionStats struct {
	// Components is the number of units measured (disk-cache hits
	// included).
	Components int
	// Planned counts the units whose parameter binding was resolved
	// this session, i.e. that requested a signature from the shared
	// synthesis table (disk-cache hits skip planning entirely).
	Planned int
	// Synthesized counts the distinct signatures the table synthesized
	// fresh.
	Synthesized int
	// Shared counts the signature requests answered by an entry some
	// earlier unit — possibly in a previous MeasureAll call — already
	// synthesized.
	Shared int
}

// Session measures batches of components of one design with the whole
// pipeline shared across them: one parsed design, one component-scoped
// elaboration cache per top module (subtree memoization across that
// component's minimization search, reference elaboration, and final
// trees), and a single-flight synthesis table keyed by the canonical
// parameter signature, so each distinct (module, resolved parameters)
// design point is synthesized and metric-extracted exactly once no
// matter how many units — or MeasureAll calls — land on it.
//
// Every result is bit-identical to the per-component MeasureComponent
// path on the same parsed design: the elaboration cache's entries are
// bit-identical to uncached elaboration, signatures only collapse when
// the synthesized netlist is provably identical, and the on-disk cache
// records use the same keys and codec.
//
// A Session must not outlive its design and must not be shared across
// designs. It is safe for concurrent use.
type Session struct {
	design *hdl.Design

	mu        sync.Mutex
	flights   map[string]*sigFlight
	dedupMemo map[string]bool              // module name → could produce duplicate siblings
	srcMemo   map[string]srcmetrics.Counts // module name → software metrics
	stats     SessionStats
	elabStats elab.CacheStats // aggregated across component elaboration caches
}

// sigFlight is the single-flight synthesis of one signature: the first
// unit to request the signature computes it, everyone else waits on
// done and reads the shared entry.
type sigFlight struct {
	done      chan struct{}
	res       *synth.Result
	metrics   *Metrics // synthesis-derived metrics only (no source sums)
	instCount int
	err       error
}

// NewSession creates a measurement session over one parsed design.
func NewSession(design *hdl.Design) *Session {
	return &Session{
		design:    design,
		flights:   map[string]*sigFlight{},
		dedupMemo: map[string]bool{},
		srcMemo:   map[string]srcmetrics.Counts{},
	}
}

// Design returns the design the session measures.
func (s *Session) Design() *hdl.Design { return s.design }

// Stats returns a snapshot of the session's sharing counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ElabStats returns the cumulative subtree counters aggregated across
// every component elaboration cache the session has retired.
func (s *Session) ElabStats() elab.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elabStats
}

// addElabStats folds one retired component cache into the aggregate.
func (s *Session) addElabStats(st elab.CacheStats) {
	s.mu.Lock()
	s.elabStats.Hits += st.Hits
	s.elabStats.Misses += st.Misses
	s.elabStats.InstancesReused += st.InstancesReused
	s.mu.Unlock()
}

// plan is the outcome of resolving one unit before synthesis.
type plan struct {
	rec        *componentRecord // non-nil: answered from the disk cache
	top        string
	overrides  map[string]int64 // minimized parameters (nil without accounting)
	sigKey     string           // shared-table key (in-memory, this session)
	compKey    string           // unit's disk key ("" without a cache)
	diskSigKey string           // signature's disk key ("" without a cache)
	dedup      bool             // effective dedup flag for lowering
	hits       int              // minimization memo point-verdict hits
	misses     int
	owned      *sigFlight // non-nil: this call must synthesize the entry
	err        error      // deferred so one failed unit does not strand flights
}

// MeasureAll measures every unit of the batch, sharing the parse, the
// elaboration cache, and one synthesis per distinct signature across
// all of them. Results are returned in unit order and are bit-identical
// to calling MeasureComponent(design, u.Top, u.UseAccounting, opts)
// per unit, at every concurrency and with the disk cache off, cold, or
// warm.
//
// The batch is processed grouped by top module, each group owning a
// fresh elaboration cache that dies with it. Almost all the reuse that
// cache offers is component-local anyway — full-tree keys are
// hierarchical paths rooted at the top module name, so only a
// component's own reference elaboration and flights can ever hit them,
// and cross-component report-fragment hits are limited to shared
// library subtrees — while a batch-global cache accretes every
// component's trees and fragments into the live heap, and the
// garbage-collector mark time that costs across a cold sweep outweighs
// the extra hits. Each group plans its units — the minimization search
// for accounting units, the declared defaults otherwise (units with a
// warm disk-cache record skip planning entirely) — registers their
// canonical signatures in the shared flight table, and synthesizes the
// distinct signatures it owns exactly once. Aggregate: each unit
// assembles its result from its signature's shared entry plus its own
// per-module source metrics, and persists it through the disk cache
// under the same key the per-component path uses.
func (s *Session) MeasureAll(units []Unit, opts Options) ([]*ComponentResult, error) {
	// When the group pool is parallel the minimization search's inner
	// candidate pool is serialized so the machine is not oversubscribed
	// (same policy as the per-component corpus path).
	inner := opts.Concurrency
	if parallel.Workers(opts.Concurrency) > 1 {
		inner = 1
	}
	elabBefore := s.ElabStats()

	var tops []string
	groups := map[string][]int{}
	for i, u := range units {
		if _, ok := groups[u.Top]; !ok {
			tops = append(tops, u.Top)
		}
		groups[u.Top] = append(groups[u.Top], i)
	}

	// Phase 1: plan and synthesize, one component per worker. Errors are
	// carried in the plan, not returned, so every registered flight has
	// an owner that will resolve it even when a sibling unit fails;
	// owned flights are always resolved — synthesizeFlight closes done
	// unconditionally — so concurrent MeasureAll calls waiting on them
	// cannot deadlock.
	plans := make([]*plan, len(units))
	// Each worker holds one scratch workspace from the process-wide
	// pool for its whole run, so steady-state synthesis and metric
	// extraction reuse buffers instead of reallocating per flight.
	locals := parallel.NewLocal(opts.Concurrency, getWorkspace)
	parallel.ForEachWorker(opts.Concurrency, len(tops), func(worker, gi int) error {
		top := tops[gi]
		ecache := elab.NewCache()
		var owned []*plan
		for _, i := range groups[top] {
			p := s.planUnit(units[i], opts, inner, ecache)
			plans[i] = p
			if p.owned != nil {
				owned = append(owned, p)
			}
		}
		for _, p := range owned {
			s.synthesizeFlight(p, opts, ecache, locals.Get(worker))
		}
		// Every signature of this component this call can ever own is
		// now resolved; later hits come from the flight table, not from
		// re-elaboration, so the component's cache retires here.
		s.addElabStats(ecache.Stats())
		return nil
	})
	for _, w := range locals.All() {
		putWorkspace(w)
	}

	// Phase 2: aggregate per unit and persist through the disk cache.
	results, err := parallel.Map(opts.Concurrency, len(units), func(i int) (*ComponentResult, error) {
		return s.assembleUnit(units[i], plans[i], opts)
	})
	if err != nil {
		return nil, err
	}

	totalHits, totalMisses := 0, 0
	for _, p := range plans {
		totalHits += p.hits
		totalMisses += p.misses
	}
	if opts.ElabStats != nil {
		opts.ElabStats.Add(s.ElabStats().Sub(elabBefore), totalHits, totalMisses)
	}
	return results, nil
}

// planUnit resolves one unit's parameter binding against its
// component's elaboration cache and registers its signature in the
// shared table.
func (s *Session) planUnit(u Unit, opts Options, inner int, ecache *elab.Cache) *plan {
	var compKey string
	if opts.Cache != nil {
		k, err := componentKey(s.design, u.Top, u.UseAccounting, opts)
		if err != nil {
			return &plan{err: err}
		}
		compKey = k
		if !opts.Cache.Verifying() {
			if rec, ok := cache.Fetch(opts.Cache, compKey, recordCodec); ok {
				s.mu.Lock()
				s.stats.Components++
				s.mu.Unlock()
				return &plan{rec: rec}
			}
		}
	}

	p := &plan{top: u.Top, compKey: compKey}
	if u.UseAccounting {
		params, memo, err := minimizeParams(s.design, u.Top, inner, ecache)
		if err != nil {
			return &plan{err: err}
		}
		p.overrides = params
		p.hits, p.misses = memo.counters()
	}
	// Canonical signature: the full resolved parameter map, so a unit
	// measured at defaults and a unit whose minimization landed on the
	// defaults name the same design point.
	full, err := s.resolvedParams(u.Top, p.overrides)
	if err != nil {
		return &plan{err: err, hits: p.hits, misses: p.misses}
	}
	sig := elab.ParamSignature(u.Top, full)

	// The hierarchy decides whether the dedup flag is part of the key:
	// when no parent anywhere under the top can instantiate the same
	// (module, parameters) twice, the single-instance rule never fires
	// and lowering is bit-identical with the flag on or off, so the
	// with- and without-accounting sweeps share one synthesis.
	possible, err := s.dedupPossible(u.Top, map[string]bool{})
	if err != nil {
		return &plan{err: err, hits: p.hits, misses: p.misses}
	}
	p.dedup = u.UseAccounting
	dedupKey := "any"
	if possible {
		dedupKey = fmt.Sprintf("%t", p.dedup)
	}
	p.sigKey = cache.Key(append([]string{
		"session-sig", sig, "dedup=" + dedupKey,
		fmt.Sprintf("notmpl=%t", opts.DisableTemplates),
	}, opts.CacheKeyParts()...)...)
	if opts.Cache != nil {
		// The disk form of the signature entry additionally hashes the
		// subtree sources: the in-memory table lives and dies with one
		// parsed design, the disk entry must name which sources the
		// design point was synthesized from.
		st, err := s.design.SubtreeHash(u.Top)
		if err != nil {
			return &plan{err: err, hits: p.hits, misses: p.misses}
		}
		p.diskSigKey = cache.KindKey("sig", append([]string{
			st, sig, "dedup=" + dedupKey,
			fmt.Sprintf("notmpl=%t", opts.DisableTemplates),
		}, opts.CacheKeyParts()...)...)
	}

	s.mu.Lock()
	s.stats.Components++
	s.stats.Planned++
	f, ok := s.flights[p.sigKey]
	if !ok {
		f = &sigFlight{done: make(chan struct{})}
		s.flights[p.sigKey] = f
		s.stats.Synthesized++
		p.owned = f
	} else {
		s.stats.Shared++
	}
	s.mu.Unlock()
	return p
}

// resolvedParams returns the full parameter map of top under the given
// overrides: declared defaults resolved left to right, overridden
// values replacing them.
func (s *Session) resolvedParams(top string, overrides map[string]int64) (map[string]int64, error) {
	mod, err := s.design.Module(top)
	if err != nil {
		return nil, err
	}
	full, err := defaultParams(mod)
	if err != nil {
		return nil, err
	}
	for name, v := range overrides {
		if _, ok := full[name]; !ok {
			return nil, fmt.Errorf("measure: module %s has no parameter %q", top, name)
		}
		full[name] = v
	}
	return full, nil
}

// dedupPossible reports whether elaborating module name could ever
// yield two sibling instances of the same (module, parameters) design
// point — the only shape the single-instance rule acts on. It is a
// conservative static over-approximation on the AST, so planning needs
// no elaboration: duplicate siblings require a parent whose body
// instantiates the same module name more than once, or instantiates
// inside a generate loop, anywhere in the hierarchy. A false negative
// is impossible; a false positive only costs the with/without sweeps a
// shared synthesis, never correctness. Verdicts are memoized per
// module name (the property is parameter-independent).
func (s *Session) dedupPossible(name string, visiting map[string]bool) (bool, error) {
	s.mu.Lock()
	v, ok := s.dedupMemo[name]
	s.mu.Unlock()
	if ok {
		return v, nil
	}
	if visiting[name] {
		// Instantiation cycle: elaboration will reject the design; stay
		// conservative here and let that error surface downstream.
		return true, nil
	}
	visiting[name] = true
	defer delete(visiting, name)
	mod, err := s.design.Module(name)
	if err != nil {
		return false, err
	}
	counts := map[string]int{}
	children := map[string]bool{}
	v = scanDedupItems(mod.Items, false, counts, children)
	if !v {
		for ch := range children {
			cv, err := s.dedupPossible(ch, visiting)
			if err != nil {
				return false, err
			}
			if cv {
				v = true
				break
			}
		}
	}
	s.mu.Lock()
	s.dedupMemo[name] = v
	s.mu.Unlock()
	return v, nil
}

// scanDedupItems walks one module body (descending into generate
// blocks) and reports whether it can stamp the same child module name
// twice: two instantiation statements of one module, or any
// instantiation inside a generate for loop. Instantiated module names
// are collected into children for the hierarchy recursion.
func scanDedupItems(items []hdl.Item, inLoop bool, counts map[string]int, children map[string]bool) bool {
	for _, it := range items {
		switch v := it.(type) {
		case *hdl.Instance:
			children[v.ModuleName] = true
			if inLoop {
				return true
			}
			counts[v.ModuleName]++
			if counts[v.ModuleName] > 1 {
				return true
			}
		case *hdl.GenFor:
			if scanDedupItems(v.Body, true, counts, children) {
				return true
			}
		case *hdl.GenIf:
			// Branches are exclusive at elaboration time; counting both
			// into one tally only over-approximates.
			if scanDedupItems(v.Then, inLoop, counts, children) {
				return true
			}
			if scanDedupItems(v.Else, inLoop, counts, children) {
				return true
			}
		}
	}
	return false
}

// synthesizeFlight computes one shared-table entry, routed through the
// disk cache's signature-level records: a warm "sig" entry answers the
// flight without elaborating or synthesizing anything (the incremental
// remeasurement fast path for design points whose subtree sources are
// unchanged); a miss elaborates the design point against the
// component's elaboration cache (reusing every subtree the
// minimization search or reference elaboration already built — a unit
// measured at its defaults reuses the reference tree whole), lowers
// it, optimizes, extracts the synthesis-derived metrics, and persists
// the record. done is always closed, error or not.
func (s *Session) synthesizeFlight(p *plan, opts Options, ecache *elab.Cache, ws *Workspace) {
	f := p.owned
	defer close(f.done)
	compute := func() (*sigRecord, error) {
		inst, report, err := elab.ElaborateOpts(s.design, p.top, p.overrides, elab.Options{Cache: ecache})
		if err != nil {
			return nil, err
		}
		var sws *synth.Workspace
		if ws != nil {
			sws = ws.synth
		}
		synres, err := synth.SynthesizeInstance(inst, report, synth.LowerOptions{
			DedupInstances:   p.dedup,
			DisableTemplates: opts.DisableTemplates,
			Workspace:        sws,
		})
		if err != nil {
			return nil, err
		}
		mopts := opts
		mopts.DedupInstances = p.dedup
		// Metrics are extracted before Slim trims the netlist's derived
		// tables in place.
		metrics := synthMetricsWS(synres, mopts, ws)
		slim := synres.Slim()
		return &sigRecord{
			Metrics:       metrics,
			InstanceCount: inst.CountInstances(),
			Deduped:       slim.Deduped,
			Optimized:     slim.Optimized,
		}, nil
	}
	// A nil cache runs compute directly (p.diskSigKey is "" then and
	// never consulted).
	rec, _, err := cache.DoEq(opts.Cache, p.diskSigKey, sigRecordCodec, compute, compareSigRecords)
	if err != nil {
		f.err = err
		return
	}
	// The flight table outlives the call, so it retains only the
	// record's projection — the optimized netlist and the lowering
	// counters. Keeping the raw netlist, instance tree, and report would
	// pin every signature's full elaboration for the session's lifetime,
	// and that live-heap growth costs more in garbage-collector mark
	// time across a batch than the fields are worth.
	f.metrics = rec.Metrics
	f.instCount = rec.InstanceCount
	f.res = &synth.Result{Optimized: rec.Optimized, Deduped: rec.Deduped}
}

// sourceCounts memoizes one module's software metrics for the life of
// the session. The counts are a pure function of the parsed design, and
// every unit sums them over its transitive module set, so without the
// memo a batch re-formats each shared library module's source once per
// unit that includes it.
func (s *Session) sourceCounts(name string) (srcmetrics.Counts, error) {
	s.mu.Lock()
	c, ok := s.srcMemo[name]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	mod, err := s.design.Module(name)
	if err != nil {
		return srcmetrics.Counts{}, err
	}
	c = srcmetrics.MeasureModule(mod)
	s.mu.Lock()
	s.srcMemo[name] = c
	s.mu.Unlock()
	return c, nil
}

// assembleUnit builds one unit's result from its plan and the shared
// synthesis table, persisting it through the disk cache.
func (s *Session) assembleUnit(u Unit, p *plan, opts Options) (*ComponentResult, error) {
	if p.rec != nil {
		return p.rec.toResult(), nil
	}
	if p.err != nil {
		return nil, p.err
	}
	s.mu.Lock()
	f := s.flights[p.sigKey]
	s.mu.Unlock()
	<-f.done
	if f.err != nil {
		return nil, f.err
	}

	res := &ComponentResult{
		InstanceCount:    f.instCount,
		DedupedInstances: f.res.Deduped,
		Synth:            f.res,
		MinimizedParams:  p.overrides,
		ElabCacheHits:    p.hits,
		ElabCacheMisses:  p.misses,
	}
	modules, err := s.design.TransitiveModules(u.Top)
	if err != nil {
		return nil, err
	}
	res.UniqueModules = modules
	m := *f.metrics // copy: the entry is shared across units
	for _, name := range modules {
		src, err := s.sourceCounts(name)
		if err != nil {
			return nil, err
		}
		m.Stmts += src.Stmts
		m.LoC += src.LoC
	}
	res.Metrics = &m

	if opts.Cache == nil {
		return res, nil
	}
	// Same key and codec as the per-component path: a cold batch
	// populates the entries MeasureComponent would, and in verify mode
	// the batch result is compared against the stored record.
	rec, _, err := cache.DoEq(opts.Cache, p.compKey, recordCodec, func() (*componentRecord, error) {
		return recordOf(res), nil
	}, compareRecords)
	if err != nil {
		return nil, err
	}
	return rec.toResult(), nil
}
