package netlist_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// The golden corpus test pins Optimize's full output — the structural
// hash of the optimized netlist plus the fold/merge/dead counts — for
// every synthetic component under both lowering modes, so the
// worklist-driven pass is provably bit-identical to the iterated
// rebuild-the-world fixpoint it replaced. Netlist.Hash() keys the
// persistent measurement cache and every paper table is computed from
// the optimized structure, so any divergence here would silently shift
// published numbers. The old fixpoint is kept below as optimizeRef;
// -update regenerates the golden file from optimizeRef, never from the
// production pass.

var updateGolden = flag.Bool("update", false, "regenerate testdata/optimize_golden.json from the reference fixpoint")

const goldenPath = "testdata/optimize_golden.json"

type goldenEntry struct {
	Label   string `json:"label"`
	Dedup   bool   `json:"dedup"`
	RawHash string `json:"rawHash"`
	OptHash string `json:"optHash"`
	Folded  int    `json:"folded"`
	Merged  int    `json:"merged"`
	Dead    int    `json:"dead"`
}

// corpusRaws lowers every corpus component to its raw netlist, in both
// plain and single-instance-rule modes.
func corpusRaws(t *testing.T) map[string]*netlist.Netlist {
	t.Helper()
	out := map[string]*netlist.Netlist{}
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		for _, dedup := range []bool{false, true} {
			inst, _, err := elab.Elaborate(d, c.Top, nil)
			if err != nil {
				t.Fatalf("%s: %v", c.Label(), err)
			}
			raw, _, err := synth.LowerOpts(inst, synth.LowerOptions{DedupInstances: dedup})
			if err != nil {
				t.Fatalf("%s: %v", c.Label(), err)
			}
			out[entryKey(c.Label(), dedup)] = raw
		}
	}
	return out
}

func entryKey(label string, dedup bool) string {
	if dedup {
		return label + "|dedup"
	}
	return label
}

// TestGoldenOptimizeCorpus checks the production Optimize against the
// pinned golden hashes and counts on every corpus component.
func TestGoldenOptimizeCorpus(t *testing.T) {
	raws := corpusRaws(t)

	if *updateGolden {
		var gs []goldenEntry
		keys := make([]string, 0, len(raws))
		for k := range raws {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			raw := raws[k]
			opt, ref, err := optimizeRef(raw)
			if err != nil {
				t.Fatalf("%s: reference optimize: %v", k, err)
			}
			label, dedup := k, false
			if l := len("|dedup"); len(k) > l && k[len(k)-l:] == "|dedup" {
				label, dedup = k[:len(k)-l], true
			}
			gs = append(gs, goldenEntry{
				Label: label, Dedup: dedup,
				RawHash: raw.Hash(), OptHash: opt.Hash(),
				Folded: ref.folded, Merged: ref.merged, Dead: ref.dead,
			})
		}
		data, err := json.MarshalIndent(gs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", goldenPath, len(gs))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	var gs []goldenEntry
	if err := json.Unmarshal(data, &gs); err != nil {
		t.Fatal(err)
	}
	if len(gs) != len(raws) {
		t.Fatalf("golden has %d entries, corpus has %d", len(gs), len(raws))
	}
	for _, g := range gs {
		key := entryKey(g.Label, g.Dedup)
		raw, ok := raws[key]
		if !ok {
			t.Errorf("golden entry %s no longer in corpus", key)
			continue
		}
		if raw.Hash() != g.RawHash {
			t.Errorf("%s: raw netlist hash %s, golden %s (lowering output changed)", key, raw.Hash()[:16], g.RawHash[:16])
		}
		opt, res, err := netlist.Optimize(raw)
		if err != nil {
			t.Errorf("%s: %v", key, err)
			continue
		}
		if !res.Converged {
			t.Errorf("%s: Converged = false with nil error", key)
		}
		if opt.Hash() != g.OptHash {
			t.Errorf("%s: optimized hash %s, golden %s (optimizer output changed)", key, opt.Hash()[:16], g.OptHash[:16])
		}
		if res.ConstFolded != g.Folded || res.Merged != g.Merged || res.DeadRemoved != g.Dead {
			t.Errorf("%s: counts folded=%d merged=%d dead=%d, golden folded=%d merged=%d dead=%d",
				key, res.ConstFolded, res.Merged, res.DeadRemoved, g.Folded, g.Merged, g.Dead)
		}
	}
}

// TestOptimizeMatchesReference diffs the worklist pass against the
// reference fixpoint live on the full corpus: identical structural
// hash and identical removal counts.
func TestOptimizeMatchesReference(t *testing.T) {
	for key, raw := range corpusRaws(t) {
		got, res, err := netlist.Optimize(raw)
		if err != nil {
			t.Errorf("%s: %v", key, err)
			continue
		}
		want, ref, err := optimizeRef(raw)
		if err != nil {
			t.Errorf("%s: reference: %v", key, err)
			continue
		}
		if got.Hash() != want.Hash() {
			t.Errorf("%s: hash %s, reference %s", key, got.Hash()[:16], want.Hash()[:16])
		}
		if res.ConstFolded != ref.folded || res.Merged != ref.merged || res.DeadRemoved != ref.dead {
			t.Errorf("%s: counts folded=%d merged=%d dead=%d, reference folded=%d merged=%d dead=%d",
				key, res.ConstFolded, res.Merged, res.DeadRemoved, ref.folded, ref.merged, ref.dead)
		}
		if len(got.Cells) != len(want.Cells) {
			t.Errorf("%s: %d cells, reference %d", key, len(got.Cells), len(want.Cells))
		}
	}
}

// ---------------------------------------------------------------------
// Reference implementation: the pre-worklist iterated fixpoint, kept
// verbatim (modulo exported-API access) as the executable specification
// the production pass is tested against.

type refResult struct {
	folded, merged, dead int
}

func optimizeRef(n *netlist.Netlist) (*netlist.Netlist, refResult, error) {
	res := refResult{}
	cur := n
	for iter := 0; iter < 50; iter++ {
		next, folded, merged, err := refFoldAndHash(cur)
		if err != nil {
			return nil, res, err
		}
		next, dead := refRemoveDead(next)
		res.folded += folded
		res.merged += merged
		res.dead += dead
		cur = next
		if folded == 0 && merged == 0 && dead == 0 {
			break
		}
	}
	return cur, res, nil
}

type refSubst struct {
	m map[netlist.NetID]netlist.NetID
}

func (s *refSubst) get(id netlist.NetID) netlist.NetID {
	if id == netlist.Nil {
		return netlist.Nil
	}
	for {
		nid, ok := s.m[id]
		if !ok {
			return id
		}
		id = nid
	}
}

func (s *refSubst) put(from, to netlist.NetID) { s.m[from] = to }

type refHashKey struct {
	t       netlist.CellType
	a, b, c netlist.NetID
	clk     netlist.NetID
}

func refFoldAndHash(n *netlist.Netlist) (*netlist.Netlist, int, int, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, 0, 0, err
	}
	sub := &refSubst{m: map[netlist.NetID]netlist.NetID{}}
	hash := map[refHashKey]netlist.NetID{}
	removed := make([]bool, len(n.Cells))
	folded, merged := 0, 0
	c0, c1 := n.Const0, n.Const1

	isConst := func(id netlist.NetID) (bool, bool) {
		switch id {
		case c0:
			return false, true
		case c1:
			return true, true
		}
		return false, false
	}

	for _, ci := range order {
		cell := &n.Cells[ci]
		a := sub.get(cell.In[0])
		b := sub.get(cell.In[1])
		s := sub.get(cell.In[2])

		simplifyTo := func(id netlist.NetID) {
			sub.put(cell.Out, id)
			removed[ci] = true
			folded++
		}

		av, aok := isConst(a)
		bv, bok := isConst(b)
		switch cell.Type {
		case netlist.Buf:
			simplifyTo(a)
			continue
		case netlist.Inv:
			if aok {
				simplifyTo(refConstNet(!av, c0, c1))
				continue
			}
		case netlist.And2:
			switch {
			case aok && !av, bok && !bv:
				simplifyTo(c0)
				continue
			case aok && av:
				simplifyTo(b)
				continue
			case bok && bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(a)
				continue
			}
		case netlist.Or2:
			switch {
			case aok && av, bok && bv:
				simplifyTo(c1)
				continue
			case aok && !av:
				simplifyTo(b)
				continue
			case bok && !bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(a)
				continue
			}
		case netlist.Nand2:
			if (aok && !av) || (bok && !bv) {
				simplifyTo(c1)
				continue
			}
		case netlist.Nor2:
			if (aok && av) || (bok && bv) {
				simplifyTo(c0)
				continue
			}
		case netlist.Xor2:
			switch {
			case aok && bok:
				simplifyTo(refConstNet(av != bv, c0, c1))
				continue
			case aok && !av:
				simplifyTo(b)
				continue
			case bok && !bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(c0)
				continue
			}
		case netlist.Xnor2:
			if aok && bok {
				simplifyTo(refConstNet(av == bv, c0, c1))
				continue
			}
			if a == b {
				simplifyTo(c1)
				continue
			}
		case netlist.Mux2:
			sv, sok := isConst(s)
			switch {
			case sok && !sv:
				simplifyTo(a)
				continue
			case sok && sv:
				simplifyTo(b)
				continue
			case a == b:
				simplifyTo(a)
				continue
			case aok && bok && !av && bv:
				simplifyTo(s)
				continue
			}
		}

		ka, kb := a, b
		if refCommutative(cell.Type) && ka > kb {
			ka, kb = kb, ka
		}
		key := refHashKey{t: cell.Type, a: ka, b: kb, c: s, clk: sub.get(cell.Clk)}
		if prev, ok := hash[key]; ok {
			sub.put(cell.Out, prev)
			removed[ci] = true
			merged++
			continue
		}
		hash[key] = cell.Out
	}

	out := &netlist.Netlist{
		Nets:        n.Nets,
		NetNameData: n.NetNameData,
		NetNameOff:  n.NetNameOff,
		Const0:      c0,
		Const1:      c1,
	}
	for ci := range n.Cells {
		if removed[ci] {
			continue
		}
		c := n.Cells[ci]
		for j := range c.In {
			c.In[j] = sub.get(c.In[j])
		}
		c.Clk = sub.get(c.Clk)
		out.Cells = append(out.Cells, c)
	}
	for _, r := range n.RAMs {
		rc := *r
		rc.Clk = sub.get(r.Clk)
		rc.WritePorts = make([]netlist.RAMWritePort, len(r.WritePorts))
		for i, wp := range r.WritePorts {
			rc.WritePorts[i] = netlist.RAMWritePort{
				En:   sub.get(wp.En),
				Addr: refSubstIDs(wp.Addr, sub),
				Data: refSubstIDs(wp.Data, sub),
			}
		}
		rc.ReadPorts = make([]netlist.RAMReadPort, len(r.ReadPorts))
		for i, rp := range r.ReadPorts {
			rc.ReadPorts[i] = netlist.RAMReadPort{
				Addr: refSubstIDs(rp.Addr, sub),
				Out:  append([]netlist.NetID(nil), rp.Out...),
			}
		}
		out.RAMs = append(out.RAMs, &rc)
	}
	for _, p := range n.Inputs {
		out.Inputs = append(out.Inputs, p)
	}
	for _, p := range n.Outputs {
		out.Outputs = append(out.Outputs, netlist.PortBit{Name: p.Name, Net: sub.get(p.Net)})
	}
	return out, folded, merged, nil
}

func refSubstIDs(ids []netlist.NetID, s *refSubst) []netlist.NetID {
	out := make([]netlist.NetID, len(ids))
	for i, id := range ids {
		out[i] = s.get(id)
	}
	return out
}

func refConstNet(v bool, c0, c1 netlist.NetID) netlist.NetID {
	if v {
		return c1
	}
	return c0
}

func refCommutative(t netlist.CellType) bool {
	switch t {
	case netlist.And2, netlist.Or2, netlist.Nand2, netlist.Nor2, netlist.Xor2, netlist.Xnor2:
		return true
	}
	return false
}

func refRemoveDead(n *netlist.Netlist) (*netlist.Netlist, int) {
	drivers := refDrivers(n)
	live := make([]bool, len(n.Cells))
	var stack []netlist.NetID
	push := func(id netlist.NetID) {
		if id != netlist.Nil {
			stack = append(stack, id)
		}
	}
	for _, p := range n.Outputs {
		push(p.Net)
	}
	for _, r := range n.RAMs {
		push(r.Clk)
		for _, wp := range r.WritePorts {
			push(wp.En)
			for _, b := range wp.Addr {
				push(b)
			}
			for _, b := range wp.Data {
				push(b)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				push(b)
			}
		}
	}
	seenNet := make([]bool, n.NumNets())
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenNet[id] {
			continue
		}
		seenNet[id] = true
		d := drivers[id]
		if d < 0 || live[d] {
			continue
		}
		live[d] = true
		c := &n.Cells[d]
		for _, in := range c.Inputs() {
			push(in)
		}
		push(c.Clk)
	}

	dead := 0
	out := &netlist.Netlist{
		Nets:        n.Nets,
		NetNameData: n.NetNameData,
		NetNameOff:  n.NetNameOff,
		Const0:      n.Const0,
		Const1:      n.Const1,
		RAMs:        n.RAMs,
		Inputs:      n.Inputs,
		Outputs:     n.Outputs,
	}
	for ci := range n.Cells {
		if live[ci] {
			out.Cells = append(out.Cells, n.Cells[ci])
		} else {
			dead++
		}
	}
	return out, dead
}

func refDrivers(n *netlist.Netlist) []int {
	d := make([]int, n.NumNets())
	for i := range d {
		d[i] = -1
	}
	for i := range n.Cells {
		d[n.Cells[i].Out] = i
	}
	return d
}
