package cones_test

import (
	"testing"

	"repro/internal/cones"
	"repro/internal/designs"
	"repro/internal/synth"
)

// TestAnalyzeSummaryMatchesAnalyze pins the summary fast path against
// the full analysis over the whole corpus, reusing one workspace dirty
// across components the way a session pool worker does.
func TestAnalyzeSummaryMatchesAnalyze(t *testing.T) {
	ws := &cones.Workspace{}
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		res, err := synth.Synthesize(d, c.Top, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		full := cones.Analyze(res.Optimized)
		for run := 0; run < 2; run++ {
			got := cones.AnalyzeSummary(res.Optimized, ws)
			want := cones.Summary{FanInLC: full.FanInLC, MaxDepth: full.MaxDepth, NumCones: len(full.Cones)}
			if got != want {
				t.Errorf("%s run %d: AnalyzeSummary = %+v, Analyze says %+v", c.Label(), run, got, want)
			}
		}
		if got := cones.AnalyzeSummary(res.Optimized, nil); got.FanInLC != full.FanInLC {
			t.Errorf("%s: nil-workspace summary FanInLC %d != %d", c.Label(), got.FanInLC, full.FanInLC)
		}
	}
}
