package nlme

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// paperData assembles an nlme.Data over the given Table 3 metrics from
// the paper's 18 components. Zero metric values are replaced by 1,
// which is how the paper evidently handled the FFs = 0 rows (that floor
// reproduces its published σε of 2.14 exactly).
func paperData(metrics ...dataset.Metric) *Data {
	comps := dataset.Paper()
	d := &Data{}
	for _, c := range comps {
		row := make([]float64, len(metrics))
		for k, m := range metrics {
			row[k] = c.Metrics[m]
			if row[k] == 0 {
				row[k] = 1
			}
		}
		d.Groups = append(d.Groups, c.Project)
		d.Efforts = append(d.Efforts, c.Effort)
		d.Metrics = append(d.Metrics, row)
	}
	for _, m := range metrics {
		d.MetricNames = append(d.MetricNames, string(m))
	}
	return d
}

func TestFitReproducesTable4SigmaEps(t *testing.T) {
	// The headline reproduction: the mixed-effects σε of every
	// single-metric estimator must match Table 4 to the published
	// 2-decimal precision (±0.015 absolute tolerance).
	want := dataset.PaperSigmaEps()
	for _, m := range dataset.AllMetrics {
		r, err := Fit(paperData(m))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if diff := math.Abs(r.SigmaEps - want[string(m)]); diff > 0.015 {
			t.Errorf("%s: σε = %.3f, paper %.2f (diff %.3f)", m, r.SigmaEps, want[string(m)], diff)
		}
		if !r.Mixed {
			t.Errorf("%s: result not marked mixed", m)
		}
	}
}

func TestFitFixedReproducesTable4LastRow(t *testing.T) {
	want := dataset.PaperSigmaEpsNoRho()
	for _, m := range dataset.AllMetrics {
		r, err := FitFixed(paperData(m))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if diff := math.Abs(r.SigmaEps - want[string(m)]); diff > 0.015 {
			t.Errorf("%s: σε(ρ=1) = %.3f, paper %.2f (diff %.3f)", m, r.SigmaEps, want[string(m)], diff)
		}
		for p, rho := range r.Productivities {
			if rho != 1 {
				t.Errorf("%s: fixed fit productivity %s = %v, want 1", m, p, rho)
			}
		}
	}
}

func TestFitDEE1ReproducesPaper(t *testing.T) {
	d := paperData(dataset.Stmts, dataset.FanInLC)
	r, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(r.SigmaEps - 0.46); diff > 0.015 {
		t.Errorf("DEE1 σε = %.3f, paper 0.46", r.SigmaEps)
	}
	// Section 5.1.1: AIC 34.8, BIC 38.4 (ours: 34.9/38.4 — the paper
	// rounds AIC differently by ≤0.1).
	if math.Abs(r.AIC()-34.8) > 0.25 {
		t.Errorf("DEE1 AIC = %.2f, paper 34.8", r.AIC())
	}
	if math.Abs(r.BIC()-38.4) > 0.25 {
		t.Errorf("DEE1 BIC = %.2f, paper 38.4", r.BIC())
	}
	// Fixed-effects comparison value from Table 4's last row.
	rf, err := FitFixed(d)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(rf.SigmaEps - 0.53); diff > 0.015 {
		t.Errorf("DEE1 σε(ρ=1) = %.3f, paper 0.53", rf.SigmaEps)
	}
}

func TestFitStmtsAICBIC(t *testing.T) {
	// Section 5.1.1: "the AIC and BIC values of Stmts are 37.0 and
	// 39.7, respectively".
	r, err := Fit(paperData(dataset.Stmts))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.AIC()-37.0) > 0.2 {
		t.Errorf("Stmts AIC = %.2f, paper 37.0", r.AIC())
	}
	if math.Abs(r.BIC()-39.7) > 0.2 {
		t.Errorf("Stmts BIC = %.2f, paper 39.7", r.BIC())
	}
}

func TestDEE1ColumnMatchesPaper(t *testing.T) {
	// The per-component DEE1 estimates of Table 4 (with empirical-Bayes
	// productivities) — every one must match the published column to
	// ±0.15 person-months.
	d := paperData(dataset.Stmts, dataset.FanInLC)
	r, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.PaperDEE1Column()
	for _, c := range dataset.Paper() {
		est, err := r.Predict(
			[]float64{c.Metrics[dataset.Stmts], c.Metrics[dataset.FanInLC]},
			r.Productivities[c.Project])
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(est - want[c.Label()]); diff > 0.15 {
			t.Errorf("%s: DEE1 = %.2f, paper %.1f", c.Label(), est, want[c.Label()])
		}
	}
}

func TestFitLogLikConsistency(t *testing.T) {
	// The reported LogLik must equal the closed-form likelihood
	// re-evaluated at the fitted parameters.
	d := paperData(dataset.Stmts, dataset.FanInLC)
	r, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := LogLikelihood(d, r.Weights, r.SigmaEps, r.SigmaRho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-r.LogLik) > 1e-6 {
		t.Errorf("LogLik = %v, re-evaluated %v", r.LogLik, ll)
	}
}

func TestFitRecoverySynthetic(t *testing.T) {
	// Generate data from a known model and verify parameter recovery.
	rng := rand.New(rand.NewSource(42))
	const (
		nGroups  = 12
		perGroup = 10
		wTrue    = 0.05
		seTrue   = 0.25
		srTrue   = 0.5
	)
	d := &Data{MetricNames: []string{"m"}}
	for g := 0; g < nGroups; g++ {
		b := rng.NormFloat64() * srTrue
		name := string(rune('A' + g))
		for j := 0; j < perGroup; j++ {
			m := 50 + rng.Float64()*2000
			logEff := b + math.Log(wTrue*m) + rng.NormFloat64()*seTrue
			d.Groups = append(d.Groups, name)
			d.Efforts = append(d.Efforts, math.Exp(logEff))
			d.Metrics = append(d.Metrics, []float64{m})
		}
	}
	r, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Weights[0]-wTrue)/wTrue > 0.25 {
		t.Errorf("w = %v, want ≈%v", r.Weights[0], wTrue)
	}
	if math.Abs(r.SigmaEps-seTrue) > 0.08 {
		t.Errorf("σε = %v, want ≈%v", r.SigmaEps, seTrue)
	}
	if math.Abs(r.SigmaRho-srTrue) > 0.25 {
		t.Errorf("σρ = %v, want ≈%v", r.SigmaRho, srTrue)
	}
}

func TestFitWeightScaleInvariance(t *testing.T) {
	// Scaling a metric column by c must scale its fitted weight by 1/c
	// and leave σε, σρ, and the log-likelihood unchanged.
	d1 := paperData(dataset.Stmts)
	d2 := paperData(dataset.Stmts)
	const c = 1000.0
	for i := range d2.Metrics {
		d2.Metrics[i][0] *= c
	}
	r1, err := Fit(d1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fit(d2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Weights[0]/r2.Weights[0]-c)/c > 1e-3 {
		t.Errorf("weight ratio = %v, want %v", r1.Weights[0]/r2.Weights[0], c)
	}
	if math.Abs(r1.SigmaEps-r2.SigmaEps) > 1e-5 {
		t.Errorf("σε changed under rescaling: %v vs %v", r1.SigmaEps, r2.SigmaEps)
	}
	if math.Abs(r1.LogLik-r2.LogLik) > 1e-4 {
		t.Errorf("logLik changed under rescaling: %v vs %v", r1.LogLik, r2.LogLik)
	}
}

func TestFitNeedsTwoProjects(t *testing.T) {
	d := &Data{
		Groups:  []string{"A", "A", "A"},
		Efforts: []float64{1, 2, 3},
		Metrics: [][]float64{{10}, {20}, {30}},
	}
	if _, err := Fit(d); err == nil {
		t.Error("expected error for single-project mixed fit")
	}
	if _, err := FitFixed(d); err != nil {
		t.Errorf("FitFixed should handle a single project: %v", err)
	}
}

func TestFixedNeverBeatsMixed(t *testing.T) {
	// The mixed model nests the fixed model (σρ = 0), so its maximized
	// likelihood can never be lower and its σε can never be higher
	// (up to optimizer tolerance).
	for _, m := range []dataset.Metric{dataset.Stmts, dataset.Nets, dataset.Cells} {
		d := paperData(m)
		rm, err := Fit(d)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := FitFixed(d)
		if err != nil {
			t.Fatal(err)
		}
		if rm.LogLik < rf.LogLik-1e-6 {
			t.Errorf("%s: mixed logLik %v < fixed %v", m, rm.LogLik, rf.LogLik)
		}
		if rm.SigmaEps > rf.SigmaEps+1e-6 {
			t.Errorf("%s: mixed σε %v > fixed %v", m, rm.SigmaEps, rf.SigmaEps)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	r := &Result{Weights: []float64{1, 2}}
	if _, err := r.Predict([]float64{1}, 1); err == nil {
		t.Error("expected metric-count error")
	}
	if _, err := r.Predict([]float64{1, 2}, 0); err == nil {
		t.Error("expected productivity error")
	}
	v, err := r.Predict([]float64{3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != (1*3+2*4)/2.0 {
		t.Errorf("Predict = %v, want 5.5", v)
	}
}

func TestMeanFactorAndCI(t *testing.T) {
	r := &Result{SigmaEps: 0.46, SigmaRho: 0.3}
	want := math.Exp((0.46*0.46 + 0.3*0.3) / 2)
	if math.Abs(r.MeanFactor()-want) > 1e-12 {
		t.Errorf("MeanFactor = %v, want %v", r.MeanFactor(), want)
	}
	lo, hi := r.ConfidenceInterval(10, 0.90)
	// σε=0.46 ⇒ 90% factors ≈ (0.47, 2.13) per Section 5.1.1.
	if lo < 4.5 || lo > 4.9 {
		t.Errorf("CI lo = %v, want ≈4.7", lo)
	}
	if hi < 20.8 || hi > 21.8 {
		t.Errorf("CI hi = %v, want ≈21.3", hi)
	}
}

func TestProductivitiesCenterNearOne(t *testing.T) {
	// With µ=0 random effects, the fitted ρ_i cluster around 1 (their
	// median). All paper-team values fall well inside (0.5, 2).
	r, err := Fit(paperData(dataset.Stmts, dataset.FanInLC))
	if err != nil {
		t.Fatal(err)
	}
	projects, rhos := r.SortedProductivities()
	if len(projects) != 4 {
		t.Fatalf("got %d projects", len(projects))
	}
	for i, p := range projects {
		if rhos[i] < 0.5 || rhos[i] > 2 {
			t.Errorf("ρ(%s) = %v, outside (0.5, 2)", p, rhos[i])
		}
	}
}

func TestFitRejectsInvalidData(t *testing.T) {
	d := validData()
	d.Efforts[0] = -1
	if _, err := Fit(d); err == nil {
		t.Error("Fit must validate")
	}
	if _, err := FitFixed(d); err == nil {
		t.Error("FitFixed must validate")
	}
}
