// Package accounting implements the µComplexity accounting procedure
// of Section 2.2 of the paper:
//
//  1. Account for a single instance of each component — when a design
//     reuses a module, only one instance contributes to the metrics,
//     because designing and verifying a reusable component is a
//     one-time cost.
//  2. Minimize the value of component parameters (the scaling rule) —
//     each parameter is set to the smallest value that does not cause
//     any loops or conditional statements in the RTL to be optimized
//     away, because parameterized code is not much harder to write
//     than its smallest nontrivial instance.
//
// MeasureComponent can run with the procedure enabled (the paper's
// recommended mode) or disabled (every instance, full parameters),
// which is exactly the comparison Figure 6 of the paper draws.
//
// The implementation lives in internal/measure (so the batch
// measure.Session can share the search's elaboration cache across a
// whole component set without an import cycle); this package is the
// single-component façade. The parameter-minimization search memoizes
// at two levels, both keyed by the structural signature of
// internal/synth's single-instance rule (module + resolved
// parameters). Point verdicts: a candidate that names a design point
// already probed — which the fixpoint iteration does constantly —
// reuses the stored verdict instead of re-elaborating. Subtrees:
// probes run in elab's report-only mode against a session-scoped
// elaboration cache, so a probe skips every submodule subtree whose
// resolved parameter binding was already elaborated and walks only
// what the candidate's changed parameter actually reaches; full
// instance trees are built once, for the point the search ends on,
// reusing the reference elaboration's unchanged subtrees. Candidate
// probes run on a bounded worker pool (measure.Options.Concurrency);
// the search visits candidates lowest-first in batches, so the
// minimized parameters are identical for every worker count.
package accounting

import (
	"repro/internal/hdl"
	"repro/internal/measure"
)

// Result carries a component measurement along with the accounting
// details that produced it. It is measure.ComponentResult under its
// historical name.
type Result = measure.ComponentResult

// MeasureComponent measures one component (a module plus everything it
// instantiates).
//
// With useAccounting (Section 2.2), the component is measured at its
// minimized parameterization and every repeated (module, parameters)
// subtree is synthesized once — duplicate instances reuse the
// representative's logic structurally during lowering. Without it, the
// component is measured as instantiated: full default parameters,
// every instance counted.
//
// The software metrics (LoC, Stmts) sum each unique module's source
// once in both modes — the paper notes in Section 5.3 that the
// accounting procedure does not affect them.
//
// To measure a whole component set, use measure.NewSession and
// Session.MeasureAll, which produce bit-identical results while
// sharing the elaboration cache and deduplicating synthesis across
// components.
func MeasureComponent(design *hdl.Design, top string, useAccounting bool, opts measure.Options) (*Result, error) {
	return measure.MeasureComponent(design, top, useAccounting, opts)
}

// MinimizeParams returns, for each header parameter of the module, the
// smallest value compatible with the module's reference elaboration
// (its declared defaults): no generate loop that ran collapses to zero
// iterations, no constant conditional flips its branch, no memory
// degenerates, and elaboration still succeeds.
//
// The search lowers one parameter at a time, holding the others at
// their current values, and repeats until a fixpoint (parameters may
// interact through derived expressions). Candidate probes run on a
// GOMAXPROCS-bounded pool; use MinimizeParamsN to bound or serialize
// it. The result is identical for every worker count.
func MinimizeParams(design *hdl.Design, module string) (map[string]int64, error) {
	return MinimizeParamsN(design, module, 0)
}

// MinimizeParamsN is MinimizeParams with a concurrency bound
// (0 = GOMAXPROCS, 1 = exact sequential path).
func MinimizeParamsN(design *hdl.Design, module string, concurrency int) (map[string]int64, error) {
	return measure.MinimizeParamsN(design, module, concurrency)
}
