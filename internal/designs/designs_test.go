package designs

import (
	"testing"

	"repro/internal/accounting"
	"repro/internal/equiv"
	"repro/internal/measure"
	"repro/internal/synth"
)

func TestAllComponentsParseElaborateSynthesize(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Label(), func(t *testing.T) {
			d, err := Design(c)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := synth.Synthesize(d, c.Top, nil)
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			st := res.Optimized.Stats()
			if st.Cells == 0 && st.RAMs == 0 {
				t.Errorf("component synthesized to nothing: %+v", st)
			}
		})
	}
}

func TestCorpusShape(t *testing.T) {
	comps := All()
	if len(comps) != 18 {
		t.Fatalf("components = %d, want 18", len(comps))
	}
	var total float64
	perProject := map[string]int{}
	for _, c := range comps {
		total += c.Effort
		perProject[c.Project]++
	}
	if total != 105.6 {
		t.Errorf("total effort = %v, want 105.6 (Table 2 / Table 4)", total)
	}
	want := map[string]int{"Leon3": 4, "PUMA": 5, "IVM": 7, "RAT": 2}
	for p, n := range want {
		if perProject[p] != n {
			t.Errorf("%s has %d components, want %d", p, perProject[p], n)
		}
	}
	if _, err := ByLabel("IVM-Rename"); err != nil {
		t.Error(err)
	}
	if _, err := ByLabel("NoSuch-Thing"); err == nil {
		t.Error("expected error for unknown label")
	}
}

func TestFullDesignParses(t *testing.T) {
	d, err := FullDesign()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range All() {
		if !d.HasModule(c.Top) {
			t.Errorf("full design missing %s", c.Top)
		}
	}
}

func TestReplicationGradientAcrossProjects(t *testing.T) {
	// Section 5.3: IVM has many multiple instantiations, PUMA fewer,
	// Leon3 practically none. The accounting procedure must therefore
	// shrink IVM's synthesis metrics by a larger factor than Leon3's.
	shrink := func(project string) float64 {
		var with, without float64
		for _, c := range All() {
			if c.Project != project {
				continue
			}
			d, err := Design(c)
			if err != nil {
				t.Fatal(err)
			}
			w, err := accounting.MeasureComponent(d, c.Top, true, measure.Options{})
			if err != nil {
				t.Fatalf("%s with accounting: %v", c.Label(), err)
			}
			wo, err := accounting.MeasureComponent(d, c.Top, false, measure.Options{})
			if err != nil {
				t.Fatalf("%s without accounting: %v", c.Label(), err)
			}
			with += float64(w.Metrics.Cells)
			without += float64(wo.Metrics.Cells)
		}
		return without / with
	}
	leon3 := shrink("Leon3")
	ivm := shrink("IVM")
	if ivm <= leon3 {
		t.Errorf("IVM inflation (%.2f×) must exceed Leon3's (%.2f×)", ivm, leon3)
	}
}

func TestRepresentativeEquivalence(t *testing.T) {
	// Random-vector RTL↔gate equivalence on a representative subset
	// (one per project, kept small for test time; buses must fit the
	// interpreter's 64-bit nets).
	cases := []struct {
		label     string
		overrides map[string]int64
	}{
		{"RAT-Standard", nil},
		{"IVM-Issue", nil},
		{"PUMA-Memory", nil},
		{"Leon3-Cache", nil},
	}
	for _, tc := range cases {
		c, err := ByLabel(tc.label)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Design(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := equiv.CheckEquivalence(d, c.Top, tc.overrides, 25, 99); err != nil {
			t.Errorf("%s: %v", tc.label, err)
		}
	}
}
