package parallel

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Gate.Acquire when both every running slot
// and every queue slot is taken: the caller should shed the work (the
// daemon turns it into 429 + Retry-After) rather than pile up latency.
var ErrQueueFull = errors.New("parallel: admission queue full")

// Gate is the admission-control analogue of the package's bounded
// worker pool: at most slots acquisitions run concurrently, at most
// depth more wait in FIFO order, and anything beyond that is rejected
// immediately with ErrQueueFull. Unlike a bare semaphore, the queue
// bound makes overload visible at the edge instead of as unbounded
// goroutine pile-up — the property the ucserved daemon's 429 path is
// built on.
//
// A released slot is handed directly to the oldest waiter (no thundering
// herd, no barging: a new arrival cannot overtake the queue).
type Gate struct {
	mu      sync.Mutex
	slots   int
	depth   int
	running int
	waiters []chan struct{} // FIFO; closed to hand a slot over
}

// NewGate returns a gate with the given running slots and queue depth.
// slots below 1 is treated as 1; depth below 0 as 0 (no queue: every
// acquisition beyond the running slots is rejected).
func NewGate(slots, depth int) *Gate {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &Gate{slots: slots, depth: depth}
}

// Acquire takes a running slot, waiting in FIFO order behind earlier
// callers when all slots are busy. It returns nil when the slot is
// held (the caller must Release exactly once), ErrQueueFull when the
// queue bound is already met, or the context's error if ctx is done
// before a slot frees up.
func (g *Gate) Acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.running < g.slots {
		g.running++
		g.mu.Unlock()
		return nil
	}
	if len(g.waiters) >= g.depth {
		g.mu.Unlock()
		return ErrQueueFull
	}
	ch := make(chan struct{})
	g.waiters = append(g.waiters, ch)
	g.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, w := range g.waiters {
			if w == ch {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				g.mu.Unlock()
				return ctx.Err()
			}
		}
		// Not queued anymore: a Release handed us the slot while the
		// context fired. We own it, so pass it on before reporting the
		// context error.
		g.releaseLocked()
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a running slot, handing it to the oldest waiter if
// one is queued. Exactly one Release per successful Acquire.
func (g *Gate) Release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked hands the slot to the queue head, or frees it. The
// handed-over slot keeps running counted: ownership transfers without
// ever dipping below the true concurrency.
func (g *Gate) releaseLocked() {
	if len(g.waiters) > 0 {
		ch := g.waiters[0]
		g.waiters = g.waiters[1:]
		close(ch)
		return
	}
	g.running--
}

// Running reports the slots currently held.
func (g *Gate) Running() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.running
}

// Queued reports the callers currently waiting.
func (g *Gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}
