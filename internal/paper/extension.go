package paper

import (
	"fmt"
	"strings"

	"repro/internal/designs"
	"repro/internal/measure"
	"repro/internal/nlme"
	"repro/internal/parallel"
	"repro/internal/stdcell"
	"repro/internal/timing"
)

// TimingAwareResult is the future-work extension experiment of §2.5/§7:
// the paper conjectures that estimators "aware of back-end physical
// design and timing concerns" could capture effort that structural
// metrics miss (e.g. the redesign iterations a hard-to-close component
// forces). This experiment measures two timing-derived metrics on the
// synthetic corpus — the static critical-path delay and the count of
// near-critical endpoints — and fits them alongside the Table 3
// estimators.
type TimingAwareResult struct {
	// SigmaEps per estimator, including the two timing metrics
	// ("CriticalNs", "NearCritical") and a DEE1+NearCritical
	// three-metric combination ("DEE1+Timing").
	SigmaEps map[string]float64
}

// TimingAware runs the extension experiment on the synthetic corpus,
// measuring components on a GOMAXPROCS-bounded pool. Use TimingAwareN
// to bound or serialize it.
func TimingAware() (*TimingAwareResult, error) {
	return TimingAwareN(0)
}

// TimingAwareN is TimingAware with a concurrency bound (0 = GOMAXPROCS,
// 1 = exact sequential path). Timing analysis reuses the synthesis the
// accounting measurement already ran rather than synthesizing the
// component a second time.
func TimingAwareN(concurrency int) (*TimingAwareResult, error) {
	return TimingAwareOpts(Opts{Concurrency: concurrency})
}

// TimingAwareOpts is TimingAware with full options (concurrency bound
// and measurement cache). Cached measurements carry their optimized
// netlist, so warm runs skip synthesis but still feed timing analysis
// the identical structure.
func TimingAwareOpts(o Opts) (*TimingAwareResult, error) {
	concurrency := o.Concurrency
	comps := designs.All()
	lib := stdcell.Default180nm()

	type row struct {
		project      string
		effort       float64
		stmts        float64
		fanInLC      float64
		criticalNs   float64
		nearCritical float64
	}
	// The accounting measurements run as one session batch; when the
	// caller shares a session with Figure 6 (ucpaper -all), every
	// component's synthesis is already in the shared table and this
	// experiment adds no synthesis work at all.
	sess, err := o.session()
	if err != nil {
		return nil, err
	}
	units := make([]measure.Unit, len(comps))
	for i, c := range comps {
		units[i] = measure.Unit{Top: c.Top, UseAccounting: true}
	}
	accs, err := sess.MeasureAll(units, o.measureOptions())
	if err != nil {
		return nil, err
	}
	inner := o.inner(parallel.Workers(concurrency) > 1)
	rows, err := parallel.Map(concurrency, len(comps), func(i int) (row, error) {
		c := comps[i]
		acc := accs[i]
		// Timing runs on the accounting-scaled synthesis, which the
		// measurement carries with it.
		ta := timing.Analyze(acc.Synth.Optimized, lib)
		return row{
			project:      c.Project,
			effort:       c.Effort,
			stmts:        float64(acc.Metrics.Stmts),
			fanInLC:      float64(acc.Metrics.FanInLC),
			criticalNs:   ta.CriticalNs,
			nearCritical: float64(ta.NearCritical),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	fit := func(name string, cols func(r row) []float64, names []string) (float64, error) {
		d := &nlme.Data{MetricNames: names}
		for _, r := range rows {
			vals := cols(r)
			for i, v := range vals {
				if v == 0 {
					vals[i] = 1
				}
			}
			d.Groups = append(d.Groups, r.project)
			d.Efforts = append(d.Efforts, r.effort)
			d.Metrics = append(d.Metrics, vals)
		}
		res, err := nlme.FitOpts(d, nlme.FitOptions{Concurrency: inner})
		if err != nil {
			return 0, fmt.Errorf("paper: timing estimator %s: %w", name, err)
		}
		return res.SigmaEps, nil
	}

	specs := []struct {
		name  string
		cols  func(r row) []float64
		names []string
	}{
		{"Stmts", func(r row) []float64 { return []float64{r.stmts} }, []string{"Stmts"}},
		{"DEE1", func(r row) []float64 { return []float64{r.stmts, r.fanInLC} }, []string{"Stmts", "FanInLC"}},
		{"CriticalNs", func(r row) []float64 { return []float64{r.criticalNs} }, []string{"CriticalNs"}},
		{"NearCritical", func(r row) []float64 { return []float64{r.nearCritical} }, []string{"NearCritical"}},
		{"DEE1+Timing", func(r row) []float64 { return []float64{r.stmts, r.fanInLC, r.nearCritical} }, []string{"Stmts", "FanInLC", "NearCritical"}},
	}
	sigmas, err := parallel.Map(concurrency, len(specs), func(i int) (float64, error) {
		return fit(specs[i].name, specs[i].cols, specs[i].names)
	})
	if err != nil {
		return nil, err
	}
	out := &TimingAwareResult{SigmaEps: map[string]float64{}}
	for i, s := range specs {
		out.SigmaEps[s.name] = sigmas[i]
	}
	return out, nil
}

// String renders the extension experiment.
func (r *TimingAwareResult) String() string {
	var b strings.Builder
	b.WriteString("Extension (§2.5/§7 future work): timing-aware effort estimators\n")
	b.WriteString("(synthetic corpus, accounting procedure applied)\n\n")
	t := &table{header: []string{"Estimator", "sigma_eps"}}
	for _, name := range []string{"DEE1", "Stmts", "DEE1+Timing", "CriticalNs", "NearCritical"} {
		if v, ok := r.SigmaEps[name]; ok {
			t.add(name, f2(v))
		}
	}
	b.WriteString(t.String())
	return b.String()
}
