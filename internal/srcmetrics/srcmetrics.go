// Package srcmetrics measures the software metrics of Table 3 of the
// µComplexity paper — LoC and Stmts — on µHDL sources.
//
// The paper does not define the two metrics beyond "number of lines in
// the HDL code" and "number of statements in the HDL code"; we pin them
// down as:
//
//   - LoC: source lines that carry at least one token, i.e. lines that
//     are neither blank nor comment-only. This is the conventional
//     "source lines of code" definition used by COCOMO-style models.
//   - Stmts: the number of statement-like AST nodes. Declarations,
//     continuous assignments, procedural assignments, if, case (plus
//     one per case item), for loops, always blocks, module
//     instantiations, and generate constructs each count as one;
//     begin/end blocks and expressions do not.
//
// Both metrics are measured on the *source text* of a module, before
// elaboration, so they are independent of parameter values and
// instance counts — exactly why Section 5.3 of the paper finds that
// the accounting procedure does not change them.
package srcmetrics

import (
	"fmt"
	"strings"

	"repro/internal/hdl"
)

// Counts holds the software metrics of one module or file.
type Counts struct {
	LoC   int // non-blank, non-comment source lines
	Stmts int // statement AST nodes (see package comment)
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.LoC += other.LoC
	c.Stmts += other.Stmts
}

// MeasureSource parses src and returns per-module counts plus the file
// totals. LoC is attributed to modules by their source line spans; the
// file total also includes code lines outside any module.
func MeasureSource(file, src string) (perModule map[string]Counts, total Counts, err error) {
	sf, err := hdl.Parse(file, src)
	if err != nil {
		return nil, Counts{}, fmt.Errorf("srcmetrics: %w", err)
	}
	perModule = make(map[string]Counts, len(sf.Modules))

	// Module line spans: from the module keyword's line to the line of
	// the next module minus one (the last module extends to EOF). This
	// is robust because µHDL modules cannot nest.
	lineCount := strings.Count(src, "\n") + 1
	for i, m := range sf.Modules {
		startLine := m.Pos.Line
		endLine := lineCount
		if i+1 < len(sf.Modules) {
			endLine = sf.Modules[i+1].Pos.Line - 1
		}
		loc := 0
		for line := startLine; line <= endLine; line++ {
			if sf.CodeLines[line] {
				loc++
			}
		}
		perModule[m.Name] = Counts{LoC: loc, Stmts: CountModuleStmts(m)}
	}
	for line := range sf.CodeLines {
		total.LoC++
		_ = line
	}
	for _, c := range perModule {
		total.Stmts += c.Stmts
	}
	return perModule, total, nil
}

// MeasureModule returns the statement count of a parsed module together
// with a LoC value computed from its formatted source. Prefer
// MeasureSource when the original text is available, since formatting
// normalizes line structure.
func MeasureModule(m *hdl.Module) Counts {
	formatted := hdl.Format(m)
	loc := 0
	for _, line := range strings.Split(formatted, "\n") {
		if strings.TrimSpace(line) != "" {
			loc++
		}
	}
	return Counts{LoC: loc, Stmts: CountModuleStmts(m)}
}

// CountModuleStmts counts statement nodes in a module (see the package
// comment for the exact definition).
func CountModuleStmts(m *hdl.Module) int {
	n := 0
	for _, p := range m.Params {
		_ = p
		n++ // each header parameter is a declaration statement
	}
	for _, it := range m.Items {
		n += countItem(it)
	}
	return n
}

func countItem(it hdl.Item) int {
	switch v := it.(type) {
	case *hdl.ParamDecl:
		return 1
	case *hdl.NetDecl:
		return 1
	case *hdl.ContAssign:
		return 1
	case *hdl.Instance:
		return 1
	case *hdl.AlwaysBlock:
		return 1 + countStmt(v.Body)
	case *hdl.GenFor:
		n := 1
		for _, sub := range v.Body {
			n += countItem(sub)
		}
		return n
	case *hdl.GenIf:
		n := 1
		for _, sub := range v.Then {
			n += countItem(sub)
		}
		for _, sub := range v.Else {
			n += countItem(sub)
		}
		return n
	}
	return 0
}

func countStmt(s hdl.Stmt) int {
	switch v := s.(type) {
	case *hdl.Block:
		n := 0
		for _, sub := range v.Stmts {
			n += countStmt(sub)
		}
		return n
	case *hdl.Assign:
		return 1
	case *hdl.If:
		n := 1 + countStmt(v.Then)
		if v.Else != nil {
			n += countStmt(v.Else)
		}
		return n
	case *hdl.Case:
		n := 1
		for _, item := range v.Items {
			n += 1 + countStmt(item.Body)
		}
		return n
	case *hdl.For:
		// The init and step assignments are part of the loop header;
		// count the loop itself plus its body.
		return 1 + countStmt(v.Body)
	}
	return 0
}
