package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRefreshSourcesSkipsUnchanged proves the watch loop's re-read is
// incremental: after an edit, only files whose stamp moved are read
// again. The probe is direct — a file whose content is rewritten with
// its mtime restored must keep its cached (now stale) content, which
// is only possible if refreshSources never opened it.
func TestRefreshSourcesSkipsUnchanged(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.v")
	b := filepath.Join(dir, "b.v")
	write := func(p, src string) {
		t.Helper()
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(a, "module a; endmodule\n")
	write(b, "module b; endmodule\n")
	paths := []string{dir}

	sources, err := loadSources(paths)
	if err != nil {
		t.Fatal(err)
	}
	stamps := sourceStamps(paths)
	if len(stamps) != 2 {
		t.Fatalf("stamps = %v, want entries for a.v and b.v", stamps)
	}

	// Rewrite b but restore its mtime: its stamp is unchanged, so the
	// refresh must keep the cached content (no re-read). Move a's stamp
	// well clear of filesystem timestamp granularity.
	write(b, "module b_rewritten; endmodule\n")
	if err := os.Chtimes(b, stamps[b], stamps[b]); err != nil {
		t.Fatal(err)
	}
	write(a, "module a2; endmodule\n")
	later := stamps[a].Add(10 * time.Second)
	if err := os.Chtimes(a, later, later); err != nil {
		t.Fatal(err)
	}

	next := sourceStamps(paths)
	if stampsEqual(stamps, next) {
		t.Fatal("stamps unchanged after touching a.v")
	}
	refreshed, vanished, err := refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(vanished) != 0 {
		t.Fatalf("nothing vanished, got %v", vanished)
	}
	if got := refreshed[a]; got != "module a2; endmodule\n" {
		t.Fatalf("a.v not re-read: %q", got)
	}
	if got := refreshed[b]; got != "module b; endmodule\n" {
		t.Fatalf("b.v was re-read despite an unchanged stamp: %q", got)
	}
}

// TestRefreshSourcesAddRemove covers the directory-membership edges:
// a new .v file is picked up, a deleted one drops out, and a vanished
// named path is an error (matching the full reload's behaviour).
func TestRefreshSourcesAddRemove(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.v")
	if err := os.WriteFile(a, []byte("module a; endmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths := []string{dir}
	sources, err := loadSources(paths)
	if err != nil {
		t.Fatal(err)
	}
	stamps := sourceStamps(paths)

	c := filepath.Join(dir, "c.v")
	if err := os.WriteFile(c, []byte("module c; endmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	next := sourceStamps(paths)
	refreshed, _, err := refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed[c] != "module c; endmodule\n" {
		t.Fatalf("new file not picked up: %q", refreshed[c])
	}

	if err := os.Remove(c); err != nil {
		t.Fatal(err)
	}
	stamps, sources = next, refreshed
	next = sourceStamps(paths)
	refreshed, _, err = refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := refreshed[c]; ok {
		t.Fatal("deleted file still in the source map")
	}

	// A named (non-directory) path that vanishes records a zero stamp.
	// With cached content the refresh tolerates it once (transient
	// rename window) and reports it; with no cached content to fall
	// back on it must fail rather than silently shrink the design.
	named := []string{a}
	namedSources, err := loadSources(named)
	if err != nil {
		t.Fatal(err)
	}
	namedStamps := sourceStamps(named)
	if err := os.Remove(a); err != nil {
		t.Fatal(err)
	}
	gone := sourceStamps(named)
	kept, vanished, err := refreshSources(namedSources, namedStamps, gone)
	if err != nil {
		t.Fatalf("vanished path with cached content should be tolerated once: %v", err)
	}
	if len(vanished) != 1 || vanished[0] != a {
		t.Fatalf("vanished = %v, want [%s]", vanished, a)
	}
	if kept[a] != namedSources[a] {
		t.Fatalf("stale content not kept through the rename window: %q", kept[a])
	}
	if _, _, err := refreshSources(map[string]string{}, namedStamps, gone); err == nil {
		t.Fatal("vanished named path with no cached content did not error")
	}
}

// TestWatchTransientReplaceTolerated is the regression test for the
// editor rename/replace window: a poll that catches a named source
// file mid-replace must not abort the watch — the stale content is
// held for one poll, and once the file reappears the next refresh
// picks up the new content. Only a path missing on two consecutive
// polls is a hard error.
func TestWatchTransientReplaceTolerated(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.v")
	if err := os.WriteFile(a, []byte("module a; endmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths := []string{a}
	sources, err := loadSources(paths)
	if err != nil {
		t.Fatal(err)
	}
	stamps := sourceStamps(paths)

	// Poll 1: the file is mid-replace (gone). Tolerated: stale content
	// kept, path reported, and stillGone on that same snapshot flags it
	// as pending rather than dead.
	if err := os.Remove(a); err != nil {
		t.Fatal(err)
	}
	next := sourceStamps(paths)
	kept, vanished, err := refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatalf("transient vanish errored immediately: %v", err)
	}
	if len(vanished) != 1 {
		t.Fatalf("vanished = %v, want [%s]", vanished, a)
	}
	if kept[a] != "module a; endmodule\n" {
		t.Fatalf("stale content lost in the rename window: %q", kept[a])
	}
	pending := map[string]bool{a: true}

	// Poll 2a: the replace finished — stillGone clears, and the refresh
	// reads the new content (the zero stamp recorded during the window
	// never equals the new mtime, so a reappearing file is re-read even
	// if the replace restored the original modification time).
	if err := os.WriteFile(a, []byte("module a2; endmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stamps = next
	next = sourceStamps(paths)
	if gone := stillGone(pending, next); len(gone) != 0 {
		t.Fatalf("reappeared file still flagged gone: %v", gone)
	}
	refreshed, vanished, err := refreshSources(kept, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(vanished) != 0 {
		t.Fatalf("vanished after reappearance = %v", vanished)
	}
	if refreshed[a] != "module a2; endmodule\n" {
		t.Fatalf("replacement content not picked up: %q", refreshed[a])
	}

	// Poll 2b (counterfactual): had the file stayed missing a whole
	// interval, stillGone reports it — the watch loop's hard-error case.
	if gone := stillGone(pending, map[string]time.Time{a: {}}); len(gone) != 1 || gone[0] != a {
		t.Fatalf("persistently missing file not reported: %v", gone)
	}
}
