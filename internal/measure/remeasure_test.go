package measure_test

import (
	"fmt"
	"maps"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/hdl"
	"repro/internal/measure"
)

// remeasureStep is one scripted edit of the corpus sources plus what
// the dependency diff must report for it.
type remeasureStep struct {
	name    string
	sources map[string]string
	// wantChanged/wantAdded/wantRemoved are the expected module-level
	// edit lists.
	wantChanged, wantAdded, wantRemoved []string
	// dirtyTops lists the top modules whose units must be re-measured
	// (computed in the test body for the lib edit).
	dirtyTops map[string]bool
}

func editSource(t *testing.T, src map[string]string, file, old, new string) map[string]string {
	t.Helper()
	out := maps.Clone(src)
	s, ok := out[file]
	if !ok || !strings.Contains(s, old) {
		t.Fatalf("edit script stale: %s does not contain %q", file, old)
	}
	out[file] = strings.Replace(s, old, new, 1)
	return out
}

// TestRemeasureMatchesFromScratch is the golden test of incremental
// remeasurement: a scripted series of edits — a component-local edit,
// a shared-library edit, an unreferenced module addition, and a full
// revert — remeasured incrementally against the rolling baseline must
// be bit-identical to measuring each edited design from scratch, at
// workers 1 and 8, with the disk cache off and with one cache carried
// cold-to-warm across the whole series. The per-step dirty cone is
// pinned exactly: only units whose transitive subtree changed are
// re-measured.
func TestRemeasureMatchesFromScratch(t *testing.T) {
	base := designs.Sources()
	comps := designs.All()
	units := make([]measure.Unit, 0, len(comps)+2)
	for _, c := range comps {
		units = append(units, measure.Unit{Top: c.Top, UseAccounting: true})
	}
	// Two no-accounting units so the clean/dirty partition covers both
	// modes of one top.
	units = append(units,
		measure.Unit{Top: "rat_standard"},
		measure.Unit{Top: "puma_fetch"})

	// The edit script. Step sources accumulate: each step edits the
	// previous step's sources, and the last step reverts to base.
	local := editSource(t, base, "RAT-Standard.v",
		"= table_mem[raddr[AW-1:0]];", "= ~table_mem[raddr[AW-1:0]];")
	lib := editSource(t, local, "lib.v",
		"3'd6: y = a << 1;", "3'd6: y = a << 2;")
	added := maps.Clone(lib)
	added["RAT-Standard.v"] += "\nmodule remeasure_probe (input p_a, output p_y);\n  assign p_y = ~p_a;\nendmodule\n"

	// lib_alu's transitive users, read off the base design: the lib
	// edit must dirty exactly their units.
	full, err := designs.FullDesign()
	if err != nil {
		t.Fatal(err)
	}
	aluUsers := map[string]bool{}
	for _, c := range comps {
		mods, err := full.TransitiveModules(c.Top)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mods {
			if m == "lib_alu" {
				aluUsers[c.Top] = true
			}
		}
	}
	if len(aluUsers) == 0 || aluUsers["rat_standard"] {
		t.Fatalf("edit script stale: lib_alu users = %v", aluUsers)
	}
	ratAndAlu := maps.Clone(aluUsers)
	ratAndAlu["rat_standard"] = true

	steps := []remeasureStep{
		{
			name: "component-local-edit", sources: local,
			wantChanged: []string{"rat_standard"},
			dirtyTops:   map[string]bool{"rat_standard": true},
		},
		{
			name: "shared-lib-edit", sources: lib,
			wantChanged: []string{"lib_alu"},
			dirtyTops:   aluUsers,
		},
		{
			name: "add-unreferenced-module", sources: added,
			wantAdded: []string{"remeasure_probe"},
			dirtyTops: map[string]bool{},
		},
		{
			name: "revert", sources: base,
			wantChanged: []string{"lib_alu", "rat_standard"},
			wantRemoved: []string{"remeasure_probe"},
			dirtyTops:   ratAndAlu,
		},
	}

	// From-scratch references, one per step: fresh parse, fresh
	// session, sequential, no cache.
	refs := make([][]*measure.ComponentResult, len(steps))
	for i, st := range steps {
		d, err := hdl.ParseDesign(st.sources)
		if err != nil {
			t.Fatal(err)
		}
		refs[i], err = measure.NewSession(d).MeasureAll(units, measure.Options{Concurrency: 1})
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{1, 8} {
		for _, withCache := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d/cache=%t", workers, withCache), func(t *testing.T) {
				opts := measure.Options{Concurrency: workers}
				if withCache {
					c, err := cache.Open(t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					opts.Cache = c
				}

				// Baseline measurement on the unedited corpus.
				d, err := hdl.ParseDesign(base)
				if err != nil {
					t.Fatal(err)
				}
				sess := measure.NewSession(d)
				res, err := sess.MeasureAll(units, opts)
				if err != nil {
					t.Fatal(err)
				}
				prev, err := sess.Baseline(units, res, opts)
				if err != nil {
					t.Fatal(err)
				}
				if withCache {
					if g, ok := measure.FetchGraph(opts.Cache, d.Fingerprint(), opts); !ok {
						t.Error("baseline graph not persisted")
					} else if len(g.Units) != len(units) {
						t.Errorf("persisted graph has %d units, want %d", len(g.Units), len(units))
					}
				}

				for i, st := range steps {
					d, err := hdl.ParseDesign(st.sources)
					if err != nil {
						t.Fatal(err)
					}
					sess := measure.NewSession(d)
					got, next, stats, err := sess.Remeasure(prev, units, opts)
					if err != nil {
						t.Fatalf("%s: %v", st.name, err)
					}
					for j, u := range units {
						sameResult(t, fmt.Sprintf("%s %s(acct=%t)", st.name, u.Top, u.UseAccounting), got[j], refs[i][j])
					}

					wantDirty := 0
					for _, u := range units {
						if st.dirtyTops[u.Top] {
							wantDirty++
						}
					}
					if stats.DirtyUnits != wantDirty || stats.CleanUnits != len(units)-wantDirty {
						t.Errorf("%s: %d dirty / %d clean units, want %d / %d",
							st.name, stats.DirtyUnits, stats.CleanUnits, wantDirty, len(units)-wantDirty)
					}
					checkNames := func(kind string, got, want []string) {
						if fmt.Sprint(got) != fmt.Sprint(want) && !(len(got) == 0 && len(want) == 0) {
							t.Errorf("%s: %s modules %v, want %v", st.name, kind, got, want)
						}
					}
					checkNames("changed", stats.ChangedModules, st.wantChanged)
					checkNames("added", stats.AddedModules, st.wantAdded)
					checkNames("removed", stats.RemovedModules, st.wantRemoved)
					if stats.DirtyModules+stats.CleanModules != len(d.ModuleNames()) {
						t.Errorf("%s: module partition %d+%d does not cover %d modules",
							st.name, stats.DirtyModules, stats.CleanModules, len(d.ModuleNames()))
					}

					// Clean units must be served from the baseline, not
					// recomputed: pointer identity is the proof.
					for j, u := range units {
						if st.dirtyTops[u.Top] {
							continue
						}
						if want, ok := prev.Result(u); ok && got[j] != want {
							t.Errorf("%s: clean unit %s(acct=%t) was recomputed", st.name, u.Top, u.UseAccounting)
						}
					}
					prev = next
				}
			})
		}
	}
}

// TestRemeasureWithoutBaselineOptions pins the options guard: a
// baseline recorded under different result-determining options must
// not serve any unit, even with identical sources.
func TestRemeasureWithoutBaselineOptions(t *testing.T) {
	src := designs.Sources()
	d, err := hdl.ParseDesign(src)
	if err != nil {
		t.Fatal(err)
	}
	units := []measure.Unit{{Top: "rat_standard", UseAccounting: true}}
	sess := measure.NewSession(d)
	res, err := sess.MeasureAll(units, measure.Options{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := sess.Baseline(units, res, measure.Options{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}

	d2, err := hdl.ParseDesign(src)
	if err != nil {
		t.Fatal(err)
	}
	other := measure.Options{Concurrency: 1, DisableTemplates: true}
	_, _, stats, err := measure.NewSession(d2).Remeasure(prev, units, other)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyUnits != 1 || stats.CleanUnits != 0 {
		t.Errorf("options change served a stale unit: %+v", stats)
	}
}
