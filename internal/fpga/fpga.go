// Package fpga maps a synthesized netlist onto k-input LUTs and
// derives the two FPGA-side metrics of Table 3: Freq (the maximum
// clock frequency on a Stratix-II-class device) and the LUT-based
// approximation of FanInLC.
//
// The paper measured these with Synplify Pro targeting an Altera
// Stratix-II EP2S90 and estimated FanInLC "by summing all the inputs
// used in all the LUTs", noting that a logic cone wider than the eight
// inputs available on a single LUT is cascaded (rarely, in their
// designs). This package reproduces that flow with a greedy
// level-oriented LUT covering: each combinational cell either absorbs
// its fan-in cones into one LUT (when the merged support fits k
// inputs) or starts a new LUT level.
package fpga

import (
	"repro/internal/netlist"
	"repro/internal/scratch"
)

// Options configures the mapping.
type Options struct {
	// K is the LUT input count. Zero means 8, matching the paper's
	// description of the Stratix-II ALM.
	K int
	// Timing parameters in ns. Zeros select Stratix-II-class defaults.
	ClkToQ, LUTDelay, RouteDelay, Setup, RAMAccess float64
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 8
	}
	if o.ClkToQ == 0 {
		o.ClkToQ = 0.2
	}
	if o.LUTDelay == 0 {
		o.LUTDelay = 0.45
	}
	if o.RouteDelay == 0 {
		o.RouteDelay = 0.6
	}
	if o.Setup == 0 {
		o.Setup = 0.1
	}
	if o.RAMAccess == 0 {
		o.RAMAccess = 1.8
	}
	return o
}

// LUT is one mapped lookup table.
type LUT struct {
	Root   netlist.NetID // the net the LUT produces
	Inputs []netlist.NetID
	Level  int // LUT depth from the leaves (1 = fed only by leaves)
}

// Mapping is the result of LUT covering.
type Mapping struct {
	LUTs []LUT
	// LUTInputSum is Σ inputs over all LUTs — the paper's FanInLC
	// approximation.
	LUTInputSum int
	// Levels is the deepest LUT level on any register-to-register or
	// input-to-output path.
	Levels int
	// FreqMHz is the achievable clock frequency under the timing
	// model.
	FreqMHz float64
	// FFs counts flip-flops (the paper reports FFs from the FPGA
	// flow).
	FFs int
}

// Map covers the netlist's combinational logic with k-LUTs and
// evaluates the timing model.
func Map(n *netlist.Netlist, opts Options) *Mapping {
	return mapImpl(n, opts, &Workspace{}, true)
}

// mapImpl is the covering kernel behind Map and MapWS. All scratch —
// the per-net tables, merge buffers, and the arena every cut set is
// carved from — comes from ws, so cut sets are only valid until the
// workspace is reused; they escape through Mapping.LUTs only when
// wantLUTs is set, which Map pairs with a private workspace.
func mapImpl(n *netlist.Netlist, opts Options, ws *Workspace, wantLUTs bool) *Mapping {
	o := opts.withDefaults()
	drivers := n.Drivers()

	isLeaf := func(id netlist.NetID) bool {
		if id == n.Const0 || id == n.Const1 {
			return false
		}
		d := drivers[id]
		return d < 0 || n.Cells[d].Type.IsSequential()
	}

	info := scratch.Zero(&ws.info, n.NumNets())
	level := scratch.Zero(&ws.level, n.NumNets()) // level of the net once realized

	m := &Mapping{}
	var realize func(id netlist.NetID)

	// cutOf returns the support set of a net's logic (the net itself
	// for leaves and constants-free). Leaf singletons are interned in
	// the info table so repeated fan-out does not reallocate them.
	cutOf := func(id netlist.NetID) []netlist.NetID {
		if id == n.Const0 || id == n.Const1 {
			return nil
		}
		if isLeaf(id) {
			if info[id].cut == nil {
				s := ws.arena.Take(1)
				s[0] = id
				info[id].cut = s
			}
			return info[id].cut
		}
		return info[id].cut
	}

	realize = func(id netlist.NetID) {
		if id == netlist.Nil || id == n.Const0 || id == n.Const1 || isLeaf(id) {
			return
		}
		if info[id].realized {
			return
		}
		info[id].realized = true
		cut := info[id].cut
		maxIn := 0
		for _, in := range cut {
			if !isLeaf(in) {
				realize(in)
			}
			if level[in] > maxIn {
				maxIn = level[in]
			}
		}
		if len(cut) == 0 {
			// Pure-constant logic: no LUT needed.
			level[id] = 0
			return
		}
		level[id] = maxIn + 1
		if wantLUTs {
			m.LUTs = append(m.LUTs, LUT{Root: id, Inputs: cut, Level: level[id]})
		}
		m.LUTInputSum += len(cut)
		if level[id] > m.Levels {
			m.Levels = level[id]
		}
	}

	order, err := n.TopoOrder()
	if err != nil {
		// A cyclic netlist cannot be mapped; return an empty mapping
		// (Validate in synth prevents this in practice).
		return m
	}
	// Input cuts are kept sorted and duplicate-free, so the merged
	// support of a cell is a k-way sorted merge. Two reusable scratch
	// buffers avoid the per-cell map and sort this loop used to pay —
	// it runs once per cell and dominates the mapping's cost.
	cur := ws.cur[:0]
	next := ws.next[:0]
	for _, ci := range order {
		c := &n.Cells[ci]
		cur = cur[:0]
		for _, in := range c.Inputs() {
			cut := cutOf(in)
			if len(cut) == 0 {
				continue
			}
			if len(cur) == 0 {
				cur = append(cur, cut...)
				continue
			}
			next = next[:0]
			i, j := 0, 0
			for i < len(cur) && j < len(cut) {
				switch {
				case cur[i] < cut[j]:
					next = append(next, cur[i])
					i++
				case cut[j] < cur[i]:
					next = append(next, cut[j])
					j++
				default:
					next = append(next, cur[i])
					i++
					j++
				}
			}
			next = append(next, cur[i:]...)
			next = append(next, cut[j:]...)
			cur, next = next, cur
		}
		if len(cur) <= o.K {
			cut := ws.arena.Take(len(cur))
			copy(cut, cur)
			info[c.Out].cut = cut
			continue
		}
		// Too wide: realize the inputs as LUT roots and cascade. Cells
		// have at most three inputs, so a fixed array and insertion sort
		// replace the sort.Slice this path used to allocate for.
		var insArr [3]netlist.NetID
		ins := insArr[:0]
		for _, in := range c.Inputs() {
			if in == n.Const0 || in == n.Const1 {
				continue
			}
			realize(in)
			ins = append(ins, in)
		}
		for i := 1; i < len(ins); i++ {
			for j := i; j > 0 && ins[j] < ins[j-1]; j-- {
				ins[j], ins[j-1] = ins[j-1], ins[j]
			}
		}
		cut := ws.arena.Take(len(ins))
		k := 0
		for i, id := range ins {
			if i == 0 || id != ins[i-1] {
				cut[k] = id
				k++
			}
		}
		info[c.Out].cut = cut[:k]
	}
	ws.cur, ws.next = cur[:0], next[:0]

	// Realize every endpoint.
	for _, p := range n.Outputs {
		realize(p.Net)
	}
	hasRAM := len(n.RAMs) > 0
	for ci := range n.Cells {
		c := &n.Cells[ci]
		switch c.Type {
		case netlist.DFF:
			m.FFs++
			realize(c.In[0])
		case netlist.Latch:
			realize(c.In[0])
			realize(c.In[1])
		}
	}
	for _, r := range n.RAMs {
		for _, wp := range r.WritePorts {
			realize(wp.En)
			for _, b := range wp.Addr {
				realize(b)
			}
			for _, b := range wp.Data {
				realize(b)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				realize(b)
			}
		}
	}

	// Timing: clk-to-q, L LUT+route stages, setup; RAM read access
	// adds its latency when memories are present.
	period := o.ClkToQ + float64(m.Levels)*(o.LUTDelay+o.RouteDelay) + o.Setup
	if hasRAM {
		period += o.RAMAccess
	}
	if period <= 0 {
		period = o.ClkToQ + o.Setup
	}
	m.FreqMHz = 1000.0 / period
	return m
}
