// Command ucfit calibrates a design-effort estimator from a
// measurement database (CSV as produced by ucmetrics -csv, or the
// paper's embedded dataset).
//
// Usage:
//
//	ucfit -paper                        fit on the paper's 18 data points
//	ucfit -db measurements.csv          fit on your own database
//
// Flags:
//
//	-metrics Stmts,FanInLC   metric columns of the estimator (default DEE1's)
//	-fixed                   fit the ρ=1 fixed-effects model (Section 3.2)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	usePaper := flag.Bool("paper", false, "fit on the paper's embedded dataset")
	dbPath := flag.String("db", "", "CSV measurement database")
	metricsFlag := flag.String("metrics", "Stmts,FanInLC", "comma-separated metric columns")
	fixed := flag.Bool("fixed", false, "fit without productivity adjustment (rho=1)")
	flag.Parse()

	if err := run(*usePaper, *dbPath, *metricsFlag, *fixed); err != nil {
		fmt.Fprintln(os.Stderr, "ucfit:", err)
		os.Exit(1)
	}
}

func run(usePaper bool, dbPath, metricsFlag string, fixed bool) error {
	var comps []dataset.Component
	switch {
	case usePaper:
		comps = dataset.Paper()
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			return err
		}
		defer f.Close()
		comps, err = dataset.ReadCSV(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -paper or -db <file>")
	}

	var metrics []dataset.Metric
	for _, m := range strings.Split(metricsFlag, ",") {
		m = strings.TrimSpace(m)
		if m != "" {
			metrics = append(metrics, dataset.Metric(m))
		}
	}
	cal, err := core.Calibrate(comps, metrics, core.CalibrationOptions{Mixed: !fixed})
	if err != nil {
		return err
	}

	fmt.Printf("fitted on %d components from %d projects\n", len(comps), len(dataset.Projects(comps)))
	fmt.Printf("model: eff = (1/rho) * (")
	for k, m := range metrics {
		if k > 0 {
			fmt.Printf(" + ")
		}
		fmt.Printf("%.6g*%s", cal.Fit.Weights[k], m)
	}
	fmt.Printf(")\n")
	fmt.Printf("sigma_eps = %.3f", cal.Fit.SigmaEps)
	lo, hi := core.ConfidenceFactors(cal.Fit.SigmaEps, 0.90)
	fmt.Printf("  (90%% CI factors: %.2fx .. %.2fx)\n", lo, hi)
	if !fixed {
		fmt.Printf("sigma_rho = %.3f\n", cal.Fit.SigmaRho)
		projects, rhos := cal.Fit.SortedProductivities()
		for i, p := range projects {
			fmt.Printf("  rho(%s) = %.3f\n", p, rhos[i])
		}
	}
	fmt.Printf("logLik = %.2f  AIC = %.1f  BIC = %.1f\n", cal.Fit.LogLik, cal.Fit.AIC(), cal.Fit.BIC())
	return nil
}
