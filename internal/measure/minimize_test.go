package measure

import (
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
)

func design(t *testing.T, src string) *hdl.Design {
	t.Helper()
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// memoDesign has two interacting parameters and a generate loop, so
// the minimization search needs more than one fixpoint round and
// revisits design points it has already probed.
const memoDesign = `
module m #(parameter N = 8, parameter W = 16) (input [W-1:0] a, output [W-1:0] y);
  genvar i;
  generate for (i = 1; i < N; i = i + 1) begin : g
    assign y[i%W] = a[i%W] ^ a[(i-1)%W];
  end endgenerate
  assign y[0] = a[0];
endmodule`

func TestMinimizeParamsMemoizesRepeatedPoints(t *testing.T) {
	d := design(t, memoDesign)
	params, memo, err := minimizeParams(d, "m", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if params["N"] != 2 {
		t.Errorf("N = %d, want 2", params["N"])
	}
	hits, misses := memo.counters()
	if hits == 0 {
		t.Errorf("search elaborated every candidate from scratch (hits=0, misses=%d); the fixpoint rounds must hit the memo", misses)
	}
	// The winning point's verdict must be memoized, and the final full
	// elaboration must come out of the session cache bit-identical to
	// an uncached one.
	if v, ok := memo.verdict[elab.ParamSignature("m", params)]; !ok || !v {
		t.Errorf("winning point %v not memoized as compatible", params)
	}
	cached, cachedRep, err := elab.ElaborateOpts(d, "m", params, elab.Options{Cache: memo.sess})
	if err != nil {
		t.Fatal(err)
	}
	plain, plainRep, err := elab.Elaborate(d, "m", params)
	if err != nil {
		t.Fatal(err)
	}
	if cachedRep.String() != plainRep.String() {
		t.Errorf("cached report differs from uncached:\n%s\nvs\n%s", cachedRep, plainRep)
	}
	if got, want := cached.CountInstances(), plain.CountInstances(); got != want {
		t.Errorf("cached tree has %d instances, uncached %d", got, want)
	}
}

// TestMinimizeParamsSharedSessionCache pins that running the search
// against a caller-provided (shared) elaboration cache — the Session
// configuration — lands on the same parameters as a private cache,
// even when the cache is already warm from another module's search.
func TestMinimizeParamsSharedSessionCache(t *testing.T) {
	d := design(t, memoDesign)
	want, _, err := minimizeParams(d, "m", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := elab.NewCache()
	for range 2 { // second pass runs against a fully warm cache
		got, _, err := minimizeParams(d, "m", 1, shared)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("shared-cache search minimized to %v, private-cache to %v", got, want)
			}
		}
	}
}

const replicatedDesign = `
module alu #(parameter W = 8) (input [W-1:0] a, b, input op, output [W-1:0] y);
  assign y = op ? (a - b) : (a + b);
endmodule
module quad #(parameter W = 8) (input [W-1:0] a, b, c, d, input op, output [W-1:0] y);
  wire [W-1:0] t1, t2, t3;
  alu #(.W(W)) u0 (.a(a), .b(b), .op(op), .y(t1));
  alu #(.W(W)) u1 (.a(c), .b(d), .op(op), .y(t2));
  alu #(.W(W)) u2 (.a(t1), .b(t2), .op(op), .y(t3));
  alu #(.W(W)) u3 (.a(t3), .b(a), .op(op), .y(y));
endmodule`

func TestCandidateValuesOrdering(t *testing.T) {
	vals := candidateValues(1000)
	if vals[0] != 0 || vals[1] != 1 {
		t.Errorf("candidates start %v", vals[:2])
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("candidates not ascending: %v", vals)
		}
	}
	if vals[len(vals)-1] >= 1000 {
		t.Errorf("candidates must stay below the current value: %v", vals[len(vals)-1])
	}
}

// TestCandidateValuesGap pins the deliberate shape of the candidate
// sequence: small values are probed exhaustively (0..64, where real
// minimized parameters live), then only powers of two from 128 up —
// nothing in 65..127. The gap is intentional: it bounds the search at
// large defaults without losing the small-value resolution the paper's
// scaling rule needs. Changing it changes which points the search can
// land on, so it must not shift silently.
func TestCandidateValuesGap(t *testing.T) {
	vals := candidateValues(1 << 20)
	seen := map[int64]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	for v := int64(0); v <= 64; v++ {
		if !seen[v] {
			t.Errorf("small value %d missing: 0..64 must be exhaustive", v)
		}
	}
	for v := int64(65); v <= 127; v++ {
		if seen[v] {
			t.Errorf("value %d present: 65..127 is a deliberate gap", v)
		}
	}
	for v := int64(128); v < 1<<20; v *= 2 {
		if !seen[v] {
			t.Errorf("power of two %d missing above the gap", v)
		}
	}
	if len(vals) != 65+13 {
		t.Errorf("candidateValues(1<<20) has %d entries, want 65 small + 13 powers of two", len(vals))
	}
}
