package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hdl"
	"repro/internal/measure"
)

func TestCalibrateDEE1OnPaperData(t *testing.T) {
	cal, err := CalibrateDEE1(dataset.Paper())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.SigmaEps()-0.46) > 0.015 {
		t.Errorf("DEE1 σε = %.3f, paper 0.46", cal.SigmaEps())
	}
	if len(cal.Fit.Weights) != 2 || cal.Fit.Weights[0] <= 0 || cal.Fit.Weights[1] <= 0 {
		t.Errorf("weights = %v", cal.Fit.Weights)
	}
	// All four productivities known.
	for _, p := range []string{"Leon3", "PUMA", "IVM", "RAT"} {
		if _, ok := cal.Productivity(p); !ok {
			t.Errorf("missing productivity for %s", p)
		}
	}
	if rho, ok := cal.Productivity("Unknown"); ok || rho != 1 {
		t.Errorf("unknown project must give (1,false), got (%v,%v)", rho, ok)
	}
}

func TestEstimateLeon3Pipeline(t *testing.T) {
	cal, err := CalibrateDEE1(dataset.Paper())
	if err != nil {
		t.Fatal(err)
	}
	rho, _ := cal.Productivity("Leon3")
	est, err := cal.EstimateFromValues([]float64{2070, 10502}, rho)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4 prints 12.8 for this component.
	if math.Abs(est.Median-12.8) > 0.2 {
		t.Errorf("median = %.2f, paper 12.8", est.Median)
	}
	if est.Mean <= est.Median {
		t.Error("mean must exceed median for a lognormal")
	}
	if !(est.CI90[0] < est.Median && est.Median < est.CI90[1]) {
		t.Errorf("median outside CI90: %+v", est)
	}
	if !(est.CI90[0] < est.CI68[0] && est.CI68[1] < est.CI90[1]) {
		t.Errorf("CI68 must nest inside CI90: %+v", est)
	}
	// The reported effort (24) lies within the 90% interval.
	if est.CI90[0] > 24 || est.CI90[1] < 24 {
		t.Errorf("actual effort 24 outside CI90 %v", est.CI90)
	}
}

func TestEvaluateEstimatorsOrdering(t *testing.T) {
	rows, err := EvaluateEstimators(dataset.Paper())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Sorted ascending by σε with DEE1 first (the paper's headline).
	if rows[0].Name != "DEE1" {
		t.Errorf("best estimator = %s, want DEE1", rows[0].Name)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SigmaEps < rows[i-1].SigmaEps {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	// The good/bad split of Section 5.1.
	rank := map[string]int{}
	for i, r := range rows {
		rank[r.Name] = i
	}
	good := []string{"DEE1", "Stmts", "LoC", "FanInLC", "Nets"}
	bad := []string{"AreaS", "Cells", "FFs", "PowerS", "PowerD", "AreaL", "Freq"}
	for _, g := range good {
		for _, b := range bad {
			if rank[g] > rank[b] {
				t.Errorf("estimator %s (rank %d) should beat %s (rank %d)", g, rank[g], b, rank[b])
			}
		}
	}
	// Productivity adjustment helps: mixed σε ≤ fixed σε everywhere.
	for _, r := range rows {
		if r.SigmaEps > r.SigmaEpsRho1+1e-6 {
			t.Errorf("%s: mixed σε %v > fixed %v", r.Name, r.SigmaEps, r.SigmaEpsRho1)
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, DEE1Metrics, CalibrationOptions{}); err == nil {
		t.Error("empty database must fail")
	}
	if _, err := Calibrate(dataset.Paper(), nil, CalibrationOptions{}); err == nil {
		t.Error("empty metric set must fail")
	}
	comps := dataset.Paper()
	if _, err := Calibrate(comps, []dataset.Metric{"NoSuch"}, CalibrationOptions{Mixed: true}); err == nil {
		t.Error("unknown metric must fail")
	}
}

func TestZeroFloorApplied(t *testing.T) {
	cal, err := Calibrate(dataset.Paper(), []dataset.Metric{dataset.FFs}, CalibrationOptions{Mixed: true})
	if err != nil {
		t.Fatal(err)
	}
	if cal.ZeroFloor != 1 {
		t.Errorf("ZeroFloor = %v, want 1 (IVM FFs=0 rows exist)", cal.ZeroFloor)
	}
	// With the floor, this reproduces the paper's σε = 2.14.
	if math.Abs(cal.SigmaEps()-2.14) > 0.02 {
		t.Errorf("FFs σε = %.3f, paper 2.14", cal.SigmaEps())
	}
	// Estimating a zero-FF component uses the floor rather than
	// failing.
	est, err := cal.Estimate(&measure.Metrics{FFs: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Median <= 0 {
		t.Errorf("estimate = %v", est.Median)
	}
}

func TestMeasureComponentEndToEnd(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"d.v": `
module alu #(parameter W = 8) (input [W-1:0] a, b, input op, output [W-1:0] y);
  assign y = op ? (a - b) : (a + b);
endmodule
module dp #(parameter W = 8) (input clk, input [W-1:0] a, b, c, input op, output reg [W-1:0] r);
  wire [W-1:0] t1, t2;
  alu #(.W(W)) u0 (.a(a), .b(b), .op(op), .y(t1));
  alu #(.W(W)) u1 (.a(t1), .b(c), .op(op), .y(t2));
  always @(posedge clk) r <= t2;
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := MeasureComponent(d, "demo", "dp", true, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meas.Metrics.Stmts <= 0 || meas.Metrics.Cells <= 0 {
		t.Errorf("metrics = %+v", meas.Metrics)
	}
	if meas.Accounting.DedupedInstances != 1 {
		t.Errorf("deduped = %d, want 1 (second ALU)", meas.Accounting.DedupedInstances)
	}
	comp := meas.Component(3.5)
	if comp.Effort != 3.5 || comp.Project != "demo" || comp.Name != "dp" {
		t.Errorf("component = %+v", comp)
	}
	if len(comp.Metrics) != len(dataset.AllMetrics) {
		t.Errorf("component metrics incomplete: %v", comp.Metrics)
	}

	// The batch path over a shared session must agree with the
	// per-component measurement above, bit for bit.
	sess := measure.NewSession(d)
	batch, err := MeasureComponents(sess, []ComponentRequest{
		{Project: "demo", Top: "dp", UseAccounting: true},
		{Project: "demo", Top: "alu", UseAccounting: false},
	}, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("%d measurements, want 2", len(batch))
	}
	if *batch[0].Metrics != *meas.Metrics {
		t.Errorf("batch dp metrics differ from per-component:\n got %+v\nwant %+v", *batch[0].Metrics, *meas.Metrics)
	}
	if batch[0].Project != "demo" || batch[0].Name != "dp" || batch[1].Name != "alu" {
		t.Errorf("batch identities wrong: %+v, %+v", batch[0], batch[1])
	}
	if got, want := batch[0].Accounting.Synth.Optimized.Hash(), meas.Accounting.Synth.Optimized.Hash(); got != want {
		t.Errorf("batch dp netlist hash %s, per-component %s", got, want)
	}
	if s := sess.Stats(); s.Components != 2 || s.Synthesized != 2 {
		t.Errorf("session stats = %+v, want 2 components, 2 distinct signatures", s)
	}
}

func TestConfidenceFactorsAndMeanFactor(t *testing.T) {
	lo, hi := ConfidenceFactors(0.45, 0.90)
	if lo > 0.52 || lo < 0.45 || hi < 2.0 || hi > 2.2 {
		t.Errorf("factors = (%v, %v)", lo, hi)
	}
	mf := MeanFactor(0.46, 0.28)
	want := math.Exp((0.46*0.46 + 0.28*0.28) / 2)
	if math.Abs(mf-want) > 1e-12 {
		t.Errorf("MeanFactor = %v, want %v", mf, want)
	}
}

func TestRelativeEstimationMode(t *testing.T) {
	// Section 3.1.1: with ρ = 1 the model gives relative estimates —
	// a component with 2× the metrics gets ~2× the effort.
	cal, err := CalibrateDEE1(dataset.Paper())
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cal.EstimateFromValues([]float64{500, 4000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cal.EstimateFromValues([]float64{1000, 8000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := e2.Median / e1.Median
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("relative ratio = %v, want exactly 2 (linear model)", ratio)
	}
}
