package paper

import (
	"reflect"
	"testing"
)

// The concurrency knob's contract: every experiment produces
// bit-identical results on the parallel path (Concurrency > 1) and the
// exact sequential path (Concurrency = 1). These tests pin that for
// the two pipelines the knob threads all the way through — the pure
// fitting pipeline (Table 4) and the measure→fit pipeline
// (MeasureCorpus), which exercises the accounting memoization under
// both pool shapes.

func TestTable4ParallelDeterminism(t *testing.T) {
	seq, err := Table4N(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table4N(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel Table4 diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestMeasureCorpusParallelDeterminism(t *testing.T) {
	seq, err := MeasureCorpusN(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureCorpusN(true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel MeasureCorpus diverged from sequential")
	}
}

func TestAICBICParallelDeterminism(t *testing.T) {
	seq, err := AICBICN(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AICBICN(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel AICBIC diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}
