package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateBoundsConcurrency: under heavy contention the gate never
// admits more than its slot count at once, and everyone either runs or
// is rejected with ErrQueueFull — nobody is lost.
func TestGateBoundsConcurrency(t *testing.T) {
	const slots, depth, callers = 3, 4, 64
	g := NewGate(slots, depth)
	var cur, peak, ran, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := g.Acquire(context.Background())
			if errors.Is(err, ErrQueueFull) {
				rejected.Add(1)
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			ran.Add(1)
			g.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("peak concurrency %d exceeds %d slots", p, slots)
	}
	if ran.Load()+rejected.Load() != callers {
		t.Fatalf("%d ran + %d rejected != %d callers", ran.Load(), rejected.Load(), callers)
	}
	if g.Running() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not drained: running=%d queued=%d", g.Running(), g.Queued())
	}
}

// TestGateQueueFull: with every slot held and the queue at depth, the
// next Acquire fails immediately with ErrQueueFull; after a Release the
// queued waiter gets the slot (FIFO hand-off, running never dips).
func TestGateQueueFull(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	queuedGot := make(chan error, 1)
	go func() {
		queuedGot <- g.Acquire(context.Background())
	}()
	for g.Queued() != 1 {
		time.Sleep(100 * time.Microsecond)
	}

	if err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth Acquire = %v, want ErrQueueFull", err)
	}

	g.Release()
	if err := <-queuedGot; err != nil {
		t.Fatalf("queued waiter got %v after hand-off", err)
	}
	if got := g.Running(); got != 1 {
		t.Fatalf("running = %d after hand-off, want 1 (slot transferred, not freed)", got)
	}
	g.Release()
}

// TestGateAcquireContext: a waiter whose context dies while queued
// unblocks with the context error and frees its queue position.
func TestGateAcquireContext(t *testing.T) {
	g := NewGate(1, 2)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- g.Acquire(ctx) }()
	for g.Queued() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	if g.Queued() != 0 {
		t.Fatalf("canceled waiter still queued: %d", g.Queued())
	}
	g.Release()
	if g.Running() != 0 {
		t.Fatalf("running = %d after full release, want 0", g.Running())
	}
}

// TestGateZeroDepth: depth 0 means no queue at all — a busy gate
// rejects instantly.
func TestGateZeroDepth(t *testing.T) {
	g := NewGate(1, 0)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("zero-depth busy Acquire = %v, want ErrQueueFull", err)
	}
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("freed slot not reusable: %v", err)
	}
	g.Release()
}
