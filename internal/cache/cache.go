// Package cache implements a content-addressed, versioned, on-disk
// cache for synthesis-derived results. Entries are binary-encoded
// files (internal/codec's versioned pointer-free encoding — explicit
// per-type encoders, no reflection) named by a SHA-256 key the caller
// derives from the content that determines the result — the
// structural fingerprint of the source design, the synthesis
// parameter signature, and the measurement options — plus the cache
// schema version, so a schema bump silently invalidates every old
// entry instead of misreading it. Each entry carries a CRC-32C over
// its payload and large payloads are flate-compressed per entry
// (recorded in the entry header).
//
// The cache is safe for concurrent use. Lookups of the same key are
// single-flighted: when several workers (e.g. an internal/parallel
// pool measuring a corpus) miss on one key at the same time, exactly
// one runs the computation and the rest wait for its result.
// Corrupted or truncated entries are treated as misses — the entry is
// deleted and recomputed — never as errors, so a damaged cache
// directory degrades to cold-start performance rather than failure.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// SchemaVersion is the on-disk format version. It participates in both
// the key derivation and the per-entry header, so bumping it orphans
// every existing entry (they are never decoded, only ignored).
// Version 3 introduced the binary codec format (versions 1-2 were
// gob); version 4 re-keys measurement entries from whole-design
// fingerprints to per-subtree source hashes and adds signature-level
// and dependency-graph entry kinds (the incremental remeasurement
// layer) — the payload encodings are unchanged, but the key semantics
// are not, so the bump keeps v3 entries from shadowing subtree-keyed
// results.
const SchemaVersion = 4

// CompressThreshold is the encoded payload size at which entries are
// flate-compressed on write (forwarded to codec.EncodeEntry, which
// records the choice in the entry header and keeps the compressed form
// only when it is actually smaller).
const CompressThreshold = codec.DefaultCompressThreshold

// EnvVar names the environment variable the commands consult for a
// default cache directory when no -cache-dir flag is given.
const EnvVar = "UCOMPLEXITY_CACHE"

// entryExt is the cache-entry file suffix ("ucx" binary entries;
// schema 1-2 wrote ".gob" files, which a v3 cache never touches).
const entryExt = ".ucx"

// DefaultDir returns the cache directory from the environment ("" when
// unset, meaning caching is off).
func DefaultDir() string { return os.Getenv(EnvVar) }

// ErrVerifyMismatch reports that verify mode recomputed a cached entry
// and the fresh result disagreed with the stored one.
var ErrVerifyMismatch = errors.New("cache: verify mismatch between cached and recomputed result")

// Stats counts cache activity since Open.
type Stats struct {
	Hits             int64 // entries served from disk
	Misses           int64 // keys computed fresh (no usable entry)
	Puts             int64 // entries written
	DecodeErrors     int64 // corrupt/truncated/stale entries discarded
	VerifyChecks     int64 // hits recomputed in verify mode
	VerifyMismatches int64
	// Decode-path accounting, accumulated over successful reads:
	// DecodeNanos is wall time spent reading + decoding entries,
	// BytesStored counts on-disk entry bytes read, BytesRaw counts the
	// payload bytes after decompression (BytesRaw/BytesStored > 1 means
	// compression is earning its decode pass).
	DecodeNanos int64
	BytesStored int64
	BytesRaw    int64
}

// DiskStats summarizes the entries currently on disk (one directory
// scan; see Cache.DiskStats). Kinds breaks the totals down by entry
// kind (the KindKey prefix; plain Key entries group under "").
type DiskStats struct {
	Entries int
	Bytes   int64
	Kinds   map[string]KindDisk
}

// KindDisk is one kind's share of the on-disk footprint.
type KindDisk struct {
	Entries int
	Bytes   int64
}

// KindCounters is one kind's share of the runtime activity counters:
// hits and misses as counted by Fetch/Do/DoEq, puts as counted by Put.
type KindCounters struct {
	Hits, Misses, Puts int64
}

// Cache is one on-disk cache directory.
type Cache struct {
	dir    string
	verify atomic.Bool

	mu      sync.Mutex
	flights map[string]*flight

	kmu   sync.Mutex
	kinds map[string]*KindCounters

	hits, misses, puts, decodeErrs, verifyChecks, verifyMismatches atomic.Int64
	decodeNanos, bytesStored, bytesRaw                             atomic.Int64
}

type flight struct {
	done chan struct{}
	val  any
	hit  bool
	err  error
}

// Open creates (if needed) and opens a cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir, flights: map[string]*flight{}, kinds: map[string]*KindCounters{}}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// SetVerify switches verify mode: every hit is recomputed and compared
// against the stored entry, turning the cache into a consistency
// checker instead of an accelerator.
func (c *Cache) SetVerify(v bool) { c.verify.Store(v) }

// Verifying reports whether verify mode is on.
func (c *Cache) Verifying() bool { return c.verify.Load() }

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Puts:             c.puts.Load(),
		DecodeErrors:     c.decodeErrs.Load(),
		VerifyChecks:     c.verifyChecks.Load(),
		VerifyMismatches: c.verifyMismatches.Load(),
		DecodeNanos:      c.decodeNanos.Load(),
		BytesStored:      c.bytesStored.Load(),
		BytesRaw:         c.bytesRaw.Load(),
	}
}

// DiskStats scans the cache directory and reports how many entries it
// holds and their total size, broken down by entry kind. It is an
// observability call (the -cache-stats flags), not a hot-path one.
func (c *Cache) DiskStats() (DiskStats, error) {
	ds := DiskStats{Kinds: map[string]KindDisk{}}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return ds, fmt.Errorf("cache: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), entryExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // entry deleted between ReadDir and Info
		}
		ds.Entries++
		ds.Bytes += info.Size()
		k := KindOf(strings.TrimSuffix(e.Name(), entryExt))
		kd := ds.Kinds[k]
		kd.Entries++
		kd.Bytes += info.Size()
		ds.Kinds[k] = kd
	}
	return ds, nil
}

// KindStats returns a snapshot of the per-kind runtime counters (keys
// are KindKey kinds; plain Key traffic groups under "").
func (c *Cache) KindStats() map[string]KindCounters {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	out := make(map[string]KindCounters, len(c.kinds))
	for k, v := range c.kinds {
		out[k] = *v
	}
	return out
}

// KindRows renders one human-readable line per entry kind — disk
// footprint from a DiskStats scan joined with the run's KindStats
// counters — sorted by kind name, for the commands' -cache-stats
// output. Kinds with neither disk entries nor runtime traffic are
// omitted; plain Key entries report as "plain".
func KindRows(ds DiskStats, ks map[string]KindCounters) []string {
	names := map[string]bool{}
	for k := range ds.Kinds {
		names[k] = true
	}
	for k := range ks {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	rows := make([]string, 0, len(sorted))
	for _, k := range sorted {
		kd, kc := ds.Kinds[k], ks[k]
		if kd.Entries == 0 && kc == (KindCounters{}) {
			continue
		}
		label := k
		if label == "" {
			label = "plain"
		}
		row := fmt.Sprintf("kind %-9s %4d entries, %8d bytes", label+":", kd.Entries, kd.Bytes)
		if total := kc.Hits + kc.Misses; total > 0 {
			row += fmt.Sprintf("; %d hits / %d misses (%.1f%% hit rate), %d puts",
				kc.Hits, kc.Misses, 100*float64(kc.Hits)/float64(total), kc.Puts)
		} else if kc.Puts > 0 {
			row += fmt.Sprintf("; %d puts", kc.Puts)
		}
		rows = append(rows, row)
	}
	return rows
}

// countKind folds one event into the key's kind counters.
func (c *Cache) countKind(key string, hits, misses, puts int64) {
	k := KindOf(key)
	c.kmu.Lock()
	kc := c.kinds[k]
	if kc == nil {
		kc = &KindCounters{}
		c.kinds[k] = kc
	}
	kc.Hits += hits
	kc.Misses += misses
	kc.Puts += puts
	c.kmu.Unlock()
}

// Key derives a cache key from the parts that determine a result.
// Parts are length-prefixed (so {"ab","c"} and {"a","bc"} differ) and
// the schema version is mixed in. The key doubles as the entry's file
// name.
func Key(parts ...string) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(SchemaVersion))
	h.Write(buf[:])
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KindKey derives a cache key like Key but tagged with an entry kind:
// the returned key is "<kind>-<hash>", so the kind survives into the
// entry file name (per-kind disk stats read it back with KindOf) and
// the runtime counters attribute hits/misses/puts to it. The kind is
// also mixed into the hash, so identical parts under different kinds
// are distinct entries. Kinds must be non-empty, filename-safe, and
// free of '-' (the separator).
func KindKey(kind string, parts ...string) string {
	return kind + "-" + Key(append([]string{"kind=" + kind}, parts...)...)
}

// KindOf extracts the kind tag from a key: the prefix before the first
// '-' for KindKey keys, "" for plain Key keys (bare hex).
func KindOf(key string) string {
	if kind, _, ok := strings.Cut(key, "-"); ok {
		return kind
	}
	return ""
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+entryExt) }

// scratch is the per-read decode workspace: the raw file bytes and the
// decompression output live in two reusable buffers, so a warm sweep's
// steady state reads entry after entry without allocating either. The
// buffers only hold bytes between Get and the typed decode — decoded
// values copy out of them (a codec.Codec contract) — so pooling them
// process-wide is safe.
type scratch struct {
	file []byte
	raw  []byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// readEntry reads and envelope-decodes one entry file into sc,
// returning the payload (aliasing sc's buffers). A missing file
// returns os.ErrNotExist; any other failure means a damaged entry.
func (c *Cache) readEntry(key string, sc *scratch) ([]byte, codec.EntryInfo, error) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, codec.EntryInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, codec.EntryInfo{}, err
	}
	size := int(st.Size())
	if cap(sc.file) < size {
		sc.file = make([]byte, size)
	}
	sc.file = sc.file[:size]
	if _, err := io.ReadFull(f, sc.file); err != nil {
		return nil, codec.EntryInfo{}, err
	}
	return codec.DecodeEntry(sc.file, SchemaVersion, key, &sc.raw)
}

// Get decodes the entry for key with cd. It returns false on any miss:
// no entry, a truncated or corrupt file, a CRC or schema mismatch, or
// a payload cd rejects (damaged entries are deleted so they are not
// re-read every time).
func Get[T any](c *Cache, key string, cd codec.Codec[T]) (T, bool) {
	var zero T
	start := time.Now()
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	payload, info, err := c.readEntry(key, sc)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			c.discard(key)
		}
		return zero, false
	}
	r := codec.NewReader(payload)
	v, err := cd.Decode(r)
	if err == nil {
		err = r.Finish()
	}
	if err != nil {
		c.discard(key)
		return zero, false
	}
	c.decodeNanos.Add(time.Since(start).Nanoseconds())
	c.bytesStored.Add(int64(info.StoredLen))
	c.bytesRaw.Add(int64(info.RawLen))
	return v, true
}

// Fetch is Get with stats accounting: a successful decode counts as a
// hit. Unlike Do it never computes or stores. Batch planners use it to
// probe for finished entries up front; a miss counts nothing, because
// the planner's eventual Do/DoEq on the same key records the miss when
// it computes. In verify mode callers should skip Fetch and go through
// Do/DoEq so hits are recomputed and compared.
func Fetch[T any](c *Cache, key string, cd codec.Codec[T]) (T, bool) {
	if c == nil {
		var zero T
		return zero, false
	}
	v, ok := Get(c, key, cd)
	if !ok {
		return v, false
	}
	c.hits.Add(1)
	c.countKind(key, 1, 0, 0)
	return v, true
}

func (c *Cache) discard(key string) {
	c.decodeErrs.Add(1)
	os.Remove(c.path(key))
}

// Put writes the entry for key atomically (temp file + rename), so a
// concurrent reader or a crash never observes a partial entry.
func Put[T any](c *Cache, key string, cd codec.Codec[T], val T) error {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	payload := cd.Append(sc.raw[:0], val)
	sc.raw = payload[:0]
	entry := codec.EncodeEntry(sc.file[:0], SchemaVersion, key, payload, CompressThreshold)
	sc.file = entry[:0]

	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	c.puts.Add(1)
	c.countKind(key, 0, 0, 1)
	return nil
}

// PutIfAbsent writes the entry only when no file for key exists yet,
// reporting whether it wrote. Skipping is sound for every key in this
// cache: keys are content-addressed, so an existing entry already
// holds this value (the schema version pins the encoding), and a
// damaged one is discarded at read time and re-stored by the next
// write. Callers that re-store the same entry every round — a watch
// loop re-anchoring its baseline graph — pay one stat instead of an
// encode, compress, and atomic write.
func PutIfAbsent[T any](c *Cache, key string, cd codec.Codec[T], val T) (bool, error) {
	if _, err := os.Stat(c.path(key)); err == nil {
		return false, nil
	}
	return true, Put(c, key, cd, val)
}

// Do returns the entry for key, computing and storing it on a miss.
// The boolean reports whether the result came from the cache.
// Concurrent calls for the same key are single-flighted: one computes,
// the rest receive its result. A nil cache just runs compute.
//
// In verify mode a hit recomputes anyway and compares the two results
// with reflect.DeepEqual, returning ErrVerifyMismatch on disagreement;
// use DoEq when the cached type needs a domain-specific comparison.
func Do[T any](c *Cache, key string, cd codec.Codec[T], compute func() (T, error)) (T, bool, error) {
	return DoEq(c, key, cd, compute, nil)
}

// DoEq is Do with an explicit verify-mode comparator: eq receives the
// cached and the recomputed value and returns a description of the
// first difference ("" when equal). A nil eq means reflect.DeepEqual.
func DoEq[T any](c *Cache, key string, cd codec.Codec[T], compute func() (T, error), eq func(cached, fresh T) string) (T, bool, error) {
	var zero T
	if c == nil {
		v, err := compute()
		return v, false, err
	}

	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return zero, false, f.err
		}
		v, ok := f.val.(T)
		if !ok {
			return zero, false, fmt.Errorf("cache: key %s used with mismatched types %T and %T", key, f.val, zero)
		}
		return v, f.hit, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	defer func() {
		close(f.done)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
	}()

	if cached, ok := Get(c, key, cd); ok {
		c.hits.Add(1)
		c.countKind(key, 1, 0, 0)
		if c.Verifying() {
			c.verifyChecks.Add(1)
			fresh, err := compute()
			if err != nil {
				f.err = fmt.Errorf("cache: verify recompute of %s: %w", key, err)
				return zero, false, f.err
			}
			diff := ""
			if eq != nil {
				diff = eq(cached, fresh)
			} else if !reflect.DeepEqual(cached, fresh) {
				diff = "values differ (DeepEqual)"
			}
			if diff != "" {
				c.verifyMismatches.Add(1)
				f.err = fmt.Errorf("%w: key %s: %s", ErrVerifyMismatch, key, diff)
				return zero, false, f.err
			}
		}
		f.val, f.hit = cached, true
		return cached, true, nil
	}

	c.misses.Add(1)
	c.countKind(key, 0, 1, 0)
	v, err := compute()
	if err != nil {
		f.err = err
		return zero, false, err
	}
	// A failed write is not fatal — the caller still has the value —
	// but it is counted as a decode error so a read-only or full cache
	// directory is visible in the stats.
	if err := Put(c, key, cd, v); err != nil {
		c.decodeErrs.Add(1)
	}
	f.val = v
	return v, false, nil
}
