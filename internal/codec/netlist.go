package codec

import (
	"fmt"

	"repro/internal/netlist"
)

// Netlist encoding: the on-disk form mirrors the in-memory
// structure-of-arrays layout (PR 5's pointer-free packed debug names,
// extended to the whole netlist). Cells are written column by column —
// one byte per type, then the output-net column as deltas between
// consecutive outputs, then each input/clock column as a delta from
// its own cell's output — because synthesized net IDs are assigned in
// lowering order, so consecutive outputs and a cell's pins are
// numerically close and the zigzag varints stay 1-2 bytes. RAM port
// vectors and port-bit lists delta the same way along their runs.
//
// Layout (after the one-byte structure version):
//
//	nets     uvarint           total net count (explicit: names may be trimmed)
//	const0/1 varint
//	cells    uvarint count, then SoA columns:
//	           type   1 byte each
//	           out    varint delta vs previous out
//	           in0/in1/in2/clk  varint delta vs the cell's out (Nil encodes as -1 like any id)
//	rams     uvarint count; per RAM: name, width, depth (uvarint),
//	           clk varint, write ports {en varint, addr/data delta runs},
//	           read ports {addr/out delta runs}
//	inputs   uvarint count; per port: name, net varint delta vs previous
//	outputs  same
//	names    1 flag byte; when present: offset deltas (uvarint) + packed bytes
//
// The decoder validates counts against the remaining input before
// allocating and finishes with Netlist.Validate, so hostile bytes
// error out instead of producing a netlist that would make a
// downstream kernel index out of range.

// netlistVersion is the structure version inside the netlist payload,
// separate from the cache envelope's schema: it tracks this layout.
const netlistVersion = 1

// maxRAMShape caps a decoded RAM's declared width and depth. Real
// macros are orders of magnitude smaller; the cap keeps a corrupt
// shape from overflowing the area/power arithmetic downstream.
const maxRAMShape = 1 << 24

// AppendNetlist appends the binary encoding of n (which must be
// non-nil) onto dst.
func AppendNetlist(dst []byte, n *netlist.Netlist) []byte {
	dst = AppendByte(dst, netlistVersion)
	dst = AppendUvarint(dst, uint64(n.Nets))
	dst = AppendVarint(dst, int64(n.Const0))
	dst = AppendVarint(dst, int64(n.Const1))

	dst = AppendUvarint(dst, uint64(len(n.Cells)))
	for i := range n.Cells {
		dst = AppendByte(dst, byte(n.Cells[i].Type))
	}
	prev := int64(0)
	for i := range n.Cells {
		out := int64(n.Cells[i].Out)
		dst = AppendVarint(dst, out-prev)
		prev = out
	}
	for pin := 0; pin < 3; pin++ {
		for i := range n.Cells {
			dst = AppendVarint(dst, int64(n.Cells[i].In[pin])-int64(n.Cells[i].Out))
		}
	}
	for i := range n.Cells {
		dst = AppendVarint(dst, int64(n.Cells[i].Clk)-int64(n.Cells[i].Out))
	}

	dst = AppendUvarint(dst, uint64(len(n.RAMs)))
	for _, r := range n.RAMs {
		dst = AppendString(dst, r.Name)
		dst = AppendUvarint(dst, uint64(r.Width))
		dst = AppendUvarint(dst, uint64(r.Depth))
		dst = AppendVarint(dst, int64(r.Clk))
		dst = AppendUvarint(dst, uint64(len(r.WritePorts)))
		for _, wp := range r.WritePorts {
			dst = AppendVarint(dst, int64(wp.En))
			dst = appendIDRun(dst, wp.Addr)
			dst = appendIDRun(dst, wp.Data)
		}
		dst = AppendUvarint(dst, uint64(len(r.ReadPorts)))
		for _, rp := range r.ReadPorts {
			dst = appendIDRun(dst, rp.Addr)
			dst = appendIDRun(dst, rp.Out)
		}
	}

	dst = appendPortBits(dst, n.Inputs)
	dst = appendPortBits(dst, n.Outputs)

	if len(n.NetNameOff) == 0 {
		dst = AppendByte(dst, 0)
	} else {
		dst = AppendByte(dst, 1)
		prevOff := int32(0)
		// Offsets are monotone, so the deltas are the name lengths.
		for _, off := range n.NetNameOff[1:] {
			dst = AppendUvarint(dst, uint64(off-prevOff))
			prevOff = off
		}
		dst = AppendBytes(dst, n.NetNameData)
	}
	return dst
}

// appendIDRun encodes one net-ID vector as a count plus deltas between
// consecutive elements (bus bits are numbered consecutively, so the
// run body is mostly one byte per bit).
func appendIDRun(dst []byte, ids []netlist.NetID) []byte {
	dst = AppendUvarint(dst, uint64(len(ids)))
	prev := int64(0)
	for _, id := range ids {
		dst = AppendVarint(dst, int64(id)-prev)
		prev = int64(id)
	}
	return dst
}

func appendPortBits(dst []byte, ports []netlist.PortBit) []byte {
	dst = AppendUvarint(dst, uint64(len(ports)))
	prev := int64(0)
	for _, p := range ports {
		dst = AppendString(dst, p.Name)
		dst = AppendVarint(dst, int64(p.Net)-prev)
		prev = int64(p.Net)
	}
	return dst
}

// DecodeNetlist reads one netlist from r, allocating exactly one
// backing slice per table and copying every byte it keeps (the decoded
// netlist never aliases r's buffer). It errors — wrapping ErrCorrupt —
// on any malformed input, including structurally invalid netlists
// (out-of-range net IDs, unknown cell types, inconsistent name
// tables).
func DecodeNetlist(r *Reader) (*netlist.Netlist, error) {
	if v := r.Byte(); r.Err() == nil && v != netlistVersion {
		return nil, fmt.Errorf("%w: netlist structure version %d, want %d", ErrCorrupt, v, netlistVersion)
	}
	n := &netlist.Netlist{}
	nets := r.Uvarint()
	if r.Err() == nil && nets >= 1<<31 {
		return nil, fmt.Errorf("%w: net count %d overflows NetID", ErrCorrupt, nets)
	}
	n.Nets = int(nets)
	n.Const0 = netlist.NetID(r.Varint())
	n.Const1 = netlist.NetID(r.Varint())

	// Each cell takes at least its type byte plus one varint per column.
	numCells := r.Count(6)
	if numCells > 0 {
		n.Cells = make([]netlist.Cell, numCells)
	}
	for i := range n.Cells {
		n.Cells[i].Type = netlist.CellType(r.Byte())
	}
	prev := int64(0)
	for i := range n.Cells {
		prev += r.Varint()
		n.Cells[i].Out = netlist.NetID(prev)
	}
	for pin := 0; pin < 3; pin++ {
		for i := range n.Cells {
			n.Cells[i].In[pin] = netlist.NetID(int64(n.Cells[i].Out) + r.Varint())
		}
	}
	for i := range n.Cells {
		n.Cells[i].Clk = netlist.NetID(int64(n.Cells[i].Out) + r.Varint())
	}

	numRAMs := r.Count(6)
	if numRAMs > 0 {
		n.RAMs = make([]*netlist.RAM, numRAMs)
	}
	for ri := range n.RAMs {
		ram := &netlist.RAM{}
		ram.Name = r.String()
		width := r.Uvarint()
		depth := r.Uvarint()
		if r.Err() == nil && (width > maxRAMShape || depth > maxRAMShape) {
			return nil, fmt.Errorf("%w: RAM shape %dx%d exceeds cap", ErrCorrupt, width, depth)
		}
		ram.Width, ram.Depth = int(width), int(depth)
		ram.Clk = netlist.NetID(r.Varint())
		numW := r.Count(3)
		if numW > 0 {
			ram.WritePorts = make([]netlist.RAMWritePort, numW)
		}
		for pi := range ram.WritePorts {
			ram.WritePorts[pi].En = netlist.NetID(r.Varint())
			ram.WritePorts[pi].Addr = decodeIDRun(r)
			ram.WritePorts[pi].Data = decodeIDRun(r)
		}
		numR := r.Count(2)
		if numR > 0 {
			ram.ReadPorts = make([]netlist.RAMReadPort, numR)
		}
		for pi := range ram.ReadPorts {
			ram.ReadPorts[pi].Addr = decodeIDRun(r)
			ram.ReadPorts[pi].Out = decodeIDRun(r)
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		n.RAMs[ri] = ram
	}

	n.Inputs = decodePortBits(r)
	n.Outputs = decodePortBits(r)

	if hasNames := r.Bool(); hasNames && r.Err() == nil {
		// One uvarint (>=1 byte) per net follows, so the count bound
		// holds even before the data block is seen.
		if uint64(r.Len()) < nets {
			return nil, fmt.Errorf("%w: name offset table truncated", ErrCorrupt)
		}
		off := make([]int32, n.Nets+1)
		var cur uint64
		for i := 1; i <= n.Nets; i++ {
			cur += r.Uvarint()
			if cur > 1<<31-1 {
				return nil, fmt.Errorf("%w: name offsets overflow", ErrCorrupt)
			}
			off[i] = int32(cur)
		}
		n.NetNameOff = off
		n.NetNameData = r.Raw()
		if r.Err() == nil && n.NetNameData == nil && cur > 0 {
			return nil, fmt.Errorf("%w: name data missing", ErrCorrupt)
		}
		if n.NetNameData == nil {
			n.NetNameData = []byte{}
		}
	}

	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return n, nil
}

func decodeIDRun(r *Reader) []netlist.NetID {
	count := r.Count(1)
	if count == 0 {
		return nil
	}
	ids := make([]netlist.NetID, count)
	prev := int64(0)
	for i := range ids {
		prev += r.Varint()
		ids[i] = netlist.NetID(prev)
	}
	return ids
}

func decodePortBits(r *Reader) []netlist.PortBit {
	count := r.Count(2)
	if count == 0 {
		return nil
	}
	ports := make([]netlist.PortBit, count)
	prev := int64(0)
	for i := range ports {
		ports[i].Name = r.String()
		prev += r.Varint()
		ports[i].Net = netlist.NetID(prev)
	}
	return ports
}

// NetlistCodec is the Codec binding for *netlist.Netlist.
var NetlistCodec = Codec[*netlist.Netlist]{
	Name:   "netlist",
	Append: AppendNetlist,
	Decode: DecodeNetlist,
}
