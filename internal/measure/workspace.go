package measure

import (
	"sync"

	"repro/internal/cones"
	"repro/internal/fpga"
	"repro/internal/power"
	"repro/internal/synth"
)

// Workspace bundles the per-worker scratch of the whole measurement
// kernel chain — lowering and netlist optimization, cone extraction,
// LUT mapping, and power analysis — so one pool worker can measure
// design point after design point with near-zero steady-state heap
// allocation. A workspace is owned by exactly one goroutine at a time;
// nil everywhere a *Workspace is accepted selects the fresh-allocation
// reference path the golden tests pin reuse against.
type Workspace struct {
	synth *synth.Workspace
	cones cones.Workspace
	fpga  fpga.Workspace
	power power.Workspace
}

// reset drops references into measured data so a pooled workspace pins
// only its own buffers between uses.
func (w *Workspace) reset() {
	w.synth.Reset()
	w.cones.Reset()
	w.fpga.Reset()
}

// wsPool is the process-wide workspace pool. Sessions share nothing
// but this pool: a workspace is taken for the duration of one worker's
// run and reset before going back, so concurrent sessions only ever
// exchange quiescent buffer capacity.
var wsPool = sync.Pool{New: func() any {
	return &Workspace{synth: synth.NewWorkspace()}
}}

func getWorkspace() *Workspace  { return wsPool.Get().(*Workspace) }
func putWorkspace(w *Workspace) { w.reset(); wsPool.Put(w) }
