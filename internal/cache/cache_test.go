package cache

import (
	"bytes"
	"compress/flate"
	"errors"
	"hash/crc32"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
)

type payload struct {
	Name   string
	Values []int
}

// payloadCodec is the test type's explicit binary codec — the same
// shape every real cached type (measure records, metrics) provides.
var payloadCodec = codec.Codec[payload]{
	Name: "test.payload",
	Append: func(dst []byte, p payload) []byte {
		dst = codec.AppendString(dst, p.Name)
		dst = codec.AppendUvarint(dst, uint64(len(p.Values)))
		for _, v := range p.Values {
			dst = codec.AppendVarint(dst, int64(v))
		}
		return dst
	},
	Decode: func(r *codec.Reader) (payload, error) {
		var p payload
		p.Name = r.String()
		if n := r.Count(1); n > 0 {
			p.Values = make([]int, n)
			for i := range p.Values {
				p.Values[i] = int(r.Varint())
			}
		}
		return p, r.Err()
	},
}

var intCodec = codec.Codec[int]{
	Name:   "test.int",
	Append: func(dst []byte, v int) []byte { return codec.AppendVarint(dst, int64(v)) },
	Decode: func(r *codec.Reader) (int, error) { return int(r.Varint()), r.Err() },
}

func open(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyDerivation(t *testing.T) {
	if Key("a", "bc") == Key("ab", "c") {
		t.Error("length prefixing failed: shifted part boundaries collide")
	}
	if Key("x") != Key("x") {
		t.Error("key not deterministic")
	}
	if len(Key("x")) != 64 {
		t.Errorf("key is %d chars, want 64 hex", len(Key("x")))
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	c := open(t)
	key := Key("roundtrip")
	want := payload{Name: "n", Values: []int{1, 2, 3}}
	if err := Put(c, key, payloadCodec, want); err != nil {
		t.Fatal(err)
	}
	got, ok := Get(c, key, payloadCodec)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Name != want.Name || len(got.Values) != 3 || got.Values[2] != 3 {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if _, ok := Get(c, Key("other"), payloadCodec); ok {
		t.Error("hit on a key never put")
	}
}

// TestCompressedRoundtrip pins the block-compression path: an entry
// above the threshold must land on disk smaller than its payload,
// decode back identically, and be visible in the byte counters.
func TestCompressedRoundtrip(t *testing.T) {
	c := open(t)
	key := Key("compressed")
	want := payload{Name: strings.Repeat("wide-bus-net-name/", 64)}
	for i := 0; i < 4*CompressThreshold; i++ {
		want.Values = append(want.Values, i%7)
	}
	if err := Put(c, key, payloadCodec, want); err != nil {
		t.Fatal(err)
	}
	encoded := payloadCodec.Append(nil, want)
	if len(encoded) < CompressThreshold {
		t.Fatalf("test payload encodes to %d bytes, below the %d threshold", len(encoded), CompressThreshold)
	}
	info, err := os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= int64(len(encoded)) {
		t.Errorf("compressed entry is %d bytes on disk for a %d-byte payload", info.Size(), len(encoded))
	}
	got, ok := Get(c, key, payloadCodec)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Name != want.Name || len(got.Values) != len(want.Values) {
		t.Errorf("decode mismatch: %d values, want %d", len(got.Values), len(want.Values))
	}
	for i := range got.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("value %d = %d, want %d", i, got.Values[i], want.Values[i])
		}
	}
	s := c.Stats()
	if s.BytesRaw <= s.BytesStored {
		t.Errorf("byte counters show no compression win: raw %d, stored %d", s.BytesRaw, s.BytesStored)
	}
	if s.DecodeNanos <= 0 {
		t.Error("decode time not accounted")
	}
}

// TestPutIfAbsent pins the skip-if-present contract: the second store
// of a key is a no-op (no write, no put counted), and a discarded
// entry is re-stored.
func TestPutIfAbsent(t *testing.T) {
	c := open(t)
	key := Key("absent")
	wrote, err := PutIfAbsent(c, key, intCodec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("first PutIfAbsent did not write")
	}
	wrote, err = PutIfAbsent(c, key, intCodec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if wrote {
		t.Error("PutIfAbsent rewrote an existing entry")
	}
	if got := c.Stats().Puts; got != 1 {
		t.Errorf("puts = %d after a skipped store, want 1", got)
	}
	if v, ok := Get(c, key, intCodec); !ok || v != 7 {
		t.Fatalf("Get = %d, %t after skipped store, want 7, true", v, ok)
	}
	c.discard(key)
	if wrote, err = PutIfAbsent(c, key, intCodec, 7); err != nil || !wrote {
		t.Fatalf("PutIfAbsent after discard = %t, %v, want a write", wrote, err)
	}
}

func TestKindKey(t *testing.T) {
	k := KindKey("sig", "a", "b")
	if !strings.HasPrefix(k, "sig-") {
		t.Errorf("KindKey = %q, want sig- prefix", k)
	}
	if KindOf(k) != "sig" {
		t.Errorf("KindOf(%q) = %q, want sig", k, KindOf(k))
	}
	if KindOf(Key("a", "b")) != "" {
		t.Error("plain keys should have empty kind")
	}
	// Same parts under different kinds are distinct entries.
	if KindKey("sig", "a") == KindKey("component", "a") {
		t.Error("kinds do not separate the key space")
	}
	// Kind tag must not collide with the kind-in-hash mixing.
	if strings.TrimPrefix(KindKey("sig", "a"), "sig-") == Key("a") {
		t.Error("kind not mixed into the hash")
	}
}

// TestKindStats pins the per-kind observability: runtime counters
// attribute hits/misses/puts to the key's kind, and the disk scan
// splits the footprint the same way.
func TestKindStats(t *testing.T) {
	c := open(t)
	sigKey := KindKey("sig", "s1")
	compKey := KindKey("component", "c1")
	plainKey := Key("p1")

	compute := func() (payload, error) { return payload{Name: "v"}, nil }
	for _, key := range []string{sigKey, compKey, plainKey} {
		if _, hit, err := Do(c, key, payloadCodec, compute); err != nil || hit {
			t.Fatalf("cold Do(%s): hit=%v err=%v", key, hit, err)
		}
	}
	if _, hit, err := Do(c, sigKey, payloadCodec, compute); err != nil || !hit {
		t.Fatalf("warm Do: hit=%v err=%v", hit, err)
	}
	if _, ok := Fetch(c, compKey, payloadCodec); !ok {
		t.Fatal("Fetch miss after put")
	}

	ks := c.KindStats()
	if got := ks["sig"]; got.Hits != 1 || got.Misses != 1 || got.Puts != 1 {
		t.Errorf("sig counters = %+v, want 1/1/1", got)
	}
	if got := ks["component"]; got.Hits != 1 || got.Misses != 1 || got.Puts != 1 {
		t.Errorf("component counters = %+v, want 1/1/1", got)
	}
	if got := ks[""]; got.Misses != 1 || got.Puts != 1 {
		t.Errorf("plain-key counters = %+v, want 1 miss / 1 put", got)
	}

	ds, err := c.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entries != 3 {
		t.Fatalf("DiskStats entries = %d, want 3", ds.Entries)
	}
	for _, kind := range []string{"sig", "component", ""} {
		kd := ds.Kinds[kind]
		if kd.Entries != 1 || kd.Bytes <= 0 {
			t.Errorf("disk kind %q = %+v, want 1 entry with bytes", kind, kd)
		}
	}
}

func TestKindRows(t *testing.T) {
	ds := DiskStats{Kinds: map[string]KindDisk{
		"sig": {Entries: 2, Bytes: 100},
		"":    {Entries: 1, Bytes: 50},
	}}
	ks := map[string]KindCounters{
		"sig":      {Hits: 3, Misses: 1, Puts: 1},
		"depgraph": {Puts: 2},
	}
	rows := KindRows(ds, ks)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3: %v", len(rows), rows)
	}
	// Sorted by kind: "" (plain) < depgraph < sig.
	if !strings.Contains(rows[0], "plain") {
		t.Errorf("row 0 = %q, want plain kind first", rows[0])
	}
	if !strings.Contains(rows[1], "depgraph") || !strings.Contains(rows[1], "2 puts") {
		t.Errorf("row 1 = %q, want depgraph puts", rows[1])
	}
	if !strings.Contains(rows[2], "75.0% hit rate") {
		t.Errorf("row 2 = %q, want 75.0%% hit rate", rows[2])
	}
}

func TestDiskStats(t *testing.T) {
	c := open(t)
	for i, name := range []string{"a", "b", "c"} {
		if err := Put(c, Key(name), payloadCodec, payload{Name: name, Values: []int{i}}); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-entry file must not be counted.
	if err := os.WriteFile(c.dir+"/README", []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := c.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entries != 3 {
		t.Errorf("DiskStats entries = %d, want 3", ds.Entries)
	}
	if ds.Bytes <= 0 {
		t.Errorf("DiskStats bytes = %d, want > 0", ds.Bytes)
	}
}

func TestDoComputesOnceThenHits(t *testing.T) {
	c := open(t)
	key := Key("do")
	calls := 0
	compute := func() (payload, error) {
		calls++
		return payload{Name: "v"}, nil
	}
	v, hit, err := Do(c, key, payloadCodec, compute)
	if err != nil || hit || v.Name != "v" {
		t.Fatalf("first Do: v=%+v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = Do(c, key, payloadCodec, compute)
	if err != nil || !hit || v.Name != "v" {
		t.Fatalf("second Do: v=%+v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", s)
	}
}

func TestNilCacheJustComputes(t *testing.T) {
	v, hit, err := Do(nil, Key("k"), intCodec, func() (int, error) { return 7, nil })
	if v != 7 || hit || err != nil {
		t.Errorf("nil cache: v=%d hit=%v err=%v", v, hit, err)
	}
}

// TestCorruptedEntryFallsBackToRecompute drives every decode-failure
// surface of the v3 entry format — file-level damage, payload
// truncation, a flipped payload byte under an intact CRC field, a
// stale schema, a declared decompressed size past the bomb cap, and
// trailing garbage after a valid value — and asserts each one degrades
// to a recompute that repairs the entry, never an error or a bogus
// hit.
func TestCorruptedEntryFallsBackToRecompute(t *testing.T) {
	c := open(t)
	key := Key("corrupt")
	corruptions := map[string]func(p string) error{
		"garbage": func(p string) error { return os.WriteFile(p, []byte("not an entry at all"), 0o644) },
		"empty":   func(p string) error { return os.WriteFile(p, nil, 0o644) },
		"truncated-payload": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)-3], 0o644)
		},
		"bad-crc": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-1] ^= 0x40 // flip a payload bit; header CRC now disagrees
			return os.WriteFile(p, data, 0o644)
		},
		"stale-schema": func(p string) error {
			entry := codec.EncodeEntry(nil, SchemaVersion+1, key,
				payloadCodec.Append(nil, payload{Name: "future"}), -1)
			return os.WriteFile(p, entry, 0o644)
		},
		"compression-bomb": func(p string) error {
			// Hand-assemble an envelope whose header declares a
			// decompressed size past the cap; the reader must reject it
			// before allocating anything.
			var fl bytes.Buffer
			w, err := flate.NewWriter(&fl, flate.BestSpeed)
			if err != nil {
				return err
			}
			w.Write(make([]byte, 1024))
			w.Close()
			entry := []byte(codec.EntryMagic)
			entry = codec.AppendUvarint(entry, SchemaVersion)
			entry = codec.AppendByte(entry, codec.CompressFlate)
			entry = codec.AppendString(entry, key)
			entry = codec.AppendUvarint(entry, codec.MaxDecodedLen+1)
			entry = codec.AppendUint32(entry, crc32.Checksum(fl.Bytes(), crc32.MakeTable(crc32.Castagnoli)))
			entry = append(entry, fl.Bytes()...)
			return os.WriteFile(p, entry, 0o644)
		},
		"trailing-garbage": func(p string) error {
			// A valid payload followed by extra bytes re-framed into a
			// consistent envelope: the typed decode must insist the
			// payload is consumed exactly.
			body := payloadCodec.Append(nil, payload{Name: "good"})
			body = append(body, 0xEE, 0xEE)
			return os.WriteFile(p, codec.EncodeEntry(nil, SchemaVersion, key, body, -1), 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := Put(c, key, payloadCodec, payload{Name: "good", Values: []int{1, 2, 3}}); err != nil {
				t.Fatal(err)
			}
			if err := corrupt(c.path(key)); err != nil {
				t.Fatal(err)
			}
			v, hit, err := Do(c, key, payloadCodec, func() (payload, error) { return payload{Name: "recomputed"}, nil })
			if err != nil {
				t.Fatal(err)
			}
			if hit || v.Name != "recomputed" {
				t.Errorf("corrupt entry served as hit: v=%+v hit=%v", v, hit)
			}
			// The recompute must repair the entry.
			got, ok := Get(c, key, payloadCodec)
			if !ok || got.Name != "recomputed" {
				t.Errorf("entry not repaired after recompute: %+v", got)
			}
			if err := os.Remove(c.path(key)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if s := c.Stats(); s.DecodeErrors == 0 {
		t.Error("corrupt entries not counted")
	}
}

func TestSchemaVersionBumpInvalidates(t *testing.T) {
	c := open(t)
	key := Key("schema")
	// Hand-write an entry with a future schema version at today's key:
	// the reader must ignore it (as it must ignore stale entries after
	// a real bump, whose keys also change).
	entry := codec.EncodeEntry(nil, SchemaVersion+1, key,
		payloadCodec.Append(nil, payload{Name: "future"}), -1)
	if err := os.WriteFile(c.path(key), entry, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := Get(c, key, payloadCodec); ok {
		t.Fatalf("entry with schema %d decoded by reader at schema %d", SchemaVersion+1, SchemaVersion)
	}
	if _, err := os.Stat(c.path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale-schema entry not deleted")
	}
}

// TestKeyEchoMismatch covers a renamed entry file: the envelope echoes
// the key it was written under, so serving it under another name must
// fail and delete the misplaced file.
func TestKeyEchoMismatch(t *testing.T) {
	c := open(t)
	orig, moved := Key("original"), Key("moved")
	if err := Put(c, orig, payloadCodec, payload{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path(orig), c.path(moved)); err != nil {
		t.Fatal(err)
	}
	if _, ok := Get(c, moved, payloadCodec); ok {
		t.Error("entry served under a key it was not written for")
	}
	if _, err := os.Stat(c.path(moved)); !errors.Is(err, os.ErrNotExist) {
		t.Error("misplaced entry not deleted")
	}
}

func TestSingleFlight(t *testing.T) {
	c := open(t)
	key := Key("flight")
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]payload, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := Do(c, key, payloadCodec, func() (payload, error) {
				calls.Add(1)
				<-gate // hold the flight open until everyone has joined
				return payload{Name: "shared"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times under concurrent Do, want 1", got)
	}
	for i := range results {
		if results[i].Name != "shared" {
			t.Errorf("goroutine %d got %+v", i, results[i])
		}
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := open(t)
	key := Key("err")
	boom := errors.New("boom")
	_, _, err := Do(c, key, intCodec, func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := Do(c, key, intCodec, func() (int, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Errorf("after failed compute: v=%d hit=%v err=%v", v, hit, err)
	}
}

func TestVerifyMode(t *testing.T) {
	c := open(t)
	c.SetVerify(true)
	key := Key("verify")
	if err := Put(c, key, payloadCodec, payload{Name: "stored", Values: []int{1}}); err != nil {
		t.Fatal(err)
	}
	v, hit, err := Do(c, key, payloadCodec, func() (payload, error) {
		return payload{Name: "stored", Values: []int{1}}, nil
	})
	if err != nil || !hit || v.Name != "stored" {
		t.Fatalf("matching verify: v=%+v hit=%v err=%v", v, hit, err)
	}
	_, _, err = Do(c, key, payloadCodec, func() (payload, error) {
		return payload{Name: "different", Values: []int{1}}, nil
	})
	if !errors.Is(err, ErrVerifyMismatch) {
		t.Fatalf("mismatching verify returned %v, want ErrVerifyMismatch", err)
	}
	s := c.Stats()
	if s.VerifyChecks != 2 || s.VerifyMismatches != 1 {
		t.Errorf("stats = %+v, want 2 checks / 1 mismatch", s)
	}
}

func TestDoEqComparator(t *testing.T) {
	c := open(t)
	c.SetVerify(true)
	key := Key("doeq")
	if err := Put(c, key, payloadCodec, payload{Name: "x", Values: []int{1}}); err != nil {
		t.Fatal(err)
	}
	// Comparator that only inspects Name: a Values difference passes.
	eq := func(cached, fresh payload) string {
		if cached.Name != fresh.Name {
			return "Name differs"
		}
		return ""
	}
	_, hit, err := DoEq(c, key, payloadCodec, func() (payload, error) {
		return payload{Name: "x", Values: []int{999}}, nil
	}, eq)
	if err != nil || !hit {
		t.Fatalf("comparator verify: hit=%v err=%v", hit, err)
	}
	_, _, err = DoEq(c, key, payloadCodec, func() (payload, error) {
		return payload{Name: "y"}, nil
	}, eq)
	if !errors.Is(err, ErrVerifyMismatch) {
		t.Fatalf("comparator mismatch returned %v", err)
	}
}

// TestDiskStatsMemoized pins the amortized DiskStats contract: the
// directory is walked once per mutation generation, not once per
// call. Repeated calls on an unchanged cache serve the memo (one
// scan); any Put — including a verify-mode discard — invalidates it
// (a second scan); and the returned per-kind map is a copy, so a
// caller mutating it cannot poison the memo.
func TestDiskStatsMemoized(t *testing.T) {
	c := open(t)
	if err := Put(c, KindKey("syn", "a"), payloadCodec, payload{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.DiskStats(); err != nil {
			t.Fatal(err)
		}
	}
	if scans := c.Stats().DiskScans; scans != 1 {
		t.Fatalf("3 DiskStats on an unchanged cache cost %d scans, want 1", scans)
	}

	if err := Put(c, KindKey("syn", "b"), payloadCodec, payload{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	ds, err := c.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entries != 2 {
		t.Fatalf("entries after second put = %d, want 2", ds.Entries)
	}
	if scans := c.Stats().DiskScans; scans != 2 {
		t.Fatalf("DiskStats after a Put cost %d scans total, want 2", scans)
	}

	// The memo must hand out copies: mutate the returned kind map and
	// check a fresh call is unaffected.
	for k := range ds.Kinds {
		ds.Kinds[k] = KindDisk{Entries: 999}
	}
	ds2, err := c.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Kinds["syn"].Entries == 999 {
		t.Fatal("DiskStats returned the memo's own map, not a copy")
	}
	if scans := c.Stats().DiskScans; scans != 2 {
		t.Fatalf("memoized re-read cost a scan: %d total, want 2", scans)
	}
}

// TestSnapshot covers the warm-start key-set snapshot: present keys
// answer true, absent ones false, a nil snapshot (no cache scanned)
// conservatively answers true for everything, and writes after the
// snapshot do not appear in it (it is a point-in-time hint).
func TestSnapshot(t *testing.T) {
	c := open(t)
	if err := Put(c, Key("present"), payloadCodec, payload{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 1 {
		t.Fatalf("snapshot len = %d, want 1", snap.Len())
	}
	if !snap.MayContain(Key("present")) {
		t.Fatal("snapshot misses a present key")
	}
	if snap.MayContain(Key("absent")) {
		t.Fatal("snapshot claims an absent key")
	}
	if err := Put(c, Key("later"), payloadCodec, payload{Name: "l"}); err != nil {
		t.Fatal(err)
	}
	if snap.MayContain(Key("later")) {
		t.Fatal("snapshot sees a write made after it was taken")
	}
	var nilSnap *Snapshot
	if !nilSnap.MayContain(Key("anything")) {
		t.Fatal("nil snapshot must answer true (probe disk)")
	}
}

// TestDoEqHint pins the batched warm-start read path: with a snapshot
// that says the key is absent, DoEqHint computes without touching the
// entry file; with the key present it hits as usual; and verify mode
// ignores the hint entirely so every hit is still re-checked. The
// read elision is observed directly: a corrupt entry file planted
// under a hinted-absent key must never be decoded (no decode error),
// where an unhinted lookup would read it and record one.
func TestDoEqHint(t *testing.T) {
	c := open(t)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	key := Key("hinted")
	noEq := func(cached, fresh payload) string { return "" }

	// Plant garbage where the entry would live, post-snapshot. A read
	// would discard it and count a DecodeError; the hint elides the read
	// so the file is simply overwritten by the computed value's Put.
	if err := os.WriteFile(c.path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, hit, err := DoEqHint(c, key, payloadCodec, func() (payload, error) {
		return payload{Name: "fresh"}, nil
	}, noEq, snap)
	if err != nil || hit || v.Name != "fresh" {
		t.Fatalf("hinted-absent DoEqHint: v=%+v hit=%v err=%v", v, hit, err)
	}
	if s := c.Stats(); s.DecodeErrors != 0 {
		t.Fatalf("hinted-absent lookup read the entry file (%d decode errors), want the read elided", s.DecodeErrors)
	}

	// A fresh snapshot sees the key: normal hit path.
	snap2, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v, hit, err = DoEqHint(c, key, payloadCodec, func() (payload, error) {
		t.Fatal("compute ran despite a hit")
		return payload{}, nil
	}, noEq, snap2)
	if err != nil || !hit || v.Name != "fresh" {
		t.Fatalf("hinted-present DoEqHint: v=%+v hit=%v err=%v", v, hit, err)
	}

	// Verify mode overrides the hint: even a snapshot that says absent
	// must not suppress the consistency check's read-and-compare.
	c.SetVerify(true)
	defer c.SetVerify(false)
	mismatches := 0
	_, _, err = DoEqHint(c, key, payloadCodec, func() (payload, error) {
		return payload{Name: "fresh"}, nil
	}, func(cached, fresh payload) string {
		mismatches++ // called means the cached entry was read
		return ""
	}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if mismatches != 1 {
		t.Fatal("verify mode skipped the cached read on a hinted-absent key")
	}
}
