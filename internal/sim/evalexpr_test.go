package sim

import (
	"strings"
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/synth"
)

// exprHarness builds a module computing y = <expr> over fixed inputs
// and returns the settled output.
func exprHarness(t *testing.T, expr string, width int, inputs map[string]uint64) uint64 {
	t.Helper()
	src := `
module h (input [15:0] a, input [15:0] b, input [3:0] c, input s, output [` +
		itoa(width-1) + `:0] y);
  assign y = ` + expr + `;
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"h.v": src})
	if err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	inst, _, err := elab.Elaborate(d, "h", nil)
	if err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	r, err := NewRTLSim(inst)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range inputs {
		if err := r.SetInput(name, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Eval(); err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	got, err := r.Output("y")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func itoa(v int) string {
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	var out []byte
	for v > 0 {
		out = append([]byte{digits[v%10]}, out...)
		v /= 10
	}
	return string(out)
}

func TestRTLSimExpressionCatalog(t *testing.T) {
	in := map[string]uint64{"a": 0xBEEF, "b": 0x1234, "c": 9, "s": 1}
	cases := []struct {
		expr  string
		width int
		want  uint64
	}{
		{"a + b", 16, (0xBEEF + 0x1234) & 0xFFFF},
		{"a - b", 16, (0xBEEF - 0x1234) & 0xFFFF},
		{"a * b", 16, (0xBEEF * 0x1234) & 0xFFFF},
		{"a / 4", 16, 0xBEEF / 4},
		{"a % 8", 16, 0xBEEF % 8},
		{"a & b", 16, 0xBEEF & 0x1234},
		{"a | b", 16, 0xBEEF | 0x1234},
		{"a ^ b", 16, 0xBEEF ^ 0x1234},
		{"a ~^ b", 16, ^(uint64(0xBEEF) ^ 0x1234) & 0xFFFF},
		{"~a", 16, ^uint64(0xBEEF) & 0xFFFF},
		{"-b", 16, (^uint64(0x1234) + 1) & 0xFFFF},
		{"a << 3", 16, (0xBEEF << 3) & 0xFFFF},
		{"a >> c", 16, 0xBEEF >> 9},
		{"a << c", 16, (0xBEEF << 9) & 0xFFFF},
		{"a == b", 1, 0},
		{"a != b", 1, 1},
		{"a < b", 1, 0},
		{"a <= a", 1, 1},
		{"a > b", 1, 1},
		{"b >= a", 1, 0},
		{"a && 0", 1, 0},
		{"a || 0", 1, 1},
		{"!a", 1, 0},
		{"&c", 1, 0}, // 9 = 0b1001
		{"|c", 1, 1},
		{"^c", 1, 0}, // parity of 0b1001
		{"~&c", 1, 1},
		{"~|c", 1, 0},
		{"~^c", 1, 1},
		{"s ? a : b", 16, 0xBEEF},
		{"a[3]", 1, 1},                 // 0xBEEF bit 3
		{"a[c]", 1, (0xBEEF >> 9) & 1}, // variable bit select
		{"a[11:4]", 8, (0xBEEF >> 4) & 0xFF},
		{"{c, a[3:0]}", 8, 9<<4 | 0xF},
		{"{2{c}}", 8, 9<<4 | 9},
		{"(a + b) >> 1", 16, ((0xBEEF + 0x1234) & 0xFFFF) >> 1}, // width-limited intermediate
	}
	for _, c := range cases {
		if got := exprHarness(t, c.expr, c.width, in); got != c.want {
			t.Errorf("%q = %#x, want %#x", c.expr, got, c.want)
		}
	}
}

func TestRTLSimPeek(t *testing.T) {
	inst := elaborate(t, `
module p (input [7:0] a, output [7:0] y);
  wire [7:0] mid;
  assign mid = a + 1;
  assign y = mid * 2;
endmodule`, "p")
	r, err := NewRTLSim(inst)
	if err != nil {
		t.Fatal(err)
	}
	r.SetInput("a", 10)
	if err := r.Eval(); err != nil {
		t.Fatal(err)
	}
	v, ok := r.Peek("p.mid")
	if !ok || v != 11 {
		t.Errorf("Peek(p.mid) = %v, %v", v, ok)
	}
	if _, ok := r.Peek("p.nosuch"); ok {
		t.Error("Peek must miss unknown nets")
	}
}

func TestRTLSimOutOfRangeDynamicAccess(t *testing.T) {
	// Reading past the end of a vector yields 0 (no X state); writing
	// past the end is dropped.
	inst := elaborate(t, `
module o (input clk, input [3:0] idx, input [7:0] a, input bitv, output y, output reg [7:0] w);
  assign y = a[idx];
  always @(posedge clk) w[idx] <= bitv;
endmodule`, "o")
	r, err := NewRTLSim(inst)
	if err != nil {
		t.Fatal(err)
	}
	r.SetInput("a", 0xFF)
	r.SetInput("idx", 12) // beyond bit 7
	if err := r.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Output("y"); got != 0 {
		t.Errorf("out-of-range read = %d, want 0", got)
	}
	r.SetInput("bitv", 1)
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Output("w"); got != 0 {
		t.Errorf("out-of-range write must be dropped, w = %#x", got)
	}
}

func TestRTLSimDivisionByNonPowerOfTwoRejected(t *testing.T) {
	inst := elaborate(t, `
module d (input [7:0] a, output [7:0] y);
  assign y = a / 3;
endmodule`, "d")
	r, err := NewRTLSim(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Eval(); err == nil || !strings.Contains(err.Error(), "powers of two") {
		t.Fatalf("want power-of-two error, got %v", err)
	}
}

func TestGateSimResetClearsState(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module g (input clk, input [3:0] din, output reg [3:0] q);
  always @(posedge clk) q <= q + din;
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := elab.Elaborate(d, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	// Build gates and run, then reset.
	gsim := gateSimOf(t, d)
	gsim.SetInput("din", 3)
	gsim.Step()
	gsim.Step()
	if got, _ := gsim.Output("q"); got != 6 {
		t.Fatalf("q = %d", got)
	}
	gsim.Reset()
	if got, _ := gsim.Output("q"); got != 0 {
		t.Errorf("q after reset = %d", got)
	}
	if names := gsim.InputNames(); len(names) != 2 {
		t.Errorf("inputs = %v", names)
	}
	if names := gsim.OutputNames(); len(names) != 1 || names[0] != "q" {
		t.Errorf("outputs = %v", names)
	}
}

// gateSimOf synthesizes module "g" of the design and wraps it in a
// gate-level simulator.
func gateSimOf(t *testing.T, d *hdl.Design) *GateSim {
	t.Helper()
	res, err := synth.Synthesize(d, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
