package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveSPDIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	x, err := SolveSPD(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		closeTo(t, x[i], want, 1e-12, "identity solve")
	}
}

func TestSolveSPDKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2]
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := SolveSPD(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, x[0], 1.5, 1e-12, "x0")
	closeTo(t, x[1], 2, 1e-12, "x1")
}

func TestSolveSPDSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := SolveSPD(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveSPDRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		// Build SPD matrix A = MᵀM + I.
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64()
			}
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += m[k][i] * m[k][j]
				}
				if i == j {
					s++
				}
				a.Set(i, j, s)
			}
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			closeTo(t, got[i], want[i], 1e-8, "random SPD solve")
		}
	}
}

func TestOLSExactFit(t *testing.T) {
	// y = 2·x1 + 3·x2 with no noise.
	x := NewMatrix(4, 2)
	rows := [][2]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := make([]float64, 4)
	for i, r := range rows {
		x.Set(i, 0, r[0])
		x.Set(i, 1, r[1])
		y[i] = 2*r[0] + 3*r[1]
	}
	beta, rss, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, beta[0], 2, 1e-10, "beta0")
	closeTo(t, beta[1], 3, 1e-10, "beta1")
	closeTo(t, rss, 0, 1e-18, "rss")
}

func TestOLSUnderdetermined(t *testing.T) {
	x := NewMatrix(1, 2)
	if _, _, err := OLS(x, []float64{1}); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
}

func TestOLSResidualOrthogonality(t *testing.T) {
	// OLS residuals must be orthogonal to every column of X.
	rng := rand.New(rand.NewSource(11))
	n, p := 30, 3
	x := NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = rng.NormFloat64()
	}
	beta, _, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	fit := x.MulVec(beta)
	for j := 0; j < p; j++ {
		var dot float64
		for i := 0; i < n; i++ {
			dot += x.At(i, j) * (y[i] - fit[i])
		}
		if math.Abs(dot) > 1e-8 {
			t.Errorf("residual not orthogonal to column %d: %v", j, dot)
		}
	}
}
