package elab

import (
	"fmt"
	"sort"

	"repro/internal/hdl"
)

// Net is a concretely-sized signal of an elaborated instance.
type Net struct {
	Name   string // fully scoped name, e.g. "g[2].t"
	Width  int
	LSB    int64 // declared LSB index, for bit-position arithmetic
	Kind   hdl.NetKind
	IsPort bool
	Dir    hdl.PortDir
	Pos    hdl.Pos
}

// Mem is a concretely-sized memory array (reg [W-1:0] m [A:B]).
type Mem struct {
	Name   string
	Width  int
	Depth  int64
	MinIdx int64
	Pos    hdl.Pos
}

// ElabAssign is a continuous assignment plus the scope it appeared in.
type ElabAssign struct {
	Item *hdl.ContAssign
	Env  *Env
}

// ElabAlways is an always block plus the scope it appeared in.
type ElabAlways struct {
	Item *hdl.AlwaysBlock
	Env  *Env
}

// Child is an elaborated submodule instantiation. In report-only
// elaborations (Options.ReportOnly) Inst is nil — the subtree's report
// fragment was extracted and the tree discarded — while Name, Ports,
// and Env remain so the parent's range validation still covers every
// port expression.
type Child struct {
	Name  string // scoped instance name, e.g. "g[1].u0"
	Ports []hdl.Binding
	Env   *Env // scope the port expressions evaluate in (parent side)
	Inst  *Instance
	Pos   hdl.Pos
}

// Instance is one elaborated module instance.
type Instance struct {
	Module   *hdl.Module
	Path     string // hierarchical path from the top ("top.u0.g[1].u")
	Params   map[string]int64
	Nets     map[string]*Net
	Mems     map[string]*Mem
	IntVars  map[string]bool // integer variables (loop indices)
	Genvars  map[string]bool
	Assigns  []*ElabAssign
	Alwayses []*ElabAlways
	Children []*Child
}

// ResolveNet finds the net visible as name from scope env: the
// innermost generate-scope prefix that declares it wins.
func (inst *Instance) ResolveNet(name string, env *Env) (*Net, bool) {
	for _, p := range env.Prefixes() {
		if n, ok := inst.Nets[p+name]; ok {
			return n, true
		}
	}
	return nil, false
}

// ResolveMem finds the memory visible as name from scope env.
func (inst *Instance) ResolveMem(name string, env *Env) (*Mem, bool) {
	for _, p := range env.Prefixes() {
		if m, ok := inst.Mems[p+name]; ok {
			return m, true
		}
	}
	return nil, false
}

// IsIntVar reports whether name is an integer loop variable.
func (inst *Instance) IsIntVar(name string) bool { return inst.IntVars[name] }

// PortNets returns the nets of the instance's ports, in declaration
// order.
func (inst *Instance) PortNets() []*Net {
	out := make([]*Net, 0, len(inst.Module.Ports))
	for _, p := range inst.Module.Ports {
		if n, ok := inst.Nets[p.Name]; ok {
			out = append(out, n)
		}
	}
	return out
}

// SortedNetNames returns all net names sorted, for deterministic
// iteration.
func (inst *Instance) SortedNetNames() []string {
	names := make([]string, 0, len(inst.Nets))
	for n := range inst.Nets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CountInstances returns the total number of instances in the subtree
// rooted at inst (including itself).
func (inst *Instance) CountInstances() int {
	n := 1
	for _, c := range inst.Children {
		n += c.Inst.CountInstances()
	}
	return n
}

// String returns a short description for diagnostics.
func (inst *Instance) String() string {
	return fmt.Sprintf("%s(%s)", inst.Path, inst.Module.Name)
}
