// Package scratch holds the tiny allocation-reuse primitives shared by
// every workspace in the measurement pipeline (netlist builder and
// optimizer, synth lowering, cone extraction, FPGA mapping): length-n
// views over persistent buffers and a chunked arena for many small
// slices with a common lifetime. None of it is synchronized — a buffer
// or arena belongs to exactly one goroutine at a time, which is the
// workspace ownership model (see DESIGN.md).
package scratch

// Zero returns a zeroed slice of length n backed by *buf, growing the
// buffer when its capacity is insufficient. Use for scratch the caller
// reads before fully writing (the make([]T, n) replacement).
func Zero[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// Raw is Zero for buffers the caller fully initializes before reading:
// it skips the clearing pass and may return stale values.
func Raw[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// Arena hands out small value slices carved from doubling chunks, so a
// steady-state pass that takes the same total footprint as the last one
// allocates nothing. Taken slices stay valid until Reset; they are
// full-capacity-sliced, so an append by the holder copies out instead
// of bleeding into a neighbour.
type Arena[T any] struct {
	chunk []T
}

// Take returns an n-element zeroed slice from the arena.
func (a *Arena[T]) Take(n int) []T {
	if len(a.chunk)+n > cap(a.chunk) {
		sz := 2 * cap(a.chunk)
		if sz < 1024 {
			sz = 1024
		}
		if sz < n {
			sz = n
		}
		a.chunk = make([]T, 0, sz)
	}
	off := len(a.chunk)
	a.chunk = a.chunk[: off+n : cap(a.chunk)]
	s := a.chunk[off : off+n : off+n]
	clear(s)
	return s
}

// Reset rewinds the arena, invalidating every slice it handed out. The
// retained chunk is the largest one ever grown to, so the next cycle of
// Takes is allocation-free once sizes stabilize.
func (a *Arena[T]) Reset() {
	a.chunk = a.chunk[:0]
}
