package elab

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hdl"
)

// ConstructKey identifies one parameter-sensitive syntactic construct:
// its kind and source position. Keying reports by this comparable
// struct instead of a rendered "kind@file:line:col" string keeps the
// hot record/merge path free of per-call string formatting; the
// rendered form only materializes for diagnostics (String, the
// CompatibleWith reasons).
type ConstructKey struct {
	Kind string // "genfor", "genif", "if", "case", "for", "mem", "repl"
	Pos  hdl.Pos
}

// String renders the key in the legacy "kind@file:line:col" form.
func (k ConstructKey) String() string { return k.Kind + "@" + k.Pos.String() }

// Construct records the elaboration fate of one parameter-sensitive
// syntactic construct. Constructs inside generate loops are elaborated
// repeatedly; their records aggregate all elaborations.
type Construct struct {
	Kind string // same as the key's Kind
	// Alive is true when the construct did real work in at least one
	// elaboration: a loop ran ≥1 iteration, a memory has depth ≥2, a
	// replication count was ≥1.
	Alive bool
	// Branches is the set of arms taken by a constant conditional
	// ("then"/"else" for ifs, "arm<N>"/"default" for cases) across all
	// elaborations. Allocated lazily — nil until the first arm is
	// recorded (loop and memory constructs never record arms).
	Branches map[string]bool
	// NonConst is true when the condition/subject was signal-dependent
	// in at least one elaboration (no branch constraint applies).
	NonConst bool
}

// Report is the elaboration signature of a design under one parameter
// assignment: every parameter-sensitive construct and its fate.
// Constructs are stored by value and the map is allocated lazily on the
// first record — most per-subtree report fragments stay empty, so it is
// the only allocation the steady-state record path can perform and
// usually performs none.
type Report struct {
	Constructs map[ConstructKey]Construct
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{}
}

func (r *Report) ensure() {
	if r.Constructs == nil {
		r.Constructs = make(map[ConstructKey]Construct, 8)
	}
}

// recordLoop records a loop elaboration with the given trip count.
func (r *Report) recordLoop(kind string, pos hdl.Pos, trips int64) {
	r.ensure()
	key := ConstructKey{kind, pos}
	c, ok := r.Constructs[key]
	if !ok {
		c.Kind = kind
	}
	if trips >= 1 {
		c.Alive = true
	}
	r.Constructs[key] = c
}

// recordBranch records a constant conditional taking one arm.
func (r *Report) recordBranch(kind string, pos hdl.Pos, arm string) {
	r.ensure()
	key := ConstructKey{kind, pos}
	c, ok := r.Constructs[key]
	if !ok {
		c.Kind = kind
	}
	c.Alive = true
	if c.Branches == nil {
		c.Branches = map[string]bool{}
	}
	c.Branches[arm] = true
	r.Constructs[key] = c
}

// recordNonConst records a signal-dependent conditional.
func (r *Report) recordNonConst(kind string, pos hdl.Pos) {
	r.ensure()
	key := ConstructKey{kind, pos}
	c, ok := r.Constructs[key]
	if !ok {
		c.Kind = kind
	}
	c.Alive = true
	c.NonConst = true
	r.Constructs[key] = c
}

// recordMem records a memory elaboration with the given depth.
func (r *Report) recordMem(pos hdl.Pos, depth int64) {
	r.ensure()
	key := ConstructKey{"mem", pos}
	c, ok := r.Constructs[key]
	if !ok {
		c.Kind = "mem"
	}
	if depth >= 2 {
		c.Alive = true
	}
	r.Constructs[key] = c
}

// mergeFrom folds another report's constructs into r. Every record is
// a monotone union (Alive/NonConst flags, branch-arm sets), so merging
// a subtree's fragment is exactly equivalent to replaying its record
// calls, in any order. Branch sets are always copied on first insert —
// never aliased — so fragments held by a session Cache stay immutable.
func (r *Report) mergeFrom(o *Report) {
	if len(o.Constructs) == 0 {
		return
	}
	r.ensure()
	for key, oc := range o.Constructs {
		c, ok := r.Constructs[key]
		if !ok {
			c.Kind = oc.Kind
		}
		if oc.Alive {
			c.Alive = true
		}
		if oc.NonConst {
			c.NonConst = true
		}
		if len(oc.Branches) > 0 {
			if c.Branches == nil {
				c.Branches = make(map[string]bool, len(oc.Branches))
			}
			for arm := range oc.Branches {
				c.Branches[arm] = true
			}
		}
		r.Constructs[key] = c
	}
}

// sortedKeys returns the construct keys ordered by their rendered
// "kind@file:line:col" form, matching the legacy string-keyed ordering
// so diagnostics stay deterministic and stable.
func (r *Report) sortedKeys() []ConstructKey {
	keys := make([]ConstructKey, 0, len(r.Constructs))
	for k := range r.Constructs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// CompatibleWith reports whether candidate cand preserves every
// construct of reference r, per the scaling rule of Section 2.2: no
// loop alive in the reference may collapse to zero iterations, no
// branch taken in the reference may become unreachable, no non-trivial
// memory may degenerate, and no construct may disappear entirely.
// The returned reason describes the first violation in rendered-key
// order. The compatible case — the accounting search's hot path —
// performs a single allocation-free unordered scan; keys are only
// sorted and rendered once a violation is known to exist.
func (r *Report) CompatibleWith(cand *Report) (bool, string) {
	clean := true
	for key, ref := range r.Constructs {
		if violated(key, ref, cand) {
			clean = false
			break
		}
	}
	if clean {
		return true, ""
	}
	for _, key := range r.sortedKeys() {
		switch code, arm := violation(key, r.Constructs[key], cand); code {
		case vDisappeared:
			return false, fmt.Sprintf("%s disappeared", key)
		case vOptimizedAway:
			return false, fmt.Sprintf("%s optimized away", key)
		case vBranchDead:
			return false, fmt.Sprintf("%s: branch %q became dead", key, arm)
		case vBecameConst:
			return false, fmt.Sprintf("%s: condition became constant", key)
		}
	}
	return true, "" // unreachable: the unordered scan found a violation
}

const (
	vOK = iota
	vDisappeared
	vOptimizedAway
	vBranchDead
	vBecameConst
)

// violated is the allocation-free yes/no form of violation for the hot
// unordered scan (arm iteration order doesn't matter for the bool).
func violated(key ConstructKey, ref Construct, cand *Report) bool {
	c, ok := cand.Constructs[key]
	if !ok {
		return ref.Alive
	}
	if ref.Alive && !c.Alive {
		return true
	}
	if !ref.NonConst && !c.NonConst {
		for a := range ref.Branches {
			if !c.Branches[a] {
				return true
			}
		}
	}
	return ref.NonConst && !c.NonConst && len(c.Branches) > 0
}

// violation classifies how cand fails to preserve one reference
// construct (vOK if it doesn't). Branch arms are checked in sorted
// order so the reported arm is deterministic.
func violation(key ConstructKey, ref Construct, cand *Report) (code int, arm string) {
	c, ok := cand.Constructs[key]
	if !ok {
		if ref.Alive {
			return vDisappeared, ""
		}
		return vOK, ""
	}
	if ref.Alive && !c.Alive {
		return vOptimizedAway, ""
	}
	if !ref.NonConst && !c.NonConst && len(ref.Branches) > 0 {
		arms := make([]string, 0, len(ref.Branches))
		for a := range ref.Branches {
			arms = append(arms, a)
		}
		sort.Strings(arms)
		for _, a := range arms {
			if !c.Branches[a] {
				return vBranchDead, a
			}
		}
	}
	if ref.NonConst && !c.NonConst && len(c.Branches) > 0 {
		return vBecameConst, ""
	}
	return vOK, ""
}

// String renders the report compactly, sorted by key, for debugging
// and golden tests.
func (r *Report) String() string {
	var b strings.Builder
	for _, k := range r.sortedKeys() {
		c := r.Constructs[k]
		fmt.Fprintf(&b, "%s alive=%v", k, c.Alive)
		if c.NonConst {
			b.WriteString(" nonconst")
		}
		if len(c.Branches) > 0 {
			arms := make([]string, 0, len(c.Branches))
			for a := range c.Branches {
				arms = append(arms, a)
			}
			sort.Strings(arms)
			fmt.Fprintf(&b, " branches=%v", arms)
		}
		b.WriteString("\n")
	}
	return b.String()
}
