package designs

// ratStandardSrc: the standard 4-wide Register Alias Table — rename up
// to 4 instructions per cycle against a flip-flop map table. This was
// the paper's own small calibration design (0.6 person-months).
const ratStandardSrc = `
// Standard 4-wide register alias table.
module rat_standard #(parameter AW = 5, parameter PW = 6) (
  input clk,
  input rst,
  input [3:0] wen,
  input [4*AW-1:0] waddr,
  input [4*PW-1:0] wtag,
  input [4*AW-1:0] raddr,
  output [4*PW-1:0] rtag
);
  localparam REGS = 1 << AW;
  reg [PW-1:0] table_mem [0:REGS-1];

  assign rtag[PW-1:0] = table_mem[raddr[AW-1:0]];
  assign rtag[2*PW-1:PW] = table_mem[raddr[2*AW-1:AW]];
  assign rtag[3*PW-1:2*PW] = table_mem[raddr[3*AW-1:2*AW]];
  assign rtag[4*PW-1:3*PW] = table_mem[raddr[4*AW-1:3*AW]];

  always @(posedge clk) begin
    if (!rst) begin
      if (wen[0]) table_mem[waddr[AW-1:0]] <= wtag[PW-1:0];
      if (wen[1]) table_mem[waddr[2*AW-1:AW]] <= wtag[2*PW-1:PW];
      if (wen[2]) table_mem[waddr[3*AW-1:2*AW]] <= wtag[3*PW-1:2*PW];
      if (wen[3]) table_mem[waddr[4*AW-1:3*AW]] <= wtag[4*PW-1:3*PW];
    end
  end
endmodule
`

// ratSlidingSrc: the enhanced RAT with SPARC-style sliding register
// windows — logical registers above the split point are offset by the
// current window pointer before indexing the map table.
const ratSlidingSrc = `
// Sliding-window 4-wide register alias table (SPARC register windows).
module rat_sliding #(parameter AW = 5, parameter PW = 6, parameter WINS = 4) (
  input clk,
  input rst,
  input save,
  input restore,
  input [3:0] wen,
  input [4*AW-1:0] waddr,
  input [4*PW-1:0] wtag,
  input [4*AW-1:0] raddr,
  output [4*PW-1:0] rtag,
  output [1:0] cwp_out,
  output overflow
);
  localparam REGS = 1 << AW;
  reg [PW-1:0] table_mem [0:2*REGS-1];
  reg [1:0] cwp;
  reg [WINS-1:0] used;

  always @(posedge clk) begin
    if (rst) begin
      cwp <= 0;
      used <= 1;
    end else if (save) begin
      cwp <= cwp + 1;
      used[cwp + 1] <= 1;
    end else if (restore) begin
      used[cwp] <= 0;
      cwp <= cwp - 1;
    end
  end
  assign cwp_out = cwp;
  assign overflow = save && (used == {WINS{1'b1}});

  // Window translation: registers 0..15 are global, 16..31 slide with
  // the window pointer.
  wire [AW:0] xa0, xa1, xa2, xa3;
  wire [AW-1:0] r0, r1, r2, r3;
  assign r0 = raddr[AW-1:0];
  assign r1 = raddr[2*AW-1:AW];
  assign r2 = raddr[3*AW-1:2*AW];
  assign r3 = raddr[4*AW-1:3*AW];
  assign xa0 = r0[AW-1] ? {1'b0, r0} + {4'd0, cwp, 1'b0} : {1'b0, r0};
  assign xa1 = r1[AW-1] ? {1'b0, r1} + {4'd0, cwp, 1'b0} : {1'b0, r1};
  assign xa2 = r2[AW-1] ? {1'b0, r2} + {4'd0, cwp, 1'b0} : {1'b0, r2};
  assign xa3 = r3[AW-1] ? {1'b0, r3} + {4'd0, cwp, 1'b0} : {1'b0, r3};

  assign rtag[PW-1:0] = table_mem[xa0];
  assign rtag[2*PW-1:PW] = table_mem[xa1];
  assign rtag[3*PW-1:2*PW] = table_mem[xa2];
  assign rtag[4*PW-1:3*PW] = table_mem[xa3];

  wire [AW:0] wa0, wa1, wa2, wa3;
  wire [AW-1:0] w0, w1, w2, w3;
  assign w0 = waddr[AW-1:0];
  assign w1 = waddr[2*AW-1:AW];
  assign w2 = waddr[3*AW-1:2*AW];
  assign w3 = waddr[4*AW-1:3*AW];
  assign wa0 = w0[AW-1] ? {1'b0, w0} + {4'd0, cwp, 1'b0} : {1'b0, w0};
  assign wa1 = w1[AW-1] ? {1'b0, w1} + {4'd0, cwp, 1'b0} : {1'b0, w1};
  assign wa2 = w2[AW-1] ? {1'b0, w2} + {4'd0, cwp, 1'b0} : {1'b0, w2};
  assign wa3 = w3[AW-1] ? {1'b0, w3} + {4'd0, cwp, 1'b0} : {1'b0, w3};

  always @(posedge clk) begin
    if (!rst) begin
      if (wen[0]) table_mem[wa0] <= wtag[PW-1:0];
      if (wen[1]) table_mem[wa1] <= wtag[2*PW-1:PW];
      if (wen[2]) table_mem[wa2] <= wtag[3*PW-1:2*PW];
      if (wen[3]) table_mem[wa3] <= wtag[4*PW-1:3*PW];
    end
  end
endmodule
`
