package codec

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestPrimitiveRoundtrip(t *testing.T) {
	var dst []byte
	dst = AppendUvarint(dst, 0)
	dst = AppendUvarint(dst, 1<<60)
	dst = AppendVarint(dst, -1)
	dst = AppendVarint(dst, math.MaxInt64)
	dst = AppendVarint(dst, math.MinInt64)
	dst = AppendByte(dst, 0xAB)
	dst = AppendBool(dst, true)
	dst = AppendBool(dst, false)
	dst = AppendUint32(dst, 0xDEADBEEF)
	dst = AppendFloat64(dst, math.Pi)
	dst = AppendFloat64(dst, math.Inf(-1))
	negZero := math.Copysign(0, -1)
	dst = AppendFloat64(dst, negZero)
	dst = AppendString(dst, "")
	dst = AppendString(dst, "hello, wörld")
	dst = AppendBytes(dst, nil)
	dst = AppendBytes(dst, []byte{1, 2, 3})

	r := NewReader(dst)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != 1<<60 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Varint(); v != -1 {
		t.Errorf("varint = %d", v)
	}
	if v := r.Varint(); v != math.MaxInt64 {
		t.Errorf("varint = %d", v)
	}
	if v := r.Varint(); v != math.MinInt64 {
		t.Errorf("varint = %d", v)
	}
	if v := r.Byte(); v != 0xAB {
		t.Errorf("byte = %x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools did not round-trip")
	}
	if v := r.Uint32(); v != 0xDEADBEEF {
		t.Errorf("uint32 = %x", v)
	}
	if v := r.Float64(); v != math.Pi {
		t.Errorf("float64 = %v", v)
	}
	if v := r.Float64(); !math.IsInf(v, -1) {
		t.Errorf("float64 = %v, want -Inf", v)
	}
	// -0.0 must survive bit-exactly (== can't tell it from +0.0).
	if v := r.Float64(); math.Float64bits(v) != math.Float64bits(negZero) {
		t.Errorf("float64 bits = %x, want negative zero", math.Float64bits(v))
	}
	if v := r.String(); v != "" {
		t.Errorf("string = %q", v)
	}
	if v := r.String(); v != "hello, wörld" {
		t.Errorf("string = %q", v)
	}
	if v := r.Raw(); v != nil {
		t.Errorf("raw = %v, want nil for zero length", v)
	}
	if v := r.Raw(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("raw = %v", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStringCopiesOutOfBuffer(t *testing.T) {
	buf := AppendString(nil, "alias-check")
	r := NewReader(buf)
	s := r.String()
	for i := range buf {
		buf[i] = 0xFF
	}
	if s != "alias-check" {
		t.Errorf("decoded string mutated with its source buffer: %q", s)
	}

	buf = AppendBytes(nil, []byte("alias-check"))
	r = NewReader(buf)
	b := r.Raw()
	for i := range buf {
		buf[i] = 0xFF
	}
	if string(b) != "alias-check" {
		t.Errorf("decoded bytes mutated with their source buffer: %q", b)
	}
}

// TestReaderHostileInputs drives each primitive into its failure path
// and checks the error is sticky, reported, and never a panic.
func TestReaderHostileInputs(t *testing.T) {
	cases := map[string]func(r *Reader){
		"byte-at-end":        func(r *Reader) { r.Byte() },
		"uint32-short":       func(r *Reader) { r.Uint32() },
		"float64-short":      func(r *Reader) { r.Float64() },
		"uvarint-empty":      func(r *Reader) { r.Uvarint() },
		"string-at-end":      func(r *Reader) { _ = r.String() },
		"varint-unterminated": func(r *Reader) {
			r2 := NewReader(bytes.Repeat([]byte{0x80}, 11))
			r2.Varint()
			if r2.Err() == nil {
				panic("unterminated varint accepted")
			}
			r.Byte() // trip the outer reader too so the shared assertions hold
		},
	}
	for name, read := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewReader(nil)
			read(r)
			if r.Err() == nil {
				t.Fatal("no error on hostile input")
			}
			if !errors.Is(r.Err(), ErrCorrupt) {
				t.Errorf("error %v does not wrap ErrCorrupt", r.Err())
			}
			// Sticky: further reads keep failing with the first error.
			first := r.Err()
			r.Uvarint()
			_ = r.String()
			if r.Err() != first {
				t.Error("error not sticky")
			}
		})
	}
}

func TestBoolRejectsNonCanonical(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Error("bool byte 2 accepted")
	}
}

func TestLengthAndCountBombs(t *testing.T) {
	// A declared string length of 2^40 with 3 bytes present.
	buf := AppendUvarint(nil, 1<<40)
	buf = append(buf, 'a', 'b', 'c')
	r := NewReader(buf)
	if s := r.String(); s != "" || r.Err() == nil {
		t.Errorf("oversized length decoded: %q, err=%v", s, r.Err())
	}

	// A count of 2^40 elements at >=8 bytes each in a 10-byte input.
	buf = AppendUvarint(nil, 1<<40)
	buf = append(buf, make([]byte, 10)...)
	r = NewReader(buf)
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Errorf("bomb count accepted: %d, err=%v", n, r.Err())
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Finish(); err == nil {
		t.Error("Finish accepted a trailing byte")
	}
}

func TestEntryRoundtripRaw(t *testing.T) {
	payload := []byte("small payload")
	entry := EncodeEntry(nil, 3, "key-1", payload, DefaultCompressThreshold)
	var scratch []byte
	got, info, err := DecodeEntry(entry, 3, "key-1", &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if info.Compressed {
		t.Error("payload below threshold was compressed")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
	if info.RawLen != len(payload) || info.StoredLen != len(payload) {
		t.Errorf("info = %+v", info)
	}
}

func TestEntryRoundtripCompressed(t *testing.T) {
	payload := []byte(strings.Repeat("compressible-", 2048))
	entry := EncodeEntry(nil, 3, "key-2", payload, DefaultCompressThreshold)
	if len(entry) >= len(payload) {
		t.Errorf("entry (%d bytes) not smaller than payload (%d bytes)", len(entry), len(payload))
	}
	var scratch []byte
	got, info, err := DecodeEntry(entry, 3, "key-2", &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Compressed {
		t.Error("large compressible payload stored raw")
	}
	if !bytes.Equal(got, payload) {
		t.Error("compressed payload did not round-trip")
	}
	if info.RawLen != len(payload) || info.StoredLen >= len(payload) {
		t.Errorf("info = %+v for %d-byte payload", info, len(payload))
	}
}

func TestEncodeKeepsRawWhenCompressionLoses(t *testing.T) {
	// Incompressible payload above the threshold: flate output would be
	// larger, so the envelope must record and store the raw form.
	payload := make([]byte, 8192)
	x := uint32(2463534242)
	for i := range payload {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		payload[i] = byte(x)
	}
	entry := EncodeEntry(nil, 3, "k", payload, 0)
	var scratch []byte
	got, info, err := DecodeEntry(entry, 3, "k", &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if info.Compressed {
		t.Error("incompressible payload stored compressed")
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload did not round-trip")
	}
}

func TestNegativeThresholdDisablesCompression(t *testing.T) {
	payload := []byte(strings.Repeat("x", 1<<16))
	entry := EncodeEntry(nil, 3, "k", payload, -1)
	if len(entry) < len(payload) {
		t.Error("compression ran despite threshold -1")
	}
}

func TestDecodeEntryRejections(t *testing.T) {
	payload := []byte(strings.Repeat("data", 4096))
	good := EncodeEntry(nil, 7, "the-key", payload, DefaultCompressThreshold)
	cases := map[string]struct {
		data   []byte
		schema uint64
		key    string
	}{
		"empty":         {nil, 7, "the-key"},
		"bad-magic":     {append([]byte("NOPE"), good[4:]...), 7, "the-key"},
		"wrong-schema":  {good, 8, "the-key"},
		"wrong-key":     {good, 7, "other-key"},
		"truncated":     {good[:len(good)-5], 7, "the-key"},
		"header-only":   {good[:6], 7, "the-key"},
		"flipped-bit": {func() []byte {
			b := bytes.Clone(good)
			b[len(b)-1] ^= 1
			return b
		}(), 7, "the-key"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var scratch []byte
			_, _, err := DecodeEntry(tc.data, tc.schema, tc.key, &scratch)
			if err == nil {
				t.Fatal("hostile entry accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

// FuzzDecodeEntry feeds arbitrary bytes through the envelope decoder:
// it must error or succeed, never panic, and a reported success must be
// internally consistent.
func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UCXB"))
	f.Add(EncodeEntry(nil, 3, "seed", []byte("payload"), -1))
	f.Add(EncodeEntry(nil, 3, "seed", []byte(strings.Repeat("wide", 4096)), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch []byte
		payload, info, err := DecodeEntry(data, 3, "seed", &scratch)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if len(payload) != info.RawLen {
			t.Errorf("payload is %d bytes but info says %d", len(payload), info.RawLen)
		}
		if info.RawLen > MaxDecodedLen {
			t.Errorf("decoded %d bytes past the bomb cap", info.RawLen)
		}
	})
}
