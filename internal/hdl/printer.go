package hdl

import (
	"fmt"
	"strings"
)

// Format renders a module back to µHDL source. The output is
// semantically equivalent to the input (it re-parses to an identical
// tree) but normalizes whitespace; it is used for debugging and for the
// parser round-trip tests.
func Format(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s", m.Name)
	if len(m.Params) > 0 {
		b.WriteString(" #(")
		for i, p := range m.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "parameter %s = %s", p.Name, FormatExpr(p.Value))
		}
		b.WriteString(")")
	}
	b.WriteString(" (")
	for i, p := range m.Ports {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Dir.String())
		if p.IsReg {
			b.WriteString(" reg")
		}
		if p.Range != nil {
			fmt.Fprintf(&b, " [%s:%s]", FormatExpr(p.Range.MSB), FormatExpr(p.Range.LSB))
		}
		b.WriteString(" " + p.Name)
	}
	b.WriteString(");\n")
	for _, it := range m.Items {
		printItem(&b, it, 1)
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func labelSuffix(label string) string {
	if label == "" {
		return ""
	}
	return " : " + label
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func printItem(b *strings.Builder, it Item, depth int) {
	indent(b, depth)
	switch v := it.(type) {
	case *ParamDecl:
		kw := "parameter"
		if v.IsLocal {
			kw = "localparam"
		}
		fmt.Fprintf(b, "%s %s = %s;\n", kw, v.Name, FormatExpr(v.Value))
	case *NetDecl:
		b.WriteString(v.Kind.String())
		if v.Range != nil {
			fmt.Fprintf(b, " [%s:%s]", FormatExpr(v.Range.MSB), FormatExpr(v.Range.LSB))
		}
		b.WriteString(" " + strings.Join(v.Names, ", "))
		if v.ArrayRange != nil {
			fmt.Fprintf(b, " [%s:%s]", FormatExpr(v.ArrayRange.MSB), FormatExpr(v.ArrayRange.LSB))
		}
		b.WriteString(";\n")
	case *ContAssign:
		fmt.Fprintf(b, "assign %s = %s;\n", FormatExpr(v.LHS), FormatExpr(v.RHS))
	case *AlwaysBlock:
		b.WriteString("always @(")
		for i, s := range v.Sens {
			if i > 0 {
				b.WriteString(" or ")
			}
			switch s.Edge {
			case EdgeAny:
				b.WriteString("*")
			case EdgePos:
				b.WriteString("posedge " + s.Signal)
			case EdgeNeg:
				b.WriteString("negedge " + s.Signal)
			default:
				b.WriteString(s.Signal)
			}
		}
		b.WriteString(")\n")
		printStmt(b, v.Body, depth+1)
	case *Instance:
		b.WriteString(v.ModuleName)
		if len(v.Params) > 0 {
			b.WriteString(" #(")
			printBindings(b, v.Params)
			b.WriteString(")")
		}
		fmt.Fprintf(b, " %s (", v.Name)
		printBindings(b, v.Ports)
		b.WriteString(");\n")
	case *GenFor:
		fmt.Fprintf(b, "generate for (%s = %s; %s; %s = %s) begin%s\n",
			v.Var, FormatExpr(v.Init), FormatExpr(v.Cond), v.Var, FormatExpr(v.Step), labelSuffix(v.Label))
		for _, sub := range v.Body {
			printItem(b, sub, depth+1)
		}
		indent(b, depth)
		b.WriteString("end endgenerate\n")
	case *GenIf:
		fmt.Fprintf(b, "generate if (%s) begin%s\n", FormatExpr(v.Cond), labelSuffix(v.ThenLabel))
		for _, sub := range v.Then {
			printItem(b, sub, depth+1)
		}
		indent(b, depth)
		b.WriteString("end")
		if len(v.Else) > 0 {
			fmt.Fprintf(b, " else begin%s\n", labelSuffix(v.ElseLabel))
			for _, sub := range v.Else {
				printItem(b, sub, depth+1)
			}
			indent(b, depth)
			b.WriteString("end")
		}
		b.WriteString(" endgenerate\n")
	default:
		fmt.Fprintf(b, "// unknown item %T\n", it)
	}
}

func printBindings(b *strings.Builder, bs []Binding) {
	for i, bind := range bs {
		if i > 0 {
			b.WriteString(", ")
		}
		if bind.Value == nil {
			fmt.Fprintf(b, ".%s()", bind.Name)
		} else {
			fmt.Fprintf(b, ".%s(%s)", bind.Name, FormatExpr(bind.Value))
		}
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch v := s.(type) {
	case *Block:
		b.WriteString("begin\n")
		for _, sub := range v.Stmts {
			printStmt(b, sub, depth+1)
		}
		indent(b, depth)
		b.WriteString("end\n")
	case *Assign:
		op := "="
		if !v.Blocking {
			op = "<="
		}
		fmt.Fprintf(b, "%s %s %s;\n", FormatExpr(v.LHS), op, FormatExpr(v.RHS))
	case *If:
		fmt.Fprintf(b, "if (%s)\n", FormatExpr(v.Cond))
		printStmt(b, v.Then, depth+1)
		if v.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			printStmt(b, v.Else, depth+1)
		}
	case *Case:
		kw := "case"
		if v.IsCasez {
			kw = "casez"
		}
		fmt.Fprintf(b, "%s (%s)\n", kw, FormatExpr(v.Subject))
		for _, item := range v.Items {
			indent(b, depth+1)
			if item.Exprs == nil {
				b.WriteString("default:\n")
			} else {
				labels := make([]string, len(item.Exprs))
				for i, e := range item.Exprs {
					labels[i] = FormatExpr(e)
				}
				fmt.Fprintf(b, "%s:\n", strings.Join(labels, ", "))
			}
			printStmt(b, item.Body, depth+2)
		}
		indent(b, depth)
		b.WriteString("endcase\n")
	case *For:
		initA := v.Init.(*Assign)
		stepA := v.Step.(*Assign)
		fmt.Fprintf(b, "for (%s = %s; %s; %s = %s)\n",
			FormatExpr(initA.LHS), FormatExpr(initA.RHS), FormatExpr(v.Cond),
			FormatExpr(stepA.LHS), FormatExpr(stepA.RHS))
		printStmt(b, v.Body, depth+1)
	default:
		fmt.Fprintf(b, "// unknown stmt %T\n", s)
	}
}

var unaryOpText = map[UnaryOp]string{
	OpNot: "~", OpLogNot: "!", OpNeg: "-",
	OpRedAnd: "&", OpRedOr: "|", OpRedXor: "^",
	OpRedNand: "~&", OpRedNor: "~|", OpRedXnor: "~^",
}

var binaryOpText = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpXnor: "~^",
	OpLogAnd: "&&", OpLogOr: "||",
	OpEq: "==", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpShl: "<<", OpShr: ">>",
}

// FormatExpr renders an expression with full parenthesization (safe,
// if verbose).
func FormatExpr(e Expr) string {
	switch v := e.(type) {
	case *Ident:
		return v.Name
	case *Number:
		if v.CareMask != 0 {
			digits := make([]byte, v.Width)
			for i := 0; i < v.Width; i++ {
				bitPos := uint(v.Width - 1 - i)
				switch {
				case (v.CareMask>>bitPos)&1 == 0:
					digits[i] = '?'
				case (v.Value>>bitPos)&1 == 1:
					digits[i] = '1'
				default:
					digits[i] = '0'
				}
			}
			return fmt.Sprintf("%d'b%s", v.Width, digits)
		}
		if v.Width > 0 {
			return fmt.Sprintf("%d'd%d", v.Width, v.Value)
		}
		return fmt.Sprintf("%d", v.Value)
	case *Unary:
		return fmt.Sprintf("(%s%s)", unaryOpText[v.Op], FormatExpr(v.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(v.L), binaryOpText[v.Op], FormatExpr(v.R))
	case *Ternary:
		return fmt.Sprintf("(%s ? %s : %s)", FormatExpr(v.Cond), FormatExpr(v.Then), FormatExpr(v.Else))
	case *Index:
		return fmt.Sprintf("%s[%s]", FormatExpr(v.Base), FormatExpr(v.Idx))
	case *PartSelect:
		return fmt.Sprintf("%s[%s:%s]", FormatExpr(v.Base), FormatExpr(v.MSB), FormatExpr(v.LSB))
	case *Concat:
		parts := make([]string, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = FormatExpr(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repl:
		return fmt.Sprintf("{%s{%s}}", FormatExpr(v.Count), FormatExpr(v.X))
	}
	return fmt.Sprintf("/*?%T*/", e)
}
