package hdl

import (
	"fmt"
	"strings"
)

// Lexer turns µHDL source text into tokens. Comments (// and /* */)
// and whitespace are skipped, but the lexer records which lines carry
// code so that internal/srcmetrics can count lines of code the way the
// paper does (non-blank, non-comment lines).
type Lexer struct {
	src      string
	file     string
	off      int
	line     int
	col      int
	codeLine map[int]bool
}

// NewLexer returns a lexer over src. file is used in positions and
// error messages.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1, codeLine: map[int]bool{}}
}

// CodeLines returns the set of 1-based line numbers that contain at
// least one token (i.e. lines that are neither blank nor pure comment).
func (l *Lexer) CodeLines() map[int]bool { return l.codeLine }

// A LexError reports a lexical problem with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	l.codeLine[pos.Line] = true
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if keywords[text] {
			return Token{Kind: TokKeyword, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(c) || c == '\'':
		return l.lexNumber(pos)
	}

	l.advance()
	two := func(next byte, twoKind, oneKind TokenKind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: twoKind, Pos: pos}, nil
		}
		return Token{Kind: oneKind, Pos: pos}, nil
	}

	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Pos: pos}, nil
	case '#':
		return Token{Kind: TokHash, Pos: pos}, nil
	case '@':
		return Token{Kind: TokAt, Pos: pos}, nil
	case '?':
		return Token{Kind: TokQuestion, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '&':
		return two('&', TokAmpAmp, TokAmp)
	case '|':
		return two('|', TokPipePipe, TokPipe)
	case '^':
		if l.peek() == '~' {
			l.advance()
			return Token{Kind: TokXnor, Pos: pos}, nil
		}
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '~':
		switch l.peek() {
		case '^':
			l.advance()
			return Token{Kind: TokXnor, Pos: pos}, nil
		case '&':
			l.advance()
			return Token{Kind: TokNand, Pos: pos}, nil
		case '|':
			l.advance()
			return Token{Kind: TokNor, Pos: pos}, nil
		}
		return Token{Kind: TokTilde, Pos: pos}, nil
	case '!':
		return two('=', TokNeq, TokBang)
	case '=':
		return two('=', TokEq, TokAssign)
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokLe, Pos: pos}, nil
		case '<':
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return Token{Kind: TokLt, Pos: pos}, nil
	case '>':
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokGe, Pos: pos}, nil
		case '>':
			l.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return Token{Kind: TokGt, Pos: pos}, nil
	}
	return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// lexNumber handles plain decimal (42), sized/based literals (8'hFF,
// 4'b1010, 'd7), and based literals with underscores (16'hDEAD_BEEF).
func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	if l.peek() == '\'' {
		l.advance() // consume '
		base := l.peek()
		switch base {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			l.advance()
		default:
			return Token{}, &LexError{Pos: l.pos(), Msg: fmt.Sprintf("invalid number base %q", base)}
		}
		digitsStart := l.off
		for l.off < len(l.src) && (isIdentPart(l.peek()) || l.peek() == '_' || l.peek() == '?') {
			l.advance()
		}
		if l.off == digitsStart {
			return Token{}, &LexError{Pos: l.pos(), Msg: "based literal has no digits"}
		}
	}
	text := l.src[start:l.off]
	if strings.HasPrefix(text, "_") {
		return Token{}, &LexError{Pos: pos, Msg: "number cannot start with underscore"}
	}
	return Token{Kind: TokNumber, Text: text, Pos: pos}, nil
}

// LexAll tokenizes the entire input, returning every token up to and
// excluding EOF. Used by tests and srcmetrics.
func LexAll(file, src string) ([]Token, *Lexer, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, l, err
		}
		if t.Kind == TokEOF {
			return toks, l, nil
		}
		toks = append(toks, t)
	}
}
