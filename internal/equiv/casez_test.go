package equiv

import (
	"testing"

	"repro/internal/hdl"
)

// TestCasezWildcardPriorityDecoder checks casez wildcard labels — the
// standard priority-decoder idiom — for RTL↔gate equivalence and for
// functional correctness via the interpreter.
func TestCasezWildcardPriorityDecoder(t *testing.T) {
	src := `
module prio (input clk, input [3:0] req, output reg [1:0] grant, output reg none);
  always @(posedge clk) begin
    none <= 0;
    casez (req)
      4'b???1: grant <= 2'd0;
      4'b??10: grant <= 2'd1;
      4'b?100: grant <= 2'd2;
      4'b1000: grant <= 2'd3;
      default: begin
        grant <= 2'd0;
        none <= 1;
      end
    endcase
  end
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"p.v": src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEquivalence(d, "prio", nil, 60, 17); err != nil {
		t.Fatal(err)
	}
}

func TestCasezWildcardOutsideCasezRejected(t *testing.T) {
	src := `
module bad (input clk, input [3:0] a, output reg y);
  always @(posedge clk) begin
    case (a)
      4'b1??0: y <= 1;
      default: y <= 0;
    endcase
  end
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"b.v": src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEquivalence(d, "bad", nil, 5, 1); err == nil {
		t.Fatal("wildcard in plain case must be rejected")
	}
}

// TestNonANSIModuleEndToEnd runs a Verilog-95-style module through the
// whole pipeline: parse, elaborate, synthesize, and verify equivalence.
func TestNonANSIModuleEndToEnd(t *testing.T) {
	src := `
module v95core (clk, mode, a, b, y);
  input clk;
  input [1:0] mode;
  input [7:0] a, b;
  output reg [7:0] y;
  always @(posedge clk) begin
    case (mode)
      2'd0: y <= a + b;
      2'd1: y <= a - b;
      2'd2: y <= a & b;
      default: y <= a ^ b;
    endcase
  end
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"v.v": src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEquivalence(d, "v95core", nil, 40, 3); err != nil {
		t.Fatal(err)
	}
}
