// Calibrate: the full Section 5 analysis on the paper's dataset —
// every estimator fitted with and without the productivity
// adjustment, productivities per team, and confidence intervals.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	comps := dataset.Paper()
	fmt.Printf("measurement database: %d components, %d projects\n\n",
		len(comps), len(dataset.Projects(comps)))

	// Rank every estimator, as Table 4 does.
	rows, err := core.EvaluateEstimators(comps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimator ranking (lower sigma_eps = tighter confidence interval):")
	fmt.Printf("  %-8s  %9s  %9s  %14s\n", "name", "sigma_eps", "rho=1", "90% CI factors")
	for _, r := range rows {
		lo, hi := core.ConfidenceFactors(r.SigmaEps, 0.90)
		fmt.Printf("  %-8s  %9.2f  %9.2f  (%.2fx, %.2fx)\n",
			r.Name, r.SigmaEps, r.SigmaEpsRho1, lo, hi)
	}

	// The recommended estimator in detail.
	dee1, err := core.CalibrateDEE1(comps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDEE1 = (1/rho) * (%.4g*Stmts + %.4g*FanInLC)\n",
		dee1.Fit.Weights[0], dee1.Fit.Weights[1])
	fmt.Printf("sigma_eps=%.3f sigma_rho=%.3f AIC=%.1f BIC=%.1f\n",
		dee1.Fit.SigmaEps, dee1.Fit.SigmaRho, dee1.Fit.AIC(), dee1.Fit.BIC())

	fmt.Println("\nempirical-Bayes team productivities (median-1 lognormal):")
	projects, rhos := dee1.Fit.SortedProductivities()
	for i, p := range projects {
		fmt.Printf("  rho(%-5s) = %.3f\n", p, rhos[i])
	}

	// Per-component predictions vs reported efforts (Figure 5's data).
	fmt.Println("\nper-component DEE1 estimates vs reported effort:")
	for _, c := range comps {
		rho, _ := dee1.Productivity(c.Project)
		est, err := dee1.EstimateFromValues(
			[]float64{c.Metrics[dataset.Stmts], c.Metrics[dataset.FanInLC]}, rho)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if c.Effort < est.CI90[0] || c.Effort > est.CI90[1] {
			marker = "  <- outside 90% CI"
		}
		fmt.Printf("  %-16s estimate %5.1f  reported %5.1f%s\n",
			c.Label(), est.Median, c.Effort, marker)
	}
}
