package designs

// pumaFetchSrc: 2-wide fetch with a gshare branch predictor (the real
// PUMA used gshare, Table 1) and a fetch buffer.
const pumaFetchSrc = `
// Two-wide fetch unit with gshare prediction and a fetch FIFO.
module puma_fetch #(parameter W = 32, parameter GHW = 6, parameter FAW = 2) (
  input clk,
  input rst,
  input stall,
  input redirect,
  input [W-1:0] redirect_pc,
  input update,
  input update_taken,
  input [GHW-1:0] update_index,
  input [2*W-1:0] imem_data,
  output [W-1:0] imem_addr,
  output [29:0] imem_word_addr,
  output [2*W-1:0] fetch_bundle,
  output bundle_valid,
  output predict_taken,
  output [GHW-1:0] predict_index
);
  reg [W-1:0] pc;
  reg [GHW-1:0] ghist;

  // Gshare: PC xor global history indexes a table of 2-bit counters.
  wire [GHW-1:0] pht_index;
  assign pht_index = pc[GHW+1:2] ^ ghist;

  reg [1:0] pht [0:(1 << GHW) - 1];
  wire [1:0] ctr;
  assign ctr = pht[pht_index];
  assign predict_taken = ctr[1];
  assign predict_index = pht_index;

  always @(posedge clk) begin
    if (rst) begin
      ghist <= 0;
    end else if (update) begin
      ghist <= {ghist[GHW-2:0], update_taken};
      if (update_taken && pht[update_index] != 2'd3)
        pht[update_index] <= pht[update_index] + 1;
      else if (!update_taken && pht[update_index] != 2'd0)
        pht[update_index] <= pht[update_index] - 1;
    end
  end

  always @(posedge clk) begin
    if (rst)
      pc <= 0;
    else if (redirect)
      pc <= redirect_pc;
    else if (!stall)
      pc <= predict_taken ? pc + 16 : pc + 8;
  end
  assign imem_addr = pc;
  assign imem_word_addr = pc[31:2];

  // Fetch buffer decouples fetch from decode.
  wire fb_full, fb_empty;
  wire [FAW:0] fb_count;
  lib_fifo #(.W(2 * W), .AW(FAW)) fetch_buffer (
    .clk(clk), .rst(rst || redirect),
    .push(!stall && !fb_full), .pop(!stall && !fb_empty),
    .din(imem_data), .dout(fetch_bundle),
    .full(fb_full), .empty(fb_empty), .count(fb_count));
  assign bundle_valid = !fb_empty;
endmodule
`

// pumaDecodeSrc: 2-wide decoder for a PowerPC-flavoured ISA. Decoders
// are case-statement heavy — PUMA-Decode has the second-highest Stmts
// count in Table 4 despite a modest effort.
const pumaDecodeSrc = `
// One PowerPC-flavoured instruction decoder.
module puma_decode_slot #(parameter W = 32) (
  input [W-1:0] inst,
  output reg [3:0] unit,      // 0 none, 1 alu, 2 mul, 3 mem, 4 branch
  output reg [2:0] aluop,
  output reg [4:0] rs1,
  output reg [4:0] rs2,
  output reg [4:0] rd,
  output reg uses_imm,
  output reg [15:0] imm,
  output reg is_load,
  output reg is_store,
  output reg writes_rd,
  output reg illegal
);
  wire [5:0] opcd;
  wire [9:0] xo;
  assign opcd = inst[31:26];
  assign xo = inst[10:1];
  always @(*) begin
    unit = 4'd0;
    aluop = 3'd0;
    rs1 = inst[20:16];
    rs2 = inst[15:11];
    rd = inst[25:21];
    uses_imm = 0;
    imm = inst[15:0];
    is_load = 0;
    is_store = 0;
    writes_rd = 0;
    illegal = 0;
    case (opcd)
      6'd14: begin // addi
        unit = 4'd1;
        aluop = 3'd0;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd15: begin // addis
        unit = 4'd1;
        aluop = 3'd0;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd24: begin // ori
        unit = 4'd1;
        aluop = 3'd3;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd28: begin // andi
        unit = 4'd1;
        aluop = 3'd2;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd26: begin // xori
        unit = 4'd1;
        aluop = 3'd4;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd34: begin // lbz
        unit = 4'd3;
        is_load = 1;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd32: begin // lwz
        unit = 4'd3;
        is_load = 1;
        uses_imm = 1;
        writes_rd = 1;
      end
      6'd36: begin // stw
        unit = 4'd3;
        is_store = 1;
        uses_imm = 1;
      end
      6'd38: begin // stb
        unit = 4'd3;
        is_store = 1;
        uses_imm = 1;
      end
      6'd18: begin // b
        unit = 4'd4;
        uses_imm = 1;
      end
      6'd16: begin // bc
        unit = 4'd4;
        uses_imm = 1;
      end
      6'd31: begin // X-form ALU ops
        writes_rd = 1;
        case (xo)
          10'd266: begin unit = 4'd1; aluop = 3'd0; end // add
          10'd40:  begin unit = 4'd1; aluop = 3'd1; end // subf
          10'd28:  begin unit = 4'd1; aluop = 3'd2; end // and
          10'd444: begin unit = 4'd1; aluop = 3'd3; end // or
          10'd316: begin unit = 4'd1; aluop = 3'd4; end // xor
          10'd24:  begin unit = 4'd1; aluop = 3'd6; end // slw
          10'd536: begin unit = 4'd1; aluop = 3'd7; end // srw
          10'd235: begin unit = 4'd2; aluop = 3'd0; end // mullw
          default: begin
            illegal = 1;
            writes_rd = 0;
          end
        endcase
      end
      default:
        illegal = 1;
    endcase
  end
endmodule

// Two-wide decode with dependency check between the slots.
module puma_decode #(parameter W = 32) (
  input clk,
  input rst,
  input [2*W-1:0] bundle,
  input bundle_valid,
  output reg [3:0] unit0,
  output reg [3:0] unit1,
  output reg [2:0] aluop0,
  output reg [2:0] aluop1,
  output reg [4:0] rs1_0, rs2_0, rd_0,
  output reg [4:0] rs1_1, rs2_1, rd_1,
  output reg [15:0] imm0, imm1,
  output reg usesimm0, usesimm1,
  output reg dual_issue,
  output reg any_illegal
);
  wire [3:0] u0, u1;
  wire [2:0] a0, a1;
  wire [4:0] s10, s20, d0, s11, s21, d1;
  wire ui0, ui1, il0, il1, ld0, st0, wr0, ld1, st1, wr1;
  wire [15:0] i0, i1;

  puma_decode_slot #(.W(W)) slot0 (
    .inst(bundle[W-1:0]), .unit(u0), .aluop(a0),
    .rs1(s10), .rs2(s20), .rd(d0), .uses_imm(ui0), .imm(i0),
    .is_load(ld0), .is_store(st0), .writes_rd(wr0), .illegal(il0));
  puma_decode_slot #(.W(W)) slot1 (
    .inst(bundle[2*W-1:W]), .unit(u1), .aluop(a1),
    .rs1(s11), .rs2(s21), .rd(d1), .uses_imm(ui1), .imm(i1),
    .is_load(ld1), .is_store(st1), .writes_rd(wr1), .illegal(il1));

  // Slot 1 may issue with slot 0 only without a RAW dependence.
  wire raw;
  assign raw = wr0 && ((s11 == d0) || (s21 == d0));

  always @(posedge clk) begin
    if (rst) begin
      unit0 <= 0; unit1 <= 0;
      aluop0 <= 0; aluop1 <= 0;
      rs1_0 <= 0; rs2_0 <= 0; rd_0 <= 0;
      rs1_1 <= 0; rs2_1 <= 0; rd_1 <= 0;
      imm0 <= 0; imm1 <= 0;
      usesimm0 <= 0; usesimm1 <= 0;
      dual_issue <= 0;
      any_illegal <= 0;
    end else if (bundle_valid) begin
      unit0 <= u0; unit1 <= u1;
      aluop0 <= a0; aluop1 <= a1;
      rs1_0 <= s10; rs2_0 <= s20; rd_0 <= d0;
      rs1_1 <= s11; rs2_1 <= s21; rd_1 <= d1;
      imm0 <= i0; imm1 <= i1;
      usesimm0 <= ui0; usesimm1 <= ui1;
      dual_issue <= !raw && !il0 && !il1;
      any_illegal <= il0 || il1;
    end
  end
endmodule
`

// pumaROBSrc: a circular reorder buffer with 2-wide allocate and
// 2-wide in-order retire.
const pumaROBSrc = `
// Reorder buffer: circular allocate/complete/retire.
module puma_rob #(parameter IDW = 4, parameter TAGW = 5) (
  input clk,
  input rst,
  input alloc0,
  input alloc1,
  input [TAGW-1:0] dest0,
  input [TAGW-1:0] dest1,
  input complete_valid,
  input [IDW-1:0] complete_id,
  output [IDW-1:0] id0,
  output [IDW-1:0] id1,
  output retire0,
  output retire1,
  output [TAGW-1:0] retire_dest0,
  output [TAGW-1:0] retire_dest1,
  output full,
  output [IDW:0] occupancy
);
  localparam SLOTS = 1 << IDW;
  reg [IDW:0] head, tail;
  reg [SLOTS-1:0] done;
  reg [TAGW-1:0] dests [0:SLOTS-1];

  assign occupancy = tail - head;
  assign full = occupancy >= SLOTS - 1;
  assign id0 = tail[IDW-1:0];
  assign id1 = tail[IDW-1:0] + 1;

  wire [IDW-1:0] hptr;
  assign hptr = head[IDW-1:0];
  wire [IDW-1:0] hptr1;
  assign hptr1 = hptr + 1;

  // Per-slot completion decode: every ROB slot compares its index
  // against the completing tag (an inline CAM row per slot).
  wire [SLOTS-1:0] complete_hit;
  genvar gi;
  generate for (gi = 0; gi < SLOTS; gi = gi + 1) begin : cdec
    assign complete_hit[gi] = complete_valid && (complete_id == gi);
  end endgenerate

  wire head_done, head1_done;
  assign head_done = done[hptr] && occupancy != 0;
  assign head1_done = done[hptr1] && occupancy > 1;
  assign retire0 = head_done;
  assign retire1 = head_done && head1_done;
  assign retire_dest0 = dests[hptr];
  assign retire_dest1 = dests[hptr1];

  always @(posedge clk) begin
    if (rst) begin
      head <= 0;
      tail <= 0;
      done <= 0;
    end else begin
      if (alloc0 && !full) begin
        dests[tail[IDW-1:0]] <= dest0;
        done[tail[IDW-1:0]] <= 0;
        if (alloc1) begin
          dests[tail[IDW-1:0] + 1] <= dest1;
          done[tail[IDW-1:0] + 1] <= 0;
          tail <= tail + 2;
        end else begin
          tail <= tail + 1;
        end
      end
      if (complete_valid)
        done[complete_id] <= 1;
      if (complete_hit != 0)
        done <= done | complete_hit;
      if (retire1)
        head <= head + 2;
      else if (retire0)
        head <= head + 1;
    end
  end
endmodule
`

// pumaExecuteSrc: the two-issue execute cluster — two replicated ALU
// pipes, a pipelined multiplier, and a writeback arbiter. Largest PUMA
// effort (12 person-months) and the place where instance replication
// shows up in that design.
const pumaExecuteSrc = `
// One execute pipe: operand latch, ALU, result latch.
module puma_expipe #(parameter W = 32) (
  input clk,
  input rst,
  input issue,
  input [2:0] op,
  input [W-1:0] a,
  input [W-1:0] b,
  output reg [W-1:0] result,
  output reg result_valid,
  output reg zero_flag
);
  reg [W-1:0] la, lb;
  reg [2:0] lop;
  reg lvalid;
  wire [W-1:0] y;
  wire z;
  always @(posedge clk) begin
    if (rst) begin
      la <= 0; lb <= 0; lop <= 0; lvalid <= 0;
    end else begin
      la <= a; lb <= b; lop <= op; lvalid <= issue;
    end
  end
  lib_alu #(.W(W)) alu (.op(lop), .a(la), .b(lb), .y(y), .zero(z));
  always @(posedge clk) begin
    if (rst) begin
      result <= 0;
      result_valid <= 0;
      zero_flag <= 0;
    end else begin
      result <= y;
      result_valid <= lvalid;
      zero_flag <= z;
    end
  end
endmodule

// Three-stage pipelined multiplier.
module puma_mulpipe #(parameter W = 32) (
  input clk,
  input rst,
  input issue,
  input [W-1:0] a,
  input [W-1:0] b,
  output reg [W-1:0] p,
  output reg p_valid
);
  reg [W-1:0] s1p, s2p;
  reg s1v, s2v;
  always @(posedge clk) begin
    if (rst) begin
      s1p <= 0; s2p <= 0; p <= 0;
      s1v <= 0; s2v <= 0; p_valid <= 0;
    end else begin
      s1p <= a[15:0] * b[15:0];
      s1v <= issue;
      s2p <= s1p;
      s2v <= s1v;
      p <= s2p;
      p_valid <= s2v;
    end
  end
endmodule

// Execute cluster: two ALU pipes + multiplier + writeback arbiter.
module puma_execute #(parameter W = 32) (
  input clk,
  input rst,
  input issue0,
  input issue1,
  input issue_mul,
  input [2:0] op0,
  input [2:0] op1,
  input [W-1:0] a0, b0, a1, b1, am, bm,
  output [W-1:0] wb_data,
  output wb_valid,
  output [1:0] wb_source,
  output branch_flag
);
  wire [W-1:0] r0, r1, rm;
  wire v0, v1, vm, z0, z1;

  puma_expipe #(.W(W)) pipe0 (.clk(clk), .rst(rst), .issue(issue0),
    .op(op0), .a(a0), .b(b0), .result(r0), .result_valid(v0), .zero_flag(z0));
  puma_expipe #(.W(W)) pipe1 (.clk(clk), .rst(rst), .issue(issue1),
    .op(op1), .a(a1), .b(b1), .result(r1), .result_valid(v1), .zero_flag(z1));
  puma_mulpipe #(.W(W)) mul (.clk(clk), .rst(rst), .issue(issue_mul),
    .a(am), .b(bm), .p(rm), .p_valid(vm));

  // Writeback arbiter: multiplier wins, then pipe0, then pipe1.
  assign wb_valid = vm || v0 || v1;
  assign wb_source = vm ? 2'd2 : (v0 ? 2'd0 : 2'd1);
  assign wb_data = vm ? rm : (v0 ? r0 : r1);
  // Condition flags read the architectural sign bit.
  wire neg0, neg1;
  assign neg0 = r0[31];
  assign neg1 = r1[31];
  assign branch_flag = (v0 && (z0 || neg0)) || (v1 && (z1 || neg1));
endmodule
`

// pumaMemorySrc: the memory unit — an AGU plus a store buffer built
// from four identical CAM-entry instances. PUMA-Memory reported only 1
// person-month: the entry was designed once and instantiated four
// times, so the accounting procedure collapses most of this unit.
const pumaMemorySrc = `
// One store-buffer entry: address/data latch with CAM match.
module puma_sb_entry #(parameter W = 32) (
  input clk,
  input rst,
  input alloc,
  input [W-1:0] alloc_addr,
  input [W-1:0] alloc_data,
  input drain,
  input [W-1:0] probe,
  output match,
  output [W-1:0] data,
  output busy
);
  reg v;
  reg [W-1:0] a, d;
  always @(posedge clk) begin
    if (rst)
      v <= 0;
    else if (alloc) begin
      v <= 1;
      a <= alloc_addr;
      d <= alloc_data;
    end else if (drain)
      v <= 0;
  end
  assign match = v && (a == probe);
  assign data = d;
  assign busy = v;
endmodule

// Memory unit: AGU + 4-entry store buffer with load forwarding.
module puma_memory #(parameter W = 32) (
  input clk,
  input rst,
  input agu_valid,
  input agu_is_store,
  input [W-1:0] base,
  input [15:0] offset,
  input [W-1:0] store_data,
  input commit_store,
  output [W-1:0] dmem_addr,
  output [W-1:0] dmem_wdata,
  output dmem_we,
  output [W-1:0] load_data,
  input [W-1:0] dmem_rdata,
  output fwd_hit
);
  wire [W-1:0] ea;
  assign ea = base + {{W-16{1'b0}}, offset};

  reg [1:0] head, tail;
  wire [3:0] busy, match;
  wire [W-1:0] d0, d1, d2, d3;
  wire alloc;
  assign alloc = agu_valid && agu_is_store;
  wire drain;
  assign drain = commit_store && busy != 0;

  puma_sb_entry #(.W(W)) e0 (.clk(clk), .rst(rst),
    .alloc(alloc && tail == 0), .alloc_addr(ea), .alloc_data(store_data),
    .drain(drain && head == 0), .probe(ea),
    .match(match[0]), .data(d0), .busy(busy[0]));
  puma_sb_entry #(.W(W)) e1 (.clk(clk), .rst(rst),
    .alloc(alloc && tail == 1), .alloc_addr(ea), .alloc_data(store_data),
    .drain(drain && head == 1), .probe(ea),
    .match(match[1]), .data(d1), .busy(busy[1]));
  puma_sb_entry #(.W(W)) e2 (.clk(clk), .rst(rst),
    .alloc(alloc && tail == 2), .alloc_addr(ea), .alloc_data(store_data),
    .drain(drain && head == 2), .probe(ea),
    .match(match[2]), .data(d2), .busy(busy[2]));
  puma_sb_entry #(.W(W)) e3 (.clk(clk), .rst(rst),
    .alloc(alloc && tail == 3), .alloc_addr(ea), .alloc_data(store_data),
    .drain(drain && head == 3), .probe(ea),
    .match(match[3]), .data(d3), .busy(busy[3]));

  always @(posedge clk) begin
    if (rst) begin
      head <= 0;
      tail <= 0;
    end else begin
      if (alloc)
        tail <= tail + 1;
      if (drain)
        head <= head + 1;
    end
  end

  assign fwd_hit = agu_valid && !agu_is_store && (match != 0);
  assign load_data = match[0] ? d0 : match[1] ? d1 : match[2] ? d2 :
                     match[3] ? d3 : dmem_rdata;
  assign dmem_addr = ea;
  assign dmem_wdata = match[0] ? d0 : d1;
  assign dmem_we = drain;
endmodule
`
