// Command ucserved is the long-running measurement daemon: it keeps
// parsed designs, measurement sessions, per-tenant remeasure
// baselines, and the on-disk cache warm across requests, so clients
// pay the cold pipeline once and every later measurement — or
// one-module-edit delta — is answered incrementally.
//
// Endpoints:
//
//	POST /measure    measure a design's units (JSON request; JSON or
//	                 codec-framed binary response via Accept)
//	POST /remeasure  like /measure but against the tenant's rolling
//	                 baseline: only the edit's dirty cone re-measures
//	GET  /metrics    admission, request, session, and cache counters
//	GET  /healthz    200 while serving, 503 once draining
//
// Flags:
//
//	-addr            listen address (default 127.0.0.1:8090)
//	-cache-dir DIR   shared on-disk measurement cache (default
//	                 $UCOMPLEXITY_CACHE; empty = no cache); tenant
//	                 namespaces partition it, so one directory serves
//	                 every tenant without cross-contamination
//	-concurrency N   measurement workers per request (0 = GOMAXPROCS)
//	-max-concurrent  measurement requests admitted at once
//	-queue-depth     admitted-but-waiting bound; beyond it 429
//	-request-timeout per-request wall-clock ceiling (0 = none)
//	-drain-timeout   how long SIGTERM waits for in-flight work
//	-sessions        parsed-design session table bound (LRU beyond)
//	-max-body        request body byte limit
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503, new
// measurement requests are refused, in-flight requests complete, then
// the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ucserved: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", "127.0.0.1:8090", "listen address")
		cacheDir       = flag.String("cache-dir", cache.DefaultDir(), "measurement cache directory (default $"+cache.EnvVar+"; empty = no cache)")
		concurrency    = flag.Int("concurrency", 0, "measurement workers per request (0 = GOMAXPROCS)")
		maxConcurrent  = flag.Int("max-concurrent", 2, "measurement requests admitted at once")
		queueDepth     = flag.Int("queue-depth", 8, "admission queue depth (-1 = no queue)")
		requestTimeout = flag.Duration("request-timeout", 0, "per-request wall-clock ceiling (0 = none)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain ceiling on SIGTERM")
		sessions       = flag.Int("sessions", 16, "parsed-design session table bound")
		maxBody        = flag.Int64("max-body", 16<<20, "request body byte limit")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", flag.Args())
	}

	cfg := serve.Config{
		Concurrency:    *concurrency,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		RequestTimeout: *requestTimeout,
		MaxSessions:    *sessions,
		Limits:         serve.Limits{MaxBodyBytes: *maxBody},
	}
	if *cacheDir != "" {
		c, err := cache.Open(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache = c
		fmt.Fprintf(os.Stderr, "ucserved: caching measurements in %s\n", *cacheDir)
	}

	srv := serve.New(cfg)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The "listening on" line is the readiness contract: the process
	// smoke test (and any supervisor) waits for it before connecting.
	fmt.Printf("ucserved: listening on http://%s\n", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	served := make(chan error, 1)
	go func() { served <- hs.Serve(lis) }()

	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "ucserved: draining")
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "ucserved: drained")
	return nil
}
