package measure

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/synth"
)

func roundtrip[T any](t *testing.T, cd codec.Codec[T], v T) T {
	t.Helper()
	buf := cd.Append(nil, v)
	r := codec.NewReader(buf)
	got, err := cd.Decode(r)
	if err != nil {
		t.Fatalf("%s: decode: %v", cd.Name, err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("%s: %v", cd.Name, err)
	}
	return got
}

func TestMetricsCodecRoundtrip(t *testing.T) {
	want := &Metrics{
		Stmts: 12, LoC: 340, FanInLC: 99, FanInLCExact: 101,
		Nets: 2048, Cells: 1500, FFs: 128,
		FreqMHz: 123.456789, AreaL: 0.1 + 0.2, AreaS: math.SmallestNonzeroFloat64,
		PowerD: 1e-9, PowerS: 55.5,
	}
	got := roundtrip(t, metricsCodec, want)
	if *got != *want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if got := roundtrip(t, metricsCodec, &Metrics{}); *got != (Metrics{}) {
		t.Errorf("zero metrics round-trip: %+v", got)
	}
}

// TestRecordCodecRoundtrip pins the full component-record shape,
// including a real synthesized netlist, through encode/decode.
func TestRecordCodecRoundtrip(t *testing.T) {
	c, err := designs.ByLabel("RAT-Standard")
	if err != nil {
		t.Fatal(err)
	}
	d, err := designs.Design(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, c.Top, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := &componentRecord{
		Metrics:          &Metrics{Cells: 7, FreqMHz: 1.5},
		UniqueModules:    []string{"a", "b", "c"},
		MinimizedParams:  map[string]int64{"W": 4, "DEPTH": -1},
		InstanceCount:    9,
		DedupedInstances: 3,
		ElabCacheHits:    5,
		ElabCacheMisses:  2,
		ElabStats:        elab.CacheStats{Hits: 10, Misses: 4, InstancesReused: 6},
		Optimized:        res.Optimized,
	}
	got := roundtrip(t, recordCodec, want)
	if diff := compareRecords(want, got); diff != "" {
		t.Errorf("round-trip changed the record: %s", diff)
	}
	if !reflect.DeepEqual(got.UniqueModules, want.UniqueModules) {
		t.Errorf("UniqueModules = %v", got.UniqueModules)
	}
	if got.ElabCacheHits != 5 || got.ElabCacheMisses != 2 || got.ElabStats != want.ElabStats {
		t.Errorf("elab counters changed: %+v", got)
	}
	if got.Optimized.Hash() != res.Optimized.Hash() {
		t.Error("optimized netlist hash changed")
	}
	// Encoding must be byte-stable across repeated encodes (sorted map
	// order): verify mode and golden warm runs depend on it.
	if string(recordCodec.Append(nil, want)) != string(recordCodec.Append(nil, want)) {
		t.Error("record encoding not deterministic")
	}
}

// TestRecordCodecNilFields pins gob-parity for the sparse shape: empty
// slices/maps and absent netlist must come back nil, not empty.
func TestRecordCodecNilFields(t *testing.T) {
	want := &componentRecord{Metrics: &Metrics{}}
	got := roundtrip(t, recordCodec, want)
	if got.UniqueModules != nil || got.MinimizedParams != nil || got.Optimized != nil {
		t.Errorf("empty fields decoded non-nil: %+v", got)
	}
	if got.Metrics == nil {
		t.Error("metrics lost")
	}
}

func TestRecordCodecHostileInput(t *testing.T) {
	buf := recordCodec.Append(nil, &componentRecord{Metrics: &Metrics{Cells: 1}})
	for cut := 0; cut < len(buf); cut++ {
		r := codec.NewReader(buf[:cut])
		if _, err := recordCodec.Decode(r); err == nil {
			if err := r.Finish(); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		} else if !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("truncation at %d: %v does not wrap ErrCorrupt", cut, err)
		}
	}
}
