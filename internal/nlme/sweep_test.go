package nlme

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// synthData generates a dataset from the model itself: nGroups
// projects with lognormal productivities, perGroup components each,
// with true weights wTrue over k metrics and multiplicative error
// sigmaEps.
func synthData(rng *rand.Rand, nGroups, perGroup int, wTrue []float64, sigmaEps, sigmaRho float64) *Data {
	d := &Data{}
	for g := 0; g < nGroups; g++ {
		b := rng.NormFloat64() * sigmaRho
		name := "team" + string(rune('A'+g))
		for j := 0; j < perGroup; j++ {
			row := make([]float64, len(wTrue))
			var eta float64
			for k := range wTrue {
				row[k] = 20 + rng.Float64()*3000
				eta += wTrue[k] * row[k]
			}
			logEff := b + math.Log(eta) + rng.NormFloat64()*sigmaEps
			d.Groups = append(d.Groups, name)
			d.Efforts = append(d.Efforts, math.Exp(logEff))
			d.Metrics = append(d.Metrics, row)
		}
	}
	return d
}

// TestSweepSigmaEpsRecovery sweeps the true error SD and checks that
// the ML estimate tracks it across the grid (the workload-generator
// validation of the statistical substrate).
func TestSweepSigmaEpsRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	for _, trueSigma := range []float64{0.2, 0.5, 0.9} {
		var estimates []float64
		for rep := 0; rep < 6; rep++ {
			d := synthData(rng, 8, 12, []float64{0.01}, trueSigma, 0.4)
			r, err := Fit(d)
			if err != nil {
				t.Fatal(err)
			}
			estimates = append(estimates, r.SigmaEps)
		}
		mean := stats.Mean(estimates)
		if math.Abs(mean-trueSigma) > 0.12*trueSigma+0.04 {
			t.Errorf("true σε=%.2f: mean estimate %.3f across reps", trueSigma, mean)
		}
	}
}

// TestSweepSigmaRhoRecovery sweeps the productivity spread.
func TestSweepSigmaRhoRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	for _, trueRho := range []float64{0.3, 0.7} {
		var estimates []float64
		for rep := 0; rep < 6; rep++ {
			d := synthData(rng, 12, 8, []float64{0.02}, 0.3, trueRho)
			r, err := Fit(d)
			if err != nil {
				t.Fatal(err)
			}
			estimates = append(estimates, r.SigmaRho)
		}
		mean := stats.Mean(estimates)
		if math.Abs(mean-trueRho) > 0.3*trueRho {
			t.Errorf("true σρ=%.2f: mean estimate %.3f", trueRho, mean)
		}
	}
}

// TestConfidenceIntervalCoverage validates the headline claim behind
// Figures 3/4: the σε-derived 90% interval must cover ~90% of actual
// efforts (and the 68% interval ~68%) on data drawn from the model.
func TestConfidenceIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const reps = 40
	hits90, hits68, total := 0, 0, 0
	for rep := 0; rep < reps; rep++ {
		d := synthData(rng, 6, 8, []float64{0.01}, 0.45, 0.4)
		r, err := Fit(d)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate coverage in-sample with the fitted productivities
		// (the paper's estimation setting).
		for i := range d.Efforts {
			rho := r.Productivities[d.Groups[i]]
			pred, err := r.Predict(d.Metrics[i], rho)
			if err != nil {
				t.Fatal(err)
			}
			lo90, hi90 := r.ConfidenceInterval(pred, 0.90)
			lo68, hi68 := r.ConfidenceInterval(pred, 0.68)
			if d.Efforts[i] >= lo90 && d.Efforts[i] <= hi90 {
				hits90++
			}
			if d.Efforts[i] >= lo68 && d.Efforts[i] <= hi68 {
				hits68++
			}
			total++
		}
	}
	cov90 := float64(hits90) / float64(total)
	cov68 := float64(hits68) / float64(total)
	if cov90 < 0.85 || cov90 > 0.95 {
		t.Errorf("90%% interval covers %.1f%%", cov90*100)
	}
	if cov68 < 0.62 || cov68 > 0.74 {
		t.Errorf("68%% interval covers %.1f%%", cov68*100)
	}
}

// TestSweepSampleSizePrecision confirms §3.1.1's guidance that "using
// a large number of data points lends precision": the spread of σε
// estimates shrinks as the database grows.
func TestSweepSampleSizePrecision(t *testing.T) {
	spread := func(perGroup int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var ests []float64
		for rep := 0; rep < 8; rep++ {
			d := synthData(rng, 6, perGroup, []float64{0.01}, 0.5, 0.3)
			r, err := Fit(d)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, r.SigmaEps)
		}
		return stats.StdDev(ests)
	}
	small := spread(4, 5)
	large := spread(40, 6)
	if large >= small {
		t.Errorf("estimate spread must shrink with data: n=4 %.4f vs n=40 %.4f", small, large)
	}
}

// TestEquation4MeanCorrection validates Equation 4 empirically: the
// mean of simulated efforts around a fixed prediction equals the
// median times e^{(σε²+σρ²)/2}.
func TestEquation4MeanCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const (
		se     = 0.46
		sr     = 0.30
		median = 10.0
		n      = 400000
	)
	var sum float64
	for i := 0; i < n; i++ {
		b := rng.NormFloat64() * sr
		e := rng.NormFloat64() * se
		sum += median * math.Exp(b+e)
	}
	gotMean := sum / n
	wantMean := median * math.Exp((se*se+sr*sr)/2)
	if math.Abs(gotMean-wantMean)/wantMean > 0.02 {
		t.Errorf("simulated mean %.3f, Equation 4 predicts %.3f", gotMean, wantMean)
	}
}
