package elab

import (
	"strings"
	"testing"
)

func TestInstanceHelpers(t *testing.T) {
	d := design(t, map[string]string{"m.v": `
module child (input a, output y);
  assign y = ~a;
endmodule
module m #(parameter W = 4) (input clk, input [W-1:0] a, output [W-1:0] y);
  integer i;
  reg [W-1:0] scratch;
  reg [3:0] mem [0:7];
  wire t;
  child u (.a(a[0]), .y(t));
  always @(posedge clk) begin
    for (i = 0; i < W; i = i + 1)
      scratch[i] <= a[i];
    mem[a[2:0]] <= 4'd1;
  end
  assign y = scratch;
endmodule`})
	inst, _, err := Elaborate(d, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(inst.Params)

	if m, ok := inst.ResolveMem("mem", env); !ok || m.Depth != 8 {
		t.Errorf("ResolveMem = %+v, %v", m, ok)
	}
	if _, ok := inst.ResolveMem("nosuch", env); ok {
		t.Error("ResolveMem must miss")
	}
	if !inst.IsIntVar("i") || inst.IsIntVar("scratch") {
		t.Error("IsIntVar misclassifies")
	}
	ports := inst.PortNets()
	if len(ports) != 3 || ports[0].Name != "clk" {
		t.Errorf("PortNets = %+v", ports)
	}
	names := inst.SortedNetNames()
	if len(names) == 0 || !sortedStrings(names) {
		t.Errorf("SortedNetNames = %v", names)
	}
	if s := inst.String(); !strings.Contains(s, "m") {
		t.Errorf("String = %q", s)
	}
	if inst.CountInstances() != 2 {
		t.Errorf("CountInstances = %d", inst.CountInstances())
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

func TestIsConstant(t *testing.T) {
	env := NewEnv(map[string]int64{"W": 8})
	d := design(t, map[string]string{"m.v": `
module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);
  assign y = a + W;
endmodule`})
	inst, _, err := Elaborate(d, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	ca := inst.Assigns[0]
	// The RHS (a + W) references a signal: not constant. Its right
	// operand (W) is.
	if IsConstant(ca.Item.RHS, env) {
		t.Error("a + W must not be constant")
	}
}

func TestBehavioralForTripCountInSignature(t *testing.T) {
	src := map[string]string{"m.v": `
module m #(parameter N = 8) (input [7:0] a, output reg [7:0] y);
  integer i;
  always @(*) begin
    y = 0;
    for (i = 0; i < N; i = i + 1)
      y = y ^ (a >> i);
  end
endmodule`}
	d := design(t, src)
	_, ref, err := Elaborate(d, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	foundFor := false
	for _, c := range ref.Constructs {
		if c.Kind == "for" {
			foundFor = true
			if !c.Alive {
				t.Error("N=8 loop must be alive")
			}
		}
	}
	if !foundFor {
		t.Fatal("behavioral for loop not in the signature")
	}
	// N=0 collapses the loop: incompatible.
	_, cand, err := Elaborate(d, "m", map[string]int64{"N": 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ref.CompatibleWith(cand); ok {
		t.Error("zero-trip behavioral loop must be incompatible")
	}
	// N=1 keeps it alive: compatible.
	_, cand1, err := Elaborate(d, "m", map[string]int64{"N": 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := ref.CompatibleWith(cand1); !ok {
		t.Errorf("N=1 should be compatible: %s", reason)
	}
}

func TestRangeValidationInsideAlways(t *testing.T) {
	// Constant out-of-range accesses inside behavioral code are caught
	// at elaboration (this drives the scaling rule's width pinning).
	d := design(t, map[string]string{"m.v": `
module m #(parameter W = 8) (input clk, input [W-1:0] a, output reg [W-1:0] y);
  always @(posedge clk) begin
    if (a[7])
      y <= a;
  end
endmodule`})
	if _, _, err := Elaborate(d, "m", map[string]int64{"W": 4}); err == nil {
		t.Fatal("a[7] with W=4 must fail elaboration")
	}
	if _, _, err := Elaborate(d, "m", nil); err != nil {
		t.Fatalf("W=8 must elaborate: %v", err)
	}
}

func TestRangeValidationInPortBindings(t *testing.T) {
	d := design(t, map[string]string{"m.v": `
module leaf (input x, output y);
  assign y = ~x;
endmodule
module m #(parameter W = 8) (input [W-1:0] a, output y);
  leaf u (.x(a[6]), .y(y));
endmodule`})
	if _, _, err := Elaborate(d, "m", map[string]int64{"W": 4}); err == nil {
		t.Fatal("binding a[6] with W=4 must fail")
	}
}
