package nlme

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Result is a fitted mixed-effects model.
type Result struct {
	// Weights are the fixed-effect coefficients w_k of Equation 1.
	Weights []float64
	// MetricNames labels Weights (copied from the input data; may be nil).
	MetricNames []string
	// SigmaEps is σε, the standard deviation of the log of the
	// multiplicative error ε. This is the paper's goodness-of-fit
	// measure: lower is better, zero is perfect.
	SigmaEps float64
	// SigmaRho is σρ, the standard deviation of the log of the
	// productivity ρ across projects. Zero for FitFixed.
	SigmaRho float64
	// LogLik is the maximized marginal log-likelihood of the log-scale
	// model (what SAS NLMIXED / R nlme method="ML" report).
	LogLik float64
	// NumParams counts the free parameters: len(Weights) + 2 for the
	// mixed model (σε, σρ), or + 1 for the fixed model (σε).
	NumParams int
	// NumObs is the number of observations fitted.
	NumObs int
	// Productivities maps each project to its empirical-Bayes ρ_i
	// estimate (exp of minus the BLUP of the random effect). For
	// FitFixed every project has ρ = 1.
	Productivities map[string]float64
	// Converged reports whether the optimizer met its tolerances.
	Converged bool
	// Mixed records whether the random productivity effect was fitted.
	Mixed bool
}

// AIC returns Akaike's Information Criterion, −2·logL + 2·p.
// Lower is better (Section 5.1.1).
func (r *Result) AIC() float64 { return -2*r.LogLik + 2*float64(r.NumParams) }

// BIC returns the Bayesian Information Criterion, −2·logL + p·ln(n).
// Lower is better (Section 5.1.1).
func (r *Result) BIC() float64 {
	return -2*r.LogLik + float64(r.NumParams)*math.Log(float64(r.NumObs))
}

// Predict returns the estimated (median) design effort
// (1/ρ)·Σ_k w_k·m_k for one metric vector and a productivity factor.
// Use rho = 1 for an unadjusted or relative estimate (Section 3.1.1).
func (r *Result) Predict(metrics []float64, rho float64) (float64, error) {
	if len(metrics) != len(r.Weights) {
		return 0, fmt.Errorf("nlme: Predict: %d metrics for %d weights", len(metrics), len(r.Weights))
	}
	if rho <= 0 {
		return 0, fmt.Errorf("nlme: Predict: productivity must be positive, got %v", rho)
	}
	var eta float64
	for k, m := range metrics {
		eta += r.Weights[k] * m
	}
	return eta / rho, nil
}

// MeanFactor returns e^((σε²+σρ²)/2), the Equation 4 factor that
// converts the median effort estimate into the mean estimate.
func (r *Result) MeanFactor() float64 {
	return math.Exp((r.SigmaEps*r.SigmaEps + r.SigmaRho*r.SigmaRho) / 2)
}

// ConfidenceInterval returns the conf-level interval (lo, hi) for the
// true effort around the median estimate eff, using the fitted σε
// (Figures 3 and 4 of the paper).
func (r *Result) ConfidenceInterval(eff, conf float64) (lo, hi float64) {
	yl, yh := stats.ConfidenceFactors(r.SigmaEps, conf)
	return yl * eff, yh * eff
}

// profiledObjective builds the negative profiled log-likelihood of the
// mixed model over θ = (log w_1..log w_k, log λ) where λ = σρ²/σε².
//
// With residuals r_ij = log Eff_ij − log η_ij and group sizes n_i, the
// marginal covariance of group i is σε²(I + λJ), giving
//
//	−2·logL = n·log 2π + n·log σε² + Σ_i log(1+n_i·λ) + Q(λ,w)/σε²
//	Q(λ,w)  = Σ_i [ Σ_j r_ij² − λ/(1+n_i·λ)·(Σ_j r_ij)² ]
//
// and the ML σε² given (w, λ) is Q/n, which is substituted back in.
//
// The returned closure owns reusable weight and predictor-log scratch,
// so repeated evaluations allocate nothing — and for the same reason it
// is NOT safe for concurrent calls. Multi-start optimization hands each
// pool worker its own closure via stats.MinimizeMultistartFunc; the
// scratch never changes a computed value (every entry read is written
// first on each evaluation), so results stay bit-identical to the
// allocate-per-eval form.
func (d *Data) profiledObjective(members [][]int, logEff []float64) func(theta []float64) float64 {
	k := d.NumMetrics()
	n := d.NumObs()
	w := make([]float64, k)
	logEta := make([]float64, n)
	return func(theta []float64) float64 {
		for i := 0; i < k; i++ {
			if theta[i] > 400 || theta[i] < -400 {
				return math.Inf(1)
			}
			w[i] = math.Exp(theta[i])
		}
		lambda := math.Exp(theta[k])
		if math.IsInf(lambda, 1) {
			return math.Inf(1)
		}
		if d.predictorLogsInto(logEta, w) != nil {
			return math.Inf(1)
		}
		var q, logDetTerm float64
		for _, idx := range members {
			var sum, sumsq float64
			for _, i := range idx {
				r := logEff[i] - logEta[i]
				sum += r
				sumsq += r * r
			}
			ni := float64(len(idx))
			q += sumsq - lambda/(1+ni*lambda)*sum*sum
			logDetTerm += math.Log(1 + ni*lambda)
		}
		if q <= 0 || math.IsNaN(q) {
			return math.Inf(1)
		}
		nn := float64(n)
		// −logL with σε² profiled at Q/n.
		return 0.5 * (nn*math.Log(2*math.Pi) + nn*math.Log(q/nn) + logDetTerm + nn)
	}
}

// FitOptions configures Fit and FitFixed.
type FitOptions struct {
	// Concurrency bounds the worker pool the multi-start restarts run
	// on: 0 means GOMAXPROCS, 1 forces the exact sequential path. The
	// fitted result is bit-identical for every value (the restarts are
	// independent and the reduction tie-breaks on start index), so the
	// knob only trades wall-clock time.
	Concurrency int
}

// Fit maximizes the marginal likelihood of the mixed-effects model and
// returns the fitted weights, variance components, productivities, and
// information criteria. It uses multi-start Nelder–Mead over
// log-weights and the log variance ratio; starting points are seeded
// from per-metric effort/metric scale ratios and an OLS fit. The
// restarts run concurrently on every available core; use FitOpts to
// bound or serialize them.
func Fit(d *Data) (*Result, error) {
	return FitOpts(d, FitOptions{})
}

// FitOpts is Fit with explicit options.
func FitOpts(d *Data, opts FitOptions) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumObs()
	k := d.NumMetrics()
	names, members := d.groupIndex()
	if len(names) < 2 {
		return nil, fmt.Errorf("nlme: mixed model needs at least 2 projects, got %d (use FitFixed)", len(names))
	}
	logEff := make([]float64, n)
	for i, e := range d.Efforts {
		logEff[i] = math.Log(e)
	}

	// Each pool worker gets its own objective closure so the reusable
	// scratch inside profiledObjective is never shared.
	obj := func() func([]float64) float64 { return d.profiledObjective(members, logEff) }
	starts := startingPoints(d, true)
	best := stats.MinimizeMultistartFunc(obj, starts, stats.NelderMeadOptions{MaxIter: 40000, TolF: 1e-12, TolX: 1e-9}, opts.Concurrency)
	if math.IsInf(best.F, 1) {
		return nil, fmt.Errorf("nlme: optimization found no feasible point")
	}

	w := make([]float64, k)
	for i := 0; i < k; i++ {
		w[i] = math.Exp(best.X[i])
	}
	lambda := math.Exp(best.X[k])
	logEta, err := d.predictorLogs(w)
	if err != nil {
		return nil, fmt.Errorf("nlme: internal: optimum infeasible: %w", err)
	}
	// Recover σε² = Q/n at the optimum.
	var q float64
	groupSum := make([]float64, len(members))
	for gi, idx := range members {
		var sum, sumsq float64
		for _, i := range idx {
			r := logEff[i] - logEta[i]
			sum += r
			sumsq += r * r
		}
		ni := float64(len(idx))
		q += sumsq - lambda/(1+ni*lambda)*sum*sum
		groupSum[gi] = sum
	}
	sigmaEps2 := q / float64(n)
	sigmaRho2 := lambda * sigmaEps2

	// Empirical-Bayes (BLUP) productivities: the posterior mean of the
	// random effect b_i is σρ²·Σ_j r_ij / (σε² + n_i·σρ²), and
	// ρ_i = exp(−b_i) since b_i = −log ρ_i.
	prods := make(map[string]float64, len(names))
	for gi, name := range names {
		ni := float64(len(members[gi]))
		b := sigmaRho2 * groupSum[gi] / (sigmaEps2 + ni*sigmaRho2)
		prods[name] = math.Exp(-b)
	}

	res := &Result{
		Weights:        w,
		MetricNames:    append([]string(nil), d.MetricNames...),
		SigmaEps:       math.Sqrt(sigmaEps2),
		SigmaRho:       math.Sqrt(sigmaRho2),
		LogLik:         -best.F,
		NumParams:      k + 2,
		NumObs:         n,
		Productivities: prods,
		Converged:      best.Converged,
		Mixed:          true,
	}
	return res, nil
}

// FitFixed fits the model of Section 3.2 with every ρ_i forced to 1:
// log Eff_ij = log(Σ_k w_k·m_ijk) + N(0, σε²). This is nonlinear least
// squares on the log scale, with σε² profiled at RSS/n (the ML
// estimate). Productivities in the result are all exactly 1.
func FitFixed(d *Data) (*Result, error) {
	return FitFixedOpts(d, FitOptions{})
}

// FitFixedOpts is FitFixed with explicit options.
func FitFixedOpts(d *Data, opts FitOptions) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumObs()
	k := d.NumMetrics()
	logEff := make([]float64, n)
	for i, e := range d.Efforts {
		logEff[i] = math.Log(e)
	}
	// As in FitOpts, the objective factory gives each pool worker a
	// closure owning its own scratch, so evaluations allocate nothing.
	obj := func() func([]float64) float64 {
		w := make([]float64, k)
		logEta := make([]float64, n)
		return func(theta []float64) float64 {
			for i := 0; i < k; i++ {
				if theta[i] > 400 || theta[i] < -400 {
					return math.Inf(1)
				}
				w[i] = math.Exp(theta[i])
			}
			if d.predictorLogsInto(logEta, w) != nil {
				return math.Inf(1)
			}
			var rss float64
			for i := range logEff {
				r := logEff[i] - logEta[i]
				rss += r * r
			}
			if rss <= 0 {
				// A perfect fit; return the limit (−∞ likelihood objective
				// would be −Inf, i.e. unboundedly good — report a huge
				// negative number to let the optimizer accept it).
				return math.Inf(-1)
			}
			nn := float64(n)
			return 0.5 * (nn*math.Log(2*math.Pi) + nn*math.Log(rss/nn) + nn)
		}
	}
	starts := startingPoints(d, false)
	best := stats.MinimizeMultistartFunc(obj, starts, stats.NelderMeadOptions{MaxIter: 40000, TolF: 1e-12, TolX: 1e-9}, opts.Concurrency)
	if math.IsInf(best.F, 1) {
		return nil, fmt.Errorf("nlme: optimization found no feasible point")
	}
	w := make([]float64, k)
	for i := 0; i < k; i++ {
		w[i] = math.Exp(best.X[i])
	}
	logEta, err := d.predictorLogs(w)
	if err != nil {
		return nil, fmt.Errorf("nlme: internal: optimum infeasible: %w", err)
	}
	var rss float64
	for i := range logEff {
		r := logEff[i] - logEta[i]
		rss += r * r
	}
	names, _ := d.groupIndex()
	prods := make(map[string]float64, len(names))
	for _, name := range names {
		prods[name] = 1
	}
	return &Result{
		Weights:        w,
		MetricNames:    append([]string(nil), d.MetricNames...),
		SigmaEps:       math.Sqrt(rss / float64(n)),
		SigmaRho:       0,
		LogLik:         -best.F,
		NumParams:      k + 1,
		NumObs:         n,
		Productivities: prods,
		Converged:      best.Converged,
		Mixed:          false,
	}, nil
}

// startingPoints builds a set of optimizer seeds in θ-space. Each seed
// sets log-weights from a heuristic and, for the mixed model, appends a
// log variance-ratio seed.
func startingPoints(d *Data, mixed bool) [][]float64 {
	k := d.NumMetrics()
	n := d.NumObs()

	// All seeds live in one backing array: fitting is called once per
	// bootstrap/probe evaluation, so the dozen-plus small slices the
	// naive construction allocates add up on the measurement hot path.
	nb := 4
	if k == 2 {
		nb = 6
	}
	dim, per := k, 1
	if mixed {
		dim, per = k+1, 3
	}
	count := nb * per
	backing := make([]float64, count*dim+nb*k)
	baseArea := backing[count*dim:]
	baseAt := func(i int) []float64 { return baseArea[i*k : (i+1)*k] }

	// Heuristic 1: w_k = mean(effort) / (k · mean(metric_k)), the scale
	// that makes each term contribute equally on average.
	meanEff := stats.Mean(d.Efforts)
	scaleSeed := baseAt(0)
	for j := 0; j < k; j++ {
		var s float64
		cnt := 0
		for i := 0; i < n; i++ {
			if d.Metrics[i][j] > 0 {
				s += d.Metrics[i][j]
				cnt++
			}
		}
		if cnt == 0 || s == 0 {
			scaleSeed[j] = math.Log(1e-6)
			continue
		}
		scaleSeed[j] = math.Log(meanEff / (float64(k) * s / float64(cnt)))
	}

	// Heuristic 2: non-negative OLS of effort on metrics (negative
	// coefficients clipped to a tiny positive fraction of the scale seed).
	olsSeed := baseAt(1)
	copy(olsSeed, scaleSeed)
	x := stats.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			x.Set(i, j, d.Metrics[i][j])
		}
	}
	if beta, _, err := stats.OLS(x, d.Efforts); err == nil {
		for j := 0; j < k; j++ {
			if beta[j] > 0 {
				olsSeed[j] = math.Log(beta[j])
			} else {
				olsSeed[j] = scaleSeed[j] - 4 // strongly down-weighted
			}
		}
	}

	// Perturbed variants widen the basin coverage deterministically.
	for bi, delta := range []float64{-2, 2} {
		v := baseAt(2 + bi)
		copy(v, scaleSeed)
		for j := range v {
			v[j] += delta
		}
	}
	if k == 2 {
		// Lopsided seeds matter for two-metric estimators like DEE1
		// where one metric may dominate.
		a := baseAt(4)
		copy(a, scaleSeed)
		a[0] += 3
		a[1] -= 3
		b := baseAt(5)
		copy(b, scaleSeed)
		b[0] -= 3
		b[1] += 3
	}

	starts := make([][]float64, count)
	if !mixed {
		for i := range starts {
			row := backing[i*dim : (i+1)*dim]
			copy(row, baseAt(i))
			starts[i] = row
		}
		return starts
	}
	logLambdas := [3]float64{math.Log(0.25), math.Log(1), math.Log(4)}
	for bi := 0; bi < nb; bi++ {
		for li, logLambda := range logLambdas {
			i := bi*per + li
			row := backing[i*dim : (i+1)*dim]
			copy(row, baseAt(bi))
			row[k] = logLambda
			starts[i] = row
		}
	}
	return starts
}

// SortedProductivities returns project names and ρ values sorted by
// project name, for deterministic reporting.
func (r *Result) SortedProductivities() (projects []string, rhos []float64) {
	for p := range r.Productivities {
		projects = append(projects, p)
	}
	sort.Strings(projects)
	rhos = make([]float64, len(projects))
	for i, p := range projects {
		rhos[i] = r.Productivities[p]
	}
	return projects, rhos
}
