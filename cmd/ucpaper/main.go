// Command ucpaper regenerates the tables and figures of the
// µComplexity paper (MICRO 2005) from this reproduction's own
// machinery.
//
// Usage:
//
//	ucpaper -table 1|2|3|4        print one table
//	ucpaper -figure 2|3|4|5|6     print one figure
//	ucpaper -aicbic               print the Section 5.1.1 comparison
//	ucpaper -all                  print everything (default)
//	ucpaper -corpus-scale N       generate a seeded N-component corpus
//	                              and re-run the Figure 6 accounting
//	                              sweep on it (per-component timing and
//	                              session sharing included)
//	ucpaper -corpus-seed S        generator seed for -corpus-scale
//	                              (default 1)
//	ucpaper -parallel N           bound the worker pools (0 = all
//	                              cores, 1 = sequential; results are
//	                              identical for every value)
//	ucpaper -cache-dir DIR        cache synthesis measurements on disk
//	                              (default $UCOMPLEXITY_CACHE; results
//	                              are identical with and without it)
//	ucpaper -cache-verify         recompute every cache hit and fail
//	                              on any mismatch
//	ucpaper -cache-stats          report the cache's on-disk footprint
//	                              (entries, bytes, compression ratio)
//	                              and warm-path decode cost on stderr
//	ucpaper -elab-stats           report the session elaboration
//	                              cache's subtree hit/miss/reuse
//	                              counters on stderr
//	ucpaper -session-stats        report the measurement session's
//	                              signature sharing (planned /
//	                              synthesized / shared) on stderr
//	ucpaper -cpuprofile FILE      write a CPU profile of the run
//	ucpaper -memprofile FILE      write a heap profile of the run
//
// The corpus experiments (Figure 6 and the timing extension) run
// through one shared measurement session: the corpus is parsed once
// and each distinct (module, parameters) signature is synthesized
// exactly once across everything the invocation prints. With a warm
// cache they skip elaboration and synthesis entirely.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cache"
	"repro/internal/elab"
	"repro/internal/paper"
)

func main() {
	tableN := flag.Int("table", 0, "print table N (1-4)")
	figureN := flag.Int("figure", 0, "print figure N (2-6)")
	aicbic := flag.Bool("aicbic", false, "print the AIC/BIC model comparison")
	extension := flag.Bool("extension", false, "print the timing-aware estimator extension experiment")
	all := flag.Bool("all", false, "print every table and figure")
	corpusScale := flag.Int("corpus-scale", 0, "run the accounting sweep on a generated corpus of N components")
	corpusSeed := flag.Uint64("corpus-seed", 1, "generator seed for -corpus-scale")
	par := flag.Int("parallel", 0, "worker pool bound: 0 = GOMAXPROCS, 1 = sequential (results are identical)")
	cacheDir := flag.String("cache-dir", cache.DefaultDir(), "measurement cache directory (default $"+cache.EnvVar+"; empty = no cache)")
	cacheVerify := flag.Bool("cache-verify", false, "recompute every cache hit and compare (consistency check)")
	cacheStats := flag.Bool("cache-stats", false, "report cache disk footprint and decode cost on stderr")
	elabStats := flag.Bool("elab-stats", false, "report session elaboration-cache counters on stderr")
	sessionStats := flag.Bool("session-stats", false, "report measurement-session signature sharing on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write CPU profile to file")
	memProfile := flag.String("memprofile", "", "write heap profile to file")
	flag.Parse()

	if !*aicbic && !*extension && *tableN == 0 && *figureN == 0 && *corpusScale == 0 {
		*all = true
	}
	if err := realMain(*tableN, *figureN, *aicbic, *extension, *all, *corpusScale, *corpusSeed, *par, *cacheDir, *cacheVerify, *cacheStats, *elabStats, *sessionStats, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "ucpaper:", err)
		os.Exit(1)
	}
}

func realMain(tableN, figureN int, aicbic, extension, all bool, corpusScale int, corpusSeed uint64, par int, cacheDir string, cacheVerify, cacheStats, elabStats, sessionStats bool, cpuProfile, memProfile string) error {
	opts := paper.Opts{Concurrency: par}
	// The corpus-measuring experiments share one session so a run that
	// prints several of them parses the corpus once and synthesizes
	// each distinct signature once across all of them. (-corpus-scale
	// builds its own session over the generated design.)
	if all || figureN == 6 || extension || (sessionStats && corpusScale == 0) {
		sess, err := paper.NewSession()
		if err != nil {
			return err
		}
		opts.Session = sess
		if sessionStats {
			defer func() {
				s := sess.Stats()
				e := sess.ElabStats()
				fmt.Fprintf(os.Stderr, "session: %d components measured, %d signatures planned, %d synthesized, %d shared; elab cache %d hits, %d misses\n",
					s.Components, s.Planned, s.Synthesized, s.Shared, e.Hits, e.Misses)
			}()
		}
	}
	if cacheDir != "" {
		c, err := cache.Open(cacheDir)
		if err != nil {
			return err
		}
		c.SetVerify(cacheVerify)
		opts.Cache = c
		defer func() {
			s := c.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d verified (%s)\n", s.Hits, s.Misses, s.VerifyChecks, cacheDir)
			if cacheStats {
				printCacheStats(c)
			}
		}()
	} else if cacheVerify {
		return fmt.Errorf("-cache-verify needs a cache (-cache-dir or $%s)", cache.EnvVar)
	} else if cacheStats {
		return fmt.Errorf("-cache-stats needs a cache (-cache-dir or $%s)", cache.EnvVar)
	}
	if elabStats {
		rec := &elab.StatsRecorder{}
		opts.ElabStats = rec
		defer func() {
			s, probeHits, probeMisses := rec.Snapshot()
			fmt.Fprintf(os.Stderr, "elab: %d subtree hits, %d misses, %d instances reused; %d probe hits, %d probe misses\n",
				s.Hits, s.Misses, s.InstancesReused, probeHits, probeMisses)
		}()
	}

	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ucpaper:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ucpaper:", err)
			}
		}()
	}

	if corpusScale > 0 {
		res, err := paper.CorpusScale(corpusScale, corpusSeed, opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if sessionStats {
			s := res.Session
			fmt.Fprintf(os.Stderr, "session: %d components measured, %d signatures planned, %d synthesized, %d shared\n",
				s.Components, s.Planned, s.Synthesized, s.Shared)
		}
		if !all && tableN == 0 && figureN == 0 && !aicbic && !extension {
			return nil
		}
	}
	return run(tableN, figureN, aicbic, extension, all, opts)
}

// printCacheStats reports the on-disk footprint (one directory scan)
// and this run's warm-path decode accounting on stderr.
func printCacheStats(c *cache.Cache) {
	s := c.Stats()
	ds, err := c.DiskStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucpaper: cache-stats:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cache-stats: %d entries, %d bytes on disk (%s)\n", ds.Entries, ds.Bytes, c.Dir())
	if s.BytesStored > 0 {
		fmt.Fprintf(os.Stderr, "cache-stats: read %d stored bytes -> %d raw bytes (%.2fx compression), decode %.3f ms\n",
			s.BytesStored, s.BytesRaw, float64(s.BytesRaw)/float64(s.BytesStored), float64(s.DecodeNanos)/1e6)
	}
	for _, row := range cache.KindRows(ds, c.KindStats()) {
		fmt.Fprintln(os.Stderr, "cache-stats:", row)
	}
}

func run(tableN, figureN int, aicbic, extension, all bool, opts paper.Opts) error {
	par := opts.Concurrency
	table := func(n int) error {
		switch n {
		case 1:
			fmt.Println(paper.Table1())
		case 2:
			fmt.Println(paper.Table2())
		case 3:
			fmt.Println(paper.Table3())
		case 4:
			t4, err := paper.Table4N(par)
			if err != nil {
				return err
			}
			fmt.Println(t4)
		default:
			return fmt.Errorf("no table %d (have 1-4)", n)
		}
		return nil
	}
	figure := func(n int) error {
		switch n {
		case 2:
			fmt.Println(paper.Figure2())
		case 3:
			fmt.Println(paper.Figure3())
		case 4:
			f4, err := paper.Figure4N(par)
			if err != nil {
				return err
			}
			fmt.Println(f4.Plot)
		case 5:
			f5, err := paper.Figure5N(par)
			if err != nil {
				return err
			}
			fmt.Println(f5.Plot)
		case 6:
			f6, err := paper.Figure6Opts(opts)
			if err != nil {
				return err
			}
			fmt.Println(f6)
		default:
			return fmt.Errorf("no figure %d (have 2-6)", n)
		}
		return nil
	}

	if all {
		for n := 1; n <= 4; n++ {
			if err := table(n); err != nil {
				return err
			}
		}
		res, err := paper.AICBICN(par)
		if err != nil {
			return err
		}
		fmt.Println(res)
		for n := 2; n <= 6; n++ {
			if err := figure(n); err != nil {
				return err
			}
		}
		ext, err := paper.TimingAwareOpts(opts)
		if err != nil {
			return err
		}
		fmt.Println(ext)
		return nil
	}
	if tableN != 0 {
		if err := table(tableN); err != nil {
			return err
		}
	}
	if figureN != 0 {
		if err := figure(figureN); err != nil {
			return err
		}
	}
	if aicbic {
		res, err := paper.AICBICN(par)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if extension {
		ext, err := paper.TimingAwareOpts(opts)
		if err != nil {
			return err
		}
		fmt.Println(ext)
	}
	return nil
}
