// Package parallel is the repository's bounded concurrency layer: a
// stdlib-only worker pool with deterministic, ordered result
// collection and first-error propagation.
//
// Every fan-out in the measure→fit pipeline (multi-start optimizer
// restarts, per-estimator calibrations, per-component corpus
// measurements, parameter-minimization probes) goes through this
// package instead of spawning one goroutine per item. The pool is
// bounded by a Concurrency knob with two fixed points:
//
//   - 0 (or negative) means runtime.GOMAXPROCS(0) workers — use the
//     whole machine;
//   - 1 means the exact sequential path — fn is called in the calling
//     goroutine in index order with no channel or goroutine overhead,
//     so tests can diff parallel results against a pure sequential
//     run.
//
// Determinism contract: work functions must not communicate with each
// other, and results are always collected into index order. Under that
// contract every exported function returns bit-identical values for
// any worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Concurrency knob to an effective worker count:
// values below 1 mean GOMAXPROCS, anything else is returned as-is.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach calls fn(0) … fn(n-1) on at most Workers(workers) concurrent
// goroutines and waits for completion.
//
// Error propagation is "first error by index": among the calls that
// ran and failed, the error of the lowest index is returned. After any
// failure, not-yet-started indices are skipped (already-running calls
// finish). With workers == 1 this degenerates to a plain loop that
// stops at the first error.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// ForEachWorker is ForEach with the stable worker id passed to fn:
// worker is in [0, min(Workers(workers), n)) and identifies the
// goroutine running the call, so two calls with the same worker id
// never overlap. Callers use it to own per-worker mutable scratch
// (arenas, reusable buffers) without locking. With workers == 1 every
// call runs in the calling goroutine with worker id 0 — the exact
// sequential path.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}(g)
	}
	wg.Wait()
	return first
}

// Map calls fn(0) … fn(n-1) on at most Workers(workers) concurrent
// goroutines and returns the results in index order. On error the
// partial results are discarded and the lowest-index error is returned
// (see ForEach).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapWorker is Map with the stable worker id passed to fn (see
// ForEachWorker).
func MapWorker[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachWorker(workers, n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Local is a lazily-populated set of per-worker values for use with
// ForEachWorker/MapWorker: Get(worker) returns the worker's value,
// creating it on first use. It is not itself synchronized — the
// per-worker exclusivity of the pool is what makes it safe — so a
// Local must only be used from within one ForEachWorker/MapWorker call
// at a time.
type Local[T any] struct {
	news func() T
	vals []T
	have []bool
}

// NewLocal returns a Local whose values are created by news, sized for
// the effective worker count of a Concurrency knob.
func NewLocal[T any](workers int, news func() T) *Local[T] {
	w := Workers(workers)
	return &Local[T]{news: news, vals: make([]T, w), have: make([]bool, w)}
}

// Get returns worker's value, creating it on first use.
func (l *Local[T]) Get(worker int) T {
	if !l.have[worker] {
		l.vals[worker] = l.news()
		l.have[worker] = true
	}
	return l.vals[worker]
}

// All returns the values created so far, in worker order.
func (l *Local[T]) All() []T {
	out := make([]T, 0, len(l.vals))
	for i, ok := range l.have {
		if ok {
			out = append(out, l.vals[i])
		}
	}
	return out
}

// Group runs a fixed set of heterogeneous tasks with the pool's error
// semantics: Group(w, a, b, c) is ForEach over the three closures.
func Group(workers int, fns ...func() error) error {
	return ForEach(workers, len(fns), func(i int) error { return fns[i]() })
}

// FirstMatch finds the lowest index i in [0, n) for which pred(i)
// reports true, evaluating candidates in batches of Workers(workers)
// so that the scan can stop as soon as a batch contains a match. It
// returns -1 if no index matches. The result is identical to a
// sequential lowest-first scan; the only difference is that up to one
// batch of extra candidates past the match may be evaluated.
//
// It is the parallel analogue of "try candidates in ascending order,
// keep the first that fits" — the accounting procedure's parameter
// search (Section 2.2 of the paper) is its main client.
func FirstMatch(workers, n int, pred func(i int) (bool, error)) (int, error) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		batch, err := Map(workers, hi-lo, func(i int) (bool, error) {
			return pred(lo + i)
		})
		if err != nil {
			return -1, err
		}
		for i, ok := range batch {
			if ok {
				return lo + i, nil
			}
		}
	}
	return -1, nil
}
