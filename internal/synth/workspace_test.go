package synth_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// TestWorkspaceLoweringBitIdentical pins the scratch-arena tentpole at
// the synth layer: for every corpus component, in every template/dedup
// mode, lowering through one workspace — reused dirty across all
// components, the way a pool worker holds it — produces raw and
// optimized netlists whose hashes match the fresh nil-workspace path
// exactly. Workspace mode is nameless, and Netlist.Hash covers
// everything but per-net debug names, so hash equality here is the
// structural bit-identity the measurement cache depends on.
func TestWorkspaceLoweringBitIdentical(t *testing.T) {
	ws := synth.NewWorkspace()
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		for _, mode := range []synth.LowerOptions{
			{},
			{DedupInstances: true},
			{DisableTemplates: true},
		} {
			run := func(ws *synth.Workspace) *synth.Result {
				inst, report, err := elab.Elaborate(d, c.Top, nil)
				if err != nil {
					t.Fatalf("%s: %v", c.Label(), err)
				}
				opts := mode
				opts.Workspace = ws
				res, err := synth.SynthesizeInstance(inst, report, opts)
				if err != nil {
					t.Fatalf("%s: %v", c.Label(), err)
				}
				return res
			}
			fresh := run(nil)
			reused := run(ws)
			if fresh.Raw.Hash() != reused.Raw.Hash() {
				t.Errorf("%s %+v: workspace raw hash diverges from fresh lowering", c.Label(), mode)
			}
			if fresh.Optimized.Hash() != reused.Optimized.Hash() {
				t.Errorf("%s %+v: workspace optimized hash diverges from fresh lowering", c.Label(), mode)
			}
			if fresh.Raw.NumNets() != reused.Raw.NumNets() {
				t.Errorf("%s %+v: workspace raw nets %d, fresh %d",
					c.Label(), mode, reused.Raw.NumNets(), fresh.Raw.NumNets())
			}
			if fresh.Deduped != reused.Deduped || fresh.Stamped != reused.Stamped {
				t.Errorf("%s %+v: workspace stats (dedup %d, stamp %d) != fresh (%d, %d)",
					c.Label(), mode, reused.Deduped, reused.Stamped, fresh.Deduped, fresh.Stamped)
			}
			if stats := fresh.OptStats; stats != reused.OptStats {
				t.Errorf("%s %+v: workspace optimizer stats %+v != fresh %+v",
					c.Label(), mode, reused.OptStats, stats)
			}
			// Nameless mode must still carry everything the hash covers:
			// port-bit and RAM names are real, net debug names are not.
			for i := range fresh.Raw.Inputs {
				if fresh.Raw.Inputs[i].Name != reused.Raw.Inputs[i].Name {
					t.Fatalf("%s: input %d name %q != %q", c.Label(), i,
						reused.Raw.Inputs[i].Name, fresh.Raw.Inputs[i].Name)
				}
			}
			if reused.Raw.NumNets() > 0 && reused.Raw.NetName(netlist.NetID(reused.Raw.NumNets()-1)) != "" {
				t.Errorf("%s: workspace lowering materialized net debug names", c.Label())
			}
		}
	}
}
