package power

import (
	"testing"

	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

func netlistOf(t *testing.T, src, top string, overrides map[string]int64) *netlist.Netlist {
	t.Helper()
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(d, top, overrides)
	if err != nil {
		t.Fatal(err)
	}
	return r.Optimized
}

func TestPowerScalesWithSize(t *testing.T) {
	lib := stdcell.Default180nm()
	src := `
module add #(parameter W = 8) (input [W-1:0] a, b, output [W-1:0] s);
  assign s = a + b;
endmodule`
	small := Analyze(netlistOf(t, src, "add", map[string]int64{"W": 4}), lib, 100)
	big := Analyze(netlistOf(t, src, "add", map[string]int64{"W": 32}), lib, 100)
	if big.DynamicMW <= small.DynamicMW {
		t.Errorf("dynamic power must grow with size: %v vs %v", small.DynamicMW, big.DynamicMW)
	}
	if big.StaticUW <= small.StaticUW {
		t.Errorf("static power must grow with size: %v vs %v", small.StaticUW, big.StaticUW)
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	lib := stdcell.Default180nm()
	nl := netlistOf(t, `
module m (input [7:0] a, b, output [7:0] y);
  assign y = a ^ b;
endmodule`, "m", nil)
	p100 := Analyze(nl, lib, 100)
	p200 := Analyze(nl, lib, 200)
	if p200.DynamicMW <= p100.DynamicMW {
		t.Error("dynamic power must scale with frequency")
	}
	// Leakage is frequency independent.
	if p200.StaticUW != p100.StaticUW {
		t.Error("static power must not depend on frequency")
	}
	// Linear scaling.
	ratio := p200.DynamicMW / p100.DynamicMW
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("frequency scaling ratio = %v, want 2", ratio)
	}
}

func TestPowerConstantLogicConsumesNothingDynamic(t *testing.T) {
	lib := stdcell.Default180nm()
	// Output tied to a constant: everything folds away, so dynamic
	// power is zero.
	nl := netlistOf(t, `
module m (input a, output y);
  assign y = a & 1'b0;
endmodule`, "m", nil)
	p := Analyze(nl, lib, 100)
	if p.DynamicMW != 0 {
		t.Errorf("dynamic power = %v, want 0 for constant design", p.DynamicMW)
	}
}

func TestPowerRAMContributes(t *testing.T) {
	lib := stdcell.Default180nm()
	ram := netlistOf(t, `
module m (input clk, we, input [3:0] wa, ra, input [7:0] wd, output [7:0] rd);
  reg [7:0] mem [0:15];
  always @(posedge clk) if (we) mem[wa] <= wd;
  assign rd = mem[ra];
endmodule`, "m", nil)
	p := Analyze(ram, lib, 100)
	if p.DynamicMW <= 0 {
		t.Error("RAM design must consume dynamic power")
	}
	if p.StaticUW <= 0 {
		t.Error("RAM design must leak")
	}
}

func TestPowerProbabilitiesBounded(t *testing.T) {
	lib := stdcell.Default180nm()
	// A deep mixed design; the estimate must stay finite and positive.
	nl := netlistOf(t, `
module m (input clk, input [15:0] a, b, output reg [15:0] acc);
  always @(posedge clk) acc <= acc + (a ^ b) * 3;
endmodule`, "m", nil)
	p := Analyze(nl, lib, 250)
	if p.DynamicMW <= 0 || p.DynamicMW > 1e6 {
		t.Errorf("dynamic power = %v not plausible", p.DynamicMW)
	}
}
