// Package synth lowers elaborated µHDL (internal/elab) to a flattened
// gate-level netlist (internal/netlist), playing the role Synopsys
// Design Compiler plays in the µComplexity paper's measurement flow.
//
// The lowering is structural and complete:
//
//   - every multi-bit signal is bit-blasted to single-bit nets;
//   - expressions become primitive-gate networks (ripple-carry adders
//     and subtractors, array multipliers, comparator chains, barrel
//     shifters, mux trees, reduction trees);
//   - clocked always blocks become D flip-flops via per-bit symbolic
//     execution (unassigned paths hold through a Q-feedback mux);
//   - combinational always blocks with incomplete assignment infer
//     transparent latches with a synthesized enable condition;
//   - memory arrays (reg [W-1:0] m [0:D-1]) become RAM macros with a
//     synchronous write port and one asynchronous read port per read
//     site;
//   - the module hierarchy is flattened through port aliasing (no
//     buffer cells at boundaries), then the netlist is optimized by
//     constant propagation, structural hashing, and dead-logic removal.
//
// Deliberate simplifications, documented for the reproduction: all
// arithmetic is unsigned; division and modulo are supported only by
// constant powers of two; asynchronous resets are modeled as
// synchronous (the paper's metrics are structural, not timing
// semantics); negedge clocks are treated as posedge.
package synth
