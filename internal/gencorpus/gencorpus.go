// Package gencorpus is a seeded, fully deterministic µHDL design
// generator: it emits synthetic measurement corpora of arbitrary size
// so the pipeline can be exercised — and the paper's accounting
// experiment re-run — far off the fixed 18-component corpus of
// internal/designs.
//
// Determinism contract: Generate is a pure function of its Config.
// The same config yields byte-identical sources (and therefore
// identical design fingerprints) on every run, at every GOMAXPROCS,
// on every platform — generation is single-threaded integer
// arithmetic over a splitmix64 stream, with no map iteration, no
// floating point, and no global state. Distinct seeds yield distinct
// corpora.
//
// The generated designs are deliberately shaped like the hand-written
// corpus: parameterized pipelines, FIFO banks, register-file
// clusters, decoder trees, and crossbars, instantiating a shared
// building-block library (gen_lib.v) plus a per-group lane module so
// that components share submodule subtrees — the dedup rule, the
// template-stamped lowering, and the subtree caching layers all get
// exercised at scale. Sharing is controllable: components are dealt
// into ShareGroups groups, and components within one group draw their
// parameter bindings from one small per-group pool, so fewer groups
// mean more repeated (module, parameters) design points across the
// corpus.
package gencorpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/hdl"
)

// Config parameterizes one generated corpus.
type Config struct {
	// Components is the number of top-level components to generate
	// (each one measurement unit per accounting mode).
	Components int
	// Seed selects the corpus. Two configs differing only in Seed
	// produce structurally distinct corpora.
	Seed uint64
	// ShareGroups controls cross-component sharing: components are
	// dealt round-robin into this many groups, each group drawing its
	// module parameterizations from one small seeded pool and sharing
	// one group-local lane module. 0 means an automatic sqrt-ish
	// default (at least 3 so the mixed-effects fits have enough
	// projects, at most 24).
	ShareGroups int
}

// groups resolves the ShareGroups knob.
func (c Config) groups() int {
	if c.ShareGroups > 0 {
		if c.ShareGroups > c.Components {
			return c.Components
		}
		return c.ShareGroups
	}
	g := 0
	for g*g < c.Components {
		g++
	}
	if g < 3 {
		g = 3
	}
	if g > 24 {
		g = 24
	}
	if g > c.Components {
		g = c.Components
	}
	return g
}

// Component is one generated top-level design unit.
type Component struct {
	// Top is the component's top module name.
	Top string
	// Project labels the component's share group ("Gen03", ...); the
	// scale experiment's mixed-effects fits group by it.
	Project string
	// File names the source file declaring the component.
	File string
	// Effort is the component's synthetic design effort in
	// person-months: a deterministic, seeded log-normal-ish draw
	// around the component's structural size, so estimator fits over
	// a generated corpus have a ground truth to calibrate against.
	Effort float64
}

// Corpus is one generated corpus: sources plus the component table.
type Corpus struct {
	Config     Config
	Files      map[string]string // file name → µHDL source text
	Components []Component       // in generation order
}

// Generate emits the corpus for cfg. It is a pure function: identical
// configs yield byte-identical corpora.
func Generate(cfg Config) (*Corpus, error) {
	if cfg.Components < 1 {
		return nil, fmt.Errorf("gencorpus: Components must be >= 1 (got %d)", cfg.Components)
	}
	g := &generator{cfg: cfg, rng: newRng(cfg.Seed)}
	return g.corpus(), nil
}

// FileNames returns the corpus's file names, sorted (the parse order).
func (c *Corpus) FileNames() []string {
	names := make([]string, 0, len(c.Files))
	for n := range c.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fingerprint is a stable content hash over the corpus sources (file
// names and bytes, in sorted name order). Two corpora fingerprint
// equal exactly when they are byte-identical file for file.
func (c *Corpus) Fingerprint() string {
	h := sha256.New()
	for _, name := range c.FileNames() {
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(c.Files[name]))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Design parses the corpus into one hdl.Design. Files are parsed on a
// bounded pool (0 = GOMAXPROCS, 1 = sequential); the design is
// bit-identical for every worker count.
func (c *Corpus) Design(concurrency int) (*hdl.Design, error) {
	return hdl.ParseDesignParallel(c.Files, concurrency)
}

// WriteFiles writes the corpus sources into dir (created if needed),
// one .v file each, and returns the file paths in sorted order. It is
// the ucmetrics -generate escape hatch: emitted corpora can be
// measured, watched, and diffed like any user design.
func (c *Corpus) WriteFiles(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names := c.FileNames()
	paths := make([]string, 0, len(names))
	for _, name := range names {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(c.Files[name]), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// rng is a splitmix64 stream: tiny, fast, and — unlike math/rand —
// guaranteed stable here forever, because determinism across Go
// releases is part of the generator's contract.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	// Mix the seed once so seed 0 and seed 1 diverge immediately.
	r := &rng{state: seed ^ 0x9e3779b97f4a7c15}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// pick returns one element of pool.
func (r *rng) pick(pool []int) int {
	return pool[r.intn(len(pool))]
}

// sub derives an independent stream for a labelled sub-scope, so the
// bytes of one component do not depend on how many random draws an
// earlier component consumed.
func (r *rng) sub(label string, i int) *rng {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%d", r.state, label, i)))
	var s uint64
	for b := 0; b < 8; b++ {
		s = s<<8 | uint64(h[b])
	}
	return newRng(s)
}

// generator carries the in-progress corpus.
type generator struct {
	cfg Config
	rng *rng
}

// pools are one share group's parameter pools: every component in the
// group draws its widths, depths, and address widths from these few
// values, so group-mates repeatedly land on the same (module,
// parameters) design points.
type pools struct {
	widths []int
	depths []int
	aws    []int
	repls  []int
	laneW  int
}

func newPools(r *rng) pools {
	widthUniverse := []int{4, 6, 8, 12, 16, 20, 24, 32}
	depthUniverse := []int{2, 3, 4, 5, 6, 8}
	awUniverse := []int{2, 3, 4, 5}
	p := pools{
		depths: depthUniverse,
		repls:  []int{2, 3, 4},
	}
	// Two or three widths per group: enough variety to exercise
	// distinct signatures, few enough that collisions are common.
	nw := 2 + r.intn(2)
	for i := 0; i < nw; i++ {
		p.widths = append(p.widths, widthUniverse[r.intn(len(widthUniverse))])
	}
	p.aws = []int{awUniverse[r.intn(len(awUniverse))], awUniverse[r.intn(len(awUniverse))]}
	p.laneW = p.widths[0]
	return p
}

func (g *generator) corpus() *Corpus {
	cfg := g.cfg
	ng := cfg.groups()
	c := &Corpus{Config: cfg, Files: map[string]string{"gen_lib.v": libSrc}}

	groupPools := make([]pools, ng)
	for gi := 0; gi < ng; gi++ {
		gr := g.rng.sub("group", gi)
		groupPools[gi] = newPools(gr)
		c.Files[fmt.Sprintf("gen_grp%03d.v", gi)] = emitGroupLane(gi, groupPools[gi].laneW)
	}

	for i := 0; i < cfg.Components; i++ {
		gi := i % ng
		cr := g.rng.sub("component", i)
		fam := families[i%len(families)]
		name := fmt.Sprintf("gen_c%04d_%s", i, fam.key)
		src, score := fam.emit(name, gi, groupPools[gi], cr)
		file := fmt.Sprintf("gen_c%04d.v", i)
		c.Files[file] = src
		c.Components = append(c.Components, Component{
			Top:     name,
			Project: fmt.Sprintf("Gen%02d", gi),
			File:    file,
			Effort:  syntheticEffort(score, cr),
		})
	}
	return c
}

// effortMultipliers is the log-normal-ish noise table for synthetic
// efforts, in thousandths (spanning ~0.4x..3x around the size score).
var effortMultipliers = []int{400, 550, 700, 850, 1000, 1150, 1300, 1500, 1750, 2000, 2400, 3000}

// syntheticEffort turns a structural size score into person-months:
// score scaled by a seeded multiplicative noise draw, in pure integer
// arithmetic so the value is identical on every platform.
func syntheticEffort(score int, r *rng) float64 {
	mult := effortMultipliers[r.intn(len(effortMultipliers))]
	centi := score * mult / 100 // person-month hundredths
	if centi < 10 {
		centi = 10 // floor at 0.1 person-months, like the paper's smallest rows
	}
	return float64(centi) / 100
}
