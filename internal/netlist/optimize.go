package netlist

import (
	"fmt"

	"repro/internal/scratch"
)

// OptimizeResult reports what the optimization passes removed.
type OptimizeResult struct {
	ConstFolded int // cells simplified away by constant propagation
	Merged      int // cells merged by structural hashing (CSE)
	DeadRemoved int // cells removed as unreachable from any output
	// Iterations is the number of equivalent full sweeps the worklist
	// performed: total cell visits divided by the number of
	// combinational cells, rounded up. A netlist that settles in the
	// initial topological sweep (the common case) reports 1.
	Iterations int
	// Converged reports that the worklist drained within the revisit
	// budget. It is false only when Optimize also returns an error.
	Converged bool
}

// Optimize runs the standard post-synthesis cleanup: constant folding,
// structural hashing, buffer elision, and dead-logic removal. The
// passes preserve the observable behaviour at primary outputs and
// RAM/FF state. Optimize returns a new Netlist; the input is not
// modified.
//
// The accounting experiments (Figure 6) depend on this pass: the paper
// defines minimal parameterization in terms of what "constant
// propagation and dead code elimination" would remove, and this is
// where those removals actually happen for synthesis metrics.
//
// Implementation: a single worklist-driven sweep instead of a
// rebuild-the-world fixpoint. Net replacements live in a union-find
// with path compression; structural hashing uses one persistent
// open-addressed table; a dirty-cell worklist re-examines exactly the
// cells whose resolved inputs changed after they were first processed.
// Cells are seeded in topological order, so on a DAG every cell sees
// its fully-substituted inputs the first time and the worklist drains
// without revisits — O(cells + edges) total. The output is
// bit-identical (same Hash()) to the old iterated fixpoint: processing
// order, folding rules, CSE winner selection, and dead-removal roots
// are all preserved, which internal/netlist's golden tests pin against
// a reference implementation of the old pass.
func Optimize(n *Netlist) (*Netlist, OptimizeResult, error) {
	return OptimizeWS(n, nil)
}

// OptimizeWS is Optimize with the pass's scratch (union-find, consumer
// adjacency, hash table, worklist, liveness) drawn from a reusable
// workspace. A nil workspace allocates fresh, which is exactly
// Optimize; the returned netlist is freshly allocated either way and
// never aliases workspace memory. The output is bit-identical for any
// workspace, dirty or fresh — the property tests pin ws == nil-ws.
func OptimizeWS(n *Netlist, ws *Workspace) (*Netlist, OptimizeResult, error) {
	res := OptimizeResult{Converged: true}
	var order []int
	var err error
	if ws == nil {
		order, err = n.TopoOrder()
	} else {
		// The optimizer's input is typically discarded right after the
		// pass, so its derived tables go into workspace scratch instead
		// of being memoized into the netlist.
		_, order, err = ws.topoInto(n)
	}
	if err != nil {
		return nil, res, err
	}
	numNets := n.NumNets()
	nc := len(n.Cells)
	c0, c1 := n.Const0, n.Const1
	if ws == nil {
		ws = &Workspace{}
	}

	// Union-find over nets. A removed cell's output is unioned into its
	// replacement net; the replacement is always a class root at union
	// time (constants, ports, RAM outputs, and kept-cell outputs are
	// never unioned into anything), so find() resolves every pin to the
	// same terminal net the old chain-chasing substitution map produced.
	// ring links the members of each class in a circular list so a
	// later union can find every raw net whose consumers must be
	// revisited.
	parent := scratch.Raw(&ws.oParent, numNets)
	ring := scratch.Raw(&ws.oRing, numNets)
	for i := range parent {
		parent[i] = NetID(i)
		ring[i] = int32(i)
	}
	find := func(id NetID) NetID {
		if id == Nil {
			return Nil
		}
		root := id
		for parent[root] != root {
			root = parent[root]
		}
		for parent[id] != root {
			parent[id], id = root, parent[id]
		}
		return root
	}

	// Consumer adjacency (CSR) over combinational cells, keyed by raw
	// pin ids. Sequential cells are never re-examined (they do not fold)
	// so they carry no edges.
	start := scratch.Zero(&ws.oStart, numNets+1)
	for _, ci := range order {
		c := &n.Cells[ci]
		for _, in := range c.Inputs() {
			if in != Nil {
				start[in+1]++
			}
		}
	}
	for i := 0; i < numNets; i++ {
		start[i+1] += start[i]
	}
	consumers := scratch.Raw(&ws.oConsumers, int(start[numNets]))
	fill := scratch.Zero(&ws.oFill, numNets)
	for _, ci := range order {
		c := &n.Cells[ci]
		for _, in := range c.Inputs() {
			if in != Nil {
				consumers[int(start[in])+int(fill[in])] = int32(ci)
				fill[in]++
			}
		}
	}

	// Persistent structural-hash table (open addressing, linear probe).
	// Entries are never deleted: a stale entry's key contains a net that
	// was a class root when the entry was written and has since been
	// merged away, and find() never returns such a net again, so stale
	// keys are unmatchable by construction.
	size := 1
	for size < 2*len(order)+8 {
		size <<= 1
	}
	keys := scratch.Zero(&ws.oKeys, size)
	kfull := scratch.Zero(&ws.oKfull, size)
	kout := scratch.Zero(&ws.oKout, size)
	entries := 0
	hashOf := func(k hashKey) uint32 {
		h := uint64(k.t)
		for _, v := range [4]NetID{k.a, k.b, k.c, k.clk} {
			h ^= uint64(uint32(v)) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		}
		return uint32(h ^ (h >> 32))
	}
	// lookup returns the slot holding k, or the insertion slot for it.
	lookup := func(k hashKey) (slot int, found bool) {
		mask := size - 1
		i := int(hashOf(k)) & mask
		for {
			if !kfull[i] {
				return i, false
			}
			if keys[i] == k {
				return i, true
			}
			i = (i + 1) & mask
		}
	}
	grow := func() {
		oldKeys, oldFull, oldOut := keys, kfull, kout
		size <<= 1
		keys = make([]hashKey, size)
		kfull = make([]bool, size)
		kout = make([]NetID, size)
		for i, full := range oldFull {
			if !full {
				continue
			}
			slot, _ := lookup(oldKeys[i])
			keys[slot] = oldKeys[i]
			kfull[slot] = true
			kout[slot] = oldOut[i]
		}
		ws.oKeys, ws.oKfull, ws.oKout = keys, kfull, kout
	}

	// Worklist, seeded with every combinational cell in topological
	// order so the initial sweep reproduces the old pass exactly.
	queue := scratch.Raw(&ws.oQueue, len(order))
	inQueue := scratch.Zero(&ws.oInQueue, nc)
	for i, ci := range order {
		queue[i] = int32(ci)
		inQueue[ci] = true
	}
	processed := scratch.Zero(&ws.oProcessed, nc)
	removed := scratch.Zero(&ws.oRemoved, nc)

	union := func(from, to NetID) {
		rf, rt := find(from), find(to)
		if rf == rt {
			return
		}
		// The resolved inputs of every already-processed consumer of
		// from's class just changed: put them back on the worklist.
		m := rf
		for {
			for j := start[m]; j < start[m+1]; j++ {
				ci := consumers[j]
				if processed[ci] && !removed[ci] && !inQueue[ci] {
					inQueue[ci] = true
					queue = append(queue, ci)
				}
			}
			m = NetID(ring[m])
			if m == rf {
				break
			}
		}
		parent[rf] = rt
		ring[rf], ring[rt] = ring[rt], ring[rf]
	}

	pops := 0
	maxPops := 50 * (len(order) + 1)
	for head := 0; head < len(queue); head++ {
		ci := int(queue[head])
		inQueue[ci] = false
		if removed[ci] {
			continue
		}
		pops++
		if pops > maxPops {
			res.Converged = false
			res.Iterations = maxPops / (len(order) + 1)
			return nil, res, fmt.Errorf("netlist: optimize did not converge after %d cell visits (%d cells)", pops, len(order))
		}
		processed[ci] = true
		cell := &n.Cells[ci]
		a := find(cell.In[0])
		b := find(cell.In[1])
		s := find(cell.In[2])

		simplifyTo := func(id NetID) {
			union(cell.Out, id)
			removed[ci] = true
			res.ConstFolded++
		}
		isConst := func(id NetID) (bool, bool) {
			switch id {
			case c0:
				return false, true
			case c1:
				return true, true
			}
			return false, false
		}

		av, aok := isConst(a)
		bv, bok := isConst(b)
		switch cell.Type {
		case Buf:
			simplifyTo(a)
			continue
		case Inv:
			if aok {
				simplifyTo(constNet(!av, c0, c1))
				continue
			}
		case And2:
			switch {
			case aok && !av, bok && !bv:
				simplifyTo(c0)
				continue
			case aok && av:
				simplifyTo(b)
				continue
			case bok && bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(a)
				continue
			}
		case Or2:
			switch {
			case aok && av, bok && bv:
				simplifyTo(c1)
				continue
			case aok && !av:
				simplifyTo(b)
				continue
			case bok && !bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(a)
				continue
			}
		case Nand2:
			if (aok && !av) || (bok && !bv) {
				simplifyTo(c1)
				continue
			}
		case Nor2:
			if (aok && av) || (bok && bv) {
				simplifyTo(c0)
				continue
			}
		case Xor2:
			switch {
			case aok && bok:
				simplifyTo(constNet(av != bv, c0, c1))
				continue
			case aok && !av:
				simplifyTo(b)
				continue
			case bok && !bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(c0)
				continue
			}
		case Xnor2:
			if aok && bok {
				simplifyTo(constNet(av == bv, c0, c1))
				continue
			}
			if a == b {
				simplifyTo(c1)
				continue
			}
		case Mux2:
			sv, sok := isConst(s)
			switch {
			case sok && !sv:
				simplifyTo(a)
				continue
			case sok && sv:
				simplifyTo(b)
				continue
			case a == b:
				simplifyTo(a)
				continue
			case aok && bok && !av && bv:
				simplifyTo(s)
				continue
			}
		}

		// Structural hashing: identical (type, inputs) cells merge.
		// Commutative gates normalize input order.
		ka, kb := a, b
		if commutative(cell.Type) && ka > kb {
			ka, kb = kb, ka
		}
		key := hashKey{t: cell.Type, a: ka, b: kb, c: s, clk: find(cell.Clk)}
		slot, found := lookup(key)
		if found {
			if prev := kout[slot]; prev != cell.Out {
				union(cell.Out, prev)
				removed[ci] = true
				res.Merged++
			}
			continue
		}
		keys[slot] = key
		kfull[slot] = true
		kout[slot] = cell.Out
		if entries++; 2*entries >= size {
			grow()
		}
	}
	if len(order) > 0 {
		res.Iterations = (pops + len(order) - 1) / len(order)
	} else {
		res.Iterations = 1
	}
	ws.oQueue = queue[:0] // capture worklist growth for reuse

	// Dead-logic removal over the folded structure: cells are live only
	// if they reach a primary output or a RAM pin (read-port outputs are
	// RAM-driven and are not roots). A kept cell's output was never
	// unioned into anything, so the driver table indexes by the raw
	// output net.
	driver := scratch.Raw(&ws.oDriver, numNets)
	for i := range driver {
		driver[i] = -1
	}
	for ci := range n.Cells {
		if !removed[ci] {
			driver[n.Cells[ci].Out] = int32(ci)
		}
	}
	live := scratch.Zero(&ws.oLive, nc)
	seenNet := scratch.Zero(&ws.oSeenNet, numNets)
	stack := ws.oStack[:0]
	push := func(id NetID) {
		if id == Nil {
			return
		}
		id = find(id)
		if !seenNet[id] {
			seenNet[id] = true
			stack = append(stack, id)
		}
	}
	for _, p := range n.Outputs {
		push(p.Net)
	}
	for _, r := range n.RAMs {
		push(r.Clk)
		for _, wp := range r.WritePorts {
			push(wp.En)
			for _, bb := range wp.Addr {
				push(bb)
			}
			for _, bb := range wp.Data {
				push(bb)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, bb := range rp.Addr {
				push(bb)
			}
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := driver[id]
		if d < 0 || live[d] {
			continue
		}
		live[d] = true
		c := &n.Cells[d]
		for _, in := range c.Inputs() {
			push(in)
		}
		push(c.Clk)
	}
	ws.oStack = stack[:0]

	// Assemble the output in one pass: surviving cells in original
	// order with inputs resolved through the union-find (outputs of
	// kept cells are never substituted), RAM macros and ports rewritten
	// the same way. The source netlist is never written, so its cached
	// derived structures stay valid.
	nLive := 0
	for ci := range n.Cells {
		if live[ci] {
			nLive++
		} else if !removed[ci] {
			res.DeadRemoved++
		}
	}
	out := &Netlist{
		// Optimization keeps the source net ID space, so the net count
		// and the packed name tables (immutable once set) are shared,
		// not copied.
		Nets:        n.Nets,
		NetNameData: n.NetNameData,
		NetNameOff:  n.NetNameOff,
		Const0:      c0,
		Const1:      c1,
	}
	out.Cells = make([]Cell, 0, nLive)
	for ci := range n.Cells {
		if !live[ci] {
			continue
		}
		c := n.Cells[ci]
		for j := range c.In {
			c.In[j] = find(c.In[j])
		}
		c.Clk = find(c.Clk)
		out.Cells = append(out.Cells, c)
	}
	out.RAMs = make([]*RAM, 0, len(n.RAMs))
	for _, r := range n.RAMs {
		rc := *r
		rc.Clk = find(r.Clk)
		rc.WritePorts = make([]RAMWritePort, len(r.WritePorts))
		for i, wp := range r.WritePorts {
			rc.WritePorts[i] = RAMWritePort{
				En:   find(wp.En),
				Addr: mapIDs(wp.Addr, find),
				Data: mapIDs(wp.Data, find),
			}
		}
		rc.ReadPorts = make([]RAMReadPort, len(r.ReadPorts))
		for i, rp := range r.ReadPorts {
			// Read-port outputs are RAM-driven; no substitution.
			rc.ReadPorts[i] = RAMReadPort{
				Addr: mapIDs(rp.Addr, find),
				Out:  append([]NetID(nil), rp.Out...),
			}
		}
		out.RAMs = append(out.RAMs, &rc)
	}
	out.Inputs = append([]PortBit(nil), n.Inputs...)
	out.Outputs = make([]PortBit, len(n.Outputs))
	for i, p := range n.Outputs {
		out.Outputs[i] = PortBit{Name: p.Name, Net: find(p.Net)}
	}
	return out, res, nil
}

type hashKey struct {
	t       CellType
	a, b, c NetID
	clk     NetID
}

func constNet(v bool, c0, c1 NetID) NetID {
	if v {
		return c1
	}
	return c0
}

func commutative(t CellType) bool {
	switch t {
	case And2, Or2, Nand2, Nor2, Xor2, Xnor2:
		return true
	}
	return false
}

// Validate checks structural invariants: every pin within range, no
// multiple drivers, no combinational cycles. It is used by tests and
// by the synthesizer's own self-checks.
func Validate(n *Netlist) error {
	inRange := func(id NetID) bool { return id == Nil || (id >= 0 && int(id) < n.NumNets()) }
	driven := make([]bool, n.NumNets())
	for i := range n.Cells {
		c := &n.Cells[i]
		for _, in := range c.Inputs() {
			if !inRange(in) {
				return fmt.Errorf("netlist: cell %d input out of range", i)
			}
		}
		if !inRange(c.Clk) || !inRange(c.Out) || c.Out == Nil {
			return fmt.Errorf("netlist: cell %d pins invalid", i)
		}
		if driven[c.Out] {
			return fmt.Errorf("netlist: net %d multiply driven", c.Out)
		}
		driven[c.Out] = true
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}
