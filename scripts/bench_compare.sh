#!/bin/sh
# scripts/bench_compare.sh — diff two BENCH_*.json files produced by
# scripts/bench.sh and fail on performance regressions.
#
# Usage:
#   scripts/bench_compare.sh BENCH_old.json BENCH_new.json
#   TOLERANCE=25 scripts/bench_compare.sh old.json new.json
#
# Exits non-zero if any benchmark present in both files regressed by
# more than TOLERANCE percent (default 10) in ns/op, or if any
# speedup_vs_sequential metric dropped. Benchmarks present in only one file are reported but do not
# fail the comparison. Speedup gates are skipped when either file
# recorded gomaxprocs 1: a single-core runner cannot show parallel
# speedup (it measures pure scheduling overhead, ~0.95x), so gating on
# it would trip spuriously. Sub-10µs benchmarks are reported but never
# fail the gate either: at that scale a count-based -benchtime
# measures timer and scheduler noise, not the code under test.
set -eu

if [ "$#" -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi
old="$1"
new="$2"
tolerance="${TOLERANCE:-10}"
[ -r "$old" ] || { echo "bench_compare: cannot read $old" >&2; exit 2; }
[ -r "$new" ] || { echo "bench_compare: cannot read $new" >&2; exit 2; }

# Each result record is one line of the JSON; pull out the fields we
# compare with awk so the script needs no jq.
extract() {
	awk '
	/"name":/ {
		name = ""; ns = ""; sp = ""; gmp = "-"
		if (match($0, /"name": "[^"]*"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
		}
		if (match($0, /"ns\/op": [0-9.eE+-]+/)) {
			ns = substr($0, RSTART + 9, RLENGTH - 9)
		}
		if (match($0, /"speedup_vs_sequential": [0-9.eE+-]+/)) {
			sp = substr($0, RSTART + 24, RLENGTH - 24)
		}
		if (match($0, /"gomaxprocs": [0-9.eE+-]+/)) {
			gmp = substr($0, RSTART + 14, RLENGTH - 14)
		}
		if (name != "" && ns != "") printf "%s %s %s %s\n", name, ns, (sp == "" ? "-" : sp), gmp
	}
	' "$1"
}

tmp_old="$(mktemp)"
tmp_new="$(mktemp)"
trap 'rm -f "$tmp_old" "$tmp_new"' EXIT
extract "$old" > "$tmp_old"
extract "$new" > "$tmp_new"

awk -v oldfile="$old" -v newfile="$new" -v tol="$tolerance" '
NR == FNR { ns[$1] = $2; sp[$1] = $3; gmp[$1] = $4; next }
{
	name = $1
	if (!(name in ns)) {
		printf "  new       %-50s %12.0f ns/op (not in %s)\n", name, $2, oldfile
		next
	}
	seen[name] = 1
	o = ns[name] + 0; n = $2 + 0
	ratio = (o > 0) ? n / o : 1
	flag = "ok"
	if (ratio > 1 + tol / 100) {
		if (o < 10000 && n < 10000) flag = "noisy"
		else { flag = "REGRESSION"; bad++ }
	}
	else if (ratio < 0.90) flag = "improved"
	printf "  %-9s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", flag, name, o, n, (ratio - 1) * 100
	if (sp[name] != "-" && $3 != "-") {
		if ((gmp[name] != "-" && gmp[name] + 0 == 1) || ($4 != "-" && $4 + 0 == 1)) {
			printf "  skipped   %-50s speedup_vs_sequential gate (gomaxprocs 1)\n", name
		} else {
			os = sp[name] + 0; nsd = $3 + 0
			if (nsd < os) {
				printf "  REGRESSION %-49s speedup_vs_sequential %.4f -> %.4f\n", name, os, nsd
				bad++
			}
		}
	}
}
END {
	for (name in ns) if (!(name in seen)) {
		printf "  gone      %-50s (only in %s)\n", name, oldfile
	}
	if (bad) {
		printf "bench_compare: %d regression(s) between %s and %s\n", bad, oldfile, newfile
		exit 1
	}
	printf "bench_compare: no regressions (%s -> %s)\n", oldfile, newfile
}
' "$tmp_old" "$tmp_new"
