package measure

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"repro/internal/cache"
	"repro/internal/depgraph"
	"repro/internal/elab"
	"repro/internal/hdl"
)

// Incremental remeasurement: a Baseline snapshots one measured batch —
// the dependency graph of the design it was measured on plus the
// results — and Session.Remeasure diffs an edited design against it,
// re-measuring only the units whose transitive instantiation subtree
// actually changed. Units outside the dirty cone are served from the
// baseline's results unchanged, which is sound for the same reason the
// subtree-keyed disk cache is: every measurement of a top module is a
// pure function of its subtree's formatted sources and the options, so
// an unchanged subtree measures bit-identically (the session golden
// tests pin this against from-scratch MeasureAll).

// Baseline is the remeasurement anchor of one measured batch: the
// dependency graph recorded over the design the batch ran on, the unit
// list, and the results in unit order.
type Baseline struct {
	Graph   *depgraph.Graph
	Units   []Unit
	Results []*ComponentResult

	byUnit map[Unit]*ComponentResult
}

// Result returns the baseline's result for one unit.
func (b *Baseline) Result(u Unit) (*ComponentResult, bool) {
	r, ok := b.byUnit[u]
	return r, ok
}

// optionsKey renders the result-determining options as the dependency
// graph's options identity: a baseline recorded under different
// options must not serve a remeasurement (the dirty cone only tracks
// source changes).
func optionsKey(opts Options) string {
	return strings.Join(append([]string{
		fmt.Sprintf("notmpl=%t", opts.DisableTemplates),
	}, opts.CacheKeyParts()...), "|")
}

// graphKey derives the disk key of a persisted dependency graph
// ("depgraph" entries): one graph per (design fingerprint, options).
func graphKey(fingerprint, optKey string) string {
	return cache.KindKey("depgraph", fingerprint, optKey)
}

// FetchGraph loads the recorded dependency graph for a design
// fingerprint and options from the cache (false on a nil cache or no
// entry). A later process can diff an edited design against it —
// counting the dirty cone, deciding whether anything needs measuring —
// without re-measuring or even holding the baseline design.
func FetchGraph(c *cache.Cache, fingerprint string, opts Options) (*depgraph.Graph, bool) {
	return cache.Fetch(c, graphKey(fingerprint, optionsKey(opts)), depgraph.GraphCodec)
}

// Baseline records the dependency graph of a measured batch: per unit,
// the subtree source hash, the resolved parameter signature, and the
// optimized netlist hash, over the design's module-level hash-and-edge
// layer. results must be MeasureAll's output for units under opts on
// this session's design. When opts.Cache is set the graph is also
// persisted (entry kind "depgraph") so later processes can diff
// against it.
func (s *Session) Baseline(units []Unit, results []*ComponentResult, opts Options) (*Baseline, error) {
	if len(units) != len(results) {
		return nil, fmt.Errorf("measure: baseline of %d units with %d results", len(units), len(results))
	}
	g, err := depgraph.Build(s.design, optionsKey(opts))
	if err != nil {
		return nil, err
	}
	b := &Baseline{
		Graph:   g,
		Units:   units,
		Results: results,
		byUnit:  make(map[Unit]*ComponentResult, len(units)),
	}
	for i, u := range units {
		res := results[i]
		if res == nil {
			return nil, fmt.Errorf("measure: baseline unit %s has a nil result", u.Top)
		}
		st, err := s.design.SubtreeHash(u.Top)
		if err != nil {
			return nil, err
		}
		full, err := s.resolvedParams(u.Top, res.MinimizedParams)
		if err != nil {
			return nil, err
		}
		nh := ""
		if res.Synth != nil && res.Synth.Optimized != nil {
			nh = res.Synth.Optimized.Hash()
		}
		g.AddUnit(depgraph.Unit{
			Top:           u.Top,
			UseAccounting: u.UseAccounting,
			SubtreeHash:   st,
			ParamSig:      elab.ParamSignature(u.Top, full),
			Params:        full,
			NetlistHash:   nh,
		})
		b.byUnit[u] = res
	}
	if opts.Cache != nil {
		if _, err := cache.PutIfAbsent(opts.Cache, graphKey(g.Fingerprint, g.OptionsKey), depgraph.GraphCodec, g); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// RemeasureStats describes what one Remeasure call had to redo.
type RemeasureStats struct {
	// ChangedModules, AddedModules, and RemovedModules are the
	// module-level edits the diff found (sorted name lists from
	// depgraph.Delta).
	ChangedModules, AddedModules, RemovedModules []string
	// DirtyModules and CleanModules partition the new design's module
	// set by the transitive dirty cone.
	DirtyModules, CleanModules int
	// DirtyUnits counts the units re-measured; CleanUnits counts the
	// units served from the baseline's results.
	DirtyUnits, CleanUnits int
}

// Remeasure measures the batch against this session's design,
// re-measuring only the units whose subtree the baseline's dependency
// graph marks dirty; clean units are answered from the baseline's
// results (bit-identical by the subtree purity argument — the golden
// tests compare against a from-scratch MeasureAll). A unit the
// baseline never measured, or a baseline recorded under different
// options, is dirty by definition. It returns the results in unit
// order plus the successor baseline anchored on this session's design.
func (s *Session) Remeasure(prev *Baseline, units []Unit, opts Options) ([]*ComponentResult, *Baseline, RemeasureStats, error) {
	return s.RemeasureCtx(context.Background(), prev, units, opts)
}

// RemeasureCtx is Remeasure under a context: the dirty-unit measurement
// runs through MeasureAllCtx with its unit-granular cancellation
// contract. The diff itself and the successor-baseline recording are
// cheap and run to completion once measurement has succeeded.
func (s *Session) RemeasureCtx(ctx context.Context, prev *Baseline, units []Unit, opts Options) ([]*ComponentResult, *Baseline, RemeasureStats, error) {
	var stats RemeasureStats
	results := make([]*ComponentResult, len(units))
	var dirtyUnits []Unit
	var dirtyIdx []int

	sameOpts := prev != nil && prev.Graph != nil && prev.Graph.OptionsKey == optionsKey(opts)

	// The watch loop's most common wakeup is a save that changed
	// nothing: a design whose whole-tree fingerprint matches the
	// baseline's is module-for-module identical, so an identical batch
	// needs no diff, no measurement, and no new graph — the baseline
	// carries over as its own successor.
	if sameOpts && prev.Graph.Fingerprint == s.design.Fingerprint() && slices.Equal(units, prev.Units) {
		copy(results, prev.Results)
		stats.CleanUnits = len(units)
		stats.CleanModules = len(prev.Graph.Modules)
		return results, prev, stats, nil
	}

	var delta *depgraph.Delta
	if sameOpts {
		d, err := depgraph.Diff(prev.Graph, s.design)
		if err != nil {
			return nil, nil, stats, err
		}
		delta = d
		stats.ChangedModules = d.Changed
		stats.AddedModules = d.Added
		stats.RemovedModules = d.Removed
		stats.DirtyModules, stats.CleanModules = d.DirtyModules, d.CleanModules
	} else if err := recountModules(s.design, &stats); err != nil {
		return nil, nil, stats, err
	}

	for i, u := range units {
		if sameOpts && !delta.Dirty(u.Top) {
			if res, ok := prev.Result(u); ok {
				results[i] = res
				stats.CleanUnits++
				continue
			}
		}
		dirtyUnits = append(dirtyUnits, u)
		dirtyIdx = append(dirtyIdx, i)
	}
	stats.DirtyUnits = len(dirtyUnits)

	if len(dirtyUnits) > 0 {
		fresh, err := s.MeasureAllCtx(ctx, dirtyUnits, opts)
		if err != nil {
			return nil, nil, stats, err
		}
		for j, i := range dirtyIdx {
			results[i] = fresh[j]
		}
	}

	next, err := s.Baseline(units, results, opts)
	if err != nil {
		return nil, nil, stats, err
	}
	return results, next, stats, nil
}

// recountModules fills the module partition for the no-baseline case:
// with nothing to diff against, every module of the design is dirty.
func recountModules(d *hdl.Design, stats *RemeasureStats) error {
	names := d.ModuleNames()
	stats.DirtyModules = len(names)
	stats.AddedModules = append([]string(nil), names...)
	return nil
}
