package fpga

import (
	"repro/internal/netlist"
	"repro/internal/scratch"
)

// netInfo is the per-net covering state: the support of the would-be
// LUT rooted at the net, and whether that LUT was realized.
type netInfo struct {
	cut      []netlist.NetID
	realized bool
}

// Workspace holds the mapper's per-net tables, the merge scratch, and
// the arena cut sets are carved from, reusable across mappings. Owned
// by one goroutine at a time; nil selects fresh scratch.
type Workspace struct {
	info  []netInfo
	level []int
	cur   []netlist.NetID
	next  []netlist.NetID
	arena scratch.Arena[netlist.NetID]
}

// Reset drops the cut-set references into the arena so a retained
// workspace pins only its own chunks. Buffer capacity survives.
func (w *Workspace) Reset() {
	clear(w.info[:cap(w.info)])
	w.info = w.info[:0]
	w.arena.Reset()
}

// MapWS is Map with reusable scratch and without materializing the
// per-LUT list: Mapping.LUTs is nil, while LUTInputSum, Levels, FFs,
// and FreqMHz are bit-identical to Map's. The measurement path only
// reads the aggregates, so it never pays for the list.
func MapWS(n *netlist.Netlist, opts Options, ws *Workspace) *Mapping {
	if ws == nil {
		ws = &Workspace{}
	}
	return mapImpl(n, opts, ws, false)
}
