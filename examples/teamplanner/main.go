// Teamplanner: the Section 3.1.1 use case — early, relative effort
// estimation for a new processor project. The 18 bundled synthetic
// components stand in for a new design's RTL: each is measured through
// the full pipeline, DEE1 (calibrated on the paper's historical data)
// ranks them, and engineers are allocated proportionally.
//
// "These relative estimates may be useful when allocating engineers to
// verification teams; they may also allow an early determination of
// which components are likely to delay project completion." — §3.1.1
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/accounting"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/designs"
	"repro/internal/measure"
)

const teamSize = 20 // engineers available for the new project

func main() {
	// Calibrate DEE1 on historical data (the paper's database).
	cal, err := core.CalibrateDEE1(dataset.Paper())
	if err != nil {
		log.Fatal(err)
	}

	// Measure every component of the "new" design (in parallel; each
	// runs the full accounting + synthesis pipeline).
	type item struct {
		label    string
		estimate float64
		lo, hi   float64
	}
	comps := designs.All()
	items := make([]item, len(comps))
	var wg sync.WaitGroup
	errs := make([]error, len(comps))
	for i, c := range comps {
		wg.Add(1)
		go func(i int, c designs.Component) {
			defer wg.Done()
			d, err := designs.Design(c)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := accounting.MeasureComponent(d, c.Top, true, measure.Options{})
			if err != nil {
				errs[i] = err
				return
			}
			// rho=1: relative estimation mode.
			est, err := cal.Estimate(res.Metrics, 1)
			if err != nil {
				errs[i] = err
				return
			}
			items[i] = item{label: c.Label(), estimate: est.Median, lo: est.CI90[0], hi: est.CI90[1]}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	sort.Slice(items, func(a, b int) bool { return items[a].estimate > items[b].estimate })
	var total float64
	for _, it := range items {
		total += it.estimate
	}

	fmt.Printf("relative DEE1 estimates for the new design (rho = 1):\n\n")
	fmt.Printf("  %-18s %9s %6s  %-9s %s\n", "component", "estimate", "share", "engineers", "90% interval")
	for _, it := range items {
		share := it.estimate / total
		engineers := share * teamSize
		fmt.Printf("  %-18s %9.2f %5.1f%%  %9.1f  (%.1f .. %.1f)\n",
			it.label, it.estimate, share*100, engineers, it.lo, it.hi)
	}
	fmt.Printf("\ncritical path: %s (largest estimated effort — staff it first)\n", items[0].label)
	fmt.Printf("total relative effort: %.1f units across %d engineers\n", total, teamSize)
}
