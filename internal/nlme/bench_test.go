package nlme

import (
	"testing"

	"repro/internal/dataset"
)

func BenchmarkFitDEE1(b *testing.B) {
	b.ReportAllocs()
	d := paperData(dataset.Stmts, dataset.FanInLC)
	for i := 0; i < b.N; i++ {
		if _, err := Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitFixedSingle(b *testing.B) {
	b.ReportAllocs()
	d := paperData(dataset.Stmts)
	for i := 0; i < b.N; i++ {
		if _, err := FitFixed(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogLikelihoodClosedForm(b *testing.B) {
	b.ReportAllocs()
	d := paperData(dataset.Stmts, dataset.FanInLC)
	w := []float64{0.004, 0.0001}
	for i := 0; i < b.N; i++ {
		if _, err := LogLikelihood(d, w, 0.5, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
