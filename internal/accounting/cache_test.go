package accounting

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/measure"
)

// The cache contract: a component measured with the cache off, with a
// cold cache, and from a warm cache yields bit-identical paper-facing
// results, and a warm hit carries the optimized netlist so downstream
// timing analysis sees the identical structure.

func measureExec(t *testing.T, opts measure.Options) *Result {
	t.Helper()
	c, err := designs.ByLabel("IVM-Execute")
	if err != nil {
		t.Fatal(err)
	}
	d, err := designs.Design(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureComponent(d, c.Top, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheOffColdWarmBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ch, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	off := measureExec(t, measure.Options{})
	cold := measureExec(t, measure.Options{Cache: ch})
	warm := measureExec(t, measure.Options{Cache: ch})

	for name, got := range map[string]*Result{"cold": cold, "warm": warm} {
		if *got.Metrics != *off.Metrics {
			t.Errorf("%s metrics diverged from uncached:\n%+v\n%+v", name, *got.Metrics, *off.Metrics)
		}
		if !reflect.DeepEqual(got.MinimizedParams, off.MinimizedParams) {
			t.Errorf("%s minimized params diverged: %v vs %v", name, got.MinimizedParams, off.MinimizedParams)
		}
		if got.InstanceCount != off.InstanceCount || got.DedupedInstances != off.DedupedInstances {
			t.Errorf("%s accounting counts diverged", name)
		}
		if got.Synth == nil || got.Synth.Optimized == nil {
			t.Fatalf("%s result carries no optimized netlist", name)
		}
		if got.Synth.Optimized.Hash() != off.Synth.Optimized.Hash() {
			t.Errorf("%s optimized netlist structure diverged from uncached", name)
		}
	}

	s := ch.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want exactly 1 miss (cold) and 1 hit (warm)", s)
	}

	// A fresh handle on the same directory must also hit: the entry is
	// content-addressed on disk, not process state.
	ch2, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	again := measureExec(t, measure.Options{Cache: ch2})
	if *again.Metrics != *off.Metrics {
		t.Error("reopened cache served diverging metrics")
	}
	if s := ch2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("reopened cache stats = %+v, want pure hit", s)
	}
}

func TestCacheVerifyModePassesOnConsistentEntry(t *testing.T) {
	ch, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := measureExec(t, measure.Options{Cache: ch})
	ch.SetVerify(true)
	verified := measureExec(t, measure.Options{Cache: ch})
	if *verified.Metrics != *first.Metrics {
		t.Error("verify-mode hit diverged from original measurement")
	}
	s := ch.Stats()
	if s.VerifyChecks != 1 || s.VerifyMismatches != 0 {
		t.Errorf("stats = %+v, want 1 clean verify check", s)
	}
}

func TestCacheCorruptedComponentEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	ch, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := measureExec(t, measure.Options{Cache: ch})

	entries, err := filepath.Glob(filepath.Join(dir, "*.ucx"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v (err %v), want exactly one", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}

	again := measureExec(t, measure.Options{Cache: ch})
	if *again.Metrics != *first.Metrics {
		t.Error("recomputed measurement diverged after corruption")
	}
	s := ch.Stats()
	if s.DecodeErrors == 0 || s.Misses != 2 {
		t.Errorf("stats = %+v, want the corrupt entry discarded and recomputed", s)
	}
}
