package parallel

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// spin burns a deterministic amount of CPU, standing in for one
// synthesis or optimizer-restart work item.
func spin(iters int) float64 {
	s := 1.0
	for i := 0; i < iters; i++ {
		s += math.Sqrt(float64(i)) * 1e-9
	}
	return s
}

// BenchmarkPoolOverhead measures the fixed cost of dispatching trivial
// items through the pool versus a bare loop — the price of bounding.
func BenchmarkPoolOverhead(b *testing.B) {
	b.ReportAllocs()
	b.Run("bare-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < 256; j++ {
				_ = j
			}
		}
	})
	b.Run("pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ForEach(0, 256, func(j int) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolSpeedup runs CPU-bound items sequentially and through a
// GOMAXPROCS pool, reporting the wall-clock speedup as a custom
// metric. On a 1-core machine the metric is ~1.
func BenchmarkPoolSpeedup(b *testing.B) {
	b.ReportAllocs()
	const items, work = 64, 50000
	seqStart := time.Now()
	if err := ForEach(1, items, func(i int) error { spin(work); return nil }); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(seqStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ForEach(0, items, func(j int) error { spin(work); return nil }); err != nil {
			b.Fatal(err)
		}
	}
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(float64(seq)/float64(par), "speedup_vs_sequential")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}
