package stats

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// NelderMeadOptions configures Minimize. The zero value selects sensible
// defaults (standard reflection/expansion/contraction coefficients,
// 200·dim² iterations, 1e-10 tolerance).
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex iterations. Zero means
	// 200·dim² with a floor of 2000.
	MaxIter int
	// TolF stops the search once the simplex function-value spread
	// drops below this. Zero means 1e-10.
	TolF float64
	// TolX stops the search once the simplex diameter drops below
	// this. Zero means 1e-10.
	TolX float64
	// Step is the initial simplex displacement per coordinate. Zero
	// means 0.1·|x0_i| with a floor of 0.1.
	Step float64
}

// MinimizeResult reports the outcome of a Nelder–Mead minimization.
type MinimizeResult struct {
	X         []float64 // best point found
	F         float64   // objective value at X
	Iters     int       // simplex iterations performed
	Evals     int       // objective evaluations performed
	Converged bool      // whether a tolerance (rather than MaxIter) stopped the search
}

// Minimize runs the Nelder–Mead downhill-simplex method on f starting
// from x0. The objective may return +Inf or NaN to mark infeasible
// points; such points are treated as the worst possible value.
//
// Nelder–Mead is derivative-free, which suits the NLME log-likelihood:
// its surface is smooth but the closed form has log-barrier-like
// behaviour near zero weights where finite-difference gradients are
// unreliable.
func Minimize(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) MinimizeResult {
	dim := len(x0)
	if dim == 0 {
		panic("stats: Minimize: empty starting point")
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 200 * dim * dim
		if opt.MaxIter < 2000 {
			opt.MaxIter = 2000
		}
	}
	if opt.TolF == 0 {
		opt.TolF = 1e-10
	}
	if opt.TolX == 0 {
		opt.TolX = 1e-10
	}

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build the initial simplex: x0 plus dim displaced vertices.
	verts := make([][]float64, dim+1)
	vals := make([]float64, dim+1)
	verts[0] = append([]float64(nil), x0...)
	vals[0] = eval(verts[0])
	for i := 0; i < dim; i++ {
		v := append([]float64(nil), x0...)
		step := opt.Step
		if step == 0 {
			step = 0.1 * math.Abs(x0[i])
			if step < 0.1 {
				step = 0.1
			}
		}
		v[i] += step
		verts[i+1] = v
		vals[i+1] = eval(v)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	order := func() {
		// Insertion sort: the simplex is nearly sorted between iterations.
		for i := 1; i <= dim; i++ {
			v, fv := verts[i], vals[i]
			j := i - 1
			for j >= 0 && vals[j] > fv {
				verts[j+1], vals[j+1] = verts[j], vals[j]
				j--
			}
			verts[j+1], vals[j+1] = v, fv
		}
	}

	centroid := make([]float64, dim)
	point := func(dst, base []float64, coef float64, dir []float64) {
		for i := range dst {
			dst[i] = base[i] + coef*(base[i]-dir[i])
		}
	}
	// Two scratch vertices, reused every iteration: when a candidate is
	// adopted into the simplex it swaps buffers with the vertex it
	// evicts, so the loop allocates nothing. The objective must not
	// retain its argument (ours evaluate and return).
	xr := make([]float64, dim)
	xc := make([]float64, dim)

	res := MinimizeResult{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		order()
		res.Iters = iter + 1

		// Convergence checks on spread of values and simplex size.
		if math.Abs(vals[dim]-vals[0]) < opt.TolF {
			var diam float64
			for i := 1; i <= dim; i++ {
				for j := 0; j < dim; j++ {
					d := math.Abs(verts[i][j] - verts[0][j])
					if d > diam {
						diam = d
					}
				}
			}
			if diam < opt.TolX || math.Abs(vals[dim]-vals[0]) == 0 {
				res.Converged = true
				break
			}
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < dim; j++ {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				centroid[j] += verts[i][j]
			}
		}
		for j := 0; j < dim; j++ {
			centroid[j] /= float64(dim)
		}

		// Reflection.
		point(xr, centroid, alpha, verts[dim])
		fr := eval(xr)
		switch {
		case fr < vals[0]:
			// Expansion.
			point(xc, centroid, gamma, verts[dim])
			fe := eval(xc)
			if fe < fr {
				verts[dim], xc = xc, verts[dim]
				vals[dim] = fe
			} else {
				verts[dim], xr = xr, verts[dim]
				vals[dim] = fr
			}
		case fr < vals[dim-1]:
			verts[dim], xr = xr, verts[dim]
			vals[dim] = fr
		default:
			// Contraction (outside if the reflected point improved on
			// the worst, inside otherwise).
			if fr < vals[dim] {
				point(xc, centroid, alpha*rho, verts[dim])
			} else {
				point(xc, centroid, -rho, verts[dim])
			}
			fc := eval(xc)
			if fc < math.Min(fr, vals[dim]) {
				verts[dim], xc = xc, verts[dim]
				vals[dim] = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := 0; j < dim; j++ {
						verts[i][j] = verts[0][j] + sigma*(verts[i][j]-verts[0][j])
					}
					vals[i] = eval(verts[i])
				}
			}
		}
	}
	order()
	res.X = append([]float64(nil), verts[0]...)
	res.F = vals[0]
	res.Evals = evals
	if math.IsInf(res.F, 1) {
		// The search never found a feasible point; report it loudly in
		// the result rather than silently returning garbage.
		res.Converged = false
	}
	return res
}

// MinimizeMultistart runs Minimize from each starting point and returns
// the best result. It panics if starts is empty.
func MinimizeMultistart(f func([]float64) float64, starts [][]float64, opt NelderMeadOptions) MinimizeResult {
	return MinimizeMultistartP(f, starts, opt, 1)
}

// MinimizeMultistartP is MinimizeMultistart with the independent
// restarts run on up to workers concurrent goroutines (a Concurrency
// knob: <= 0 means GOMAXPROCS, 1 the exact sequential path). f must be
// safe for concurrent calls.
//
// The reduction is deterministic regardless of worker count: each
// restart is an independent Minimize, results are collected in start
// order, and the winner is the lowest objective value with ties broken
// by the lowest start index — exactly the sequential selection rule —
// so the returned optimum is bit-identical to the sequential path.
func MinimizeMultistartP(f func([]float64) float64, starts [][]float64, opt NelderMeadOptions, workers int) MinimizeResult {
	return MinimizeMultistartFunc(func() func([]float64) float64 { return f }, starts, opt, workers)
}

// MinimizeMultistartFunc is MinimizeMultistartP with a per-worker
// objective factory: newF is called at most once per pool worker, and
// the returned objective serves every restart that worker runs. An
// objective may therefore own mutable scratch buffers (reused across
// evaluations) without any synchronization — the pool guarantees calls
// with the same worker id never overlap. The reduction is the same
// deterministic lowest-value / lowest-start-index rule as
// MinimizeMultistartP, and because each restart is an independent
// Minimize, results are bit-identical for every worker count provided
// the factory's objectives are pure functions of their argument.
func MinimizeMultistartFunc(newF func() func([]float64) float64, starts [][]float64, opt NelderMeadOptions, workers int) MinimizeResult {
	if len(starts) == 0 {
		panic("stats: MinimizeMultistart: no starting points")
	}
	for i, s := range starts {
		if len(s) != len(starts[0]) {
			panic(fmt.Sprintf("stats: MinimizeMultistart: start %d has dimension %d, want %d", i, len(s), len(starts[0])))
		}
	}
	objs := parallel.NewLocal(workers, newF)
	results, _ := parallel.MapWorker(workers, len(starts), func(worker, i int) (MinimizeResult, error) {
		return Minimize(objs.Get(worker), starts[i], opt), nil
	})
	best := MinimizeResult{F: math.Inf(1)}
	totalEvals := 0
	for _, r := range results {
		totalEvals += r.Evals
		if r.F < best.F {
			best = r
		}
	}
	best.Evals = totalEvals
	return best
}
