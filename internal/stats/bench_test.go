package stats

import "testing"

func BenchmarkNelderMeadRosenbrock(b *testing.B) {
	b.ReportAllocs()
	f := func(x []float64) float64 {
		a := 1 - x[0]
		c := x[1] - x[0]*x[0]
		return a*a + 100*c*c
	}
	for i := 0; i < b.N; i++ {
		Minimize(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000})
	}
}

func BenchmarkGaussHermiteConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewGaussHermite(30)
	}
}

func BenchmarkLognormalQuantile(b *testing.B) {
	b.ReportAllocs()
	l := NewLognormal(0, 0.46)
	for i := 0; i < b.N; i++ {
		l.Quantile(0.95)
	}
}

func BenchmarkOLS(b *testing.B) {
	b.ReportAllocs()
	n, p := 100, 4
	x := NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, float64((i*31+j*17)%50))
		}
		y[i] = float64(i % 23)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OLS(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
