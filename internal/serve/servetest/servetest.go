// Package servetest is the in-process end-to-end harness for the
// ucserved daemon: it starts a serve.Server on a loopback listener,
// hands out typed clients speaking either wire encoding, and computes
// direct measure.Session reference results with the exact projection
// the server applies — so tests can assert that what came over the
// wire is bit-identical to measuring without the daemon.
package servetest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/designs"
	"repro/internal/gencorpus"
	"repro/internal/hdl"
	"repro/internal/measure"
	"repro/internal/serve"
)

// Harness is one running daemon on a loopback listener.
type Harness struct {
	Server *serve.Server
	// URL is the base URL, e.g. "http://127.0.0.1:41234".
	URL string

	hs  *http.Server
	lis net.Listener
}

// Start launches cfg on 127.0.0.1:0 and registers cleanup with t. It
// works for benchmarks too (testing.TB).
func Start(t testing.TB, cfg serve.Config) *Harness {
	t.Helper()
	s := serve.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("servetest: listen: %v", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(lis)
	t.Cleanup(func() { hs.Close() })
	return &Harness{
		Server: s,
		URL:    "http://" + lis.Addr().String(),
		hs:     hs,
		lis:    lis,
	}
}

// Drain runs the daemon's graceful shutdown: flip into draining, then
// shut the HTTP layer down, which waits for in-flight handlers.
func (h *Harness) Drain(ctx context.Context) error {
	h.Server.StartDrain()
	return h.hs.Shutdown(ctx)
}

// Client speaks the daemon's protocol. Binary selects the
// codec-framed response encoding; otherwise responses are JSON.
type Client struct {
	Base   string
	HTTP   *http.Client
	Binary bool
}

// Client returns a client for the harness.
func (h *Harness) Client(binary bool) *Client {
	return &Client{Base: h.URL, HTTP: &http.Client{}, Binary: binary}
}

// Status carries a non-200 outcome: the code and the error body.
type Status struct {
	Code       int
	Body       string
	RetryAfter string
}

func (s *Status) Error() string {
	return fmt.Sprintf("servetest: HTTP %d: %s", s.Code, s.Body)
}

// post sends one measurement request and decodes the response.
func (c *Client) post(ctx context.Context, path string, req *serve.Request) (*serve.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", serve.ContentTypeJSON)
	if c.Binary {
		hr.Header.Set("Accept", serve.ContentTypeBinary)
	}
	hres, err := c.HTTP.Do(hr)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, &Status{
			Code:       hres.StatusCode,
			Body:       string(bytes.TrimSpace(data)),
			RetryAfter: hres.Header.Get("Retry-After"),
		}
	}
	if c.Binary {
		if ct := hres.Header.Get("Content-Type"); ct != serve.ContentTypeBinary {
			return nil, fmt.Errorf("servetest: binary client got Content-Type %q", ct)
		}
		return serve.DecodeResponse(data)
	}
	var resp serve.Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("servetest: decode JSON response: %w", err)
	}
	return &resp, nil
}

// Measure POSTs /measure.
func (c *Client) Measure(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	return c.post(ctx, "/measure", req)
}

// Remeasure POSTs /remeasure.
func (c *Client) Remeasure(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	return c.post(ctx, "/remeasure", req)
}

// Healthz GETs /healthz and returns the status code.
func (c *Client) Healthz(ctx context.Context) (int, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	hres, err := c.HTTP.Do(hr)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	return hres.StatusCode, nil
}

// Metrics GETs /metrics.
func (c *Client) Metrics(ctx context.Context) (*serve.MetricsSnapshot, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.HTTP.Do(hr)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("servetest: /metrics: HTTP %d", hres.StatusCode)
	}
	var m serve.MetricsSnapshot
	if err := json.NewDecoder(hres.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WaitHealthy polls /healthz until it answers 200 or the deadline
// passes — for daemons whose listener just came up.
func (c *Client) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		code, err := c.Healthz(ctx)
		cancel()
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("servetest: daemon not healthy after %v (last: code=%d err=%v)", timeout, code, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Reference measures req's units directly through a fresh
// measure.Session — no daemon, no HTTP — and projects the results the
// way the server does. opts should match the server's effective
// options for the request's tenant (serve.Server uses Namespace
// "tenant/<name>"); the caller controls them so tests can also pin
// that namespacing itself never changes results.
func Reference(t testing.TB, req *serve.Request, opts measure.Options) []serve.UnitResult {
	t.Helper()
	design, err := hdl.ParseDesignParallel(req.Sources, opts.Concurrency)
	if err != nil {
		t.Fatalf("servetest: reference parse: %v", err)
	}
	sess := measure.NewSession(design)
	units := make([]measure.Unit, len(req.Units))
	for i, u := range req.Units {
		units[i] = measure.Unit{Top: u.Top, UseAccounting: u.Accounting}
	}
	results, err := sess.MeasureAll(units, opts)
	if err != nil {
		t.Fatalf("servetest: reference measure: %v", err)
	}
	return serve.ResultsOf(req.Units, results)
}

// ReferenceSynth reports how many distinct signatures a fresh direct
// session synthesizes for req with opts — the coalescing yardstick:
// N concurrent daemon clients on one tenant must not exceed it.
func ReferenceSynth(t testing.TB, req *serve.Request, opts measure.Options) int {
	t.Helper()
	design, err := hdl.ParseDesignParallel(req.Sources, opts.Concurrency)
	if err != nil {
		t.Fatalf("servetest: reference parse: %v", err)
	}
	sess := measure.NewSession(design)
	units := make([]measure.Unit, len(req.Units))
	for i, u := range req.Units {
		units[i] = measure.Unit{Top: u.Top, UseAccounting: u.Accounting}
	}
	if _, err := sess.MeasureAll(units, opts); err != nil {
		t.Fatalf("servetest: reference measure: %v", err)
	}
	return sess.Stats().Synthesized
}

// PaperRequest builds a request over the first k hand-written paper
// components (designs.Sources), accounting on — the real-world half of
// the e2e corpus mix.
func PaperRequest(t testing.TB, tenant string, k int) *serve.Request {
	t.Helper()
	sources := designs.Sources()
	all := designs.All()
	if k <= 0 || k > len(all) {
		k = len(all)
	}
	units := make([]serve.UnitRequest, k)
	for i := 0; i < k; i++ {
		units[i] = serve.UnitRequest{Top: all[i].Top, Accounting: true}
	}
	return &serve.Request{Tenant: tenant, Sources: sources, Units: units}
}

// GeneratedRequest builds a request over a generated corpus of n
// components — the synthetic half of the e2e corpus mix. Accounting
// stays off: generated components exercise volume and sharing, the
// paper set exercises the accounting procedure.
func GeneratedRequest(t testing.TB, tenant string, n int, seed uint64) *serve.Request {
	t.Helper()
	corpus, err := gencorpus.Generate(gencorpus.Config{Components: n, Seed: seed})
	if err != nil {
		t.Fatalf("servetest: generate corpus: %v", err)
	}
	units := make([]serve.UnitRequest, len(corpus.Components))
	for i, c := range corpus.Components {
		units[i] = serve.UnitRequest{Top: c.Top}
	}
	return &serve.Request{Tenant: tenant, Sources: corpus.Files, Units: units}
}
