// Package power estimates dynamic power (the paper's PowerD metric)
// from a synthesized netlist using static switching-activity
// propagation, the standard probabilistic technique synthesis tools
// use when no simulation trace is supplied.
//
// Each net carries two quantities: the static probability P(net = 1)
// and the transition density D (expected toggles per clock cycle).
// Primary inputs are assumed random (P = 0.5, D = 0.5); flip-flop
// outputs toggle at the density of their D input, damped by the clock
// capture; probabilities propagate through gates with the usual
// independence approximation (e.g. AND: P = Pa·Pb). Dynamic power is
// then Σ cells D(out)·E_switch·f plus the RAM access energy.
package power

import (
	"repro/internal/netlist"
	"repro/internal/scratch"
	"repro/internal/stdcell"
)

// Estimate holds the power analysis result.
type Estimate struct {
	// DynamicMW is total dynamic power in mW (the paper's PowerD
	// column unit).
	DynamicMW float64
	// StaticUW is total leakage in µW (the paper's PowerS unit),
	// delegated to the library model.
	StaticUW float64
	// FreqMHz is the clock frequency the dynamic estimate assumed.
	FreqMHz float64
}

// Workspace holds the two per-net activity planes, reusable across
// analyses. Owned by one goroutine at a time; nil selects fresh
// scratch.
type Workspace struct {
	prob []float64
	dens []float64
}

// Analyze propagates switching activity and returns the power
// estimate at the given clock frequency.
func Analyze(n *netlist.Netlist, lib *stdcell.Library, freqMHz float64) Estimate {
	return AnalyzeWS(n, lib, freqMHz, nil)
}

// AnalyzeWS is Analyze with reusable scratch; results are bit-identical
// for any ws.
func AnalyzeWS(n *netlist.Netlist, lib *stdcell.Library, freqMHz float64, ws *Workspace) Estimate {
	if ws == nil {
		ws = &Workspace{}
	}
	prob := scratch.Raw(&ws.prob, n.NumNets())
	dens := scratch.Raw(&ws.dens, n.NumNets())

	// Initial conditions: primary inputs and sequential outputs.
	for i := range prob {
		prob[i] = 0.5
		dens[i] = 0.5
	}
	prob[n.Const0], dens[n.Const0] = 0, 0
	prob[n.Const1], dens[n.Const1] = 1, 0

	order, err := n.TopoOrder()
	if err != nil {
		return Estimate{FreqMHz: freqMHz, StaticUW: lib.StaticPower(n)}
	}

	// Two passes let flip-flop output densities reflect their inputs.
	for pass := 0; pass < 2; pass++ {
		for _, ci := range order {
			c := &n.Cells[ci]
			pa := prob[c.In[0]]
			da := dens[c.In[0]]
			var pb, db float64
			if c.Type.NumInputs() >= 2 {
				pb = prob[c.In[1]]
				db = dens[c.In[1]]
			}
			var p, d float64
			switch c.Type {
			case netlist.Inv:
				p, d = 1-pa, da
			case netlist.Buf:
				p, d = pa, da
			case netlist.And2:
				p = pa * pb
				d = da*pb + db*pa
			case netlist.Nand2:
				p = 1 - pa*pb
				d = da*pb + db*pa
			case netlist.Or2:
				p = pa + pb - pa*pb
				d = da*(1-pb) + db*(1-pa)
			case netlist.Nor2:
				p = 1 - (pa + pb - pa*pb)
				d = da*(1-pb) + db*(1-pa)
			case netlist.Xor2, netlist.Xnor2:
				p = pa + pb - 2*pa*pb
				if c.Type == netlist.Xnor2 {
					p = 1 - p
				}
				d = da + db
			case netlist.Mux2:
				ps := prob[c.In[2]]
				ds := dens[c.In[2]]
				p = pa*(1-ps) + pb*ps
				d = da*(1-ps) + db*ps + ds*absf(pa-pb)
			default:
				continue // sequential handled below
			}
			prob[c.Out] = clamp01(p)
			dens[c.Out] = clampD(d)
		}
		// Sequential elements: a flip-flop output follows its data
		// input's probability; its density is capped at one toggle per
		// cycle.
		for ci := range n.Cells {
			c := &n.Cells[ci]
			switch c.Type {
			case netlist.DFF:
				prob[c.Out] = prob[c.In[0]]
				d := dens[c.In[0]]
				if d > 1 {
					d = 1
				}
				dens[c.Out] = d
			case netlist.Latch:
				pe := prob[c.In[1]]
				prob[c.Out] = prob[c.In[0]]
				dens[c.Out] = clampD(dens[c.In[0]] * pe)
			}
		}
		// RAM read outputs: treat as random data.
		for _, r := range n.RAMs {
			for _, rp := range r.ReadPorts {
				for _, o := range rp.Out {
					prob[o] = 0.5
					dens[o] = 0.5
				}
			}
		}
	}

	// Energy: Σ density × per-cell switching energy × frequency.
	// E in pJ, f in MHz ⇒ pJ × 1e6/s = µW; divide by 1000 for mW.
	var pj float64
	for ci := range n.Cells {
		c := &n.Cells[ci]
		pj += dens[c.Out] * lib.CellParams(c.Type).SwitchEng
	}
	for _, r := range n.RAMs {
		act := 0.5
		for _, wp := range r.WritePorts {
			act += 0.5 * prob[wp.En] / float64(len(r.WritePorts)+1)
		}
		pj += lib.RAMDynamicEnergy(r, act)
	}
	return Estimate{
		DynamicMW: pj * freqMHz / 1000.0,
		StaticUW:  lib.StaticPower(n),
		FreqMHz:   freqMHz,
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampD(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 2 {
		return 2
	}
	return v
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
