package depgraph_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/depgraph"
)

// FuzzDecodeGraph feeds hostile bytes to the persisted-graph decoder:
// it must either return an error wrapping codec.ErrCorrupt or a graph
// that passes validation and re-encodes byte-stably. It must never
// panic — a damaged cache entry degrades to a recompute, not a crash.
func FuzzDecodeGraph(f *testing.F) {
	d, err := depgraph.Build(parse(f, graphSrc), "opts-v1")
	if err != nil {
		f.Fatal(err)
	}
	d.AddUnit(depgraph.Unit{
		Top: "top_a", UseAccounting: true,
		SubtreeHash: "st", ParamSig: "top_a;W=4",
		Params:      map[string]int64{"W": 4},
		NetlistHash: "nh",
	})
	f.Add(depgraph.AppendGraph(nil, d))
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := codec.NewReader(data)
		g, err := depgraph.DecodeGraph(r)
		if err != nil {
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Errorf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Errorf("decoder returned an invalid graph: %v", err)
		}
		buf := depgraph.AppendGraph(nil, g)
		again, err := depgraph.DecodeGraph(codec.NewReader(buf))
		if err != nil {
			t.Errorf("re-decode of re-encoded graph failed: %v", err)
			return
		}
		if !bytes.Equal(buf, depgraph.AppendGraph(nil, again)) {
			t.Error("re-encode not byte-stable")
		}
	})
}
