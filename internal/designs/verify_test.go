package designs

import (
	"testing"

	"repro/internal/elab"
	"repro/internal/sim"
	"repro/internal/synth"
)

// rtlSim elaborates a component (with optional overrides) and wraps it
// in the RTL interpreter.
func rtlSim(t *testing.T, label string, overrides map[string]int64) *sim.RTLSim {
	t.Helper()
	c, err := ByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Design(c)
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := elab.Elaborate(d, c.Top, overrides)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.NewRTLSim(inst)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func set(t *testing.T, r *sim.RTLSim, name string, v uint64) {
	t.Helper()
	if err := r.SetInput(name, v); err != nil {
		t.Fatal(err)
	}
}

func out(t *testing.T, r *sim.RTLSim, name string) uint64 {
	t.Helper()
	v, err := r.Output(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func step(t *testing.T, r *sim.RTLSim) {
	t.Helper()
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}
}

func eval(t *testing.T, r *sim.RTLSim) {
	t.Helper()
	if err := r.Eval(); err != nil {
		t.Fatal(err)
	}
}

func TestLeon3CacheHitMissRefill(t *testing.T) {
	r := rtlSim(t, "Leon3-Cache", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Write a line, then read it back: hit.
	set(t, r, "req", 1)
	set(t, r, "we", 1)
	set(t, r, "byte_en", 0xF)
	set(t, r, "addr", 0x1234<<7|0x14) // arbitrary tag + index
	set(t, r, "wdata", 0xDEADBEEF)
	step(t, r)
	set(t, r, "we", 0)
	eval(t, r)
	if out(t, r, "hit") != 1 {
		t.Fatal("expected hit after write")
	}
	if got := out(t, r, "rdata"); got != 0xDEADBEEF {
		t.Errorf("rdata = %#x", got)
	}

	// A different tag at the same index: miss, then refill from memory.
	set(t, r, "addr", 0x9999<<7|0x14)
	eval(t, r)
	if out(t, r, "hit") != 0 {
		t.Fatal("expected miss for a different tag")
	}
	step(t, r) // IDLE -> MISS
	if out(t, r, "mem_req") != 1 {
		t.Fatal("expected memory request during miss")
	}
	set(t, r, "mem_ack", 1)
	set(t, r, "mem_data", 0xCAFE0001)
	step(t, r) // MISS -> FILL
	set(t, r, "mem_ack", 0)
	step(t, r) // FILL: line installed
	eval(t, r)
	if out(t, r, "hit") != 1 {
		t.Fatal("expected hit after refill")
	}
	if got := out(t, r, "rdata"); got != 0xCAFE0001 {
		t.Errorf("refilled rdata = %#x", got)
	}
}

func TestRATStandardRename(t *testing.T) {
	r := rtlSim(t, "RAT-Standard", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Map logical registers 3, 7 via write ports 0 and 1.
	// waddr packs 4x 5-bit addresses; wtag packs 4x 6-bit tags.
	set(t, r, "wen", 0b0011)
	set(t, r, "waddr", 3|(7<<5))
	set(t, r, "wtag", 42|(17<<6))
	step(t, r)
	set(t, r, "wen", 0)

	// Read them back through read ports 0 and 1.
	set(t, r, "raddr", 3|(7<<5))
	eval(t, r)
	rtag := out(t, r, "rtag")
	if got := rtag & 0x3F; got != 42 {
		t.Errorf("rtag[0] = %d, want 42", got)
	}
	if got := (rtag >> 6) & 0x3F; got != 17 {
		t.Errorf("rtag[1] = %d, want 17", got)
	}
}

func TestRATSlidingWindows(t *testing.T) {
	r := rtlSim(t, "RAT-Sliding", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Write logical register 20 (windowed: bit 4 set) in window 0.
	set(t, r, "wen", 0b0001)
	set(t, r, "waddr", 20)
	set(t, r, "wtag", 33)
	step(t, r)
	set(t, r, "wen", 0)
	set(t, r, "raddr", 20)
	eval(t, r)
	if got := out(t, r, "rtag") & 0x3F; got != 33 {
		t.Errorf("window 0: rtag = %d, want 33", got)
	}

	// SAVE slides the window: the same logical register now maps to a
	// different physical slot (reads whatever is there — not 33).
	set(t, r, "save", 1)
	step(t, r)
	set(t, r, "save", 0)
	if got := out(t, r, "cwp_out"); got != 1 {
		t.Fatalf("cwp = %d, want 1", got)
	}
	eval(t, r)
	if got := out(t, r, "rtag") & 0x3F; got == 33 {
		t.Error("windowed register must map elsewhere after SAVE")
	}
	// RESTORE returns to window 0 and the original mapping.
	set(t, r, "restore", 1)
	step(t, r)
	set(t, r, "restore", 0)
	eval(t, r)
	if got := out(t, r, "rtag") & 0x3F; got != 33 {
		t.Errorf("after RESTORE: rtag = %d, want 33", got)
	}
	// Global registers (below 16) are unaffected by the window.
	set(t, r, "wen", 0b0001)
	set(t, r, "waddr", 5)
	set(t, r, "wtag", 9)
	step(t, r)
	set(t, r, "wen", 0)
	set(t, r, "save", 1)
	step(t, r)
	set(t, r, "save", 0)
	set(t, r, "raddr", 5)
	eval(t, r)
	if got := out(t, r, "rtag") & 0x3F; got != 9 {
		t.Errorf("global register changed across SAVE: %d, want 9", got)
	}
}

func TestPUMAROBAllocateCompleteRetire(t *testing.T) {
	r := rtlSim(t, "PUMA-ROB", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Allocate two entries.
	eval(t, r)
	id0 := out(t, r, "id0")
	set(t, r, "alloc0", 1)
	set(t, r, "alloc1", 1)
	set(t, r, "dest0", 11)
	set(t, r, "dest1", 22)
	step(t, r)
	set(t, r, "alloc0", 0)
	set(t, r, "alloc1", 0)
	eval(t, r)
	if got := out(t, r, "occupancy"); got != 2 {
		t.Fatalf("occupancy = %d, want 2", got)
	}
	if out(t, r, "retire0") != 0 {
		t.Fatal("nothing should retire before completion")
	}

	// Complete the second first: still no retirement (in-order).
	set(t, r, "complete_valid", 1)
	set(t, r, "complete_id", id0+1)
	step(t, r)
	eval(t, r)
	if out(t, r, "retire0") != 0 {
		t.Fatal("head not complete; must not retire")
	}
	// Complete the head: both retire together (2-wide).
	set(t, r, "complete_id", id0)
	step(t, r)
	set(t, r, "complete_valid", 0)
	eval(t, r)
	if out(t, r, "retire0") != 1 || out(t, r, "retire1") != 1 {
		t.Fatalf("retire0=%d retire1=%d, want 1 1", out(t, r, "retire0"), out(t, r, "retire1"))
	}
	if out(t, r, "retire_dest0") != 11 || out(t, r, "retire_dest1") != 22 {
		t.Errorf("retire dests = %d, %d", out(t, r, "retire_dest0"), out(t, r, "retire_dest1"))
	}
	step(t, r)
	eval(t, r)
	if got := out(t, r, "occupancy"); got != 0 {
		t.Errorf("occupancy after retire = %d, want 0", got)
	}
}

func TestIVMIssueWakeupSelect(t *testing.T) {
	r := rtlSim(t, "IVM-Issue", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Allocate an instruction waiting on tags 5 and 9.
	set(t, r, "alloc_valid", 1)
	set(t, r, "alloc_src1", 5)
	set(t, r, "alloc_src2", 9)
	set(t, r, "alloc_r1", 0)
	set(t, r, "alloc_r2", 0)
	set(t, r, "alloc_inst", 0xABCD0123)
	step(t, r)
	set(t, r, "alloc_valid", 0)
	eval(t, r)
	if out(t, r, "issue_valid") != 0 {
		t.Fatal("not ready: must not issue")
	}
	// Wake source 1.
	set(t, r, "cdb_valid", 1)
	set(t, r, "cdb_tag", 5)
	step(t, r)
	eval(t, r)
	if out(t, r, "issue_valid") != 0 {
		t.Fatal("only one operand ready: must not issue")
	}
	// Wake source 2: the entry becomes ready and issues with its
	// payload.
	set(t, r, "cdb_tag", 9)
	step(t, r)
	set(t, r, "cdb_valid", 0)
	eval(t, r)
	if out(t, r, "issue_valid") != 1 {
		t.Fatal("both operands ready: must issue")
	}
	if got := out(t, r, "issue_inst"); got != 0xABCD0123 {
		t.Errorf("issue payload = %#x", got)
	}
	// The grant clears the entry.
	step(t, r)
	eval(t, r)
	if out(t, r, "issue_valid") != 0 {
		t.Error("entry must clear after issue")
	}
}

func TestIVMRenameBypass(t *testing.T) {
	r := rtlSim(t, "IVM-Rename", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Slot 0 writes r3 -> tag 7; slot 1 reads r3 in the same cycle and
	// must see the bypassed tag.
	set(t, r, "valid", 0b0001)
	set(t, r, "dst", 3) // slot 0 dest = r3
	set(t, r, "newtags", 7)
	set(t, r, "src1", uint64(3)<<5) // slot 1 src1 = r3
	eval(t, r)
	if got := (out(t, r, "psrc1") >> 6) & 0x3F; got != 7 {
		t.Errorf("bypassed psrc1[1] = %d, want 7", got)
	}
	// After the edge the mapping is architectural: a later lookup of
	// r3 through slot 0 reads the map table.
	step(t, r)
	set(t, r, "valid", 0)
	set(t, r, "src1", 3) // slot 0 src1 = r3
	eval(t, r)
	if got := out(t, r, "psrc1") & 0x3F; got != 7 {
		t.Errorf("mapped psrc1[0] = %d, want 7", got)
	}
}

func TestLeon3MMUFillAndTranslate(t *testing.T) {
	r := rtlSim(t, "Leon3-MMU", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Miss before fill.
	set(t, r, "lookup", 1)
	set(t, r, "vpn", 0x12345)
	eval(t, r)
	if out(t, r, "fault") != 1 {
		t.Fatal("empty TLB must fault")
	}
	// Fill and retranslate.
	set(t, r, "fill", 1)
	set(t, r, "fill_vpn", 0x12345)
	set(t, r, "fill_ppn", 0x6AB)
	step(t, r)
	set(t, r, "fill", 0)
	eval(t, r)
	if out(t, r, "tlb_hit") != 1 {
		t.Fatal("expected TLB hit after fill")
	}
	if got := out(t, r, "ppn"); got != 0x6AB {
		t.Errorf("ppn = %#x, want 0x6AB", got)
	}
	// Kernel-space detection reads VPN bit 19.
	set(t, r, "vpn", 1<<19)
	eval(t, r)
	if out(t, r, "kernel_space") != 1 {
		t.Error("kernel_space must follow vpn[19]")
	}
}

func TestPUMAMemoryForwarding(t *testing.T) {
	r := rtlSim(t, "PUMA-Memory", nil)
	set(t, r, "rst", 1)
	step(t, r)
	set(t, r, "rst", 0)

	// Buffer a store to base+offset.
	set(t, r, "agu_valid", 1)
	set(t, r, "agu_is_store", 1)
	set(t, r, "base", 0x1000)
	set(t, r, "offset", 0x20)
	set(t, r, "store_data", 0x55AA55AA)
	step(t, r)
	// A load from the same address forwards from the buffer.
	set(t, r, "agu_is_store", 0)
	set(t, r, "dmem_rdata", 0x11111111)
	eval(t, r)
	if out(t, r, "fwd_hit") != 1 {
		t.Fatal("expected store-to-load forwarding hit")
	}
	if got := out(t, r, "load_data"); got != 0x55AA55AA {
		t.Errorf("forwarded data = %#x", got)
	}
	// A load from a different address reads memory.
	set(t, r, "offset", 0x24)
	eval(t, r)
	if out(t, r, "fwd_hit") != 0 {
		t.Fatal("different address must miss the buffer")
	}
	if got := out(t, r, "load_data"); got != 0x11111111 {
		t.Errorf("memory data = %#x", got)
	}
}

func TestIVMExecuteLanes(t *testing.T) {
	// The execute cluster's buses are 128 bits (4 lanes × 32), beyond
	// the RTL interpreter's 64-bit nets, so this test drives the
	// synthesized gate-level netlist instead.
	c, err := ByLabel("IVM-Execute")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Design(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, c.Top, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	// Issue an add on lane 0 and a subtract on lane 1 (lanes 0 and 1
	// occupy result bits 0-31 and 32-63, which fit a uint64 readout).
	g.SetInput("rst", 1)
	if err := g.Step(); err != nil {
		t.Fatal(err)
	}
	g.SetInput("rst", 0)
	g.SetInput("issue", 0b0011)
	g.SetInput("ops", 1<<3) // lane0 op=0 (add), lane1 op=1 (sub)
	g.SetInput("srca", 10|(50<<32))
	g.SetInput("srcb", 3|(8<<32))
	if err := g.Step(); err != nil { // operands latch
		t.Fatal(err)
	}
	g.SetInput("issue", 0)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	results, err := g.Output("results")
	if err != nil {
		t.Fatal(err)
	}
	if got := results & 0xFFFFFFFF; got != 13 {
		t.Errorf("lane0 = %d, want 13", got)
	}
	if got := (results >> 32) & 0xFFFFFFFF; got != 42 {
		t.Errorf("lane1 = %d, want 42", got)
	}
	cdbValid, err := g.Output("cdb_valid")
	if err != nil {
		t.Fatal(err)
	}
	if cdbValid != 1 {
		t.Error("CDB must broadcast")
	}
	cdb, err := g.Output("cdb_data")
	if err != nil {
		t.Fatal(err)
	}
	if got := cdb & 0xFFFFFFFF; got != 13 {
		t.Errorf("CDB carries lane0 result, got %d", got)
	}
}
