// Command ucmetrics measures the Table 3 metrics of a µHDL design
// component using the µComplexity accounting procedure.
//
// Usage:
//
//	ucmetrics -top <module> file.v [more.v ...]   measure your own design
//	ucmetrics -builtin <Project-Name>             measure a bundled synthetic component
//	ucmetrics -builtin all                        measure the whole corpus
//	ucmetrics -diff -top <module> OLD NEW         remeasure an edit incrementally
//	ucmetrics -watch -top <module> file.v [...]   remeasure on every file change
//	ucmetrics -generate N                         measure a generated N-component corpus
//
// Flags:
//
//	-generate N      generate a seeded synthetic corpus of N components
//	                 (internal/gencorpus) and measure every component
//	                 through one streaming session; with -csv the rows
//	                 carry the generator's synthetic efforts
//	-gen-seed S      generator seed for -generate (default 1)
//	-gen-out DIR     write the generated sources to DIR as .v files
//	                 instead of measuring them
//	-no-accounting   disable the Section 2.2 accounting procedure
//	-csv             emit the measurement as a CSV database row
//	-diff            OLD and NEW are two versions of a design (each a
//	                 µHDL file or a directory of .v files): measure OLD
//	                 as the baseline, diff the dependency graphs, and
//	                 re-measure only the subtrees the edit dirtied,
//	                 printing per-metric deltas
//	-watch           keep the measured design warm: poll the source
//	                 files and incrementally remeasure on every change,
//	                 printing deltas per iteration
//	-watch-interval  poll period for -watch (default 500ms)
//	-session-stats   report the dirty/clean module and unit partition
//	                 of each incremental remeasure on stderr, plus the
//	                 session sharing summary
//	-cache-dir DIR   cache measurements on disk (default
//	                 $UCOMPLEXITY_CACHE; results are identical with
//	                 and without the cache)
//	-cache-stats     report the cache's on-disk footprint (entries,
//	                 bytes, compression ratio, per-kind rows) and this
//	                 run's decode cost on stderr
//	-cpuprofile FILE write a CPU profile of the run
//	-memprofile FILE write a heap profile of the run
//	-alloc-stats     report runtime.MemStats deltas (allocations,
//	                 bytes, GC cycles) for the measurement on stderr
//
// All measurements run through one measure.Session: with -builtin all
// the whole corpus is parsed once and each distinct (module,
// parameters) signature is synthesized exactly once across the 18
// components. A session summary (components measured, signatures
// planned / synthesized / shared) is reported on stderr. The -diff and
// -watch modes run the incremental remeasurement layer: a dependency
// graph recorded at the baseline marks the transitive dirty cone of an
// edit, clean subtrees are served from the baseline results, and only
// dirty units are re-planned and re-synthesized.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/designs"
	"repro/internal/gencorpus"
	"repro/internal/hdl"
	"repro/internal/measure"
)

// config carries the parsed command line.
type config struct {
	top           string
	builtin       string
	useAccounting bool
	asCSV         bool
	diff          bool
	watch         bool
	generate      int
	genSeed       uint64
	genOut        string
	interval      time.Duration
	sessionStats  bool
	cacheDir      string
	cacheStats    bool
	files         []string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.top, "top", "", "top module to measure")
	flag.StringVar(&cfg.builtin, "builtin", "", "bundled component label (e.g. IVM-Rename) or 'all'")
	noAccounting := flag.Bool("no-accounting", false, "disable the accounting procedure")
	flag.BoolVar(&cfg.asCSV, "csv", false, "emit CSV database rows")
	flag.BoolVar(&cfg.diff, "diff", false, "incrementally remeasure NEW against OLD (two positional paths)")
	flag.BoolVar(&cfg.watch, "watch", false, "poll the sources and incrementally remeasure on change")
	flag.IntVar(&cfg.generate, "generate", 0, "generate and measure a seeded synthetic corpus of N components")
	flag.Uint64Var(&cfg.genSeed, "gen-seed", 1, "generator seed for -generate")
	flag.StringVar(&cfg.genOut, "gen-out", "", "write the generated sources to this directory instead of measuring")
	flag.DurationVar(&cfg.interval, "watch-interval", 500*time.Millisecond, "poll period for -watch")
	flag.BoolVar(&cfg.sessionStats, "session-stats", false, "report dirty/clean partitions and session sharing on stderr")
	flag.StringVar(&cfg.cacheDir, "cache-dir", cache.DefaultDir(), "measurement cache directory (default $"+cache.EnvVar+"; empty = no cache)")
	flag.BoolVar(&cfg.cacheStats, "cache-stats", false, "report cache disk footprint and decode cost on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write CPU profile to file")
	memProfile := flag.String("memprofile", "", "write heap profile to file")
	allocStats := flag.Bool("alloc-stats", false, "report runtime.MemStats deltas for the run on stderr")
	flag.Parse()
	cfg.useAccounting = !*noAccounting
	cfg.files = flag.Args()

	if err := profiledRun(cfg, *cpuProfile, *memProfile, *allocStats); err != nil {
		fmt.Fprintln(os.Stderr, "ucmetrics:", err)
		os.Exit(1)
	}
}

// profiledRun wraps run with the observability flags: CPU/heap
// profiles (same shape as ucpaper's) and the -alloc-stats MemStats
// delta line used to sanity-check steady-state allocation behaviour
// without a benchmark harness.
func profiledRun(cfg config, cpuProfile, memProfile string, allocStats bool) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ucmetrics:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ucmetrics:", err)
			}
		}()
	}

	var before runtime.MemStats
	if allocStats {
		runtime.ReadMemStats(&before)
	}
	err := run(cfg)
	if allocStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		fmt.Fprintf(os.Stderr, "alloc-stats: %d allocs, %d bytes allocated, %d GC cycles, %.3f ms GC pause\n",
			after.Mallocs-before.Mallocs,
			after.TotalAlloc-before.TotalAlloc,
			after.NumGC-before.NumGC,
			float64(after.PauseTotalNs-before.PauseTotalNs)/1e6)
	}
	return err
}

// target names one component to measure within the session's design.
type target struct {
	project string
	top     string
	effort  float64
}

func run(cfg config) error {
	opts := measure.Options{}
	if cfg.cacheDir != "" {
		c, err := cache.Open(cfg.cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = c
		if cfg.cacheStats {
			defer printCacheStats(c)
		}
	} else if cfg.cacheStats {
		return fmt.Errorf("-cache-stats needs a cache (-cache-dir or $%s)", cache.EnvVar)
	}

	switch {
	case cfg.diff && cfg.watch:
		return fmt.Errorf("-diff and -watch are mutually exclusive")
	case cfg.generate > 0 && (cfg.diff || cfg.watch || cfg.builtin != ""):
		return fmt.Errorf("-generate is exclusive with -diff, -watch and -builtin")
	case cfg.generate > 0:
		return runGenerate(cfg, opts)
	case cfg.diff:
		return runDiff(cfg, opts)
	case cfg.watch:
		return runWatch(cfg, opts)
	}

	var d *hdl.Design
	var targets []target
	switch {
	case cfg.builtin == "all":
		full, err := designs.FullDesign()
		if err != nil {
			return err
		}
		d = full
		for _, c := range designs.All() {
			targets = append(targets, target{c.Project, c.Top, c.Effort})
		}
	case cfg.builtin != "":
		c, err := designs.ByLabel(cfg.builtin)
		if err != nil {
			return err
		}
		d, err = designs.Design(c)
		if err != nil {
			return err
		}
		targets = []target{{c.Project, c.Top, c.Effort}}
	default:
		if cfg.top == "" || len(cfg.files) == 0 {
			return fmt.Errorf("need -top and at least one source file (or -builtin)")
		}
		sources, err := loadSources(cfg.files)
		if err != nil {
			return err
		}
		d, err = hdl.ParseDesign(sources)
		if err != nil {
			return err
		}
		targets = []target{{"user", cfg.top, 0}}
	}

	sess := measure.NewSession(d)
	units := make([]measure.Unit, len(targets))
	for i, t := range targets {
		units[i] = measure.Unit{Top: t.top, UseAccounting: cfg.useAccounting}
	}
	results, err := sess.MeasureAll(units, opts)
	if err != nil {
		return err
	}

	rows := make([]dataset.Component, len(targets))
	for i, t := range targets {
		rows[i] = dataset.Component{
			Project: t.project,
			Name:    t.top,
			Effort:  t.effort,
			Metrics: results[i].Metrics.MetricMap(),
		}
		if !cfg.asCSV {
			printResult(t.project, t.top, results[i])
		}
	}

	s := sess.Stats()
	e := sess.ElabStats()
	fmt.Fprintf(os.Stderr, "session: %d components measured, %d signatures planned, %d synthesized, %d shared; elab cache %d hits, %d misses\n",
		s.Components, s.Planned, s.Synthesized, s.Shared, e.Hits, e.Misses)

	if cfg.asCSV {
		return dataset.WriteCSV(os.Stdout, rows)
	}
	return nil
}

// runGenerate builds a seeded synthetic corpus (internal/gencorpus)
// and either writes its sources to -gen-out or measures every
// component through one streaming session, so peak memory stays
// bounded at any corpus size. The generator's synthetic efforts ride
// along in the CSV rows, making the output directly fittable.
func runGenerate(cfg config, opts measure.Options) error {
	corpus, err := gencorpus.Generate(gencorpus.Config{Components: cfg.generate, Seed: cfg.genSeed})
	if err != nil {
		return err
	}
	if cfg.genOut != "" {
		paths, err := corpus.WriteFiles(cfg.genOut)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d files to %s (corpus %s, seed %d)\n",
			len(paths), cfg.genOut, corpus.Fingerprint()[:12], cfg.genSeed)
		return nil
	}

	d, err := corpus.Design(0)
	if err != nil {
		return err
	}
	sess := measure.NewSession(d)
	units := make([]measure.Unit, len(corpus.Components))
	for i, c := range corpus.Components {
		units[i] = measure.Unit{Top: c.Top, UseAccounting: cfg.useAccounting}
	}
	rows := make([]dataset.Component, len(units))
	err = sess.MeasureStream(units, opts, func(i int, res *measure.ComponentResult) error {
		c := corpus.Components[i]
		rows[i] = dataset.Component{
			Project: c.Project,
			Name:    c.Top,
			Effort:  c.Effort,
			Metrics: res.Metrics.MetricMap(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	s := sess.Stats()
	e := sess.ElabStats()
	fmt.Fprintf(os.Stderr, "session: %d components measured, %d signatures planned, %d synthesized, %d shared; elab cache %d hits, %d misses\n",
		s.Components, s.Planned, s.Synthesized, s.Shared, e.Hits, e.Misses)
	if cfg.asCSV {
		return dataset.WriteCSV(os.Stdout, rows)
	}
	for _, r := range rows {
		fmt.Printf("%s-%s: effort=%.2f Cells=%g FFs=%g Nets=%g AreaS=%g Freq=%g\n",
			r.Project, r.Name, r.Effort,
			r.Metrics[dataset.Cells], r.Metrics[dataset.FFs], r.Metrics[dataset.Nets],
			r.Metrics[dataset.AreaS], r.Metrics[dataset.Freq])
	}
	return nil
}

// loadSources reads a set of paths into a source map. A directory
// contributes every .v file directly inside it; other paths are read
// as single files.
func loadSources(paths []string) (map[string]string, error) {
	sources := map[string]string{}
	add := func(p string) error {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		sources[p] = string(data)
		return nil
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			if err := add(p); err != nil {
				return nil, err
			}
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".v" {
				continue
			}
			if err := add(filepath.Join(p, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no source files under %v", paths)
	}
	return sources, nil
}

// measureBaseline measures the units on one parsed design and anchors
// a remeasurement baseline on the result.
func measureBaseline(sources map[string]string, units []measure.Unit, opts measure.Options) ([]*measure.ComponentResult, *measure.Baseline, error) {
	d, err := hdl.ParseDesign(sources)
	if err != nil {
		return nil, nil, err
	}
	sess := measure.NewSession(d)
	res, err := sess.MeasureAll(units, opts)
	if err != nil {
		return nil, nil, err
	}
	base, err := sess.Baseline(units, res, opts)
	return res, base, err
}

// runDiff measures OLD as the baseline and incrementally remeasures
// NEW against it, printing per-unit metric deltas.
func runDiff(cfg config, opts measure.Options) error {
	if cfg.top == "" || len(cfg.files) != 2 {
		return fmt.Errorf("-diff needs -top and exactly two paths (old and new)")
	}
	units := []measure.Unit{{Top: cfg.top, UseAccounting: cfg.useAccounting}}

	oldSrc, err := loadSources(cfg.files[:1])
	if err != nil {
		return err
	}
	oldRes, base, err := measureBaseline(oldSrc, units, opts)
	if err != nil {
		return fmt.Errorf("old %s: %w", cfg.files[0], err)
	}

	newSrc, err := loadSources(cfg.files[1:])
	if err != nil {
		return err
	}
	// The new design keeps the old design's file names where contents
	// moved, but keying is content-based (per-module hashes), so file
	// naming does not matter to the diff.
	d, err := hdl.ParseDesign(newSrc)
	if err != nil {
		return fmt.Errorf("new %s: %w", cfg.files[1], err)
	}
	sess := measure.NewSession(d)
	newRes, _, stats, err := sess.Remeasure(base, units, opts)
	if err != nil {
		return fmt.Errorf("new %s: %w", cfg.files[1], err)
	}

	printRemeasure(units, oldRes, newRes, stats)
	if cfg.sessionStats {
		printSessionStats(sess, stats)
	}
	return nil
}

// runWatch measures the design once, then polls the source paths and
// incrementally remeasures on every modification, printing deltas.
func runWatch(cfg config, opts measure.Options) error {
	if cfg.top == "" || len(cfg.files) == 0 {
		return fmt.Errorf("-watch needs -top and at least one source path")
	}
	units := []measure.Unit{{Top: cfg.top, UseAccounting: cfg.useAccounting}}

	sources, err := loadSources(cfg.files)
	if err != nil {
		return err
	}
	res, base, err := measureBaseline(sources, units, opts)
	if err != nil {
		return err
	}
	printResult("watch", cfg.top, res[0])
	stamps := sourceStamps(cfg.files)

	// pending holds paths that vanished on the previous poll. One poll
	// of grace covers an editor's rename/replace window; a path still
	// missing a full interval later really is gone, and a silently
	// shrunken design must not keep being remeasured as if whole.
	pending := map[string]bool{}
	for {
		time.Sleep(cfg.interval)
		next := sourceStamps(cfg.files)
		if gone := stillGone(pending, next); len(gone) > 0 {
			return fmt.Errorf("watch: %s vanished and did not reappear within one poll", strings.Join(gone, ", "))
		}
		pending = map[string]bool{}
		if stampsEqual(stamps, next) {
			continue
		}
		refreshed, vanished, err := refreshSources(sources, stamps, next)
		stamps = next
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucmetrics: watch:", err)
			continue
		}
		sources = refreshed
		if len(vanished) > 0 {
			// Mid-rename window: keep the stale content cached, skip
			// this tick's remeasure, and give the file one poll to
			// come back.
			for _, p := range vanished {
				pending[p] = true
			}
			continue
		}
		d, err := hdl.ParseDesign(sources)
		if err != nil {
			// Mid-edit sources often do not parse; keep the baseline and
			// wait for the next change.
			fmt.Fprintln(os.Stderr, "ucmetrics: watch:", err)
			continue
		}
		sess := measure.NewSession(d)
		newRes, nextBase, stats, err := sess.Remeasure(base, units, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucmetrics: watch:", err)
			continue
		}
		printRemeasure(units, res, newRes, stats)
		if cfg.sessionStats {
			printSessionStats(sess, stats)
		}
		res, base = newRes, nextBase
	}
}

// sourceStamps snapshots the watched paths' modification times (files
// directly named plus .v files one level under named directories). A
// vanished path records a zero time, so deletions register as changes.
func sourceStamps(paths []string) map[string]time.Time {
	stamps := map[string]time.Time{}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			stamps[p] = time.Time{}
			continue
		}
		if !info.IsDir() {
			stamps[p] = info.ModTime()
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			stamps[p] = time.Time{}
			continue
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".v" {
				continue
			}
			fi, err := e.Info()
			if err != nil {
				continue
			}
			stamps[filepath.Join(p, e.Name())] = fi.ModTime()
		}
	}
	return stamps
}

// refreshSources advances a watched source map from one stamp
// snapshot to the next, re-reading only the files whose modification
// time changed; unchanged files keep their cached content, so a poll
// tick's cost is proportional to the edit, not the design. (The flip
// side is the usual mtime-watcher contract: a rewrite that preserves
// the modification time is not picked up until the file's stamp next
// moves.)
//
// A named path that vanished (zero stamp) but still has cached
// content is NOT an immediate error: editors routinely save via
// rename/replace, so a poll can land in the window where the old file
// is gone and the new one not yet in place. The path keeps its stale
// content and is reported in the vanished list; the caller retries on
// the next poll and only a path still missing then is a hard error. A
// vanished path with no cached content to fall back on fails
// immediately, same as a full reload's.
func refreshSources(prev map[string]string, old, next map[string]time.Time) (map[string]string, []string, error) {
	out := make(map[string]string, len(next))
	var vanished []string
	for p, t := range next {
		if t.IsZero() {
			if src, ok := prev[p]; ok {
				out[p] = src
				vanished = append(vanished, p)
				continue
			}
			return nil, nil, fmt.Errorf("stat %s: path vanished", p)
		}
		if ot, ok := old[p]; ok && ot.Equal(t) {
			if src, ok := prev[p]; ok {
				out[p] = src
				continue
			}
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		out[p] = string(data)
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("no source files remain")
	}
	sort.Strings(vanished)
	return out, vanished, nil
}

// stillGone reports which previously-vanished paths are still missing
// in the next stamp snapshot: a vanish that survived a whole poll
// interval is no longer a transient rename/replace window.
func stillGone(pending map[string]bool, next map[string]time.Time) []string {
	var gone []string
	for p := range pending {
		if next[p].IsZero() {
			gone = append(gone, p)
		}
	}
	sort.Strings(gone)
	return gone
}

func stampsEqual(a, b map[string]time.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || !bv.Equal(v) {
			return false
		}
	}
	return true
}

// printRemeasure reports one incremental remeasurement: the module
// edits the dependency diff found and, per unit, the metric deltas
// against the previous results.
func printRemeasure(units []measure.Unit, oldRes, newRes []*measure.ComponentResult, stats measure.RemeasureStats) {
	if len(stats.ChangedModules) > 0 {
		fmt.Printf("changed modules: %v\n", stats.ChangedModules)
	}
	if len(stats.AddedModules) > 0 {
		fmt.Printf("added modules:   %v\n", stats.AddedModules)
	}
	if len(stats.RemovedModules) > 0 {
		fmt.Printf("removed modules: %v\n", stats.RemovedModules)
	}
	for i, u := range units {
		om, nm := oldRes[i].Metrics.MetricMap(), newRes[i].Metrics.MetricMap()
		names := make([]string, 0, len(nm))
		for name := range nm {
			names = append(names, string(name))
		}
		sort.Strings(names)
		changed := false
		for _, name := range names {
			k := dataset.Metric(name)
			if om[k] != nm[k] {
				if !changed {
					fmt.Printf("%s (accounting=%t):\n", u.Top, u.UseAccounting)
					changed = true
				}
				fmt.Printf("  %-14s %12g -> %-12g (%+g)\n", name, om[k], nm[k], nm[k]-om[k])
			}
		}
		if !changed {
			fmt.Printf("%s (accounting=%t): metrics unchanged\n", u.Top, u.UseAccounting)
		}
	}
}

// printSessionStats reports the incremental partition — how much of
// the design and the batch the edit actually dirtied — plus the
// session sharing counters for the dirty part.
func printSessionStats(sess *measure.Session, stats measure.RemeasureStats) {
	fmt.Fprintf(os.Stderr, "session-stats: %d dirty / %d clean modules; %d dirty / %d clean units\n",
		stats.DirtyModules, stats.CleanModules, stats.DirtyUnits, stats.CleanUnits)
	s := sess.Stats()
	e := sess.ElabStats()
	fmt.Fprintf(os.Stderr, "session: %d components measured, %d signatures planned, %d synthesized, %d shared; elab cache %d hits, %d misses\n",
		s.Components, s.Planned, s.Synthesized, s.Shared, e.Hits, e.Misses)
}

// printCacheStats reports the on-disk footprint (one directory scan),
// this run's warm-path decode accounting, and the per-kind breakdown
// on stderr.
func printCacheStats(c *cache.Cache) {
	s := c.Stats()
	ds, err := c.DiskStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucmetrics: cache-stats:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cache-stats: %d entries, %d bytes on disk (%s)\n", ds.Entries, ds.Bytes, c.Dir())
	if s.BytesStored > 0 {
		fmt.Fprintf(os.Stderr, "cache-stats: read %d stored bytes -> %d raw bytes (%.2fx compression), decode %.3f ms\n",
			s.BytesStored, s.BytesRaw, float64(s.BytesRaw)/float64(s.BytesStored), float64(s.DecodeNanos)/1e6)
	}
	for _, row := range cache.KindRows(ds, c.KindStats()) {
		fmt.Fprintln(os.Stderr, "cache-stats:", row)
	}
}

func printResult(project, top string, res *measure.ComponentResult) {
	m := res.Metrics
	fmt.Printf("%s-%s:\n", project, top)
	fmt.Printf("  Stmts=%d LoC=%d\n", m.Stmts, m.LoC)
	fmt.Printf("  FanInLC=%d (exact cones: %d)  Nets=%d  Cells=%d  FFs=%d\n",
		m.FanInLC, m.FanInLCExact, m.Nets, m.Cells, m.FFs)
	fmt.Printf("  Freq=%.1f MHz  AreaL=%.0f um2  AreaS=%.0f um2  PowerD=%.3f mW  PowerS=%.2f uW\n",
		m.FreqMHz, m.AreaL, m.AreaS, m.PowerD, m.PowerS)
	fmt.Printf("  accounting: %d unique modules, %d instances, %d deduplicated\n",
		len(res.UniqueModules), res.InstanceCount, res.DedupedInstances)
	if res.ElabCacheHits+res.ElabCacheMisses > 0 {
		fmt.Printf("  search memo: %d probe hits, %d probe misses\n",
			res.ElabCacheHits, res.ElabCacheMisses)
	}
	if len(res.MinimizedParams) > 0 {
		names := make([]string, 0, len(res.MinimizedParams))
		for n := range res.MinimizedParams {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  minimized parameters:")
		for _, n := range names {
			fmt.Printf(" %s=%d", n, res.MinimizedParams[n])
		}
		fmt.Println()
	}
	fmt.Println()
}
