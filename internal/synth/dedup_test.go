package synth

import (
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/sim"
)

const dedupSrc = `
module leafalu #(parameter W = 8) (input [W-1:0] a, b, output [W-1:0] y);
  assign y = a + b;
endmodule
module quad (input [7:0] a, b, c, d, output [7:0] y0, y1);
  leafalu #(.W(8)) u0 (.a(a), .b(b), .y(y0));
  leafalu #(.W(8)) u1 (.a(c), .b(d), .y(y1));
endmodule`

func TestLowerOptsDedupInstances(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": dedupSrc})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Synthesize(d, "quad", nil)
	if err != nil {
		t.Fatal(err)
	}
	deduped, err := SynthesizeOpts(d, "quad", nil, LowerOptions{DedupInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Deduped != 0 {
		t.Errorf("plain lowering reported %d deduped", full.Deduped)
	}
	if deduped.Deduped != 1 {
		t.Errorf("deduped = %d, want 1", deduped.Deduped)
	}
	if len(deduped.Optimized.Cells) >= len(full.Optimized.Cells) {
		t.Errorf("dedup must shrink the netlist: %d vs %d cells",
			len(deduped.Optimized.Cells), len(full.Optimized.Cells))
	}
	// The duplicate's outputs alias the representative's: y1 mirrors
	// y0's function of (a, b), not (c, d).
	g, err := sim.NewGateSim(deduped.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	g.SetInput("a", 7)
	g.SetInput("b", 8)
	g.SetInput("c", 100)
	g.SetInput("d", 100)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	y0, _ := g.Output("y0")
	y1, _ := g.Output("y1")
	if y0 != 15 || y1 != 15 {
		t.Errorf("y0=%d y1=%d, want both 15 (shared representative)", y0, y1)
	}
}

func TestChildSignatureDistinguishesParams(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module leafalu #(parameter W = 8) (input [W-1:0] a, b, output [W-1:0] y);
  assign y = a + b;
endmodule
module two (input [3:0] a, b, input [7:0] c, d, output [3:0] y0, output [7:0] y1);
  leafalu #(.W(4)) u0 (.a(a), .b(b), .y(y0));
  leafalu #(.W(8)) u1 (.a(c), .b(d), .y(y1));
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SynthesizeOpts(d, "two", nil, LowerOptions{DedupInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped != 0 {
		t.Errorf("different parameterizations must not dedup, got %d", res.Deduped)
	}
}

func TestSynthNegationAndSubConst(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module neg (input clk, input [7:0] a, input [2:0] idx, input [3:0] wd, output [7:0] y, output [3:0] rd);
  assign y = -a;
  // A memory with a non-zero minimum index exercises address rebasing.
  reg [3:0] mem [2:9];
  always @(posedge clk) mem[idx + 2] <= wd;
  assign rd = mem[idx + 2];
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(d, "neg", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	g.SetInput("a", 5)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("y"); got != (256-5)&0xFF {
		t.Errorf("-5 = %d, want %d", got, 251)
	}
	// Write/read through the offset memory.
	g.SetInput("idx", 3)
	g.SetInput("wd", 9)
	if err := g.Step(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("rd"); got != 9 {
		t.Errorf("offset memory readback = %d, want 9", got)
	}
}

func TestLowerPlainWrapper(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module m (input a, output y);
  assign y = ~a;
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := elab.Elaborate(d, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Lower(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.Validate(nl); err != nil {
		t.Fatal(err)
	}
	if len(nl.Cells) != 1 || nl.Cells[0].Type != netlist.Inv {
		t.Errorf("cells = %+v", nl.Cells)
	}
}

func TestSynthUnsupportedConstructErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"inout port", `module m (inout a, input b); endmodule`},
		{"mixed blocking", `module m (input clk, d, output reg q);
  always @(posedge clk) begin q = d; q <= d; end
endmodule`},
		{"nb in comb", `module m (input d, output reg q);
  always @(*) q <= d;
endmodule`},
		{"mem write in comb", `module m (input [1:0] a, input [3:0] wd, output [3:0] rd);
  reg [3:0] mem [0:3];
  always @(*) mem[a] <= wd;
endmodule`},
		{"blocking mem write", `module m (input clk, input [1:0] a, input [3:0] wd, output [3:0] rd);
  reg [3:0] mem [0:3];
  always @(posedge clk) mem[a] = wd;
  assign rd = mem[a];
endmodule`},
	}
	for _, c := range cases {
		d, err := hdl.ParseDesign(map[string]string{"t.v": c.src})
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := Synthesize(d, "m", nil); err == nil {
			t.Errorf("%s: expected synthesis error", c.name)
		}
	}
}

func TestSynthWideLiteralWidths(t *testing.T) {
	// Unsized literals default to 32 bits and interact with narrower
	// contexts via truncation.
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module m (input [3:0] a, output [3:0] y, output z);
  assign y = a + 300;    // 300 truncates to 4 bits (= 12)
  assign z = a == 20;    // compare extends a to literal width
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(d, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	g.SetInput("a", 5)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("y"); got != (5+300)&0xF {
		t.Errorf("y = %d, want %d", got, (5+300)&0xF)
	}
	if got, _ := g.Output("z"); got != 0 {
		t.Errorf("4-bit a can never equal 20: z = %d", got)
	}
}

func TestOptimizeIdempotentOnCorpusStyleNetlist(t *testing.T) {
	// Optimize runs to fixpoint, so a second invocation must change
	// nothing — checked on a datapath with foldable structure.
	d, err := hdl.ParseDesign(map[string]string{"t.v": benchSrc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(d, "bench", nil)
	if err != nil {
		t.Fatal(err)
	}
	again, stats, err := netlist.Optimize(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ConstFolded != 0 || stats.Merged != 0 || stats.DeadRemoved != 0 {
		t.Errorf("second Optimize changed the netlist: %+v", stats)
	}
	if len(again.Cells) != len(res.Optimized.Cells) {
		t.Errorf("cell count changed: %d vs %d", len(again.Cells), len(res.Optimized.Cells))
	}
}
