package hdl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Design is a collection of parsed source files forming one design:
// every module name maps to exactly one declaration.
type Design struct {
	Files   []*SourceFile
	modules map[string]*Module

	mu           sync.Mutex
	fingerprint  string            // memoized Fingerprint; reset by AddFile
	moduleHashes map[string]string // memoized ModuleHash per module; reset by AddFile
	subtreeHash  map[string]string // memoized SubtreeHash per top; reset by AddFile
}

// NewDesign builds a Design from parsed files, rejecting duplicate
// module names.
func NewDesign(files ...*SourceFile) (*Design, error) {
	d := &Design{modules: map[string]*Module{}}
	for _, f := range files {
		if err := d.AddFile(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// AddFile adds a parsed file to the design.
func (d *Design) AddFile(f *SourceFile) error {
	for _, m := range f.Modules {
		if prev, ok := d.modules[m.Name]; ok {
			return fmt.Errorf("hdl: module %q declared at both %s and %s", m.Name, prev.Pos, m.Pos)
		}
		d.modules[m.Name] = m
	}
	d.Files = append(d.Files, f)
	d.mu.Lock()
	d.fingerprint = ""
	d.moduleHashes = nil
	d.subtreeHash = nil
	d.mu.Unlock()
	return nil
}

// ParseDesign parses named sources (name → text) into one Design.
// Sources are processed in sorted name order for determinism.
func ParseDesign(sources map[string]string) (*Design, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	d := &Design{modules: map[string]*Module{}}
	for _, n := range names {
		f, err := Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		if err := d.AddFile(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Module returns the module named name, or an error listing what the
// design does contain.
func (d *Design) Module(name string) (*Module, error) {
	m, ok := d.modules[name]
	if !ok {
		return nil, fmt.Errorf("hdl: no module %q in design (have %v)", name, d.ModuleNames())
	}
	return m, nil
}

// HasModule reports whether the design declares name.
func (d *Design) HasModule(name string) bool {
	_, ok := d.modules[name]
	return ok
}

// ModuleNames returns all module names, sorted.
func (d *Design) ModuleNames() []string {
	names := make([]string, 0, len(d.modules))
	for n := range d.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fingerprint returns a stable content hash of the design: every
// module's ModuleHash mixed in name order and hashed with SHA-256. Two
// designs with structurally identical module declarations fingerprint
// identically regardless of file layout or declaration order. It is
// the "source tree" part of the content-addressed cache keys in
// internal/cache.
//
// The hash is memoized (and invalidated by AddFile): a measurement
// session derives one disk-cache key per unit from the same design,
// and re-formatting the whole corpus for every lookup would dominate
// the warm path. The per-module hashes it is built from are shared
// with SubtreeHash and internal/depgraph, so one formatting pass over
// the design serves all three identity levels.
func (d *Design) Fingerprint() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fingerprint != "" {
		return d.fingerprint
	}
	h := sha256.New()
	for _, name := range d.ModuleNames() {
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(d.moduleHashLocked(name)))
		h.Write([]byte{0})
	}
	d.fingerprint = hex.EncodeToString(h.Sum(nil))
	return d.fingerprint
}

// ModuleHash returns a stable content hash of one module declaration:
// SHA-256 over its pretty-printed source. It is the leaf identity of
// the incremental-remeasurement dependency graph (internal/depgraph):
// two modules hash equal exactly when their formatted declarations are
// byte-identical, which is the precision every downstream stage —
// elaboration, synthesis, source metrics — keys off. Hashes are
// memoized per module and invalidated by AddFile.
func (d *Design) ModuleHash(name string) (string, error) {
	if _, err := d.Module(name); err != nil {
		return "", err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.moduleHashLocked(name), nil
}

// moduleHashLocked computes (or serves memoized) the hash of a module
// known to exist. Caller holds d.mu.
func (d *Design) moduleHashLocked(name string) string {
	if h, ok := d.moduleHashes[name]; ok {
		return h
	}
	if d.moduleHashes == nil {
		d.moduleHashes = map[string]string{}
	}
	sum := sha256.Sum256([]byte(Format(d.modules[name])))
	h := hex.EncodeToString(sum[:])
	d.moduleHashes[name] = h
	return h
}

// SubtreeHash returns a stable content hash of the module subtree
// rooted at top: the (name, ModuleHash) pairs of top's transitive
// module set, mixed in sorted name order. Every measurement of top is
// a pure function of exactly this subtree (elaboration, synthesis, and
// the source metrics never read a module outside it), so SubtreeHash
// is the correct "source" component of top's content-addressed cache
// keys: an edit to a module outside the subtree leaves the hash — and
// every cache entry keyed by it — untouched, which is what makes the
// persistent cache survive unrelated edits. Memoized per top;
// invalidated by AddFile.
func (d *Design) SubtreeHash(top string) (string, error) {
	d.mu.Lock()
	if h, ok := d.subtreeHash[top]; ok {
		d.mu.Unlock()
		return h, nil
	}
	d.mu.Unlock()
	modules, err := d.TransitiveModules(top)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	h := sha256.New()
	for _, name := range modules {
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(d.moduleHashLocked(name)))
		h.Write([]byte{0})
	}
	sum := hex.EncodeToString(h.Sum(nil))
	if d.subtreeHash == nil {
		d.subtreeHash = map[string]string{}
	}
	d.subtreeHash[top] = sum
	return sum, nil
}

// Instantiated returns the set of module names instantiated (directly)
// by m that are declared in this design.
func (d *Design) Instantiated(m *Module) []string {
	seen := map[string]bool{}
	var walk func(items []Item)
	walk = func(items []Item) {
		for _, it := range items {
			switch v := it.(type) {
			case *Instance:
				if d.HasModule(v.ModuleName) {
					seen[v.ModuleName] = true
				}
			case *GenFor:
				walk(v.Body)
			case *GenIf:
				walk(v.Then)
				walk(v.Else)
			}
		}
	}
	walk(m.Items)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TransitiveModules returns top and every module reachable from it via
// instantiation, sorted, or an error on a missing module reference.
func (d *Design) TransitiveModules(top string) ([]string, error) {
	root, err := d.Module(top)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{top: true}
	queue := []*Module{root}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, child := range d.Instantiated(m) {
			if !seen[child] {
				seen[child] = true
				cm, err := d.Module(child)
				if err != nil {
					return nil, err
				}
				queue = append(queue, cm)
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
