package synth

import (
	"testing"

	"repro/internal/hdl"
)

const benchSrc = `
module bench #(parameter W = 16) (input clk, input [W-1:0] a, b, input [2:0] op, output reg [W-1:0] acc);
  reg [W-1:0] t;
  always @(*) begin
    case (op)
      3'd0: t = a + b;
      3'd1: t = a - b;
      3'd2: t = a * b;
      3'd3: t = a << b[3:0];
      default: t = a ^ b;
    endcase
  end
  always @(posedge clk) acc <= acc + t;
endmodule`

func BenchmarkSynthesizeDatapath(b *testing.B) {
	b.ReportAllocs()
	d, err := hdl.ParseDesign(map[string]string{"b.v": benchSrc})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(d, "bench", nil); err != nil {
			b.Fatal(err)
		}
	}
}
