package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRefreshSourcesSkipsUnchanged proves the watch loop's re-read is
// incremental: after an edit, only files whose stamp moved are read
// again. The probe is direct — a file whose content is rewritten with
// its mtime restored must keep its cached (now stale) content, which
// is only possible if refreshSources never opened it.
func TestRefreshSourcesSkipsUnchanged(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.v")
	b := filepath.Join(dir, "b.v")
	write := func(p, src string) {
		t.Helper()
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(a, "module a; endmodule\n")
	write(b, "module b; endmodule\n")
	paths := []string{dir}

	sources, err := loadSources(paths)
	if err != nil {
		t.Fatal(err)
	}
	stamps := sourceStamps(paths)
	if len(stamps) != 2 {
		t.Fatalf("stamps = %v, want entries for a.v and b.v", stamps)
	}

	// Rewrite b but restore its mtime: its stamp is unchanged, so the
	// refresh must keep the cached content (no re-read). Move a's stamp
	// well clear of filesystem timestamp granularity.
	write(b, "module b_rewritten; endmodule\n")
	if err := os.Chtimes(b, stamps[b], stamps[b]); err != nil {
		t.Fatal(err)
	}
	write(a, "module a2; endmodule\n")
	later := stamps[a].Add(10 * time.Second)
	if err := os.Chtimes(a, later, later); err != nil {
		t.Fatal(err)
	}

	next := sourceStamps(paths)
	if stampsEqual(stamps, next) {
		t.Fatal("stamps unchanged after touching a.v")
	}
	refreshed, err := refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if got := refreshed[a]; got != "module a2; endmodule\n" {
		t.Fatalf("a.v not re-read: %q", got)
	}
	if got := refreshed[b]; got != "module b; endmodule\n" {
		t.Fatalf("b.v was re-read despite an unchanged stamp: %q", got)
	}
}

// TestRefreshSourcesAddRemove covers the directory-membership edges:
// a new .v file is picked up, a deleted one drops out, and a vanished
// named path is an error (matching the full reload's behaviour).
func TestRefreshSourcesAddRemove(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.v")
	if err := os.WriteFile(a, []byte("module a; endmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths := []string{dir}
	sources, err := loadSources(paths)
	if err != nil {
		t.Fatal(err)
	}
	stamps := sourceStamps(paths)

	c := filepath.Join(dir, "c.v")
	if err := os.WriteFile(c, []byte("module c; endmodule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	next := sourceStamps(paths)
	refreshed, err := refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed[c] != "module c; endmodule\n" {
		t.Fatalf("new file not picked up: %q", refreshed[c])
	}

	if err := os.Remove(c); err != nil {
		t.Fatal(err)
	}
	stamps, sources = next, refreshed
	next = sourceStamps(paths)
	refreshed, err = refreshSources(sources, stamps, next)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := refreshed[c]; ok {
		t.Fatal("deleted file still in the source map")
	}

	// A named (non-directory) path that vanishes records a zero stamp;
	// the refresh must fail rather than silently shrink the design.
	named := []string{a}
	namedSources, err := loadSources(named)
	if err != nil {
		t.Fatal(err)
	}
	namedStamps := sourceStamps(named)
	if err := os.Remove(a); err != nil {
		t.Fatal(err)
	}
	gone := sourceStamps(named)
	if _, err := refreshSources(namedSources, namedStamps, gone); err == nil {
		t.Fatal("vanished named path did not error")
	}
}
