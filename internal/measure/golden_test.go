package measure

import (
	"maps"
	"sort"
	"testing"

	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/synth"
)

// referenceMinimize reimplements the parameter-minimization search
// with plain uncached, full elaborations and no memo of any kind —
// the specification the memoized/report-only search must match
// bit-for-bit. It mirrors minimizeParams' fixpoint structure exactly
// (same candidate order, same rounds) but probes every point from
// scratch.
func referenceMinimize(t *testing.T, d *hdl.Design, module string) map[string]int64 {
	t.Helper()
	mod, err := d.Module(module)
	if err != nil {
		t.Fatal(err)
	}
	_, refReport, err := elab.Elaborate(d, module, nil)
	if err != nil {
		t.Fatal(err)
	}
	current := map[string]int64{}
	env := elab.NewEnv(nil)
	for _, p := range mod.Params {
		v, err := elab.Eval(p.Value, env)
		if err != nil {
			t.Fatal(err)
		}
		current[p.Name] = v
		if err := env.Define(p.Name, v); err != nil {
			t.Fatal(err)
		}
	}
	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)

	for round := 0; round < 5; round++ {
		changed := false
		for _, name := range names {
			for _, v := range candidateValues(current[name]) {
				if v >= current[name] {
					break
				}
				cand := make(map[string]int64, len(current))
				for k, cv := range current {
					cand[k] = cv
				}
				cand[name] = v
				_, rep, err := elab.Elaborate(d, module, cand)
				if err != nil {
					continue
				}
				if ok, _ := refReport.CompatibleWith(rep); ok {
					current[name] = v
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return current
}

// TestMinimizeParamsCorpusMatchesUncachedReference pins, for every
// corpus component and at several worker counts, that the memoized
// report-only search minimizes to exactly the parameters the plain
// uncached reference search finds, and that the netlist measured at
// that point hashes identically whether its elaboration came from the
// session cache or from scratch.
func TestMinimizeParamsCorpusMatchesUncachedReference(t *testing.T) {
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		want := referenceMinimize(t, d, c.Top)
		for _, workers := range []int{1, 8} {
			got, err := MinimizeParamsN(d, c.Top, workers)
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", c.Label(), workers, err)
			}
			if !maps.Equal(got, want) {
				t.Errorf("%s (workers=%d): minimized %v, uncached reference %v",
					c.Label(), workers, got, want)
			}
		}

		// Downstream pin: the accounting measurement's optimized netlist
		// (built from session-cached subtrees) must hash identically to
		// a synthesis of the same point elaborated entirely from scratch.
		res, err := MeasureComponent(d, c.Top, true, Options{Concurrency: 1})
		if err != nil {
			t.Fatalf("%s: measure: %v", c.Label(), err)
		}
		if !maps.Equal(res.MinimizedParams, want) {
			t.Errorf("%s: measured at %v, reference %v", c.Label(), res.MinimizedParams, want)
		}
		fresh, err := synth.SynthesizeOpts(d, c.Top, want, synth.LowerOptions{DedupInstances: true})
		if err != nil {
			t.Fatalf("%s: fresh synthesis: %v", c.Label(), err)
		}
		if got, want := res.Synth.Optimized.Hash(), fresh.Optimized.Hash(); got != want {
			t.Errorf("%s: cached-elaboration netlist hash %s, fresh %s", c.Label(), got, want)
		}
	}
}

// TestMeasureComponentElabStats pins that the accounting path reports
// session-cache activity: the search must reuse subtrees on a design
// whose submodules repeat across probes, and the counters must reach
// both the Result and a shared StatsRecorder.
func TestMeasureComponentElabStats(t *testing.T) {
	d := design(t, replicatedDesign)
	rec := &elab.StatsRecorder{}
	res, err := MeasureComponent(d, "quad", true, Options{Concurrency: 1, ElabStats: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.ElabStats.Hits == 0 || res.ElabStats.InstancesReused == 0 {
		t.Errorf("accounting search reused no subtrees: %+v", res.ElabStats)
	}
	s, probeHits, probeMisses := rec.Snapshot()
	if s != res.ElabStats {
		t.Errorf("recorder stats %+v differ from result stats %+v", s, res.ElabStats)
	}
	if probeHits != res.ElabCacheHits || probeMisses != res.ElabCacheMisses {
		t.Errorf("recorder probes %d/%d, result %d/%d",
			probeHits, probeMisses, res.ElabCacheHits, res.ElabCacheMisses)
	}
}
