package hdl

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/parallel"
)

// ParseDesignParallel parses named sources (name → text) into one
// Design on a bounded worker pool. Files parse concurrently but are
// added in sorted name order, so the result — modules, file order,
// error selection — is bit-identical to ParseDesign for every worker
// count. concurrency 0 means GOMAXPROCS, 1 means sequential.
func ParseDesignParallel(sources map[string]string, concurrency int) (*Design, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files, err := parallel.Map(concurrency, len(names), func(i int) (*SourceFile, error) {
		return Parse(names[i], sources[names[i]])
	})
	if err != nil {
		return nil, err
	}
	d := &Design{modules: map[string]*Module{}}
	for _, f := range files {
		if err := d.AddFile(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// PrehashModules computes and memoizes every module's ModuleHash on a
// bounded worker pool. Formatting each module declaration is the
// dominant cost of the first Fingerprint/SubtreeHash call on a large
// design, and those are otherwise computed serially under the
// design's mutex; pre-filling the memo turns the planning front end's
// hash lookups into map reads. Calling it is purely an optimization —
// hashes are identical with or without it.
func (d *Design) PrehashModules(concurrency int) {
	names := d.ModuleNames()

	d.mu.Lock()
	todo := names[:0]
	for _, n := range names {
		if _, ok := d.moduleHashes[n]; !ok {
			todo = append(todo, n)
		}
	}
	d.mu.Unlock()
	if len(todo) == 0 {
		return
	}

	hashes, _ := parallel.Map(concurrency, len(todo), func(i int) (string, error) {
		sum := sha256.Sum256([]byte(Format(d.modules[todo[i]])))
		return hex.EncodeToString(sum[:]), nil
	})

	d.mu.Lock()
	if d.moduleHashes == nil {
		d.moduleHashes = make(map[string]string, len(todo))
	}
	for i, n := range todo {
		if _, ok := d.moduleHashes[n]; !ok {
			d.moduleHashes[n] = hashes[i]
		}
	}
	d.mu.Unlock()
}
