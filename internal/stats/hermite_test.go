package stats

import (
	"math"
	"testing"
)

func TestGaussHermiteWeightSum(t *testing.T) {
	// Σ w_i = ∫ e^{−x²} dx = √π for every rule size.
	for _, n := range []int{1, 2, 5, 10, 20, 40, 64} {
		g := NewGaussHermite(n)
		var sum float64
		for _, w := range g.Weights {
			sum += w
		}
		closeTo(t, sum, math.Sqrt(math.Pi), 1e-9, "weight sum")
	}
}

func TestGaussHermiteMoments(t *testing.T) {
	g := NewGaussHermite(20)
	// ∫ x²·e^{−x²} dx = √π/2
	closeTo(t, g.Integrate(func(x float64) float64 { return x * x }), math.Sqrt(math.Pi)/2, 1e-9, "2nd moment")
	// ∫ x⁴·e^{−x²} dx = 3√π/4
	closeTo(t, g.Integrate(func(x float64) float64 { return x * x * x * x }), 3*math.Sqrt(math.Pi)/4, 1e-9, "4th moment")
	// Odd moments vanish by symmetry.
	closeTo(t, g.Integrate(func(x float64) float64 { return x * x * x }), 0, 1e-9, "odd moment")
}

func TestGaussHermiteExactForPolynomials(t *testing.T) {
	// An n-point rule integrates polynomials up to degree 2n−1 exactly.
	g := NewGaussHermite(3)
	// degree 5: x⁵ integrates to 0; x⁴ handled above with bigger rule —
	// check x⁴ with the 3-point rule, degree 4 ≤ 2·3−1.
	closeTo(t, g.Integrate(func(x float64) float64 { return x * x * x * x }), 3*math.Sqrt(math.Pi)/4, 1e-10, "deg-4 with 3 points")
}

func TestGaussHermiteNodesSymmetric(t *testing.T) {
	g := NewGaussHermite(7)
	n := len(g.Nodes)
	for i := 0; i < n/2; i++ {
		closeTo(t, g.Nodes[i], -g.Nodes[n-1-i], 1e-10, "node symmetry")
		closeTo(t, g.Weights[i], g.Weights[n-1-i], 1e-10, "weight symmetry")
	}
	// Odd rule has a node at 0.
	closeTo(t, g.Nodes[n/2], 0, 1e-10, "center node")
}

func TestIntegrateNormalExpectation(t *testing.T) {
	g := NewGaussHermite(30)
	mu, sigma := 1.5, 0.8
	// E[X] = mu
	closeTo(t, g.IntegrateNormal(func(x float64) float64 { return x }, mu, sigma), mu, 1e-9, "E[X]")
	// E[X²] = mu² + sigma²
	closeTo(t, g.IntegrateNormal(func(x float64) float64 { return x * x }, mu, sigma), mu*mu+sigma*sigma, 1e-9, "E[X²]")
	// E[e^X] = e^{mu + sigma²/2} (lognormal mean)
	closeTo(t, g.IntegrateNormal(math.Exp, mu, sigma), math.Exp(mu+sigma*sigma/2), 1e-6, "E[e^X]")
}

func TestNewGaussHermitePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGaussHermite(0)
}
