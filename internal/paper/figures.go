package paper

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Figure2 renders the lognormal distribution of Figure 2: µ = 0, σ
// chosen so the mean is 1.16 (the value annotated in the paper),
// marking mode, median, and mean.
func Figure2() string {
	sigma := math.Sqrt(2 * math.Log(1.16))
	l := stats.NewLognormal(0, sigma)
	p := newASCIIPlot(
		fmt.Sprintf("Figure 2: lognormal distribution with mu=0 (sigma=%.3f)", sigma),
		"rho", "P(rho)", 0, 2.5, 0, 1.0)
	p.curve(l.PDF, '*')
	p.vline(l.Mode(), ':')
	p.vline(l.Median(), '|')
	p.vline(l.Mean(), '.')
	return p.String() + fmt.Sprintf(
		"mode=%.2f (:)  median=%.2f (|)  mean=%.2f (.)  [paper annotates 0.75, 1, 1.16]\n",
		l.Mode(), l.Median(), l.Mean())
}

// Figure3 renders the 68% and 90% confidence-factor curves of Figure 3
// over σε ∈ [0, 0.7], with the σε = 0.45 worked example.
func Figure3() string {
	p := newASCIIPlot(
		"Figure 3: 68% and 90% confidence intervals vs sigma_eps",
		"sigma_eps", "multiplicative factor", 0, 0.7, 0, 3.5)
	p.curve(func(s float64) float64 {
		if s <= 0 {
			return 1
		}
		_, hi := stats.ConfidenceFactors(s, 0.90)
		return hi
	}, '9')
	p.curve(func(s float64) float64 {
		if s <= 0 {
			return 1
		}
		lo, _ := stats.ConfidenceFactors(s, 0.90)
		return lo
	}, '9')
	p.curve(func(s float64) float64 {
		if s <= 0 {
			return 1
		}
		_, hi := stats.ConfidenceFactors(s, 0.68)
		return hi
	}, '6')
	p.curve(func(s float64) float64 {
		if s <= 0 {
			return 1
		}
		lo, _ := stats.ConfidenceFactors(s, 0.68)
		return lo
	}, '6')
	p.vline(0.45, ':')
	lo, hi := stats.ConfidenceFactors(0.45, 0.90)
	return p.String() + fmt.Sprintf(
		"worked example at sigma_eps=0.45: yl=%.2f yh=%.2f (paper: ~0.5, ~2.1)\n", lo, hi)
}

// Figure4Result is the Figure 4 reproduction: the σε → 90% CI mapping
// annotated with each fitted estimator's position.
type Figure4Result struct {
	Positions map[string]float64 // estimator → fitted σε
	Plot      string
}

// Figure4 fits the Table 4 estimators and marks them on the 90%
// confidence-factor chart, as the paper does for Stmts, LoC&FanInLC,
// Nets, and DEE1. The fits run concurrently; use Figure4N to bound or
// serialize them.
func Figure4() (*Figure4Result, error) {
	return Figure4N(0)
}

// Figure4N is Figure4 with a concurrency bound (0 = GOMAXPROCS,
// 1 = exact sequential path).
func Figure4N(concurrency int) (*Figure4Result, error) {
	rows, err := core.EvaluateEstimatorsN(dataset.Paper(), concurrency)
	if err != nil {
		return nil, err
	}
	pos := map[string]float64{}
	for _, r := range rows {
		pos[r.Name] = r.SigmaEps
	}
	p := newASCIIPlot(
		"Figure 4: sigma_eps vs 90% confidence factors, with fitted estimators",
		"sigma_eps", "multiplicative factor", 0.4, 0.7, 0, 3.5)
	p.curve(func(s float64) float64 {
		_, hi := stats.ConfidenceFactors(s, 0.90)
		return hi
	}, '*')
	p.curve(func(s float64) float64 {
		lo, _ := stats.ConfidenceFactors(s, 0.90)
		return lo
	}, '*')
	for _, name := range []string{"DEE1", "Stmts", "LoC", "FanInLC", "Nets"} {
		if s, ok := pos[name]; ok && s >= 0.4 && s <= 0.7 {
			p.vline(s, name[0])
		}
	}
	var b strings.Builder
	b.WriteString(p.String())
	b.WriteString("estimator positions (σε): ")
	for _, name := range []string{"DEE1", "Stmts", "LoC", "FanInLC", "Nets"} {
		fmt.Fprintf(&b, "%s=%.2f  ", name, pos[name])
	}
	b.WriteString("\n")
	return &Figure4Result{Positions: pos, Plot: b.String()}, nil
}

// Figure5Result is the DEE1-vs-reported-effort scatter of Figure 5.
type Figure5Result struct {
	Points []Table4Component
	// Correlation is the Pearson correlation between DEE1 estimates
	// and reported efforts.
	Correlation float64
	// Leon3PipelineUnderestimated records the paper's highlighted
	// outlier: the Leon3 pipeline's estimate (12.8) is roughly half
	// the reported 24 person-months.
	Leon3PipelineUnderestimated bool
	Plot                        string
}

// Figure5 reproduces the scatter plot of DEE1 estimations versus
// reported design effort.
func Figure5() (*Figure5Result, error) {
	return Figure5N(0)
}

// Figure5N is Figure5 with a concurrency bound (0 = GOMAXPROCS,
// 1 = exact sequential path) for the underlying Table 4 fits.
func Figure5N(concurrency int) (*Figure5Result, error) {
	t4, err := Table4N(concurrency)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Points: t4.Components}
	var xs, ys []float64
	p := newASCIIPlot(
		"Figure 5: scatter of DEE1 estimations vs reported design effort",
		"DEE1 estimate (person-months)", "reported effort", 0, 14, 0, 25)
	markers := map[string]byte{"Leon3": 'L', "PUMA": 'P', "IVM": 'I', "RAT": 'R'}
	for _, pt := range t4.Components {
		project := strings.SplitN(pt.Label, "-", 2)[0]
		p.point(pt.DEE1, pt.Effort, markers[project])
		xs = append(xs, pt.DEE1)
		ys = append(ys, pt.Effort)
		if pt.Label == "Leon3-Pipeline" {
			res.Leon3PipelineUnderestimated = pt.DEE1 < pt.Effort*0.65
		}
	}
	p.curve(func(x float64) float64 { return x }, '/') // the y = x diagonal
	res.Correlation = stats.Correlation(xs, ys)
	res.Plot = p.String() + fmt.Sprintf(
		"markers: L=Leon3 P=PUMA I=IVM R=RAT, / is y=x; Pearson r=%.3f\n", res.Correlation)
	return res, nil
}
