package cones

import (
	"repro/internal/netlist"
	"repro/internal/scratch"
)

// Workspace holds the analyzer's per-net tables, traversal scratch, and
// the memo arena, reusable across analyses. Owned by one goroutine at a
// time; nil selects the fresh-allocation path.
type Workspace struct {
	a    analyzer
	slab scratch.Arena[netlist.NetID]
}

// Reset drops the references into the previous netlist so a retained
// workspace pins nothing. Buffer capacity survives.
func (w *Workspace) Reset() {
	w.a.n = nil
	w.a.drivers = nil
	clear(w.a.memos[:cap(w.a.memos)])
	w.a.memos = w.a.memos[:0]
	w.slab.Reset()
}

// Summary is the aggregate of a cone analysis without the per-cone
// records: exactly Analysis.FanInLC / MaxDepth / len(Cones) of a full
// Analyze of the same netlist. The measurement path needs only these
// sums, so it can skip endpoint strings, the Cone slice, and the sort.
type Summary struct {
	FanInLC  int
	MaxDepth int
	NumCones int
}

// AnalyzeSummary computes the cone summary of the netlist using the
// same traversal kernel as Analyze over the same endpoints (the
// enumeration below mirrors Analyze's; both visit primary outputs,
// then sequential cell inputs, then RAM pins). ws may be nil (fresh
// scratch) or a reused workspace.
func AnalyzeSummary(n *netlist.Netlist, ws *Workspace) Summary {
	if ws == nil {
		ws = &Workspace{}
	}
	a := newAnalyzer(n, ws)
	var s Summary
	cone := func(root netlist.NetID) {
		if root == netlist.Nil {
			return
		}
		leaves, _ := a.collect(root)
		s.NumCones++
		s.FanInLC += leaves
		if d := int(a.depthOf(root)); d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	for _, p := range n.Outputs {
		cone(p.Net)
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		switch c.Type {
		case netlist.DFF:
			cone(c.In[0])
		case netlist.Latch:
			cone(c.In[0])
			cone(c.In[1])
		}
	}
	for _, r := range n.RAMs {
		for _, wp := range r.WritePorts {
			cone(wp.En)
			for _, b := range wp.Addr {
				cone(b)
			}
			for _, b := range wp.Data {
				cone(b)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				cone(b)
			}
		}
	}
	ws.Reset()
	return s
}
