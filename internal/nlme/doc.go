// Package nlme fits the nonlinear mixed-effects model of the
// µComplexity paper (Section 3.1) by maximum likelihood.
//
// # The model
//
// For component j of project i with metric vector m_ij, the estimated
// effort is
//
//	eff_ij = (1/ρ_i) · Σ_k w_k·m_ijk            (Equation 2)
//	Eff_ij = eff_ij · ε_ij                      (Equation 3)
//
// where ρ_i (the project's productivity) and ε_ij (the multiplicative
// error) are lognormal with median 1. Taking logarithms (the paper's
// Appendix A transformation) gives an additive-normal form:
//
//	log Eff_ij = b_i + log(Σ_k w_k·m_ijk) + N(0, σε²),  b_i ~ N(0, σρ²)
//
// with b_i = −log ρ_i the per-project random effect.
//
// # Fitting
//
// Because the random effect enters additively on the log scale, the
// marginal distribution of each project's log-residual vector is
// multivariate normal with compound-symmetric covariance σε²·I + σρ²·J.
// The marginal log-likelihood therefore has a closed form
// (Sherman–Morrison inverse and rank-one determinant), which this
// package maximizes over the weights w_k and the variance ratio
// λ = σρ²/σε², with σε² profiled out analytically. This is exactly the
// ML objective that SAS PROC NLMIXED and R nlme(method="ML") maximize
// for this model, so σε, σρ, AIC, and BIC are directly comparable with
// the paper's Table 4 and Section 5.1.1.
//
// An adaptive Gauss–Hermite integrator over the random effect is
// provided as an independent cross-check of the closed form
// (LogLikelihoodGH), mirroring how NLMIXED actually evaluates such
// integrals.
//
// Setting ρ_i = 1 for all i (Section 3.2) removes the random effect;
// FitFixed implements that simpler multiple-regression model for the
// comparison in the last row of Table 4.
package nlme
