// Package core is the public façade of the µComplexity methodology —
// the paper's primary contribution. It ties the three parts of
// Section 2 together:
//
//  1. the accounting procedure (internal/accounting) that measures a
//     design's components — each reused module once, parameters
//     minimized;
//  2. the nonlinear mixed-effects regression (internal/nlme) that
//     calibrates design-effort estimators from a measurement database;
//  3. the productivity adjustment ρ that scales a calibrated
//     estimator to a particular team.
//
// The typical flow mirrors Section 3.1.1 of the paper: maintain a
// database of component measurements with reported efforts
// (dataset.Component), Calibrate an estimator on it, then Estimate the
// effort of new components — absolutely if the team's ρ is known, or
// relatively with ρ = 1.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/accounting"
	"repro/internal/dataset"
	"repro/internal/hdl"
	"repro/internal/measure"
	"repro/internal/nlme"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// DEE1Metrics is the metric pair of Design Effort Estimator 1
// (Section 5.1.1): HDL statements plus logic-cone fan-ins, the most
// accurate two-metric combination the paper found.
var DEE1Metrics = []dataset.Metric{dataset.Stmts, dataset.FanInLC}

// Measurement is one measured component ready for the database.
type Measurement struct {
	Project string
	Name    string
	Metrics *measure.Metrics
	// Accounting describes how the measurement was taken.
	Accounting *accounting.Result
}

// Component converts the measurement into a database row with the
// given reported effort (person-months).
func (m *Measurement) Component(effort float64) dataset.Component {
	return dataset.Component{
		Project: m.Project,
		Name:    m.Name,
		Effort:  effort,
		Metrics: m.Metrics.MetricMap(),
	}
}

// MeasureComponent measures one component of a µHDL design using the
// full µComplexity accounting procedure (Section 2.2). Set
// useAccounting to false only for methodological comparisons like
// Figure 6 of the paper.
func MeasureComponent(design *hdl.Design, project, top string, useAccounting bool, opts measure.Options) (*Measurement, error) {
	res, err := accounting.MeasureComponent(design, top, useAccounting, opts)
	if err != nil {
		return nil, err
	}
	return &Measurement{Project: project, Name: top, Metrics: res.Metrics, Accounting: res}, nil
}

// ComponentRequest names one component of a batch measurement: the
// project it belongs to in the database, its top module in the
// session's design, and whether the accounting procedure applies.
type ComponentRequest struct {
	Project       string
	Top           string
	UseAccounting bool
}

// MeasureComponents measures a whole component set through one
// measure.Session: the design is parsed once, the accounting searches
// share one elaboration cache, and each distinct (module, parameters)
// signature is synthesized exactly once across the batch. Results are
// bit-identical to calling MeasureComponent per request and come back
// in request order.
func MeasureComponents(sess *measure.Session, reqs []ComponentRequest, opts measure.Options) ([]*Measurement, error) {
	units := make([]measure.Unit, len(reqs))
	for i, r := range reqs {
		units[i] = measure.Unit{Top: r.Top, UseAccounting: r.UseAccounting}
	}
	results, err := sess.MeasureAll(units, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Measurement, len(reqs))
	for i, r := range reqs {
		out[i] = &Measurement{Project: r.Project, Name: r.Top, Metrics: results[i].Metrics, Accounting: results[i]}
	}
	return out, nil
}

// Calibration is a fitted design-effort estimator.
type Calibration struct {
	// Metrics are the metric columns of the estimator, in weight
	// order.
	Metrics []dataset.Metric
	// Fit is the underlying regression result (weights, σε, σρ,
	// productivities, information criteria).
	Fit *nlme.Result
	// ZeroFloor records the value zero metric entries were replaced
	// with (the lognormal model needs positive predictors); 0 if no
	// flooring was needed.
	ZeroFloor float64
}

// CalibrationOptions configures Calibrate.
type CalibrationOptions struct {
	// Mixed selects the nonlinear mixed-effects model with per-project
	// productivities (the paper's recommended model). When false the
	// simpler ρ=1 fixed-effects model of Section 3.2 is fitted.
	Mixed bool
	// ZeroFloor replaces zero metric values. Zero means 1, the value
	// that reproduces the paper's FFs row exactly.
	ZeroFloor float64
	// Concurrency bounds the worker pool of the fit's multi-start
	// restarts: 0 means GOMAXPROCS, 1 forces the exact sequential
	// path. Calibration results are bit-identical for every value.
	Concurrency int
}

// Calibrate fits Equation 1's weights (and, for the mixed model, the
// productivity distribution) for the given metric set on a measurement
// database.
func Calibrate(comps []dataset.Component, metrics []dataset.Metric, opts CalibrationOptions) (*Calibration, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("core: empty measurement database")
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("core: no metrics selected")
	}
	floor := opts.ZeroFloor
	if floor == 0 {
		floor = 1
	}
	d := &nlme.Data{}
	floored := false
	for _, c := range comps {
		row := make([]float64, len(metrics))
		for k, m := range metrics {
			v, err := c.Metric(m)
			if err != nil {
				return nil, err
			}
			if v == 0 {
				v = floor
				floored = true
			}
			row[k] = v
		}
		d.Groups = append(d.Groups, c.Project)
		d.Efforts = append(d.Efforts, c.Effort)
		d.Metrics = append(d.Metrics, row)
	}
	for _, m := range metrics {
		d.MetricNames = append(d.MetricNames, string(m))
	}
	var fit *nlme.Result
	var err error
	fitOpts := nlme.FitOptions{Concurrency: opts.Concurrency}
	if opts.Mixed {
		fit, err = nlme.FitOpts(d, fitOpts)
	} else {
		fit, err = nlme.FitFixedOpts(d, fitOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: calibration failed: %w", err)
	}
	cal := &Calibration{
		Metrics: append([]dataset.Metric(nil), metrics...),
		Fit:     fit,
	}
	if floored {
		cal.ZeroFloor = floor
	}
	return cal, nil
}

// CalibrateDEE1 fits the paper's recommended DEE1 estimator
// (w1·Stmts + w2·FanInLC, mixed model) on the database.
func CalibrateDEE1(comps []dataset.Component) (*Calibration, error) {
	return Calibrate(comps, DEE1Metrics, CalibrationOptions{Mixed: true})
}

// SigmaEps returns the fitted σε, the paper's goodness-of-fit measure.
func (c *Calibration) SigmaEps() float64 { return c.Fit.SigmaEps }

// Productivity returns the empirical-Bayes ρ of a project from the
// calibration database, or 1 with ok=false for unknown projects.
func (c *Calibration) Productivity(project string) (rho float64, ok bool) {
	rho, ok = c.Fit.Productivities[project]
	if !ok {
		return 1, false
	}
	return rho, true
}

// Estimate is a design-effort prediction with its uncertainty.
type Estimate struct {
	// Median is eff of Equation 1: the median person-month estimate.
	Median float64
	// Mean applies Equation 4's e^((σε²+σρ²)/2) correction.
	Mean float64
	// CI68 and CI90 are the 68% and 90% confidence intervals for the
	// true effort (Figures 3/4 of the paper).
	CI68, CI90 [2]float64
	// Rho is the productivity the estimate assumed.
	Rho float64
}

// Estimate predicts the effort of a component from its metrics, for a
// team with productivity rho (use 1 for relative estimates, per
// Section 3.1.1).
func (c *Calibration) Estimate(m *measure.Metrics, rho float64) (*Estimate, error) {
	row := make([]float64, len(c.Metrics))
	for k, metric := range c.Metrics {
		v, err := m.Value(metric)
		if err != nil {
			return nil, err
		}
		if v == 0 && c.ZeroFloor > 0 {
			v = c.ZeroFloor
		}
		row[k] = v
	}
	return c.estimateRow(row, rho)
}

// EstimateFromValues predicts effort from raw metric values given in
// the calibration's metric order.
func (c *Calibration) EstimateFromValues(values []float64, rho float64) (*Estimate, error) {
	if len(values) != len(c.Metrics) {
		return nil, fmt.Errorf("core: %d values for %d metrics", len(values), len(c.Metrics))
	}
	return c.estimateRow(values, rho)
}

func (c *Calibration) estimateRow(row []float64, rho float64) (*Estimate, error) {
	median, err := c.Fit.Predict(row, rho)
	if err != nil {
		return nil, err
	}
	lo68, hi68 := c.Fit.ConfidenceInterval(median, 0.68)
	lo90, hi90 := c.Fit.ConfidenceInterval(median, 0.90)
	return &Estimate{
		Median: median,
		Mean:   median * c.Fit.MeanFactor(),
		CI68:   [2]float64{lo68, hi68},
		CI90:   [2]float64{lo90, hi90},
		Rho:    rho,
	}, nil
}

// EstimatorAccuracy is one row of a Table 4-style evaluation.
type EstimatorAccuracy struct {
	Name         string
	Metrics      []dataset.Metric
	SigmaEps     float64 // mixed model (with productivity adjustment)
	SigmaEpsRho1 float64 // fixed model (ρ = 1, Section 3.2)
	AIC, BIC     float64
	Calibration  *Calibration
}

// EvaluateEstimators reproduces the Table 4 analysis on a database:
// every single-metric estimator plus DEE1, each fitted with and
// without the productivity adjustment, sorted by σε. The estimators
// are fitted concurrently on every available core; use
// EvaluateEstimatorsN to bound or serialize the pool.
func EvaluateEstimators(comps []dataset.Component) ([]EstimatorAccuracy, error) {
	return EvaluateEstimatorsN(comps, 0)
}

// EvaluateEstimatorsN is EvaluateEstimators with a concurrency bound
// (0 = GOMAXPROCS, 1 = exact sequential path). Each estimator's mixed
// and fixed calibrations form one work item; when the outer pool is
// parallel the inner multi-start pool is serialized so the machine is
// not oversubscribed. Results are bit-identical for every value.
func EvaluateEstimatorsN(comps []dataset.Component, concurrency int) ([]EstimatorAccuracy, error) {
	type spec struct {
		name    string
		metrics []dataset.Metric
	}
	specs := []spec{{"DEE1", DEE1Metrics}}
	for _, m := range dataset.AllMetrics {
		specs = append(specs, spec{string(m), []dataset.Metric{m}})
	}
	inner := concurrency
	if parallel.Workers(concurrency) > 1 {
		inner = 1
	}
	out, err := parallel.Map(concurrency, len(specs), func(i int) (EstimatorAccuracy, error) {
		s := specs[i]
		mixed, err := Calibrate(comps, s.metrics, CalibrationOptions{Mixed: true, Concurrency: inner})
		if err != nil {
			return EstimatorAccuracy{}, fmt.Errorf("core: estimator %s: %w", s.name, err)
		}
		fixed, err := Calibrate(comps, s.metrics, CalibrationOptions{Mixed: false, Concurrency: inner})
		if err != nil {
			return EstimatorAccuracy{}, fmt.Errorf("core: estimator %s (ρ=1): %w", s.name, err)
		}
		return EstimatorAccuracy{
			Name:         s.name,
			Metrics:      s.metrics,
			SigmaEps:     mixed.SigmaEps(),
			SigmaEpsRho1: fixed.SigmaEps(),
			AIC:          mixed.Fit.AIC(),
			BIC:          mixed.Fit.BIC(),
			Calibration:  mixed,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SigmaEps < out[j].SigmaEps })
	return out, nil
}

// ConfidenceFactors exposes the σε → multiplicative-interval mapping
// of Figures 3 and 4.
func ConfidenceFactors(sigmaEps, conf float64) (lo, hi float64) {
	return stats.ConfidenceFactors(sigmaEps, conf)
}

// MeanFactor returns Equation 4's median-to-mean correction for the
// given variance components.
func MeanFactor(sigmaEps, sigmaRho float64) float64 {
	return math.Exp((sigmaEps*sigmaEps + sigmaRho*sigmaRho) / 2)
}
