package nlme

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestClosedFormMatchesQuadrature(t *testing.T) {
	// The closed-form marginal likelihood and the adaptive
	// Gauss–Hermite integral must agree to high precision — they are
	// independent derivations of the same quantity.
	d := paperData(dataset.Stmts, dataset.FanInLC)
	cases := []struct {
		w      []float64
		se, sr float64
	}{
		{[]float64{0.004, 0.0001}, 0.5, 0.3},
		{[]float64{0.002, 0.0005}, 0.8, 0.8},
		{[]float64{0.01, 0.00001}, 0.3, 1.5},
	}
	for _, c := range cases {
		exact, err := LogLikelihood(d, c.w, c.se, c.sr)
		if err != nil {
			t.Fatal(err)
		}
		gh, err := LogLikelihoodGH(d, c.w, c.se, c.sr, 30)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-gh) > 1e-6 {
			t.Errorf("w=%v σε=%v σρ=%v: closed form %v vs quadrature %v", c.w, c.se, c.sr, exact, gh)
		}
	}
}

func TestQuadratureConvergesWithNodes(t *testing.T) {
	d := paperData(dataset.Stmts)
	w := []float64{0.004}
	exact, err := LogLikelihood(d, w, 0.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64 = math.Inf(1)
	for _, nodes := range []int{3, 5, 10, 20} {
		gh, err := LogLikelihoodGH(d, w, 0.5, 0.4, nodes)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(gh - exact)
		if e > prevErr+1e-9 {
			t.Errorf("error grew from %v to %v at %d nodes", prevErr, e, nodes)
		}
		prevErr = e
	}
	if prevErr > 1e-8 {
		t.Errorf("20-node quadrature error %v too large", prevErr)
	}
}

func TestLogLikelihoodTinySigmaRhoApproachesFixed(t *testing.T) {
	// As σρ → 0 the mixed likelihood approaches the independent-error
	// likelihood.
	d := paperData(dataset.Stmts)
	w := []float64{0.004}
	mixed, err := LogLikelihood(d, w, 0.5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Independent: Σ log N(r_i; 0, σε²).
	resid, err := Residuals(d, w)
	if err != nil {
		t.Fatal(err)
	}
	var indep float64
	for _, r := range resid {
		indep += -0.5*(r/0.5)*(r/0.5) - math.Log(0.5) - 0.5*math.Log(2*math.Pi)
	}
	if math.Abs(mixed-indep) > 1e-6 {
		t.Errorf("σρ→0 likelihood %v, independent %v", mixed, indep)
	}
}

func TestLogLikelihoodParameterErrors(t *testing.T) {
	d := paperData(dataset.Stmts)
	if _, err := LogLikelihood(d, []float64{0.004}, 0, 0.5); err == nil {
		t.Error("expected σε>0 error")
	}
	if _, err := LogLikelihood(d, []float64{0.004}, 0.5, -1); err == nil {
		t.Error("expected σρ>=0 error")
	}
	if _, err := LogLikelihoodGH(d, []float64{0.004}, 0.5, 0, 10); err == nil {
		t.Error("expected σρ>0 error for quadrature")
	}
	if _, err := LogLikelihoodGH(d, []float64{0.004}, 0.5, 0.5, 1); err == nil {
		t.Error("expected node-count error")
	}
	if _, err := LogLikelihood(d, []float64{0}, 0.5, 0.5); err == nil {
		t.Error("expected non-positive predictor error")
	}
}

func TestResidualsCenterAtOptimum(t *testing.T) {
	// At the fixed-effects ML optimum of a single-metric model the mean
	// log residual is ~0: the weight acts as a free intercept on the
	// log scale.
	d := paperData(dataset.LoC)
	r, err := FitFixed(d)
	if err != nil {
		t.Fatal(err)
	}
	resid, err := Residuals(d, r.Weights)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range resid {
		mean += v
	}
	mean /= float64(len(resid))
	if math.Abs(mean) > 1e-4 {
		t.Errorf("mean residual = %v, want ≈0", mean)
	}
}
