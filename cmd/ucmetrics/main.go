// Command ucmetrics measures the Table 3 metrics of a µHDL design
// component using the µComplexity accounting procedure.
//
// Usage:
//
//	ucmetrics -top <module> file.v [more.v ...]   measure your own design
//	ucmetrics -builtin <Project-Name>             measure a bundled synthetic component
//	ucmetrics -builtin all                        measure the whole corpus
//
// Flags:
//
//	-no-accounting   disable the Section 2.2 accounting procedure
//	-csv             emit the measurement as a CSV database row
//	-cache-dir DIR   cache measurements on disk (default
//	                 $UCOMPLEXITY_CACHE; results are identical with
//	                 and without the cache)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/accounting"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/designs"
	"repro/internal/hdl"
	"repro/internal/measure"
)

func main() {
	top := flag.String("top", "", "top module to measure")
	builtin := flag.String("builtin", "", "bundled component label (e.g. IVM-Rename) or 'all'")
	noAccounting := flag.Bool("no-accounting", false, "disable the accounting procedure")
	asCSV := flag.Bool("csv", false, "emit CSV database rows")
	cacheDir := flag.String("cache-dir", cache.DefaultDir(), "measurement cache directory (default $"+cache.EnvVar+"; empty = no cache)")
	flag.Parse()

	if err := run(*top, *builtin, !*noAccounting, *asCSV, *cacheDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ucmetrics:", err)
		os.Exit(1)
	}
}

func run(top, builtin string, useAccounting, asCSV bool, cacheDir string, files []string) error {
	var rows []dataset.Component

	opts := measure.Options{}
	if cacheDir != "" {
		c, err := cache.Open(cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = c
	}
	measureOne := func(d *hdl.Design, project, topName string, effort float64) error {
		res, err := accounting.MeasureComponent(d, topName, useAccounting, opts)
		if err != nil {
			return err
		}
		rows = append(rows, dataset.Component{
			Project: project,
			Name:    topName,
			Effort:  effort,
			Metrics: res.Metrics.MetricMap(),
		})
		if !asCSV {
			printResult(project, topName, res)
		}
		return nil
	}

	switch {
	case builtin == "all":
		for _, c := range designs.All() {
			d, err := designs.Design(c)
			if err != nil {
				return err
			}
			if err := measureOne(d, c.Project, c.Top, c.Effort); err != nil {
				return fmt.Errorf("%s: %w", c.Label(), err)
			}
		}
	case builtin != "":
		c, err := designs.ByLabel(builtin)
		if err != nil {
			return err
		}
		d, err := designs.Design(c)
		if err != nil {
			return err
		}
		if err := measureOne(d, c.Project, c.Top, c.Effort); err != nil {
			return err
		}
	default:
		if top == "" || len(files) == 0 {
			return fmt.Errorf("need -top and at least one source file (or -builtin)")
		}
		sources := map[string]string{}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			sources[f] = string(data)
		}
		d, err := hdl.ParseDesign(sources)
		if err != nil {
			return err
		}
		if err := measureOne(d, "user", top, 0); err != nil {
			return err
		}
	}

	if asCSV {
		return dataset.WriteCSV(os.Stdout, rows)
	}
	return nil
}

func printResult(project, top string, res *accounting.Result) {
	m := res.Metrics
	fmt.Printf("%s-%s:\n", project, top)
	fmt.Printf("  Stmts=%d LoC=%d\n", m.Stmts, m.LoC)
	fmt.Printf("  FanInLC=%d (exact cones: %d)  Nets=%d  Cells=%d  FFs=%d\n",
		m.FanInLC, m.FanInLCExact, m.Nets, m.Cells, m.FFs)
	fmt.Printf("  Freq=%.1f MHz  AreaL=%.0f um2  AreaS=%.0f um2  PowerD=%.3f mW  PowerS=%.2f uW\n",
		m.FreqMHz, m.AreaL, m.AreaS, m.PowerD, m.PowerS)
	fmt.Printf("  accounting: %d unique modules, %d instances, %d deduplicated\n",
		len(res.UniqueModules), res.InstanceCount, res.DedupedInstances)
	if s := res.ElabStats; s.Hits+s.Misses > 0 {
		fmt.Printf("  elab cache: %d subtree hits, %d misses, %d instances reused; %d probe hits, %d probe misses\n",
			s.Hits, s.Misses, s.InstancesReused, res.ElabCacheHits, res.ElabCacheMisses)
	}
	if len(res.MinimizedParams) > 0 {
		names := make([]string, 0, len(res.MinimizedParams))
		for n := range res.MinimizedParams {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  minimized parameters:")
		for _, n := range names {
			fmt.Printf(" %s=%d", n, res.MinimizedParams[n])
		}
		fmt.Println()
	}
	fmt.Println()
}
