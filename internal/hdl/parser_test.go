package hdl

import (
	"strings"
	"testing"
)

const counterSrc = `
// An 8-bit counter with enable and synchronous clear.
module counter #(parameter W = 8) (
  input clk,
  input rst,
  input en,
  output reg [W-1:0] q
);
  always @(posedge clk) begin
    if (rst)
      q <= 0;
    else if (en)
      q <= q + 1;
  end
endmodule
`

func mustParse(t *testing.T, src string) *SourceFile {
	t.Helper()
	sf, err := Parse("test.v", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sf
}

func TestParseCounter(t *testing.T) {
	sf := mustParse(t, counterSrc)
	if len(sf.Modules) != 1 {
		t.Fatalf("got %d modules", len(sf.Modules))
	}
	m := sf.Modules[0]
	if m.Name != "counter" {
		t.Errorf("name = %q", m.Name)
	}
	if len(m.Params) != 1 || m.Params[0].Name != "W" {
		t.Fatalf("params = %+v", m.Params)
	}
	if n, ok := m.Params[0].Value.(*Number); !ok || n.Value != 8 {
		t.Errorf("W default = %v", m.Params[0].Value)
	}
	if len(m.Ports) != 4 {
		t.Fatalf("got %d ports", len(m.Ports))
	}
	q := m.Ports[3]
	if q.Name != "q" || q.Dir != Output || !q.IsReg || q.Range == nil {
		t.Errorf("q port = %+v", q)
	}
	if len(m.Items) != 1 {
		t.Fatalf("items = %d", len(m.Items))
	}
	ab, ok := m.Items[0].(*AlwaysBlock)
	if !ok {
		t.Fatalf("item 0 is %T", m.Items[0])
	}
	if len(ab.Sens) != 1 || ab.Sens[0].Edge != EdgePos || ab.Sens[0].Signal != "clk" {
		t.Errorf("sens = %+v", ab.Sens)
	}
}

func TestParsePortDirectionPersistence(t *testing.T) {
	src := `module m (input a, b, output [3:0] x, y, input wire c); endmodule`
	m := mustParse(t, src).Modules[0]
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports", len(m.Ports))
	}
	if m.Ports[1].Dir != Input || m.Ports[1].Range != nil {
		t.Errorf("b = %+v", m.Ports[1])
	}
	if m.Ports[3].Dir != Output || m.Ports[3].Range == nil {
		t.Errorf("y = %+v (range must persist)", m.Ports[3])
	}
	if m.Ports[4].Dir != Input {
		t.Errorf("c = %+v", m.Ports[4])
	}
}

func TestParseDeclarationsAndAssign(t *testing.T) {
	src := `
module m (input [7:0] a, output [7:0] y);
  localparam HALF = 4;
  wire [7:0] t1, t2;
  reg [3:0] state;
  reg [7:0] mem [0:15];
  integer i;
  assign y = (a & t1) | {t2[3:0], 4'b0000};
endmodule`
	m := mustParse(t, src).Modules[0]
	if len(m.Items) != 6 {
		t.Fatalf("got %d items", len(m.Items))
	}
	if p := m.Items[0].(*ParamDecl); !p.IsLocal || p.Name != "HALF" {
		t.Errorf("localparam = %+v", p)
	}
	if d := m.Items[1].(*NetDecl); d.Kind != KindWire || len(d.Names) != 2 {
		t.Errorf("wire decl = %+v", d)
	}
	mm := m.Items[3].(*NetDecl)
	if mm.ArrayRange == nil || mm.Names[0] != "mem" {
		t.Errorf("memory decl = %+v", mm)
	}
	ca := m.Items[5].(*ContAssign)
	if _, ok := ca.RHS.(*Binary); !ok {
		t.Errorf("assign rhs = %T", ca.RHS)
	}
}

func TestParseInstanceWithParamsAndPorts(t *testing.T) {
	src := `
module top (input clk, output [7:0] q);
  counter #(.W(8)) u0 (.clk(clk), .rst(1'b0), .en(1'b1), .q(q));
  counter u1 (.clk(clk), .rst(1'b0), .en(1'b0), .q());
endmodule`
	m := mustParse(t, src).Modules[0]
	u0 := m.Items[0].(*Instance)
	if u0.ModuleName != "counter" || u0.Name != "u0" {
		t.Errorf("u0 = %+v", u0)
	}
	if len(u0.Params) != 1 || u0.Params[0].Name != "W" {
		t.Errorf("u0 params = %+v", u0.Params)
	}
	if len(u0.Ports) != 4 {
		t.Errorf("u0 ports = %+v", u0.Ports)
	}
	u1 := m.Items[1].(*Instance)
	if u1.Ports[3].Value != nil {
		t.Errorf("unconnected port must have nil value")
	}
}

func TestParseGenerate(t *testing.T) {
	src := `
module m #(parameter N = 4) (input [N-1:0] a, output [N-1:0] y);
  genvar i;
  generate
    for (i = 0; i < N; i = i + 1) begin : g
      assign y[i] = ~a[i];
    end
    if (N > 2) begin : wide
      wire extra;
    end else begin : narrow
      wire other;
    end
  endgenerate
endmodule`
	m := mustParse(t, src).Modules[0]
	var gf *GenFor
	var gi *GenIf
	for _, it := range m.Items {
		switch v := it.(type) {
		case *GenFor:
			gf = v
		case *GenIf:
			gi = v
		}
	}
	if gf == nil || gf.Var != "i" || gf.Label != "g" || len(gf.Body) != 1 {
		t.Fatalf("genfor = %+v", gf)
	}
	if gi == nil || gi.ThenLabel != "wide" || gi.ElseLabel != "narrow" {
		t.Fatalf("genif = %+v", gi)
	}
}

func TestParseCaseStatement(t *testing.T) {
	src := `
module m (input [1:0] sel, input [3:0] a, b, c, output reg [3:0] y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1, 2'd2: y = b;
      default: y = c;
    endcase
  end
endmodule`
	m := mustParse(t, src).Modules[0]
	ab := m.Items[0].(*AlwaysBlock)
	blk := ab.Body.(*Block)
	cs := blk.Stmts[0].(*Case)
	if len(cs.Items) != 3 {
		t.Fatalf("case items = %d", len(cs.Items))
	}
	if len(cs.Items[1].Exprs) != 2 {
		t.Errorf("multi-label arm = %+v", cs.Items[1])
	}
	if cs.Items[2].Exprs != nil {
		t.Errorf("default arm must have nil exprs")
	}
}

func TestParseProceduralFor(t *testing.T) {
	src := `
module m (input [7:0] a, output reg [7:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      y[i] = a[7 - i];
  end
endmodule`
	m := mustParse(t, src).Modules[0]
	ab := m.Items[1].(*AlwaysBlock)
	blk := ab.Body.(*Block)
	if _, ok := blk.Stmts[0].(*For); !ok {
		t.Fatalf("stmt = %T", blk.Stmts[0])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `module m (input a, b, c, output y); assign y = a | b & c; endmodule`
	m := mustParse(t, src).Modules[0]
	ca := m.Items[0].(*ContAssign)
	top := ca.RHS.(*Binary)
	// & binds tighter than |, so the tree is a | (b & c).
	if top.Op != OpOr {
		t.Fatalf("top op = %v", top.Op)
	}
	if inner, ok := top.R.(*Binary); !ok || inner.Op != OpAnd {
		t.Errorf("rhs = %v", FormatExpr(top.R))
	}
}

func TestParseTernaryAndReplication(t *testing.T) {
	src := `module m (input s, input [3:0] a, output [7:0] y);
  assign y = s ? {2{a}} : {4'b0, a};
endmodule`
	m := mustParse(t, src).Modules[0]
	ca := m.Items[0].(*ContAssign)
	tern := ca.RHS.(*Ternary)
	if _, ok := tern.Then.(*Repl); !ok {
		t.Errorf("then branch = %T", tern.Then)
	}
	if _, ok := tern.Else.(*Concat); !ok {
		t.Errorf("else branch = %T", tern.Else)
	}
}

func TestParseUnaryReductions(t *testing.T) {
	src := `module m (input [7:0] a, output x, y, z);
  assign x = &a;
  assign y = ~|a;
  assign z = ^a ^ !a[0];
endmodule`
	m := mustParse(t, src).Modules[0]
	if u := m.Items[0].(*ContAssign).RHS.(*Unary); u.Op != OpRedAnd {
		t.Errorf("x op = %v", u.Op)
	}
	if u := m.Items[1].(*ContAssign).RHS.(*Unary); u.Op != OpRedNor {
		t.Errorf("y op = %v", u.Op)
	}
}

func TestParseSensitivityLists(t *testing.T) {
	src := `module m (input clk, rst, d, output reg q1, q2, q3);
  always @(posedge clk) q1 <= d;
  always @(posedge clk or posedge rst) q2 <= d;
  always @(*) q3 = d;
endmodule`
	m := mustParse(t, src).Modules[0]
	s2 := m.Items[1].(*AlwaysBlock).Sens
	if len(s2) != 2 || s2[1].Edge != EdgePos || s2[1].Signal != "rst" {
		t.Errorf("sens2 = %+v", s2)
	}
	s3 := m.Items[2].(*AlwaysBlock).Sens
	if len(s3) != 1 || s3[0].Edge != EdgeAny {
		t.Errorf("sens3 = %+v", s3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing semi", "module m (input a) endmodule", "expected ';'"},
		{"bad item", "module m (input a); 42; endmodule", "unexpected"},
		{"eof in module", "module m (input a);", "unexpected EOF"},
		{"for outside always", "module m (input a); for (i = 0; i < 2; i = i + 1) begin end endmodule", "generate"},
		{"memory multi-decl", "module m (input a); reg [3:0] x [0:3], y; endmodule", "alone"},
		{"gen step var", "module m #(parameter N=2) (input a); genvar i; generate for (i = 0; i < N; j = i + 1) begin end endgenerate endmodule", "loop variable"},
		{"dup module", "module m (input a); endmodule module m (input a); endmodule", ""},
	}
	for _, c := range cases {
		sf, err := Parse("t.v", c.src)
		if c.name == "dup module" {
			if err != nil {
				continue // dup detection happens in NewDesign
			}
			if _, err := NewDesign(sf); err == nil {
				t.Errorf("%s: expected error", c.name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseRoundTripThroughFormat(t *testing.T) {
	// Format must re-parse to an equivalent tree (checked by formatting
	// again and comparing strings).
	srcs := []string{
		counterSrc,
		`module m #(parameter N = 4, parameter W = 8) (input [W-1:0] a, output [W-1:0] y);
  genvar i;
  generate for (i = 0; i < N; i = i + 1) begin : g
    assign y[i] = a[i] ^ 1'b1;
  end endgenerate
  generate if (N > 2) begin : big
    wire extra;
  end else begin : small
    wire other;
  end endgenerate
endmodule`,
		`module alu (input [3:0] op, input [15:0] a, b, output reg [15:0] y, output reg carry);
  always @(*) begin
    carry = 1'b0;
    case (op)
      4'd0: {carry, y} = a + b;
      4'd1: y = a - b;
      4'd2: y = a & b;
      default: y = 16'd0;
    endcase
  end
endmodule`,
	}
	for _, src := range srcs {
		sf := mustParse(t, src)
		once := Format(sf.Modules[0])
		sf2, err := Parse("fmt.v", once)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nsource:\n%s", err, once)
		}
		twice := Format(sf2.Modules[0])
		if once != twice {
			t.Errorf("format not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
		}
	}
}

func TestDesignLookupAndTraversal(t *testing.T) {
	d, err := ParseDesign(map[string]string{
		"a.v": `module leaf (input a, output y); assign y = ~a; endmodule`,
		"b.v": `module mid (input a, output y); leaf u (.a(a), .y(y)); endmodule`,
		"c.v": `module top (input a, output y);
  wire t;
  mid u0 (.a(a), .y(t));
  leaf u1 (.a(t), .y(y));
endmodule`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if names := d.ModuleNames(); len(names) != 3 {
		t.Fatalf("modules = %v", names)
	}
	top, err := d.Module("top")
	if err != nil {
		t.Fatal(err)
	}
	inst := d.Instantiated(top)
	if len(inst) != 2 || inst[0] != "leaf" || inst[1] != "mid" {
		t.Errorf("instantiated = %v", inst)
	}
	all, err := d.TransitiveModules("top")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("transitive = %v", all)
	}
	if _, err := d.Module("nosuch"); err == nil {
		t.Error("expected error for missing module")
	}
}
