package nlme

import (
	"errors"
	"fmt"
	"math"
)

// Data is the input to a fit: n observations of reported effort, each
// with k metric values and a group (project / design team) label.
type Data struct {
	// Groups[i] is the project of observation i. Observations of the
	// same project share one productivity random effect.
	Groups []string
	// Efforts[i] is the reported design effort (person-months) of
	// observation i. Must be positive (the model is lognormal).
	Efforts []float64
	// Metrics[i][k] is metric k of observation i. Metric combinations
	// Σ w_k·m_ik must be positive for positive weights, so at least
	// one metric of every observation must be positive.
	Metrics [][]float64
	// MetricNames, optional, label the columns for reporting.
	MetricNames []string
}

// NumObs returns the number of observations.
func (d *Data) NumObs() int { return len(d.Efforts) }

// NumMetrics returns the number of metric columns.
func (d *Data) NumMetrics() int {
	if len(d.Metrics) == 0 {
		return 0
	}
	return len(d.Metrics[0])
}

// Validate checks the structural invariants of the data set and
// returns a descriptive error on the first violation.
func (d *Data) Validate() error {
	n := d.NumObs()
	if n == 0 {
		return fmt.Errorf("nlme: empty data set")
	}
	if len(d.Groups) != n {
		return fmt.Errorf("nlme: %d groups for %d observations", len(d.Groups), n)
	}
	if len(d.Metrics) != n {
		return fmt.Errorf("nlme: %d metric rows for %d observations", len(d.Metrics), n)
	}
	k := d.NumMetrics()
	if k == 0 {
		return fmt.Errorf("nlme: no metric columns")
	}
	if d.MetricNames != nil && len(d.MetricNames) != k {
		return fmt.Errorf("nlme: %d metric names for %d columns", len(d.MetricNames), k)
	}
	for i := 0; i < n; i++ {
		if len(d.Metrics[i]) != k {
			return fmt.Errorf("nlme: observation %d has %d metrics, want %d", i, len(d.Metrics[i]), k)
		}
		if d.Efforts[i] <= 0 || math.IsNaN(d.Efforts[i]) || math.IsInf(d.Efforts[i], 0) {
			return fmt.Errorf("nlme: observation %d has non-positive effort %v", i, d.Efforts[i])
		}
		anyPositive := false
		for _, m := range d.Metrics[i] {
			if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
				return fmt.Errorf("nlme: observation %d has invalid metric value %v", i, m)
			}
			if m > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return fmt.Errorf("nlme: observation %d has all-zero metrics; the lognormal model needs Σw·m > 0 (apply a floor first)", i)
		}
		if d.Groups[i] == "" {
			return fmt.Errorf("nlme: observation %d has empty group", i)
		}
	}
	return nil
}

// groupIndex returns, for each distinct group in first-seen order, the
// observation indices belonging to it.
func (d *Data) groupIndex() (names []string, members [][]int) {
	pos := map[string]int{}
	for i, g := range d.Groups {
		j, ok := pos[g]
		if !ok {
			j = len(names)
			pos[g] = j
			names = append(names, g)
			members = append(members, nil)
		}
		members[j] = append(members[j], i)
	}
	return names, members
}

// predictorLogs returns log(Σ_k w_k·m_ik) for every observation, or an
// error if any predictor is non-positive under these weights.
func (d *Data) predictorLogs(weights []float64) ([]float64, error) {
	out := make([]float64, d.NumObs())
	if err := d.predictorLogsInto(out, weights); err != nil {
		return nil, err
	}
	return out, nil
}

// errInfeasible is the allocation-free signal predictorLogsInto raises
// for a non-positive predictor: optimizer objectives hit that case on
// every infeasible trial point, so it must not cost a fmt.Errorf each
// time.
var errInfeasible = errors.New("nlme: non-positive predictor")

// predictorLogsInto is predictorLogs writing into dst (which must have
// length NumObs), allocating nothing. On an infeasible weight vector it
// returns errInfeasible and dst holds partial results the caller must
// ignore.
func (d *Data) predictorLogsInto(dst, weights []float64) error {
	if len(weights) != d.NumMetrics() {
		return fmt.Errorf("nlme: %d weights for %d metrics", len(weights), d.NumMetrics())
	}
	for i, row := range d.Metrics {
		var eta float64
		for k, m := range row {
			eta += weights[k] * m
		}
		if eta <= 0 || math.IsNaN(eta) {
			return errInfeasible
		}
		dst[i] = math.Log(eta)
	}
	return nil
}
