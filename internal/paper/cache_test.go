package paper

import (
	"reflect"
	"testing"

	"repro/internal/cache"
)

// TestMeasureCorpusCacheDeterminism pins the cache contract at the
// experiment level: the corpus measured with no cache, a cold cache,
// and a warm cache — the last under a parallel pool, where the
// single-flight path is exercised — is bit-identical.
func TestMeasureCorpusCacheDeterminism(t *testing.T) {
	ch, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MeasureCorpusN(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := MeasureCorpusOpts(true, Opts{Concurrency: 1, Cache: ch})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := MeasureCorpusOpts(true, Opts{Concurrency: 8, Cache: ch})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cold) {
		t.Error("cold-cache corpus diverged from uncached corpus")
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Error("warm-cache parallel corpus diverged from uncached corpus")
	}
	// The cold pass misses each component record once (plus one "sig"
	// record per distinct signature, counted under its own kind); the
	// warm pass answers every component from disk.
	ks := ch.KindStats()
	if kc := ks["component"]; int(kc.Misses) != len(plain) || int(kc.Hits) != len(plain) {
		t.Errorf("component-kind counters = %+v, want %d misses then %d hits", kc, len(plain), len(plain))
	}
	if kc := ks["sig"]; kc.Misses == 0 || kc.Hits != 0 {
		t.Errorf("sig-kind counters = %+v, want cold misses and no warm traffic", kc)
	}
}
