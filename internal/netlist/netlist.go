// Package netlist defines the gate-level intermediate representation
// produced by internal/synth: single-bit nets, primitive cells
// (inverters, two-input gates, muxes, flip-flops, latches), and RAM
// macros. It also implements the netlist optimization passes that a
// synthesis tool such as Design Compiler would run before reporting
// metrics: constant folding, structural hashing (common subexpression
// elimination), and dead-logic removal.
//
// The Table 3 synthesis metrics of the µComplexity paper — Cells, Nets,
// FFs, AreaL, AreaS, PowerD, PowerS — are all computed from this
// representation (see internal/synth and internal/power); FanInLC and
// Freq come from logic-cone and LUT analyses over the same structure
// (internal/cones, internal/fpga).
package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// NetID identifies a single-bit net. The zero value is valid (net 0);
// Nil marks absent optional pins.
type NetID int32

// Nil is the absent-net marker.
const Nil NetID = -1

// CellType enumerates primitive cells.
type CellType uint8

// Primitive cell types. Mux2 selects A when S=0 and B when S=1.
// DFF captures D on the clock edge; Latch is transparent while EN=1.
const (
	Inv CellType = iota
	Buf
	And2
	Or2
	Nand2
	Nor2
	Xor2
	Xnor2
	Mux2
	DFF
	Latch
	numCellTypes
)

func (t CellType) String() string {
	switch t {
	case Inv:
		return "INV"
	case Buf:
		return "BUF"
	case And2:
		return "AND2"
	case Or2:
		return "OR2"
	case Nand2:
		return "NAND2"
	case Nor2:
		return "NOR2"
	case Xor2:
		return "XOR2"
	case Xnor2:
		return "XNOR2"
	case Mux2:
		return "MUX2"
	case DFF:
		return "DFF"
	case Latch:
		return "LATCH"
	}
	return fmt.Sprintf("CellType(%d)", uint8(t))
}

// IsSequential reports whether the cell type is a state element.
func (t CellType) IsSequential() bool { return t == DFF || t == Latch }

// NumInputs returns the number of input pins of the cell type
// (excluding the DFF clock, which is tracked separately).
func (t CellType) NumInputs() int {
	switch t {
	case Inv, Buf:
		return 1
	case Mux2:
		return 3
	case DFF:
		return 1 // D; clock is in Cell.Clk
	case Latch:
		return 2 // D, EN
	default:
		return 2
	}
}

// Cell is one primitive cell instance.
type Cell struct {
	Type CellType
	// In holds the input pins: [a], [a b], [a b s] for Mux2 (s = In[2]),
	// [d] for DFF, [d en] for Latch.
	In  [3]NetID
	Clk NetID // DFF only; Nil otherwise
	Out NetID
}

// Inputs returns the used input pins.
func (c *Cell) Inputs() []NetID { return c.In[:c.Type.NumInputs()] }

// RAM is an inferred memory macro with synchronous write ports (all on
// one clock) and any number of asynchronous read ports. Write ports
// apply in order on the clock edge, so a later port wins when two
// enabled ports target the same address — matching the sequential
// semantics of the always block they were inferred from.
type RAM struct {
	Name  string
	Width int
	Depth int

	Clk        NetID
	WritePorts []RAMWritePort
	ReadPorts  []RAMReadPort
}

// RAMWritePort is one synchronous write port.
type RAMWritePort struct {
	En   NetID
	Addr []NetID
	Data []NetID
}

// RAMReadPort is one asynchronous read port: Out bits are driven by
// the RAM.
type RAMReadPort struct {
	Addr []NetID
	Out  []NetID
}

// PortBit names one bit of a top-level port.
type PortBit struct {
	Name string // "data[3]" or "clk"
	Net  NetID
}

// Netlist is a flattened gate-level design.
//
// Once built (by Builder.Build or Optimize) a netlist is treated as
// immutable; the derived structures below (driver table, topological
// order, structural hash) are computed lazily on first use and cached,
// so every downstream pass — cones, fpga, timing, power, optimize —
// shares one copy instead of recomputing them. The cache is
// mutex-guarded, making concurrent analyses of a shared netlist (e.g.
// one synthesis result reused by parallel workers) race-free.
type Netlist struct {
	// Nets is the total net count (including constants). It is stored
	// explicitly rather than derived from the name tables so that
	// TrimNames can release the names of a long-retained netlist
	// without touching the count every analysis kernel sizes its
	// tables by.
	Nets int

	// Per-net debug names ("" for anonymous), packed into one
	// pointer-free backing buffer: name i is
	// NetNameData[NetNameOff[i]:NetNameOff[i+1]]. A netlist can be
	// retained for a long time (measurement sessions keep every
	// distinct signature's optimized netlist alive), and a plain
	// []string would make the garbage collector scan one pointer per
	// net on every cycle; the packed form is marked without being
	// scanned. Build the pair with SetNetNames, read through
	// NetName/NumNets; both tables may be empty after TrimNames.
	NetNameData []byte
	NetNameOff  []int32

	Cells []Cell
	RAMs  []*RAM

	Const0, Const1 NetID

	Inputs  []PortBit
	Outputs []PortBit

	derived struct {
		mu       sync.Mutex
		drivers  []int
		topo     []int
		topoErr  error
		topoDone bool
		hash     string
	}
}

// NumNets returns the number of nets (including constants).
func (n *Netlist) NumNets() int { return n.Nets }

// NetName returns the debug name of a net (possibly "", always "" for
// every net after TrimNames).
func (n *Netlist) NetName(id NetID) string {
	if id >= 0 && int(id)+1 < len(n.NetNameOff) {
		return string(n.NetNameData[n.NetNameOff[id]:n.NetNameOff[id+1]])
	}
	return ""
}

// SetNetNames installs the per-net debug names, packing them into the
// pointer-free backing form. The net count of the netlist becomes
// len(names), so this must be called exactly once, with one entry per
// net, when the netlist is built.
func (n *Netlist) SetNetNames(names []string) {
	total := 0
	for _, s := range names {
		total += len(s)
	}
	data := make([]byte, 0, total)
	off := make([]int32, len(names)+1)
	for i, s := range names {
		data = append(data, s...)
		off[i+1] = int32(len(data))
	}
	n.Nets = len(names)
	n.NetNameData = data
	n.NetNameOff = off
}

// TrimNames drops the per-net debug names while preserving the net
// count (every analysis kernel sizes its tables by NumNets, and the
// structural hash covers the count, so trimming changes neither
// measurements nor identity — NetName just returns "" for every net).
// Optimized netlists share the raw-sized name tables of the netlist
// they came from, so for a netlist retained beyond its measurement
// this keeps tens of bytes per net from outliving their only reader,
// the debug dump.
func (n *Netlist) TrimNames() {
	n.NetNameData = nil
	n.NetNameOff = nil
}

// NumFFs counts DFF cells.
func (n *Netlist) NumFFs() int {
	c := 0
	for i := range n.Cells {
		if n.Cells[i].Type == DFF {
			c++
		}
	}
	return c
}

// CountByType returns the number of cells of each type.
func (n *Netlist) CountByType() map[CellType]int {
	out := map[CellType]int{}
	for i := range n.Cells {
		out[n.Cells[i].Type]++
	}
	return out
}

// Drivers returns, for every net, the index of the cell driving it
// (-1 for undriven nets: primary inputs, constants, RAM outputs). The
// table is computed once and shared: callers must treat it as
// read-only.
func (n *Netlist) Drivers() []int {
	n.derived.mu.Lock()
	defer n.derived.mu.Unlock()
	return n.driversLocked()
}

func (n *Netlist) driversLocked() []int {
	if n.derived.drivers == nil {
		d := make([]int, n.NumNets())
		for i := range d {
			d[i] = -1
		}
		for i := range n.Cells {
			d[n.Cells[i].Out] = i
		}
		n.derived.drivers = d
	}
	return n.derived.drivers
}

// Hash returns a stable structural hash of the netlist: cells (type
// and pin wiring), RAM macros, constants, and port bindings, hashed
// with SHA-256 and rendered as hex. Per-net debug names are excluded —
// two netlists that differ only in naming hash identically. The hash
// is computed once and cached; it keys content-addressed caches of
// synthesis derivatives (see internal/cache).
func (n *Netlist) Hash() string {
	n.derived.mu.Lock()
	defer n.derived.mu.Unlock()
	if n.derived.hash != "" {
		return n.derived.hash
	}
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wStr := func(s string) {
		wInt(int64(len(s)))
		h.Write([]byte(s))
	}
	wIDs := func(ids []NetID) {
		wInt(int64(len(ids)))
		for _, id := range ids {
			wInt(int64(id))
		}
	}
	wStr("netlist-hash-v1")
	wInt(int64(n.NumNets()))
	wInt(int64(n.Const0))
	wInt(int64(n.Const1))
	wInt(int64(len(n.Cells)))
	for i := range n.Cells {
		c := &n.Cells[i]
		wInt(int64(c.Type))
		wInt(int64(c.In[0]))
		wInt(int64(c.In[1]))
		wInt(int64(c.In[2]))
		wInt(int64(c.Clk))
		wInt(int64(c.Out))
	}
	wInt(int64(len(n.RAMs)))
	for _, r := range n.RAMs {
		wStr(r.Name)
		wInt(int64(r.Width))
		wInt(int64(r.Depth))
		wInt(int64(r.Clk))
		wInt(int64(len(r.WritePorts)))
		for _, wp := range r.WritePorts {
			wInt(int64(wp.En))
			wIDs(wp.Addr)
			wIDs(wp.Data)
		}
		wInt(int64(len(r.ReadPorts)))
		for _, rp := range r.ReadPorts {
			wIDs(rp.Addr)
			wIDs(rp.Out)
		}
	}
	wInt(int64(len(n.Inputs)))
	for _, p := range n.Inputs {
		wStr(p.Name)
		wInt(int64(p.Net))
	}
	wInt(int64(len(n.Outputs)))
	for _, p := range n.Outputs {
		wStr(p.Name)
		wInt(int64(p.Net))
	}
	n.derived.hash = hex.EncodeToString(h.Sum(nil))
	return n.derived.hash
}

// TrimDerived drops the lazily derived driver and topological-order
// tables, keeping the memoized structural hash. Both tables rebuild on
// demand, so this is purely a live-heap release for netlists retained
// beyond their measurement (a session's flight table keeps every
// distinct signature's optimized netlist for the rest of the session;
// the derived tables are sized by cell count and would otherwise
// dominate what the garbage collector has to carry for them).
func (n *Netlist) TrimDerived() {
	n.derived.mu.Lock()
	n.derived.drivers = nil
	n.derived.topo = nil
	n.derived.topoErr = nil
	n.derived.topoDone = false
	n.derived.mu.Unlock()
}

// TopoOrder returns the combinational cells in topological order
// (inputs before outputs). Sequential cells are excluded (their outputs
// are leaves). It returns an error if the combinational logic contains
// a cycle. The order is computed once and shared: callers must treat
// it as read-only.
func (n *Netlist) TopoOrder() ([]int, error) {
	n.derived.mu.Lock()
	defer n.derived.mu.Unlock()
	if !n.derived.topoDone {
		n.derived.topo, n.derived.topoErr = n.topoOrderLocked()
		n.derived.topoDone = true
	}
	return n.derived.topo, n.derived.topoErr
}

func (n *Netlist) topoOrderLocked() ([]int, error) {
	order, _, err := n.topoOrderInto(n.driversLocked(), make([]byte, len(n.Cells)), nil, nil)
	return order, err
}

// topoOrderInto is the topological sort over caller-provided scratch:
// state must be len(Cells) and zeroed, stack and order are appended to
// from length zero (their capacity is reused). The returned stack lets
// a workspace keep its grown capacity.
func (n *Netlist) topoOrderInto(drivers []int, state []byte, stack []topoFrame, order []int) ([]int, []topoFrame, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	// Iterative DFS to avoid deep recursion on long gate chains.
	for start := range n.Cells {
		if n.Cells[start].Type.IsSequential() || state[start] != white {
			continue
		}
		stack = append(stack[:0], topoFrame{cell: start})
		state[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			cell := &n.Cells[f.cell]
			ins := cell.Inputs()
			if f.pin < len(ins) {
				pin := ins[f.pin]
				f.pin++
				if pin == Nil {
					continue
				}
				d := drivers[pin]
				if d < 0 || n.Cells[d].Type.IsSequential() {
					continue
				}
				switch state[d] {
				case white:
					state[d] = gray
					stack = append(stack, topoFrame{cell: d})
				case gray:
					return nil, stack, fmt.Errorf("netlist: combinational cycle through cell %d (%s) and %d (%s)",
						f.cell, cell.Type, d, n.Cells[d].Type)
				}
				continue
			}
			state[f.cell] = black
			order = append(order, f.cell)
			stack = stack[:len(stack)-1]
		}
	}
	return order, stack, nil
}

// Stats summarizes a netlist for reports and tests.
type Stats struct {
	Cells int // total cells (RAM macros count once each)
	Nets  int // nets referenced by live structure
	FFs   int
	RAMs  int
}

// Stats computes summary statistics. Nets counts every distinct net
// attached to a cell pin, port, or RAM pin.
func (n *Netlist) Stats() Stats {
	used := make([]bool, n.NumNets())
	mark := func(id NetID) {
		if id != Nil {
			used[id] = true
		}
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		for _, in := range c.Inputs() {
			mark(in)
		}
		mark(c.Clk)
		mark(c.Out)
	}
	for _, r := range n.RAMs {
		mark(r.Clk)
		for _, wp := range r.WritePorts {
			mark(wp.En)
			for _, b := range wp.Addr {
				mark(b)
			}
			for _, b := range wp.Data {
				mark(b)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				mark(b)
			}
			for _, b := range rp.Out {
				mark(b)
			}
		}
	}
	for _, p := range n.Inputs {
		mark(p.Net)
	}
	for _, p := range n.Outputs {
		mark(p.Net)
	}
	nets := 0
	for _, u := range used {
		if u {
			nets++
		}
	}
	return Stats{
		Cells: len(n.Cells) + len(n.RAMs),
		Nets:  nets,
		FFs:   n.NumFFs(),
		RAMs:  len(n.RAMs),
	}
}
