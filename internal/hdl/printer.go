package hdl

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a module back to µHDL source. The output is
// semantically equivalent to the input (it re-parses to an identical
// tree) but normalizes whitespace; it is used for debugging and for the
// parser round-trip tests.
func Format(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s", m.Name)
	if len(m.Params) > 0 {
		b.WriteString(" #(")
		for i, p := range m.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("parameter ")
			b.WriteString(p.Name)
			b.WriteString(" = ")
			appendExpr(&b, p.Value)
		}
		b.WriteString(")")
	}
	b.WriteString(" (")
	for i, p := range m.Ports {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Dir.String())
		if p.IsReg {
			b.WriteString(" reg")
		}
		if p.Range != nil {
			appendRange(&b, p.Range)
		}
		b.WriteByte(' ')
		b.WriteString(p.Name)
	}
	b.WriteString(");\n")
	for _, it := range m.Items {
		printItem(&b, it, 1)
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func labelSuffix(label string) string {
	if label == "" {
		return ""
	}
	return " : " + label
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func appendRange(b *strings.Builder, r *Range) {
	b.WriteString(" [")
	appendExpr(b, r.MSB)
	b.WriteByte(':')
	appendExpr(b, r.LSB)
	b.WriteByte(']')
}

func printItem(b *strings.Builder, it Item, depth int) {
	indent(b, depth)
	switch v := it.(type) {
	case *ParamDecl:
		kw := "parameter"
		if v.IsLocal {
			kw = "localparam"
		}
		b.WriteString(kw)
		b.WriteByte(' ')
		b.WriteString(v.Name)
		b.WriteString(" = ")
		appendExpr(b, v.Value)
		b.WriteString(";\n")
	case *NetDecl:
		b.WriteString(v.Kind.String())
		if v.Range != nil {
			appendRange(b, v.Range)
		}
		b.WriteByte(' ')
		for i, name := range v.Names {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(name)
		}
		if v.ArrayRange != nil {
			appendRange(b, v.ArrayRange)
		}
		b.WriteString(";\n")
	case *ContAssign:
		b.WriteString("assign ")
		appendExpr(b, v.LHS)
		b.WriteString(" = ")
		appendExpr(b, v.RHS)
		b.WriteString(";\n")
	case *AlwaysBlock:
		b.WriteString("always @(")
		for i, s := range v.Sens {
			if i > 0 {
				b.WriteString(" or ")
			}
			switch s.Edge {
			case EdgeAny:
				b.WriteString("*")
			case EdgePos:
				b.WriteString("posedge " + s.Signal)
			case EdgeNeg:
				b.WriteString("negedge " + s.Signal)
			default:
				b.WriteString(s.Signal)
			}
		}
		b.WriteString(")\n")
		printStmt(b, v.Body, depth+1)
	case *Instance:
		b.WriteString(v.ModuleName)
		if len(v.Params) > 0 {
			b.WriteString(" #(")
			printBindings(b, v.Params)
			b.WriteString(")")
		}
		b.WriteByte(' ')
		b.WriteString(v.Name)
		b.WriteString(" (")
		printBindings(b, v.Ports)
		b.WriteString(");\n")
	case *GenFor:
		b.WriteString("generate for (")
		b.WriteString(v.Var)
		b.WriteString(" = ")
		appendExpr(b, v.Init)
		b.WriteString("; ")
		appendExpr(b, v.Cond)
		b.WriteString("; ")
		b.WriteString(v.Var)
		b.WriteString(" = ")
		appendExpr(b, v.Step)
		b.WriteString(") begin")
		b.WriteString(labelSuffix(v.Label))
		b.WriteByte('\n')
		for _, sub := range v.Body {
			printItem(b, sub, depth+1)
		}
		indent(b, depth)
		b.WriteString("end endgenerate\n")
	case *GenIf:
		b.WriteString("generate if (")
		appendExpr(b, v.Cond)
		b.WriteString(") begin")
		b.WriteString(labelSuffix(v.ThenLabel))
		b.WriteByte('\n')
		for _, sub := range v.Then {
			printItem(b, sub, depth+1)
		}
		indent(b, depth)
		b.WriteString("end")
		if len(v.Else) > 0 {
			fmt.Fprintf(b, " else begin%s\n", labelSuffix(v.ElseLabel))
			for _, sub := range v.Else {
				printItem(b, sub, depth+1)
			}
			indent(b, depth)
			b.WriteString("end")
		}
		b.WriteString(" endgenerate\n")
	default:
		fmt.Fprintf(b, "// unknown item %T\n", it)
	}
}

func printBindings(b *strings.Builder, bs []Binding) {
	for i, bind := range bs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('.')
		b.WriteString(bind.Name)
		b.WriteByte('(')
		if bind.Value != nil {
			appendExpr(b, bind.Value)
		}
		b.WriteByte(')')
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch v := s.(type) {
	case *Block:
		b.WriteString("begin\n")
		for _, sub := range v.Stmts {
			printStmt(b, sub, depth+1)
		}
		indent(b, depth)
		b.WriteString("end\n")
	case *Assign:
		op := " = "
		if !v.Blocking {
			op = " <= "
		}
		appendExpr(b, v.LHS)
		b.WriteString(op)
		appendExpr(b, v.RHS)
		b.WriteString(";\n")
	case *If:
		b.WriteString("if (")
		appendExpr(b, v.Cond)
		b.WriteString(")\n")
		printStmt(b, v.Then, depth+1)
		if v.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			printStmt(b, v.Else, depth+1)
		}
	case *Case:
		kw := "case"
		if v.IsCasez {
			kw = "casez"
		}
		b.WriteString(kw)
		b.WriteString(" (")
		appendExpr(b, v.Subject)
		b.WriteString(")\n")
		for _, item := range v.Items {
			indent(b, depth+1)
			if item.Exprs == nil {
				b.WriteString("default:\n")
			} else {
				for i, e := range item.Exprs {
					if i > 0 {
						b.WriteString(", ")
					}
					appendExpr(b, e)
				}
				b.WriteString(":\n")
			}
			printStmt(b, item.Body, depth+2)
		}
		indent(b, depth)
		b.WriteString("endcase\n")
	case *For:
		initA := v.Init.(*Assign)
		stepA := v.Step.(*Assign)
		b.WriteString("for (")
		appendExpr(b, initA.LHS)
		b.WriteString(" = ")
		appendExpr(b, initA.RHS)
		b.WriteString("; ")
		appendExpr(b, v.Cond)
		b.WriteString("; ")
		appendExpr(b, stepA.LHS)
		b.WriteString(" = ")
		appendExpr(b, stepA.RHS)
		b.WriteString(")\n")
		printStmt(b, v.Body, depth+1)
	default:
		fmt.Fprintf(b, "// unknown stmt %T\n", s)
	}
}

var unaryOpText = map[UnaryOp]string{
	OpNot: "~", OpLogNot: "!", OpNeg: "-",
	OpRedAnd: "&", OpRedOr: "|", OpRedXor: "^",
	OpRedNand: "~&", OpRedNor: "~|", OpRedXnor: "~^",
}

var binaryOpText = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpXnor: "~^",
	OpLogAnd: "&&", OpLogOr: "||",
	OpEq: "==", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpShl: "<<", OpShr: ">>",
}

// FormatExpr renders an expression with full parenthesization (safe,
// if verbose).
func FormatExpr(e Expr) string {
	if v, ok := e.(*Ident); ok {
		return v.Name
	}
	var b strings.Builder
	appendExpr(&b, e)
	return b.String()
}

// appendExpr renders an expression directly into b. The printer routes
// every expression through this instead of FormatExpr so formatting a
// module (the source-metrics path runs it once per module) builds no
// intermediate per-node strings.
func appendExpr(b *strings.Builder, e Expr) {
	switch v := e.(type) {
	case *Ident:
		b.WriteString(v.Name)
	case *Number:
		if v.CareMask != 0 {
			b.WriteString(strconv.Itoa(v.Width))
			b.WriteString("'b")
			for i := 0; i < v.Width; i++ {
				bitPos := uint(v.Width - 1 - i)
				switch {
				case (v.CareMask>>bitPos)&1 == 0:
					b.WriteByte('?')
				case (v.Value>>bitPos)&1 == 1:
					b.WriteByte('1')
				default:
					b.WriteByte('0')
				}
			}
			return
		}
		if v.Width > 0 {
			b.WriteString(strconv.Itoa(v.Width))
			b.WriteString("'d")
		}
		b.WriteString(strconv.FormatUint(v.Value, 10))
	case *Unary:
		b.WriteByte('(')
		b.WriteString(unaryOpText[v.Op])
		appendExpr(b, v.X)
		b.WriteByte(')')
	case *Binary:
		b.WriteByte('(')
		appendExpr(b, v.L)
		b.WriteByte(' ')
		b.WriteString(binaryOpText[v.Op])
		b.WriteByte(' ')
		appendExpr(b, v.R)
		b.WriteByte(')')
	case *Ternary:
		b.WriteByte('(')
		appendExpr(b, v.Cond)
		b.WriteString(" ? ")
		appendExpr(b, v.Then)
		b.WriteString(" : ")
		appendExpr(b, v.Else)
		b.WriteByte(')')
	case *Index:
		appendExpr(b, v.Base)
		b.WriteByte('[')
		appendExpr(b, v.Idx)
		b.WriteByte(']')
	case *PartSelect:
		appendExpr(b, v.Base)
		b.WriteByte('[')
		appendExpr(b, v.MSB)
		b.WriteByte(':')
		appendExpr(b, v.LSB)
		b.WriteByte(']')
	case *Concat:
		b.WriteByte('{')
		for i, p := range v.Parts {
			if i > 0 {
				b.WriteString(", ")
			}
			appendExpr(b, p)
		}
		b.WriteByte('}')
	case *Repl:
		b.WriteByte('{')
		appendExpr(b, v.Count)
		b.WriteByte('{')
		appendExpr(b, v.X)
		b.WriteString("}}")
	default:
		fmt.Fprintf(b, "/*?%T*/", e)
	}
}
