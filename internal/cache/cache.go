// Package cache implements a content-addressed, versioned, on-disk
// cache for synthesis-derived results. Entries are binary-encoded
// files (internal/codec's versioned pointer-free encoding — explicit
// per-type encoders, no reflection) named by a SHA-256 key the caller
// derives from the content that determines the result — the
// structural fingerprint of the source design, the synthesis
// parameter signature, and the measurement options — plus the cache
// schema version, so a schema bump silently invalidates every old
// entry instead of misreading it. Each entry carries a CRC-32C over
// its payload and large payloads are flate-compressed per entry
// (recorded in the entry header).
//
// The cache is safe for concurrent use. Lookups of the same key are
// single-flighted: when several workers (e.g. an internal/parallel
// pool measuring a corpus) miss on one key at the same time, exactly
// one runs the computation and the rest wait for its result.
// Corrupted or truncated entries are treated as misses — the entry is
// deleted and recomputed — never as errors, so a damaged cache
// directory degrades to cold-start performance rather than failure.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// SchemaVersion is the on-disk format version. It participates in both
// the key derivation and the per-entry header, so bumping it orphans
// every existing entry (they are never decoded, only ignored).
// Version 3 introduced the binary codec format (versions 1-2 were
// gob); version 4 re-keys measurement entries from whole-design
// fingerprints to per-subtree source hashes and adds signature-level
// and dependency-graph entry kinds (the incremental remeasurement
// layer) — the payload encodings are unchanged, but the key semantics
// are not, so the bump keeps v3 entries from shadowing subtree-keyed
// results.
const SchemaVersion = 4

// CompressThreshold is the encoded payload size at which entries are
// flate-compressed on write (forwarded to codec.EncodeEntry, which
// records the choice in the entry header and keeps the compressed form
// only when it is actually smaller).
const CompressThreshold = codec.DefaultCompressThreshold

// EnvVar names the environment variable the commands consult for a
// default cache directory when no -cache-dir flag is given.
const EnvVar = "UCOMPLEXITY_CACHE"

// entryExt is the cache-entry file suffix ("ucx" binary entries;
// schema 1-2 wrote ".gob" files, which a v3 cache never touches).
const entryExt = ".ucx"

// DefaultDir returns the cache directory from the environment ("" when
// unset, meaning caching is off).
func DefaultDir() string { return os.Getenv(EnvVar) }

// ErrVerifyMismatch reports that verify mode recomputed a cached entry
// and the fresh result disagreed with the stored one.
var ErrVerifyMismatch = errors.New("cache: verify mismatch between cached and recomputed result")

// Stats counts cache activity since Open.
type Stats struct {
	Hits             int64 // entries served from disk
	Misses           int64 // keys computed fresh (no usable entry)
	Puts             int64 // entries written
	DecodeErrors     int64 // corrupt/truncated/stale entries discarded
	VerifyChecks     int64 // hits recomputed in verify mode
	VerifyMismatches int64
	// DiskScans counts full directory walks (DiskStats cache misses
	// and Snapshot calls). DiskStats memoizes between mutations, so a
	// stats-printing loop costs one scan, not one per print.
	DiskScans int64
	// Decode-path accounting, accumulated over successful reads:
	// DecodeNanos is wall time spent reading + decoding entries,
	// BytesStored counts on-disk entry bytes read, BytesRaw counts the
	// payload bytes after decompression (BytesRaw/BytesStored > 1 means
	// compression is earning its decode pass).
	DecodeNanos int64
	BytesStored int64
	BytesRaw    int64
}

// DiskStats summarizes the entries currently on disk (one directory
// scan; see Cache.DiskStats). Kinds breaks the totals down by entry
// kind (the KindKey prefix; plain Key entries group under "").
type DiskStats struct {
	Entries int
	Bytes   int64
	Kinds   map[string]KindDisk
}

// KindDisk is one kind's share of the on-disk footprint.
type KindDisk struct {
	Entries int
	Bytes   int64
}

// KindCounters is one kind's share of the runtime activity counters:
// hits and misses as counted by Fetch/Do/DoEq, puts as counted by Put.
type KindCounters struct {
	Hits, Misses, Puts int64
}

// flightShards is the single-flight table's shard count. Keys are
// SHA-256-derived, so any byte of the key spreads them uniformly; 32
// shards keep a thousand-component batch's registration traffic from
// serializing on one mutex while costing a few hundred bytes idle.
const flightShards = 32

// flightShard is one shard of the single-flight table.
type flightShard struct {
	mu sync.Mutex
	m  map[string]*flight
}

// Cache is one on-disk cache directory.
type Cache struct {
	dir    string
	verify atomic.Bool

	flights [flightShards]flightShard

	kinds sync.Map // kind string → *kindCounter

	// muts counts disk mutations (puts and discards); the DiskStats
	// memo is keyed by it, so an unchanged directory is never rescanned.
	muts atomic.Int64

	dsMu    sync.Mutex
	dsMemo  DiskStats
	dsAt    int64 // muts value dsMemo was computed at
	dsValid bool

	hits, misses, puts, decodeErrs, verifyChecks, verifyMismatches atomic.Int64
	decodeNanos, bytesStored, bytesRaw, diskScans                  atomic.Int64
}

type flight struct {
	done chan struct{}
	val  any
	hit  bool
	err  error
}

// kindCounter is the lock-free form of KindCounters.
type kindCounter struct {
	hits, misses, puts atomic.Int64
}

// Open creates (if needed) and opens a cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// shardOf picks a flight shard for key: keys are hex of SHA-256 (or
// kind-prefixed hex), so the tail bytes are uniformly distributed.
func (c *Cache) shardOf(key string) *flightShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.flights[h%flightShards]
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// SetVerify switches verify mode: every hit is recomputed and compared
// against the stored entry, turning the cache into a consistency
// checker instead of an accelerator.
func (c *Cache) SetVerify(v bool) { c.verify.Store(v) }

// Verifying reports whether verify mode is on.
func (c *Cache) Verifying() bool { return c.verify.Load() }

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Puts:             c.puts.Load(),
		DecodeErrors:     c.decodeErrs.Load(),
		VerifyChecks:     c.verifyChecks.Load(),
		VerifyMismatches: c.verifyMismatches.Load(),
		DiskScans:        c.diskScans.Load(),
		DecodeNanos:      c.decodeNanos.Load(),
		BytesStored:      c.bytesStored.Load(),
		BytesRaw:         c.bytesRaw.Load(),
	}
}

// DiskStats reports how many entries the cache directory holds and
// their total size, broken down by entry kind. The scan is memoized
// against the cache's own mutation counter: repeated calls with no
// interleaving Put or discard serve the memo without touching the
// filesystem. (External writers — another process sharing the
// directory — are not observed until this cache mutates; DiskStats is
// an observability call, not a consistency primitive.)
func (c *Cache) DiskStats() (DiskStats, error) {
	c.dsMu.Lock()
	defer c.dsMu.Unlock()
	// Read the generation before scanning: a Put landing mid-scan may
	// or may not be counted, and advancing muts forces the next call to
	// rescan rather than trust the torn snapshot.
	gen := c.muts.Load()
	if c.dsValid && gen == c.dsAt {
		return c.dsMemo.copy(), nil
	}
	ds := DiskStats{Kinds: map[string]KindDisk{}}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return ds, fmt.Errorf("cache: %w", err)
	}
	c.diskScans.Add(1)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), entryExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // entry deleted between ReadDir and Info
		}
		ds.Entries++
		ds.Bytes += info.Size()
		k := KindOf(strings.TrimSuffix(e.Name(), entryExt))
		kd := ds.Kinds[k]
		kd.Entries++
		kd.Bytes += info.Size()
		ds.Kinds[k] = kd
	}
	c.dsMemo, c.dsAt, c.dsValid = ds, gen, true
	return ds.copy(), nil
}

// copy returns a deep copy so callers cannot mutate the memo's map.
func (ds DiskStats) copy() DiskStats {
	out := ds
	out.Kinds = make(map[string]KindDisk, len(ds.Kinds))
	for k, v := range ds.Kinds {
		out.Kinds[k] = v
	}
	return out
}

// Snapshot is a point-in-time index of the keys present in the cache
// directory, built from one directory scan. Batch planners consult it
// to skip the per-entry open/stat a cold key would waste: MayContain
// is a hint, not a guarantee — an entry written after the snapshot is
// reported absent — so callers must treat "absent" as "compute it"
// (which Put makes idempotent: keys are content-addressed).
type Snapshot struct {
	keys map[string]struct{}
}

// Snapshot scans the cache directory once and returns the key index.
func (c *Cache) Snapshot() (*Snapshot, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c.diskScans.Add(1)
	s := &Snapshot{keys: make(map[string]struct{}, len(entries))}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), entryExt) {
			continue
		}
		s.keys[strings.TrimSuffix(e.Name(), entryExt)] = struct{}{}
	}
	return s, nil
}

// MayContain reports whether key was present at snapshot time. A nil
// snapshot reports true for every key (unknown means "go look").
func (s *Snapshot) MayContain(key string) bool {
	if s == nil {
		return true
	}
	_, ok := s.keys[key]
	return ok
}

// Len returns the number of keys in the snapshot.
func (s *Snapshot) Len() int {
	if s == nil {
		return 0
	}
	return len(s.keys)
}

// KindStats returns a snapshot of the per-kind runtime counters (keys
// are KindKey kinds; plain Key traffic groups under "").
func (c *Cache) KindStats() map[string]KindCounters {
	out := map[string]KindCounters{}
	c.kinds.Range(func(k, v any) bool {
		kc := v.(*kindCounter)
		out[k.(string)] = KindCounters{
			Hits:   kc.hits.Load(),
			Misses: kc.misses.Load(),
			Puts:   kc.puts.Load(),
		}
		return true
	})
	return out
}

// KindRows renders one human-readable line per entry kind — disk
// footprint from a DiskStats scan joined with the run's KindStats
// counters — sorted by kind name, for the commands' -cache-stats
// output. Kinds with neither disk entries nor runtime traffic are
// omitted; plain Key entries report as "plain".
func KindRows(ds DiskStats, ks map[string]KindCounters) []string {
	names := map[string]bool{}
	for k := range ds.Kinds {
		names[k] = true
	}
	for k := range ks {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	rows := make([]string, 0, len(sorted))
	for _, k := range sorted {
		kd, kc := ds.Kinds[k], ks[k]
		if kd.Entries == 0 && kc == (KindCounters{}) {
			continue
		}
		label := k
		if label == "" {
			label = "plain"
		}
		row := fmt.Sprintf("kind %-9s %4d entries, %8d bytes", label+":", kd.Entries, kd.Bytes)
		if total := kc.Hits + kc.Misses; total > 0 {
			row += fmt.Sprintf("; %d hits / %d misses (%.1f%% hit rate), %d puts",
				kc.Hits, kc.Misses, 100*float64(kc.Hits)/float64(total), kc.Puts)
		} else if kc.Puts > 0 {
			row += fmt.Sprintf("; %d puts", kc.Puts)
		}
		rows = append(rows, row)
	}
	return rows
}

// countKind folds one event into the key's kind counters. The fast
// path is a lock-free sync.Map load plus atomic adds — the kind set is
// tiny and stable, so the store path runs a handful of times per run.
func (c *Cache) countKind(key string, hits, misses, puts int64) {
	k := KindOf(key)
	v, ok := c.kinds.Load(k)
	if !ok {
		v, _ = c.kinds.LoadOrStore(k, &kindCounter{})
	}
	kc := v.(*kindCounter)
	if hits != 0 {
		kc.hits.Add(hits)
	}
	if misses != 0 {
		kc.misses.Add(misses)
	}
	if puts != 0 {
		kc.puts.Add(puts)
	}
}

// Key derives a cache key from the parts that determine a result.
// Parts are length-prefixed (so {"ab","c"} and {"a","bc"} differ) and
// the schema version is mixed in. The key doubles as the entry's file
// name.
func Key(parts ...string) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(SchemaVersion))
	h.Write(buf[:])
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KindKey derives a cache key like Key but tagged with an entry kind:
// the returned key is "<kind>-<hash>", so the kind survives into the
// entry file name (per-kind disk stats read it back with KindOf) and
// the runtime counters attribute hits/misses/puts to it. The kind is
// also mixed into the hash, so identical parts under different kinds
// are distinct entries. Kinds must be non-empty, filename-safe, and
// free of '-' (the separator).
func KindKey(kind string, parts ...string) string {
	return kind + "-" + Key(append([]string{"kind=" + kind}, parts...)...)
}

// KindOf extracts the kind tag from a key: the prefix before the first
// '-' for KindKey keys, "" for plain Key keys (bare hex).
func KindOf(key string) string {
	if kind, _, ok := strings.Cut(key, "-"); ok {
		return kind
	}
	return ""
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+entryExt) }

// scratch is the per-read decode workspace: the raw file bytes and the
// decompression output live in two reusable buffers, so a warm sweep's
// steady state reads entry after entry without allocating either. The
// buffers only hold bytes between Get and the typed decode — decoded
// values copy out of them (a codec.Codec contract) — so pooling them
// process-wide is safe.
type scratch struct {
	file []byte
	raw  []byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// readEntry reads and envelope-decodes one entry file into sc,
// returning the payload (aliasing sc's buffers). A missing file
// returns os.ErrNotExist; any other failure means a damaged entry.
func (c *Cache) readEntry(key string, sc *scratch) ([]byte, codec.EntryInfo, error) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, codec.EntryInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, codec.EntryInfo{}, err
	}
	size := int(st.Size())
	if cap(sc.file) < size {
		sc.file = make([]byte, size)
	}
	sc.file = sc.file[:size]
	if _, err := io.ReadFull(f, sc.file); err != nil {
		return nil, codec.EntryInfo{}, err
	}
	return codec.DecodeEntry(sc.file, SchemaVersion, key, &sc.raw)
}

// Get decodes the entry for key with cd. It returns false on any miss:
// no entry, a truncated or corrupt file, a CRC or schema mismatch, or
// a payload cd rejects (damaged entries are deleted so they are not
// re-read every time).
func Get[T any](c *Cache, key string, cd codec.Codec[T]) (T, bool) {
	var zero T
	start := time.Now()
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	payload, info, err := c.readEntry(key, sc)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			c.discard(key)
		}
		return zero, false
	}
	r := codec.NewReader(payload)
	v, err := cd.Decode(r)
	if err == nil {
		err = r.Finish()
	}
	if err != nil {
		c.discard(key)
		return zero, false
	}
	c.decodeNanos.Add(time.Since(start).Nanoseconds())
	c.bytesStored.Add(int64(info.StoredLen))
	c.bytesRaw.Add(int64(info.RawLen))
	return v, true
}

// Fetch is Get with stats accounting: a successful decode counts as a
// hit. Unlike Do it never computes or stores. Batch planners use it to
// probe for finished entries up front; a miss counts nothing, because
// the planner's eventual Do/DoEq on the same key records the miss when
// it computes. In verify mode callers should skip Fetch and go through
// Do/DoEq so hits are recomputed and compared.
func Fetch[T any](c *Cache, key string, cd codec.Codec[T]) (T, bool) {
	if c == nil {
		var zero T
		return zero, false
	}
	v, ok := Get(c, key, cd)
	if !ok {
		return v, false
	}
	c.hits.Add(1)
	c.countKind(key, 1, 0, 0)
	return v, true
}

func (c *Cache) discard(key string) {
	c.decodeErrs.Add(1)
	os.Remove(c.path(key))
	c.muts.Add(1)
}

// Put writes the entry for key atomically (temp file + rename), so a
// concurrent reader or a crash never observes a partial entry.
func Put[T any](c *Cache, key string, cd codec.Codec[T], val T) error {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	payload := cd.Append(sc.raw[:0], val)
	sc.raw = payload[:0]
	entry := codec.EncodeEntry(sc.file[:0], SchemaVersion, key, payload, CompressThreshold)
	sc.file = entry[:0]

	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	c.puts.Add(1)
	c.countKind(key, 0, 0, 1)
	c.muts.Add(1)
	return nil
}

// PutIfAbsent writes the entry only when no file for key exists yet,
// reporting whether it wrote. Skipping is sound for every key in this
// cache: keys are content-addressed, so an existing entry already
// holds this value (the schema version pins the encoding), and a
// damaged one is discarded at read time and re-stored by the next
// write. Callers that re-store the same entry every round — a watch
// loop re-anchoring its baseline graph — pay one stat instead of an
// encode, compress, and atomic write.
func PutIfAbsent[T any](c *Cache, key string, cd codec.Codec[T], val T) (bool, error) {
	if _, err := os.Stat(c.path(key)); err == nil {
		return false, nil
	}
	return true, Put(c, key, cd, val)
}

// Do returns the entry for key, computing and storing it on a miss.
// The boolean reports whether the result came from the cache.
// Concurrent calls for the same key are single-flighted: one computes,
// the rest receive its result. A nil cache just runs compute.
//
// In verify mode a hit recomputes anyway and compares the two results
// with reflect.DeepEqual, returning ErrVerifyMismatch on disagreement;
// use DoEq when the cached type needs a domain-specific comparison.
func Do[T any](c *Cache, key string, cd codec.Codec[T], compute func() (T, error)) (T, bool, error) {
	return DoEq(c, key, cd, compute, nil)
}

// DoEq is Do with an explicit verify-mode comparator: eq receives the
// cached and the recomputed value and returns a description of the
// first difference ("" when equal). A nil eq means reflect.DeepEqual.
func DoEq[T any](c *Cache, key string, cd codec.Codec[T], compute func() (T, error), eq func(cached, fresh T) string) (T, bool, error) {
	return DoEqHint(c, key, cd, compute, eq, nil)
}

// DoEqHint is DoEq consulting a directory Snapshot: when the snapshot
// says the key was absent, the initial read is skipped and the flight
// goes straight to compute-and-store — on a cold batch that deletes
// one failed open() per entry. The hint never changes the result: a
// racing writer's entry is simply recomputed to the identical value
// (keys are content-addressed) and the Put overwrites in place. Verify
// mode ignores the hint so hits are still recomputed and compared.
func DoEqHint[T any](c *Cache, key string, cd codec.Codec[T], compute func() (T, error), eq func(cached, fresh T) string, snap *Snapshot) (T, bool, error) {
	var zero T
	if c == nil {
		v, err := compute()
		return v, false, err
	}

	sh := c.shardOf(key)
	sh.mu.Lock()
	if f, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			return zero, false, f.err
		}
		v, ok := f.val.(T)
		if !ok {
			return zero, false, fmt.Errorf("cache: key %s used with mismatched types %T and %T", key, f.val, zero)
		}
		return v, f.hit, nil
	}
	f := &flight{done: make(chan struct{})}
	if sh.m == nil {
		sh.m = map[string]*flight{}
	}
	sh.m[key] = f
	sh.mu.Unlock()
	defer func() {
		close(f.done)
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
	}()

	var cached T
	var ok bool
	if snap.MayContain(key) || c.Verifying() {
		cached, ok = Get(c, key, cd)
	}
	if ok {
		c.hits.Add(1)
		c.countKind(key, 1, 0, 0)
		if c.Verifying() {
			c.verifyChecks.Add(1)
			fresh, err := compute()
			if err != nil {
				f.err = fmt.Errorf("cache: verify recompute of %s: %w", key, err)
				return zero, false, f.err
			}
			diff := ""
			if eq != nil {
				diff = eq(cached, fresh)
			} else if !reflect.DeepEqual(cached, fresh) {
				diff = "values differ (DeepEqual)"
			}
			if diff != "" {
				c.verifyMismatches.Add(1)
				f.err = fmt.Errorf("%w: key %s: %s", ErrVerifyMismatch, key, diff)
				return zero, false, f.err
			}
		}
		f.val, f.hit = cached, true
		return cached, true, nil
	}

	c.misses.Add(1)
	c.countKind(key, 0, 1, 0)
	v, err := compute()
	if err != nil {
		f.err = err
		return zero, false, err
	}
	// A failed write is not fatal — the caller still has the value —
	// but it is counted as a decode error so a read-only or full cache
	// directory is visible in the stats.
	if err := Put(c, key, cd, v); err != nil {
		c.decodeErrs.Add(1)
	}
	f.val = v
	return v, false, nil
}
