// Package hdl implements µHDL, a synthesizable Verilog-2001-style
// hardware description language: lexer, abstract syntax tree, parser,
// and pretty-printer.
//
// The µComplexity paper measures software metrics (lines of code,
// statements) directly on HDL sources, and synthesis metrics (cells,
// nets, areas, power, flip-flops, logic-cone fan-ins, frequency) on the
// elaborated and synthesized design. This package is the front end of
// that measurement pipeline; see internal/elab for elaboration and
// internal/synth for synthesis.
//
// # Language subset
//
// µHDL supports the constructs the paper's accounting procedure cares
// about — in particular parameterized modules and generate loops, whose
// "minimal non-degenerate parameterization" is the heart of the scaling
// rule of Section 2.2:
//
//   - module/endmodule with #(parameter ...) headers and either
//     ANSI-style port lists (input/output/inout, optional reg, vector
//     ranges) or Verilog-95 non-ANSI name lists with body port
//     declarations (the dialect PUMA and IVM were written in)
//   - wire/reg/integer/genvar declarations, including memory arrays
//     (reg [W-1:0] mem [0:D-1])
//   - parameter and localparam declarations
//   - continuous assignments (assign lhs = rhs)
//   - always blocks with @(posedge/negedge ...), @(*), and explicit
//     signal sensitivity lists; blocking and nonblocking assignments;
//     if/else, case, casez with '?' wildcard labels (4'b1??0), and
//     constant-bound for loops
//   - module instantiation with named parameter and port bindings
//   - generate/endgenerate with genvar for loops and if/else blocks
//   - the usual operator set: arithmetic, bitwise, logical, relational,
//     shifts, concatenation {a,b}, replication {N{a}}, reductions,
//     bit and part selects, and the ternary conditional
//
// Unsupported (rejected at parse or synthesis time rather than silently
// mis-handled): signed arithmetic, functions/tasks, initial blocks,
// delays, events, strengths, and four-state X/Z values.
package hdl
