// Package paper regenerates every table and figure of the µComplexity
// paper's evaluation from this reproduction's own machinery: the
// embedded dataset, the mixed-effects fitter, and (for Figure 6) the
// synthetic design corpus measured through the full synthesis
// pipeline. Each experiment returns both structured results (consumed
// by tests and EXPERIMENTS.md) and a formatted text rendering.
package paper

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Table1 renders the design-characteristics table.
func Table1() string {
	t := &table{header: []string{"Characteristic", "Leon3", "PUMA", "IVM"}}
	for _, r := range dataset.Table1() {
		t.add(r.Characteristic, r.Leon3, r.PUMA, r.IVM)
	}
	return "Table 1: Characteristics of the processor designs.\n\n" + t.String()
}

// Table2 renders the reported design efforts.
func Table2() string {
	t := &table{header: []string{"Component", "Effort (person-months)"}}
	for _, c := range dataset.Paper() {
		t.add(c.Label(), trimF(c.Effort))
	}
	return "Table 2: Reported design effort.\n\n" + t.String()
}

func trimF(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

// Table3 renders the metric definitions with our substitute tools.
func Table3() string {
	t := &table{header: []string{"Metric", "Description", "Tool (reproduction)"}}
	for _, r := range dataset.Table3() {
		t.add(string(r.Metric), r.Description, r.Tool)
	}
	return "Table 3: Metrics gathered for each component.\n\n" + t.String()
}

// Table4Row is one estimator's accuracy in the Table 4 reproduction.
type Table4Row struct {
	Name              string
	SigmaEps          float64
	SigmaEpsPaper     float64
	SigmaEpsRho1      float64
	SigmaEpsRho1Paper float64
}

// Table4Result is the full Table 4 reproduction.
type Table4Result struct {
	// Components lists each data point with its reported effort and
	// fitted DEE1 estimate (the table's DEE1 column).
	Components []Table4Component
	Rows       []Table4Row
	// MaxAbsDiff is the largest |σε − σε_paper| across both model
	// variants and all estimators.
	MaxAbsDiff float64
}

// Table4Component pairs a component with its DEE1 estimate.
type Table4Component struct {
	Label     string
	Effort    float64
	DEE1      float64
	DEE1Paper float64
}

// Table4 refits every estimator of Table 4 on the paper's dataset and
// compares σε (both with productivity adjustment and with ρ=1) against
// the published values. The 12 estimators (both model variants) are
// fitted concurrently on every available core; use Table4N to bound or
// serialize the pool.
func Table4() (*Table4Result, error) {
	return Table4N(0)
}

// Table4N is Table4 with a concurrency bound (0 = GOMAXPROCS,
// 1 = exact sequential path). The result is bit-identical for every
// value.
func Table4N(concurrency int) (*Table4Result, error) {
	comps := dataset.Paper()
	rows, err := core.EvaluateEstimatorsN(comps, concurrency)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{}
	paperSE := dataset.PaperSigmaEps()
	paperSE1 := dataset.PaperSigmaEpsNoRho()
	for _, r := range rows {
		row := Table4Row{
			Name:              r.Name,
			SigmaEps:          r.SigmaEps,
			SigmaEpsPaper:     paperSE[r.Name],
			SigmaEpsRho1:      r.SigmaEpsRho1,
			SigmaEpsRho1Paper: paperSE1[r.Name],
		}
		res.Rows = append(res.Rows, row)
		for _, d := range []float64{
			math.Abs(row.SigmaEps - row.SigmaEpsPaper),
			math.Abs(row.SigmaEpsRho1 - row.SigmaEpsRho1Paper),
		} {
			if d > res.MaxAbsDiff {
				res.MaxAbsDiff = d
			}
		}
	}
	// DEE1 per-component column, reusing the calibration the estimator
	// evaluation above already fitted instead of refitting it.
	var cal *core.Calibration
	for _, r := range rows {
		if r.Name == "DEE1" {
			cal = r.Calibration
			break
		}
	}
	if cal == nil {
		return nil, fmt.Errorf("paper: estimator evaluation returned no DEE1 row")
	}
	paperDEE1 := dataset.PaperDEE1Column()
	for _, c := range comps {
		rho, _ := cal.Productivity(c.Project)
		est, err := cal.EstimateFromValues(
			[]float64{c.Metrics[dataset.Stmts], c.Metrics[dataset.FanInLC]}, rho)
		if err != nil {
			return nil, err
		}
		res.Components = append(res.Components, Table4Component{
			Label:     c.Label(),
			Effort:    c.Effort,
			DEE1:      est.Median,
			DEE1Paper: paperDEE1[c.Label()],
		})
	}
	return res, nil
}

// String renders the Table 4 reproduction.
func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4: Accuracy of various design effort estimators.\n\n")
	ct := &table{header: []string{"Component", "Effort", "DEE1", "DEE1(paper)"}}
	for _, c := range r.Components {
		ct.add(c.Label, trimF(c.Effort), f1(c.DEE1), f1(c.DEE1Paper))
	}
	b.WriteString(ct.String())
	b.WriteString("\n")
	st := &table{header: []string{"Estimator", "sigma_eps", "paper", "sigma_eps(rho=1)", "paper(rho=1)"}}
	for _, row := range r.Rows {
		st.add(row.Name, f2(row.SigmaEps), f2(row.SigmaEpsPaper), f2(row.SigmaEpsRho1), f2(row.SigmaEpsRho1Paper))
	}
	b.WriteString(st.String())
	fmt.Fprintf(&b, "\nmax |sigma_eps - paper| across all cells: %.3f\n", r.MaxAbsDiff)
	return b.String()
}

// AICBICResult compares the information criteria of Section 5.1.1.
type AICBICResult struct {
	DEE1AIC, DEE1BIC   float64
	StmtsAIC, StmtsBIC float64
}

// AICBIC reproduces the DEE1-vs-Stmts model comparison of Section
// 5.1.1 (paper values: DEE1 34.8/38.4, Stmts 37.0/39.7). The two fits
// run concurrently; use AICBICN to serialize them.
func AICBIC() (*AICBICResult, error) {
	return AICBICN(0)
}

// AICBICN is AICBIC with a concurrency bound (0 = GOMAXPROCS,
// 1 = exact sequential path).
func AICBICN(concurrency int) (*AICBICResult, error) {
	comps := dataset.Paper()
	var dee1, stmts *core.Calibration
	err := parallel.Group(concurrency,
		func() (err error) {
			dee1, err = core.Calibrate(comps, core.DEE1Metrics, core.CalibrationOptions{Mixed: true, Concurrency: concurrency})
			return err
		},
		func() (err error) {
			stmts, err = core.Calibrate(comps, []dataset.Metric{dataset.Stmts}, core.CalibrationOptions{Mixed: true, Concurrency: concurrency})
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	return &AICBICResult{
		DEE1AIC:  dee1.Fit.AIC(),
		DEE1BIC:  dee1.Fit.BIC(),
		StmtsAIC: stmts.Fit.AIC(),
		StmtsBIC: stmts.Fit.BIC(),
	}, nil
}

// String renders the comparison.
func (r *AICBICResult) String() string {
	t := &table{header: []string{"Model", "AIC", "paper AIC", "BIC", "paper BIC"}}
	t.add("DEE1 (Stmts+FanInLC)", f1(r.DEE1AIC), "34.8", f1(r.DEE1BIC), "38.4")
	t.add("Stmts", f1(r.StmtsAIC), "37.0", f1(r.StmtsBIC), "39.7")
	return "Section 5.1.1: model comparison by information criteria (lower is better).\n\n" + t.String()
}

// sortedEstimatorNames returns the estimator names in the paper's
// Table 4 column order.
func sortedEstimatorNames() []string {
	names := []string{"DEE1"}
	for _, m := range dataset.AllMetrics {
		names = append(names, string(m))
	}
	return names
}

// rankNames returns names sorted by the given score map (ascending).
func rankNames(score map[string]float64) []string {
	names := make([]string, 0, len(score))
	for n := range score {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return score[names[i]] < score[names[j]] })
	return names
}

// spearman computes the rank correlation between two score maps over
// their shared keys.
func spearman(a, b map[string]float64) float64 {
	var av, bv []float64
	for k, x := range a {
		y, ok := b[k]
		if !ok {
			continue
		}
		av = append(av, x)
		bv = append(bv, y)
	}
	if len(av) < 3 {
		return 0
	}
	return stats.SpearmanCorrelation(av, bv)
}
