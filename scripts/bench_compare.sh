#!/bin/sh
# scripts/bench_compare.sh — diff two BENCH_*.json files produced by
# scripts/bench.sh and fail on performance regressions.
#
# Usage:
#   scripts/bench_compare.sh BENCH_old.json BENCH_new.json
#   TOLERANCE=25 scripts/bench_compare.sh old.json new.json
#
# Exits non-zero if any benchmark present in both files regressed by
# more than TOLERANCE percent (default 10) in ns/op, by more than
# ALLOC_TOLERANCE percent (default TOLERANCE) in allocs/op or
# bytes/op, if any speedup_vs_sequential metric dropped, or if a
# speedup_vs_warm_whole_unit metric fell below its absolute 5x floor
# (the incremental-remeasurement acceptance bar), or if a
# scaling_ratio_vs_100 metric exceeds its absolute 1.3 ceiling (the
# generated-corpus scaling acceptance bar: the per-component cost of a
# 1000-component cold sweep may be at most 1.3x the 100-component
# cost measured in the same process). Allocation
# gates carry an absolute noise floor (ALLOC_FLOOR allocs, default 512;
# BYTES_FLOOR bytes, default 65536): a regression only counts when the
# delta also exceeds the floor, because small benchmarks jitter by a
# handful of allocations (sync.Pool refills, map growth landing on a
# different iteration) that a pure ratio gate would flag spuriously.
# Unlike ns/op, allocation counts are load-independent, so their gate
# stays strict even on noisy shared runners. Benchmarks present in only
# one file are reported but do not fail the comparison. Speedup gates are skipped when either file
# recorded gomaxprocs 1: a single-core runner cannot show parallel
# speedup (it measures pure scheduling overhead, ~0.95x), so gating on
# it would trip spuriously. Sub-10µs benchmarks are reported but never
# fail the gate either: at that scale a count-based -benchtime
# measures timer and scheduler noise, not the code under test. The
# CacheDecode/CacheEncode codec micro-benchmarks get a lower 1µs
# exemption floor instead: the warm path is decode-bound, so a decode
# regression is exactly what the gate exists to catch, and their
# single-buffer kernels time stably well below 10µs.
set -eu

if [ "$#" -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi
old="$1"
new="$2"
tolerance="${TOLERANCE:-10}"
alloc_tolerance="${ALLOC_TOLERANCE:-$tolerance}"
alloc_floor="${ALLOC_FLOOR:-512}"
bytes_floor="${BYTES_FLOOR:-65536}"
[ -r "$old" ] || { echo "bench_compare: cannot read $old" >&2; exit 2; }
[ -r "$new" ] || { echo "bench_compare: cannot read $new" >&2; exit 2; }

# Each result record is one line of the JSON; pull out the fields we
# compare with awk so the script needs no jq.
extract() {
	awk '
	/"name":/ {
		name = ""; ns = ""; sp = ""; gmp = "-"; al = "-"; by = "-"; iw = "-"; sr = "-"
		if (match($0, /"name": "[^"]*"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
		}
		if (match($0, /"ns\/op": [0-9.eE+-]+/)) {
			ns = substr($0, RSTART + 9, RLENGTH - 9)
		}
		if (match($0, /"speedup_vs_sequential": [0-9.eE+-]+/)) {
			sp = substr($0, RSTART + 24, RLENGTH - 24)
		}
		if (match($0, /"speedup_vs_warm_whole_unit": [0-9.eE+-]+/)) {
			iw = substr($0, RSTART + 30, RLENGTH - 30)
		}
		if (match($0, /"scaling_ratio_vs_100": [0-9.eE+-]+/)) {
			sr = substr($0, RSTART + 24, RLENGTH - 24)
		}
		if (match($0, /"gomaxprocs": [0-9.eE+-]+/)) {
			gmp = substr($0, RSTART + 14, RLENGTH - 14)
		}
		if (match($0, /"allocs\/op": [0-9.eE+-]+/)) {
			al = substr($0, RSTART + 13, RLENGTH - 13)
		}
		if (match($0, /"bytes\/op": [0-9.eE+-]+/)) {
			by = substr($0, RSTART + 12, RLENGTH - 12)
		}
		if (name != "" && ns != "") printf "%s %s %s %s %s %s %s %s\n", name, ns, (sp == "" ? "-" : sp), gmp, al, by, iw, sr
	}
	' "$1"
}

tmp_old="$(mktemp)"
tmp_new="$(mktemp)"
trap 'rm -f "$tmp_old" "$tmp_new"' EXIT
extract "$old" > "$tmp_old"
extract "$new" > "$tmp_new"

awk -v oldfile="$old" -v newfile="$new" -v tol="$tolerance" \
	-v atol="$alloc_tolerance" -v afloor="$alloc_floor" -v bfloor="$bytes_floor" '
# allocgate prints and gates one allocation-family metric (allocs/op or
# bytes/op): a regression needs both the ratio above the tolerance AND
# an absolute delta above the noise floor.
function allocgate(name, o, n, unit, floor,    ratio, flag) {
	ratio = (o > 0) ? n / o : 1
	flag = "ok"
	if (ratio > 1 + atol / 100 && n - o > floor) { flag = "REGRESSION"; bad++ }
	else if (ratio > 1 + atol / 100) flag = "noisy"
	else if (ratio < 1 - atol / 100 && o - n > floor) flag = "improved"
	printf "  %-9s %-50s %12.0f -> %12.0f %s (%+.1f%%)\n", flag, name, o, n, unit, (ratio - 1) * 100
}
NR == FNR { ns[$1] = $2; sp[$1] = $3; gmp[$1] = $4; al[$1] = $5; by[$1] = $6; iw[$1] = $7; sr[$1] = $8; next }
{
	name = $1
	if (!(name in ns)) {
		printf "  new       %-50s %12.0f ns/op (not in %s)\n", name, $2, oldfile
		next
	}
	seen[name] = 1
	o = ns[name] + 0; n = $2 + 0
	ratio = (o > 0) ? n / o : 1
	flag = "ok"
	if (ratio > 1 + tol / 100) {
		floor = (name ~ /^Cache(Decode|Encode)\//) ? 1000 : 10000
		if (o < floor && n < floor) flag = "noisy"
		else { flag = "REGRESSION"; bad++ }
	}
	else if (ratio < 0.90) flag = "improved"
	printf "  %-9s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", flag, name, o, n, (ratio - 1) * 100
	if (al[name] != "-" && $5 != "-") allocgate(name, al[name] + 0, $5 + 0, "allocs/op", afloor + 0)
	if (by[name] != "-" && $6 != "-") allocgate(name, by[name] + 0, $6 + 0, "bytes/op", bfloor + 0)
	if (sp[name] != "-" && $3 != "-") {
		if ((gmp[name] != "-" && gmp[name] + 0 == 1) || ($4 != "-" && $4 + 0 == 1)) {
			printf "  skipped   %-50s speedup_vs_sequential gate (gomaxprocs 1)\n", name
		} else {
			os = sp[name] + 0; nsd = $3 + 0
			if (nsd < os) {
				printf "  REGRESSION %-49s speedup_vs_sequential %.4f -> %.4f\n", name, os, nsd
				bad++
			}
		}
	}
	# The incremental-edit speedup gates against an absolute floor
	# rather than the old value: the incremental path is a handful of
	# hash diffs against a full warm corpus measurement, so the ratio
	# jitters with runner load, but its reason to exist is the >= 5x
	# acceptance bar — dropping below that means the dirty cone stopped
	# pruning. Works on single-core runners too (it measures cache-path
	# pruning, not parallelism), so no gomaxprocs skip.
	if ($7 != "-") {
		niw = $7 + 0
		if (niw < 5) {
			printf "  REGRESSION %-49s speedup_vs_warm_whole_unit %.1f (floor 5)\n", name, niw
			bad++
		} else if (iw[name] != "" && iw[name] != "-") {
			printf "  ok        %-50s speedup_vs_warm_whole_unit %.1f -> %.1f (floor 5)\n", name, iw[name] + 0, niw
		} else {
			printf "  ok        %-50s speedup_vs_warm_whole_unit %.1f (floor 5)\n", name, niw
		}
	}
	# The generated-corpus scaling ratio also gates against an absolute
	# bar: 1000-component per-component cost at most 1.3x the
	# 100-component cost. Both sweeps run back to back in one process,
	# so ambient runner load largely cancels out of the ratio and the
	# gate holds even where raw ns/op would be noise-bound.
	if ($8 != "-") {
		nsr = $8 + 0
		if (nsr > 1.3) {
			printf "  REGRESSION %-49s scaling_ratio_vs_100 %.2f (ceiling 1.3)\n", name, nsr
			bad++
		} else if (sr[name] != "" && sr[name] != "-") {
			printf "  ok        %-50s scaling_ratio_vs_100 %.2f -> %.2f (ceiling 1.3)\n", name, sr[name] + 0, nsr
		} else {
			printf "  ok        %-50s scaling_ratio_vs_100 %.2f (ceiling 1.3)\n", name, nsr
		}
	}
}
END {
	for (name in ns) if (!(name in seen)) {
		printf "  gone      %-50s (only in %s)\n", name, oldfile
	}
	if (bad) {
		printf "bench_compare: %d regression(s) between %s and %s\n", bad, oldfile, newfile
		exit 1
	}
	printf "bench_compare: no regressions (%s -> %s)\n", oldfile, newfile
}
' "$tmp_old" "$tmp_new"
