package paper

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/designs"
	"repro/internal/measure"
)

// MeasureCorpus measures all 18 synthetic components through the full
// pipeline, with or without the accounting procedure, and returns them
// as a fit-ready measurement database (efforts are the Table 2 values
// their real counterparts reported). Components are measured on a
// GOMAXPROCS-bounded pool; the result order matches designs.All().
// Use MeasureCorpusN to bound or serialize the pool.
func MeasureCorpus(useAccounting bool) ([]dataset.Component, error) {
	return MeasureCorpusN(useAccounting, 0)
}

// MeasureCorpusN is MeasureCorpus with a concurrency bound
// (0 = GOMAXPROCS, 1 = exact sequential path). One component is one
// work item; when the component pool is parallel the accounting
// search's inner candidate pool is serialized so the machine is not
// oversubscribed. The measured corpus is identical for every value.
func MeasureCorpusN(useAccounting bool, concurrency int) ([]dataset.Component, error) {
	return MeasureCorpusOpts(useAccounting, Opts{Concurrency: concurrency})
}

// MeasureCorpusOpts is MeasureCorpus with full options (concurrency
// bound, measurement cache, shared session). The measured corpus is
// identical for every concurrency value and for cache off / cold /
// warm. The 18 components run as one measure.Session batch over the
// corpus-wide parsed design: one parse, a shared elaboration cache,
// and one synthesis per distinct (module, parameters) signature —
// bit-identical to measuring each component in isolation.
func MeasureCorpusOpts(useAccounting bool, o Opts) ([]dataset.Component, error) {
	comps := designs.All()
	sess, err := o.session()
	if err != nil {
		return nil, err
	}
	units := make([]measure.Unit, len(comps))
	for i, c := range comps {
		units[i] = measure.Unit{Top: c.Top, UseAccounting: useAccounting}
	}
	results, err := sess.MeasureAll(units, o.measureOptions())
	if err != nil {
		return nil, err
	}
	return corpusRows(comps, results)
}

// corpusRows converts batch measurements into fit-ready database rows
// (efforts are the Table 2 values their real counterparts reported).
func corpusRows(comps []designs.Component, results []*measure.ComponentResult) ([]dataset.Component, error) {
	if len(results) != len(comps) {
		return nil, fmt.Errorf("paper: %d measurements for %d components", len(results), len(comps))
	}
	rows := make([]dataset.Component, len(comps))
	for i, c := range comps {
		rows[i] = dataset.Component{
			Project: c.Project,
			Name:    c.Name,
			Effort:  c.Effort,
			Metrics: results[i].Metrics.MetricMap(),
		}
	}
	return rows, nil
}

// Figure6Result is the accounting-procedure experiment: per-estimator
// σε fitted on the synthetic corpus measured with and without the
// procedure of Section 2.2.
type Figure6Result struct {
	With    map[string]float64 // estimator → σε, accounting enabled
	Without map[string]float64 // estimator → σε, accounting disabled
	// PaperWithout holds the two "without" values the paper states
	// numerically (FanInLC 1.18, Nets 1.07), for the qualitative
	// cross-check.
	PaperWithout map[string]float64
}

// Figure6 runs the experiment. The paper's raw per-component metrics
// without the accounting procedure were never published, so this is
// the one experiment that substitutes the synthetic corpus for the
// original designs (see DESIGN.md); the success criterion is the
// *shape*: synthesis-metric estimators lose accuracy without the
// procedure, software-metric estimators do not change at all.
func Figure6() (*Figure6Result, error) {
	return Figure6N(0)
}

// Figure6N is Figure6 with a concurrency bound (0 = GOMAXPROCS,
// 1 = exact sequential path). Both corpus measurements and both
// estimator-evaluation batches run their items on the bounded pool.
func Figure6N(concurrency int) (*Figure6Result, error) {
	return Figure6Opts(Opts{Concurrency: concurrency})
}

// Figure6Opts is Figure6 with full options (concurrency bound,
// measurement cache, shared session). Both sweeps — accounting on and
// off — are planned as one session batch, so the two measurements of a
// component whose minimization lands on its declared defaults (and
// whose hierarchy gives the single-instance rule nothing to remove)
// share a single synthesis.
func Figure6Opts(o Opts) (*Figure6Result, error) {
	concurrency := o.Concurrency
	comps := designs.All()
	sess, err := o.session()
	if err != nil {
		return nil, err
	}
	units := make([]measure.Unit, 0, 2*len(comps))
	for _, c := range comps {
		units = append(units, measure.Unit{Top: c.Top, UseAccounting: true})
	}
	for _, c := range comps {
		units = append(units, measure.Unit{Top: c.Top, UseAccounting: false})
	}
	all, err := sess.MeasureAll(units, o.measureOptions())
	if err != nil {
		return nil, err
	}
	withComps, err := corpusRows(comps, all[:len(comps)])
	if err != nil {
		return nil, err
	}
	withoutComps, err := corpusRows(comps, all[len(comps):])
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		With:         map[string]float64{},
		Without:      map[string]float64{},
		PaperWithout: dataset.PaperSigmaEpsNoAccounting(),
	}
	fit := func(comps []dataset.Component, into map[string]float64) error {
		rows, err := core.EvaluateEstimatorsN(comps, concurrency)
		if err != nil {
			return err
		}
		for _, r := range rows {
			into[r.Name] = r.SigmaEps
		}
		return nil
	}
	if err := fit(withComps, res.With); err != nil {
		return nil, err
	}
	if err := fit(withoutComps, res.Without); err != nil {
		return nil, err
	}
	return res, nil
}

// SynthesisEstimators lists the estimators whose metrics come from
// synthesis and are therefore affected by the accounting procedure.
var SynthesisEstimators = []string{"FanInLC", "Nets", "Cells", "AreaL", "AreaS", "FFs", "PowerD", "PowerS", "Freq"}

// SoftwareEstimators lists the estimators measured on source text,
// which the accounting procedure does not affect (Section 5.3).
var SoftwareEstimators = []string{"Stmts", "LoC"}

// String renders the Figure 6 bar comparison.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: estimator accuracy without vs with the accounting procedure\n")
	b.WriteString("(synthetic corpus through the full synthesis pipeline; paper's published\n")
	b.WriteString(" 'without' values shown where the text states them)\n\n")
	t := &table{header: []string{"Estimator", "sigma_eps (with)", "sigma_eps (without)", "inflation", "paper (without)"}}
	for _, name := range sortedEstimatorNames() {
		w, okW := r.With[name]
		wo, okWo := r.Without[name]
		if !okW || !okWo {
			continue
		}
		paperV := ""
		if pv, ok := r.PaperWithout[name]; ok {
			paperV = f2(pv)
		}
		infl := "-"
		if w > 0 {
			infl = fmt.Sprintf("%.2fx", wo/w)
		}
		t.add(name, f2(w), f2(wo), infl, paperV)
	}
	b.WriteString(t.String())
	b.WriteString("\nbars (each # is 0.1 sigma_eps; W=with accounting, O=without):\n")
	for _, name := range sortedEstimatorNames() {
		w, okW := r.With[name]
		wo, okWo := r.Without[name]
		if !okW || !okWo {
			continue
		}
		fmt.Fprintf(&b, "%9s W %s\n", name, strings.Repeat("#", int(w*10+0.5)))
		fmt.Fprintf(&b, "%9s O %s\n", "", strings.Repeat("#", int(wo*10+0.5)))
	}
	return b.String()
}
