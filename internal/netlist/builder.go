package netlist

import "fmt"

// Builder constructs a Netlist incrementally. It supports net aliasing
// (union-find) so that hierarchical port connections can merge nets
// without buffer cells, and folds constants peephole-style as gates are
// created, which keeps the raw netlist close to what a synthesis tool
// emits after its first sweep.
type Builder struct {
	names   []string
	parent  []NetID // union-find
	named   []bool  // representative preference
	cells   []Cell
	rams    []*RAM
	inputs  []PortBit
	outputs []PortBit

	const0, const1 NetID
}

// NewBuilder returns an empty builder with the two constant nets
// already allocated.
func NewBuilder() *Builder {
	b := &Builder{}
	b.const0 = b.NewNet("const0")
	b.const1 = b.NewNet("const1")
	return b
}

// Const0 returns the constant-0 net.
func (b *Builder) Const0() NetID { return b.const0 }

// Const1 returns the constant-1 net.
func (b *Builder) Const1() NetID { return b.const1 }

// ConstBit returns Const1 for true, Const0 for false.
func (b *Builder) ConstBit(v bool) NetID {
	if v {
		return b.const1
	}
	return b.const0
}

// NewNet allocates a net. A non-empty name marks it as a user-visible
// signal, preferred as alias representative.
func (b *Builder) NewNet(name string) NetID {
	id := NetID(len(b.names))
	b.names = append(b.names, name)
	b.parent = append(b.parent, id)
	b.named = append(b.named, name != "")
	return id
}

// Find returns the alias representative of n.
func (b *Builder) Find(n NetID) NetID {
	if n == Nil {
		return Nil
	}
	root := n
	for b.parent[root] != root {
		root = b.parent[root]
	}
	for b.parent[n] != root {
		b.parent[n], n = root, b.parent[n]
	}
	return root
}

// Alias merges nets a and b into one. Constants and named nets win
// representative selection; aliasing both constants together is an
// error (it means the design shorted 0 to 1).
func (b *Builder) Alias(x, y NetID) error {
	rx, ry := b.Find(x), b.Find(y)
	if rx == ry {
		return nil
	}
	cx := rx == b.const0 || rx == b.const1
	cy := ry == b.const0 || ry == b.const1
	if cx && cy {
		return fmt.Errorf("netlist: aliasing const0 with const1 (contradictory drivers)")
	}
	// Prefer constants, then named nets, as representatives.
	keep, drop := rx, ry
	if cy || (!cx && b.named[ry] && !b.named[rx]) {
		keep, drop = ry, rx
	}
	b.parent[drop] = keep
	return nil
}

// IsConst reports whether net n is (an alias of) a constant, and its
// value.
func (b *Builder) IsConst(n NetID) (val bool, ok bool) {
	r := b.Find(n)
	if r == b.const0 {
		return false, true
	}
	if r == b.const1 {
		return true, true
	}
	return false, false
}

// AddInput declares a top-level input bit.
func (b *Builder) AddInput(name string, n NetID) {
	b.inputs = append(b.inputs, PortBit{Name: name, Net: n})
}

// AddOutput declares a top-level output bit.
func (b *Builder) AddOutput(name string, n NetID) {
	b.outputs = append(b.outputs, PortBit{Name: name, Net: n})
}

// AddRAM registers a RAM macro.
func (b *Builder) AddRAM(r *RAM) { b.rams = append(b.rams, r) }

// rawCell appends a cell driving a fresh anonymous net and returns the
// output net.
func (b *Builder) rawCell(t CellType, a, bb, c NetID, clk NetID) NetID {
	out := b.NewNet("")
	b.cells = append(b.cells, Cell{Type: t, In: [3]NetID{a, bb, c}, Clk: clk, Out: out})
	return out
}

// Not returns ~a, folding constants and double inversions.
func (b *Builder) Not(a NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		return b.ConstBit(!v)
	}
	return b.rawCell(Inv, a, Nil, Nil, Nil)
}

// And returns a & c with constant folding and idempotence.
func (b *Builder) And(a, c NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		if !v {
			return b.const0
		}
		return c
	}
	if v, ok := b.IsConst(c); ok {
		if !v {
			return b.const0
		}
		return a
	}
	if b.Find(a) == b.Find(c) {
		return a
	}
	return b.rawCell(And2, a, c, Nil, Nil)
}

// Or returns a | c with constant folding and idempotence.
func (b *Builder) Or(a, c NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		if v {
			return b.const1
		}
		return c
	}
	if v, ok := b.IsConst(c); ok {
		if v {
			return b.const1
		}
		return a
	}
	if b.Find(a) == b.Find(c) {
		return a
	}
	return b.rawCell(Or2, a, c, Nil, Nil)
}

// Xor returns a ^ c with constant folding.
func (b *Builder) Xor(a, c NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		if v {
			return b.Not(c)
		}
		return c
	}
	if v, ok := b.IsConst(c); ok {
		if v {
			return b.Not(a)
		}
		return a
	}
	if b.Find(a) == b.Find(c) {
		return b.const0
	}
	return b.rawCell(Xor2, a, c, Nil, Nil)
}

// Xnor returns ~(a ^ c).
func (b *Builder) Xnor(a, c NetID) NetID { return b.Not(b.Xor(a, c)) }

// Nand returns ~(a & c).
func (b *Builder) Nand(a, c NetID) NetID { return b.Not(b.And(a, c)) }

// Nor returns ~(a | c).
func (b *Builder) Nor(a, c NetID) NetID { return b.Not(b.Or(a, c)) }

// Mux returns s ? bb : a (a when s=0), with constant folding.
func (b *Builder) Mux(s, a, bb NetID) NetID {
	if v, ok := b.IsConst(s); ok {
		if v {
			return bb
		}
		return a
	}
	if b.Find(a) == b.Find(bb) {
		return a
	}
	// mux(s, 0, 1) = s; mux(s, 1, 0) = ~s
	av, aok := b.IsConst(a)
	bv, bok := b.IsConst(bb)
	if aok && bok {
		if !av && bv {
			return s
		}
		if av && !bv {
			return b.Not(s)
		}
	}
	return b.rawCell(Mux2, a, bb, s, Nil)
}

// NewDFF creates a flip-flop capturing d on clk and returns Q.
func (b *Builder) NewDFF(d, clk NetID) NetID {
	return b.rawCell(DFF, d, Nil, Nil, clk)
}

// NewLatch creates a transparent latch (Q follows d while en=1).
func (b *Builder) NewLatch(d, en NetID) NetID {
	return b.rawCell(Latch, d, en, Nil, Nil)
}

// Build resolves aliases, compacts nets, and returns the final Netlist.
// Cell output nets that were aliased to constants are rejected (that
// would be a short).
func (b *Builder) Build() (*Netlist, error) {
	// Resolve all pins through the union-find.
	for i := range b.cells {
		c := &b.cells[i]
		for j := range c.In {
			if c.In[j] != Nil {
				c.In[j] = b.Find(c.In[j])
			}
		}
		if c.Clk != Nil {
			c.Clk = b.Find(c.Clk)
		}
		c.Out = b.Find(c.Out)
	}
	resolve := func(ids []NetID) {
		for i, id := range ids {
			if id != Nil {
				ids[i] = b.Find(id)
			}
		}
	}
	for _, r := range b.rams {
		r.Clk = b.Find(r.Clk)
		for i := range r.WritePorts {
			r.WritePorts[i].En = b.Find(r.WritePorts[i].En)
			resolve(r.WritePorts[i].Addr)
			resolve(r.WritePorts[i].Data)
		}
		for i := range r.ReadPorts {
			resolve(r.ReadPorts[i].Addr)
			resolve(r.ReadPorts[i].Out)
		}
	}
	for i := range b.inputs {
		b.inputs[i].Net = b.Find(b.inputs[i].Net)
	}
	for i := range b.outputs {
		b.outputs[i].Net = b.Find(b.outputs[i].Net)
	}

	// Detect multiple drivers and cells driving constants. Driver
	// identities are recorded as compact references and only formatted
	// into names when an error is actually reported — this loop runs
	// once per cell on the success path.
	type driverRef struct {
		kind int8 // 0 = cell, 1 = RAM read port, 2 = input
		a, b int32
	}
	describe := func(d driverRef) string {
		switch d.kind {
		case 0:
			return fmt.Sprintf("cell %d (%s)", d.a, b.cells[d.a].Type)
		case 1:
			return fmt.Sprintf("RAM %s read port %d", b.rams[d.a].Name, d.b)
		default:
			return "input " + b.inputs[d.a].Name
		}
	}
	seen := make(map[NetID]driverRef, len(b.cells))
	c0, c1 := b.Find(b.const0), b.Find(b.const1)
	for i := range b.cells {
		out := b.cells[i].Out
		if out == c0 || out == c1 {
			return nil, fmt.Errorf("netlist: %s drives a constant net", describe(driverRef{0, int32(i), 0}))
		}
		if prev, dup := seen[out]; dup {
			return nil, fmt.Errorf("netlist: net %q driven by both %s and %s", b.names[out], describe(prev), describe(driverRef{0, int32(i), 0}))
		}
		seen[out] = driverRef{0, int32(i), 0}
	}
	for ri, r := range b.rams {
		for pi, rp := range r.ReadPorts {
			for _, o := range rp.Out {
				if prev, dup := seen[o]; dup {
					return nil, fmt.Errorf("netlist: net %q driven by both %s and %s", b.names[o], describe(prev), describe(driverRef{1, int32(ri), int32(pi)}))
				}
				seen[o] = driverRef{1, int32(ri), int32(pi)}
			}
		}
	}
	for pi, p := range b.inputs {
		if prev, dup := seen[p.Net]; dup {
			return nil, fmt.Errorf("netlist: input %s conflicts with %s", p.Name, describe(prev))
		}
		seen[p.Net] = driverRef{2, int32(pi), 0}
	}

	// Compact: renumber only referenced representatives.
	remap := make(map[NetID]NetID, len(b.names))
	names := make([]string, 0, len(b.names))
	get := func(id NetID) NetID {
		if id == Nil {
			return Nil
		}
		if nid, ok := remap[id]; ok {
			return nid
		}
		nid := NetID(len(names))
		names = append(names, b.names[id])
		remap[id] = nid
		return nid
	}
	nl := &Netlist{}
	nl.Const0 = get(c0)
	nl.Const1 = get(c1)
	for i := range b.cells {
		c := b.cells[i]
		for j := range c.In {
			c.In[j] = get(c.In[j])
		}
		c.Clk = get(c.Clk)
		c.Out = get(c.Out)
		nl.Cells = append(nl.Cells, c)
	}
	for _, r := range b.rams {
		rc := *r
		rc.Clk = get(r.Clk)
		rc.WritePorts = make([]RAMWritePort, len(r.WritePorts))
		for i, wp := range r.WritePorts {
			rc.WritePorts[i] = RAMWritePort{En: get(wp.En), Addr: mapIDs(wp.Addr, get), Data: mapIDs(wp.Data, get)}
		}
		rc.ReadPorts = make([]RAMReadPort, len(r.ReadPorts))
		for i, rp := range r.ReadPorts {
			rc.ReadPorts[i] = RAMReadPort{Addr: mapIDs(rp.Addr, get), Out: mapIDs(rp.Out, get)}
		}
		nl.RAMs = append(nl.RAMs, &rc)
	}
	for _, p := range b.inputs {
		nl.Inputs = append(nl.Inputs, PortBit{Name: p.Name, Net: get(p.Net)})
	}
	for _, p := range b.outputs {
		nl.Outputs = append(nl.Outputs, PortBit{Name: p.Name, Net: get(p.Net)})
	}
	nl.NetNames = names
	return nl, nil
}

func mapIDs(ids []NetID, f func(NetID) NetID) []NetID {
	out := make([]NetID, len(ids))
	for i, id := range ids {
		out[i] = f(id)
	}
	return out
}
