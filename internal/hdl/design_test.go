package hdl

import (
	"strings"
	"testing"
)

const hashTestSrcA = `
module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
  assign y = ~a;
endmodule

module mid (input [3:0] a, output [3:0] y);
  leaf u0 (.a(a), .y(y));
endmodule

module top_a (input [3:0] a, output [3:0] y);
  mid u0 (.a(a), .y(y));
endmodule

module top_b (input [3:0] a, output [3:0] y);
  assign y = a;
endmodule
`

func parseHashDesign(t *testing.T, src string) *Design {
	t.Helper()
	d, err := ParseDesign(map[string]string{"a.v": src})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestModuleHashStability: a module's hash depends only on its own
// declaration — identical text hashes identically across designs, a
// structural edit changes it, and formatting-only differences
// (comments, whitespace) do not.
func TestModuleHashStability(t *testing.T) {
	d1 := parseHashDesign(t, hashTestSrcA)
	d2 := parseHashDesign(t, "// a leading comment\n"+hashTestSrcA)
	for _, name := range d1.ModuleNames() {
		h1, err := d1.ModuleHash(name)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := d2.ModuleHash(name)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Errorf("module %s: hash differs across identical declarations", name)
		}
	}
	edited := parseHashDesign(t, strings.Replace(hashTestSrcA, "assign y = ~a;", "assign y = a;", 1))
	h1, _ := d1.ModuleHash("leaf")
	h2, _ := edited.ModuleHash("leaf")
	if h1 == h2 {
		t.Error("edited leaf module kept its hash")
	}
	if _, err := d1.ModuleHash("no_such_module"); err == nil {
		t.Error("ModuleHash of a missing module did not error")
	}
}

// TestSubtreeHashScopesToReachableModules is the keying invariant the
// incremental cache rests on: an edit to a module outside a top's
// transitive subtree leaves that top's SubtreeHash unchanged, while an
// edit anywhere inside the subtree — at any depth — changes it.
func TestSubtreeHashScopesToReachableModules(t *testing.T) {
	base := parseHashDesign(t, hashTestSrcA)
	// Edit top_b: top_a's subtree (top_a, mid, leaf) is untouched.
	editedB := parseHashDesign(t, strings.Replace(hashTestSrcA, "assign y = a;", "assign y = ~a;", 1))
	ha1, err := base.SubtreeHash("top_a")
	if err != nil {
		t.Fatal(err)
	}
	ha2, err := editedB.SubtreeHash("top_a")
	if err != nil {
		t.Fatal(err)
	}
	if ha1 != ha2 {
		t.Error("edit outside the subtree changed top_a's SubtreeHash")
	}
	hb1, _ := base.SubtreeHash("top_b")
	hb2, _ := editedB.SubtreeHash("top_b")
	if hb1 == hb2 {
		t.Error("edit to top_b did not change its SubtreeHash")
	}
	// Edit leaf: reachable from top_a at depth 2, not from top_b.
	editedLeaf := parseHashDesign(t, strings.Replace(hashTestSrcA, "assign y = ~a;", "assign y = {a[0], a[3:1]};", 1))
	ha3, _ := editedLeaf.SubtreeHash("top_a")
	if ha1 == ha3 {
		t.Error("deep leaf edit did not change top_a's SubtreeHash")
	}
	hb3, _ := editedLeaf.SubtreeHash("top_b")
	if hb1 != hb3 {
		t.Error("leaf edit changed top_b's SubtreeHash (leaf is unreachable from top_b)")
	}
	if _, err := base.SubtreeHash("no_such_module"); err == nil {
		t.Error("SubtreeHash of a missing top did not error")
	}
	// Fingerprint covers the whole design: any module edit changes it.
	if base.Fingerprint() == editedB.Fingerprint() {
		t.Error("design edit did not change the Fingerprint")
	}
	if base.Fingerprint() != parseHashDesign(t, hashTestSrcA).Fingerprint() {
		t.Error("identical designs fingerprint differently")
	}
}
