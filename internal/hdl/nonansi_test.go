package hdl

import (
	"strings"
	"testing"
)

const nonANSISrc = `
// Verilog-95 style module (the dialect PUMA and IVM used).
module v95 (clk, rst, d, q, count);
  input clk;
  input rst;
  input [7:0] d;
  output [7:0] q;
  output reg [3:0] count;
  reg [7:0] q;
  always @(posedge clk) begin
    if (rst) begin
      q <= 0;
      count <= 0;
    end else begin
      q <= d;
      count <= count + 1;
    end
  end
endmodule
`

func TestParseNonANSIPorts(t *testing.T) {
	sf := mustParse(t, nonANSISrc)
	m := sf.Modules[0]
	if len(m.Ports) != 5 {
		t.Fatalf("ports = %d, want 5", len(m.Ports))
	}
	byName := map[string]*Port{}
	for _, p := range m.Ports {
		byName[p.Name] = p
	}
	if byName["clk"].Dir != Input || byName["clk"].Range != nil {
		t.Errorf("clk = %+v", byName["clk"])
	}
	if byName["d"].Dir != Input || byName["d"].Range == nil {
		t.Errorf("d = %+v", byName["d"])
	}
	if byName["q"].Dir != Output || !byName["q"].IsReg {
		t.Errorf("q = %+v (separate reg decl must mark it)", byName["q"])
	}
	if byName["count"].Dir != Output || !byName["count"].IsReg {
		t.Errorf("count = %+v (output reg form)", byName["count"])
	}
	// The consumed reg/port declarations must not linger as items.
	for _, it := range m.Items {
		if nd, ok := it.(*NetDecl); ok {
			for _, n := range nd.Names {
				if n == "q" {
					t.Error("reg q declaration should have been merged into the port")
				}
			}
		}
	}
}

func TestNonANSIErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"undeclared port", `module m (a, b); input a; endmodule`, "no direction declaration"},
		{"decl for non-port", `module m (a); input a; output b; endmodule`, "not in the module's port list"},
		{"double decl", `module m (a); input a; input a; endmodule`, "declared twice"},
	}
	for _, c := range cases {
		_, err := Parse("t.v", c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}
