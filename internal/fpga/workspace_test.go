package fpga_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/fpga"
	"repro/internal/synth"
)

// TestMapWSMatchesMap pins the workspace fast path against the full
// mapping over the whole corpus, reusing one workspace dirty across
// components and K values the way a session pool worker does.
func TestMapWSMatchesMap(t *testing.T) {
	ws := &fpga.Workspace{}
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		res, err := synth.Synthesize(d, c.Top, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		for _, k := range []int{0, 4} {
			opts := fpga.Options{K: k}
			full := fpga.Map(res.Optimized, opts)
			if got := fpga.MapWS(res.Optimized, opts, nil); got.LUTInputSum != full.LUTInputSum {
				t.Errorf("%s K=%d: nil-workspace MapWS LUTInputSum %d != %d",
					c.Label(), k, got.LUTInputSum, full.LUTInputSum)
			}
			for run := 0; run < 2; run++ {
				got := fpga.MapWS(res.Optimized, opts, ws)
				if got.LUTs != nil {
					t.Fatalf("%s K=%d: MapWS materialized %d LUTs", c.Label(), k, len(got.LUTs))
				}
				if got.LUTInputSum != full.LUTInputSum || got.Levels != full.Levels ||
					got.FFs != full.FFs || got.FreqMHz != full.FreqMHz {
					t.Errorf("%s K=%d run %d: MapWS (%d, %d, %d, %g) != Map (%d, %d, %d, %g)",
						c.Label(), k, run,
						got.LUTInputSum, got.Levels, got.FFs, got.FreqMHz,
						full.LUTInputSum, full.Levels, full.FFs, full.FreqMHz)
				}
			}
		}
	}
}
