package power

import (
	"testing"

	"repro/internal/hdl"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

func BenchmarkAnalyzeDatapath(b *testing.B) {
	b.ReportAllocs()
	d, err := hdl.ParseDesign(map[string]string{"b.v": `
module dp (input clk, input [15:0] a, x, output reg [15:0] y);
  always @(posedge clk) y <= (a * x) + (a ^ x);
endmodule`})
	if err != nil {
		b.Fatal(err)
	}
	res, err := synth.Synthesize(d, "dp", nil)
	if err != nil {
		b.Fatal(err)
	}
	lib := stdcell.Default180nm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(res.Optimized, lib, 100)
	}
}
