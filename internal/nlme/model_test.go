package nlme

import (
	"strings"
	"testing"
)

func validData() *Data {
	return &Data{
		Groups:      []string{"A", "A", "B", "B", "B"},
		Efforts:     []float64{1, 2, 3, 4, 5},
		Metrics:     [][]float64{{10}, {20}, {30}, {40}, {50}},
		MetricNames: []string{"m"},
	}
}

func TestValidateAcceptsGoodData(t *testing.T) {
	if err := validData().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Data)
		wantSub string
	}{
		{"empty", func(d *Data) { d.Efforts = nil; d.Groups = nil; d.Metrics = nil }, "empty"},
		{"group count", func(d *Data) { d.Groups = d.Groups[:3] }, "groups"},
		{"metric rows", func(d *Data) { d.Metrics = d.Metrics[:3] }, "metric rows"},
		{"ragged", func(d *Data) { d.Metrics[2] = []float64{1, 2} }, "metrics, want"},
		{"zero effort", func(d *Data) { d.Efforts[0] = 0 }, "non-positive effort"},
		{"negative effort", func(d *Data) { d.Efforts[0] = -1 }, "non-positive effort"},
		{"negative metric", func(d *Data) { d.Metrics[1][0] = -5 }, "invalid metric"},
		{"all-zero metrics", func(d *Data) { d.Metrics[1][0] = 0 }, "all-zero"},
		{"empty group", func(d *Data) { d.Groups[4] = "" }, "empty group"},
		{"name count", func(d *Data) { d.MetricNames = []string{"a", "b"} }, "metric names"},
	}
	for _, c := range cases {
		d := validData()
		c.mutate(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestGroupIndexOrderAndMembership(t *testing.T) {
	d := &Data{
		Groups:  []string{"x", "y", "x", "z", "y"},
		Efforts: []float64{1, 1, 1, 1, 1},
		Metrics: [][]float64{{1}, {1}, {1}, {1}, {1}},
	}
	names, members := d.groupIndex()
	if len(names) != 3 || names[0] != "x" || names[1] != "y" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
	if len(members[0]) != 2 || members[0][0] != 0 || members[0][1] != 2 {
		t.Errorf("x members = %v", members[0])
	}
	if len(members[2]) != 1 || members[2][0] != 3 {
		t.Errorf("z members = %v", members[2])
	}
}

func TestPredictorLogsErrors(t *testing.T) {
	d := validData()
	if _, err := d.predictorLogs([]float64{1, 2}); err == nil {
		t.Error("expected weight-count error")
	}
	// A zero weight on the only metric makes the predictor zero.
	if _, err := d.predictorLogs([]float64{0}); err == nil {
		t.Error("expected non-positive predictor error")
	}
}
