package netlist

import (
	"reflect"
	"sync"
	"testing"
)

// buildPair constructs a tiny netlist: two inputs, an AND feeding a
// DFF, and the DFF driving an output. Names come from the caller so
// tests can vary debug naming without varying structure.
func buildPair(t *testing.T, aName, bName string) *Netlist {
	t.Helper()
	b := NewBuilder()
	clk := b.NewNet("clk")
	x := b.NewNet(aName)
	y := b.NewNet(bName)
	b.AddInput("clk", clk)
	b.AddInput("a", x)
	b.AddInput("b", y)
	g := b.And(x, y)
	q := b.NewDFF(g, clk)
	b.AddOutput("q", q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestHashStableAndNameIndependent(t *testing.T) {
	n1 := buildPair(t, "sig_a", "sig_b")
	n2 := buildPair(t, "completely", "different")
	if n1.Hash() != n2.Hash() {
		t.Errorf("debug names changed the structural hash:\n%s\n%s", n1.Hash(), n2.Hash())
	}
	if got := n1.Hash(); got != n1.Hash() {
		t.Errorf("hash not stable across calls")
	}

	// A structural change must change the hash.
	b := NewBuilder()
	clk := b.NewNet("clk")
	x := b.NewNet("a")
	y := b.NewNet("b")
	b.AddInput("clk", clk)
	b.AddInput("a", x)
	b.AddInput("b", y)
	g := b.Or(x, y) // OR instead of AND
	q := b.NewDFF(g, clk)
	b.AddOutput("q", q)
	n3, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n3.Hash() == n1.Hash() {
		t.Error("structurally different netlists hash equal")
	}
}

func TestDriversAndTopoOrderCached(t *testing.T) {
	n := buildPair(t, "a", "b")
	d1, d2 := n.Drivers(), n.Drivers()
	if &d1[0] != &d2[0] {
		t.Error("Drivers recomputed instead of cached")
	}
	o1, err1 := n.TopoOrder()
	o2, err2 := n.TopoOrder()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(o1) == 0 || &o1[0] != &o2[0] {
		t.Error("TopoOrder recomputed instead of cached")
	}
}

func TestDerivedStructuresConcurrentAccess(t *testing.T) {
	n := buildPair(t, "a", "b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Drivers()
			if _, err := n.TopoOrder(); err != nil {
				t.Error(err)
			}
			n.Hash()
		}()
	}
	wg.Wait()
}

// TestOptimizeDoesNotMutateInput pins the immutability contract the
// derived-structure cache relies on: Optimize must leave its input
// netlist — cells, RAM ports, hash — untouched.
func TestOptimizeDoesNotMutateInput(t *testing.T) {
	b := NewBuilder()
	clk := b.NewNet("clk")
	a := b.NewNet("a")
	b.AddInput("clk", clk)
	b.AddInput("a", a)
	// Redundant logic the optimizer will rewrite: (a & 1) through a
	// buffer chain, plus a RAM whose address goes through a buffer.
	buf1 := b.rawCell(Buf, a, Nil, Nil, Nil)
	buf2 := b.rawCell(Buf, buf1, Nil, Nil, Nil)
	d := b.rawCell(And2, buf2, b.Const1(), Nil, Nil)
	q := b.NewDFF(d, clk)
	b.AddOutput("q", q)
	addr := b.rawCell(Buf, q, Nil, Nil, Nil)
	ram := &RAM{
		Name: "m", Width: 1, Depth: 2, Clk: clk,
		WritePorts: []RAMWritePort{{En: b.Const1(), Addr: []NetID{addr}, Data: []NetID{d}}},
		ReadPorts:  []RAMReadPort{{Addr: []NetID{addr}, Out: []NetID{b.NewNet("rd")}}},
	}
	b.AddRAM(ram)
	b.AddOutput("rd", ram.ReadPorts[0].Out[0])
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	hashBefore := nl.Hash()
	cellsBefore := append([]Cell(nil), nl.Cells...)
	var ramsBefore []RAM
	for _, r := range nl.RAMs {
		rc := *r
		rc.WritePorts = append([]RAMWritePort(nil), r.WritePorts...)
		for i, wp := range r.WritePorts {
			rc.WritePorts[i].Addr = append([]NetID(nil), wp.Addr...)
			rc.WritePorts[i].Data = append([]NetID(nil), wp.Data...)
		}
		rc.ReadPorts = append([]RAMReadPort(nil), r.ReadPorts...)
		for i, rp := range r.ReadPorts {
			rc.ReadPorts[i].Addr = append([]NetID(nil), rp.Addr...)
			rc.ReadPorts[i].Out = append([]NetID(nil), rp.Out...)
		}
		ramsBefore = append(ramsBefore, rc)
	}

	opt, res, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConstFolded == 0 {
		t.Fatalf("optimizer found nothing to do; test netlist is not exercising rewrites: %+v", res)
	}
	if opt == nl {
		t.Fatal("Optimize returned its input")
	}

	if !reflect.DeepEqual(cellsBefore, nl.Cells) {
		t.Error("Optimize mutated the input netlist's cells")
	}
	for i, r := range nl.RAMs {
		if !reflect.DeepEqual(ramsBefore[i].WritePorts, r.WritePorts) ||
			!reflect.DeepEqual(ramsBefore[i].ReadPorts, r.ReadPorts) ||
			ramsBefore[i].Clk != r.Clk {
			t.Errorf("Optimize mutated input RAM %d", i)
		}
	}
	if nl.Hash() != hashBefore {
		t.Error("Optimize changed the input netlist's structural hash")
	}
}
