package stats

import (
	"fmt"
	"math"
)

// GaussHermite holds the nodes and weights of an n-point Gauss–Hermite
// quadrature rule: ∫ f(x)·e^(−x²) dx ≈ Σ w_i·f(x_i).
type GaussHermite struct {
	Nodes   []float64
	Weights []float64
}

// NewGaussHermite computes the n-point Gauss–Hermite rule using Newton
// iteration on the physicists' Hermite polynomial H_n, with the standard
// asymptotic initial guesses (Numerical Recipes style). n must be at
// least 1; rules up to a few hundred points are accurate.
//
// internal/nlme uses this rule (after an adaptive change of variables)
// to integrate out the random productivity effect as a cross-check of
// the closed-form marginal likelihood.
func NewGaussHermite(n int) GaussHermite {
	if n < 1 {
		panic(fmt.Sprintf("stats: NewGaussHermite: n must be >= 1, got %d", n))
	}
	x := make([]float64, n)
	w := make([]float64, n)
	const eps = 3e-14
	m := (n + 1) / 2
	var z float64
	for i := 0; i < m; i++ {
		// Initial guesses for the i-th largest root.
		switch i {
		case 0:
			z = math.Sqrt(float64(2*n+1)) - 1.85575*math.Pow(float64(2*n+1), -1.0/6.0)
		case 1:
			z -= 1.14 * math.Pow(float64(n), 0.426) / z
		case 2:
			z = 1.86*z - 0.86*x[0]
		case 3:
			z = 1.91*z - 0.91*x[1]
		default:
			z = 2*z - x[i-2]
		}
		var pp float64
		for iter := 0; iter < 100; iter++ {
			// Evaluate H_n(z) (orthonormal form) by recurrence.
			p1 := math.Pow(math.Pi, -0.25)
			p2 := 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = z*math.Sqrt(2.0/float64(j+1))*p2 - math.Sqrt(float64(j)/float64(j+1))*p3
			}
			pp = math.Sqrt(2*float64(n)) * p2
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) <= eps {
				break
			}
		}
		x[i] = z
		x[n-1-i] = -z
		w[i] = 2.0 / (pp * pp)
		w[n-1-i] = w[i]
	}
	return GaussHermite{Nodes: x, Weights: w}
}

// Integrate approximates ∫ f(x)·e^(−x²) dx with the rule.
func (g GaussHermite) Integrate(f func(float64) float64) float64 {
	var sum float64
	for i, x := range g.Nodes {
		sum += g.Weights[i] * f(x)
	}
	return sum
}

// IntegrateNormal approximates E[f(X)] for X ~ Normal(mu, sigma) using
// the substitution x = mu + sqrt(2)·sigma·t:
//
//	E[f(X)] = (1/√π) Σ w_i · f(mu + √2·sigma·t_i)
func (g GaussHermite) IntegrateNormal(f func(float64) float64, mu, sigma float64) float64 {
	if sigma <= 0 {
		panic(fmt.Sprintf("stats: IntegrateNormal: sigma must be positive, got %v", sigma))
	}
	var sum float64
	for i, t := range g.Nodes {
		sum += g.Weights[i] * f(mu+math.Sqrt2*sigma*t)
	}
	return sum / math.Sqrt(math.Pi)
}
