package designs

// leon3PipelineSrc is a single-issue in-order integer pipeline in the
// style of the Leon3: fetch, decode, execute, memory, and writeback
// stages with forwarding and a multiply/accumulate path. Like the real
// Leon3, it is written as one tightly-integrated block with almost no
// replicated instances or parameterized sub-blocks, so the accounting
// procedure barely changes its measurements (Section 5.3).
const leon3PipelineSrc = `
// In-order 5-stage integer pipeline with forwarding and MAC unit.
module leon3_pipeline #(parameter W = 32, parameter RA = 4) (
  input clk,
  input rst,
  input [W-1:0] imem_data,
  input [W-1:0] dmem_rdata,
  input dmem_ready,
  output [W-1:0] imem_addr,
  output [W-1:0] dmem_addr,
  output [W-1:0] dmem_wdata,
  output dmem_we,
  output [W-1:0] debug_result
);
  // ------------------------------------------------- fetch stage
  reg [W-1:0] pc;
  reg [W-1:0] if_inst;
  reg if_valid;
  wire stall;
  wire branch_taken;
  wire [W-1:0] branch_target;
  always @(posedge clk) begin
    if (rst) begin
      pc <= 0;
      if_valid <= 0;
      if_inst <= 0;
    end else if (!stall) begin
      if (branch_taken)
        pc <= branch_target;
      else
        pc <= pc + 4;
      if_inst <= imem_data;
      if_valid <= 1;
    end
  end
  assign imem_addr = pc;

  // ------------------------------------------------- decode stage
  // Instruction fields (SPARC-flavoured fixed positions).
  wire [2:0] de_op;
  wire [RA-1:0] de_rs1, de_rs2, de_rd;
  wire [12:0] de_imm;
  wire de_use_imm, de_is_load, de_is_store, de_is_branch, de_is_mac;
  assign de_op = if_inst[27:25];
  assign de_rs1 = if_inst[18:15];
  assign de_rs2 = if_inst[3:0];
  assign de_rd = if_inst[24+RA:25];
  assign de_imm = if_inst[12:0];
  assign de_use_imm = if_inst[13];
  assign de_is_load = if_inst[31] & ~if_inst[30];
  assign de_is_store = if_inst[31] & if_inst[30];
  assign de_is_branch = ~if_inst[31] & if_inst[30];
  assign de_is_mac = if_inst[24];

  wire [W-1:0] rf_rdata1, rf_rdata2;
  wire wb_we;
  wire [RA-1:0] wb_rd;
  wire [W-1:0] wb_result;
  lib_regfile #(.W(W), .AW(RA)) regfile (
    .clk(clk), .we(wb_we), .waddr(wb_rd), .wdata(wb_result),
    .raddr1(de_rs1), .raddr2(de_rs2), .rdata1(rf_rdata1), .rdata2(rf_rdata2));

  reg [W-1:0] ex_a, ex_b, ex_store_data;
  reg [2:0] ex_op;
  reg [RA-1:0] ex_rd;
  reg ex_valid, ex_is_load, ex_is_store, ex_is_branch, ex_is_mac;
  reg [12:0] ex_imm;

  // Forwarding network: EX/ME/WB results bypass the register file.
  wire [W-1:0] me_fwd, fwd_a, fwd_b;
  wire me_we_fwd;
  wire [RA-1:0] me_rd_fwd;
  assign fwd_a = (me_we_fwd && me_rd_fwd == de_rs1) ? me_fwd :
                 (wb_we && wb_rd == de_rs1) ? wb_result : rf_rdata1;
  assign fwd_b = (me_we_fwd && me_rd_fwd == de_rs2) ? me_fwd :
                 (wb_we && wb_rd == de_rs2) ? wb_result : rf_rdata2;

  always @(posedge clk) begin
    if (rst) begin
      ex_valid <= 0;
      ex_a <= 0;
      ex_b <= 0;
      ex_op <= 0;
      ex_rd <= 0;
      ex_imm <= 0;
      ex_is_load <= 0;
      ex_is_store <= 0;
      ex_is_branch <= 0;
      ex_is_mac <= 0;
      ex_store_data <= 0;
    end else if (!stall) begin
      ex_valid <= if_valid;
      ex_a <= fwd_a;
      ex_b <= de_use_imm ? {{W-13{1'b0}}, de_imm} : fwd_b;
      ex_store_data <= fwd_b;
      ex_op <= de_op;
      ex_rd <= de_rd;
      ex_imm <= de_imm;
      ex_is_load <= de_is_load;
      ex_is_store <= de_is_store;
      ex_is_branch <= de_is_branch;
      ex_is_mac <= de_is_mac;
    end
  end

  // ------------------------------------------------- execute stage
  wire [W-1:0] alu_y;
  wire alu_zero;
  lib_alu #(.W(W)) alu (.op(ex_op), .a(ex_a), .b(ex_b), .y(alu_y), .zero(alu_zero));

  // Multiply/accumulate path (Leon3 has HW MUL/MAC).
  reg [W-1:0] mac_acc;
  wire [W-1:0] mac_prod;
  assign mac_prod = ex_a[15:0] * ex_b[15:0];
  always @(posedge clk) begin
    if (rst)
      mac_acc <= 0;
    else if (ex_valid && ex_is_mac)
      mac_acc <= mac_acc + mac_prod;
  end

  assign branch_taken = ex_valid && ex_is_branch && alu_zero;
  assign branch_target = pc + {{W-13{1'b0}}, ex_imm};

  reg [W-1:0] me_result, me_store_data;
  reg [RA-1:0] me_rd;
  reg me_valid, me_is_load, me_is_store;
  always @(posedge clk) begin
    if (rst) begin
      me_valid <= 0;
      me_result <= 0;
      me_store_data <= 0;
      me_rd <= 0;
      me_is_load <= 0;
      me_is_store <= 0;
    end else if (!stall) begin
      me_valid <= ex_valid;
      me_result <= ex_is_mac ? mac_acc : alu_y;
      me_store_data <= ex_store_data;
      me_rd <= ex_rd;
      me_is_load <= ex_is_load;
      me_is_store <= ex_is_store;
    end
  end
  assign me_fwd = me_result;
  assign me_we_fwd = me_valid && !me_is_store;
  assign me_rd_fwd = me_rd;

  // ------------------------------------------------- memory stage
  assign dmem_addr = me_result;
  assign dmem_wdata = me_store_data;
  assign dmem_we = me_valid && me_is_store;
  assign stall = me_valid && (me_is_load || me_is_store) && !dmem_ready;

  reg [W-1:0] wb_result_r;
  reg [RA-1:0] wb_rd_r;
  reg wb_we_r;
  always @(posedge clk) begin
    if (rst) begin
      wb_we_r <= 0;
      wb_rd_r <= 0;
      wb_result_r <= 0;
    end else begin
      wb_we_r <= me_valid && !me_is_store && !stall;
      wb_rd_r <= me_rd;
      wb_result_r <= me_is_load ? dmem_rdata : me_result;
    end
  end
  assign wb_we = wb_we_r;
  assign wb_rd = wb_rd_r;
  assign wb_result = wb_result_r;
  assign debug_result = wb_result_r;
endmodule
`

// leon3CacheSrc is a direct-mapped blocking cache with tag compare,
// valid bits, and a simple refill state machine.
const leon3CacheSrc = `
// Direct-mapped blocking cache (Leon3-style).
module leon3_cache #(parameter W = 32, parameter IDXW = 5) (
  input clk,
  input rst,
  input req,
  input we,
  input [3:0] byte_en,
  input [31:0] addr,
  input [W-1:0] wdata,
  output [W-1:0] rdata,
  output wparity,
  output hit,
  output ready,
  // memory side
  output mem_req,
  output [31:0] mem_addr,
  input [W-1:0] mem_data,
  input mem_ack
);
  // The tag covers the full 32-bit physical address above the index
  // and the 2-bit word offset.
  localparam SETS = 1 << IDXW;
  localparam TAGW = 30 - IDXW;
  reg [W-1:0] data_array [0:SETS-1];
  reg [TAGW-1:0] tag_array [0:SETS-1];
  reg [SETS-1:0] valid;

  wire [IDXW-1:0] index;
  wire [TAGW-1:0] tag;
  assign index = addr[IDXW+1:2];
  assign tag = addr[31:IDXW+2];

  // Stored data is protected by word parity over the 32-bit bus.
  assign wparity = ^wdata[31:0];

  wire [TAGW-1:0] stored_tag;
  assign stored_tag = tag_array[index];
  assign hit = req && valid[index] && (stored_tag == tag);

  // Refill FSM: IDLE -> MISS -> FILL.
  localparam S_IDLE = 0, S_MISS = 1, S_FILL = 2;
  reg [1:0] state;
  reg [31:0] miss_addr;
  always @(posedge clk) begin
    if (rst) begin
      state <= S_IDLE;
      valid <= 0;
      miss_addr <= 0;
    end else begin
      case (state)
        S_IDLE: begin
          if (req && we) begin
            // Byte-enable write merge.
            data_array[index] <= {
              byte_en[3] ? wdata[31:24] : rdata[31:24],
              byte_en[2] ? wdata[23:16] : rdata[23:16],
              byte_en[1] ? wdata[15:8] : rdata[15:8],
              byte_en[0] ? wdata[7:0] : rdata[7:0]};
            tag_array[index] <= tag;
            valid[index] <= 1;
          end else if (req && !hit) begin
            miss_addr <= addr;
            state <= S_MISS;
          end
        end
        S_MISS: begin
          if (mem_ack)
            state <= S_FILL;
        end
        default: begin
          data_array[miss_addr[IDXW+1:2]] <= mem_data;
          tag_array[miss_addr[IDXW+1:2]] <= miss_addr[31:IDXW+2];
          valid[miss_addr[IDXW+1:2]] <= 1;
          state <= S_IDLE;
        end
      endcase
    end
  end

  assign mem_req = state == S_MISS;
  assign mem_addr = miss_addr;
  assign rdata = data_array[index];
  assign ready = (state == S_IDLE) && (!req || we || hit);
endmodule
`

// leon3MMUSrc is a fully-associative TLB written as inline CAM logic
// (like the streamlined Leon3 itself, it uses no replicated module
// instances — Section 5.3 notes Leon3 has "practically no" components
// the accounting procedure would collapse).
const leon3MMUSrc = `
// Fully-associative TLB with inline CAM lookup (SPARC reference MMU).
module leon3_mmu #(parameter VW = 20, parameter PW = 12) (
  input clk,
  input rst,
  input lookup,
  input [VW-1:0] vpn,
  input fill,
  input [VW-1:0] fill_vpn,
  input [PW-1:0] fill_ppn,
  output [PW-1:0] ppn,
  output tlb_hit,
  output fault,
  output kernel_space,
  output ppn_parity
);
  // The TLB depth is architectural (the SPARC reference MMU spec).
  localparam ENTRIES = 8;

  // SPARC-style privileged-space detection and translation parity:
  // both read fixed architectural bit positions of the 20-bit VPN and
  // 12-bit PPN.
  assign kernel_space = vpn[19];
  assign ppn_parity = ^ppn[11:0];

  reg [ENTRIES-1:0] valid;
  reg [VW-1:0] vpns [0:ENTRIES-1];
  reg [PW-1:0] ppns [0:ENTRIES-1];
  reg [2:0] repl;

  always @(posedge clk) begin
    if (rst) begin
      valid <= 0;
      repl <= 0;
    end else if (fill) begin
      valid[repl] <= 1;
      vpns[repl] <= fill_vpn;
      ppns[repl] <= fill_ppn;
      repl <= repl + 3;
    end
  end

  // Inline CAM: every entry compares the full VPN each cycle.
  wire [ENTRIES-1:0] match;
  genvar i;
  generate for (i = 0; i < ENTRIES; i = i + 1) begin : cam
    assign match[i] = valid[i] && (vpns[i] == vpn);
  end endgenerate

  wire [2:0] hit_slot;
  wire any_match;
  lib_prienc8 hitenc (.req(match), .grant(hit_slot), .valid(any_match));
  assign ppn = ppns[hit_slot];
  assign tlb_hit = lookup && any_match;
  assign fault = lookup && !any_match;
endmodule
`

// leon3MemCtrlSrc is an SDRAM-style memory controller: request FIFO,
// bank state machine, and refresh counter.
const leon3MemCtrlSrc = `
// SDRAM-style memory controller with request queue and refresh timer.
module leon3_memctrl #(parameter AW = 16, parameter W = 32, parameter QAW = 2) (
  input clk,
  input rst,
  input req,
  input we,
  input [AW-1:0] addr,
  input [W-1:0] wdata,
  output reg [W-1:0] rdata,
  output reg done,
  // DRAM pins
  output reg [AW-1:0] dram_addr,
  output reg [W-1:0] dram_dq_out,
  input [W-1:0] dram_dq_in,
  output reg dram_ras_n,
  output reg dram_cas_n,
  output reg dram_we_n,
  output dram_dq_parity
);
  // Request queue.
  wire [AW+W:0] q_out;
  wire q_empty, q_full;
  wire [QAW:0] q_count;
  wire pop;
  lib_fifo #(.W(AW + W + 1), .AW(QAW)) queue (
    .clk(clk), .rst(rst), .push(req && !q_full), .pop(pop),
    .din({we, addr, wdata}), .dout(q_out),
    .full(q_full), .empty(q_empty), .count(q_count));

  wire q_we;
  wire [AW-1:0] q_addr;
  wire [W-1:0] q_wdata;
  assign q_we = q_out[AW+W];
  assign q_addr = q_out[AW+W-1:W];
  assign q_wdata = q_out[W-1:0];

  // DQ-bus parity over the 32-bit data word.
  assign dram_dq_parity = ^q_wdata[31:0];

  // Refresh timer.
  wire [9:0] refresh_cnt;
  lib_counter #(.W(10)) refresh (.clk(clk), .rst(rst), .en(1'b1), .q(refresh_cnt));
  wire need_refresh;
  assign need_refresh = refresh_cnt == 0;

  // Bank FSM.
  localparam S_IDLE = 0, S_ACT = 1, S_RW = 2, S_PRE = 3, S_REF = 4;
  reg [2:0] state;
  always @(posedge clk) begin
    done <= 0;
    dram_ras_n <= 1;
    dram_cas_n <= 1;
    dram_we_n <= 1;
    dram_addr <= 0;
    dram_dq_out <= 0;
    if (rst) begin
      state <= S_IDLE;
      rdata <= 0;
    end else begin
      case (state)
        S_IDLE: begin
          if (need_refresh)
            state <= S_REF;
          else if (!q_empty)
            state <= S_ACT;
        end
        S_ACT: begin
          dram_ras_n <= 0;
          dram_addr <= q_addr;
          state <= S_RW;
        end
        S_RW: begin
          dram_cas_n <= 0;
          dram_we_n <= !q_we;
          dram_dq_out <= q_wdata;
          rdata <= dram_dq_in;
          state <= S_PRE;
        end
        S_PRE: begin
          done <= 1;
          state <= S_IDLE;
        end
        default: begin
          dram_ras_n <= 0;
          dram_we_n <= 0;
          state <= S_IDLE;
        end
      endcase
    end
  end
  assign pop = state == S_PRE;
endmodule
`
