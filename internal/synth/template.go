package synth

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/elab"
	"repro/internal/netlist"
)

// Template-stamped lowering.
//
// Generate-loop replication (the IVM and PUMA designs instantiate the
// same execution cluster or memory bank four or five times) makes the
// lowering re-run symbolic execution and expression lowering per
// instance even though every copy produces the same gates modulo net
// numbering. Instead, the first child of each (module, parameter
// signature, port-binding pattern) is recorded *while it lowers
// directly into the main builder*: the window of nets and cells it
// appends, every Alias call it makes (raw arguments, in order), and
// every RAM read/write site it registers. Each further child with the
// same key replays the recording against freshly allocated nets — an
// O(gates) copy instead of a full re-lowering.
//
// Why replay is bit-identical to direct lowering:
//
//   - Cells store raw (pre-union-find) pins, and every pin a body
//     references is a constant, one of the child's own port bits, or a
//     net allocated inside the recorded window (endRecord verifies
//     this; shapes that violate it are marked unstampable and lower
//     directly). Renumbering window nets and substituting the new
//     child's port bits therefore reproduces the exact cell list a
//     direct lowering would append.
//   - Alias calls are re-executed, not copied: representative
//     selection depends only on whether the two class roots are
//     constants or named, and both properties are invariant across
//     instances with the same port pattern (port-bit classes always
//     root at a named parent net, a port bit, or a constant).
//   - All data-dependent decisions the body makes while lowering
//     (constant folding in the builder's gate helpers, Find equality)
//     observe only the constness and equality classes of the child's
//     port bits — exactly what the pattern key captures — plus
//     body-internal state that replay reproduces.
//
// The port-binding pattern is computed after bindChild: one entry per
// port bit, in module port order — '0'/'1' when the bound net is (an
// alias of) a constant, else the equality class of its union-find
// root. Two instances with equal signature and pattern are
// indistinguishable to the lowering, so they may share a template.

// template is one recorded lowering, renumbered into a compact id
// space: 0 = const0, 1 = const1, 2..2+numPort-1 = the child's port
// bits in (module port, bit) order, then the body nets in allocation
// order. -1 passes Nil through.
type template struct {
	numPort   int
	numBody   int
	bodyNames []string // debug names for stamped body nets (nil in nameless mode)
	bodyNamed []bool   // named-preference flag of each body net
	cells     []netlist.Cell
	aliases   [][2]int32
	rams      []tmplRAM
	// dedupedDelta/stampedDelta replicate the bookkeeping a direct
	// lowering of the subtree would have added (internal duplicates,
	// nested stamps), keeping Result.Deduped identical either way.
	dedupedDelta int
	stampedDelta int
}

type tmplRAM struct {
	relPath string // "" for the child itself, else ".sub.path"
	mem     string
	width   int
	depth   int64
	writes  []tmplWrite
	reads   []tmplRead
}

type tmplWrite struct {
	clk, en int32
	addr    []int32
	data    []int32
}

type tmplRead struct {
	addr []int32
	out  []int32
}

// portPattern renders the binding context of a just-bound child: per
// port bit (inputs and outputs alike), constness or union-find
// equality class. It is the part of the template key that captures
// everything the body's lowering decisions can observe about the
// parent.
func (s *synthesizer) portPattern(inst *elab.Instance) string {
	var sb []byte
	var classes map[netlist.NetID]int
	for _, port := range inst.Module.Ports {
		for _, bit := range s.netBits(inst, port.Name) {
			r := s.b.Find(bit)
			if v, ok := s.b.IsConst(r); ok {
				if v {
					sb = append(sb, '1')
				} else {
					sb = append(sb, '0')
				}
				continue
			}
			if classes == nil {
				classes = map[netlist.NetID]int{}
			}
			id, ok := classes[r]
			if !ok {
				id = len(classes)
				classes[r] = id
			}
			sb = append(sb, 'n')
			sb = strconv.AppendInt(sb, int64(id), 10)
			sb = append(sb, ';')
		}
	}
	return string(sb)
}

// recFrame marks the start of a recording window in the main builder.
type recFrame struct {
	inst       *elab.Instance
	startNet   int
	startCell  int
	startAlias int
	startDedup int
	startStamp int
}

func (s *synthesizer) beginRecord(inst *elab.Instance) recFrame {
	return recFrame{
		inst:       inst,
		startNet:   s.b.NetCount(),
		startCell:  s.b.CellCount(),
		startAlias: s.b.PushAliasLog(),
		startDedup: s.deduped,
		startStamp: s.stamped,
	}
}

// endRecord closes the recording window and, when the recorded ops are
// self-contained, registers the template under key. A window whose
// cells or aliases reach nets outside (constants, the child's port
// bits, the window itself) is registered as nil — known unstampable —
// so later instances simply lower directly.
func (s *synthesizer) endRecord(f recFrame, key string, valid bool) {
	aliases := s.b.PopAliasLog(f.startAlias)
	if !valid {
		return
	}
	n0, n1 := f.startNet, s.b.NetCount()

	numPort := 0
	portMap := map[netlist.NetID]int32{}
	for _, port := range f.inst.Module.Ports {
		for _, bit := range s.netBits(f.inst, port.Name) {
			portMap[bit] = int32(2 + numPort)
			numPort++
		}
	}
	base := int32(2 + numPort)
	closed := true
	mapID := func(id netlist.NetID) int32 {
		switch {
		case id == netlist.Nil:
			return -1
		case id == s.b.Const0():
			return 0
		case id == s.b.Const1():
			return 1
		}
		if c, isPort := portMap[id]; isPort {
			return c
		}
		if int(id) >= n0 && int(id) < n1 {
			return base + int32(int(id)-n0)
		}
		closed = false
		return -1
	}
	mapIDs := func(ids []netlist.NetID) []int32 {
		out := make([]int32, len(ids))
		for i, id := range ids {
			out[i] = mapID(id)
		}
		return out
	}

	t := &template{
		numPort:      numPort,
		numBody:      n1 - n0,
		bodyNamed:    make([]bool, n1-n0),
		dedupedDelta: s.deduped - f.startDedup,
		stampedDelta: s.stamped - f.startStamp,
	}
	for i := range t.bodyNamed {
		t.bodyNamed[i] = s.b.NetNamedAt(netlist.NetID(n0 + i))
	}
	if !s.b.NoNames() {
		t.bodyNames = make([]string, t.numBody)
		for i := range t.bodyNames {
			t.bodyNames[i] = s.b.NetNameAt(netlist.NetID(n0 + i))
		}
	}
	rawCells := s.b.CellsFrom(f.startCell)
	t.cells = make([]netlist.Cell, len(rawCells))
	for i, c := range rawCells {
		t.cells[i] = netlist.Cell{
			Type: c.Type,
			In:   [3]netlist.NetID{netlist.NetID(mapID(c.In[0])), netlist.NetID(mapID(c.In[1])), netlist.NetID(mapID(c.In[2]))},
			Clk:  netlist.NetID(mapID(c.Clk)),
			Out:  netlist.NetID(mapID(c.Out)),
		}
	}
	t.aliases = make([][2]int32, len(aliases))
	for i, al := range aliases {
		t.aliases[i] = [2]int32{mapID(al.X), mapID(al.Y)}
	}
	// RAM sites created anywhere in the recorded subtree: their paths
	// are unique to the subtree's instances, so every matching entry
	// was born inside this window.
	prefix := f.inst.Path
	for k, rb := range s.rams {
		if k.path != prefix && !strings.HasPrefix(k.path, prefix+".") {
			continue
		}
		tr := tmplRAM{relPath: k.path[len(prefix):], mem: k.mem, width: rb.width, depth: rb.depth}
		for _, w := range rb.writes {
			tr.writes = append(tr.writes, tmplWrite{clk: mapID(w.clk), en: mapID(w.en), addr: mapIDs(w.addr), data: mapIDs(w.data)})
		}
		for _, rp := range rb.reads {
			tr.reads = append(tr.reads, tmplRead{addr: mapIDs(rp.Addr), out: mapIDs(rp.Out)})
		}
		t.rams = append(t.rams, tr)
	}
	if !closed {
		s.tmpl[key] = nil
		return
	}
	s.tmpl[key] = t
}

// stampChild replays a template against a freshly-bound child: bulk
// net allocation for the body, a straight cell copy, and re-executed
// aliases. The debug names of body nets are shared with the recorded
// instance (names are cosmetic and excluded from Netlist.Hash).
func (s *synthesizer) stampChild(child *elab.Child, t *template) error {
	inst := child.Inst
	m := s.idSlice(2 + t.numPort + t.numBody)
	m[0], m[1] = s.b.Const0(), s.b.Const1()
	i := 2
	for _, port := range inst.Module.Ports {
		for _, bit := range s.netBits(inst, port.Name) {
			m[i] = bit
			i++
		}
	}
	if i != 2+t.numPort {
		return fmt.Errorf("synth: stamping %s: port bit count %d does not match template %d", inst.Path, i-2, t.numPort)
	}
	for i2 := 0; i2 < t.numBody; i2++ {
		name := ""
		if t.bodyNames != nil {
			name = t.bodyNames[i2]
		}
		m[i] = s.b.NewNetPref(name, t.bodyNamed[i2])
		i++
	}
	get := func(c netlist.NetID) netlist.NetID {
		if c < 0 {
			return netlist.Nil
		}
		return m[c]
	}
	get32 := func(c int32) netlist.NetID {
		if c < 0 {
			return netlist.Nil
		}
		return m[c]
	}
	getIDs := func(cs []int32) []netlist.NetID {
		out := s.idSlice(len(cs))
		for j, c := range cs {
			out[j] = get32(c)
		}
		return out
	}
	for _, c := range t.cells {
		s.b.StampCell(netlist.Cell{
			Type: c.Type,
			In:   [3]netlist.NetID{get(c.In[0]), get(c.In[1]), get(c.In[2])},
			Clk:  get(c.Clk),
			Out:  get(c.Out),
		})
	}
	for _, al := range t.aliases {
		if err := s.b.Alias(get32(al[0]), get32(al[1])); err != nil {
			return fmt.Errorf("synth: stamping %s: %w", inst.Path, err)
		}
	}
	for _, tr := range t.rams {
		rb := s.ramAt(inst.Path+tr.relPath, tr.mem, tr.width, tr.depth)
		for _, w := range tr.writes {
			rb.writes = append(rb.writes, ramWrite{clk: get32(w.clk), en: get32(w.en), addr: getIDs(w.addr), data: getIDs(w.data)})
		}
		for _, rp := range tr.reads {
			rb.reads = append(rb.reads, netlist.RAMReadPort{Addr: getIDs(rp.addr), Out: getIDs(rp.out)})
		}
	}
	s.deduped += t.dedupedDelta
	s.stamped += 1 + t.stampedDelta
	return nil
}
