package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonProcessSmoke exercises ucserved as a real process: build
// the binary, start it on an ephemeral port, wait for the readiness
// line, serve one measurement and a health check, then SIGTERM it and
// require a clean drained exit. This is the one test that covers the
// main() wiring (flags, signal handling, shutdown ordering) that the
// in-process servetest harness cannot.
func TestDaemonProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process smoke skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "ucserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache-dir", "", "-drain-timeout", "10s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Readiness: the daemon prints its bound address once listening.
	lines := bufio.NewScanner(stdout)
	var base string
	for lines.Scan() {
		if line := lines.Text(); strings.Contains(line, "listening on ") {
			base = line[strings.Index(line, "http://"):]
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon exited before printing its address (scan err: %v)", lines.Err())
	}

	body, err := json.Marshal(map[string]any{
		"sources": map[string]string{"m.v": `
module m (
  input clk,
  input a,
  output reg y
);
  always @(posedge clk) begin
    y <= ~a;
  end
endmodule
`},
		"units": []map[string]any{{"top": "m", "accounting": true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/measure", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /measure: %v", err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST /measure: HTTP %d: %s", res.StatusCode, data)
	}
	var resp struct {
		Results []struct {
			Top     string `json:"top"`
			Metrics struct {
				Cells int `json:"Cells"`
			} `json:"metrics"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decode response: %v\n%s", err, data)
	}
	if len(resp.Results) != 1 || resp.Results[0].Top != "m" || resp.Results[0].Metrics.Cells == 0 {
		t.Fatalf("implausible measurement over the wire: %s", data)
	}

	if hres, err := http.Get(base + "/healthz"); err != nil || hres.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %v, code %d", err, code(hres))
	}

	// Graceful drain: SIGTERM, clean zero exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
}

func code(r *http.Response) int {
	if r == nil {
		return 0
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	return r.StatusCode
}
