package synth

import (
	"strings"
	"testing"

	"repro/internal/hdl"
	"repro/internal/sim"
)

func synthesize(t *testing.T, src, top string, overrides map[string]int64) *Result {
	t.Helper()
	d, err := hdl.ParseDesign(map[string]string{"test.v": src})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(d, top, overrides)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func gatesim(t *testing.T, r *Result) *sim.GateSim {
	t.Helper()
	g, err := sim.NewGateSim(r.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSynthAdder(t *testing.T) {
	r := synthesize(t, `
module adder #(parameter W = 8) (input [W-1:0] a, b, output [W:0] sum);
  assign sum = a + b;
endmodule`, "adder", nil)
	g := gatesim(t, r)
	cases := [][3]uint64{{0, 0, 0}, {1, 2, 3}, {255, 1, 256}, {200, 100, 300}, {255, 255, 510}}
	for _, c := range cases {
		if err := g.SetInput("a", c[0]); err != nil {
			t.Fatal(err)
		}
		if err := g.SetInput("b", c[1]); err != nil {
			t.Fatal(err)
		}
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		got, err := g.Output("sum")
		if err != nil {
			t.Fatal(err)
		}
		if got != c[2] {
			t.Errorf("%d + %d = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestSynthSubMulCompare(t *testing.T) {
	r := synthesize(t, `
module ops (input [7:0] a, b, output [7:0] diff, prod, output lt, eq, ge);
  assign diff = a - b;
  assign prod = a * b;
  assign lt = a < b;
  assign eq = a == b;
  assign ge = a >= b;
endmodule`, "ops", nil)
	g := gatesim(t, r)
	for _, c := range [][2]uint64{{5, 3}, {3, 5}, {7, 7}, {255, 1}, {0, 0}, {200, 50}} {
		g.SetInput("a", c[0])
		g.SetInput("b", c[1])
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		checkOut := func(name string, want uint64) {
			t.Helper()
			got, err := g.Output(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("a=%d b=%d: %s = %d, want %d", c[0], c[1], name, got, want)
			}
		}
		checkOut("diff", (c[0]-c[1])&0xFF)
		checkOut("prod", (c[0]*c[1])&0xFF)
		checkOut("lt", b2u(c[0] < c[1]))
		checkOut("eq", b2u(c[0] == c[1]))
		checkOut("ge", b2u(c[0] >= c[1]))
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestSynthShifts(t *testing.T) {
	r := synthesize(t, `
module sh (input [7:0] a, input [2:0] n, output [7:0] l, rr, lc);
  assign l = a << n;
  assign rr = a >> n;
  assign lc = a << 3;
endmodule`, "sh", nil)
	g := gatesim(t, r)
	for _, c := range [][2]uint64{{0xFF, 0}, {0xFF, 3}, {0x81, 7}, {0x0F, 4}, {1, 1}} {
		g.SetInput("a", c[0])
		g.SetInput("n", c[1])
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := g.Output("l"); got != (c[0]<<c[1])&0xFF {
			t.Errorf("a=%#x n=%d: l = %#x, want %#x", c[0], c[1], got, (c[0]<<c[1])&0xFF)
		}
		if got, _ := g.Output("rr"); got != c[0]>>c[1] {
			t.Errorf("a=%#x n=%d: rr = %#x, want %#x", c[0], c[1], got, c[0]>>c[1])
		}
		if got, _ := g.Output("lc"); got != (c[0]<<3)&0xFF {
			t.Errorf("a=%#x: lc = %#x", c[0], got)
		}
	}
}

func TestSynthCounter(t *testing.T) {
	r := synthesize(t, `
module counter #(parameter W = 4) (input clk, rst, en, output reg [W-1:0] q);
  always @(posedge clk) begin
    if (rst)
      q <= 0;
    else if (en)
      q <= q + 1;
  end
endmodule`, "counter", nil)
	if got := r.Optimized.NumFFs(); got != 4 {
		t.Errorf("FFs = %d, want 4", got)
	}
	g := gatesim(t, r)
	g.SetInput("clk", 0)
	g.SetInput("rst", 1)
	g.SetInput("en", 0)
	if err := g.Step(); err != nil {
		t.Fatal(err)
	}
	g.SetInput("rst", 0)
	g.SetInput("en", 1)
	for i := 1; i <= 20; i++ {
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
		if got, _ := g.Output("q"); got != uint64(i%16) {
			t.Fatalf("after %d steps q = %d, want %d", i, got, i%16)
		}
	}
	// Disable: q holds.
	g.SetInput("en", 0)
	g.Step()
	g.Step()
	if got, _ := g.Output("q"); got != 4 {
		t.Errorf("hold failed: q = %d, want 4", got)
	}
}

func TestSynthCaseALU(t *testing.T) {
	r := synthesize(t, `
module alu (input [1:0] op, input [7:0] a, b, output reg [7:0] y);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule`, "alu", nil)
	// Complete assignment: no latches.
	if got := r.Optimized.CountByType()[8+2]; false {
		_ = got
	}
	for _, c := range r.Optimized.Cells {
		if c.Type.IsSequential() {
			t.Fatalf("unexpected sequential cell %s in pure comb ALU", c.Type)
		}
	}
	g := gatesim(t, r)
	for _, tc := range []struct{ op, a, b, want uint64 }{
		{0, 10, 20, 30}, {1, 20, 5, 15}, {2, 0xF0, 0x3C, 0x30}, {3, 0xF0, 0x3C, 0xCC},
	} {
		g.SetInput("op", tc.op)
		g.SetInput("a", tc.a)
		g.SetInput("b", tc.b)
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := g.Output("y"); got != tc.want {
			t.Errorf("op=%d a=%d b=%d: y=%d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSynthLatchInference(t *testing.T) {
	r := synthesize(t, `
module lat (input en, input [3:0] d, output reg [3:0] q);
  always @(*) begin
    if (en)
      q = d;
  end
endmodule`, "lat", nil)
	latches := 0
	for _, c := range r.Optimized.Cells {
		if c.Type.String() == "LATCH" {
			latches++
		}
	}
	if latches != 4 {
		t.Fatalf("latches = %d, want 4", latches)
	}
	g := gatesim(t, r)
	g.SetInput("en", 1)
	g.SetInput("d", 9)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("q"); got != 9 {
		t.Errorf("transparent: q = %d, want 9", got)
	}
	g.SetInput("en", 0)
	g.SetInput("d", 3)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("q"); got != 9 {
		t.Errorf("opaque: q = %d, want 9 (held)", got)
	}
}

func TestSynthHierarchyGenerate(t *testing.T) {
	r := synthesize(t, `
module fulladd (input a, b, cin, output s, cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | ((a ^ b) & cin);
endmodule
module rca #(parameter W = 6) (input [W-1:0] a, b, output [W-1:0] s, output cout);
  wire [W:0] c;
  assign c[0] = 0;
  genvar i;
  generate for (i = 0; i < W; i = i + 1) begin : g
    fulladd fa (.a(a[i]), .b(b[i]), .cin(c[i]), .s(s[i]), .cout(c[i+1]));
  end endgenerate
  assign cout = c[W];
endmodule`, "rca", nil)
	g := gatesim(t, r)
	for _, c := range [][2]uint64{{0, 0}, {31, 1}, {63, 63}, {21, 42}} {
		g.SetInput("a", c[0])
		g.SetInput("b", c[1])
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		sum := c[0] + c[1]
		if got, _ := g.Output("s"); got != sum&63 {
			t.Errorf("a=%d b=%d: s=%d, want %d", c[0], c[1], got, sum&63)
		}
		if got, _ := g.Output("cout"); got != sum>>6 {
			t.Errorf("a=%d b=%d: cout=%d, want %d", c[0], c[1], got, sum>>6)
		}
	}
}

func TestSynthMemory(t *testing.T) {
	r := synthesize(t, `
module regfile #(parameter D = 8, parameter W = 8) (
  input clk, we,
  input [2:0] waddr, raddr,
  input [W-1:0] wdata,
  output [W-1:0] rdata
);
  reg [W-1:0] mem [0:D-1];
  always @(posedge clk) begin
    if (we)
      mem[waddr] <= wdata;
  end
  assign rdata = mem[raddr];
endmodule`, "regfile", nil)
	if len(r.Optimized.RAMs) != 1 {
		t.Fatalf("RAMs = %d, want 1", len(r.Optimized.RAMs))
	}
	ram := r.Optimized.RAMs[0]
	if ram.Width != 8 || ram.Depth != 8 || len(ram.ReadPorts) != 1 {
		t.Fatalf("RAM = %+v", ram)
	}
	g := gatesim(t, r)
	// Write 3 values, then read them back.
	g.SetInput("we", 1)
	for i := uint64(0); i < 3; i++ {
		g.SetInput("waddr", i)
		g.SetInput("wdata", 100+i)
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	g.SetInput("we", 0)
	for i := uint64(0); i < 3; i++ {
		g.SetInput("raddr", i)
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := g.Output("rdata"); got != 100+i {
			t.Errorf("mem[%d] = %d, want %d", i, got, 100+i)
		}
	}
}

func TestSynthVariableIndex(t *testing.T) {
	r := synthesize(t, `
module vidx (input [7:0] a, input [2:0] sel, input clk, input bitv, output y, output reg [7:0] w);
  assign y = a[sel];
  always @(posedge clk)
    w[sel] <= bitv;
endmodule`, "vidx", nil)
	g := gatesim(t, r)
	g.SetInput("a", 0b10100101)
	for s := uint64(0); s < 8; s++ {
		g.SetInput("sel", s)
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		want := (uint64(0b10100101) >> s) & 1
		if got, _ := g.Output("y"); got != want {
			t.Errorf("a[%d] = %d, want %d", s, got, want)
		}
	}
	// Sequential bit writes: set bits 2 and 5.
	g.SetInput("bitv", 1)
	g.SetInput("sel", 2)
	g.Step()
	g.SetInput("sel", 5)
	g.Step()
	if got, _ := g.Output("w"); got != (1<<2)|(1<<5) {
		t.Errorf("w = %#x, want 0x24", got)
	}
}

func TestSynthForLoopReverse(t *testing.T) {
	r := synthesize(t, `
module rev (input [7:0] a, output reg [7:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      y[i] = a[7 - i];
  end
endmodule`, "rev", nil)
	g := gatesim(t, r)
	g.SetInput("a", 0b00000001)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("y"); got != 0b10000000 {
		t.Errorf("y = %#b", got)
	}
	g.SetInput("a", 0b11001010)
	g.Eval()
	if got, _ := g.Output("y"); got != 0b01010011 {
		t.Errorf("y = %#b, want 01010011", got)
	}
}

func TestSynthConcatLHSAndTernary(t *testing.T) {
	r := synthesize(t, `
module cc (input [7:0] a, b, input s, output reg carry, output reg [7:0] sum, output [7:0] m);
  assign m = s ? a : b;
  always @(*) begin
    {carry, sum} = a + b;
  end
endmodule`, "cc", nil)
	g := gatesim(t, r)
	g.SetInput("a", 200)
	g.SetInput("b", 100)
	g.SetInput("s", 1)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("sum"); got != (300 & 0xFF) {
		t.Errorf("sum = %d", got)
	}
	if got, _ := g.Output("carry"); got != 1 {
		t.Errorf("carry = %d", got)
	}
	if got, _ := g.Output("m"); got != 200 {
		t.Errorf("m = %d, want a=200", got)
	}
	g.SetInput("s", 0)
	g.Eval()
	if got, _ := g.Output("m"); got != 100 {
		t.Errorf("m = %d, want b=100", got)
	}
}

func TestSynthReductionsAndLogic(t *testing.T) {
	r := synthesize(t, `
module red (input [3:0] a, b, output rall, rany, rpar, land, lor);
  assign rall = &a;
  assign rany = |a;
  assign rpar = ^a;
  assign land = a && b;
  assign lor = a || b;
endmodule`, "red", nil)
	g := gatesim(t, r)
	for _, c := range [][2]uint64{{0, 0}, {15, 0}, {7, 3}, {8, 0}, {5, 5}} {
		g.SetInput("a", c[0])
		g.SetInput("b", c[1])
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		check := func(name string, want uint64) {
			t.Helper()
			if got, _ := g.Output(name); got != want {
				t.Errorf("a=%d b=%d: %s = %d, want %d", c[0], c[1], name, got, want)
			}
		}
		check("rall", b2u(c[0] == 15))
		check("rany", b2u(c[0] != 0))
		par := uint64(0)
		for x := c[0]; x != 0; x &= x - 1 {
			par ^= 1
		}
		check("rpar", par)
		check("land", b2u(c[0] != 0 && c[1] != 0))
		check("lor", b2u(c[0] != 0 || c[1] != 0))
	}
}

func TestSynthDivModByPowerOfTwo(t *testing.T) {
	r := synthesize(t, `
module dm (input [7:0] a, output [7:0] q, rem);
  assign q = a / 4;
  assign rem = a % 4;
endmodule`, "dm", nil)
	g := gatesim(t, r)
	for _, a := range []uint64{0, 3, 4, 17, 255} {
		g.SetInput("a", a)
		if err := g.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := g.Output("q"); got != a/4 {
			t.Errorf("%d/4 = %d", a, got)
		}
		if got, _ := g.Output("rem"); got != a%4 {
			t.Errorf("%d%%4 = %d", a, got)
		}
	}
}

func TestSynthDivByNonPowerOfTwoRejected(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module bad (input [7:0] a, output [7:0] q);
  assign q = a / 3;
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(d, "bad", nil); err == nil || !strings.Contains(err.Error(), "powers of two") {
		t.Fatalf("want power-of-two error, got %v", err)
	}
}

func TestSynthMultipleDriversRejected(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module md (input a, b, output y);
  assign y = a;
  assign y = b;
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(d, "md", nil); err == nil {
		t.Fatal("expected multiple-driver error")
	}
}

func TestSynthAsyncResetPattern(t *testing.T) {
	// Async resets are modeled as synchronous; behaviour under a held
	// reset must still clear the register.
	r := synthesize(t, `
module ar (input clk, rst_n, input [3:0] d, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      q <= 0;
    else
      q <= d;
  end
endmodule`, "ar", nil)
	g := gatesim(t, r)
	g.SetInput("rst_n", 1)
	g.SetInput("d", 11)
	g.Step()
	if got, _ := g.Output("q"); got != 11 {
		t.Errorf("q = %d, want 11", got)
	}
	g.SetInput("rst_n", 0)
	g.Step()
	if got, _ := g.Output("q"); got != 0 {
		t.Errorf("q after reset = %d, want 0", got)
	}
}

func TestSynthParameterChangesStructure(t *testing.T) {
	src := `
module cnt #(parameter W = 4) (input clk, output reg [W-1:0] q);
  always @(posedge clk) q <= q + 1;
endmodule`
	small := synthesize(t, src, "cnt", map[string]int64{"W": 2})
	big := synthesize(t, src, "cnt", map[string]int64{"W": 16})
	if small.Optimized.NumFFs() != 2 || big.Optimized.NumFFs() != 16 {
		t.Errorf("FFs = %d / %d, want 2 / 16", small.Optimized.NumFFs(), big.Optimized.NumFFs())
	}
	ss, bs := small.Optimized.Stats(), big.Optimized.Stats()
	if bs.Cells <= ss.Cells || bs.Nets <= ss.Nets {
		t.Errorf("wider counter must be bigger: %+v vs %+v", ss, bs)
	}
}

func TestSynthUnconnectedPorts(t *testing.T) {
	r := synthesize(t, `
module leaf (input a, b, output x, y);
  assign x = a & b;
  assign y = a | b;
endmodule
module top (input p, output q);
  leaf u (.a(p), .b(), .x(q), .y());
endmodule`, "top", nil)
	g := gatesim(t, r)
	// b tied to 0 ⇒ q = p & 0 = 0 always; the optimizer may fold it.
	g.SetInput("p", 1)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Output("q"); got != 0 {
		t.Errorf("q = %d, want 0 (b tied off)", got)
	}
}
