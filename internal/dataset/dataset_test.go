package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestPaperHas18Components(t *testing.T) {
	comps := Paper()
	if len(comps) != 18 {
		t.Fatalf("got %d components, want 18", len(comps))
	}
	byProject := map[string]int{}
	for _, c := range comps {
		byProject[c.Project]++
	}
	want := map[string]int{"Leon3": 4, "PUMA": 5, "IVM": 7, "RAT": 2}
	for p, n := range want {
		if byProject[p] != n {
			t.Errorf("project %s has %d components, want %d", p, byProject[p], n)
		}
	}
}

func TestPaperSpotValues(t *testing.T) {
	comps := Paper()
	byLabel := map[string]Component{}
	for _, c := range comps {
		byLabel[c.Label()] = c
	}

	lp := byLabel["Leon3-Pipeline"]
	if lp.Effort != 24 {
		t.Errorf("Leon3-Pipeline effort = %v, want 24", lp.Effort)
	}
	checks := []struct {
		label  string
		metric Metric
		want   float64
	}{
		{"Leon3-Pipeline", Stmts, 2070},
		{"Leon3-Pipeline", FanInLC, 10502},
		{"PUMA-Execute", LoC, 9613},
		{"PUMA-ROB", Nets, 9840},
		{"IVM-Memory", Cells, 12050},
		{"IVM-Decode", FFs, 0},
		{"IVM-Execute", FFs, 0},
		{"RAT-Standard", Freq, 137},
		{"RAT-Sliding", AreaS, 60713},
		{"IVM-Execute", AreaL, 619561},
		{"PUMA-Fetch", PowerS, 3513},
	}
	for _, c := range checks {
		comp, ok := byLabel[c.label]
		if !ok {
			t.Fatalf("missing component %s", c.label)
		}
		got, err := comp.Metric(c.metric)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s %s = %v, want %v", c.label, c.metric, got, c.want)
		}
	}
}

func TestPaperEffortTotals(t *testing.T) {
	// Sanity aggregate: total reported effort in Table 4's Effort column
	// is 24+6+6+6 + 3+4+4+12+1 + 10+2+4+4+3+10+5 + 0.6+1 = 105.6.
	var total float64
	for _, c := range Paper() {
		total += c.Effort
	}
	if total < 105.59 || total > 105.61 {
		t.Errorf("total effort = %v, want 105.6", total)
	}
}

func TestPaperAllMetricsPresent(t *testing.T) {
	for _, c := range Paper() {
		for _, m := range AllMetrics {
			if _, err := c.Metric(m); err != nil {
				t.Errorf("%s: %v", c.Label(), err)
			}
		}
	}
}

func TestPaperIndependentCopies(t *testing.T) {
	a := Paper()
	a[0].Metrics[Stmts] = -1
	b := Paper()
	if b[0].Metrics[Stmts] == -1 {
		t.Error("Paper() must return fresh copies")
	}
}

func TestMetricErrorNamesComponent(t *testing.T) {
	c := Component{Project: "P", Name: "N", Metrics: map[Metric]float64{}}
	_, err := c.Metric(Stmts)
	if err == nil || !strings.Contains(err.Error(), "P-N") {
		t.Errorf("error should name the component, got %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Paper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip changed row count: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Project != orig[i].Project || back[i].Name != orig[i].Name || back[i].Effort != orig[i].Effort {
			t.Errorf("row %d identity changed: %+v vs %+v", i, back[i], orig[i])
		}
		for m, v := range orig[i].Metrics {
			if back[i].Metrics[m] != v {
				t.Errorf("row %d metric %s: %v vs %v", i, m, back[i].Metrics[m], v)
			}
		}
	}
}

func TestCSVMissingCells(t *testing.T) {
	in := "project,component,effort,LoC,Stmts\nA,x,2,100,\n"
	comps, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 {
		t.Fatalf("got %d rows", len(comps))
	}
	if _, ok := comps[0].Metrics[Stmts]; ok {
		t.Error("empty cell must be omitted")
	}
	if comps[0].Metrics[LoC] != 100 {
		t.Errorf("LoC = %v, want 100", comps[0].Metrics[LoC])
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b,c\n",
		"project,component,effort\nA,x,notanumber\n",
		"project,component,effort,LoC\nA,x,1,bad\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestProjectsAndSelect(t *testing.T) {
	comps := Paper()
	ps := Projects(comps)
	if len(ps) != 4 || ps[0] != "Leon3" || ps[3] != "RAT" {
		t.Errorf("Projects = %v", ps)
	}
	ivm := Select(comps, "IVM")
	if len(ivm) != 7 {
		t.Errorf("Select(IVM) returned %d components, want 7", len(ivm))
	}
	both := Select(comps, "RAT", "PUMA")
	if len(both) != 7 {
		t.Errorf("Select(RAT,PUMA) returned %d components, want 7", len(both))
	}
}

func TestTable1AndTable3Shape(t *testing.T) {
	if rows := Table1(); len(rows) != 9 {
		t.Errorf("Table1 has %d rows, want 9", len(rows))
	}
	t3 := Table3()
	if len(t3) != 11 {
		t.Errorf("Table3 has %d rows, want 11", len(t3))
	}
	seen := map[Metric]bool{}
	for _, r := range t3 {
		seen[r.Metric] = true
	}
	for _, m := range AllMetrics {
		if !seen[m] {
			t.Errorf("Table3 missing metric %s", m)
		}
	}
}

func TestPaperReferenceTables(t *testing.T) {
	if n := len(PaperDEE1Column()); n != 18 {
		t.Errorf("DEE1 column has %d entries, want 18", n)
	}
	if n := len(PaperSigmaEps()); n != 12 {
		t.Errorf("σε table has %d entries, want 12", n)
	}
	if n := len(PaperSigmaEpsNoRho()); n != 12 {
		t.Errorf("σε(ρ=1) table has %d entries, want 12", n)
	}
	if n := len(ReportedTable2()); n != 18 {
		t.Errorf("Table 2 has %d entries, want 18", n)
	}
	// The fixed-effects σε must never beat the mixed-effects σε for the
	// same estimator... except AreaS where the paper reports a tie.
	withRho, without := PaperSigmaEps(), PaperSigmaEpsNoRho()
	for name, s := range withRho {
		if without[name] < s {
			t.Errorf("%s: σε(ρ=1)=%v < σε=%v, impossible per the model", name, without[name], s)
		}
	}
}
