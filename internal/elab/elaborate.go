package elab

import (
	"fmt"
	"strconv"

	"repro/internal/hdl"
)

// Options tunes elaboration limits and modes.
type Options struct {
	// MaxGenIterations caps a single generate/procedural for loop.
	// Zero means 4096.
	MaxGenIterations int
	// MaxInstances caps the total instance count. Zero means 100000.
	MaxInstances int
	// Cache, when non-nil, memoizes elaborated subtrees across calls
	// within one measurement session: a submodule whose resolved
	// parameter binding (and, for full trees, hierarchical path) was
	// already elaborated is reused instead of rebuilt, so elaborating a
	// nearby parameter point costs proportional to what the changed
	// parameter actually touches. Results are bit-identical to uncached
	// elaboration. The cache must not be shared across designs or
	// across differing limit options.
	Cache *Cache
	// ReportOnly computes just the construct Report (generate-loop trip
	// counts, branch polarities, memory shapes, behavioral signatures)
	// without retaining instance trees: Elaborate returns a nil
	// *Instance. Success/failure and the Report are bit-identical to a
	// full elaboration — every declaration, range check, and constant
	// evaluation still runs — but subtrees are discarded as soon as
	// their fragment is extracted (and, with a Cache, skipped entirely
	// on repeat signatures). This is the probe mode of the accounting
	// search's scaling rule.
	ReportOnly bool
}

func (o Options) maxIter() int {
	if o.MaxGenIterations == 0 {
		return 4096
	}
	return o.MaxGenIterations
}

func (o Options) maxInst() int {
	if o.MaxInstances == 0 {
		return 100000
	}
	return o.MaxInstances
}

type elaborator struct {
	design *hdl.Design
	opts   Options
	// report is the fragment of the subtree currently being elaborated;
	// elaborateSubtree swaps in a fresh one per module instance so the
	// fragment can be memoized, then merges it into the enclosing one.
	report    *Report
	instCount int
	stack     []string // module names being elaborated, for cycle detection
	// stackBuf backs stack for typical hierarchy depths so pushing the
	// first module doesn't heap-allocate; stack spills past it normally.
	stackBuf [16]string
	// prefBuf is scratch for building generate-scope prefixes
	// ("g[2]."). Loop drivers rebuild it from scratch before every use,
	// so nested loops clobbering it is harmless.
	prefBuf []byte
	cache   *Cache
	// usedPaths guards full-tree reuse: a hierarchical path may only be
	// served from (or stored into) the cache once per elaboration, so a
	// design that repeats an instance name still gets distinct Instance
	// objects, exactly as uncached elaboration builds them.
	usedPaths map[string]bool
	// Chunked allocators for the per-item structs built in bulk.
	netA bump[Net]
	asgA bump[ElabAssign]
	alwA bump[ElabAlways]
	chA  bump[Child]
}

// bump is a chunked allocator for the small structs an elaboration
// creates in bulk (nets, assigns, always blocks, child links). The
// objects escape into Instance trees that live as long as the
// elaboration's output, so handing out pointers into shared chunks
// trades one heap allocation per object for one per 256; chunks are
// never reset or reused.
type bump[T any] struct {
	chunk []T
	next  int // size of the next chunk; grows geometrically
}

func (b *bump[T]) new() *T {
	if len(b.chunk) == 0 {
		// Start small: most elaborations (per-probe module stamps) need
		// only a handful of objects, so a large fixed chunk would waste
		// more than individual allocation saves. Double up to a cap so
		// big designs still amortize to one allocation per 256 objects.
		if b.next == 0 {
			b.next = 8
		} else if b.next < 256 {
			b.next *= 2
		}
		b.chunk = make([]T, b.next)
	}
	p := &b.chunk[0]
	b.chunk = b.chunk[1:]
	return p
}

// Elaborate builds the elaborated instance tree of module top with the
// given parameter overrides (nil for defaults) and returns it together
// with the construct report used by the scaling rule.
func Elaborate(design *hdl.Design, top string, overrides map[string]int64) (*Instance, *Report, error) {
	return ElaborateOpts(design, top, overrides, Options{})
}

// ElaborateOpts is Elaborate with explicit limits and modes. In
// report-only mode (Options.ReportOnly) the returned Instance is nil.
func ElaborateOpts(design *hdl.Design, top string, overrides map[string]int64, opts Options) (*Instance, *Report, error) {
	m, err := design.Module(top)
	if err != nil {
		return nil, nil, err
	}
	el := &elaborator{design: design, opts: opts, report: NewReport(), cache: opts.Cache}
	el.stack = el.stackBuf[:0]
	params := map[string]int64{}
	// Resolve header parameters left to right: defaults may reference
	// earlier parameters; overrides replace defaults.
	env := NewEnv(nil)
	for _, p := range m.Params {
		var v int64
		if ov, ok := overrides[p.Name]; ok {
			v = ov
		} else {
			v, err = Eval(p.Value, env)
			if err != nil {
				return nil, nil, fmt.Errorf("elab: default of parameter %s.%s: %w", top, p.Name, err)
			}
		}
		params[p.Name] = v
		if err := env.Define(p.Name, v); err != nil {
			return nil, nil, err
		}
	}
	for name := range overrides {
		if _, ok := params[name]; !ok {
			return nil, nil, fmt.Errorf("elab: module %s has no parameter %q", top, name)
		}
	}
	var sig string
	if el.cache != nil {
		sig = ParamSignature(top, params)
		if opts.ReportOnly {
			if e, ok := el.cache.lookupReport(sig); ok {
				return nil, e.frag, nil
			}
		} else {
			if e, ok := el.cache.lookupTree(top, sig); ok {
				return e.inst, e.frag, nil
			}
			el.usedPaths = map[string]bool{top: true}
		}
	}
	inst, frag, count, err := el.elaborateSubtree(m, top, params)
	if err != nil {
		return nil, nil, err
	}
	if el.cache != nil {
		if opts.ReportOnly {
			el.cache.storeReport(sig, frag, count)
		} else {
			el.cache.storeTree(top, sig, inst, frag, count)
		}
	}
	if opts.ReportOnly {
		inst = nil
	}
	return inst, frag, nil
}

// elaborateSubtree elaborates module m at path into a fresh report
// fragment, merges the fragment into the enclosing report, and returns
// it together with the subtree's instance count so both can be
// memoized by the session cache. Without a cache there is nothing to
// memoize, so the subtree records straight into the enclosing report
// — the uncached path pays no fragment bookkeeping.
func (el *elaborator) elaborateSubtree(m *hdl.Module, path string, params map[string]int64) (*Instance, *Report, int, error) {
	if el.cache == nil {
		count0 := el.instCount
		inst, err := el.elaborateModule(m, path, params)
		if err != nil {
			return nil, nil, 0, err
		}
		return inst, el.report, el.instCount - count0, nil
	}
	outer := el.report
	frag := NewReport()
	el.report = frag
	count0 := el.instCount
	inst, err := el.elaborateModule(m, path, params)
	el.report = outer
	if err != nil {
		return nil, nil, 0, err
	}
	outer.mergeFrom(frag)
	return inst, frag, el.instCount - count0, nil
}

// reuseInstances accounts for the instances of a memoized subtree
// against the global limit, exactly as elaborating it fresh would.
func (el *elaborator) reuseInstances(count int, path string) error {
	el.instCount += count
	if el.instCount > el.opts.maxInst() {
		return fmt.Errorf("elab: instance limit %d exceeded at %s", el.opts.maxInst(), path)
	}
	return nil
}

func (el *elaborator) elaborateModule(m *hdl.Module, path string, params map[string]int64) (*Instance, error) {
	for _, name := range el.stack {
		if name == m.Name {
			return nil, fmt.Errorf("elab: recursive instantiation of module %q (%v)", m.Name, el.stack)
		}
	}
	el.stack = append(el.stack, m.Name)
	defer func() { el.stack = el.stack[:len(el.stack)-1] }()

	el.instCount++
	if el.instCount > el.opts.maxInst() {
		return nil, fmt.Errorf("elab: instance limit %d exceeded at %s", el.opts.maxInst(), path)
	}

	// Pre-size Nets and Children from an exact count of the
	// directly-declared items, so small leaf modules — the bulk of what
	// probe elaborations stamp — get single-bucket maps and no append
	// growth (generate-stamped extras beyond the count amortize
	// normally). Mems, IntVars, and Genvars allocate lazily on first
	// insert — most instances have none of the three, and map reads on
	// nil are fine.
	nChild, nDecl := 0, 0
	for _, it := range m.Items {
		switch d := it.(type) {
		case *hdl.Instance:
			nChild++
		case *hdl.NetDecl:
			nDecl += len(d.Names)
		}
	}
	inst := &Instance{
		Module: m,
		Path:   path,
		Params: params,
		Nets:   make(map[string]*Net, len(m.Ports)+nDecl),
	}
	if nChild > 0 {
		inst.Children = make([]*Child, 0, nChild)
	}
	env := NewEnv(params)

	// Ports become nets.
	for _, p := range m.Ports {
		w, lsb, err := el.evalRange(p.Range, env, p.Pos)
		if err != nil {
			return nil, &portError{path: path, port: p.Name, err: err}
		}
		if _, dup := inst.Nets[p.Name]; dup {
			return nil, fmt.Errorf("elab: duplicate port %s.%s", path, p.Name)
		}
		kind := hdl.KindWire
		if p.IsReg {
			kind = hdl.KindReg
		}
		n := el.netA.new()
		*n = Net{Name: p.Name, Width: w, LSB: lsb, Kind: kind, IsPort: true, Dir: p.Dir, Pos: p.Pos}
		inst.Nets[p.Name] = n
	}

	if err := el.elaborateItems(inst, m.Items, env); err != nil {
		return nil, err
	}
	if err := el.validateRanges(inst); err != nil {
		return nil, err
	}
	return inst, nil
}

// evalRange returns (width, lsb) for a range (nil = scalar 1-bit).
func (el *elaborator) evalRange(r *hdl.Range, env *Env, pos hdl.Pos) (int, int64, error) {
	if r == nil {
		return 1, 0, nil
	}
	msb, err := Eval(r.MSB, env)
	if err != nil {
		return 0, 0, err
	}
	lsb, err := Eval(r.LSB, env)
	if err != nil {
		return 0, 0, err
	}
	if msb < lsb {
		return 0, 0, &rangeError{pos: pos, msb: msb, lsb: lsb}
	}
	w := msb - lsb + 1
	if w > 4096 {
		return 0, 0, &rangeError{pos: pos, msb: msb, lsb: lsb, tooWide: true}
	}
	return int(w), lsb, nil
}

func (el *elaborator) elaborateItems(inst *Instance, items []hdl.Item, env *Env) error {
	for _, it := range items {
		if err := el.elaborateItem(inst, it, env); err != nil {
			return err
		}
	}
	return nil
}

func (el *elaborator) elaborateItem(inst *Instance, it hdl.Item, env *Env) error {
	switch v := it.(type) {
	case *hdl.ParamDecl:
		val, err := Eval(v.Value, env)
		if err != nil {
			return fmt.Errorf("elab: %s %s in %s: %w", kindWord(v), v.Name, inst.Path, err)
		}
		return env.Define(v.Name, val)

	case *hdl.NetDecl:
		switch v.Kind {
		case hdl.KindGenvar:
			if inst.Genvars == nil {
				inst.Genvars = map[string]bool{}
			}
			for _, n := range v.Names {
				inst.Genvars[n] = true
			}
			return nil
		case hdl.KindInteger:
			if inst.IntVars == nil {
				inst.IntVars = map[string]bool{}
			}
			for _, n := range v.Names {
				inst.IntVars[n] = true
			}
			return nil
		}
		w, lsb, err := el.evalRange(v.Range, env, v.Pos)
		if err != nil {
			return fmt.Errorf("elab: declaration in %s: %w", inst.Path, err)
		}
		if v.ArrayRange != nil {
			a, err := Eval(v.ArrayRange.MSB, env)
			if err != nil {
				return err
			}
			b, err := Eval(v.ArrayRange.LSB, env)
			if err != nil {
				return err
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo < 0 {
				return fmt.Errorf("elab: %s: memory %s has negative bound [%d:%d]", v.Pos, v.Names[0], a, b)
			}
			depth := hi - lo + 1
			if depth > 1<<20 {
				return fmt.Errorf("elab: %s: memory %s too deep (%d)", v.Pos, v.Names[0], depth)
			}
			name := env.Prefix() + v.Names[0]
			if _, dup := inst.Mems[name]; dup {
				return fmt.Errorf("elab: duplicate memory %s in %s", name, inst.Path)
			}
			el.report.recordMem(v.Pos, depth)
			if inst.Mems == nil {
				inst.Mems = map[string]*Mem{}
			}
			inst.Mems[name] = &Mem{Name: name, Width: w, Depth: depth, MinIdx: lo, Pos: v.Pos}
			return nil
		}
		for _, n := range v.Names {
			full := env.Prefix() + n
			if _, dup := inst.Nets[full]; dup {
				return fmt.Errorf("elab: duplicate net %s in %s", full, inst.Path)
			}
			nn := el.netA.new()
			*nn = Net{Name: full, Width: w, LSB: lsb, Kind: v.Kind, Pos: v.Pos}
			inst.Nets[full] = nn
		}
		return nil

	case *hdl.ContAssign:
		a := el.asgA.new()
		*a = ElabAssign{Item: v, Env: env}
		inst.Assigns = append(inst.Assigns, a)
		return nil

	case *hdl.AlwaysBlock:
		ab := el.alwA.new()
		*ab = ElabAlways{Item: v, Env: env}
		inst.Alwayses = append(inst.Alwayses, ab)
		// Walk the body for the construct signature (constant
		// conditionals, loop trip counts).
		return el.signStmt(inst, v.Body, env)

	case *hdl.Instance:
		return el.elaborateInstance(inst, v, env)

	case *hdl.GenFor:
		return el.elaborateGenFor(inst, v, env)

	case *hdl.GenIf:
		return el.elaborateGenIf(inst, v, env)
	}
	return fmt.Errorf("elab: unsupported item %T in %s", it, inst.Path)
}

func kindWord(p *hdl.ParamDecl) string {
	if p.IsLocal {
		return "localparam"
	}
	return "parameter"
}

func (el *elaborator) elaborateInstance(parent *Instance, v *hdl.Instance, env *Env) error {
	child, err := el.design.Module(v.ModuleName)
	if err != nil {
		return fmt.Errorf("elab: instance %s.%s: %w", parent.Path, v.Name, err)
	}
	// Resolve child parameters: defaults (left to right, in the child's
	// own growing env) overridden by explicit bindings evaluated in the
	// parent scope. Declared-name checks are linear scans — parameter
	// and port lists are short, and the maps they replace dominated this
	// function's allocation profile.
	var overrides map[string]int64
	if len(v.Params) > 0 {
		overrides = make(map[string]int64, len(v.Params))
	}
	for _, b := range v.Params {
		declared := false
		for _, p := range child.Params {
			if p.Name == b.Name {
				declared = true
				break
			}
		}
		if !declared {
			return fmt.Errorf("elab: %s: module %s has no parameter %q", b.Pos, child.Name, b.Name)
		}
		if b.Value == nil {
			return fmt.Errorf("elab: %s: parameter binding %q has no value", b.Pos, b.Name)
		}
		val, err := Eval(b.Value, env)
		if err != nil {
			return fmt.Errorf("elab: parameter %s of %s.%s: %w", b.Name, parent.Path, v.Name, err)
		}
		overrides[b.Name] = val
	}
	params := make(map[string]int64, len(child.Params))
	childEnv := NewEnv(nil)
	for _, p := range child.Params {
		var val int64
		if ov, ok := overrides[p.Name]; ok {
			val = ov
		} else {
			val, err = Eval(p.Value, childEnv)
			if err != nil {
				return fmt.Errorf("elab: default of %s.%s: %w", child.Name, p.Name, err)
			}
		}
		params[p.Name] = val
		if err := childEnv.Define(p.Name, val); err != nil {
			return err
		}
	}
	// Check port binding names.
	for _, b := range v.Ports {
		found := false
		for _, p := range child.Ports {
			if p.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("elab: %s: module %s has no port %q", b.Pos, child.Name, b.Name)
		}
	}
	name := env.Prefix() + v.Name
	childPath := parent.Path + "." + name
	// Session-cache reuse. Bypassed when the child module is already on
	// the elaboration stack: a memoized fragment from a non-recursive
	// context must not mask the recursive-instantiation error a fresh
	// elaboration would raise here.
	var sig string
	cacheable := el.cache != nil
	if cacheable {
		for _, mod := range el.stack {
			if mod == child.Name {
				cacheable = false
				break
			}
		}
	}
	if cacheable {
		sig = ParamSignature(child.Name, params)
		if el.opts.ReportOnly {
			if e, ok := el.cache.lookupReport(sig); ok {
				el.report.mergeFrom(e.frag)
				if err := el.reuseInstances(e.count, childPath); err != nil {
					return err
				}
				ch := el.chA.new()
				*ch = Child{Name: name, Ports: v.Ports, Env: env, Pos: v.Pos}
				parent.Children = append(parent.Children, ch)
				return nil
			}
		} else if el.usedPaths[childPath] {
			// A repeated hierarchical path must stay a distinct tree.
			cacheable = false
		} else {
			el.usedPaths[childPath] = true
			if e, ok := el.cache.lookupTree(childPath, sig); ok {
				el.report.mergeFrom(e.frag)
				if err := el.reuseInstances(e.count, childPath); err != nil {
					return err
				}
				ch := el.chA.new()
				*ch = Child{Name: name, Ports: v.Ports, Env: env, Inst: e.inst, Pos: v.Pos}
				parent.Children = append(parent.Children, ch)
				return nil
			}
		}
	}
	var childInst *Instance
	var err2 error
	if !cacheable {
		// Nothing will be stored (no cache, a recursion-stack bypass, or
		// a repeated path), so skip the fragment bookkeeping and record
		// straight into the enclosing report.
		childInst, err2 = el.elaborateModule(child, childPath, params)
		if err2 != nil {
			return err2
		}
	} else {
		var frag *Report
		var count int
		childInst, frag, count, err2 = el.elaborateSubtree(child, childPath, params)
		if err2 != nil {
			return err2
		}
		if el.opts.ReportOnly {
			el.cache.storeReport(sig, frag, count)
		} else {
			el.cache.storeTree(childPath, sig, childInst, frag, count)
		}
	}
	if el.opts.ReportOnly {
		// Probe mode: the subtree's fragment is what mattered; drop the
		// tree. The Child entry stays so the parent's range validation
		// still checks every port expression.
		childInst = nil
	}
	ch := el.chA.new()
	*ch = Child{
		Name:  name,
		Ports: v.Ports,
		Env:   env,
		Inst:  childInst,
		Pos:   v.Pos,
	}
	parent.Children = append(parent.Children, ch)
	return nil
}

func (el *elaborator) elaborateGenFor(inst *Instance, v *hdl.GenFor, env *Env) error {
	if !inst.Genvars[v.Var] {
		return fmt.Errorf("elab: %s: generate loop variable %q is not a declared genvar", v.Pos, v.Var)
	}
	val, err := Eval(v.Init, env)
	if err != nil {
		return fmt.Errorf("elab: generate for init in %s: %w", inst.Path, err)
	}
	label := v.Label
	trips := int64(0)
	// One map-free iteration scope is reused across trips for the
	// condition/step evaluations (they never capture it); each body gets
	// its own scope since its prefix differs and items retain it.
	iter := env.ChildVar("", v.Var, val)
	pref := el.prefBuf
	for {
		iter.setVar(val)
		cond, err := Eval(v.Cond, iter)
		if err != nil {
			return fmt.Errorf("elab: generate for condition in %s: %w", inst.Path, err)
		}
		if cond == 0 {
			break
		}
		trips++
		if trips > int64(el.opts.maxIter()) {
			return fmt.Errorf("elab: %s: generate loop exceeds %d iterations", v.Pos, el.opts.maxIter())
		}
		// Rebuilt from parts every trip (not hoisted) so a nested
		// generate loop clobbering the shared prefix scratch is harmless.
		if label != "" {
			pref = append(pref[:0], label...)
		} else {
			pref = append(pref[:0], "_gf"...)
			pref = strconv.AppendInt(pref, int64(v.Pos.Line), 10)
			pref = append(pref, '_')
			pref = strconv.AppendInt(pref, int64(v.Pos.Col), 10)
		}
		pref = append(pref, '[')
		pref = strconv.AppendInt(pref, val, 10)
		pref = append(pref, ']', '.')
		bodyEnv := env.ChildVar(string(pref), v.Var, val)
		if err := el.elaborateItems(inst, v.Body, bodyEnv); err != nil {
			return err
		}
		next, err := Eval(v.Step, iter)
		if err != nil {
			return fmt.Errorf("elab: generate for step in %s: %w", inst.Path, err)
		}
		if next == val {
			return fmt.Errorf("elab: %s: generate loop does not advance (%s stuck at %d)", v.Pos, v.Var, val)
		}
		val = next
	}
	el.prefBuf = pref
	el.report.recordLoop("genfor", v.Pos, trips)
	return nil
}

func (el *elaborator) elaborateGenIf(inst *Instance, v *hdl.GenIf, env *Env) error {
	cond, err := Eval(v.Cond, env)
	if err != nil {
		return fmt.Errorf("elab: generate if condition in %s: %w", inst.Path, err)
	}
	if cond != 0 {
		el.report.recordBranch("genif", v.Pos, "then")
		branchEnv := env
		if v.ThenLabel != "" {
			branchEnv = env.Child(v.ThenLabel+".", nil)
		}
		return el.elaborateItems(inst, v.Then, branchEnv)
	}
	el.report.recordBranch("genif", v.Pos, "else")
	if len(v.Else) == 0 {
		return nil
	}
	branchEnv := env
	if v.ElseLabel != "" {
		branchEnv = env.Child(v.ElseLabel+".", nil)
	}
	return el.elaborateItems(inst, v.Else, branchEnv)
}

// signStmt walks a behavioral statement recording the construct
// signature: which branch constant conditionals take and whether loops
// run. Signal-dependent conditionals are recorded as NonConst and both
// branches are walked.
func (el *elaborator) signStmt(inst *Instance, s hdl.Stmt, env *Env) error {
	switch v := s.(type) {
	case *hdl.Block:
		for _, sub := range v.Stmts {
			if err := el.signStmt(inst, sub, env); err != nil {
				return err
			}
		}
		return nil
	case *hdl.Assign:
		return nil
	case *hdl.If:
		if c, err := Eval(v.Cond, env); err == nil {
			arm := "else"
			if c != 0 {
				arm = "then"
			}
			el.report.recordBranch("if", v.Pos, arm)
			if c != 0 {
				return el.signStmt(inst, v.Then, env)
			}
			if v.Else != nil {
				return el.signStmt(inst, v.Else, env)
			}
			return nil
		}
		el.report.recordNonConst("if", v.Pos)
		if err := el.signStmt(inst, v.Then, env); err != nil {
			return err
		}
		if v.Else != nil {
			return el.signStmt(inst, v.Else, env)
		}
		return nil
	case *hdl.Case:
		if subj, err := Eval(v.Subject, env); err == nil {
			// Constant subject: find the matching arm (labels must be
			// constant to match).
			armName := "default"
			var body hdl.Stmt
			for i, item := range v.Items {
				if item.Exprs == nil {
					if body == nil {
						body = item.Body
					}
					continue
				}
				for _, le := range item.Exprs {
					lv, lerr := Eval(le, env)
					if lerr == nil && lv == subj {
						armName = fmt.Sprintf("arm%d", i)
						body = item.Body
						break
					}
				}
				if armName != "default" {
					break
				}
			}
			el.report.recordBranch("case", v.Pos, armName)
			if body != nil {
				return el.signStmt(inst, body, env)
			}
			return nil
		}
		el.report.recordNonConst("case", v.Pos)
		for _, item := range v.Items {
			if err := el.signStmt(inst, item.Body, env); err != nil {
				return err
			}
		}
		return nil
	case *hdl.For:
		trips, err := el.forTripCount(inst, v, env)
		if err != nil {
			// Loop bounds must be constant for synthesis; report the
			// error lazily (synthesis will reject it too) but keep the
			// signature walk going.
			el.report.recordNonConst("for", v.Pos)
			return el.signStmt(inst, v.Body, env)
		}
		el.report.recordLoop("for", v.Pos, trips)
		return el.signStmt(inst, v.Body, env)
	}
	return nil
}

// forTripCount evaluates the trip count of a constant-bound procedural
// for loop.
func (el *elaborator) forTripCount(inst *Instance, v *hdl.For, env *Env) (int64, error) {
	initA, ok := v.Init.(*hdl.Assign)
	if !ok {
		return 0, fmt.Errorf("for init is not an assignment")
	}
	stepA, ok := v.Step.(*hdl.Assign)
	if !ok {
		return 0, fmt.Errorf("for step is not an assignment")
	}
	ident, ok := initA.LHS.(*hdl.Ident)
	if !ok {
		return 0, fmt.Errorf("for loop variable is not a simple identifier")
	}
	val, err := Eval(initA.RHS, env)
	if err != nil {
		return 0, err
	}
	trips := int64(0)
	iter := env.ChildVar("", ident.Name, val)
	for {
		iter.setVar(val)
		c, err := Eval(v.Cond, iter)
		if err != nil {
			return 0, err
		}
		if c == 0 {
			return trips, nil
		}
		trips++
		if trips > int64(el.opts.maxIter()) {
			return 0, fmt.Errorf("for loop exceeds %d iterations", el.opts.maxIter())
		}
		next, err := Eval(stepA.RHS, iter)
		if err != nil {
			return 0, err
		}
		if next == val {
			return 0, fmt.Errorf("for loop does not advance")
		}
		val = next
	}
}
