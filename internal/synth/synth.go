package synth

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/netlist"
)

// Result bundles the synthesized netlists of one run: the raw netlist
// as lowered and the optimized netlist metrics are measured on.
type Result struct {
	Raw       *netlist.Netlist
	Optimized *netlist.Netlist
	OptStats  netlist.OptimizeResult
	Top       *elab.Instance
	Report    *elab.Report
	// Deduped counts instances removed by the single-instance rule
	// (only non-zero when LowerOptions.DedupInstances was set).
	Deduped int
	// Stamped counts instances whose lowering was replayed from a
	// recorded template instead of being re-lowered expression by
	// expression (see LowerOptions.DisableTemplates).
	Stamped int
}

// Slim returns the cacheable projection of the result: the optimized
// netlist and the lowering counters, without the raw netlist, instance
// tree, or elaboration report (no downstream consumer of a retained or
// persisted result reads them), and with the optimized netlist's
// derived tables and debug names trimmed — they rebuild on demand, and
// for a result that outlives its measurement (a session's flight table,
// a disk-cache record) they are pure live-heap and disk weight. This is
// the shape internal/measure persists through internal/cache, so the
// trim here is also what the binary codec serializes. The receiver's
// optimized netlist is trimmed in place; the receiver itself is not
// otherwise modified.
func (r *Result) Slim() *Result {
	slim := *r
	slim.Raw, slim.Top, slim.Report = nil, nil, nil
	if slim.Optimized != nil {
		slim.Optimized.TrimDerived()
		slim.Optimized.TrimNames()
	}
	return &slim
}

// Synthesize elaborates module top of the design with the given
// parameter overrides and lowers it to an optimized netlist.
func Synthesize(design *hdl.Design, top string, overrides map[string]int64) (*Result, error) {
	return SynthesizeOpts(design, top, overrides, LowerOptions{})
}

// SynthesizeOpts is Synthesize with lowering options.
func SynthesizeOpts(design *hdl.Design, top string, overrides map[string]int64, opts LowerOptions) (*Result, error) {
	inst, report, err := elab.Elaborate(design, top, overrides)
	if err != nil {
		return nil, err
	}
	return SynthesizeInstance(inst, report, opts)
}

// SynthesizeInstance lowers an already-elaborated instance tree to an
// optimized netlist. It lets callers that hold an elaboration (e.g.
// the accounting procedure's memoized parameter search) synthesize
// without paying for a second elaboration of the same design point.
func SynthesizeInstance(inst *elab.Instance, report *elab.Report, opts LowerOptions) (*Result, error) {
	raw, ls, err := LowerOpts(inst, opts)
	if err != nil {
		return nil, err
	}
	var nws *netlist.Workspace
	if opts.Workspace != nil {
		nws = &opts.Workspace.NL
	}
	opt, stats, err := netlist.OptimizeWS(raw, nws)
	if err != nil {
		return nil, err
	}
	if err := netlist.Validate(opt); err != nil {
		return nil, fmt.Errorf("synth: optimized netlist invalid: %w", err)
	}
	return &Result{Raw: raw, Optimized: opt, OptStats: stats, Top: inst, Report: report, Deduped: ls.Deduped, Stamped: ls.Stamped}, nil
}

// LowerOptions tunes the lowering.
type LowerOptions struct {
	// DedupInstances implements the single-instance rule of the
	// µComplexity accounting procedure at the structural level: when a
	// parent instantiates the same (module, parameters) more than
	// once, only the first instance is synthesized; the outputs of the
	// repeats alias to the representative's outputs and their
	// input-side glue logic is dropped.
	DedupInstances bool
	// DisableTemplates turns off template-stamped lowering: by default
	// the first instance of each (module, parameters, port-binding
	// pattern) is recorded while it lowers and every further instance
	// is stamped from the recording with renumbered nets (see
	// template.go). Stamping is bit-identical to direct lowering — the
	// switch exists for the golden tests that prove it and for
	// debugging.
	DisableTemplates bool
	// Workspace, when non-nil, supplies reusable scratch for the whole
	// lowering+optimization run and switches lowering to nameless mode:
	// per-net debug names are never built (ports, RAM macros, and
	// everything Netlist.Hash covers keep their real names). The result
	// is bit-identical to a fresh named lowering followed by TrimNames.
	// The workspace must not be used concurrently.
	Workspace *Workspace
}

// LowerStats reports what the lowering did beyond the netlist itself.
type LowerStats struct {
	// Deduped counts instances removed by the single-instance rule.
	Deduped int
	// Stamped counts instances replayed from a lowering template.
	Stamped int
}

// Lower converts an elaborated instance tree to a flattened raw
// netlist with the top instance's ports as primary I/O.
func Lower(top *elab.Instance) (*netlist.Netlist, error) {
	nl, _, err := LowerOpts(top, LowerOptions{})
	return nl, err
}

// LowerOpts is Lower with options; it also reports how many duplicate
// instances the single-instance rule removed and how many were stamped
// from templates.
func LowerOpts(top *elab.Instance, opts LowerOptions) (*netlist.Netlist, LowerStats, error) {
	s := &synthesizer{
		dedup:  opts.DedupInstances,
		noTmpl: opts.DisableTemplates,
	}
	if ws := opts.Workspace; ws != nil {
		ws.Reset()
		s.ws = ws
		s.b = netlist.NewBuilderWS(&ws.NL, true)
		s.sigs, s.rams, s.tmpl = ws.sigs, ws.rams, ws.tmpl
	} else {
		s.b = netlist.NewBuilder()
		s.sigs = map[sigRef][]netlist.NetID{}
		s.rams = map[ramKey]*ramBuild{}
		s.tmpl = map[string]*template{}
	}
	// Allocate and register top-level ports. Port-bit names are part of
	// the hashed netlist identity, so they are built in nameless mode
	// too (hand-rolled: fmt.Sprintf here was a top allocation site).
	var buf []byte
	for _, p := range top.PortNets() {
		bits := s.netBits(top, p.Name)
		for i, nid := range bits {
			bitName := p.Name
			if p.Width > 1 {
				buf = append(buf[:0], p.Name...)
				buf = append(buf, '[')
				buf = strconv.AppendInt(buf, int64(i)+p.LSB, 10)
				buf = append(buf, ']')
				bitName = s.internName(buf)
			}
			switch p.Dir {
			case hdl.Input:
				s.b.AddInput(bitName, nid)
			case hdl.Output:
				s.b.AddOutput(bitName, nid)
			default:
				return nil, LowerStats{}, fmt.Errorf("synth: inout port %s.%s is not supported", top.Path, p.Name)
			}
		}
	}
	if err := s.instance(top); err != nil {
		return nil, LowerStats{}, err
	}
	if err := s.finalizeRAMs(); err != nil {
		return nil, LowerStats{}, err
	}
	nl, err := s.b.Build()
	return nl, LowerStats{Deduped: s.deduped, Stamped: s.stamped}, err
}

// ramKey identifies one memory by the instance path that owns it.
// Keying by path (instead of by *elab.Instance) lets template stamping
// register RAM sites for instances that were never directly lowered.
type ramKey struct {
	path string
	mem  string
}

// ramBuild accumulates the read/write sites of one memory during
// lowering.
type ramBuild struct {
	width  int
	depth  int64
	writes []ramWrite
	reads  []netlist.RAMReadPort
}

type ramWrite struct {
	clk  netlist.NetID
	en   netlist.NetID
	addr []netlist.NetID
	data []netlist.NetID
}

type synthesizer struct {
	b       *netlist.Builder
	ws      *Workspace
	sigs    map[sigRef][]netlist.NetID
	rams    map[ramKey]*ramBuild
	tmpl    map[string]*template
	dedup   bool
	noTmpl  bool
	deduped int
	stamped int
}

// internName returns buf's contents as a string, served from the
// workspace's intern table when one is attached (the map lookup on a
// []byte key does not allocate; only a never-before-seen name does).
func (s *synthesizer) internName(buf []byte) string {
	if s.ws == nil {
		return string(buf)
	}
	if n, ok := s.ws.names[string(buf)]; ok {
		return n
	}
	n := string(buf)
	s.ws.names[n] = n
	return n
}

// idSlice returns an n-element NetID slice — arena-carved under a
// workspace, freshly allocated otherwise.
func (s *synthesizer) idSlice(n int) []netlist.NetID {
	if s.ws != nil {
		return s.ws.ids(n)
	}
	return make([]netlist.NetID, n)
}

// intSlice and tgtSlice are idSlice's analogues for procedural-LHS
// resolution scratch (bit position lists and target parts).
func (s *synthesizer) intSlice(n int) []int {
	if s.ws != nil {
		return s.ws.ints.Take(n)
	}
	return make([]int, n)
}

func (s *synthesizer) tgtSlice(n int) []procTarget {
	if s.ws != nil {
		return s.ws.tgts.Take(n)
	}
	return make([]procTarget, n)
}

// netBits returns (allocating on first use) the bit nets of a declared
// net, LSB first.
func (s *synthesizer) netBits(inst *elab.Instance, name string) []netlist.NetID {
	k := sigRef{inst: inst, name: name}
	if bits, ok := s.sigs[k]; ok {
		return bits
	}
	n := inst.Nets[name]
	if n == nil {
		panic(fmt.Sprintf("synth: internal: unknown net %s in %s", name, inst.Path))
	}
	bits := s.idSlice(n.Width)
	if s.b.NoNames() {
		// Nameless mode skips debug-name formatting entirely but keeps
		// the named preference bit that steers alias representatives.
		for i := range bits {
			bits[i] = s.b.NewNetPref("", true)
		}
	} else {
		// Hand-rolled name formatting: this runs once per bit of every
		// signal in the design and fmt.Sprintf dominated lowering time.
		buf := make([]byte, 0, len(inst.Path)+len(name)+8)
		buf = append(buf, inst.Path...)
		buf = append(buf, '.')
		buf = append(buf, name...)
		stem := len(buf)
		for i := range bits {
			buf = append(buf[:stem], '[')
			buf = strconv.AppendInt(buf, int64(i)+n.LSB, 10)
			buf = append(buf, ']')
			bits[i] = s.b.NewNet(string(buf))
		}
	}
	s.sigs[k] = bits
	return bits
}

// ramFor returns (allocating on first use) the RAM build record of a
// memory of the instance at path.
func (s *synthesizer) ramFor(path string, mem *elab.Mem) *ramBuild {
	return s.ramAt(path, mem.Name, mem.Width, mem.Depth)
}

func (s *synthesizer) ramAt(path, name string, width int, depth int64) *ramBuild {
	k := ramKey{path: path, mem: name}
	rb, ok := s.rams[k]
	if !ok {
		rb = &ramBuild{width: width, depth: depth}
		s.rams[k] = rb
	}
	return rb
}

// instance lowers one elaborated instance and recurses into children.
func (s *synthesizer) instance(inst *elab.Instance) error {
	// Continuous assignments.
	for _, ea := range inst.Assigns {
		if err := s.contAssign(inst, ea); err != nil {
			return err
		}
	}
	// Always blocks.
	for _, ab := range inst.Alwayses {
		if err := s.alwaysBlock(inst, ab); err != nil {
			return err
		}
	}
	// Children: bind ports, recurse. Under the single-instance rule,
	// repeated (module, parameters) children reuse the representative's
	// synthesized logic. Otherwise the first child of each (signature,
	// port-binding pattern) is recorded as it lowers and later ones are
	// stamped from the recording (see template.go).
	var reps map[string]*elab.Child
	if s.dedup {
		reps = map[string]*elab.Child{}
	}
	for _, child := range inst.Children {
		var sig string
		if s.dedup || !s.noTmpl {
			sig = childSignature(child.Inst)
		}
		if s.dedup {
			if rep, seen := reps[sig]; seen {
				s.deduped++
				if err := s.bindDuplicate(inst, child, rep); err != nil {
					return err
				}
				continue
			}
			reps[sig] = child
		}
		if err := s.bindChild(inst, child); err != nil {
			return err
		}
		if !s.noTmpl {
			key := sig + "\x00" + s.portPattern(child.Inst)
			if t, seen := s.tmpl[key]; seen {
				if t != nil {
					if err := s.stampChild(child, t); err != nil {
						return err
					}
					continue
				}
				// Known-unstampable shape: lower directly below.
			} else {
				f := s.beginRecord(child.Inst)
				err := s.instance(child.Inst)
				s.endRecord(f, key, err == nil)
				if err != nil {
					return err
				}
				continue
			}
		}
		if err := s.instance(child.Inst); err != nil {
			return err
		}
	}
	return nil
}

// childSignature keys instances by module and resolved parameters.
func childSignature(i *elab.Instance) string {
	return ParamSignature(i.Module.Name, i.Params)
}

// ParamSignature is the structural signature of a module under one
// resolved parameter assignment — the key the single-instance rule
// uses to decide that two instances are the same design point. The
// accounting procedure reuses it to memoize elaborations across its
// parameter-minimization search, and internal/elab's session cache
// keys subtree memoization by it; the canonical implementation lives
// there as elab.ParamSignature.
func ParamSignature(module string, params map[string]int64) string {
	return elab.ParamSignature(module, params)
}

// bindDuplicate wires a repeated instance's output bindings to the
// representative instance's ports; its inputs (and their glue logic)
// are dropped along with the instance body.
func (s *synthesizer) bindDuplicate(inst *elab.Instance, child, rep *elab.Child) error {
	for _, b := range child.Ports {
		if b.Value == nil {
			continue
		}
		for _, port := range child.Inst.Module.Ports {
			if port.Name != b.Name || port.Dir != hdl.Output {
				continue
			}
			repBits := s.netBits(rep.Inst, port.Name)
			slots, err := s.lvalueSlots(inst, child.Env, b.Value)
			if err != nil {
				return fmt.Errorf("synth: %s: deduplicated port %s.%s: %w", b.Pos, child.Name, port.Name, err)
			}
			for i, slot := range slots {
				v := s.b.Const0()
				if i < len(repBits) {
					v = repBits[i]
				}
				if err := s.b.Alias(slot, v); err != nil {
					return fmt.Errorf("synth: %s: deduplicated port %s.%s: %w", b.Pos, child.Name, port.Name, err)
				}
			}
		}
	}
	return nil
}

// contAssign lowers "assign lhs = rhs".
func (s *synthesizer) contAssign(inst *elab.Instance, ea *elab.ElabAssign) error {
	slots, err := s.lvalueSlots(inst, ea.Env, ea.Item.LHS)
	if err != nil {
		return fmt.Errorf("synth: %s: %w", ea.Item.Pos, err)
	}
	rhs, err := s.expr(inst, ea.Env, nil, ea.Item.RHS, len(slots))
	if err != nil {
		return fmt.Errorf("synth: %s: %w", ea.Item.Pos, err)
	}
	for i, slot := range slots {
		v := s.b.Const0()
		if i < len(rhs) {
			v = rhs[i]
		}
		if err := s.b.Alias(slot, v); err != nil {
			return fmt.Errorf("synth: %s: conflicting drivers: %w", ea.Item.Pos, err)
		}
	}
	return nil
}

// bindChild connects a child instance's ports.
func (s *synthesizer) bindChild(inst *elab.Instance, child *elab.Child) error {
	bound := map[string]hdl.Binding{}
	for _, b := range child.Ports {
		bound[b.Name] = b
	}
	for _, port := range child.Inst.Module.Ports {
		childBits := s.netBits(child.Inst, port.Name)
		b, ok := bound[port.Name]
		if !ok || b.Value == nil {
			if port.Dir == hdl.Input {
				// Unconnected input: tie to 0.
				for _, cb := range childBits {
					if err := s.b.Alias(cb, s.b.Const0()); err != nil {
						return fmt.Errorf("synth: %s: tie-off of %s.%s: %w", child.Pos, child.Name, port.Name, err)
					}
				}
			}
			continue // unconnected output floats
		}
		switch port.Dir {
		case hdl.Input:
			vals, err := s.expr(inst, child.Env, nil, b.Value, len(childBits))
			if err != nil {
				return fmt.Errorf("synth: %s: port %s.%s: %w", b.Pos, child.Name, port.Name, err)
			}
			for i, cb := range childBits {
				v := s.b.Const0()
				if i < len(vals) {
					v = vals[i]
				}
				if err := s.b.Alias(cb, v); err != nil {
					return fmt.Errorf("synth: %s: port %s.%s: %w", b.Pos, child.Name, port.Name, err)
				}
			}
		case hdl.Output:
			slots, err := s.lvalueSlots(inst, child.Env, b.Value)
			if err != nil {
				return fmt.Errorf("synth: %s: output port %s.%s must connect to a simple signal: %w", b.Pos, child.Name, port.Name, err)
			}
			for i, slot := range slots {
				v := s.b.Const0()
				if i < len(childBits) {
					v = childBits[i]
				}
				if err := s.b.Alias(slot, v); err != nil {
					return fmt.Errorf("synth: %s: port %s.%s: %w", b.Pos, child.Name, port.Name, err)
				}
			}
		default:
			return fmt.Errorf("synth: %s: inout port %s.%s is not supported", b.Pos, child.Name, port.Name)
		}
	}
	return nil
}

// lvalueSlots resolves an assignable expression to its target bit
// nets, LSB first. Only static targets are allowed here; variable-index
// bit writes are handled separately inside always blocks.
func (s *synthesizer) lvalueSlots(inst *elab.Instance, env *elab.Env, e hdl.Expr) ([]netlist.NetID, error) {
	switch v := e.(type) {
	case *hdl.Ident:
		n, ok := inst.ResolveNet(v.Name, env)
		if !ok {
			return nil, fmt.Errorf("assignment to undeclared signal %q", v.Name)
		}
		return s.netBits(inst, n.Name), nil
	case *hdl.Index:
		base, ok := v.Base.(*hdl.Ident)
		if !ok {
			return nil, fmt.Errorf("unsupported nested index in lvalue")
		}
		n, ok := inst.ResolveNet(base.Name, env)
		if !ok {
			return nil, fmt.Errorf("assignment to undeclared signal %q", base.Name)
		}
		idx, err := elab.Eval(v.Idx, env)
		if err != nil {
			return nil, fmt.Errorf("bit index of %q must be constant here: %v", base.Name, err)
		}
		bit := idx - n.LSB
		if bit < 0 || bit >= int64(n.Width) {
			return nil, fmt.Errorf("bit index %d out of range for %q", idx, base.Name)
		}
		return s.netBits(inst, n.Name)[bit : bit+1], nil
	case *hdl.PartSelect:
		base, ok := v.Base.(*hdl.Ident)
		if !ok {
			return nil, fmt.Errorf("unsupported nested part select in lvalue")
		}
		n, ok := inst.ResolveNet(base.Name, env)
		if !ok {
			return nil, fmt.Errorf("assignment to undeclared signal %q", base.Name)
		}
		msb, err := elab.Eval(v.MSB, env)
		if err != nil {
			return nil, err
		}
		lsb, err := elab.Eval(v.LSB, env)
		if err != nil {
			return nil, err
		}
		lo, hi := lsb-n.LSB, msb-n.LSB
		if lo > hi || lo < 0 || hi >= int64(n.Width) {
			return nil, fmt.Errorf("part select [%d:%d] out of range for %q", msb, lsb, base.Name)
		}
		return s.netBits(inst, n.Name)[lo : hi+1], nil
	case *hdl.Concat:
		// Verilog concat is MSB-first: the last part is the LSBs.
		var slots []netlist.NetID
		for i := len(v.Parts) - 1; i >= 0; i-- {
			sub, err := s.lvalueSlots(inst, env, v.Parts[i])
			if err != nil {
				return nil, err
			}
			slots = append(slots, sub...)
		}
		return slots, nil
	}
	return nil, fmt.Errorf("expression %s is not assignable", hdl.FormatExpr(e))
}

// finalizeRAMs converts accumulated memory read/write sites into RAM
// macros.
func (s *synthesizer) finalizeRAMs() error {
	// The accumulation tables are maps; emit macros in sorted
	// (instance path, memory name) order so the netlist's RAM order —
	// and with it every order-sensitive float accumulation downstream
	// (areas, leakage, dynamic power) — is identical on every run.
	var keys []ramKey
	if s.ws != nil {
		keys = s.ws.ramKeys[:0]
	} else {
		keys = make([]ramKey, 0, len(s.rams))
	}
	for k := range s.rams {
		keys = append(keys, k)
	}
	if s.ws != nil {
		s.ws.ramKeys = keys
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].mem < keys[j].mem
	})
	for _, k := range keys {
		rb := s.rams[k]
		if len(rb.writes) == 0 && len(rb.reads) == 0 {
			continue
		}
		r := &netlist.RAM{
			Name:  k.path + "." + k.mem,
			Width: rb.width,
			Depth: int(rb.depth),
			Clk:   netlist.Nil,
		}
		// One write port per write site, in program order; all
		// ports of one memory must share a clock.
		for _, w := range rb.writes {
			if r.Clk == netlist.Nil {
				r.Clk = w.clk
			} else if r.Clk != w.clk {
				return fmt.Errorf("synth: memory %s.%s written from two clock domains", k.path, k.mem)
			}
			r.WritePorts = append(r.WritePorts, netlist.RAMWritePort{En: w.en, Addr: w.addr, Data: w.data})
		}
		r.ReadPorts = rb.reads
		s.b.AddRAM(r)
	}
	return nil
}

// constBits returns the bit nets of a constant value at the given
// width (LSB first).
func (s *synthesizer) constBits(v int64, width int) []netlist.NetID {
	out := s.idSlice(width)
	for i := 0; i < width; i++ {
		out[i] = s.b.ConstBit((uint64(v)>>uint(i))&1 == 1)
	}
	return out
}

// addrWidth returns the address width of a memory of the given depth.
func addrWidth(depth int64) int {
	if depth <= 1 {
		return 1
	}
	return bits.Len64(uint64(depth - 1))
}

// pickClock chooses the clock from an edge-sensitive list: the first
// item whose name looks like a clock, else the first edge item.
func pickClock(sens []hdl.SensItem) (clock string, others []string) {
	cands := make([]string, 0, len(sens))
	for _, it := range sens {
		if it.Edge == hdl.EdgePos || it.Edge == hdl.EdgeNeg {
			cands = append(cands, it.Signal)
		}
	}
	if len(cands) == 0 {
		return "", nil
	}
	pick := 0
	for i, c := range cands {
		lower := strings.ToLower(c)
		if lower == "clk" || lower == "clock" || strings.HasSuffix(lower, "clk") || strings.HasSuffix(lower, "clock") {
			pick = i
			break
		}
	}
	clock = cands[pick]
	for i, c := range cands {
		if i != pick {
			others = append(others, c)
		}
	}
	return clock, others
}
