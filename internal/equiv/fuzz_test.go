package equiv

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hdl"
	"repro/internal/sim"
	"repro/internal/synth"
)

// moduleGen generates random synthesizable µHDL modules: random-width
// inputs, combinational assignments over a random expression grammar,
// and a clocked always block with nested if/case statements. Every
// generated module is checked for RTL↔gate equivalence over random
// vectors — a differential test of the parser, elaborator,
// synthesizer, optimizer, and both simulators at once.
type moduleGen struct {
	rng    *rand.Rand
	inputs []genSig
	regs   []genSig
	wires  []genSig
}

type genSig struct {
	name  string
	width int
}

func (g *moduleGen) pickSignal() genSig {
	pool := append(append([]genSig{}, g.inputs...), g.regs...)
	pool = append(pool, g.wires...)
	return pool[g.rng.Intn(len(pool))]
}

// expr builds a random expression of bounded depth and returns its text.
func (g *moduleGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%d'd%d", 4, g.rng.Intn(16))
		case 1:
			s := g.pickSignal()
			if s.width > 1 && g.rng.Intn(2) == 0 {
				bit := g.rng.Intn(s.width)
				return fmt.Sprintf("%s[%d]", s.name, bit)
			}
			return s.name
		case 2:
			s := g.pickSignal()
			if s.width >= 2 {
				lo := g.rng.Intn(s.width - 1)
				hi := lo + g.rng.Intn(s.width-lo)
				return fmt.Sprintf("%s[%d:%d]", s.name, hi, lo)
			}
			return s.name
		default:
			return g.pickSignal().name
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s & %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s | %s)", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s == %s)", g.expr(depth-1), g.expr(depth-1))
	case 7:
		return fmt.Sprintf("(%s < %s)", g.expr(depth-1), g.expr(depth-1))
	case 8:
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 9:
		return fmt.Sprintf("(%s << %d)", g.expr(depth-1), g.rng.Intn(4))
	case 10:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	default:
		return fmt.Sprintf("{%s, %s}", g.expr(depth-1), g.expr(depth-1))
	}
}

// stmt builds a random procedural statement assigning (nonblocking) to
// the given reg.
func (g *moduleGen) stmt(target genSig, depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return fmt.Sprintf("%s <= %s;", target.name, g.expr(2))
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("if (%s) begin %s end else begin %s end",
			g.expr(1), g.stmt(target, depth-1), g.stmt(target, depth-1))
	case 1:
		return fmt.Sprintf("if (%s) begin %s end",
			g.expr(1), g.stmt(target, depth-1))
	default:
		sel := g.pickSignal()
		for tries := 0; sel.width < 2 && tries < 10; tries++ {
			sel = g.pickSignal()
		}
		if sel.width < 2 {
			return fmt.Sprintf("%s <= %s;", target.name, g.expr(2))
		}
		return fmt.Sprintf(`case (%s[1:0])
      2'd0: %s
      2'd1: %s
      default: %s
    endcase`, sel.name,
			g.stmt(target, depth-1), g.stmt(target, depth-1), g.stmt(target, depth-1))
	}
}

// generate emits one random module.
func generateModule(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	g := &moduleGen{rng: rng}
	nIn := 2 + rng.Intn(3)
	nWire := 1 + rng.Intn(3)
	nReg := 1 + rng.Intn(2)

	var b strings.Builder
	b.WriteString("module fuzz (\n  input clk,\n")
	for i := 0; i < nIn; i++ {
		w := 1 + rng.Intn(8)
		g.inputs = append(g.inputs, genSig{fmt.Sprintf("in%d", i), w})
		fmt.Fprintf(&b, "  input [%d:0] in%d,\n", w-1, i)
	}
	for i := 0; i < nWire; i++ {
		w := 1 + rng.Intn(8)
		g.wires = append(g.wires, genSig{fmt.Sprintf("w%d", i), w})
		fmt.Fprintf(&b, "  output [%d:0] w%d,\n", w-1, i)
	}
	for i := 0; i < nReg; i++ {
		w := 1 + rng.Intn(8)
		g.regs = append(g.regs, genSig{fmt.Sprintf("r%d", i), w})
		fmt.Fprintf(&b, "  output reg [%d:0] r%d", w-1, i)
		if i < nReg-1 {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
	}
	b.WriteString(");\n")

	// Combinational outputs reference inputs and registers (wires are
	// declared before their drivers exist during generation, so only
	// prior wires appear in later expressions).
	declared := g.wires
	g.wires = nil
	for _, w := range declared {
		fmt.Fprintf(&b, "  assign %s = %s;\n", w.name, g.expr(3))
		g.wires = append(g.wires, w)
	}
	// One clocked block per register.
	for _, r := range g.regs {
		fmt.Fprintf(&b, "  always @(posedge clk) begin\n    %s\n  end\n", g.stmt(r, 2))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func TestFuzzEquivalence(t *testing.T) {
	// 60 random modules × 20 cycles of random vectors each. Any
	// divergence between the RTL interpreter and the synthesized gates
	// fails with the generated source for reproduction.
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := generateModule(seed)
		d, err := hdl.ParseDesign(map[string]string{"fuzz.v": src})
		if err != nil {
			t.Fatalf("seed %d: generated module failed to parse: %v\n%s", seed, err, src)
		}
		if _, err := CheckEquivalence(d, "fuzz", nil, 20, seed*7+1); err != nil {
			t.Errorf("seed %d: %v\n--- generated source ---\n%s", seed, err, src)
		}
	}
}

// FuzzEquivalence is the Go-native fuzzing entry point over the same
// generator: the fuzzer explores the seed space (every seed names one
// deterministic random module) and each input must synthesize to gates
// that match the RTL interpreter cycle for cycle. `go test
// -fuzz=FuzzEquivalence ./internal/equiv` searches open-endedly; CI
// runs a short smoke.
func FuzzEquivalence(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := generateModule(seed)
		d, err := hdl.ParseDesign(map[string]string{"fuzz.v": src})
		if err != nil {
			t.Fatalf("seed %d: generated module failed to parse: %v\n%s", seed, err, src)
		}
		if _, err := CheckEquivalence(d, "fuzz", nil, 20, seed*7+1); err != nil {
			t.Errorf("seed %d: %v\n--- generated source ---\n%s", seed, err, src)
		}
	})
}

// TestFuzzOptimizePreservesBehaviour drives the raw (pre-optimization)
// and optimized netlists of random modules with identical vectors —
// the differential test of internal/netlist's constant folding, CSE,
// and dead-logic removal.
func TestFuzzOptimizePreservesBehaviour(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := int64(100); seed < int64(100+n); seed++ {
		src := generateModule(seed)
		d, err := hdl.ParseDesign(map[string]string{"fuzz.v": src})
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		res, err := synth.Synthesize(d, "fuzz", nil)
		if err != nil {
			t.Fatalf("seed %d: synthesize: %v\n%s", seed, err, src)
		}
		rawSim, err := sim.NewGateSim(res.Raw)
		if err != nil {
			t.Fatalf("seed %d: raw sim: %v", seed, err)
		}
		optSim, err := sim.NewGateSim(res.Optimized)
		if err != nil {
			t.Fatalf("seed %d: optimized sim: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		inputs := rawSim.InputNames()
		outputs := rawSim.OutputNames()
		for cycle := 0; cycle < 15; cycle++ {
			for _, in := range inputs {
				if in == "clk" {
					continue
				}
				v := rng.Uint64()
				rawSim.SetInput(in, v)
				optSim.SetInput(in, v)
			}
			if err := rawSim.Step(); err != nil {
				t.Fatalf("seed %d: raw step: %v", seed, err)
			}
			if err := optSim.Step(); err != nil {
				t.Fatalf("seed %d: optimized step: %v", seed, err)
			}
			for _, o := range outputs {
				rv, err1 := rawSim.Output(o)
				ov, err2 := optSim.Output(o)
				if err1 != nil || err2 != nil {
					t.Fatalf("seed %d: output %s: %v %v", seed, o, err1, err2)
				}
				if rv != ov {
					t.Fatalf("seed %d cycle %d: optimizer changed %s: raw=%#x optimized=%#x\n%s",
						seed, cycle, o, rv, ov, src)
				}
			}
		}
	}
}
