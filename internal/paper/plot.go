package paper

import (
	"fmt"
	"math"
	"strings"
)

// asciiPlot renders series of (x, y) points on a character grid with
// axes and labels — enough to eyeball the shapes of Figures 2–6.
type asciiPlot struct {
	width, height  int
	xmin, xmax     float64
	ymin, ymax     float64
	xlabel, ylabel string
	title          string
	grid           [][]byte
}

func newASCIIPlot(title, xlabel, ylabel string, xmin, xmax, ymin, ymax float64) *asciiPlot {
	const w, h = 72, 24
	p := &asciiPlot{
		width: w, height: h,
		xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax,
		xlabel: xlabel, ylabel: ylabel, title: title,
	}
	p.grid = make([][]byte, h)
	for i := range p.grid {
		p.grid[i] = []byte(strings.Repeat(" ", w))
	}
	return p
}

func (p *asciiPlot) cell(x, y float64) (cx, cy int, ok bool) {
	if p.xmax == p.xmin || p.ymax == p.ymin {
		return 0, 0, false
	}
	fx := (x - p.xmin) / (p.xmax - p.xmin)
	fy := (y - p.ymin) / (p.ymax - p.ymin)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 || math.IsNaN(fx) || math.IsNaN(fy) {
		return 0, 0, false
	}
	cx = int(fx * float64(p.width-1))
	cy = p.height - 1 - int(fy*float64(p.height-1))
	return cx, cy, true
}

// point plots a single marker.
func (p *asciiPlot) point(x, y float64, marker byte) {
	if cx, cy, ok := p.cell(x, y); ok {
		p.grid[cy][cx] = marker
	}
}

// curve plots a function sampled across the x range.
func (p *asciiPlot) curve(f func(x float64) float64, marker byte) {
	for i := 0; i < p.width*2; i++ {
		x := p.xmin + (p.xmax-p.xmin)*float64(i)/float64(p.width*2-1)
		p.point(x, f(x), marker)
	}
}

// vline draws a vertical annotation line.
func (p *asciiPlot) vline(x float64, marker byte) {
	for cy := 0; cy < p.height; cy++ {
		if cx, _, ok := p.cell(x, p.ymin); ok {
			if p.grid[cy][cx] == ' ' {
				p.grid[cy][cx] = marker
			}
		}
	}
}

func (p *asciiPlot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.title)
	fmt.Fprintf(&b, "%s\n", p.ylabel)
	for i, row := range p.grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.2f ", p.ymax)
		case p.height - 1:
			label = fmt.Sprintf("%7.2f ", p.ymin)
		case p.height / 2:
			label = fmt.Sprintf("%7.2f ", (p.ymin+p.ymax)/2)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", p.width))
	fmt.Fprintf(&b, "        %-10.2f%*s\n", p.xmin, p.width-8, fmt.Sprintf("%.2f", p.xmax))
	fmt.Fprintf(&b, "        %s\n", p.xlabel)
	return b.String()
}

// table renders rows of columns with right-aligned numeric formatting.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cols ...string) { t.rows = append(t.rows, cols) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
