package measure

import (
	"fmt"
	"maps"

	"repro/internal/cache"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// ComponentResult carries a component measurement along with the
// accounting details that produced it. internal/accounting re-exports
// it as accounting.Result.
type ComponentResult struct {
	Metrics *Metrics
	// UniqueModules lists the distinct modules in the component's
	// hierarchy (sorted).
	UniqueModules []string
	// MinimizedParams holds the scaled top-level parameter values
	// (accounting mode only; nil otherwise).
	MinimizedParams map[string]int64
	// InstanceCount is the elaborated instance count of the component
	// at the parameters actually measured.
	InstanceCount int
	// DedupedInstances is how many duplicate instances the
	// single-instance rule removed (accounting mode only).
	DedupedInstances int
	// Synth is the synthesis of the component at the measured
	// parameter point. Downstream analyses (timing, power sweeps) can
	// reuse it instead of re-running synthesis.
	Synth *synth.Result
	// ElabCacheHits and ElabCacheMisses count memoized versus fresh
	// point verdicts during the parameter-minimization search
	// (accounting mode only).
	ElabCacheHits, ElabCacheMisses int
	// ElabStats counts the session elaboration cache's subtree-level
	// activity — fragments and trees reused versus elaborated fresh,
	// and how many instances the reuse skipped (accounting mode only;
	// when the measurement ran inside a Session the cache is shared
	// across the whole batch, so per-component deltas are not
	// attributable and this is left zero — read Session.ElabStats).
	ElabStats elab.CacheStats
}

// MeasureComponent measures one component (a module plus everything it
// instantiates).
//
// With useAccounting (Section 2.2 of the paper), the component is
// measured at its minimized parameterization and every repeated
// (module, parameters) subtree is synthesized once — duplicate
// instances reuse the representative's logic structurally during
// lowering. Without it, the component is measured as instantiated:
// full default parameters, every instance counted.
//
// The software metrics (LoC, Stmts) sum each unique module's source
// once in both modes — the paper notes in Section 5.3 that the
// accounting procedure does not affect them.
func MeasureComponent(design *hdl.Design, top string, useAccounting bool, opts Options) (*ComponentResult, error) {
	if opts.Cache == nil {
		return measureComponent(design, top, useAccounting, opts)
	}
	key, err := componentKey(design, top, useAccounting, opts)
	if err != nil {
		return nil, err
	}
	rec, _, err := cache.DoEq(opts.Cache, key, recordCodec, func() (*componentRecord, error) {
		res, err := measureComponent(design, top, useAccounting, opts)
		if err != nil {
			return nil, err
		}
		return recordOf(res), nil
	}, compareRecords)
	if err != nil {
		return nil, err
	}
	return rec.toResult(), nil
}

// componentKey derives the on-disk cache key of one component
// measurement. The key hashes the component's transitive subtree
// sources (hdl.Design.SubtreeHash), not the whole design's
// fingerprint, so an edit elsewhere in the design — or measuring the
// same component from a differently-composed design — leaves the
// entry warm. The Session uses the same key, so warm entries are
// shared between the batch and per-component paths.
func componentKey(design *hdl.Design, top string, useAccounting bool, opts Options) (string, error) {
	st, err := design.SubtreeHash(top)
	if err != nil {
		return "", err
	}
	eff := opts
	eff.DedupInstances = useAccounting
	return cache.KindKey("component", append([]string{
		st, top, fmt.Sprintf("acct=%t", useAccounting),
	}, eff.CacheKeyParts()...)...), nil
}

// componentRecord is the cacheable projection of a ComponentResult:
// everything downstream consumers read (metrics, accounting details,
// and the optimized netlist that timing analysis reuses), without the
// live elaboration trees a fresh synthesis also carries.
type componentRecord struct {
	Metrics          *Metrics
	UniqueModules    []string
	MinimizedParams  map[string]int64
	InstanceCount    int
	DedupedInstances int
	// ElabCacheHits/Misses and ElabStats describe the run that
	// populated the entry (they depend on probe scheduling, not on the
	// result).
	ElabCacheHits, ElabCacheMisses int
	ElabStats                      elab.CacheStats
	Optimized                      *netlist.Netlist
}

func recordOf(res *ComponentResult) *componentRecord {
	return &componentRecord{
		Metrics:          res.Metrics,
		UniqueModules:    res.UniqueModules,
		MinimizedParams:  res.MinimizedParams,
		InstanceCount:    res.InstanceCount,
		DedupedInstances: res.DedupedInstances,
		ElabCacheHits:    res.ElabCacheHits,
		ElabCacheMisses:  res.ElabCacheMisses,
		ElabStats:        res.ElabStats,
		Optimized:        res.Synth.Optimized,
	}
}

func (r *componentRecord) toResult() *ComponentResult {
	return &ComponentResult{
		Metrics:          r.Metrics,
		UniqueModules:    r.UniqueModules,
		MinimizedParams:  r.MinimizedParams,
		InstanceCount:    r.InstanceCount,
		DedupedInstances: r.DedupedInstances,
		ElabCacheHits:    r.ElabCacheHits,
		ElabCacheMisses:  r.ElabCacheMisses,
		ElabStats:        r.ElabStats,
		Synth:            &synth.Result{Optimized: r.Optimized},
	}
}

// compareRecords is the cache's verify-mode comparator: every
// paper-facing value must match bit-for-bit; the elaboration-memo
// counters are scheduling-dependent and excluded.
func compareRecords(cached, fresh *componentRecord) string {
	switch {
	case *cached.Metrics != *fresh.Metrics:
		return fmt.Sprintf("metrics differ: cached %+v, fresh %+v", *cached.Metrics, *fresh.Metrics)
	case !maps.Equal(cached.MinimizedParams, fresh.MinimizedParams):
		return fmt.Sprintf("minimized parameters differ: cached %v, fresh %v", cached.MinimizedParams, fresh.MinimizedParams)
	case cached.InstanceCount != fresh.InstanceCount:
		return fmt.Sprintf("instance count differs: cached %d, fresh %d", cached.InstanceCount, fresh.InstanceCount)
	case cached.DedupedInstances != fresh.DedupedInstances:
		return fmt.Sprintf("deduped instances differ: cached %d, fresh %d", cached.DedupedInstances, fresh.DedupedInstances)
	case cached.Optimized.Hash() != fresh.Optimized.Hash():
		return "optimized netlist structure differs"
	}
	return ""
}

func measureComponent(design *hdl.Design, top string, useAccounting bool, opts Options) (*ComponentResult, error) {
	modules, err := design.TransitiveModules(top)
	if err != nil {
		return nil, err
	}
	res := &ComponentResult{UniqueModules: modules}

	var inst *elab.Instance
	var report *elab.Report
	if useAccounting {
		params, memo, err := minimizeParams(design, top, opts.Concurrency, nil)
		if err != nil {
			return nil, err
		}
		res.MinimizedParams = params
		// The search probed candidates in report-only mode; the full
		// instance tree is materialized only here, for the point the
		// search ended on, reusing every subtree the minimized
		// parameters left unchanged from the reference elaboration.
		inst, report, err = elab.ElaborateOpts(design, top, params, elab.Options{Cache: memo.sess})
		if err != nil {
			return nil, err
		}
		res.ElabCacheHits, res.ElabCacheMisses = memo.counters()
		res.ElabStats = memo.sess.Stats()
		if opts.ElabStats != nil {
			opts.ElabStats.Add(res.ElabStats, res.ElabCacheHits, res.ElabCacheMisses)
		}
	} else {
		inst, report, err = elab.Elaborate(design, top, nil)
		if err != nil {
			return nil, err
		}
	}
	res.InstanceCount = inst.CountInstances()

	mopts := opts
	mopts.DedupInstances = useAccounting
	synres, err := synth.SynthesizeInstance(inst, report, synth.LowerOptions{
		DedupInstances:   useAccounting,
		DisableTemplates: opts.DisableTemplates,
	})
	if err != nil {
		return nil, err
	}
	res.Synth = synres
	res.DedupedInstances = synres.Deduped
	m := SynthMetricsOnly(synres, mopts)

	// Software metrics: each unique module's source once.
	for _, name := range modules {
		src, err := SourceOnly(design, name)
		if err != nil {
			return nil, err
		}
		m.Stmts += src.Stmts
		m.LoC += src.LoC
	}
	res.Metrics = m
	return res, nil
}
