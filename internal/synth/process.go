package synth

import (
	"fmt"
	"sort"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/netlist"
)

// procState is the symbolic-execution state of one always block.
//
// Branches are handled by clone-and-merge: each arm executes on a copy
// of the state and the results are recombined with muxes controlled by
// the branch condition. Merging the per-bit "assigned" conditions with
// muxes (rather than ORs of path products) lets complete if/else and
// case/default structures provably assign on every path — mux(c,1,1)
// folds to 1 — which is what separates pure combinational logic from
// inferred latches.
//
// The path parameter threaded through execStmt is used only for memory
// writes, which are collected linearly rather than merged.
type procState struct {
	inst    *elab.Instance
	clocked bool

	vals   map[string][]netlist.NetID // blocking-assigned current values
	condB  map[string][]netlist.NetID // per-bit "assigned" condition
	nb     map[string][]netlist.NetID // nonblocking pending values
	condNB map[string][]netlist.NetID

	intvars map[string]int64
	// memc collects memory write sites in program order; it is shared
	// by every clone of the state (each site carries its own enable,
	// so branch structure is already encoded in the conditions).
	memc *memCollector
}

type memCollector struct {
	sites []memWriteSite
}

type memWriteSite struct {
	mem   *elab.Mem
	write ramWrite
}

// readVals returns the blocking-updated view of a signal if it has
// been written in this block.
func (st *procState) readVals(name string) ([]netlist.NetID, bool) {
	bits, ok := st.vals[name]
	return bits, ok
}

// clone copies the branch-sensitive parts of the state. Memory writes
// and memOf stay shared (they carry their own enable conditions).
func (st *procState) clone(s *synthesizer) *procState {
	c := &procState{
		inst:    st.inst,
		clocked: st.clocked,
		vals:    s.cloneBitsMap(st.vals),
		condB:   s.cloneBitsMap(st.condB),
		nb:      s.cloneBitsMap(st.nb),
		condNB:  s.cloneBitsMap(st.condNB),
		intvars: map[string]int64{},
		memc:    st.memc, // shared: sites carry their own enables
	}
	for k, v := range st.intvars {
		c.intvars[k] = v
	}
	return c
}

// cloneBitsMap copies a signal→bits table; the value slices come from
// the workspace arena when one is attached (branch clones are the hot
// consumer — every if/case arm in a clocked process makes four).
func (s *synthesizer) cloneBitsMap(m map[string][]netlist.NetID) map[string][]netlist.NetID {
	out := make(map[string][]netlist.NetID, len(m))
	for k, v := range m {
		c := s.idSlice(len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// mergeStates recombines two branch outcomes into st:
// result = cond ? thenSt : elseSt, per signal bit.
func (s *synthesizer) mergeStates(st, thenSt, elseSt *procState, cond netlist.NetID) error {
	merge := func(valsT, condT, valsE, condE map[string][]netlist.NetID, vals, conds map[string][]netlist.NetID) {
		for _, name := range unionKeys(valsT, valsE) {
			declared := s.netBits(st.inst, name)
			bT, okT := valsT[name]
			bE, okE := valsE[name]
			cT, cE := condT[name], condE[name]
			if !okT {
				bT = declared
				cT = s.idSlice(len(declared))
				for i := range cT {
					cT[i] = s.b.Const0()
				}
			}
			if !okE {
				bE = declared
				cE = s.idSlice(len(declared))
				for i := range cE {
					cE[i] = s.b.Const0()
				}
			}
			mergedV := s.idSlice(len(declared))
			mergedC := s.idSlice(len(declared))
			for i := range declared {
				mergedV[i] = s.b.Mux(cond, bE[i], bT[i])
				mergedC[i] = s.b.Mux(cond, cE[i], cT[i])
			}
			vals[name] = mergedV
			conds[name] = mergedC
		}
	}
	merge(thenSt.vals, thenSt.condB, elseSt.vals, elseSt.condB, st.vals, st.condB)
	merge(thenSt.nb, thenSt.condNB, elseSt.nb, elseSt.condNB, st.nb, st.condNB)

	// Integer loop variables must agree across branches — they are
	// elaboration-time values and cannot be muxed.
	for k, vT := range thenSt.intvars {
		if vE, ok := elseSt.intvars[k]; ok && vE != vT {
			return fmt.Errorf("integer %q takes different values (%d vs %d) on the branches of a conditional", k, vT, vE)
		}
		st.intvars[k] = vT
	}
	for k, vE := range elseSt.intvars {
		if _, ok := thenSt.intvars[k]; !ok {
			st.intvars[k] = vE
		}
	}
	return nil
}

func unionKeys(a, b map[string][]netlist.NetID) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// alwaysBlock lowers one always block.
func (s *synthesizer) alwaysBlock(inst *elab.Instance, ab *elab.ElabAlways) error {
	clocked := false
	for _, it := range ab.Item.Sens {
		if it.Edge == hdl.EdgePos || it.Edge == hdl.EdgeNeg {
			clocked = true
		}
	}
	st := &procState{
		inst:    inst,
		clocked: clocked,
		vals:    map[string][]netlist.NetID{},
		condB:   map[string][]netlist.NetID{},
		nb:      map[string][]netlist.NetID{},
		condNB:  map[string][]netlist.NetID{},
		intvars: map[string]int64{},
		memc:    &memCollector{},
	}
	if err := s.execStmt(inst, ab.Env, st, ab.Item.Body, s.b.Const1()); err != nil {
		return fmt.Errorf("synth: %s: %w", ab.Item.Pos, err)
	}
	if clocked {
		return s.finishClocked(inst, ab, st)
	}
	return s.finishComb(inst, ab, st)
}

func (s *synthesizer) finishClocked(inst *elab.Instance, ab *elab.ElabAlways, st *procState) error {
	clockName, _ := pickClock(ab.Item.Sens)
	clkNet, ok := inst.ResolveNet(clockName, ab.Env)
	if !ok {
		return fmt.Errorf("synth: %s: clock %q is not a declared signal", ab.Item.Pos, clockName)
	}
	if clkNet.Width != 1 {
		return fmt.Errorf("synth: %s: clock %q must be 1 bit wide", ab.Item.Pos, clockName)
	}
	clk := s.netBits(inst, clkNet.Name)[0]

	for _, name := range sortedKeys(st.vals) {
		if _, both := st.nb[name]; both {
			return fmt.Errorf("synth: %s: signal %q mixes blocking and nonblocking assignment", ab.Item.Pos, name)
		}
	}
	drive := func(name string, bits, conds []netlist.NetID) error {
		declared := s.netBits(inst, name)
		for k := range bits {
			if cv, isC := s.b.IsConst(conds[k]); isC && !cv {
				continue // never assigned
			}
			// Hold on not-assigned paths: D = assigned ? value : Q.
			d := s.b.Mux(conds[k], declared[k], bits[k])
			q := s.b.NewDFF(d, clk)
			if err := s.b.Alias(declared[k], q); err != nil {
				return fmt.Errorf("synth: %s: conflicting drivers for %s: %w", ab.Item.Pos, name, err)
			}
		}
		return nil
	}
	for _, name := range sortedKeys(st.nb) {
		if err := drive(name, st.nb[name], st.condNB[name]); err != nil {
			return err
		}
	}
	// Blocking assignment in a clocked block still infers flops for
	// values live at block end.
	for _, name := range sortedKeys(st.vals) {
		if err := drive(name, st.vals[name], st.condB[name]); err != nil {
			return err
		}
	}
	// Each memory write site becomes one synchronous write port, in
	// program order.
	for _, site := range st.memc.sites {
		site.write.clk = clk
		rb := s.ramFor(inst.Path, site.mem)
		rb.writes = append(rb.writes, site.write)
	}
	return nil
}

func (s *synthesizer) finishComb(inst *elab.Instance, ab *elab.ElabAlways, st *procState) error {
	if len(st.memc.sites) > 0 {
		return fmt.Errorf("synth: %s: memory writes require a clocked always block", ab.Item.Pos)
	}
	if len(st.nb) > 0 {
		return fmt.Errorf("synth: %s: nonblocking assignment in a combinational block is not supported", ab.Item.Pos)
	}
	for _, name := range sortedKeys(st.vals) {
		bits := st.vals[name]
		conds := st.condB[name]
		declared := s.netBits(inst, name)
		for k := range bits {
			cv, isC := s.b.IsConst(conds[k])
			switch {
			case isC && !cv:
				// Bit never assigned by this block.
			case isC && cv:
				if err := s.b.Alias(declared[k], bits[k]); err != nil {
					return fmt.Errorf("synth: %s: conflicting drivers for %s: %w", ab.Item.Pos, name, err)
				}
			default:
				// Incomplete assignment: infer a transparent latch.
				q := s.b.NewLatch(bits[k], conds[k])
				if err := s.b.Alias(declared[k], q); err != nil {
					return fmt.Errorf("synth: %s: conflicting drivers for %s: %w", ab.Item.Pos, name, err)
				}
			}
		}
	}
	return nil
}

// execStmt symbolically executes one statement. path is the current
// path condition, used only for memory-write enables.
func (s *synthesizer) execStmt(inst *elab.Instance, env *elab.Env, st *procState, stmt hdl.Stmt, path netlist.NetID) error {
	switch v := stmt.(type) {
	case *hdl.Block:
		for _, sub := range v.Stmts {
			if err := s.execStmt(inst, env, st, sub, path); err != nil {
				return err
			}
		}
		return nil

	case *hdl.Assign:
		return s.execAssign(inst, env, st, v, path)

	case *hdl.If:
		c, err := s.condBit(inst, env, st, v.Cond)
		if err != nil {
			return err
		}
		thenSt := st.clone(s)
		if err := s.execStmt(inst, env, thenSt, v.Then, s.b.And(path, c)); err != nil {
			return err
		}
		elseSt := st.clone(s)
		if v.Else != nil {
			if err := s.execStmt(inst, env, elseSt, v.Else, s.b.And(path, s.b.Not(c))); err != nil {
				return err
			}
		}
		return s.mergeStates(st, thenSt, elseSt, c)

	case *hdl.Case:
		return s.execCase(inst, env, st, v, path)

	case *hdl.For:
		return s.execFor(inst, env, st, v, path)
	}
	return fmt.Errorf("unsupported statement %T", stmt)
}

func (s *synthesizer) execCase(inst *elab.Instance, env *elab.Env, st *procState, v *hdl.Case, path netlist.NetID) error {
	sw, err := s.naturalWidth(inst, env, st, v.Subject)
	if err != nil {
		return err
	}
	subj, err := s.exprAt(inst, env, st, v.Subject, sw)
	if err != nil {
		return err
	}
	// A case statement is an if/else-if chain with the default as the
	// final else. Arms are processed recursively so that each level is
	// a clean two-way merge.
	var defaultBody hdl.Stmt
	arms := make([]hdl.CaseItem, 0, len(v.Items))
	for _, item := range v.Items {
		if item.Exprs == nil {
			if defaultBody != nil {
				return fmt.Errorf("%s: multiple default arms", item.Pos)
			}
			defaultBody = item.Body
			continue
		}
		arms = append(arms, item)
	}
	var exec func(st *procState, idx int, path netlist.NetID) error
	exec = func(st *procState, idx int, path netlist.NetID) error {
		if idx == len(arms) {
			if defaultBody != nil {
				return s.execStmt(inst, env, st, defaultBody, path)
			}
			return nil
		}
		item := arms[idx]
		match := s.b.Const0()
		for _, le := range item.Exprs {
			// casez labels may carry wildcard digits: compare only the
			// cared-for bit positions.
			if num, ok := le.(*hdl.Number); ok && num.CareMask != 0 {
				if !v.IsCasez {
					return fmt.Errorf("%s: wildcard label requires casez", item.Pos)
				}
				var cmpBits []netlist.NetID
				for bit := 0; bit < sw; bit++ {
					if bit < 64 && (num.CareMask>>uint(bit))&1 == 0 {
						continue
					}
					var want netlist.NetID
					if bit < 64 && (num.Value>>uint(bit))&1 == 1 {
						want = s.b.Const1()
					} else {
						want = s.b.Const0()
					}
					cmpBits = append(cmpBits, s.b.Xnor(subj[bit], want))
				}
				match = s.b.Or(match, s.reduceAnd(cmpBits))
				continue
			}
			lb, err := s.exprAt(inst, env, st, le, sw)
			if err != nil {
				return err
			}
			match = s.b.Or(match, s.eqVec(subj, lb))
		}
		thenSt := st.clone(s)
		if err := s.execStmt(inst, env, thenSt, item.Body, s.b.And(path, match)); err != nil {
			return err
		}
		elseSt := st.clone(s)
		if err := exec(elseSt, idx+1, s.b.And(path, s.b.Not(match))); err != nil {
			return err
		}
		return s.mergeStates(st, thenSt, elseSt, match)
	}
	return exec(st, 0, path)
}

func (s *synthesizer) execFor(inst *elab.Instance, env *elab.Env, st *procState, v *hdl.For, path netlist.NetID) error {
	initA, ok := v.Init.(*hdl.Assign)
	if !ok {
		return fmt.Errorf("%s: for init must be an assignment", v.Pos)
	}
	stepA, ok := v.Step.(*hdl.Assign)
	if !ok {
		return fmt.Errorf("%s: for step must be an assignment", v.Pos)
	}
	ident, ok := initA.LHS.(*hdl.Ident)
	if !ok || !inst.IsIntVar(ident.Name) {
		return fmt.Errorf("%s: for loop variable must be a declared integer", v.Pos)
	}
	val, err := elab.Eval(initA.RHS, envWithIntVars(env, st))
	if err != nil {
		return fmt.Errorf("%s: for init must be constant: %v", v.Pos, err)
	}
	const maxTrips = 4096
	trips := 0
	for {
		st.intvars[ident.Name] = val
		c, err := elab.Eval(v.Cond, envWithIntVars(env, st))
		if err != nil {
			return fmt.Errorf("%s: for condition must be elaboration-constant: %v", v.Pos, err)
		}
		if c == 0 {
			return nil
		}
		trips++
		if trips > maxTrips {
			return fmt.Errorf("%s: for loop exceeds %d iterations", v.Pos, maxTrips)
		}
		if err := s.execStmt(inst, env, st, v.Body, path); err != nil {
			return err
		}
		next, err := elab.Eval(stepA.RHS, envWithIntVars(env, st))
		if err != nil {
			return fmt.Errorf("%s: for step must be constant: %v", v.Pos, err)
		}
		if next == val {
			return fmt.Errorf("%s: for loop does not advance", v.Pos)
		}
		val = next
	}
}

func (s *synthesizer) execAssign(inst *elab.Instance, env *elab.Env, st *procState, v *hdl.Assign, path netlist.NetID) error {
	// Integer loop-variable bookkeeping assignment?
	if ident, ok := v.LHS.(*hdl.Ident); ok && inst.IsIntVar(ident.Name) {
		val, err := elab.Eval(v.RHS, envWithIntVars(env, st))
		if err != nil {
			return fmt.Errorf("%s: integer %q must be assigned a constant: %v", v.Pos, ident.Name, err)
		}
		st.intvars[ident.Name] = val
		return nil
	}
	// Memory write: mem[addr] <= data.
	if idx, ok := v.LHS.(*hdl.Index); ok {
		if base, ok := idx.Base.(*hdl.Ident); ok {
			if m, found := inst.ResolveMem(base.Name, env); found {
				return s.execMemWrite(inst, env, st, v, m, idx.Idx, path)
			}
		}
	}
	targets, err := s.procTargets(inst, env, st, v.LHS)
	if err != nil {
		return fmt.Errorf("%s: %v", v.Pos, err)
	}
	rhs, err := s.expr(inst, env, st, v.RHS, targets.width())
	if err != nil {
		return fmt.Errorf("%s: %v", v.Pos, err)
	}
	blocking := v.Blocking
	bitPos := 0
	for _, tgt := range targets.parts {
		if tgt.shared {
			// Variable-index write: one RHS bit fans out to every bit
			// position, each gated by its decoder condition.
			var rb netlist.NetID = s.b.Const0()
			if bitPos < len(rhs) {
				rb = rhs[bitPos]
			}
			bitPos++
			for k := range tgt.bits {
				s.writeBitCond(inst, st, tgt.name, tgt.bits[k], rb, tgt.bitConds[k], blocking)
			}
			continue
		}
		for k := range tgt.bits {
			var rb netlist.NetID = s.b.Const0()
			if bitPos < len(rhs) {
				rb = rhs[bitPos]
			}
			bitPos++
			s.writeBitCond(inst, st, tgt.name, tgt.bits[k], rb, s.b.Const1(), blocking)
		}
	}
	return nil
}

// procTarget describes the destination bits of a procedural assignment
// within one signal.
type procTarget struct {
	name     string
	bits     []int
	bitConds []netlist.NetID // per-bit decoder condition (variable index)
	shared   bool            // all bits consume the same single RHS bit
}

type procTargets struct{ parts []procTarget }

func (p procTargets) width() int {
	w := 0
	for _, t := range p.parts {
		if t.shared {
			w++
		} else {
			w += len(t.bits)
		}
	}
	return w
}

// procTargets resolves a procedural LHS. Unlike continuous
// assignments, variable bit indices are allowed (they lower to per-bit
// write-enable decoders).
func (s *synthesizer) procTargets(inst *elab.Instance, env *elab.Env, st *procState, e hdl.Expr) (procTargets, error) {
	switch v := e.(type) {
	case *hdl.Ident:
		n, ok := inst.ResolveNet(v.Name, env)
		if !ok {
			return procTargets{}, fmt.Errorf("assignment to undeclared signal %q", v.Name)
		}
		bits := s.intSlice(n.Width)
		for i := range bits {
			bits[i] = i
		}
		t := s.tgtSlice(1)
		t[0] = procTarget{name: n.Name, bits: bits}
		return procTargets{parts: t}, nil

	case *hdl.Index:
		base, ok := v.Base.(*hdl.Ident)
		if !ok {
			return procTargets{}, fmt.Errorf("unsupported nested index in lvalue")
		}
		n, ok := inst.ResolveNet(base.Name, env)
		if !ok {
			return procTargets{}, fmt.Errorf("assignment to undeclared signal %q", base.Name)
		}
		if idx, err := elab.Eval(v.Idx, envWithIntVars(env, st)); err == nil {
			bit := idx - n.LSB
			if bit < 0 || bit >= int64(n.Width) {
				return procTargets{}, fmt.Errorf("bit index %d out of range for %q", idx, base.Name)
			}
			bits := s.intSlice(1)
			bits[0] = int(bit)
			t := s.tgtSlice(1)
			t[0] = procTarget{name: n.Name, bits: bits}
			return procTargets{parts: t}, nil
		}
		// Variable index: write every bit, each gated by idx == position.
		iw, err := s.naturalWidth(inst, env, st, v.Idx)
		if err != nil {
			return procTargets{}, err
		}
		idxBits, err := s.exprAt(inst, env, st, v.Idx, iw)
		if err != nil {
			return procTargets{}, err
		}
		bits := s.intSlice(n.Width)
		conds := s.idSlice(n.Width)
		for i := 0; i < n.Width; i++ {
			bits[i] = i
			conds[i] = s.eqVec(idxBits, s.constBits(int64(i)+n.LSB, iw))
		}
		t := s.tgtSlice(1)
		t[0] = procTarget{name: n.Name, bits: bits, bitConds: conds, shared: true}
		return procTargets{parts: t}, nil

	case *hdl.PartSelect:
		base, ok := v.Base.(*hdl.Ident)
		if !ok {
			return procTargets{}, fmt.Errorf("unsupported nested part select in lvalue")
		}
		n, ok := inst.ResolveNet(base.Name, env)
		if !ok {
			return procTargets{}, fmt.Errorf("assignment to undeclared signal %q", base.Name)
		}
		msb, err := elab.Eval(v.MSB, envWithIntVars(env, st))
		if err != nil {
			return procTargets{}, err
		}
		lsb, err := elab.Eval(v.LSB, envWithIntVars(env, st))
		if err != nil {
			return procTargets{}, err
		}
		lo, hi := lsb-n.LSB, msb-n.LSB
		if lo > hi || lo < 0 || hi >= int64(n.Width) {
			return procTargets{}, fmt.Errorf("part select [%d:%d] out of range for %q", msb, lsb, base.Name)
		}
		bits := s.intSlice(int(hi - lo + 1))
		for i := range bits {
			bits[i] = int(lo) + i
		}
		t := s.tgtSlice(1)
		t[0] = procTarget{name: n.Name, bits: bits}
		return procTargets{parts: t}, nil

	case *hdl.Concat:
		var parts []procTarget
		for i := len(v.Parts) - 1; i >= 0; i-- {
			sub, err := s.procTargets(inst, env, st, v.Parts[i])
			if err != nil {
				return procTargets{}, err
			}
			parts = append(parts, sub.parts...)
		}
		return procTargets{parts: parts}, nil
	}
	return procTargets{}, fmt.Errorf("expression %s is not assignable", hdl.FormatExpr(e))
}

// writeBitCond records one bit write in the procedural state, gated by
// cond (Const1 for plain assignments, a decoder output for
// variable-index writes).
func (s *synthesizer) writeBitCond(inst *elab.Instance, st *procState, name string, bit int, rhs, cond netlist.NetID, blocking bool) {
	vals, conds := st.nb, st.condNB
	if blocking {
		vals, conds = st.vals, st.condB
	}
	if _, ok := vals[name]; !ok {
		declared := s.netBits(inst, name)
		cp := s.idSlice(len(declared))
		copy(cp, declared)
		vals[name] = cp
		zero := s.idSlice(len(declared))
		for i := range zero {
			zero[i] = s.b.Const0()
		}
		conds[name] = zero
	}
	vals[name][bit] = s.b.Mux(cond, vals[name][bit], rhs)
	conds[name][bit] = s.b.Or(conds[name][bit], cond)
}

func (s *synthesizer) execMemWrite(inst *elab.Instance, env *elab.Env, st *procState, v *hdl.Assign, m *elab.Mem, idxExpr hdl.Expr, path netlist.NetID) error {
	if !st.clocked {
		return fmt.Errorf("%s: memory write outside a clocked block", v.Pos)
	}
	if v.Blocking {
		return fmt.Errorf("%s: memory writes must use nonblocking assignment", v.Pos)
	}
	aw := addrWidth(m.Depth)
	addr, err := s.expr(inst, env, st, idxExpr, aw)
	if err != nil {
		return err
	}
	addr = addr[:aw]
	if m.MinIdx != 0 {
		addr = s.subConst(addr, m.MinIdx)
	}
	data, err := s.expr(inst, env, st, v.RHS, m.Width)
	if err != nil {
		return err
	}
	data = data[:m.Width]
	st.memc.sites = append(st.memc.sites, memWriteSite{
		mem:   m,
		write: ramWrite{en: path, addr: addr, data: data},
	})
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
