package netlist

import "fmt"

// OptimizeResult reports what the optimization passes removed.
type OptimizeResult struct {
	ConstFolded int // cells simplified away by constant propagation
	Merged      int // cells merged by structural hashing (CSE)
	DeadRemoved int // cells removed as unreachable from any output
	Iterations  int
}

// Optimize runs the standard post-synthesis cleanup to fixpoint:
// constant folding, structural hashing, buffer elision, and dead-logic
// removal. The passes preserve the observable behaviour at primary
// outputs and RAM/FF state. Optimize returns a new Netlist.
//
// The accounting experiments (Figure 6) depend on this pass: the paper
// defines minimal parameterization in terms of what "constant
// propagation and dead code elimination" would remove, and this is
// where those removals actually happen for synthesis metrics.
func Optimize(n *Netlist) (*Netlist, OptimizeResult, error) {
	res := OptimizeResult{}
	cur := n
	for iter := 0; iter < 50; iter++ {
		res.Iterations = iter + 1
		next, folded, merged, err := foldAndHash(cur)
		if err != nil {
			return nil, res, err
		}
		next, dead := removeDead(next)
		res.ConstFolded += folded
		res.Merged += merged
		res.DeadRemoved += dead
		cur = next
		if folded == 0 && merged == 0 && dead == 0 {
			break
		}
	}
	return cur, res, nil
}

// subst tracks net replacements (net → equivalent net).
type subst struct {
	m map[NetID]NetID
}

func (s *subst) get(id NetID) NetID {
	if id == Nil {
		return Nil
	}
	for {
		nid, ok := s.m[id]
		if !ok {
			return id
		}
		id = nid
	}
}

func (s *subst) put(from, to NetID) { s.m[from] = to }

type hashKey struct {
	t       CellType
	a, b, c NetID
	clk     NetID
}

// foldAndHash performs one sweep of constant folding, algebraic
// simplification, buffer elision, and structural hashing over the
// combinational cells (processed in topological order so substitutions
// propagate forward in a single pass).
func foldAndHash(n *Netlist) (*Netlist, int, int, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, 0, 0, err
	}
	// Sequential cells are processed after combinational ones; their
	// inputs get substituted but they are never folded away here (dead
	// removal handles unused state).
	sub := &subst{m: map[NetID]NetID{}}
	hash := map[hashKey]NetID{}
	removed := make([]bool, len(n.Cells))
	folded, merged := 0, 0
	c0, c1 := n.Const0, n.Const1

	isConst := func(id NetID) (bool, bool) {
		switch id {
		case c0:
			return false, true
		case c1:
			return true, true
		}
		return false, false
	}

	// The source netlist is never written: substitutions live only in
	// sub and are applied when the output netlist is assembled, so n's
	// cached derived structures (Drivers, TopoOrder, Hash) stay valid.
	for _, ci := range order {
		cell := &n.Cells[ci]
		a := sub.get(cell.In[0])
		b := sub.get(cell.In[1])
		s := sub.get(cell.In[2])

		simplifyTo := func(id NetID) {
			sub.put(cell.Out, id)
			removed[ci] = true
			folded++
		}

		av, aok := isConst(a)
		bv, bok := isConst(b)
		switch cell.Type {
		case Buf:
			simplifyTo(a)
			continue
		case Inv:
			if aok {
				simplifyTo(constNet(!av, c0, c1))
				continue
			}
		case And2:
			switch {
			case aok && !av, bok && !bv:
				simplifyTo(c0)
				continue
			case aok && av:
				simplifyTo(b)
				continue
			case bok && bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(a)
				continue
			}
		case Or2:
			switch {
			case aok && av, bok && bv:
				simplifyTo(c1)
				continue
			case aok && !av:
				simplifyTo(b)
				continue
			case bok && !bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(a)
				continue
			}
		case Nand2:
			if (aok && !av) || (bok && !bv) {
				simplifyTo(c1)
				continue
			}
		case Nor2:
			if (aok && av) || (bok && bv) {
				simplifyTo(c0)
				continue
			}
		case Xor2:
			switch {
			case aok && bok:
				simplifyTo(constNet(av != bv, c0, c1))
				continue
			case aok && !av:
				simplifyTo(b)
				continue
			case bok && !bv:
				simplifyTo(a)
				continue
			case a == b:
				simplifyTo(c0)
				continue
			}
		case Xnor2:
			if aok && bok {
				simplifyTo(constNet(av == bv, c0, c1))
				continue
			}
			if a == b {
				simplifyTo(c1)
				continue
			}
		case Mux2:
			sv, sok := isConst(s)
			switch {
			case sok && !sv:
				simplifyTo(a)
				continue
			case sok && sv:
				simplifyTo(b)
				continue
			case a == b:
				simplifyTo(a)
				continue
			case aok && bok && !av && bv:
				simplifyTo(s)
				continue
			}
		}

		// Structural hashing: identical (type, inputs) cells merge.
		// Commutative gates normalize input order.
		ka, kb := a, b
		if commutative(cell.Type) && ka > kb {
			ka, kb = kb, ka
		}
		key := hashKey{t: cell.Type, a: ka, b: kb, c: s, clk: sub.get(cell.Clk)}
		if prev, ok := hash[key]; ok {
			sub.put(cell.Out, prev)
			removed[ci] = true
			merged++
			continue
		}
		hash[key] = cell.Out
	}

	// Rewrite remaining structure through the substitution map. Cells
	// and RAM macros are copied so the source netlist stays untouched.
	out := &Netlist{
		NetNames: n.NetNames,
		Const0:   c0,
		Const1:   c1,
	}
	for ci := range n.Cells {
		if removed[ci] {
			continue
		}
		c := n.Cells[ci]
		for j := range c.In {
			c.In[j] = sub.get(c.In[j])
		}
		c.Clk = sub.get(c.Clk)
		// Outputs are never substituted for kept cells.
		out.Cells = append(out.Cells, c)
	}
	for _, r := range n.RAMs {
		rc := *r
		rc.Clk = sub.get(r.Clk)
		rc.WritePorts = make([]RAMWritePort, len(r.WritePorts))
		for i, wp := range r.WritePorts {
			rc.WritePorts[i] = RAMWritePort{
				En:   sub.get(wp.En),
				Addr: substIDs(wp.Addr, sub),
				Data: substIDs(wp.Data, sub),
			}
		}
		rc.ReadPorts = make([]RAMReadPort, len(r.ReadPorts))
		for i, rp := range r.ReadPorts {
			// Read-port outputs are RAM-driven; no substitution.
			rc.ReadPorts[i] = RAMReadPort{
				Addr: substIDs(rp.Addr, sub),
				Out:  append([]NetID(nil), rp.Out...),
			}
		}
		out.RAMs = append(out.RAMs, &rc)
	}
	for _, p := range n.Inputs {
		out.Inputs = append(out.Inputs, p)
	}
	for _, p := range n.Outputs {
		out.Outputs = append(out.Outputs, PortBit{Name: p.Name, Net: sub.get(p.Net)})
	}
	return out, folded, merged, nil
}

func substIDs(ids []NetID, s *subst) []NetID {
	out := make([]NetID, len(ids))
	for i, id := range ids {
		out[i] = s.get(id)
	}
	return out
}

func constNet(v bool, c0, c1 NetID) NetID {
	if v {
		return c1
	}
	return c0
}

func commutative(t CellType) bool {
	switch t {
	case And2, Or2, Nand2, Nor2, Xor2, Xnor2:
		return true
	}
	return false
}

// removeDead removes cells whose outputs cannot reach a primary output
// or a RAM pin. FFs and latches are kept only if observable; unread
// state is deleted just as a synthesis tool would.
func removeDead(n *Netlist) (*Netlist, int) {
	drivers := n.Drivers()
	live := make([]bool, len(n.Cells))
	var stack []NetID
	push := func(id NetID) {
		if id != Nil {
			stack = append(stack, id)
		}
	}
	for _, p := range n.Outputs {
		push(p.Net)
	}
	for _, r := range n.RAMs {
		push(r.Clk)
		for _, wp := range r.WritePorts {
			push(wp.En)
			for _, b := range wp.Addr {
				push(b)
			}
			for _, b := range wp.Data {
				push(b)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				push(b)
			}
		}
	}
	seenNet := make([]bool, n.NumNets())
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenNet[id] {
			continue
		}
		seenNet[id] = true
		d := drivers[id]
		if d < 0 || live[d] {
			continue
		}
		live[d] = true
		c := &n.Cells[d]
		for _, in := range c.Inputs() {
			push(in)
		}
		push(c.Clk)
	}

	dead := 0
	out := &Netlist{
		NetNames: n.NetNames,
		Const0:   n.Const0,
		Const1:   n.Const1,
		RAMs:     n.RAMs,
		Inputs:   n.Inputs,
		Outputs:  n.Outputs,
	}
	for ci := range n.Cells {
		if live[ci] {
			out.Cells = append(out.Cells, n.Cells[ci])
		} else {
			dead++
		}
	}
	return out, dead
}

// Validate checks structural invariants: every pin within range, no
// multiple drivers, no combinational cycles. It is used by tests and
// by the synthesizer's own self-checks.
func Validate(n *Netlist) error {
	inRange := func(id NetID) bool { return id == Nil || (id >= 0 && int(id) < n.NumNets()) }
	driven := map[NetID]int{}
	for i := range n.Cells {
		c := &n.Cells[i]
		for _, in := range c.Inputs() {
			if !inRange(in) {
				return fmt.Errorf("netlist: cell %d input out of range", i)
			}
		}
		if !inRange(c.Clk) || !inRange(c.Out) || c.Out == Nil {
			return fmt.Errorf("netlist: cell %d pins invalid", i)
		}
		driven[c.Out]++
		if driven[c.Out] > 1 {
			return fmt.Errorf("netlist: net %d multiply driven", c.Out)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}
