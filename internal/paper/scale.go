package paper

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gencorpus"
	"repro/internal/measure"
)

// ScaleResult is one corpus-scale accounting sweep: the Figure 6
// experiment re-run on a generated corpus of N components instead of
// the paper's fixed 18, with the measurement pipeline's scaling
// numbers alongside the estimator accuracies.
type ScaleResult struct {
	N           int    // components
	Groups      int    // share groups (the mixed-effects projects)
	Seed        uint64 // generator seed
	Fingerprint string // corpus source fingerprint (gencorpus.Fingerprint)

	// With and Without map estimator name → σε fitted on the corpus
	// measured with and without the accounting procedure, synthetic
	// efforts as ground truth.
	With    map[string]float64
	Without map[string]float64

	// Pipeline scaling numbers for the 2N-unit measurement sweep.
	ParseMillis        float64 // generate + parse wall time
	MeasureMillis      float64 // measurement sweep wall time
	PerComponentMillis float64 // MeasureMillis / (2N)
	Session            measure.SessionStats
}

// CorpusScale generates a seeded corpus of n components, measures all
// of them with and without the accounting procedure (2n units through
// one streaming session batch, so peak memory stays bounded at any
// n), fits every estimator on both measurement sets against the
// generator's synthetic efforts, and reports accuracies plus pipeline
// scaling numbers. Opts.Session is ignored — the generated corpus is
// its own design, so the sweep always builds a private session (the
// cache, when supplied, is still shared and keyed by the generated
// sources' subtree hashes).
func CorpusScale(n int, seed uint64, o Opts) (*ScaleResult, error) {
	return CorpusScaleConfig(gencorpus.Config{Components: n, Seed: seed}, o)
}

// CorpusScaleConfig is CorpusScale with a full generator config.
func CorpusScaleConfig(cfg gencorpus.Config, o Opts) (*ScaleResult, error) {
	genStart := time.Now()
	corpus, err := gencorpus.Generate(cfg)
	if err != nil {
		return nil, err
	}
	design, err := corpus.Design(o.Concurrency)
	if err != nil {
		return nil, err
	}
	parseMillis := float64(time.Since(genStart).Nanoseconds()) / 1e6

	n := len(corpus.Components)
	units := make([]measure.Unit, 0, 2*n)
	for _, c := range corpus.Components {
		units = append(units, measure.Unit{Top: c.Top, UseAccounting: true})
	}
	for _, c := range corpus.Components {
		units = append(units, measure.Unit{Top: c.Top, UseAccounting: false})
	}

	sess := measure.NewSession(design)
	withRows := make([]dataset.Component, n)
	withoutRows := make([]dataset.Component, n)
	measureStart := time.Now()
	err = sess.MeasureStream(units, o.measureOptions(), func(i int, res *measure.ComponentResult) error {
		ci := i % n
		c := corpus.Components[ci]
		// Retain only the fit-ready metric projection; the result (and
		// its netlist) is released when the group's flights retire.
		row := dataset.Component{
			Project: c.Project,
			Name:    c.Top,
			Effort:  c.Effort,
			Metrics: res.Metrics.MetricMap(),
		}
		if i < n {
			withRows[ci] = row
		} else {
			withoutRows[ci] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	measureMillis := float64(time.Since(measureStart).Nanoseconds()) / 1e6

	res := &ScaleResult{
		N:                  n,
		Groups:             groupCount(corpus),
		Seed:               cfg.Seed,
		Fingerprint:        corpus.Fingerprint(),
		With:               map[string]float64{},
		Without:            map[string]float64{},
		ParseMillis:        parseMillis,
		MeasureMillis:      measureMillis,
		PerComponentMillis: measureMillis / float64(2*n),
		Session:            sess.Stats(),
	}
	fit := func(rows []dataset.Component, into map[string]float64) error {
		accs, err := core.EvaluateEstimatorsN(rows, o.Concurrency)
		if err != nil {
			return err
		}
		for _, a := range accs {
			into[a.Name] = a.SigmaEps
		}
		return nil
	}
	if err := fit(withRows, res.With); err != nil {
		return nil, fmt.Errorf("paper: scale fit (with accounting): %w", err)
	}
	if err := fit(withoutRows, res.Without); err != nil {
		return nil, fmt.Errorf("paper: scale fit (without accounting): %w", err)
	}
	return res, nil
}

// groupCount counts the distinct projects of a generated corpus.
func groupCount(c *gencorpus.Corpus) int {
	seen := map[string]bool{}
	for _, comp := range c.Components {
		seen[comp.Project] = true
	}
	return len(seen)
}

// String renders the corpus-scale sweep: scaling numbers, then the
// Figure 6-style accuracy comparison on the generated corpus.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Corpus scale: accounting sweep on a generated %d-component corpus\n", r.N)
	fmt.Fprintf(&b, "(seed %d, %d share groups, corpus %s)\n\n", r.Seed, r.Groups, r.Fingerprint[:12])
	fmt.Fprintf(&b, "generate+parse %.1f ms; measure %d units in %.1f ms (%.2f ms/unit)\n",
		r.ParseMillis, 2*r.N, r.MeasureMillis, r.PerComponentMillis)
	fmt.Fprintf(&b, "session: %d planned, %d synthesized, %d shared\n\n",
		r.Session.Planned, r.Session.Synthesized, r.Session.Shared)
	t := &table{header: []string{"Estimator", "sigma_eps (with)", "sigma_eps (without)", "inflation"}}
	for _, name := range sortedEstimatorNames() {
		w, okW := r.With[name]
		wo, okWo := r.Without[name]
		if !okW || !okWo {
			continue
		}
		infl := "-"
		if w > 0 {
			infl = fmt.Sprintf("%.2fx", wo/w)
		}
		t.add(name, f2(w), f2(wo), infl)
	}
	b.WriteString(t.String())
	return b.String()
}
