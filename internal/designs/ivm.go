package designs

// ivmFetchSrc: 8-wide fetch front end with a tournament predictor
// (local + gshare + chooser, Table 1) and a BTB. Per-slot alignment
// logic is generated, and the predictor tables are parameterized —
// the combination that makes IVM most sensitive to the accounting
// procedure.
const ivmFetchSrc = `
// Tournament branch predictor + BTB + 8-wide fetch alignment.
module ivm_fetch #(parameter W = 32, parameter PHW = 6, parameter BTBW = 4) (
  input clk,
  input rst,
  input stall,
  input redirect,
  input [W-1:0] redirect_pc,
  input update,
  input update_taken,
  input [PHW-1:0] update_local_idx,
  input [PHW-1:0] update_global_idx,
  input [255:0] imem_data,
  input [2:0] branch_pos,
  input branch_in_bundle,
  output [W-1:0] imem_addr,
  output [29:0] imem_word_addr,
  output [255:0] slots,
  output [7:0] slot_valid,
  output [255:0] slot_pcs,
  output taken,
  output [W-1:0] next_pc
);
  // The fetch width is architectural (IVM fetches 8 instructions per
  // cycle, Table 1), not an implementation knob.
  localparam FW = 8;
  reg [W-1:0] pc;
  reg [PHW-1:0] ghist;

  // Local history table and PHT.
  reg [PHW-1:0] lht [0:(1 << BTBW) - 1];
  reg [1:0] local_pht [0:(1 << PHW) - 1];
  reg [1:0] global_pht [0:(1 << PHW) - 1];
  reg [1:0] chooser [0:(1 << PHW) - 1];

  wire [BTBW-1:0] lht_idx;
  assign lht_idx = pc[BTBW+1:2];
  wire [PHW-1:0] local_idx, global_idx;
  assign local_idx = lht[lht_idx];
  assign global_idx = pc[PHW+1:2] ^ ghist;

  wire [1:0] local_ctr, global_ctr, choice_ctr;
  assign local_ctr = local_pht[local_idx];
  assign global_ctr = global_pht[global_idx];
  assign choice_ctr = chooser[global_idx];
  wire local_take, global_take, use_global;
  assign local_take = local_ctr[1];
  assign global_take = global_ctr[1];
  assign use_global = choice_ctr[1];
  assign taken = use_global ? global_take : local_take;

  // BTB gives the target on a predicted-taken fetch.
  reg [W-1:0] btb_target [0:(1 << BTBW) - 1];
  reg [(1 << BTBW) - 1:0] btb_valid;
  wire btb_hit;
  assign btb_hit = btb_valid[lht_idx];
  wire [W-1:0] btb_out;
  assign btb_out = btb_target[lht_idx];

  assign next_pc = (taken && btb_hit) ? btb_out : pc + (FW * 4);

  // Per-slot PC computation: each of the eight slots carries its own
  // 32-bit address down the pipe.
  genvar j;
  generate for (j = 0; j < FW; j = j + 1) begin : slotpc
    assign slot_pcs[(j + 1) * 32 - 1:j * 32] = pc + (j * 4);
  end endgenerate

  always @(posedge clk) begin
    if (rst) begin
      pc <= 0;
      ghist <= 0;
      btb_valid <= 0;
    end else begin
      if (redirect) begin
        pc <= redirect_pc;
        btb_target[lht_idx] <= redirect_pc;
        btb_valid[lht_idx] <= 1;
      end else if (!stall)
        pc <= next_pc;
      if (update) begin
        ghist <= {ghist[PHW-2:0], update_taken};
        lht[lht_idx] <= {local_idx[PHW-2:0], update_taken};
        if (update_taken && local_pht[update_local_idx] != 2'd3)
          local_pht[update_local_idx] <= local_pht[update_local_idx] + 1;
        else if (!update_taken && local_pht[update_local_idx] != 2'd0)
          local_pht[update_local_idx] <= local_pht[update_local_idx] - 1;
        if (update_taken && global_pht[update_global_idx] != 2'd3)
          global_pht[update_global_idx] <= global_pht[update_global_idx] + 1;
        else if (!update_taken && global_pht[update_global_idx] != 2'd0)
          global_pht[update_global_idx] <= global_pht[update_global_idx] - 1;
      end
    end
  end
  assign imem_addr = pc;
  // Instruction memory is word addressed (the PC is architecturally
  // 32 bits).
  assign imem_word_addr = pc[31:2];

  // Per-slot alignment: a slot is valid up to (and including) the
  // first predicted-taken branch in the bundle.
  genvar i;
  generate for (i = 0; i < FW; i = i + 1) begin : align
    assign slots[(i + 1) * 32 - 1:i * 32] = imem_data[(i + 1) * 32 - 1:i * 32];
    assign slot_valid[i] = !stall &&
      (!(taken && branch_in_bundle) || (i <= branch_pos));
  end endgenerate
endmodule
`

// ivmDecodeSrc: a thin 4-wide Alpha-subset decoder — the smallest IVM
// component in every metric (Table 4 reports 2 cells and 0 FFs: it is
// almost pure wiring).
const ivmDecodeSrc = `
// One Alpha-flavoured decode slot (purely combinational).
module ivm_decode_slot #(parameter W = 32) (
  input [W-1:0] inst,
  output [5:0] opcode,
  output [4:0] ra,
  output [4:0] rb,
  output [4:0] rc,
  output [7:0] literal,
  output uses_literal,
  output is_mem,
  output is_branch
);
  assign opcode = inst[31:26];
  assign ra = inst[25:21];
  assign rb = inst[20:16];
  assign rc = inst[4:0];
  assign literal = inst[20:13];
  assign uses_literal = inst[12];
  assign is_mem = inst[31] & inst[30];
  assign is_branch = inst[31] & ~inst[30] & inst[29];
endmodule

// Four-wide decode: replicated slots, no state.
module ivm_decode #(parameter W = 32, parameter DW = 4) (
  input [DW*W-1:0] bundle,
  output [DW*6-1:0] opcodes,
  output [DW*5-1:0] ras,
  output [DW*5-1:0] rbs,
  output [DW*5-1:0] rcs,
  output [DW-1:0] mems,
  output [DW-1:0] branches
);
  genvar i;
  generate for (i = 0; i < DW; i = i + 1) begin : slot
    wire [7:0] lit;
    wire ul;
    ivm_decode_slot #(.W(W)) dec (
      .inst(bundle[(i + 1) * W - 1:i * W]),
      .opcode(opcodes[(i + 1) * 6 - 1:i * 6]),
      .ra(ras[(i + 1) * 5 - 1:i * 5]),
      .rb(rbs[(i + 1) * 5 - 1:i * 5]),
      .rc(rcs[(i + 1) * 5 - 1:i * 5]),
      .literal(lit),
      .uses_literal(ul),
      .is_mem(mems[i]),
      .is_branch(branches[i]));
  end endgenerate
endmodule
`

// ivmRenameSrc: 4-wide register rename with a flip-flop map table,
// intra-bundle bypass, and a free-list counter.
const ivmRenameSrc = `
// Four-wide rename stage with FF-based map table.
module ivm_rename #(parameter AW = 5, parameter PW = 6, parameter RW = 4) (
  input clk,
  input rst,
  input [RW-1:0] valid,
  input [RW*AW-1:0] src1,
  input [RW*AW-1:0] src2,
  input [RW*AW-1:0] dst,
  input [RW*PW-1:0] newtags,
  output [RW*PW-1:0] psrc1,
  output [RW*PW-1:0] psrc2,
  output [RW*PW-1:0] pdst,
  output reg [PW:0] free_count
);
  localparam REGS = 1 << AW;
  reg [PW-1:0] map [0:REGS-1];

  // Lookups with intra-bundle bypass: slot i sees the mappings
  // created by slots 0..i-1 in the same cycle.
  wire [AW-1:0] s1_0, s2_0, d_0;
  wire [AW-1:0] s1_1, s2_1, d_1;
  wire [AW-1:0] s1_2, s2_2, d_2;
  wire [AW-1:0] s1_3, s2_3, d_3;
  assign s1_0 = src1[AW-1:0];
  assign s2_0 = src2[AW-1:0];
  assign d_0 = dst[AW-1:0];
  assign s1_1 = src1[2*AW-1:AW];
  assign s2_1 = src2[2*AW-1:AW];
  assign d_1 = dst[2*AW-1:AW];
  assign s1_2 = src1[3*AW-1:2*AW];
  assign s2_2 = src2[3*AW-1:2*AW];
  assign d_2 = dst[3*AW-1:2*AW];
  assign s1_3 = src1[4*AW-1:3*AW];
  assign s2_3 = src2[4*AW-1:3*AW];
  assign d_3 = dst[4*AW-1:3*AW];

  wire [PW-1:0] t0, t1, t2, t3;
  assign t0 = newtags[PW-1:0];
  assign t1 = newtags[2*PW-1:PW];
  assign t2 = newtags[3*PW-1:2*PW];
  assign t3 = newtags[4*PW-1:3*PW];

  assign psrc1[PW-1:0] = map[s1_0];
  assign psrc2[PW-1:0] = map[s2_0];
  assign psrc1[2*PW-1:PW] = (valid[0] && s1_1 == d_0) ? t0 : map[s1_1];
  assign psrc2[2*PW-1:PW] = (valid[0] && s2_1 == d_0) ? t0 : map[s2_1];
  assign psrc1[3*PW-1:2*PW] = (valid[1] && s1_2 == d_1) ? t1 :
                              (valid[0] && s1_2 == d_0) ? t0 : map[s1_2];
  assign psrc2[3*PW-1:2*PW] = (valid[1] && s2_2 == d_1) ? t1 :
                              (valid[0] && s2_2 == d_0) ? t0 : map[s2_2];
  assign psrc1[4*PW-1:3*PW] = (valid[2] && s1_3 == d_2) ? t2 :
                              (valid[1] && s1_3 == d_1) ? t1 :
                              (valid[0] && s1_3 == d_0) ? t0 : map[s1_3];
  assign psrc2[4*PW-1:3*PW] = (valid[2] && s2_3 == d_2) ? t2 :
                              (valid[1] && s2_3 == d_1) ? t1 :
                              (valid[0] && s2_3 == d_0) ? t0 : map[s2_3];
  assign pdst = newtags;

  // Alpha's r31 reads as zero: detect writes to it (they are dropped
  // by convention; the check pins the architectural register width).
  wire r31_0, r31_1;
  assign r31_0 = d_0[4] & d_0[3] & d_0[2] & d_0[1] & d_0[0];
  assign r31_1 = d_1[4] & d_1[3] & d_1[2] & d_1[1] & d_1[0];

  always @(posedge clk) begin
    if (rst) begin
      free_count <= 1 << PW;
    end else begin
      if (valid[0] && !r31_0) map[d_0] <= t0;
      if (valid[1] && !r31_1) map[d_1] <= t1;
      if (valid[2]) map[d_2] <= t2;
      if (valid[3]) map[d_3] <= t3;
      free_count <= free_count
        - ({{PW{1'b0}}, valid[0]} + {{PW{1'b0}}, valid[1]}
         + {{PW{1'b0}}, valid[2]} + {{PW{1'b0}}, valid[3]});
    end
  end
endmodule
`

// ivmIssueSrc: a wakeup/select issue queue built from replicated entry
// modules in a generate loop — the canonical multiple-instantiation
// structure Section 5.3 calls out in IVM.
const ivmIssueSrc = `
// One issue-queue entry: holds two source tags and wakes on CDB match.
module ivm_issue_entry #(parameter PW = 6) (
  input clk,
  input rst,
  input alloc,
  input [PW-1:0] alloc_src1,
  input [PW-1:0] alloc_src2,
  input src1_ready_in,
  input src2_ready_in,
  input [PW-1:0] cdb_tag,
  input cdb_valid,
  input issue_grant,
  output ready,
  output busy
);
  reg valid;
  reg [PW-1:0] s1, s2;
  reg r1, r2;
  always @(posedge clk) begin
    if (rst) begin
      valid <= 0;
      s1 <= 0; s2 <= 0;
      r1 <= 0; r2 <= 0;
    end else if (alloc) begin
      valid <= 1;
      s1 <= alloc_src1;
      s2 <= alloc_src2;
      r1 <= src1_ready_in;
      r2 <= src2_ready_in;
    end else begin
      if (cdb_valid && s1 == cdb_tag) r1 <= 1;
      if (cdb_valid && s2 == cdb_tag) r2 <= 1;
      if (issue_grant) valid <= 0;
    end
  end
  assign ready = valid && r1 && r2;
  assign busy = valid;
endmodule

// Issue queue: ENTRIES replicated entries + select-oldest-ready logic.
module ivm_issue #(parameter PW = 6, parameter ENTRIES = 8) (
  input clk,
  input rst,
  input alloc_valid,
  input [PW-1:0] alloc_src1,
  input [PW-1:0] alloc_src2,
  input alloc_r1,
  input alloc_r2,
  input [PW-1:0] cdb_tag,
  input cdb_valid,
  input [31:0] alloc_inst,
  output [ENTRIES-1:0] entry_ready,
  output [ENTRIES-1:0] entry_busy,
  output issue_valid,
  output [2:0] issue_slot,
  output [31:0] issue_inst,
  output queue_full
);
  wire [ENTRIES-1:0] grants;
  // Allocation picks the first free entry.
  wire [ENTRIES-1:0] freemask;
  assign freemask = ~entry_busy;
  wire [2:0] free_slot;
  wire any_free;
  lib_prienc8 allocenc (.req(freemask), .grant(free_slot), .valid(any_free));
  assign queue_full = !any_free;

  genvar i;
  generate for (i = 0; i < ENTRIES; i = i + 1) begin : entry
    ivm_issue_entry #(.PW(PW)) e (
      .clk(clk), .rst(rst),
      .alloc(alloc_valid && any_free && free_slot == i),
      .alloc_src1(alloc_src1), .alloc_src2(alloc_src2),
      .src1_ready_in(alloc_r1), .src2_ready_in(alloc_r2),
      .cdb_tag(cdb_tag), .cdb_valid(cdb_valid),
      .issue_grant(grants[i]),
      .ready(entry_ready[i]), .busy(entry_busy[i]));
  end endgenerate

  // Age matrix: each entry tracks its allocation age so selection is
  // oldest-first rather than lowest-index (inline per-entry counters
  // and a comparison tree, as in the modeled core).
  reg [3:0] age [0:ENTRIES-1];
  reg [3:0] next_age;
  always @(posedge clk) begin
    if (rst)
      next_age <= 0;
    else if (alloc_valid && any_free) begin
      age[free_slot] <= next_age;
      next_age <= next_age + 1;
    end
  end
  wire [3:0] age0, age1, age2, age3, age4, age5, age6, age7;
  assign age0 = age[0];
  assign age1 = age[1];
  assign age2 = age[2];
  assign age3 = age[3];
  assign age4 = age[4];
  assign age5 = age[5];
  assign age6 = age[6];
  assign age7 = age[7];
  // Pairwise oldest-ready reduction.
  wire [3:0] a01, a23, a45, a67, a03, a47, abest;
  wire [2:0] s01, s23, s45, s67, s03, s47, sbest;
  wire r01, r23, r45, r67, r03, r47, rbest;
  assign r01 = entry_ready[0] || entry_ready[1];
  assign s01 = (entry_ready[0] && (!entry_ready[1] || age0 <= age1)) ? 3'd0 : 3'd1;
  assign a01 = s01 == 3'd0 ? age0 : age1;
  assign r23 = entry_ready[2] || entry_ready[3];
  assign s23 = (entry_ready[2] && (!entry_ready[3] || age2 <= age3)) ? 3'd2 : 3'd3;
  assign a23 = s23 == 3'd2 ? age2 : age3;
  assign r45 = entry_ready[4] || entry_ready[5];
  assign s45 = (entry_ready[4] && (!entry_ready[5] || age4 <= age5)) ? 3'd4 : 3'd5;
  assign a45 = s45 == 3'd4 ? age4 : age5;
  assign r67 = entry_ready[6] || entry_ready[7];
  assign s67 = (entry_ready[6] && (!entry_ready[7] || age6 <= age7)) ? 3'd6 : 3'd7;
  assign a67 = s67 == 3'd6 ? age6 : age7;
  assign r03 = r01 || r23;
  assign s03 = (r01 && (!r23 || a01 <= a23)) ? s01 : s23;
  assign a03 = (r01 && (!r23 || a01 <= a23)) ? a01 : a23;
  assign r47 = r45 || r67;
  assign s47 = (r45 && (!r67 || a45 <= a67)) ? s45 : s67;
  assign a47 = (r45 && (!r67 || a45 <= a67)) ? a45 : a67;
  assign rbest = r03 || r47;
  assign sbest = (r03 && (!r47 || a03 <= a47)) ? s03 : s47;
  assign abest = (r03 && (!r47 || a03 <= a47)) ? a03 : a47;

  wire sel_valid;
  wire [2:0] sel;
  assign sel_valid = rbest;
  assign sel = sbest;
  lib_decoder #(.AW(3)) grantdec (.a(sel), .en(sel_valid), .y(grants));
  assign issue_valid = sel_valid;
  assign issue_slot = sel;

  // Instruction payload RAM: written at allocation, read at issue.
  reg [31:0] payload [0:ENTRIES-1];
  always @(posedge clk) begin
    if (alloc_valid && any_free)
      payload[free_slot] <= alloc_inst;
  end
  assign issue_inst = payload[sel];
endmodule
`

// ivmExecuteSrc: four identical ALU lanes instantiated in a generate
// loop and a result bus arbiter — pure replication, which is why the
// paper's IVM-Execute has large area but only 3 person-months.
const ivmExecuteSrc = `
// Four-lane execute cluster: replicated ALUs, one result bus.
module ivm_execute #(parameter W = 32, parameter LANES = 4) (
  input clk,
  input rst,
  input [LANES-1:0] issue,
  input [LANES*3-1:0] ops,
  input [LANES*W-1:0] srca,
  input [LANES*W-1:0] srcb,
  output [LANES*W-1:0] results,
  output [LANES-1:0] result_valid,
  output [W-1:0] cdb_data,
  output cdb_valid,
  output cdb_sign
);
  wire [LANES-1:0] zeros;
  genvar i;
  generate for (i = 0; i < LANES; i = i + 1) begin : lane
    reg [W-1:0] ra, rb;
    reg [2:0] rop;
    reg rv;
    wire [W-1:0] y;
    always @(posedge clk) begin
      if (rst) begin
        ra <= 0; rb <= 0; rop <= 0; rv <= 0;
      end else begin
        ra <= srca[(i + 1) * W - 1:i * W];
        rb <= srcb[(i + 1) * W - 1:i * W];
        rop <= ops[(i + 1) * 3 - 1:i * 3];
        rv <= issue[i];
      end
    end
    lib_alu #(.W(W)) alu (.op(rop), .a(ra), .b(rb), .y(y), .zero(zeros[i]));
    assign results[(i + 1) * W - 1:i * W] = y;
    assign result_valid[i] = rv;
  end endgenerate

  // Result bus: lowest ready lane drives the CDB.
  assign cdb_valid = result_valid != 0;
  assign cdb_data = result_valid[0] ? results[W-1:0] :
                    result_valid[1] ? results[2*W-1:W] :
                    result_valid[2] ? results[3*W-1:2*W] : results[4*W-1:3*W];
  // Sign of the broadcast result (architectural bit 31).
  assign cdb_sign = cdb_data[31];
endmodule
`

// ivmMemorySrc: load/store queue with inline CAM match logic over an
// architectural number of entries, plus a parameterized data-cache
// array. The LSQ datapath is written inline (as IVM's was), so the
// accounting procedure's effect here comes from the parameterized
// cache, not instance deduplication.
const ivmMemorySrc = `
// Memory unit: 8-entry LSQ with CAM forwarding + direct-mapped dcache.
module ivm_memory #(parameter W = 32, parameter IDXW = 4) (
  input clk,
  input rst,
  input alloc_valid,
  input alloc_is_store,
  input [W-1:0] alloc_addr,
  input [W-1:0] alloc_data,
  input retire_valid,
  input [2:0] retire_slot,
  input [W-1:0] load_addr,
  output [W-1:0] load_data,
  output [7:0] store_hi_byte,
  output misaligned,
  output fwd_hit,
  output [7:0] lsq_busy,
  output lsq_full
);
  // The LSQ depth is architectural: eight entries, like the queue in
  // the modeled core.
  localparam ENTRIES = 8;

  // Sub-word access support: byte-lane extraction and alignment
  // checking read fixed architectural bit positions.
  assign store_hi_byte = alloc_data[31:24];
  assign misaligned = load_addr[1:0] != 0;

  reg [ENTRIES-1:0] valid, is_store;
  reg [W-1:0] addrs [0:ENTRIES-1];
  reg [W-1:0] datas [0:ENTRIES-1];

  wire [2:0] free_slot;
  wire any_free;
  lib_prienc8 allocenc (.req(~valid), .grant(free_slot), .valid(any_free));
  assign lsq_full = !any_free;
  assign lsq_busy = valid;

  always @(posedge clk) begin
    if (rst) begin
      valid <= 0;
      is_store <= 0;
    end else begin
      if (alloc_valid && any_free) begin
        valid[free_slot] <= 1;
        is_store[free_slot] <= alloc_is_store;
        addrs[free_slot] <= alloc_addr;
        datas[free_slot] <= alloc_data;
      end
      if (retire_valid)
        valid[retire_slot] <= 0;
    end
  end

  // CAM match: every entry compares its full address against the load.
  wire [ENTRIES-1:0] match;
  genvar i;
  generate for (i = 0; i < ENTRIES; i = i + 1) begin : cam
    assign match[i] = valid[i] && is_store[i] && (addrs[i] == load_addr);
  end endgenerate
  assign fwd_hit = match != 0;

  // Forwarding mux: lowest matching entry wins.
  wire [2:0] fwd_slot;
  wire fwd_any;
  lib_prienc8 fwdenc (.req(match), .grant(fwd_slot), .valid(fwd_any));
  wire [W-1:0] fwd_data;
  assign fwd_data = datas[fwd_slot];

  // Data-cache array: stores write on retire, loads read.
  reg [W-1:0] dcache [0:(1 << IDXW) - 1];
  always @(posedge clk) begin
    if (retire_valid)
      dcache[alloc_addr[IDXW+1:2]] <= alloc_data;
  end
  wire [W-1:0] cache_data;
  assign cache_data = dcache[load_addr[IDXW+1:2]];
  assign load_data = fwd_hit ? fwd_data : cache_data;
endmodule
`

// ivmRetireSrc: in-order retirement with per-slot commit checks and an
// architectural map-table update.
const ivmRetireSrc = `
// Retire unit: up to RW commits per cycle, exception tracking.
module ivm_retire #(parameter RW = 4, parameter PW = 6, parameter AW = 5) (
  input clk,
  input rst,
  input [RW-1:0] head_done,
  input [RW-1:0] head_exception,
  input [RW*AW-1:0] head_areg,
  input [RW*PW-1:0] head_preg,
  input [127:0] head_pcs,
  output [31:0] exception_pc,
  output reg [RW-1:0] commit,
  output reg flush,
  output reg [PW-1:0] freed_tag,
  output reg freed_valid,
  output [31:0] retired_total
);
  localparam REGS = 1 << AW;
  reg [PW-1:0] archmap [0:REGS-1];

  // Commit mask: in-order prefix of done, stopping at an exception.
  wire [RW-1:0] can;
  assign can[0] = head_done[0] && !head_exception[0];
  assign can[1] = can[0] && head_done[1] && !head_exception[1];
  assign can[2] = can[1] && head_done[2] && !head_exception[2];
  assign can[3] = can[2] && head_done[3] && !head_exception[3];

  always @(*) begin
    commit = can;
    flush = (head_done[0] && head_exception[0]) ||
            (can[0] && head_done[1] && head_exception[1]) ||
            (can[1] && head_done[2] && head_exception[2]) ||
            (can[2] && head_done[3] && head_exception[3]);
  end

  // Architectural map update: last committing slot wins per register.
  always @(posedge clk) begin
    if (!rst) begin
      if (can[0]) archmap[head_areg[AW-1:0]] <= head_preg[PW-1:0];
      if (can[1]) archmap[head_areg[2*AW-1:AW]] <= head_preg[2*PW-1:PW];
      if (can[2]) archmap[head_areg[3*AW-1:2*AW]] <= head_preg[3*PW-1:2*PW];
      if (can[3]) archmap[head_areg[4*AW-1:3*AW]] <= head_preg[4*PW-1:3*PW];
    end
  end

  // Exception PC: the faulting slot's 32-bit program counter.
  assign exception_pc =
    (head_done[0] && head_exception[0]) ? head_pcs[31:0] :
    (head_done[1] && head_exception[1]) ? head_pcs[63:32] :
    (head_done[2] && head_exception[2]) ? head_pcs[95:64] : head_pcs[127:96];

  // Freed-tag stream (one per cycle, oldest commit).
  always @(posedge clk) begin
    if (rst) begin
      freed_valid <= 0;
      freed_tag <= 0;
    end else begin
      freed_valid <= can[0];
      freed_tag <= head_preg[PW-1:0];
    end
  end

  // Statistics counter.
  wire [31:0] inc;
  assign inc = {31'd0, can[0]} + {31'd0, can[1]} + {31'd0, can[2]} + {31'd0, can[3]};
  reg [31:0] total;
  always @(posedge clk) begin
    if (rst)
      total <= 0;
    else
      total <= total + inc;
  end
  assign retired_total = total;
endmodule
`
