// Accounting: demonstrate the two rules of the µComplexity accounting
// procedure (Section 2.2) on a deliberately replication-heavy design —
// a quad-lane SIMD unit built from one ALU module instantiated four
// times, with a parameterized operand queue.
package main

import (
	"fmt"
	"log"

	"repro/internal/accounting"
	"repro/internal/hdl"
	"repro/internal/measure"
)

const src = `
module simd_alu #(parameter W = 16) (input [W-1:0] a, b, input [1:0] op, output reg [W-1:0] y);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a | b;
    endcase
  end
endmodule

module simd4 #(parameter W = 16, parameter QD = 32) (
  input clk, rst, push, pop,
  input [1:0] op,
  input [W-1:0] a0, b0, a1, b1, a2, b2, a3, b3,
  output [W-1:0] y0, y1, y2, y3,
  output [W-1:0] q_out,
  output q_empty
);
  // Four identical lanes: written once, instantiated four times.
  simd_alu #(.W(W)) lane0 (.a(a0), .b(b0), .op(op), .y(y0));
  simd_alu #(.W(W)) lane1 (.a(a1), .b(b1), .op(op), .y(y1));
  simd_alu #(.W(W)) lane2 (.a(a2), .b(b2), .op(op), .y(y2));
  simd_alu #(.W(W)) lane3 (.a(a3), .b(b3), .op(op), .y(y3));

  // Parameterized result queue: QD is an implementation knob, so the
  // scaling rule measures its smallest non-degenerate depth.
  reg [W-1:0] queue [0:QD-1];
  reg [5:0] head, tail;
  always @(posedge clk) begin
    if (rst) begin
      head <= 0;
      tail <= 0;
    end else begin
      if (push) begin
        queue[tail] <= y0;
        tail <= tail + 1;
      end
      if (pop)
        head <= head + 1;
    end
  end
  assign q_out = queue[head];
  assign q_empty = head == tail;
endmodule
`

func main() {
	design, err := hdl.ParseDesign(map[string]string{"simd.v": src})
	if err != nil {
		log.Fatal(err)
	}

	with, err := accounting.MeasureComponent(design, "simd4", true, measure.Options{})
	if err != nil {
		log.Fatal(err)
	}
	without, err := accounting.MeasureComponent(design, "simd4", false, measure.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the accounting procedure on a quad-lane SIMD unit:")
	fmt.Printf("\n  rule 1 (single instance): %d of %d instances deduplicated\n",
		with.DedupedInstances, without.InstanceCount-1)
	fmt.Printf("  rule 2 (parameter scaling): minimized parameters = %v\n",
		with.MinimizedParams)

	w, wo := with.Metrics, without.Metrics
	fmt.Printf("\n  %-10s %12s %12s %10s\n", "metric", "with", "without", "ratio")
	row := func(name string, a, b float64) {
		ratio := "-"
		if a > 0 {
			ratio = fmt.Sprintf("%.2fx", b/a)
		}
		fmt.Printf("  %-10s %12.0f %12.0f %10s\n", name, a, b, ratio)
	}
	row("Stmts", float64(w.Stmts), float64(wo.Stmts))
	row("LoC", float64(w.LoC), float64(wo.LoC))
	row("FanInLC", float64(w.FanInLC), float64(wo.FanInLC))
	row("Nets", float64(w.Nets), float64(wo.Nets))
	row("Cells", float64(w.Cells), float64(wo.Cells))
	row("AreaL", w.AreaL, wo.AreaL)
	row("AreaS", w.AreaS, wo.AreaS)

	fmt.Println("\n  software metrics are identical (the procedure only affects")
	fmt.Println("  synthesis metrics, Section 5.3); the synthesis metrics shrink")
	fmt.Println("  because the four lanes were a one-time design effort.")
}
