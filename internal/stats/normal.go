package stats

import (
	"fmt"
	"math"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma. The zero value is not useful; Sigma must be positive.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal distribution with the given mean and
// standard deviation. It panics if sigma is not positive, since a
// non-positive scale is always a programming error in this code base.
func NewNormal(mu, sigma float64) Normal {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("stats: NewNormal: sigma must be positive, got %v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF returns the natural logarithm of the density at x. It is more
// numerically robust than math.Log(n.PDF(x)) far in the tails.
func (n Normal) LogPDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return -0.5*z*z - math.Log(n.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// Quantile returns the value x such that CDF(x) = p. It panics if p is
// outside (0, 1).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: Normal.Quantile: p must be in (0,1), got %v", p))
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// Mean returns the mean of the distribution.
func (n Normal) Mean() float64 { return n.Mu }

// Median returns the median of the distribution.
func (n Normal) Median() float64 { return n.Mu }

// Mode returns the mode of the distribution.
func (n Normal) Mode() float64 { return n.Mu }

// Variance returns the variance of the distribution.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// StdDev returns the standard deviation of the distribution.
func (n Normal) StdDev() float64 { return n.Sigma }
