// Package equiv implements random-vector equivalence checking between
// the RTL interpreter (internal/sim.RTLSim) and the synthesized
// gate-level netlist (internal/sim.GateSim). It lives outside both
// internal/sim and internal/synth because it is the one place that
// needs both the simulator and the synthesizer.
package equiv

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/hdl"
	"repro/internal/sim"
	"repro/internal/synth"
)

// EquivResult summarizes a random-vector equivalence run.
type EquivResult struct {
	Cycles  int
	Outputs []string
}

// CheckEquivalence drives the RTL interpreter and the synthesized
// gate-level netlist of a module with the same random input vectors
// for the given number of cycles and compares every output after every
// settle and every clock edge. It returns a descriptive error on the
// first divergence.
//
// This is the reproduction's stand-in for the paper's "RTL
// Verification" stage: it validates that synthesis (and therefore the
// synthesis metrics) faithfully reflects the RTL.
func CheckEquivalence(design *hdl.Design, top string, overrides map[string]int64, cycles int, seed int64) (*EquivResult, error) {
	res, err := synth.Synthesize(design, top, overrides)
	if err != nil {
		return nil, err
	}
	rtl, err := sim.NewRTLSim(res.Top)
	if err != nil {
		return nil, err
	}
	gate, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	var inputs, outputs []string
	var clockName string
	for _, p := range res.Top.PortNets() {
		switch p.Dir {
		case hdl.Input:
			lower := strings.ToLower(p.Name)
			if clockName == "" && (lower == "clk" || lower == "clock" || strings.HasSuffix(lower, "clk")) {
				clockName = p.Name
				continue
			}
			inputs = append(inputs, p.Name)
		case hdl.Output:
			outputs = append(outputs, p.Name)
		}
	}

	compare := func(cycle int, phase string) error {
		for _, o := range outputs {
			rv, err := rtl.Output(o)
			if err != nil {
				return err
			}
			gv, err := gate.Output(o)
			if err != nil {
				return err
			}
			if rv != gv {
				return fmt.Errorf("equiv: mismatch at cycle %d (%s): output %s: RTL=%#x gate=%#x", cycle, phase, o, rv, gv)
			}
		}
		return nil
	}

	for cycle := 0; cycle < cycles; cycle++ {
		for _, in := range inputs {
			w := res.Top.Nets[in].Width
			v := rng.Uint64()
			if w < 64 {
				v &= (1 << uint(w)) - 1
			}
			if err := rtl.SetInput(in, v); err != nil {
				return nil, err
			}
			if err := gate.SetInput(in, v); err != nil {
				// The optimizer may prove an input unused and the port
				// grouping still carries it; SetInput only fails when
				// the name is entirely absent, which would be a bug.
				return nil, err
			}
		}
		if clockName != "" {
			rtl.SetInput(clockName, 0)
			gate.SetInput(clockName, 0)
		}
		if err := rtl.Eval(); err != nil {
			return nil, err
		}
		if err := gate.Eval(); err != nil {
			return nil, err
		}
		if err := compare(cycle, "settle"); err != nil {
			return nil, err
		}
		if err := rtl.Step(); err != nil {
			return nil, err
		}
		if err := gate.Step(); err != nil {
			return nil, err
		}
		if err := compare(cycle, "edge"); err != nil {
			return nil, err
		}
	}
	return &EquivResult{Cycles: cycles, Outputs: outputs}, nil
}
