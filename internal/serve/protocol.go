// Package serve is the ucserved measurement daemon: a long-running
// HTTP server that accepts µHDL design sources plus measurement units,
// plans and coalesces work from concurrent clients through one
// server-global measure.Session-backed single-flight table per parsed
// design, keeps a rolling per-tenant measure.Baseline so /remeasure
// answers one-module-edit deltas incrementally, and exposes /metrics
// and /healthz built from the existing session, elaboration, and cache
// statistics.
//
// The protocol boundary keeps the repository's golden-equivalence
// discipline: every response is bit-identical to converting the
// results of a direct measure.Session call on the same sources (the
// servetest harness pins this, over both wire encodings, for
// concurrent multi-tenant clients).
package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/codec"
	"repro/internal/measure"
)

// Wire constants. Requests are always JSON; responses are JSON by
// default and codec-framed binary when the client's Accept header
// names ContentTypeBinary.
const (
	// SchemaVersion versions the binary response framing (the
	// codec.EncodeEntry schema field). Bump on any layout change.
	SchemaVersion = 1
	// ContentTypeJSON is the default response encoding.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary selects the codec-framed binary response.
	ContentTypeBinary = "application/x-ucserve-bin"
	// binaryKey is the entry-envelope key echo of binary responses.
	binaryKey = "serve-response"
	// compressThreshold mirrors the cache's flate policy: payloads at
	// or above this size are flate-compressed when that wins.
	compressThreshold = 4096
)

// UnitRequest names one measurement unit of a request's design.
type UnitRequest struct {
	Top string `json:"top"`
	// Accounting applies the paper's Section 2.2 accounting procedure
	// (parameter minimization + instance deduplication).
	Accounting bool `json:"accounting,omitempty"`
}

// Request is the body of POST /measure and POST /remeasure.
type Request struct {
	// Tenant namespaces everything the request touches: its cache
	// entries, its parsed-design sessions, and its rolling remeasure
	// baseline. Empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Sources is the design, file name → µHDL source text.
	Sources map[string]string `json:"sources"`
	// Units are the measurement units, answered in order.
	Units []UnitRequest `json:"units"`
	// TimeoutMS, when positive, bounds this request's measurement
	// time; the server's configured RequestTimeout still applies as a
	// ceiling (the effective timeout is the smaller of the two).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// UnitResult is one unit's measurement on the wire: the full Table 3
// metric vector plus the accounting by-products. It is the exact
// projection servetest's reference path applies to a direct
// measure.Session result, so wire responses can be compared for
// bit-identity.
type UnitResult struct {
	Top              string           `json:"top"`
	Accounting       bool             `json:"accounting"`
	Metrics          measure.Metrics  `json:"metrics"`
	InstanceCount    int              `json:"instance_count"`
	DedupedInstances int              `json:"deduped_instances"`
	UniqueModules    []string         `json:"unique_modules"`
	MinimizedParams  map[string]int64 `json:"minimized_params,omitempty"`
}

// SessionInfo snapshots the serving session's cumulative sharing
// counters (cumulative across every request that hit the session, not
// per-request — the coalescing across clients is the point).
type SessionInfo struct {
	Components  int `json:"components"`
	Planned     int `json:"planned"`
	Synthesized int `json:"synthesized"`
	Shared      int `json:"shared"`
}

// RemeasureInfo reports what an incremental /remeasure had to redo.
type RemeasureInfo struct {
	// Baseline reports whether a rolling baseline existed for this
	// (tenant, unit set): false means the request measured cold.
	Baseline       bool     `json:"baseline"`
	ChangedModules []string `json:"changed_modules,omitempty"`
	AddedModules   []string `json:"added_modules,omitempty"`
	RemovedModules []string `json:"removed_modules,omitempty"`
	DirtyModules   int      `json:"dirty_modules"`
	CleanModules   int      `json:"clean_modules"`
	DirtyUnits     int      `json:"dirty_units"`
	CleanUnits     int      `json:"clean_units"`
}

// Response is the body of a successful /measure or /remeasure.
type Response struct {
	Tenant  string       `json:"tenant"`
	Results []UnitResult `json:"results"`
	Session SessionInfo  `json:"session"`
	// Remeasure is set only by /remeasure.
	Remeasure *RemeasureInfo `json:"remeasure,omitempty"`
}

// Limits bounds what a request may ask for; requests beyond any bound
// are rejected with 400 before any work is admitted.
type Limits struct {
	// MaxBodyBytes bounds the request body (enforced by the HTTP
	// layer before JSON decoding).
	MaxBodyBytes int64
	// MaxSourceBytes bounds the sum of source text sizes.
	MaxSourceBytes int
	// MaxSourceFiles bounds the file count.
	MaxSourceFiles int
	// MaxUnits bounds the unit count.
	MaxUnits int
	// MaxTenantLen bounds the tenant name length.
	MaxTenantLen int
}

// withDefaults fills zero limits with the daemon defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 16 << 20
	}
	if l.MaxSourceBytes <= 0 {
		l.MaxSourceBytes = 8 << 20
	}
	if l.MaxSourceFiles <= 0 {
		l.MaxSourceFiles = 4096
	}
	if l.MaxUnits <= 0 {
		l.MaxUnits = 4096
	}
	if l.MaxTenantLen <= 0 {
		l.MaxTenantLen = 128
	}
	return l
}

// ParseRequest decodes and validates one JSON request body against the
// limits. Unknown fields are rejected — a typo'd option silently
// ignored would be a wrong answer served with a 200. It never panics
// on hostile input (FuzzServeRequest pins this).
func ParseRequest(body []byte, limits Limits) (*Request, error) {
	limits = limits.withDefaults()
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: bad request JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after request JSON")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if len(req.Tenant) > limits.MaxTenantLen {
		return nil, fmt.Errorf("serve: tenant name exceeds %d bytes", limits.MaxTenantLen)
	}
	if len(req.Sources) == 0 {
		return nil, fmt.Errorf("serve: request has no sources")
	}
	if len(req.Sources) > limits.MaxSourceFiles {
		return nil, fmt.Errorf("serve: %d source files exceed the %d-file limit", len(req.Sources), limits.MaxSourceFiles)
	}
	total := 0
	for name, src := range req.Sources {
		if name == "" {
			return nil, fmt.Errorf("serve: empty source file name")
		}
		total += len(src)
	}
	if total > limits.MaxSourceBytes {
		return nil, fmt.Errorf("serve: %d source bytes exceed the %d-byte limit", total, limits.MaxSourceBytes)
	}
	if len(req.Units) == 0 {
		return nil, fmt.Errorf("serve: request has no units")
	}
	if len(req.Units) > limits.MaxUnits {
		return nil, fmt.Errorf("serve: %d units exceed the %d-unit limit", len(req.Units), limits.MaxUnits)
	}
	for i, u := range req.Units {
		if u.Top == "" {
			return nil, fmt.Errorf("serve: unit %d has no top module", i)
		}
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("serve: negative timeout_ms")
	}
	return &req, nil
}

// ResultsOf converts direct measure.Session results into their wire
// form, in unit order. It is exported so the servetest reference path
// applies the exact projection the server does: wire bit-identity then
// proves daemon measurement == direct measurement.
func ResultsOf(units []UnitRequest, results []*measure.ComponentResult) []UnitResult {
	out := make([]UnitResult, len(units))
	for i, u := range units {
		res := results[i]
		ur := UnitResult{
			Top:              u.Top,
			Accounting:       u.Accounting,
			Metrics:          *res.Metrics,
			InstanceCount:    res.InstanceCount,
			DedupedInstances: res.DedupedInstances,
			UniqueModules:    append([]string(nil), res.UniqueModules...),
		}
		if len(res.MinimizedParams) > 0 {
			ur.MinimizedParams = make(map[string]int64, len(res.MinimizedParams))
			for k, v := range res.MinimizedParams {
				ur.MinimizedParams[k] = v
			}
		}
		out[i] = ur
	}
	return out
}

// ---------------------------------------------------------------
// Binary response framing (internal/codec)
// ---------------------------------------------------------------

// EncodeResponse frames resp as a codec entry: the same envelope the
// on-disk cache uses (magic, schema, key echo, CRC-32C, optional
// flate), so a response survives transport corruption checks and the
// decode side inherits the codec's hostile-input hardening.
func EncodeResponse(resp *Response) []byte {
	payload := appendResponse(nil, resp)
	return codec.EncodeEntry(nil, SchemaVersion, binaryKey, payload, compressThreshold)
}

// DecodeResponse decodes one framed binary response.
func DecodeResponse(data []byte) (*Response, error) {
	payload, _, err := codec.DecodeEntry(data, SchemaVersion, binaryKey, nil)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(payload)
	resp, err := decodeResponse(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

func appendMetrics(dst []byte, m *measure.Metrics) []byte {
	dst = codec.AppendVarint(dst, int64(m.Stmts))
	dst = codec.AppendVarint(dst, int64(m.LoC))
	dst = codec.AppendVarint(dst, int64(m.FanInLC))
	dst = codec.AppendVarint(dst, int64(m.FanInLCExact))
	dst = codec.AppendVarint(dst, int64(m.Nets))
	dst = codec.AppendVarint(dst, int64(m.Cells))
	dst = codec.AppendVarint(dst, int64(m.FFs))
	dst = codec.AppendFloat64(dst, m.FreqMHz)
	dst = codec.AppendFloat64(dst, m.AreaL)
	dst = codec.AppendFloat64(dst, m.AreaS)
	dst = codec.AppendFloat64(dst, m.PowerD)
	dst = codec.AppendFloat64(dst, m.PowerS)
	return dst
}

func decodeMetrics(r *codec.Reader) measure.Metrics {
	var m measure.Metrics
	m.Stmts = int(r.Varint())
	m.LoC = int(r.Varint())
	m.FanInLC = int(r.Varint())
	m.FanInLCExact = int(r.Varint())
	m.Nets = int(r.Varint())
	m.Cells = int(r.Varint())
	m.FFs = int(r.Varint())
	m.FreqMHz = r.Float64()
	m.AreaL = r.Float64()
	m.AreaS = r.Float64()
	m.PowerD = r.Float64()
	m.PowerS = r.Float64()
	return m
}

func appendUnitResult(dst []byte, u *UnitResult) []byte {
	dst = codec.AppendString(dst, u.Top)
	dst = codec.AppendBool(dst, u.Accounting)
	dst = appendMetrics(dst, &u.Metrics)
	dst = codec.AppendVarint(dst, int64(u.InstanceCount))
	dst = codec.AppendVarint(dst, int64(u.DedupedInstances))
	dst = codec.AppendUvarint(dst, uint64(len(u.UniqueModules)))
	for _, m := range u.UniqueModules {
		dst = codec.AppendString(dst, m)
	}
	// Map entries in sorted key order: encoding must be deterministic
	// (two identical responses encode byte-identically).
	names := make([]string, 0, len(u.MinimizedParams))
	for k := range u.MinimizedParams {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = codec.AppendUvarint(dst, uint64(len(names)))
	for _, k := range names {
		dst = codec.AppendString(dst, k)
		dst = codec.AppendVarint(dst, u.MinimizedParams[k])
	}
	return dst
}

func decodeUnitResult(r *codec.Reader) UnitResult {
	var u UnitResult
	u.Top = r.String()
	u.Accounting = r.Bool()
	u.Metrics = decodeMetrics(r)
	u.InstanceCount = int(r.Varint())
	u.DedupedInstances = int(r.Varint())
	if n := r.Count(1); n > 0 {
		u.UniqueModules = make([]string, n)
		for i := range u.UniqueModules {
			u.UniqueModules[i] = r.String()
		}
	}
	if n := r.Count(2); n > 0 {
		u.MinimizedParams = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			k := r.String()
			v := r.Varint()
			if r.Err() != nil {
				return u
			}
			u.MinimizedParams[k] = v
		}
	}
	return u
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = codec.AppendString(dst, s)
	}
	return dst
}

func decodeStrings(r *codec.Reader) []string {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	return out
}

func appendResponse(dst []byte, resp *Response) []byte {
	dst = codec.AppendString(dst, resp.Tenant)
	dst = codec.AppendUvarint(dst, uint64(len(resp.Results)))
	for i := range resp.Results {
		dst = appendUnitResult(dst, &resp.Results[i])
	}
	dst = codec.AppendVarint(dst, int64(resp.Session.Components))
	dst = codec.AppendVarint(dst, int64(resp.Session.Planned))
	dst = codec.AppendVarint(dst, int64(resp.Session.Synthesized))
	dst = codec.AppendVarint(dst, int64(resp.Session.Shared))
	dst = codec.AppendBool(dst, resp.Remeasure != nil)
	if ri := resp.Remeasure; ri != nil {
		dst = codec.AppendBool(dst, ri.Baseline)
		dst = appendStrings(dst, ri.ChangedModules)
		dst = appendStrings(dst, ri.AddedModules)
		dst = appendStrings(dst, ri.RemovedModules)
		dst = codec.AppendVarint(dst, int64(ri.DirtyModules))
		dst = codec.AppendVarint(dst, int64(ri.CleanModules))
		dst = codec.AppendVarint(dst, int64(ri.DirtyUnits))
		dst = codec.AppendVarint(dst, int64(ri.CleanUnits))
	}
	return dst
}

func decodeResponse(r *codec.Reader) (*Response, error) {
	var resp Response
	resp.Tenant = r.String()
	n := r.Count(1)
	if n > 0 {
		resp.Results = make([]UnitResult, n)
		for i := range resp.Results {
			resp.Results[i] = decodeUnitResult(r)
			if err := r.Err(); err != nil {
				return nil, err
			}
		}
	}
	resp.Session.Components = int(r.Varint())
	resp.Session.Planned = int(r.Varint())
	resp.Session.Synthesized = int(r.Varint())
	resp.Session.Shared = int(r.Varint())
	if r.Bool() {
		var ri RemeasureInfo
		ri.Baseline = r.Bool()
		ri.ChangedModules = decodeStrings(r)
		ri.AddedModules = decodeStrings(r)
		ri.RemovedModules = decodeStrings(r)
		ri.DirtyModules = int(r.Varint())
		ri.CleanModules = int(r.Varint())
		ri.DirtyUnits = int(r.Varint())
		ri.CleanUnits = int(r.Varint())
		resp.Remeasure = &ri
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &resp, nil
}
