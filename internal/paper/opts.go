package paper

import (
	"repro/internal/cache"
	"repro/internal/elab"
)

// Opts configures the experiments that measure the synthetic corpus
// through the synthesis pipeline (MeasureCorpus, Figure 6, the timing
// extension). The dataset-only reproductions (Tables, Figures 2-5,
// AIC/BIC) refit the paper's published data and take no options beyond
// concurrency.
type Opts struct {
	// Concurrency bounds the worker pools (0 = GOMAXPROCS,
	// 1 = exact sequential path). Results are identical for every
	// value.
	Concurrency int
	// Cache, when non-nil, is the on-disk measurement cache threaded
	// into every component measurement. Results are bit-identical with
	// and without it.
	Cache *cache.Cache
	// ElabStats, when non-nil, aggregates the session elaboration-cache
	// counters of every accounting search across the corpus (purely
	// observational; results are unchanged).
	ElabStats *elab.StatsRecorder
}

// options lowers Opts to per-component measurement options, bounding
// the accounting search's inner pool to keep the machine subscribed
// once when the outer component pool is already parallel.
func (o Opts) inner(outerParallel bool) int {
	if outerParallel {
		return 1
	}
	return o.Concurrency
}
