package equiv

import (
	"testing"

	"repro/internal/hdl"
)

func equivSrc(t *testing.T, src, top string, cycles int) {
	t.Helper()
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckEquivalence(d, top, nil, cycles, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != cycles {
		t.Errorf("ran %d cycles, want %d", res.Cycles, cycles)
	}
}

func TestEquivalenceCombinational(t *testing.T) {
	equivSrc(t, `
module mix (input [7:0] a, b, input [2:0] n, input s, output [8:0] o1, output [7:0] o2, o3, o4, output o5);
  assign o1 = a + b;
  assign o2 = s ? (a << n) : (b >> n);
  assign o3 = a * b;
  assign o4 = {a[3:0], b[7:4]};
  assign o5 = (a < b) && (a != 0) || ^b;
endmodule`, "mix", 50)
}

func TestEquivalenceSequential(t *testing.T) {
	equivSrc(t, `
module seq (input clk, input rst, en, input [7:0] d, output reg [7:0] q, output reg [3:0] cnt);
  always @(posedge clk) begin
    if (rst) begin
      q <= 0;
      cnt <= 0;
    end else if (en) begin
      q <= d;
      cnt <= cnt + 1;
    end
  end
endmodule`, "seq", 60)
}

func TestEquivalenceCaseAndLoops(t *testing.T) {
	equivSrc(t, `
module casetest (input clk, input [1:0] op, input [7:0] a, b, output reg [7:0] y, output [7:0] rev);
  reg [7:0] t;
  integer i;
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a | b;
    endcase
  end
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      t[i] = a[7 - i];
  end
  assign rev = t;
endmodule`, "casetest", 40)
}

func TestEquivalenceMemoryDesign(t *testing.T) {
	equivSrc(t, `
module rf (input clk, we, input [1:0] wa, ra1, ra2, input [7:0] wd, output [7:0] r1, r2, output [8:0] sum);
  reg [7:0] m [0:3];
  always @(posedge clk) if (we) m[wa] <= wd;
  assign r1 = m[ra1];
  assign r2 = m[ra2];
  assign sum = r1 + r2;
endmodule`, "rf", 60)
}

func TestEquivalenceHierarchyPipeline(t *testing.T) {
	equivSrc(t, `
module stage (input clk, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d;
endmodule
module pipe (input clk, input [7:0] din, output [7:0] dout);
  wire [7:0] w0, w1, w2;
  stage s0 (.clk(clk), .d(din), .q(w0));
  stage s1 (.clk(clk), .d(w0), .q(w1));
  stage s2 (.clk(clk), .d(w1), .q(w2));
  assign dout = w2;
endmodule`, "pipe", 30)
}

func TestEquivalenceGenerateAdder(t *testing.T) {
	equivSrc(t, `
module fulladd (input a, b, cin, output s, cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | ((a ^ b) & cin);
endmodule
module rca #(parameter W = 8) (input [W-1:0] a, b, output [W-1:0] s, output cout);
  wire [W:0] c;
  assign c[0] = 0;
  genvar i;
  generate for (i = 0; i < W; i = i + 1) begin : g
    fulladd fa (.a(a[i]), .b(b[i]), .cin(c[i]), .s(s[i]), .cout(c[i+1]));
  end endgenerate
  assign cout = c[W];
endmodule`, "rca", 40)
}

func TestEquivalenceLatch(t *testing.T) {
	equivSrc(t, `
module lt (input en, input [3:0] d, output reg [3:0] q);
  always @(*) if (en) q = d;
endmodule`, "lt", 40)
}

func TestEquivalenceVariableIndex(t *testing.T) {
	equivSrc(t, `
module vi (input clk, input [7:0] a, input [2:0] sel, input bitv, output y, output reg [7:0] w);
  assign y = a[sel];
  always @(posedge clk) w[sel] <= bitv;
endmodule`, "vi", 50)
}

func TestEquivalenceWithParameterOverride(t *testing.T) {
	src := `
module cnt #(parameter W = 4) (input clk, input rst, output reg [W-1:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int64{1, 3, 12} {
		if _, err := CheckEquivalence(d, "cnt", map[string]int64{"W": w}, 40, 7); err != nil {
			t.Errorf("W=%d: %v", w, err)
		}
	}
}
