// Package stdcell models a 180 nm-class standard-cell library: per-cell
// area, delay, leakage, and switching energy, plus the RAM-macro model
// used for inferred memories.
//
// The paper's ASIC-side metrics (Table 3) come from synthesizing to "a
// 180nm standard cell library" with Design Compiler. The numbers below
// are representative of such a library (areas in µm², delays in ns,
// leakage in nW, switching energy in pJ); they produce metric
// magnitudes in the same ranges as Table 4. Absolute values do not
// matter for the reproduction — the estimator analysis is
// scale-invariant because the regression fits a weight per metric —
// but realistic ratios between cell types keep the area/power metrics
// honestly correlated with structure, which is what Figures 5 and 6
// exercise.
package stdcell

import (
	"fmt"
	"math"

	"repro/internal/netlist"
)

// Params describes one cell type.
type Params struct {
	Area      float64 // µm²
	Delay     float64 // ns, input to output
	Leakage   float64 // nW static leakage
	SwitchEng float64 // pJ per output transition
}

// Library is a full cell library: parameters per primitive cell type
// and the RAM model.
type Library struct {
	Name  string
	Cells map[netlist.CellType]Params
	// RAMBitArea is the storage area per memory bit (µm²); RAM
	// periphery adds RAMPortArea per bit of each port.
	RAMBitArea  float64
	RAMPortArea float64
	// RAMBitLeakage is leakage per bit (nW).
	RAMBitLeakage float64
	// RAMAccessEnergy is pJ per accessed bit per activation.
	RAMAccessEnergy float64
	// RAMAccessDelay is the read-access time in ns.
	RAMAccessDelay float64
	// FFArea duplicates Cells[DFF].Area for convenience in AreaS
	// computations.
}

// Default180nm returns the library used throughout the reproduction.
// Ratios follow typical 180 nm vendor data: an inverter is the unit
// cell; NAND/NOR are ~1.3×, AND/OR ~1.7× (extra output inverter),
// XOR/XNOR ~2.5×, MUX ~2.3×, DFF ~6×, latch ~3.5×.
//
// The returned library is a shared read-only instance (callers never
// mutate libraries; anyone needing a variant builds their own): the
// default is resolved once per synthesis call on the measurement hot
// path, so constructing the cell table fresh each time was a measurable
// allocation cost.
func Default180nm() *Library {
	return default180
}

var default180 = newDefault180nm()

func newDefault180nm() *Library {
	return &Library{
		Name: "generic180",
		Cells: map[netlist.CellType]Params{
			netlist.Inv:   {Area: 10.0, Delay: 0.04, Leakage: 0.5, SwitchEng: 0.004},
			netlist.Buf:   {Area: 13.3, Delay: 0.07, Leakage: 0.6, SwitchEng: 0.005},
			netlist.Nand2: {Area: 13.3, Delay: 0.06, Leakage: 0.8, SwitchEng: 0.006},
			netlist.Nor2:  {Area: 13.3, Delay: 0.07, Leakage: 0.8, SwitchEng: 0.006},
			netlist.And2:  {Area: 16.6, Delay: 0.09, Leakage: 1.0, SwitchEng: 0.007},
			netlist.Or2:   {Area: 16.6, Delay: 0.10, Leakage: 1.0, SwitchEng: 0.007},
			netlist.Xor2:  {Area: 25.0, Delay: 0.12, Leakage: 1.5, SwitchEng: 0.010},
			netlist.Xnor2: {Area: 25.0, Delay: 0.12, Leakage: 1.5, SwitchEng: 0.010},
			netlist.Mux2:  {Area: 23.3, Delay: 0.11, Leakage: 1.4, SwitchEng: 0.009},
			netlist.DFF:   {Area: 60.0, Delay: 0.20, Leakage: 3.0, SwitchEng: 0.020},
			netlist.Latch: {Area: 35.0, Delay: 0.15, Leakage: 2.0, SwitchEng: 0.012},
		},
		RAMBitArea:      2.5,
		RAMPortArea:     0.9,
		RAMBitLeakage:   0.05,
		RAMAccessEnergy: 0.0008,
		RAMAccessDelay:  1.8,
	}
}

// CellParams returns the parameters of a cell type, panicking on an
// unknown type (a programming error: the library must cover every
// primitive the synthesizer emits).
func (l *Library) CellParams(t netlist.CellType) Params {
	p, ok := l.Cells[t]
	if !ok {
		panic(fmt.Sprintf("stdcell: library %s has no cell %s", l.Name, t))
	}
	return p
}

// RAMArea returns the macro area of a RAM in µm².
func (l *Library) RAMArea(r *netlist.RAM) float64 {
	bits := float64(r.Width * r.Depth)
	ports := len(r.WritePorts) + len(r.ReadPorts)
	if ports == 0 {
		ports = 1
	}
	return bits*l.RAMBitArea + bits*float64(ports)*l.RAMPortArea
}

// RAMLeakage returns the macro leakage of a RAM in nW.
func (l *Library) RAMLeakage(r *netlist.RAM) float64 {
	return float64(r.Width*r.Depth) * l.RAMBitLeakage
}

// RAMDynamicEnergy returns pJ per clock for a RAM, assuming each port
// is active with the given probability.
func (l *Library) RAMDynamicEnergy(r *netlist.RAM, activity float64) float64 {
	ports := len(r.WritePorts) + len(r.ReadPorts)
	if ports == 0 {
		ports = 1
	}
	rowBits := float64(r.Width)
	return rowBits * float64(ports) * activity * l.RAMAccessEnergy * math.Sqrt(float64(r.Depth))
}

// Areas aggregates the logic and storage areas of a netlist:
// AreaL = combinational cells; AreaS = flip-flops, latches, and RAM
// macros. This split matches the paper's AreaL ("logic area") vs AreaS
// ("storage area") columns.
func (l *Library) Areas(n *netlist.Netlist) (areaL, areaS float64) {
	for i := range n.Cells {
		p := l.CellParams(n.Cells[i].Type)
		if n.Cells[i].Type.IsSequential() {
			areaS += p.Area
		} else {
			areaL += p.Area
		}
	}
	for _, r := range n.RAMs {
		areaS += l.RAMArea(r)
	}
	return areaL, areaS
}

// StaticPower returns total leakage in µW (the paper's PowerS unit).
func (l *Library) StaticPower(n *netlist.Netlist) float64 {
	var nw float64
	for i := range n.Cells {
		nw += l.CellParams(n.Cells[i].Type).Leakage
	}
	for _, r := range n.RAMs {
		nw += l.RAMLeakage(r)
	}
	return nw / 1000.0
}
