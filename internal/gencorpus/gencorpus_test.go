package gencorpus

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/synth"
)

// TestGenerateDeterministic: same config ⇒ byte-identical corpus,
// repeated in-process and across GOMAXPROCS settings.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Components: 25, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := a.Fingerprint()

	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		b, err := Generate(cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Fingerprint(); got != fp {
			t.Fatalf("GOMAXPROCS=%d: fingerprint %s != %s", procs, got, fp)
		}
		if len(b.Files) != len(a.Files) {
			t.Fatalf("GOMAXPROCS=%d: %d files != %d", procs, len(b.Files), len(a.Files))
		}
		for name, src := range a.Files {
			if b.Files[name] != src {
				t.Fatalf("GOMAXPROCS=%d: file %s differs", procs, name)
			}
		}
		for i, c := range a.Components {
			if b.Components[i] != c {
				t.Fatalf("GOMAXPROCS=%d: component %d differs: %+v vs %+v", procs, i, b.Components[i], c)
			}
		}
	}
}

// TestGenerateDistinctSeeds: distinct seeds ⇒ distinct corpora.
func TestGenerateDistinctSeeds(t *testing.T) {
	seen := map[string]uint64{}
	for seed := uint64(0); seed < 10; seed++ {
		c, err := Generate(Config{Components: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("seeds %d and %d generated identical corpora (%s)", prev, seed, fp)
		}
		seen[fp] = seed
	}
}

// TestGeneratedDesignsSynthesize: every component of a seed sweep
// parses, elaborates, and synthesizes at its default parameters.
func TestGeneratedDesignsSynthesize(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			n := 15 // three components per family
			c, err := Generate(Config{Components: n, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			d, err := c.Design(0)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, comp := range c.Components {
				res, err := synth.Synthesize(d, comp.Top, nil)
				if err != nil {
					t.Fatalf("synthesize %s: %v\nsource:\n%s", comp.Top, err, c.Files[comp.File])
				}
				if res.Optimized == nil || len(res.Optimized.Cells) == 0 {
					t.Fatalf("synthesize %s: empty netlist", comp.Top)
				}
				if comp.Effort < 0.1 {
					t.Fatalf("component %s: effort %v below floor", comp.Top, comp.Effort)
				}
				if comp.Project == "" {
					t.Fatalf("component %s: empty project", comp.Top)
				}
			}
		})
	}
}

// TestGenerateShareGroups: the ShareGroups knob clamps sanely and
// deals components round-robin into projects.
func TestGenerateShareGroups(t *testing.T) {
	c, err := Generate(Config{Components: 9, Seed: 7, ShareGroups: 3})
	if err != nil {
		t.Fatal(err)
	}
	projects := map[string]int{}
	for _, comp := range c.Components {
		projects[comp.Project]++
	}
	if len(projects) != 3 {
		t.Fatalf("want 3 projects, got %v", projects)
	}
	for p, n := range projects {
		if n != 3 {
			t.Fatalf("project %s has %d components, want 3", p, n)
		}
	}

	// More groups than components clamps to one component per group.
	c, err = Generate(Config{Components: 2, Seed: 7, ShareGroups: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Components); got != 2 {
		t.Fatalf("want 2 components, got %d", got)
	}
}

// FuzzGenerate: arbitrary (seed, size) configs must generate corpora
// whose every component parses, elaborates, and synthesizes.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(0xdeadbeef), uint8(0))
	f.Add(uint64(77), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, n uint8) {
		components := 1 + int(n%8)
		c, err := Generate(Config{Components: components, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		d, err := c.Design(1)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		for _, comp := range c.Components {
			if _, err := synth.Synthesize(d, comp.Top, nil); err != nil {
				t.Fatalf("synthesize %s: %v", comp.Top, err)
			}
		}
	})
}
