// Package codec implements the compact, schema-versioned,
// little-endian binary encoding the on-disk cache (internal/cache) and
// the planned ucserved wire protocol share. It replaces encoding/gob
// for every persisted type: encoders and decoders are explicit,
// per-type functions — no reflection anywhere on the hot path — and
// the decode side is defensive, returning an error (never panicking,
// never aliasing the input buffer into a decoded value) on arbitrary
// hostile bytes.
//
// The package has three layers:
//
//   - Primitives: append-style writers (AppendUvarint, AppendString,
//     ...) and a bounds-checked, sticky-error Reader whose allocation
//     helpers cap every count against the bytes actually present, so a
//     corrupt length prefix cannot force a huge allocation.
//   - Entry framing (entry.go): a versioned envelope with magic,
//     schema, key echo, CRC-32C over the stored payload, and optional
//     per-entry flate block compression chosen by a size threshold and
//     recorded in a flags byte.
//   - Typed codecs: the pointer-free SoA netlist encoding
//     (netlist.go) here, plus per-type codecs next to their types
//     (internal/measure, internal/elab) built from these primitives.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is the sentinel every decode failure wraps: callers that
// treat damaged input as a cache miss can test for just this.
var ErrCorrupt = errors.New("codec: corrupt input")

// Codec binds one Go type to its binary encoding. Append serializes v
// onto dst and returns the extended slice; Decode reads one value from
// the reader, allocating fresh memory for everything it returns (a
// decoded value never aliases the reader's buffer, which the caller is
// free to reuse).
type Codec[T any] struct {
	// Name tags diagnostics; it is not part of the encoding.
	Name   string
	Append func(dst []byte, v T) []byte
	Decode func(r *Reader) (T, error)
}

// ---------------------------------------------------------------
// Append-style encoders
// ---------------------------------------------------------------

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends v zigzag-encoded (small magnitudes of either
// sign stay short — net-ID deltas are the main user).
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendByte appends one raw byte.
func AppendByte(dst []byte, b byte) []byte { return append(dst, b) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendUint32 appends v little-endian, fixed width (used for CRCs,
// where varint malleability would weaken the check).
func AppendUint32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// AppendFloat64 appends the IEEE 754 bits little-endian, fixed width.
// Bit-exactness matters — cached metrics must round-trip to the exact
// float the measurement produced — so no decimal detour.
func AppendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendString appends a uvarint length prefix and the raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length prefix and the raw bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ---------------------------------------------------------------
// Reader
// ---------------------------------------------------------------

// Reader decodes the primitive layer with a sticky error: after the
// first malformed read every subsequent read returns a zero value, so
// decoders can run straight-line and check Err once per structure.
// Every length and count is validated against the bytes remaining
// before anything is allocated.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data. The Reader never mutates data
// and never hands out sub-slices of it: String and Raw copy.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, nil if none.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.data) - r.off }

// fail records the first error; later reads keep returning zero.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: offset %d: %s", ErrCorrupt, r.off, fmt.Sprintf(format, args...))
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("unexpected end of input reading byte")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Bool reads one byte and rejects anything but 0 or 1 (a corrupt flag
// byte must not decode as a valid value).
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err == nil && b > 1 {
		r.fail("invalid bool byte %d", b)
	}
	return b == 1
}

// Uvarint reads an unsigned LEB128 value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed value.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// Uint32 reads a fixed-width little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 4 {
		r.fail("unexpected end of input reading uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

// Float64 reads fixed-width IEEE 754 bits.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.fail("unexpected end of input reading float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// String reads a length-prefixed string. The result is a fresh copy —
// it stays valid after the caller reuses the underlying buffer.
func (r *Reader) String() string {
	n := r.lenPrefix()
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Raw reads length-prefixed bytes into fresh memory (nil when the
// length is zero, matching how the encoders treat nil slices).
func (r *Reader) Raw() []byte {
	n := r.lenPrefix()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.off:])
	r.off += n
	return b
}

// lenPrefix reads a uvarint length and bounds it by the bytes present.
func (r *Reader) lenPrefix() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Len()) {
		r.fail("length %d exceeds %d remaining bytes", n, r.Len())
		return 0
	}
	return int(n)
}

// Count reads a uvarint element count for a slice whose elements each
// occupy at least minBytesPerElem encoded bytes, and rejects counts
// the remaining input cannot possibly hold. This bounds every decode
// allocation by the input size, so a corrupt (or hostile) count cannot
// become a memory bomb.
func (r *Reader) Count(minBytesPerElem int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytesPerElem < 1 {
		minBytesPerElem = 1
	}
	if n > uint64(r.Len()/minBytesPerElem) {
		r.fail("count %d exceeds remaining input (%d bytes, >=%d per element)", n, r.Len(), minBytesPerElem)
		return 0
	}
	return int(n)
}

// Finish returns an error unless the input was consumed exactly:
// trailing bytes mean the payload belongs to a different (longer)
// format and must not be silently accepted.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes after value", ErrCorrupt, len(r.data)-r.off)
	}
	return nil
}
