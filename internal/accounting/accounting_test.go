package accounting

import (
	"testing"

	"repro/internal/hdl"
	"repro/internal/measure"
)

func design(t *testing.T, src string) *hdl.Design {
	t.Helper()
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMinimizeParamsCounterWidth(t *testing.T) {
	// A plain width parameter has no loops/conditionals tied to it:
	// the minimum non-degenerate width is 1 ([W-1:0] with W=0 fails).
	d := design(t, `
module cnt #(parameter W = 32) (input clk, output reg [W-1:0] q);
  always @(posedge clk) q <= q + 1;
endmodule`)
	p, err := MinimizeParams(d, "cnt")
	if err != nil {
		t.Fatal(err)
	}
	if p["W"] != 1 {
		t.Errorf("W minimized to %d, want 1", p["W"])
	}
}

func TestMinimizeParamsRespectsGenerateLoop(t *testing.T) {
	// The loop runs N-1 times, so N=1 would optimize it away; the
	// minimum is N=2.
	d := design(t, `
module m #(parameter N = 16) (input [N-1:0] a, output [N-1:0] y);
  assign y[0] = a[0];
  genvar i;
  generate for (i = 1; i < N; i = i + 1) begin : g
    assign y[i] = a[i] ^ a[i-1];
  end endgenerate
endmodule`)
	p, err := MinimizeParams(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	if p["N"] != 2 {
		t.Errorf("N minimized to %d, want 2", p["N"])
	}
}

func TestMinimizeParamsRespectsGenerateIf(t *testing.T) {
	// The then-branch needs P > 4; minimization must not cross to 4.
	d := design(t, `
module m #(parameter P = 64) (input a, output y);
  generate if (P > 4) begin : big
    assign y = a;
  end else begin : small
    assign y = ~a;
  end endgenerate
endmodule`)
	p, err := MinimizeParams(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	if p["P"] != 5 {
		t.Errorf("P minimized to %d, want 5", p["P"])
	}
}

func TestMinimizeParamsMemoryDepth(t *testing.T) {
	// Depth 1 degenerates a memory; minimum is 2.
	d := design(t, `
module m #(parameter D = 256) (input clk, input [7:0] addr, input [3:0] wd, output [3:0] rd);
  reg [3:0] mem [0:D-1];
  always @(posedge clk) mem[addr] <= wd;
  assign rd = mem[addr];
endmodule`)
	p, err := MinimizeParams(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	if p["D"] != 2 {
		t.Errorf("D minimized to %d, want 2", p["D"])
	}
}

func TestMinimizeParamsInteraction(t *testing.T) {
	// AW derives from D through the port; minimizing D must keep
	// elaboration valid with AW's own minimum.
	d := design(t, `
module m #(parameter D = 16, parameter AW = 4) (input [AW-1:0] addr, input clk, input [3:0] wd, output [3:0] rd);
  reg [3:0] mem [0:D-1];
  always @(posedge clk) mem[addr] <= wd;
  assign rd = mem[addr];
endmodule`)
	p, err := MinimizeParams(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	if p["D"] != 2 || p["AW"] != 1 {
		t.Errorf("minimized to D=%d AW=%d, want D=2 AW=1", p["D"], p["AW"])
	}
}

const replicatedDesign = `
module alu #(parameter W = 8) (input [W-1:0] a, b, input op, output [W-1:0] y);
  assign y = op ? (a - b) : (a + b);
endmodule
module quad #(parameter W = 8) (input [W-1:0] a, b, c, d, input op, output [W-1:0] y);
  wire [W-1:0] t1, t2, t3;
  alu #(.W(W)) u0 (.a(a), .b(b), .op(op), .y(t1));
  alu #(.W(W)) u1 (.a(c), .b(d), .op(op), .y(t2));
  alu #(.W(W)) u2 (.a(t1), .b(t2), .op(op), .y(t3));
  alu #(.W(W)) u3 (.a(t3), .b(a), .op(op), .y(y));
endmodule`

func TestMeasureComponentAccountingReducesMetrics(t *testing.T) {
	d := design(t, replicatedDesign)
	with, err := MeasureComponent(d, "quad", true, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := MeasureComponent(d, "quad", false, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Four identical ALUs: accounting drops three of them.
	if with.DedupedInstances != 3 {
		t.Errorf("deduped = %d, want 3", with.DedupedInstances)
	}
	if with.Metrics.Cells >= without.Metrics.Cells {
		t.Errorf("accounting must reduce Cells: %d vs %d", with.Metrics.Cells, without.Metrics.Cells)
	}
	if with.Metrics.FanInLCExact >= without.Metrics.FanInLCExact {
		t.Errorf("accounting must reduce FanInLC: %d vs %d", with.Metrics.FanInLCExact, without.Metrics.FanInLCExact)
	}
	// Software metrics are identical in both modes (Section 5.3).
	if with.Metrics.Stmts != without.Metrics.Stmts || with.Metrics.LoC != without.Metrics.LoC {
		t.Errorf("software metrics must not change: %+v vs %+v", with.Metrics, without.Metrics)
	}
	if len(with.UniqueModules) != 2 {
		t.Errorf("unique modules = %v", with.UniqueModules)
	}
}

func TestMeasureComponentParameterScaling(t *testing.T) {
	// A single-instance design whose only inflation is parameters:
	// accounting shrinks W to 1, cutting the synthesis metrics.
	d := design(t, `
module wide #(parameter W = 32) (input [W-1:0] a, b, output [W-1:0] s);
  assign s = a + b;
endmodule`)
	with, err := MeasureComponent(d, "wide", true, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := MeasureComponent(d, "wide", false, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if with.MinimizedParams["W"] != 1 {
		t.Errorf("W = %d, want 1", with.MinimizedParams["W"])
	}
	if with.Metrics.Cells >= without.Metrics.Cells/8 {
		t.Errorf("scaling should shrink cells dramatically: %d vs %d", with.Metrics.Cells, without.Metrics.Cells)
	}
}

func TestMeasureComponentDifferentParamsNotDeduped(t *testing.T) {
	// Two instances of the same module at different parameters are
	// different design efforts? No — the paper counts the *component*
	// once (the parameterized code is written once). Our signature
	// includes parameters, so differently-parameterized instances both
	// remain. This test pins that behaviour.
	d := design(t, `
module add #(parameter W = 4) (input [W-1:0] a, b, output [W-1:0] s);
  assign s = a + b;
endmodule
module two (input [3:0] a, b, input [7:0] c, d, output [3:0] s1, output [7:0] s2);
  add #(.W(4)) u0 (.a(a), .b(b), .s(s1));
  add #(.W(8)) u1 (.a(c), .b(d), .s(s2));
endmodule`)
	with, err := MeasureComponent(d, "two", true, measure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if with.DedupedInstances != 0 {
		t.Errorf("deduped = %d, want 0 (different parameterizations)", with.DedupedInstances)
	}
}
