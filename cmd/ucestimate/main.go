// Command ucestimate predicts the design effort of a component from
// its metric values using a DEE1 estimator calibrated on the paper's
// dataset (or a user database).
//
// Usage:
//
//	ucestimate -stmts 1200 -faninlc 8000                relative estimate (rho=1)
//	ucestimate -stmts 1200 -faninlc 8000 -rho 1.3       team-adjusted estimate
//	ucestimate -db my.csv -stmts 1200 -faninlc 8000     calibrate on your own data
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	stmts := flag.Float64("stmts", 0, "HDL statement count of the component")
	fanin := flag.Float64("faninlc", 0, "logic-cone fan-in total of the component")
	rho := flag.Float64("rho", 1, "team productivity factor (1 = relative estimate)")
	dbPath := flag.String("db", "", "CSV measurement database (default: the paper's)")
	flag.Parse()

	if err := run(*stmts, *fanin, *rho, *dbPath); err != nil {
		fmt.Fprintln(os.Stderr, "ucestimate:", err)
		os.Exit(1)
	}
}

func run(stmts, fanin, rho float64, dbPath string) error {
	if stmts <= 0 || fanin <= 0 {
		return fmt.Errorf("need positive -stmts and -faninlc values")
	}
	comps := dataset.Paper()
	if dbPath != "" {
		f, err := os.Open(dbPath)
		if err != nil {
			return err
		}
		defer f.Close()
		comps, err = dataset.ReadCSV(f)
		if err != nil {
			return err
		}
	}
	cal, err := core.CalibrateDEE1(comps)
	if err != nil {
		return err
	}
	est, err := cal.EstimateFromValues([]float64{stmts, fanin}, rho)
	if err != nil {
		return err
	}
	fmt.Printf("DEE1 estimate for Stmts=%.0f, FanInLC=%.0f, rho=%.2f:\n", stmts, fanin, rho)
	fmt.Printf("  median effort: %.1f person-months\n", est.Median)
	fmt.Printf("  mean effort:   %.1f person-months (Equation 4 correction)\n", est.Mean)
	fmt.Printf("  68%% interval:  %.1f .. %.1f person-months\n", est.CI68[0], est.CI68[1])
	fmt.Printf("  90%% interval:  %.1f .. %.1f person-months\n", est.CI90[0], est.CI90[1])
	if rho == 1 {
		fmt.Println("  (rho=1: treat as a relative estimate, per Section 3.1.1)")
	}
	return nil
}
