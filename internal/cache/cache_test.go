package cache

import (
	"encoding/gob"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

type payload struct {
	Name   string
	Values []int
}

func open(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyDerivation(t *testing.T) {
	if Key("a", "bc") == Key("ab", "c") {
		t.Error("length prefixing failed: shifted part boundaries collide")
	}
	if Key("x") != Key("x") {
		t.Error("key not deterministic")
	}
	if len(Key("x")) != 64 {
		t.Errorf("key is %d chars, want 64 hex", len(Key("x")))
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	c := open(t)
	key := Key("roundtrip")
	want := payload{Name: "n", Values: []int{1, 2, 3}}
	if err := Put(c, key, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !Get(c, key, &got) {
		t.Fatal("miss after put")
	}
	if got.Name != want.Name || len(got.Values) != 3 || got.Values[2] != 3 {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if Get(c, Key("other"), &got) {
		t.Error("hit on a key never put")
	}
}

func TestDoComputesOnceThenHits(t *testing.T) {
	c := open(t)
	key := Key("do")
	calls := 0
	compute := func() (payload, error) {
		calls++
		return payload{Name: "v"}, nil
	}
	v, hit, err := Do(c, key, compute)
	if err != nil || hit || v.Name != "v" {
		t.Fatalf("first Do: v=%+v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = Do(c, key, compute)
	if err != nil || !hit || v.Name != "v" {
		t.Fatalf("second Do: v=%+v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", s)
	}
}

func TestNilCacheJustComputes(t *testing.T) {
	v, hit, err := Do(nil, Key("k"), func() (int, error) { return 7, nil })
	if v != 7 || hit || err != nil {
		t.Errorf("nil cache: v=%d hit=%v err=%v", v, hit, err)
	}
}

func TestCorruptedEntryFallsBackToRecompute(t *testing.T) {
	c := open(t)
	key := Key("corrupt")
	if err := Put(c, key, payload{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func(path string) error{
		"garbage": func(p string) error { return os.WriteFile(p, []byte("not gob at all"), 0o644) },
		"truncated": func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		},
		"empty": func(p string) error { return os.WriteFile(p, nil, 0o644) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := Put(c, key, payload{Name: "good"}); err != nil {
				t.Fatal(err)
			}
			if err := corrupt(c.path(key)); err != nil {
				t.Fatal(err)
			}
			v, hit, err := Do(c, key, func() (payload, error) { return payload{Name: "recomputed"}, nil })
			if err != nil {
				t.Fatal(err)
			}
			if hit || v.Name != "recomputed" {
				t.Errorf("corrupt entry served as hit: v=%+v hit=%v", v, hit)
			}
			// The recompute must repair the entry.
			var got payload
			if !Get(c, key, &got) || got.Name != "recomputed" {
				t.Errorf("entry not repaired after recompute: %+v", got)
			}
		})
	}
	if s := c.Stats(); s.DecodeErrors == 0 {
		t.Error("corrupt entries not counted")
	}
}

func TestSchemaVersionBumpInvalidates(t *testing.T) {
	c := open(t)
	key := Key("schema")
	// Hand-write an entry with a future schema version at today's key:
	// the reader must ignore it (as it must ignore stale entries after
	// a real bump, whose keys also change).
	f, err := os.Create(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(header{Magic: magic, Schema: SchemaVersion + 1, Key: key}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(payload{Name: "future"}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var got payload
	if Get(c, key, &got) {
		t.Fatalf("entry with schema %d decoded by reader at schema %d", SchemaVersion+1, SchemaVersion)
	}
	if _, err := os.Stat(c.path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale-schema entry not deleted")
	}
}

func TestSingleFlight(t *testing.T) {
	c := open(t)
	key := Key("flight")
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]payload, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := Do(c, key, func() (payload, error) {
				calls.Add(1)
				<-gate // hold the flight open until everyone has joined
				return payload{Name: "shared"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times under concurrent Do, want 1", got)
	}
	for i := range results {
		if results[i].Name != "shared" {
			t.Errorf("goroutine %d got %+v", i, results[i])
		}
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := open(t)
	key := Key("err")
	boom := errors.New("boom")
	_, _, err := Do(c, key, func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := Do(c, key, func() (int, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Errorf("after failed compute: v=%d hit=%v err=%v", v, hit, err)
	}
}

func TestVerifyMode(t *testing.T) {
	c := open(t)
	c.SetVerify(true)
	key := Key("verify")
	if err := Put(c, key, payload{Name: "stored", Values: []int{1}}); err != nil {
		t.Fatal(err)
	}
	v, hit, err := Do(c, key, func() (payload, error) {
		return payload{Name: "stored", Values: []int{1}}, nil
	})
	if err != nil || !hit || v.Name != "stored" {
		t.Fatalf("matching verify: v=%+v hit=%v err=%v", v, hit, err)
	}
	_, _, err = Do(c, key, func() (payload, error) {
		return payload{Name: "different", Values: []int{1}}, nil
	})
	if !errors.Is(err, ErrVerifyMismatch) {
		t.Fatalf("mismatching verify returned %v, want ErrVerifyMismatch", err)
	}
	s := c.Stats()
	if s.VerifyChecks != 2 || s.VerifyMismatches != 1 {
		t.Errorf("stats = %+v, want 2 checks / 1 mismatch", s)
	}
}

func TestDoEqComparator(t *testing.T) {
	c := open(t)
	c.SetVerify(true)
	key := Key("doeq")
	if err := Put(c, key, payload{Name: "x", Values: []int{1}}); err != nil {
		t.Fatal(err)
	}
	// Comparator that only inspects Name: a Values difference passes.
	eq := func(cached, fresh payload) string {
		if cached.Name != fresh.Name {
			return "Name differs"
		}
		return ""
	}
	_, hit, err := DoEq(c, key, func() (payload, error) {
		return payload{Name: "x", Values: []int{999}}, nil
	}, eq)
	if err != nil || !hit {
		t.Fatalf("comparator verify: hit=%v err=%v", hit, err)
	}
	_, _, err = DoEq(c, key, func() (payload, error) {
		return payload{Name: "y"}, nil
	}, eq)
	if !errors.Is(err, ErrVerifyMismatch) {
		t.Fatalf("comparator mismatch returned %v", err)
	}
}
