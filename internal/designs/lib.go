package designs

// libSrc is the shared building-block library every component may
// instantiate: word-level muxes, adders, ALUs, shifters, comparators,
// register files, FIFOs, counters, and priority logic.
const libSrc = `
// ---------------------------------------------------------------
// µComplexity synthetic design library: common datapath blocks.
// ---------------------------------------------------------------

module lib_mux2 #(parameter W = 8) (
  input [W-1:0] a,
  input [W-1:0] b,
  input sel,
  output [W-1:0] y
);
  assign y = sel ? b : a;
endmodule

module lib_adder #(parameter W = 8) (
  input [W-1:0] a,
  input [W-1:0] b,
  input cin,
  output [W-1:0] s,
  output cout
);
  wire [W:0] full;
  assign full = a + b + cin;
  assign s = full[W-1:0];
  assign cout = full[W];
endmodule

module lib_alu #(parameter W = 16) (
  input [2:0] op,
  input [W-1:0] a,
  input [W-1:0] b,
  output reg [W-1:0] y,
  output zero
);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = a < b ? {W{1'b0}} + 1 : {W{1'b0}};
      3'd6: y = a << 1;
      default: y = a >> 1;
    endcase
  end
  assign zero = y == 0;
endmodule

module lib_shifter #(parameter W = 16, parameter SW = 4) (
  input [W-1:0] a,
  input [SW-1:0] amount,
  input dir,          // 0 = left, 1 = right
  output [W-1:0] y
);
  wire [W-1:0] left, right;
  assign left = a << amount;
  assign right = a >> amount;
  assign y = dir ? right : left;
endmodule

module lib_eq #(parameter W = 8) (
  input [W-1:0] a,
  input [W-1:0] b,
  output y
);
  assign y = a == b;
endmodule

// Two-read one-write register file built on a memory array.
module lib_regfile #(parameter W = 16, parameter AW = 4) (
  input clk,
  input we,
  input [AW-1:0] waddr,
  input [W-1:0] wdata,
  input [AW-1:0] raddr1,
  input [AW-1:0] raddr2,
  output [W-1:0] rdata1,
  output [W-1:0] rdata2
);
  reg [W-1:0] regs [0:(1 << AW) - 1];
  always @(posedge clk) begin
    if (we)
      regs[waddr] <= wdata;
  end
  assign rdata1 = regs[raddr1];
  assign rdata2 = regs[raddr2];
endmodule

// Synchronous FIFO with registered pointers and a RAM buffer.
module lib_fifo #(parameter W = 16, parameter AW = 3) (
  input clk,
  input rst,
  input push,
  input pop,
  input [W-1:0] din,
  output [W-1:0] dout,
  output full,
  output empty,
  output [AW:0] count
);
  reg [AW:0] wptr, rptr;
  reg [W-1:0] buffer [0:(1 << AW) - 1];
  wire do_push, do_pop;
  assign full = count == (1 << AW);
  assign empty = count == 0;
  assign count = wptr - rptr;
  assign do_push = push && !full;
  assign do_pop = pop && !empty;
  always @(posedge clk) begin
    if (rst) begin
      wptr <= 0;
      rptr <= 0;
    end else begin
      if (do_push) begin
        buffer[wptr[AW-1:0]] <= din;
        wptr <= wptr + 1;
      end
      if (do_pop)
        rptr <= rptr + 1;
    end
  end
  assign dout = buffer[rptr[AW-1:0]];
endmodule

module lib_counter #(parameter W = 8) (
  input clk,
  input rst,
  input en,
  output reg [W-1:0] q
);
  always @(posedge clk) begin
    if (rst)
      q <= 0;
    else if (en)
      q <= q + 1;
  end
endmodule

// Priority encoder over 8 request lines (lowest index wins).
module lib_prienc8 (
  input [7:0] req,
  output reg [2:0] grant,
  output valid
);
  always @(*) begin
    grant = 3'd0;
    if (req[0]) grant = 3'd0;
    else if (req[1]) grant = 3'd1;
    else if (req[2]) grant = 3'd2;
    else if (req[3]) grant = 3'd3;
    else if (req[4]) grant = 3'd4;
    else if (req[5]) grant = 3'd5;
    else if (req[6]) grant = 3'd6;
    else grant = 3'd7;
  end
  assign valid = req != 0;
endmodule

// Binary-to-one-hot decoder.
module lib_decoder #(parameter AW = 3) (
  input [AW-1:0] a,
  input en,
  output [(1 << AW) - 1:0] y
);
  assign y = en ? ({{(1 << AW) - 1{1'b0}}, 1'b1} << a) : 0;
endmodule

// Saturating 2-bit branch-prediction counter.
module lib_sat2 (
  input clk,
  input rst,
  input update,
  input taken,
  output prediction,
  output [1:0] state
);
  reg [1:0] ctr;
  always @(posedge clk) begin
    if (rst)
      ctr <= 2'd1;
    else if (update) begin
      if (taken && ctr != 2'd3)
        ctr <= ctr + 1;
      else if (!taken && ctr != 2'd0)
        ctr <= ctr - 1;
    end
  end
  assign prediction = ctr[1];
  assign state = ctr;
endmodule

// One scoreboard/valid-bit cell with set/clear.
module lib_vbit (
  input clk,
  input rst,
  input set,
  input clear,
  output reg q
);
  always @(posedge clk) begin
    if (rst)
      q <= 0;
    else if (clear)
      q <= 0;
    else if (set)
      q <= 1;
  end
endmodule
`
