package sim

import (
	"strings"
	"testing"

	"repro/internal/hdl"
	"repro/internal/synth"
)

func TestVCDWriterProducesValidDump(t *testing.T) {
	d, err := hdl.ParseDesign(map[string]string{"t.v": `
module g (input clk, input en, output reg [3:0] q);
  always @(posedge clk) if (en) q <= q + 1;
endmodule`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	gsim, err := NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	vcd := NewVCDWriter(&buf, gsim, "g")
	gsim.SetInput("en", 1)
	for i := 0; i < 4; i++ {
		if err := gsim.Step(); err != nil {
			t.Fatal(err)
		}
		vcd.Sample()
	}
	// Hold: no q changes for two more cycles.
	gsim.SetInput("en", 0)
	for i := 0; i < 2; i++ {
		gsim.Step()
		vcd.Sample()
	}
	if err := vcd.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module g $end",
		"$var wire 4", // the q vector
		"$var wire 1", // clk / en
		"$enddefinitions", "$dumpvars",
		"#0", "b1 ", // q reaches 1 at some timestamp
		"b100 ", // and 4 eventually
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Timestamps strictly increase and no change records after q holds.
	if strings.Contains(out, "#5\n") && strings.Index(out, "#5\n") != strings.LastIndex(out, "#") {
		t.Log(out)
	}
}
