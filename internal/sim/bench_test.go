package sim

import (
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/synth"
)

const benchCore = `
module bench (input clk, input rst, input [15:0] din, output reg [15:0] acc);
  reg [15:0] stage1, stage2;
  always @(posedge clk) begin
    if (rst) begin
      stage1 <= 0;
      stage2 <= 0;
      acc <= 0;
    end else begin
      stage1 <= din + 1;
      stage2 <= stage1 * 3;
      acc <= acc + stage2;
    end
  end
endmodule`

func benchDesign(b *testing.B) *hdl.Design {
	b.Helper()
	d, err := hdl.ParseDesign(map[string]string{"b.v": benchCore})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkRTLSimStep(b *testing.B) {
	b.ReportAllocs()
	d := benchDesign(b)
	inst, _, err := elab.Elaborate(d, "bench", nil)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRTLSim(inst)
	if err != nil {
		b.Fatal(err)
	}
	r.SetInput("din", 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGateSimStep(b *testing.B) {
	b.ReportAllocs()
	d := benchDesign(b)
	res, err := synth.Synthesize(d, "bench", nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGateSim(res.Optimized)
	if err != nil {
		b.Fatal(err)
	}
	g.SetInput("din", 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
