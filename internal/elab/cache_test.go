package elab

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/designs"
)

// compareInstances fails the test unless the two instance trees are
// structurally identical: same modules, paths, parameters, net and
// memory shapes, behavioral item counts, and children, recursively.
func compareInstances(t *testing.T, label string, a, b *Instance) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one tree is nil (a=%v b=%v)", label, a, b)
	}
	if a == nil {
		return
	}
	if a.Module.Name != b.Module.Name || a.Path != b.Path {
		t.Fatalf("%s: module/path mismatch: %s at %s vs %s at %s",
			label, a.Module.Name, a.Path, b.Module.Name, b.Path)
	}
	if len(a.Params) != len(b.Params) {
		t.Fatalf("%s: %s: param count %d vs %d", label, a.Path, len(a.Params), len(b.Params))
	}
	for k, v := range a.Params {
		if b.Params[k] != v {
			t.Fatalf("%s: %s: param %s = %d vs %d", label, a.Path, k, v, b.Params[k])
		}
	}
	if len(a.Nets) != len(b.Nets) {
		t.Fatalf("%s: %s: net count %d vs %d", label, a.Path, len(a.Nets), len(b.Nets))
	}
	for name, n := range a.Nets {
		o := b.Nets[name]
		if o == nil || o.Width != n.Width || o.LSB != n.LSB || o.Kind != n.Kind || o.IsPort != n.IsPort {
			t.Fatalf("%s: %s: net %s = %+v vs %+v", label, a.Path, name, n, o)
		}
	}
	if len(a.Mems) != len(b.Mems) {
		t.Fatalf("%s: %s: mem count %d vs %d", label, a.Path, len(a.Mems), len(b.Mems))
	}
	for name, m := range a.Mems {
		o := b.Mems[name]
		if o == nil || o.Width != m.Width || o.Depth != m.Depth || o.MinIdx != m.MinIdx {
			t.Fatalf("%s: %s: mem %s = %+v vs %+v", label, a.Path, name, m, o)
		}
	}
	if len(a.Assigns) != len(b.Assigns) || len(a.Alwayses) != len(b.Alwayses) {
		t.Fatalf("%s: %s: assigns %d/%d alwayses %d/%d", label, a.Path,
			len(a.Assigns), len(b.Assigns), len(a.Alwayses), len(b.Alwayses))
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: %s: child count %d vs %d", label, a.Path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		ca, cb := a.Children[i], b.Children[i]
		if ca.Name != cb.Name || len(ca.Ports) != len(cb.Ports) {
			t.Fatalf("%s: %s: child %d = %s(%d ports) vs %s(%d ports)",
				label, a.Path, i, ca.Name, len(ca.Ports), cb.Name, len(cb.Ports))
		}
		compareInstances(t, label, ca.Inst, cb.Inst)
	}
}

// TestCacheCorpusBitIdentical pins the tentpole invariant corpus-wide:
// for every synthetic component, cached and report-only elaborations
// are bit-identical to plain uncached elaboration — same instance
// trees, same construct reports — and repeat lookups serve the same
// shared tree.
func TestCacheCorpusBitIdentical(t *testing.T) {
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		plain, plainRep, err := Elaborate(d, c.Top, nil)
		if err != nil {
			t.Fatalf("%s: uncached: %v", c.Label(), err)
		}

		cacheObj := NewCache()
		cached, cachedRep, err := ElaborateOpts(d, c.Top, nil, Options{Cache: cacheObj})
		if err != nil {
			t.Fatalf("%s: cached: %v", c.Label(), err)
		}
		if cachedRep.String() != plainRep.String() {
			t.Errorf("%s: cached report differs:\n%s\nvs\n%s", c.Label(), cachedRep, plainRep)
		}
		compareInstances(t, c.Label()+" cached-cold", plain, cached)

		// Second call: root tree hit, shared pointer.
		again, againRep, err := ElaborateOpts(d, c.Top, nil, Options{Cache: cacheObj})
		if err != nil {
			t.Fatalf("%s: cached warm: %v", c.Label(), err)
		}
		if again != cached {
			t.Errorf("%s: warm elaboration did not reuse the memoized root tree", c.Label())
		}
		if againRep.String() != plainRep.String() {
			t.Errorf("%s: warm report differs", c.Label())
		}

		// Report-only: nil instance, identical report — on a fresh cache
		// and on the warm one.
		for _, probe := range []*Cache{NewCache(), cacheObj} {
			inst, rep, err := ElaborateOpts(d, c.Top, nil, Options{Cache: probe, ReportOnly: true})
			if err != nil {
				t.Fatalf("%s: report-only: %v", c.Label(), err)
			}
			if inst != nil {
				t.Errorf("%s: report-only returned a non-nil instance", c.Label())
			}
			if rep.String() != plainRep.String() {
				t.Errorf("%s: report-only report differs:\n%s\nvs\n%s", c.Label(), rep, plainRep)
			}
		}

		// Bare report-only (no cache) must match too.
		inst, rep, err := ElaborateOpts(d, c.Top, nil, Options{ReportOnly: true})
		if err != nil {
			t.Fatalf("%s: bare report-only: %v", c.Label(), err)
		}
		if inst != nil || rep.String() != plainRep.String() {
			t.Errorf("%s: bare report-only diverged", c.Label())
		}
	}
}

// probeDesign has a parameterized top over two submodules, so nearby
// parameter points share the submodule subtrees.
const probeDesign = `
module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
  assign y = ~a;
endmodule
module pair #(parameter W = 4, parameter N = 2) (input [W-1:0] a, output [W-1:0] y);
  wire [W-1:0] t;
  leaf #(.W(W)) u0 (.a(a), .y(t));
  leaf #(.W(W)) u1 (.a(t), .y(y));
  genvar i;
  generate for (i = 0; i < N; i = i + 1) begin : g
    wire [W-1:0] w;
    assign w = a ^ t;
  end endgenerate
endmodule`

// TestCacheProbePattern replays the accounting search's access
// pattern: report-only probes of nearby parameter points against one
// session cache, each compared against a fresh uncached elaboration.
// Points that change only N reuse the leaf subtrees elaborated under
// the reference W.
func TestCacheProbePattern(t *testing.T) {
	d := design(t, map[string]string{"m.v": probeDesign})
	sess := NewCache()
	if _, _, err := ElaborateOpts(d, "pair", nil, Options{Cache: sess}); err != nil {
		t.Fatal(err)
	}
	base := sess.Stats()

	for _, p := range []map[string]int64{
		{"W": 4, "N": 0}, {"W": 4, "N": 1}, {"W": 4, "N": 3},
		{"W": 2, "N": 2}, {"W": 4, "N": 2},
	} {
		label := fmt.Sprintf("%v", p)
		_, rep, err := ElaborateOpts(d, "pair", p, Options{Cache: sess, ReportOnly: true})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		_, plainRep, err := Elaborate(d, "pair", p)
		if err != nil {
			t.Fatalf("%s: uncached: %v", label, err)
		}
		if rep.String() != plainRep.String() {
			t.Errorf("%s: probe report differs:\n%s\nvs\n%s", label, rep, plainRep)
		}
	}

	s := sess.Stats()
	if s.Hits <= base.Hits {
		t.Errorf("probes at unchanged-W points reused no subtrees: stats %+v", s)
	}
	// The final full build at the probed point reuses the reference's
	// leaf subtrees.
	inst, _, err := ElaborateOpts(d, "pair", map[string]int64{"W": 4, "N": 1}, Options{Cache: sess})
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := Elaborate(d, "pair", map[string]int64{"W": 4, "N": 1})
	if err != nil {
		t.Fatal(err)
	}
	compareInstances(t, "final build", plain, inst)
}

// TestCacheSharedConcurrent exercises one session cache from many
// goroutines mixing report-only probes and full builds (run under
// -race by scripts/ci.sh). Every result must match an uncached
// elaboration of the same point.
func TestCacheSharedConcurrent(t *testing.T) {
	d := design(t, map[string]string{"m.v": probeDesign})
	sess := NewCache()
	points := []map[string]int64{
		{"W": 2, "N": 0}, {"W": 2, "N": 2}, {"W": 4, "N": 1},
		{"W": 4, "N": 2}, {"W": 8, "N": 2}, {"W": 8, "N": 3},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*2*len(points))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, p := range points {
				reportOnly := (w+i)%2 == 0
				inst, rep, err := ElaborateOpts(d, "pair", p, Options{Cache: sess, ReportOnly: reportOnly})
				if err != nil {
					errs <- fmt.Errorf("worker %d point %v: %v", w, p, err)
					continue
				}
				if reportOnly && inst != nil {
					errs <- fmt.Errorf("worker %d point %v: report-only returned a tree", w, p)
				}
				_, plainRep, err := Elaborate(d, "pair", p)
				if err != nil {
					errs <- err
					continue
				}
				if rep.String() != plainRep.String() {
					errs <- fmt.Errorf("worker %d point %v: report mismatch", w, p)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheRepeatedInstanceNamesStayDistinct pins the duplicate-path
// guard: a design that reuses one instance name gets distinct child
// trees, exactly as uncached elaboration builds them, even with a
// session cache attached.
func TestCacheRepeatedInstanceNamesStayDistinct(t *testing.T) {
	d := design(t, map[string]string{"m.v": `
module leaf (input a, output y);
  assign y = ~a;
endmodule
module m (input a, output y);
  wire t;
  leaf u (.a(a), .y(t));
  leaf u (.a(t), .y(y));
endmodule`})
	plain, _, err := Elaborate(d, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	cached, _, err := ElaborateOpts(d, "m", nil, Options{Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	compareInstances(t, "duplicate names", plain, cached)
	if len(cached.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(cached.Children))
	}
	if cached.Children[0].Inst == cached.Children[1].Inst {
		t.Error("repeated instance name shares one cached tree; synthesis needs distinct instances per path")
	}
}

// TestCacheErrorParity pins that cached and report-only elaborations
// fail exactly like uncached ones — same error text — for both a
// parameter-dependent range error and a recursive instantiation.
func TestCacheErrorParity(t *testing.T) {
	cases := map[string]string{
		"range": `
module m #(parameter W = 1) (input [W-2:0] a, output y);
  assign y = a[0];
endmodule`,
		"recursion": `
module m (input a, output y);
  m u (.a(a), .y(y));
endmodule`,
	}
	for name, src := range cases {
		d := design(t, map[string]string{"m.v": src})
		_, _, plainErr := Elaborate(d, "m", nil)
		if plainErr == nil {
			t.Fatalf("%s: uncached elaboration unexpectedly succeeded", name)
		}
		for _, reportOnly := range []bool{false, true} {
			_, _, err := ElaborateOpts(d, "m", nil, Options{Cache: NewCache(), ReportOnly: reportOnly})
			if err == nil || err.Error() != plainErr.Error() {
				t.Errorf("%s (reportOnly=%v): error %q, uncached %q", name, reportOnly, err, plainErr)
			}
		}
	}
}

// TestParamSignature pins the signature format both internal/synth's
// single-instance rule and the session cache key by.
func TestParamSignature(t *testing.T) {
	got := ParamSignature("alu", map[string]int64{"W": 32, "N": 4, "A": -1})
	want := "alu;A=-1;N=4;W=32"
	if got != want {
		t.Errorf("ParamSignature = %q, want %q", got, want)
	}
	if got := ParamSignature("alu", nil); got != "alu" {
		t.Errorf("ParamSignature(no params) = %q", got)
	}
}
