package measure

// The parameter-minimization search of the accounting procedure's
// scaling rule (Section 2.2 of the paper) lives here so that both the
// per-component path (internal/accounting, which delegates) and the
// batch measurement Session can run it against a shared session
// elaboration cache without an import cycle.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/parallel"
	"repro/internal/synth"
)

// elabMemo caches the point verdicts of one (design, module) pair
// across the minimization search. Keys are synth.ParamSignature
// strings, so two candidate maps that resolve to the same design point
// share one entry. No per-point instance trees are retained: probes
// run in report-only mode against a session-scoped subtree cache
// (sess), which also lets the final measurement's full elaboration
// reuse every subtree the winning parameters left unchanged from the
// reference.
type elabMemo struct {
	design *hdl.Design
	module string
	ref    *elab.Report
	sess   *elab.Cache

	mu      sync.Mutex
	verdict map[string]bool
	hits    int
	misses  int
}

// compatible reports whether the candidate parameter point elaborates
// to a structure compatible with the reference elaboration, memoized.
// Elaboration failures count as incompatible, as in the paper's rule
// (the smallest value must still elaborate). Probes are report-only:
// only the construct Report is computed, and subtrees whose resolved
// parameter bindings were already elaborated this session are skipped
// entirely, so a probe costs proportional to what the candidate's
// changed parameter actually reaches.
func (m *elabMemo) compatible(cand map[string]int64) bool {
	sig := synth.ParamSignature(m.module, cand)
	m.mu.Lock()
	if v, ok := m.verdict[sig]; ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	m.misses++
	m.mu.Unlock()

	_, rep, err := elab.ElaborateOpts(m.design, m.module, cand, elab.Options{
		Cache:      m.sess,
		ReportOnly: true,
	})
	ok := false
	if err == nil {
		ok, _ = m.ref.CompatibleWith(rep)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if v, seen := m.verdict[sig]; seen {
		// A concurrent probe of the same point won the race; both
		// computed the same deterministic verdict.
		return v
	}
	m.verdict[sig] = ok
	return ok
}

// counters returns the memo's hit/miss tallies.
func (m *elabMemo) counters() (hits, misses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// MinimizeParamsN returns, for each header parameter of the module,
// the smallest value compatible with the module's reference
// elaboration (its declared defaults): no generate loop that ran
// collapses to zero iterations, no constant conditional flips its
// branch, no memory degenerates, and elaboration still succeeds.
//
// The search lowers one parameter at a time, holding the others at
// their current values, and repeats until a fixpoint (parameters may
// interact through derived expressions). Candidate probes run on a
// bounded pool (0 = GOMAXPROCS, 1 = exact sequential path); the search
// visits candidates lowest-first in batches, so the result is
// identical for every worker count.
func MinimizeParamsN(design *hdl.Design, module string, concurrency int) (map[string]int64, error) {
	params, _, err := minimizeParams(design, module, concurrency, nil)
	return params, err
}

// minimizeParams runs the search. When sess is nil a fresh session
// elaboration cache is created for this search alone; a Session passes
// its shared cache so reference elaborations and probes reuse every
// subtree any earlier component in the batch already elaborated. The
// minimized parameters are bit-identical either way: cached report
// fragments and trees are themselves bit-identical to uncached
// elaboration (the internal/elab invariant), so every compatibility
// verdict — and therefore the search's landing point — is unchanged.
func minimizeParams(design *hdl.Design, module string, concurrency int, sess *elab.Cache) (map[string]int64, *elabMemo, error) {
	mod, err := design.Module(module)
	if err != nil {
		return nil, nil, err
	}
	// The session cache memoizes every subtree elaborated during this
	// search, keyed by resolved parameter binding. The reference
	// elaboration populates it, report-only probes draw on it, and the
	// final full elaboration of the winning point reuses each subtree
	// the minimized parameters did not touch.
	if sess == nil {
		sess = elab.NewCache()
	}
	_, refReport, err := elab.ElaborateOpts(design, module, nil, elab.Options{Cache: sess})
	if err != nil {
		return nil, nil, fmt.Errorf("accounting: reference elaboration of %s: %w", module, err)
	}
	// Start from the declared defaults.
	current, err := defaultParams(mod)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)

	memo := &elabMemo{
		design:  design,
		module:  module,
		ref:     refReport,
		sess:    sess,
		verdict: map[string]bool{},
	}
	// Seed with the reference point: the defaults are compatible with
	// themselves, and if nothing minimizes, the final measurement's
	// elaboration is answered whole from the session cache.
	memo.verdict[synth.ParamSignature(module, current)] = true

	for round := 0; round < 5; round++ {
		changed := false
		for _, name := range names {
			// Candidates strictly below the current value, ascending;
			// the search keeps the lowest compatible one, exactly like
			// a sequential first-fit scan.
			var below []int64
			for _, v := range candidateValues(current[name]) {
				if v >= current[name] {
					break
				}
				below = append(below, v)
			}
			idx, err := parallel.FirstMatch(concurrency, len(below), func(i int) (bool, error) {
				cand := make(map[string]int64, len(current))
				for k, cv := range current {
					cand[k] = cv
				}
				cand[name] = below[i]
				return memo.compatible(cand), nil
			})
			if err != nil {
				return nil, nil, err
			}
			if idx >= 0 {
				current[name] = below[idx]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return current, memo, nil
}

// defaultParams resolves a module's declared parameter defaults left
// to right (defaults may reference earlier parameters), exactly as
// elaboration does.
func defaultParams(mod *hdl.Module) (map[string]int64, error) {
	params := make(map[string]int64, len(mod.Params))
	env := elab.NewEnv(nil)
	for _, p := range mod.Params {
		v, err := elab.Eval(p.Value, env)
		if err != nil {
			return nil, fmt.Errorf("accounting: default of %s.%s: %w", mod.Name, p.Name, err)
		}
		params[p.Name] = v
		if err := env.Define(p.Name, v); err != nil {
			return nil, err
		}
	}
	return params, nil
}

// candidateValues returns ascending candidate values to try for a
// parameter whose current value is cur: small integers exhaustively,
// then powers of two below it.
func candidateValues(cur int64) []int64 {
	var out []int64
	limit := cur
	if limit > 64 {
		limit = 64
	}
	for v := int64(0); v <= limit; v++ {
		out = append(out, v)
	}
	for v := int64(128); v < cur; v *= 2 {
		out = append(out, v)
	}
	return out
}
