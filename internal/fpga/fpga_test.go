package fpga

import (
	"testing"

	"repro/internal/cones"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func netlistOf(t *testing.T, src, top string, overrides map[string]int64) *netlist.Netlist {
	t.Helper()
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(d, top, overrides)
	if err != nil {
		t.Fatal(err)
	}
	return r.Optimized
}

func TestMapSmallConeFitsOneLUT(t *testing.T) {
	// y = (a&b)|(c&d): 4 leaves fit a single 8-LUT.
	nl := netlistOf(t, `
module m (input a, b, c, d, output y);
  assign y = (a & b) | (c & d);
endmodule`, "m", nil)
	mp := Map(nl, Options{})
	if len(mp.LUTs) != 1 {
		t.Fatalf("LUTs = %d, want 1: %+v", len(mp.LUTs), mp.LUTs)
	}
	if mp.LUTInputSum != 4 {
		t.Errorf("LUT input sum = %d, want 4", mp.LUTInputSum)
	}
	if mp.Levels != 1 {
		t.Errorf("levels = %d, want 1", mp.Levels)
	}
}

func TestMapWideConeCascades(t *testing.T) {
	// A 16-input reduction cannot fit one 8-LUT.
	nl := netlistOf(t, `
module m (input [15:0] a, output y);
  assign y = &a;
endmodule`, "m", nil)
	mp := Map(nl, Options{})
	if len(mp.LUTs) < 2 {
		t.Fatalf("LUTs = %d, want >= 2 (cascade)", len(mp.LUTs))
	}
	if mp.Levels < 2 {
		t.Errorf("levels = %d, want >= 2", mp.Levels)
	}
	if mp.LUTInputSum < 16 {
		t.Errorf("LUT input sum = %d, want >= 16", mp.LUTInputSum)
	}
}

func TestMapSmallerKGivesMoreLUTs(t *testing.T) {
	nl := netlistOf(t, `
module m (input [15:0] a, b, output [15:0] s);
  assign s = a + b;
endmodule`, "m", nil)
	k8 := Map(nl, Options{K: 8})
	k4 := Map(nl, Options{K: 4})
	if len(k4.LUTs) <= len(k8.LUTs) {
		t.Errorf("K=4 LUTs (%d) must exceed K=8 LUTs (%d)", len(k4.LUTs), len(k8.LUTs))
	}
	if k4.Levels < k8.Levels {
		t.Errorf("K=4 levels (%d) must be >= K=8 levels (%d)", k4.Levels, k8.Levels)
	}
}

func TestMapFreqDecreasesWithDepth(t *testing.T) {
	src := `
module add #(parameter W = 8) (input [W-1:0] a, b, output [W-1:0] s);
  assign s = a + b;
endmodule`
	f8 := Map(netlistOf(t, src, "add", map[string]int64{"W": 8}), Options{}).FreqMHz
	f32 := Map(netlistOf(t, src, "add", map[string]int64{"W": 32}), Options{}).FreqMHz
	if f32 >= f8 {
		t.Errorf("wider adder must be slower: f8=%v f32=%v", f8, f32)
	}
	if f8 <= 0 || f8 > 2000 {
		t.Errorf("f8 = %v MHz not plausible", f8)
	}
}

func TestMapCountsFFs(t *testing.T) {
	nl := netlistOf(t, `
module m (input clk, input [4:0] d, output reg [4:0] q);
  always @(posedge clk) q <= d;
endmodule`, "m", nil)
	mp := Map(nl, Options{})
	if mp.FFs != 5 {
		t.Errorf("FFs = %d, want 5", mp.FFs)
	}
	// A pure register has no LUTs (D comes straight from inputs).
	if len(mp.LUTs) != 0 {
		t.Errorf("LUTs = %d, want 0", len(mp.LUTs))
	}
	if mp.Levels != 0 {
		t.Errorf("levels = %d, want 0", mp.Levels)
	}
}

func TestMapRAMAddsAccessTime(t *testing.T) {
	ramSrc := `
module m (input clk, we, input [1:0] wa, ra, input [3:0] wd, output [3:0] rd);
  reg [3:0] mem [0:3];
  always @(posedge clk) if (we) mem[wa] <= wd;
  assign rd = mem[ra];
endmodule`
	plainSrc := `
module m (input [3:0] a, output [3:0] y);
  assign y = ~a;
endmodule`
	fRAM := Map(netlistOf(t, ramSrc, "m", nil), Options{}).FreqMHz
	fPlain := Map(netlistOf(t, plainSrc, "m", nil), Options{}).FreqMHz
	if fRAM >= fPlain {
		t.Errorf("RAM access must slow the clock: %v vs %v", fRAM, fPlain)
	}
}

func TestLUTInputSumApproximatesExactFanInLC(t *testing.T) {
	// The paper's observation: the LUT-input approximation is close to
	// the true cone fan-in when cascading is rare. For a modest design
	// the two must be within 2× of each other.
	nl := netlistOf(t, `
module m (input clk, input [7:0] a, b, input [1:0] op, output reg [7:0] y);
  always @(posedge clk) begin
    case (op)
      2'd0: y <= a + b;
      2'd1: y <= a & b;
      2'd2: y <= a | b;
      default: y <= a ^ b;
    endcase
  end
endmodule`, "m", nil)
	exact := cones.Analyze(nl).FanInLC
	approx := Map(nl, Options{}).LUTInputSum
	if exact == 0 || approx == 0 {
		t.Fatalf("degenerate metrics: exact=%d approx=%d", exact, approx)
	}
	ratio := float64(approx) / float64(exact)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("LUT approximation ratio %.2f out of range (exact=%d approx=%d)", ratio, exact, approx)
	}
}
