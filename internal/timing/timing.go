// Package timing performs static timing analysis over a synthesized
// netlist with standard-cell delays — the back-end awareness the paper
// calls out as future work: "varying the value of certain parameters
// may have implications on the difficulty of timing closure … This
// issue suggests the need for future design effort estimators that are
// aware of back-end physical design and timing concerns" (§2.5).
//
// The analysis computes, for every endpoint (primary output, FF/latch
// data input, RAM input pin), the longest combinational arrival time
// under the cell library's delays, and summarizes the design's timing
// profile: the critical path, the achievable ASIC frequency, and the
// count of near-critical endpoints (paths within 10% of the worst) —
// a proxy for how many logic cones a timing-closure effort would have
// to restructure.
package timing

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/stdcell"
)

// PathReport is one endpoint's timing.
type PathReport struct {
	Endpoint  string
	ArrivalNs float64
}

// Analysis summarizes the design's static timing.
type Analysis struct {
	// CriticalNs is the longest register-to-register (or input-to-
	// output) combinational delay, including clk-to-q and setup.
	CriticalNs float64
	// FreqMHz is 1000/CriticalNs.
	FreqMHz float64
	// NearCritical counts endpoints within 10% of the critical path —
	// the cones timing closure would fight with.
	NearCritical int
	// Endpoints holds every endpoint's arrival time, sorted slowest
	// first.
	Endpoints []PathReport
}

// Constants of the flop timing model (ns), matching the FPGA model's
// structure but with ASIC-scale values.
const (
	clkToQ = 0.20
	setup  = 0.10
)

// Analyze runs static timing over the netlist with the given library.
func Analyze(n *netlist.Netlist, lib *stdcell.Library) *Analysis {
	arrival := make([]float64, n.NumNets())
	computed := make([]bool, n.NumNets())

	// Leaves launch at clk-to-q (sequential outputs, RAM reads) or 0
	// (primary inputs, constants).
	for i := range arrival {
		arrival[i] = 0
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Type.IsSequential() {
			arrival[c.Out] = clkToQ
			computed[c.Out] = true
		}
	}
	for _, r := range n.RAMs {
		for _, rp := range r.ReadPorts {
			for _, o := range rp.Out {
				arrival[o] = clkToQ + lib.RAMAccessDelay
				computed[o] = true
			}
		}
	}

	order, err := n.TopoOrder()
	if err != nil {
		return &Analysis{}
	}
	for _, ci := range order {
		c := &n.Cells[ci]
		worst := 0.0
		for _, in := range c.Inputs() {
			if arrival[in] > worst {
				worst = arrival[in]
			}
		}
		arrival[c.Out] = worst + lib.CellParams(c.Type).Delay
		computed[c.Out] = true
	}

	an := &Analysis{}
	add := func(endpoint string, id netlist.NetID, extra float64) {
		if id == netlist.Nil {
			return
		}
		an.Endpoints = append(an.Endpoints, PathReport{
			Endpoint:  endpoint,
			ArrivalNs: arrival[id] + extra,
		})
	}
	for _, p := range n.Outputs {
		add("out:"+p.Name, p.Net, 0)
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Type.IsSequential() {
			add("seq:"+c.Type.String(), c.In[0], setup)
			if c.Type == netlist.Latch {
				add("seq:LATCH.en", c.In[1], setup)
			}
		}
	}
	for _, r := range n.RAMs {
		for _, wp := range r.WritePorts {
			add("ram:"+r.Name+":wen", wp.En, setup)
			for _, b := range wp.Addr {
				add("ram:"+r.Name+":waddr", b, setup)
			}
			for _, b := range wp.Data {
				add("ram:"+r.Name+":wdata", b, setup)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				add("ram:"+r.Name+":raddr", b, setup)
			}
		}
	}
	sort.Slice(an.Endpoints, func(i, j int) bool {
		return an.Endpoints[i].ArrivalNs > an.Endpoints[j].ArrivalNs
	})
	if len(an.Endpoints) > 0 {
		an.CriticalNs = an.Endpoints[0].ArrivalNs
		if an.CriticalNs > 0 {
			an.FreqMHz = 1000.0 / an.CriticalNs
		}
		threshold := an.CriticalNs * 0.9
		for _, e := range an.Endpoints {
			if e.ArrivalNs >= threshold {
				an.NearCritical++
			} else {
				break
			}
		}
	}
	return an
}
