package measure_test

import (
	"fmt"
	"maps"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/hdl"
	"repro/internal/measure"
)

// sameResult fails the test unless two component measurements are
// bit-identical in everything paper-facing: the full metrics struct,
// the minimized parameters, the accounting counts, and the optimized
// netlist structure.
func sameResult(t *testing.T, label string, got, want *measure.ComponentResult) {
	t.Helper()
	if *got.Metrics != *want.Metrics {
		t.Errorf("%s: metrics differ:\n got %+v\nwant %+v", label, *got.Metrics, *want.Metrics)
	}
	if !maps.Equal(got.MinimizedParams, want.MinimizedParams) {
		t.Errorf("%s: minimized parameters differ: got %v, want %v", label, got.MinimizedParams, want.MinimizedParams)
	}
	if got.InstanceCount != want.InstanceCount {
		t.Errorf("%s: instance count %d, want %d", label, got.InstanceCount, want.InstanceCount)
	}
	if got.DedupedInstances != want.DedupedInstances {
		t.Errorf("%s: deduped %d, want %d", label, got.DedupedInstances, want.DedupedInstances)
	}
	if g, w := got.Synth.Optimized.Hash(), want.Synth.Optimized.Hash(); g != w {
		t.Errorf("%s: optimized netlist hash %s, want %s", label, g, w)
	}
}

// TestSessionMatchesPerComponentCorpus is the golden differential test
// of the batch path: every corpus component, measured with and without
// the accounting procedure through one Session over the full corpus
// design, must be bit-identical to the per-component MeasureComponent
// path on the component's own two-file design — at concurrency 1 and
// 8, with the disk cache off, cold, and warm. The warm batch must be
// answered entirely from disk: nothing planned, nothing synthesized,
// zero cache misses.
func TestSessionMatchesPerComponentCorpus(t *testing.T) {
	comps := designs.All()
	units := make([]measure.Unit, 0, 2*len(comps))
	for _, acct := range []bool{true, false} {
		for _, c := range comps {
			units = append(units, measure.Unit{Top: c.Top, UseAccounting: acct})
		}
	}

	// Reference: the per-component path, each component on its own
	// parsed design, sequential, no cache.
	want := make([]*measure.ComponentResult, len(units))
	for i, c := range append(append([]designs.Component{}, comps...), comps...) {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := measure.MeasureComponent(d, c.Top, units[i].UseAccounting, measure.Options{Concurrency: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		want[i] = res
	}

	full, err := designs.FullDesign()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			check := func(t *testing.T, got []*measure.ComponentResult) {
				t.Helper()
				if len(got) != len(units) {
					t.Fatalf("%d results for %d units", len(got), len(units))
				}
				for i, u := range units {
					sameResult(t, fmt.Sprintf("%s(acct=%t)", u.Top, u.UseAccounting), got[i], want[i])
				}
			}

			t.Run("cache=off", func(t *testing.T) {
				sess := measure.NewSession(full)
				got, err := sess.MeasureAll(units, measure.Options{Concurrency: workers})
				if err != nil {
					t.Fatal(err)
				}
				check(t, got)
				s := sess.Stats()
				if s.Components != len(units) || s.Planned != len(units) {
					t.Errorf("stats %+v: want %d components planned", s, len(units))
				}
				if s.Synthesized+s.Shared != s.Planned {
					t.Errorf("stats %+v: synthesized+shared != planned", s)
				}
				if s.Shared == 0 {
					t.Errorf("stats %+v: the corpus has at least one shareable signature (minimization landing on defaults with no duplicate instances)", s)
				}
			})

			t.Run("cache=cold+warm", func(t *testing.T) {
				dir := t.TempDir()
				cold, err := cache.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				sess := measure.NewSession(full)
				got, err := sess.MeasureAll(units, measure.Options{Concurrency: workers, Cache: cold})
				if err != nil {
					t.Fatal(err)
				}
				check(t, got)
				// Cold traffic splits by kind: every unit misses its
				// component record, and every distinct signature the
				// session synthesized misses (then writes) its "sig"
				// record.
				synthesized := int64(sess.Stats().Synthesized)
				if cs := cold.Stats(); cs.Hits != 0 || cs.Misses != int64(len(units))+synthesized {
					t.Errorf("cold cache stats %+v: want 0 hits, %d misses", cs, int64(len(units))+synthesized)
				}
				ks := cold.KindStats()
				if kc := ks["component"]; kc.Hits != 0 || kc.Misses != int64(len(units)) || kc.Puts != int64(len(units)) {
					t.Errorf("cold component-kind counters %+v: want 0/%d/%d", kc, len(units), len(units))
				}
				if kc := ks["sig"]; kc.Hits != 0 || kc.Misses != synthesized || kc.Puts != synthesized {
					t.Errorf("cold sig-kind counters %+v: want 0/%d/%d", kc, synthesized, synthesized)
				}

				// The per-component path on the same parsed design reads
				// the entries the batch just wrote.
				warm0, err := cache.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				one, err := measure.MeasureComponent(full, comps[0].Top, true, measure.Options{Concurrency: 1, Cache: warm0})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, comps[0].Label()+"(per-component warm)", one, want[0])
				if cs := warm0.Stats(); cs.Hits != 1 || cs.Misses != 0 {
					t.Errorf("per-component warm read: stats %+v, want exactly one hit", cs)
				}

				warm, err := cache.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				sess2 := measure.NewSession(full)
				got2, err := sess2.MeasureAll(units, measure.Options{Concurrency: workers, Cache: warm})
				if err != nil {
					t.Fatal(err)
				}
				check(t, got2)
				if s := sess2.Stats(); s.Components != len(units) || s.Planned != 0 || s.Synthesized != 0 {
					t.Errorf("warm session stats %+v: want all %d units answered from disk", s, len(units))
				}
				if cs := warm.Stats(); cs.Misses != 0 || cs.Hits != int64(len(units)) {
					t.Errorf("warm cache stats %+v: want %d hits, 0 misses", cs, len(units))
				}
			})
		})
	}
}

// TestConcurrentSessionsSharePoolOnly stresses the process-wide
// workspace pool: several goroutines each run their own private
// Sessions — nothing shared between them except the pool — with
// 8 workers, and each goroutine churns through repeated
// session-create/measure/discard cycles so workspaces are returned
// (Reset) and re-taken across session and goroutine boundaries many
// times. Every cycle must be bit-identical to a sequential reference;
// combined with `go test -race` this pins that a recycled workspace
// carries no state from its previous owner.
func TestConcurrentSessionsSharePoolOnly(t *testing.T) {
	src := map[string]string{"t.v": `
module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
  assign y = ~a;
endmodule
module pair #(parameter W = 4) (input [W-1:0] a, b, output [W-1:0] y);
  wire [W-1:0] t1, t2;
  leaf #(.W(W)) u0 (.a(a), .y(t1));
  leaf #(.W(W)) u1 (.a(b), .y(t2));
  assign y = t1 & t2;
endmodule
module top #(parameter N = 6, parameter W = 4) (input [W-1:0] a, b, output [W-1:0] y);
  wire [W-1:0] t;
  pair #(.W(W)) u (.a(a), .b(b), .y(t));
  genvar i;
  generate for (i = 0; i < N; i = i + 1) begin : g
    assign y[i%W] = t[i%W];
  end endgenerate
endmodule`}
	d, err := hdl.ParseDesign(src)
	if err != nil {
		t.Fatal(err)
	}
	units := []measure.Unit{
		{Top: "top", UseAccounting: true},
		{Top: "top", UseAccounting: false},
		{Top: "pair", UseAccounting: true},
	}
	ref := measure.NewSession(d)
	want, err := ref.MeasureAll(units, measure.Options{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	const cycles = 3
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := range goroutines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cycle := range cycles {
				sess := measure.NewSession(d)
				got, err := sess.MeasureAll(units, measure.Options{Concurrency: 8})
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d cycle %d: %w", g, cycle, err)
					return
				}
				for i, u := range units {
					if *got[i].Metrics != *want[i].Metrics {
						errCh <- fmt.Errorf("goroutine %d cycle %d %s(acct=%t): metrics differ:\n got %+v\nwant %+v",
							g, cycle, u.Top, u.UseAccounting, *got[i].Metrics, *want[i].Metrics)
						return
					}
					if gh, wh := got[i].Synth.Optimized.Hash(), want[i].Synth.Optimized.Hash(); gh != wh {
						errCh <- fmt.Errorf("goroutine %d cycle %d %s(acct=%t): netlist hash %s, want %s",
							g, cycle, u.Top, u.UseAccounting, gh, wh)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestSessionConcurrentMeasureAll hammers one shared Session from 8
// goroutines measuring the same batch — the configuration the race
// detector checks in CI. Every goroutine must see results identical
// to a sequential private-session reference.
func TestSessionConcurrentMeasureAll(t *testing.T) {
	src := map[string]string{"t.v": `
module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
  assign y = ~a;
endmodule
module pair #(parameter W = 4) (input [W-1:0] a, b, output [W-1:0] y);
  wire [W-1:0] t1, t2;
  leaf #(.W(W)) u0 (.a(a), .y(t1));
  leaf #(.W(W)) u1 (.a(b), .y(t2));
  assign y = t1 & t2;
endmodule
module top #(parameter N = 6, parameter W = 4) (input [W-1:0] a, b, output [W-1:0] y);
  wire [W-1:0] t;
  pair #(.W(W)) u (.a(a), .b(b), .y(t));
  genvar i;
  generate for (i = 0; i < N; i = i + 1) begin : g
    assign y[i%W] = t[i%W];
  end endgenerate
endmodule`}
	d, err := hdl.ParseDesign(src)
	if err != nil {
		t.Fatal(err)
	}
	units := []measure.Unit{
		{Top: "top", UseAccounting: true},
		{Top: "top", UseAccounting: false},
		{Top: "pair", UseAccounting: true},
		{Top: "pair", UseAccounting: false},
	}
	ref := measure.NewSession(d)
	want, err := ref.MeasureAll(units, measure.Options{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}

	sess := measure.NewSession(d)
	const goroutines = 8
	results := make([][]*measure.ComponentResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := range goroutines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g], errs[g] = sess.MeasureAll(units, measure.Options{Concurrency: 2})
		}()
	}
	wg.Wait()
	for g := range goroutines {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i, u := range units {
			sameResult(t, fmt.Sprintf("goroutine %d %s(acct=%t)", g, u.Top, u.UseAccounting), results[g][i], want[i])
		}
	}
	// All 8 goroutines planned every unit, but each distinct signature
	// was synthesized at most once across the whole session.
	s := sess.Stats()
	if s.Planned != goroutines*len(units) {
		t.Errorf("stats %+v: want %d planned", s, goroutines*len(units))
	}
	if s.Synthesized > len(units) {
		t.Errorf("stats %+v: more synthesis flights than distinct units", s)
	}
	if s.Shared != s.Planned-s.Synthesized {
		t.Errorf("stats %+v: shared != planned-synthesized", s)
	}
}
