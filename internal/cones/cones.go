// Package cones extracts combinational logic cones from a netlist and
// computes the paper's FanInLC metric.
//
// Section 4.3 of the µComplexity paper defines FanInLC as follows:
// "Given a primary output (i.e., a signal that reaches a pipeline
// latch), we identify the set of logic gates that produces it starting
// from the preceding pipeline latch (i.e., its logic cone), and count
// all the primary inputs to the cone (i.e., signals directly coming
// from the preceding latch). We then repeat the process for all the
// primary outputs in the design, accumulating the counts."
//
// Concretely: a cone endpoint is every primary output bit, every
// flip-flop or latch data/enable input, and every RAM control/data
// input; cone leaves are primary inputs, flip-flop/latch outputs, and
// RAM read-port outputs. Constants are not leaves (they carry no
// information from a preceding latch). FanInLC is the sum over all
// endpoints of the number of distinct leaves in the endpoint's cone.
//
// The paper approximates this metric from FPGA LUT input counts (see
// internal/fpga); this package computes it exactly, and the two are
// compared in the FanInLC ablation benchmark.
//
// Cones overlap heavily (a register output typically feeds many
// endpoints), so the extraction is organized as a single forward sweep
// rather than an independent graph walk per endpoint: net depths come
// from one pass over the topological order, traversals use
// epoch-stamped visited arrays and reusable scratch buffers instead of
// per-endpoint maps, and every multi-fanout net memoizes its subcone's
// distinct leaf and gate sets so reconvergent regions are expanded
// once and then merged in O(set size) per reference.
package cones

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/scratch"
)

// Cone describes one extracted logic cone.
type Cone struct {
	// Endpoint identifies the cone's root: "out:<name>" for a primary
	// output bit, "ff:<i>:<pin>" for a sequential cell input, or
	// "ram:<name>:<pin>" for a RAM input pin.
	Endpoint string
	// Leaves is the number of distinct cone leaves (primary inputs and
	// sequential/RAM outputs) feeding the endpoint.
	Leaves int
	// Gates is the number of combinational cells inside the cone.
	Gates int
	// Depth is the longest gate chain from any leaf to the endpoint.
	Depth int
}

// Analysis is the result of cone extraction over a netlist.
type Analysis struct {
	Cones []Cone
	// FanInLC is the sum of Leaves over all cones (the paper's
	// metric).
	FanInLC int
	// MaxDepth is the deepest cone.
	MaxDepth int
}

// memo caches the distinct leaf and gate sets of one multi-fanout
// net's subcone. Gates are identified by their output net (each
// combinational cell drives exactly one net), so merging a memo into a
// traversal needs only the net-visited epoch array.
type memo struct {
	leaves []netlist.NetID
	gates  []netlist.NetID // output nets of the subcone's cells
}

// analyzer holds the sweep state: immutable per-net tables computed
// once, plus epoch-stamped scratch reused across every traversal.
type analyzer struct {
	n       *netlist.Netlist
	drivers []int
	leaf    []bool
	depth   []int32
	memos   []memo
	memoIdx []int32 // per-net memo index, -1 when not memoized
	fanout  []int32

	// epoch persists across analyses of a reused workspace and never
	// resets, so stale netEpoch entries (always <= a past epoch) can
	// never collide with a fresh stamp.
	epoch    uint32
	netEpoch []uint32
	stack    []netlist.NetID
	leaves   []netlist.NetID
	gates    []netlist.NetID
}

// Analyze extracts every logic cone of the netlist.
func Analyze(n *netlist.Netlist) *Analysis {
	a := newAnalyzer(n, &Workspace{})
	analysis := &Analysis{}

	cone := func(endpoint string, root netlist.NetID) {
		if root == netlist.Nil {
			return
		}
		leaves, gates := a.collect(root)
		c := Cone{
			Endpoint: endpoint,
			Leaves:   leaves,
			Gates:    gates,
			Depth:    int(a.depthOf(root)),
		}
		analysis.Cones = append(analysis.Cones, c)
		analysis.FanInLC += c.Leaves
		if c.Depth > analysis.MaxDepth {
			analysis.MaxDepth = c.Depth
		}
	}

	for _, p := range n.Outputs {
		cone("out:"+p.Name, p.Net)
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		switch c.Type {
		case netlist.DFF:
			cone(key("ff", ci, "d"), c.In[0])
		case netlist.Latch:
			cone(key("lat", ci, "d"), c.In[0])
			cone(key("lat", ci, "en"), c.In[1])
		}
	}
	for _, r := range n.RAMs {
		for wi, wp := range r.WritePorts {
			cone(key2("ram", r.Name, "wen", wi), wp.En)
			for i, b := range wp.Addr {
				cone(key2("ram", r.Name, itoa(wi)+".waddr", i), b)
			}
			for i, b := range wp.Data {
				cone(key2("ram", r.Name, itoa(wi)+".wdata", i), b)
			}
		}
		for pi, rp := range r.ReadPorts {
			for i, b := range rp.Addr {
				cone(key2("ram", r.Name, itoa(pi)+".raddr", i), b)
			}
		}
	}
	sort.Slice(analysis.Cones, func(i, j int) bool {
		return analysis.Cones[i].Endpoint < analysis.Cones[j].Endpoint
	})
	return analysis
}

// newAnalyzer runs the one-time sweep: leaf classification, the depth
// pass over the topological order, fanout counting, and memo
// construction for every multi-fanout combinational net. The analyzer
// lives inside ws so the per-net tables, traversal scratch, and memos
// carry their capacity from one analysis to the next.
func newAnalyzer(n *netlist.Netlist, ws *Workspace) *analyzer {
	numNets := n.NumNets()
	a := &ws.a
	a.n = n
	a.drivers = n.Drivers()
	scratch.Zero(&a.leaf, numNets)
	scratch.Zero(&a.depth, numNets)
	scratch.Raw(&a.memoIdx, numNets) // fully written below
	scratch.Raw(&a.netEpoch, numNets)
	clear(a.memos[:cap(a.memos)])
	a.memos = a.memos[:0]
	for id := 0; id < numNets; id++ {
		a.memoIdx[id] = -1
		if netlist.NetID(id) == n.Const0 || netlist.NetID(id) == n.Const1 {
			continue
		}
		d := a.drivers[id]
		a.leaf[id] = d < 0 || n.Cells[d].Type.IsSequential()
	}

	order, err := n.TopoOrder()
	if err != nil {
		// A cyclic netlist has no well-defined cone structure; synth
		// validates against this. Leave depths zero and skip memos —
		// collect still terminates because visits are epoch-deduped.
		return a
	}

	// Depth pass: one forward sweep. depthOf(leaf|const) = 0;
	// depth[out] = 1 + max over inputs.
	for _, ci := range order {
		c := &n.Cells[ci]
		max := int32(0)
		for _, in := range c.Inputs() {
			if d := a.depthOf(in); d > max {
				max = d
			}
		}
		a.depth[c.Out] = max + 1
	}

	// Fanout: references to each net as a combinational-cell input or
	// as a cone endpoint root. Nets referenced more than once are the
	// reconvergence points worth memoizing.
	fanout := scratch.Zero(&a.fanout, numNets)
	ref := func(id netlist.NetID) {
		if id != netlist.Nil {
			fanout[id]++
		}
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Type.IsSequential() {
			ref(c.In[0])
			if c.Type == netlist.Latch {
				ref(c.In[1])
			}
			continue
		}
		for _, in := range c.Inputs() {
			ref(in)
		}
	}
	for _, p := range n.Outputs {
		ref(p.Net)
	}
	for _, r := range n.RAMs {
		for _, wp := range r.WritePorts {
			ref(wp.En)
			for _, b := range wp.Addr {
				ref(b)
			}
			for _, b := range wp.Data {
				ref(b)
			}
		}
		for _, rp := range r.ReadPorts {
			for _, b := range rp.Addr {
				ref(b)
			}
		}
	}

	// Memo pass in topological order: each multi-fanout net expands
	// its subcone once, short-circuiting through the memos of deeper
	// shared nets already built.
	for _, ci := range order {
		out := n.Cells[ci].Out
		if fanout[out] < 2 {
			continue
		}
		leaves, gates := a.traverse(out)
		a.memoIdx[out] = int32(len(a.memos))
		ml := ws.slab.Take(len(leaves))
		copy(ml, leaves)
		mg := ws.slab.Take(len(gates))
		copy(mg, gates)
		a.memos = append(a.memos, memo{leaves: ml, gates: mg})
	}
	return a
}

func (a *analyzer) depthOf(id netlist.NetID) int32 {
	if id == a.n.Const0 || id == a.n.Const1 || a.leaf[id] {
		return 0
	}
	return a.depth[id]
}

// collect returns the distinct leaf and gate counts of the cone rooted
// at root.
func (a *analyzer) collect(root netlist.NetID) (leaves, gates int) {
	l, g := a.traverse(root)
	return len(l), len(g)
}

// traverse walks the cone rooted at root and returns its distinct
// leaves and gate-output nets in scratch buffers (valid until the next
// traversal). The root's own memo is never consulted, so the memo pass
// can use traverse to build it.
func (a *analyzer) traverse(root netlist.NetID) (leaves, gates []netlist.NetID) {
	a.epoch++
	epoch := a.epoch
	n := a.n
	stack := append(a.stack[:0], root)
	a.leaves = a.leaves[:0]
	a.gates = a.gates[:0]
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == n.Const0 || id == n.Const1 || a.netEpoch[id] == epoch {
			continue
		}
		if a.leaf[id] {
			a.netEpoch[id] = epoch
			a.leaves = append(a.leaves, id)
			continue
		}
		if mi := a.memoIdx[id]; mi >= 0 && id != root {
			// The memo's gate list contains id itself (every memo root
			// is a gate output), so merging stamps and counts it too.
			m := &a.memos[mi]
			for _, l := range m.leaves {
				if a.netEpoch[l] != epoch {
					a.netEpoch[l] = epoch
					a.leaves = append(a.leaves, l)
				}
			}
			for _, g := range m.gates {
				if a.netEpoch[g] != epoch {
					a.netEpoch[g] = epoch
					a.gates = append(a.gates, g)
				}
			}
			continue
		}
		a.netEpoch[id] = epoch
		d := a.drivers[id]
		if d < 0 {
			continue
		}
		a.gates = append(a.gates, id)
		for _, in := range n.Cells[d].Inputs() {
			stack = append(stack, in)
		}
	}
	a.stack = stack[:0]
	return a.leaves, a.gates
}

func key(kind string, cell int, pin string) string {
	return kind + ":" + itoa(cell) + ":" + pin
}

func key2(kind, name, pin string, bit int) string {
	return kind + ":" + name + ":" + pin + "[" + itoa(bit) + "]"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
