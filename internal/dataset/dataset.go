package dataset

import "fmt"

// Metric identifies one of the measured per-component quantities from
// Table 3 of the paper.
type Metric string

// The metrics of Table 3. DEE1 is not a metric: it is the fitted linear
// combination w1·Stmts + w2·FanInLC (Section 5.1.1).
const (
	Stmts   Metric = "Stmts"   // number of statements in the HDL code
	LoC     Metric = "LoC"     // number of lines in the HDL code
	FanInLC Metric = "FanInLC" // total number of inputs of all logic cones
	Nets    Metric = "Nets"    // number of nets
	Freq    Metric = "Freq"    // frequency for 90nm Stratix-II FPGA (MHz)
	AreaL   Metric = "AreaL"   // logic area in µm²
	PowerD  Metric = "PowerD"  // dynamic power in mW
	PowerS  Metric = "PowerS"  // static power in µW
	AreaS   Metric = "AreaS"   // storage area in µm²
	Cells   Metric = "Cells"   // number of standard cells
	FFs     Metric = "FFs"     // number of flip-flops
)

// AllMetrics lists every Table 3 metric in the column order of Table 4.
var AllMetrics = []Metric{Stmts, LoC, FanInLC, Nets, Freq, AreaL, PowerD, PowerS, AreaS, Cells, FFs}

// Component is one data point: a named component of a project, its
// designer-reported effort, and its measured metrics.
type Component struct {
	Project string  // design team / project name (the random-effect grouping)
	Name    string  // component name within the project
	Effort  float64 // reported design effort in person-months (Table 2)
	Metrics map[Metric]float64
}

// Metric returns the value of metric m, or an error naming the missing
// component/metric pair.
func (c *Component) Metric(m Metric) (float64, error) {
	v, ok := c.Metrics[m]
	if !ok {
		return 0, fmt.Errorf("dataset: component %s-%s has no metric %q", c.Project, c.Name, m)
	}
	return v, nil
}

// Label returns "Project-Name", the row label used in Table 4.
func (c *Component) Label() string { return c.Project + "-" + c.Name }

// Paper returns the 18 components of Table 4 with the reported efforts
// of Table 2 and every published metric value. The slice is freshly
// allocated on each call so callers may mutate it.
//
// Note the two reporting quirks in the paper itself, preserved here:
// Table 2 lists the RAT-Standard effort as 0.3 person-months while
// Table 4's Effort column lists 0.6; and RAT-Sliding as 0.5 vs 1. The
// regression in Section 5 fits the Table 4 column, so that is what
// Effort carries; the Table 2 values are available via ReportedTable2.
func Paper() []Component {
	comps := make([]Component, len(paperRows))
	for i, r := range paperRows {
		comps[i] = Component{
			Project: r.project,
			Name:    r.name,
			Effort:  r.effort,
			Metrics: map[Metric]float64{
				Stmts:   r.stmts,
				LoC:     r.loc,
				FanInLC: r.fanInLC,
				Nets:    r.nets,
				Freq:    r.freq,
				AreaL:   r.areaL,
				PowerD:  r.powerD,
				PowerS:  r.powerS,
				AreaS:   r.areaS,
				Cells:   r.cells,
				FFs:     r.ffs,
			},
		}
	}
	return comps
}

type paperRow struct {
	project, name               string
	effort                      float64
	stmts, loc, fanInLC, nets   float64
	freq, areaL, powerD, powerS float64
	areaS, cells, ffs           float64
}

// paperRows transcribes Table 4 of the paper (column DEE1 excluded —
// DEE1 is a fitted estimate, not a measurement).
var paperRows = []paperRow{
	{"Leon3", "Pipeline", 24, 2070, 2814, 10502, 4299, 56, 50199, 80, 409, 68411, 3586, 1062},
	{"Leon3", "Cache", 6, 1172, 1092, 6325, 1980, 94, 37456, 57, 332, 12556, 3, 210},
	{"Leon3", "MMU", 6, 721, 1943, 3149, 1130, 84, 60136, 23, 287, 112765, 246, 699},
	{"Leon3", "MemCtrl", 6, 938, 1421, 2692, 853, 138, 7394, 5, 2, 11938, 704, 275},
	{"PUMA", "Fetch", 3, 586, 1490, 5192, 1292, 68, 147096, 226, 3513, 555168, 1809, 1786},
	{"PUMA", "Decode", 4, 1998, 3416, 4724, 5662, 65, 78076, 11, 526, 47604, 5189, 464},
	{"PUMA", "ROB", 4, 503, 913, 6965, 9840, 41, 82527, 733, 816, 1022, 9709, 922},
	{"PUMA", "Execute", 12, 3762, 9613, 18260, 10681, 49, 92473, 44, 1370, 119746, 10867, 1725},
	{"PUMA", "Memory", 1, 976, 2251, 5034, 1089, 60, 43418, 80, 602, 115841, 4337, 1549},
	{"IVM", "Fetch", 10, 1432, 4972, 15726, 4914, 71, 212663, 8, 2, 135074, 1859, 1661},
	{"IVM", "Decode", 2, 391, 963, 1044, 504, 104, 2022, 2, 6, 73, 2, 0},
	{"IVM", "Rename", 4, 566, 2519, 3307, 1134, 159, 70146, 1, 1, 26740, 121, 510},
	{"IVM", "Issue", 4, 624, 2704, 8063, 4603, 60, 90388, 2, 1, 68667, 3414, 2729},
	{"IVM", "Execute", 3, 961, 4083, 11045, 4476, 91, 619561, 5, 5, 154655, 940, 0},
	{"IVM", "Memory", 10, 2240, 5308, 19021, 23247, 54, 267753, 73, 2, 625952, 12050, 2510},
	{"IVM", "Retire", 5, 1021, 2278, 6635, 3357, 71, 36100, 2, 1, 50375, 1923, 924},
	{"RAT", "Standard", 0.6, 64, 250, 3889, 2905, 137, 34254, 4, 275, 17603, 2596, 288},
	{"RAT", "Sliding", 1, 78, 334, 5586, 4936, 119, 52210, 10, 459, 60713, 4507, 612},
}

// PaperDEE1Column returns the DEE1 estimates printed in Table 4 (the
// paper's own fitted values), keyed by component label. These are used
// only for cross-checking our fit in tests and EXPERIMENTS.md, never as
// inputs.
func PaperDEE1Column() map[string]float64 {
	return map[string]float64{
		"Leon3-Pipeline": 12.8, "Leon3-Cache": 7.3, "Leon3-MMU": 4.4,
		"Leon3-MemCtrl": 5.4, "PUMA-Fetch": 2.2, "PUMA-Decode": 6.2,
		"PUMA-ROB": 2.2, "PUMA-Execute": 12.6, "PUMA-Memory": 3.3,
		"IVM-Fetch": 8, "IVM-Decode": 1.7, "IVM-Rename": 2.7,
		"IVM-Issue": 3.6, "IVM-Execute": 5.4, "IVM-Memory": 11.6,
		"IVM-Retire": 5, "RAT-Standard": 0.7, "RAT-Sliding": 1,
	}
}

// PaperSigmaEps returns the per-estimator σε from the penultimate row
// of Table 4 (mixed-effects fit, productivity adjustment enabled).
func PaperSigmaEps() map[string]float64 {
	return map[string]float64{
		"DEE1": 0.46, "Stmts": 0.50, "LoC": 0.55, "FanInLC": 0.55,
		"Nets": 0.67, "Freq": 0.94, "AreaL": 1.23, "PowerD": 1.34,
		"PowerS": 1.44, "AreaS": 2.07, "Cells": 2.09, "FFs": 2.14,
	}
}

// PaperSigmaEpsNoRho returns the per-estimator σε from the last row of
// Table 4 (ρi = 1: no productivity adjustment).
func PaperSigmaEpsNoRho() map[string]float64 {
	return map[string]float64{
		"DEE1": 0.53, "Stmts": 0.60, "LoC": 0.69, "FanInLC": 0.82,
		"Nets": 1.08, "Freq": 1.12, "AreaL": 1.35, "PowerD": 1.82,
		"PowerS": 3.21, "AreaS": 2.07, "Cells": 2.55, "FFs": 2.18,
	}
}

// PaperSigmaEpsNoAccounting returns the σε values the paper quotes in
// Section 5.3 for measurements gathered *without* the accounting
// procedure (Figure 6). Only the two values stated numerically in the
// text are included; the rest of Figure 6 is reproduced with our own
// synthetic-design pipeline.
func PaperSigmaEpsNoAccounting() map[string]float64 {
	return map[string]float64{"FanInLC": 1.18, "Nets": 1.07}
}

// ReportedTable2 returns the person-month design efforts exactly as
// printed in Table 2 (see the RAT discrepancy note on Paper).
func ReportedTable2() map[string]float64 {
	return map[string]float64{
		"Leon3-Pipeline": 24, "Leon3-Cache": 6, "Leon3-MMU": 6, "Leon3-MemCtrl": 6,
		"PUMA-Fetch": 3, "PUMA-Decode": 4, "PUMA-ROB": 4, "PUMA-Execute": 12, "PUMA-Memory": 1,
		"IVM-Fetch": 10, "IVM-Decode": 2, "IVM-Rename": 4, "IVM-Issue": 4,
		"IVM-Execute": 3, "IVM-Memory": 10, "IVM-Retire": 5,
		"RAT-Standard": 0.3, "RAT-Sliding": 0.5,
	}
}

// DesignCharacteristic is one row of Table 1.
type DesignCharacteristic struct {
	Characteristic string
	Leon3          string
	PUMA           string
	IVM            string
}

// Table1 returns the processor characteristics of Table 1.
func Table1() []DesignCharacteristic {
	return []DesignCharacteristic{
		{"ISA", "Sparc V8", "PPC subset", "Alpha subset"},
		{"Execution", "In-order", "Out-of-order", "Out-of-order"},
		{"Pipeline stages", "7", "9", "7"},
		{"FE, IS width", "1, 1", "2, 2", "8, 4"},
		{"DI, RE width", "1, 1", "4, 2", "4, 8"},
		{"Branch predictor", "None", "Gshare", "Tournament"},
		{"Caches", "Blocking", "Non-block", "Not modeled"},
		{"Multiproc. support", "Yes", "No", "No"},
		{"HDL Language", "VHDL-89", "Verilog-95", "Verilog-95"},
	}
}

// MetricDescription is one row of Table 3.
type MetricDescription struct {
	Metric      Metric
	Description string
	Tool        string // the tool the paper used; our substitute is in parentheses
}

// Table3 returns the metric definitions of Table 3, annotated with the
// reproduction's substitute measurement path.
func Table3() []MetricDescription {
	return []MetricDescription{
		{FanInLC, "Total number of inputs of all logic cones", "Synplify Pro (internal/fpga + internal/cones)"},
		{LoC, "Number of lines in the HDL code", "- (internal/srcmetrics)"},
		{Stmts, "Number of statements in the HDL code", "- (internal/srcmetrics)"},
		{Nets, "Number of nets", "Design Compiler (internal/synth)"},
		{Cells, "Number of standard cells", "Design Compiler (internal/synth)"},
		{AreaL, "Logic area in µm²", "Design Compiler (internal/synth)"},
		{AreaS, "Storage area in µm²", "Design Compiler (internal/synth)"},
		{PowerD, "Dynamic power in mW", "Design Compiler (internal/power)"},
		{PowerS, "Static power in µW", "Design Compiler (internal/synth)"},
		{Freq, "Frequency for 90nm Stratix-II EP2S90 FPGA", "Synplify Pro (internal/fpga)"},
		{FFs, "Number of flip-flops", "Synplify Pro (internal/synth)"},
	}
}
