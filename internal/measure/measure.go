// Package measure runs the full µComplexity measurement pipeline on
// one module: elaborate → synthesize → optimize, then extract every
// Table 3 metric (software metrics from the source, ASIC metrics from
// the optimized netlist and cell library, FPGA metrics from the LUT
// mapping).
package measure

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cones"
	"repro/internal/dataset"
	"repro/internal/elab"
	"repro/internal/fpga"
	"repro/internal/hdl"
	"repro/internal/power"
	"repro/internal/srcmetrics"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

// Metrics is the full Table 3 metric vector for one measured unit,
// plus the exact-cone FanInLC that the paper's LUT approximation
// stands in for.
type Metrics struct {
	Stmts int
	LoC   int
	// FanInLC is the LUT-input-sum approximation (what the paper
	// reports); FanInLCExact is the true logic-cone fan-in total.
	FanInLC      int
	FanInLCExact int
	Nets         int
	Cells        int
	FFs          int
	FreqMHz      float64
	AreaL        float64 // µm²
	AreaS        float64 // µm²
	PowerD       float64 // mW
	PowerS       float64 // µW
}

// Add accumulates other into m. Freq aggregates as the minimum
// non-zero frequency (the slowest sub-block limits the clock).
func (m *Metrics) Add(other *Metrics) {
	m.Stmts += other.Stmts
	m.LoC += other.LoC
	m.FanInLC += other.FanInLC
	m.FanInLCExact += other.FanInLCExact
	m.Nets += other.Nets
	m.Cells += other.Cells
	m.FFs += other.FFs
	m.AreaL += other.AreaL
	m.AreaS += other.AreaS
	m.PowerD += other.PowerD
	m.PowerS += other.PowerS
	if other.FreqMHz > 0 && (m.FreqMHz == 0 || other.FreqMHz < m.FreqMHz) {
		m.FreqMHz = other.FreqMHz
	}
}

// Value returns the metric by its Table 3 name.
func (m *Metrics) Value(metric dataset.Metric) (float64, error) {
	switch metric {
	case dataset.Stmts:
		return float64(m.Stmts), nil
	case dataset.LoC:
		return float64(m.LoC), nil
	case dataset.FanInLC:
		return float64(m.FanInLC), nil
	case dataset.Nets:
		return float64(m.Nets), nil
	case dataset.Cells:
		return float64(m.Cells), nil
	case dataset.FFs:
		return float64(m.FFs), nil
	case dataset.Freq:
		return m.FreqMHz, nil
	case dataset.AreaL:
		return m.AreaL, nil
	case dataset.AreaS:
		return m.AreaS, nil
	case dataset.PowerD:
		return m.PowerD, nil
	case dataset.PowerS:
		return m.PowerS, nil
	}
	return 0, fmt.Errorf("measure: unknown metric %q", metric)
}

// MetricMap returns all metrics as a dataset-compatible map.
func (m *Metrics) MetricMap() map[dataset.Metric]float64 {
	out := make(map[dataset.Metric]float64, len(dataset.AllMetrics))
	for _, metric := range dataset.AllMetrics {
		v, err := m.Value(metric)
		if err != nil {
			panic(err) // unreachable: AllMetrics is closed
		}
		out[metric] = v
	}
	return out
}

// Options configures a measurement run.
type Options struct {
	Library *stdcell.Library // nil means stdcell.Default180nm()
	FPGA    fpga.Options
	// DedupInstances applies the single-instance rule during lowering
	// (used by internal/accounting).
	DedupInstances bool
	// DisableTemplates turns off template-stamped lowering (see
	// synth.LowerOptions.DisableTemplates). Stamping is bit-identical
	// to direct lowering, so this is excluded from CacheKeyParts, like
	// Concurrency: both modes share cache entries.
	DisableTemplates bool
	// Concurrency bounds the worker pool of any parallelizable step in
	// the measurement (the accounting procedure's candidate probes):
	// 0 means GOMAXPROCS, 1 forces the exact sequential path. Measured
	// metrics are identical for every value.
	Concurrency int
	// Cache, when non-nil, stores measurement results on disk keyed by
	// the design fingerprint, parameter signature, and measurement
	// options, so repeated runs skip elaboration and synthesis
	// entirely. Concurrency is deliberately excluded from the key:
	// results are identical for every worker count.
	Cache *cache.Cache
	// ElabStats, when non-nil, accumulates the session elaboration
	// cache counters of every accounting search this measurement runs
	// (subtree hits/misses/instances reused, point-probe memo
	// hits/misses). Purely observational: excluded from CacheKeyParts
	// and never affects a measured value.
	ElabStats *elab.StatsRecorder
	// Namespace, when non-empty, partitions every cache key this
	// measurement derives — component records, signature records, and
	// dependency graphs alike — into its own namespace: it is mixed
	// into CacheKeyParts, so two namespaces sharing one cache directory
	// never read each other's entries (the daemon's per-tenant
	// isolation). Results are namespace-independent — measurement is a
	// pure function of the design and the other options — and the
	// empty namespace leaves every key exactly as before.
	Namespace string
}

func (o Options) library() *stdcell.Library {
	if o.Library == nil {
		return stdcell.Default180nm()
	}
	return o.Library
}

// CacheKeyParts renders the result-determining options as stable key
// components for internal/cache: the cell library's name and the FPGA
// mapping parameters. Concurrency and the cache handle itself are
// excluded (neither changes any measured value). A non-empty Namespace
// is appended — it does not change any measured value either, but it
// must partition the key space. The empty namespace appends nothing,
// keeping every pre-namespace key bit-identical.
func (o Options) CacheKeyParts() []string {
	f := o.FPGA
	parts := []string{
		"lib=" + o.library().Name,
		fmt.Sprintf("fpga=K%d;%g;%g;%g;%g;%g", f.K, f.ClkToQ, f.LUTDelay, f.RouteDelay, f.Setup, f.RAMAccess),
		fmt.Sprintf("dedup=%t", o.DedupInstances),
	}
	if o.Namespace != "" {
		parts = append(parts, "ns="+o.Namespace)
	}
	return parts
}

// Module measures one module of the design, synthesized standalone
// with the given parameter overrides (nil = declared defaults). The
// software metrics (LoC, Stmts) are measured on the module's own
// source text and are parameter-independent; the synthesis metrics
// cover the module with its full submodule hierarchy flattened.
func Module(design *hdl.Design, top string, overrides map[string]int64, opts Options) (*Metrics, error) {
	mod, err := design.Module(top)
	if err != nil {
		return nil, err
	}
	compute := func() (*Metrics, error) {
		res, err := synth.SynthesizeOpts(design, top, overrides, synth.LowerOptions{
			DedupInstances:   opts.DedupInstances,
			DisableTemplates: opts.DisableTemplates,
		})
		if err != nil {
			return nil, fmt.Errorf("measure: synthesize %s: %w", top, err)
		}
		return fromNetlist(res, mod, opts, nil)
	}
	if opts.Cache == nil {
		return compute()
	}
	// Keyed by the module's transitive subtree sources, not the design
	// fingerprint: an edit outside the subtree leaves the entry warm.
	st, err := design.SubtreeHash(top)
	if err != nil {
		return nil, err
	}
	key := cache.KindKey("module", append([]string{
		st, synth.ParamSignature(top, overrides),
	}, opts.CacheKeyParts()...)...)
	m, _, err := cache.Do(opts.Cache, key, metricsCodec, compute)
	return m, err
}

// SynthMetricsOnly measures only the synthesis-derived metrics of an
// already-synthesized result (used by accounting to avoid re-running
// synthesis).
func SynthMetricsOnly(res *synth.Result, opts Options) *Metrics {
	return synthMetricsWS(res, opts, nil)
}

// synthMetricsWS is SynthMetricsOnly with optional reusable scratch:
// under a workspace the cone, LUT, and power kernels run their
// summary/arena variants, whose aggregates are pinned bit-identical to
// the fresh kernels by their package tests and the session golden
// tests.
func synthMetricsWS(res *synth.Result, opts Options, ws *Workspace) *Metrics {
	m, err := fromNetlist(res, nil, opts, ws)
	if err != nil {
		panic(err) // fromNetlist only errors on source measurement
	}
	return m
}

func fromNetlist(res *synth.Result, mod *hdl.Module, opts Options, ws *Workspace) (*Metrics, error) {
	lib := opts.library()
	nl := res.Optimized
	stats := nl.Stats()
	var fanInExact int
	var mapping *fpga.Mapping
	var pw power.Estimate
	if ws != nil {
		fanInExact = cones.AnalyzeSummary(nl, &ws.cones).FanInLC
		mapping = fpga.MapWS(nl, opts.FPGA, &ws.fpga)
		pw = power.AnalyzeWS(nl, lib, mapping.FreqMHz, &ws.power)
	} else {
		fanInExact = cones.Analyze(nl).FanInLC
		mapping = fpga.Map(nl, opts.FPGA)
		pw = power.Analyze(nl, lib, mapping.FreqMHz)
	}
	areaL, areaS := lib.Areas(nl)

	m := &Metrics{
		FanInLC:      mapping.LUTInputSum,
		FanInLCExact: fanInExact,
		Nets:         stats.Nets,
		Cells:        stats.Cells,
		FFs:          stats.FFs,
		FreqMHz:      mapping.FreqMHz,
		AreaL:        areaL,
		AreaS:        areaS,
		PowerD:       pw.DynamicMW,
		PowerS:       pw.StaticUW,
	}
	if mod != nil {
		sc := srcmetrics.MeasureModule(mod)
		m.Stmts = sc.Stmts
		m.LoC = sc.LoC
	}
	return m, nil
}

// SourceOnly measures just the software metrics of one module.
func SourceOnly(design *hdl.Design, name string) (*Metrics, error) {
	mod, err := design.Module(name)
	if err != nil {
		return nil, err
	}
	sc := srcmetrics.MeasureModule(mod)
	return &Metrics{Stmts: sc.Stmts, LoC: sc.LoC}, nil
}
