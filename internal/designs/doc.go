// Package designs provides synthetic µHDL processor components that
// structurally mirror the 18 components the µComplexity paper measured
// (Table 2): the Leon3 in-order pipeline, cache, MMU, and memory
// controller; the PUMA out-of-order fetch, decode, ROB, execute, and
// memory units; the IVM fetch, decode, rename, issue, execute, memory,
// and retire units; and the two 4-wide Register Alias Table designs.
//
// The paper's original HDL (Leon3 VHDL, PUMA/IVM Verilog) is not
// reproducible here — Leon3 is ~100k lines of GPL VHDL and PUMA/IVM
// were never released — so these analogs serve two purposes:
//
//  1. they exercise the entire measurement pipeline (parse → elaborate
//     → synthesize → metrics) on realistic microarchitectural shapes:
//     pipelines, CAMs, FIFOs, register files, wakeup/select arrays,
//     predictors, and state machines;
//  2. they reproduce the *structure* of the Figure 6 experiment: the
//     IVM-like components make heavy use of replicated instances and
//     parameterized blocks, the PUMA-like ones moderate use, and the
//     Leon3-like ones almost none, matching Section 5.3's explanation
//     of why disabling the accounting procedure hurts the
//     synthesis-metric estimators the most.
//
// Each component carries the person-month effort its real counterpart
// reported (Table 2), so the synthetic corpus can be fitted with the
// same regression machinery.
package designs
