package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func closeTo(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestNormalPDF(t *testing.T) {
	n := NewNormal(0, 1)
	closeTo(t, n.PDF(0), 1/math.Sqrt(2*math.Pi), 1e-12, "stdnormal PDF(0)")
	closeTo(t, n.PDF(1), math.Exp(-0.5)/math.Sqrt(2*math.Pi), 1e-12, "stdnormal PDF(1)")

	n2 := NewNormal(3, 2)
	closeTo(t, n2.PDF(3), 1/(2*math.Sqrt(2*math.Pi)), 1e-12, "N(3,2) PDF(3)")
}

func TestNormalLogPDFMatchesPDF(t *testing.T) {
	n := NewNormal(-1.5, 0.7)
	for _, x := range []float64{-5, -1.5, 0, 2, 10} {
		closeTo(t, n.LogPDF(x), math.Log(n.PDF(x)), 1e-10, "LogPDF vs log(PDF)")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	n := NewNormal(0, 1)
	closeTo(t, n.CDF(0), 0.5, 1e-12, "CDF(0)")
	closeTo(t, n.CDF(1.959963984540054), 0.975, 1e-9, "CDF(1.96)")
	closeTo(t, n.CDF(-1.959963984540054), 0.025, 1e-9, "CDF(-1.96)")
	closeTo(t, n.CDF(1), 0.8413447460685429, 1e-10, "CDF(1)")
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	n := NewNormal(2, 3)
	for _, p := range []float64{0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999} {
		x := n.Quantile(p)
		closeTo(t, n.CDF(x), p, 1e-10, "CDF(Quantile(p))")
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	NewNormal(0, 1).Quantile(0)
}

func TestNewNormalPanicsOnBadSigma(t *testing.T) {
	for _, s := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for sigma=%v", s)
				}
			}()
			NewNormal(0, s)
		}()
	}
}

func TestNormalMoments(t *testing.T) {
	n := NewNormal(5, 1.5)
	closeTo(t, n.Mean(), 5, 0, "Mean")
	closeTo(t, n.Median(), 5, 0, "Median")
	closeTo(t, n.Mode(), 5, 0, "Mode")
	closeTo(t, n.Variance(), 2.25, 1e-12, "Variance")
	closeTo(t, n.StdDev(), 1.5, 0, "StdDev")
}

func TestNormalCDFMonotoneProperty(t *testing.T) {
	n := NewNormal(0, 2)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return n.CDF(lo) <= n.CDF(hi)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileRoundTripProperty(t *testing.T) {
	n := NewNormal(1, 0.5)
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 1e-6 || p >= 1-1e-6 || math.IsNaN(p) {
			return true
		}
		x := n.Quantile(p)
		return math.Abs(n.CDF(x)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
