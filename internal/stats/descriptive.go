package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It panics when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: Variance needs at least 2 samples")
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the p-quantile of xs using linear interpolation
// between order statistics (type-7, the R default). It panics on an
// empty slice or p outside [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: Quantile: p must be in [0,1], got %v", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// GeometricMean returns the geometric mean of xs. All values must be
// positive.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeometricMean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeometricMean requires positive values, got %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Correlation returns the Pearson correlation coefficient between xs
// and ys. It panics when the slices differ in length or have fewer than
// two elements.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation: slices must have equal length")
	}
	if len(xs) < 2 {
		panic("stats: Correlation needs at least 2 samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SpearmanCorrelation returns the Spearman rank correlation between xs
// and ys: the Pearson correlation of their ranks, with ties assigned
// average ranks.
func SpearmanCorrelation(xs, ys []float64) float64 {
	return Correlation(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs, assigning tied values their
// average rank.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group spanning sorted positions [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
