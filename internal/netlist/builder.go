package netlist

import (
	"fmt"

	"repro/internal/scratch"
)

// Builder constructs a Netlist incrementally. It supports net aliasing
// (union-find) so that hierarchical port connections can merge nets
// without buffer cells, and folds constants peephole-style as gates are
// created, which keeps the raw netlist close to what a synthesis tool
// emits after its first sweep.
type Builder struct {
	nets    int      // nets allocated (len of parent/named)
	names   []string // per-net debug names; nil in nameless mode
	parent  []NetID  // union-find
	named   []bool   // representative preference
	cells   []Cell
	rams    []*RAM
	inputs  []PortBit
	outputs []PortBit

	const0, const1 NetID

	// noNames skips debug-name storage entirely: NewNet ignores the
	// name text but keeps its named flag (which steers alias
	// representative selection), so the built netlist is structurally
	// bit-identical to a named build — Netlist.Hash excludes names —
	// with NetName returning "" everywhere, the same state TrimNames
	// leaves behind.
	noNames bool
	ws      *Workspace

	// Alias-op recording for template-stamped lowering (internal/synth):
	// while logDepth > 0 every Alias call appends its raw arguments, so
	// a recorded lowering can be replayed verbatim against a stamped
	// copy's nets. Recordings nest (a template recorded while another is
	// being recorded shares the log); the log is reclaimed when the
	// outermost recording ends.
	logDepth int
	aliasLog []AliasPair
}

// AliasPair is one recorded Alias call: the raw, pre-resolution
// arguments in call order.
type AliasPair struct {
	X, Y NetID
}

// NewBuilder returns an empty builder with the two constant nets
// already allocated.
func NewBuilder() *Builder {
	return NewBuilderWS(nil, false)
}

// NewBuilderWS returns a builder whose internal buffers are drawn from
// a reusable workspace (nil allocates fresh — the NewBuilder path).
// The workspace must not be reused until Build has been called.
// noNames selects the nameless mode described on Builder.noNames.
func NewBuilderWS(ws *Workspace, noNames bool) *Builder {
	b := &Builder{noNames: noNames, ws: ws}
	if ws != nil {
		ws.Reset()
		b.names = ws.bNames[:0]
		b.parent = ws.bParent[:0]
		b.named = ws.bNamed[:0]
		b.cells = ws.bCells[:0]
		b.rams = ws.bRAMs[:0]
		b.inputs = ws.bInputs[:0]
		b.outputs = ws.bOutputs[:0]
		b.aliasLog = ws.bAliasLog[:0]
	}
	b.const0 = b.NewNet("const0")
	b.const1 = b.NewNet("const1")
	return b
}

// Const0 returns the constant-0 net.
func (b *Builder) Const0() NetID { return b.const0 }

// Const1 returns the constant-1 net.
func (b *Builder) Const1() NetID { return b.const1 }

// ConstBit returns Const1 for true, Const0 for false.
func (b *Builder) ConstBit(v bool) NetID {
	if v {
		return b.const1
	}
	return b.const0
}

// NewNet allocates a net. A non-empty name marks it as a user-visible
// signal, preferred as alias representative.
func (b *Builder) NewNet(name string) NetID {
	return b.NewNetPref(name, name != "")
}

// NewNetPref allocates a net with an explicit representative
// preference, decoupled from the name text. Template stamping uses it
// to reproduce a recorded net's named flag even in nameless mode,
// where the recorded name is gone but its preference must survive for
// the union-find to pick identical representatives.
func (b *Builder) NewNetPref(name string, named bool) NetID {
	id := NetID(b.nets)
	b.nets++
	if !b.noNames {
		b.names = append(b.names, name)
	}
	b.parent = append(b.parent, id)
	b.named = append(b.named, named)
	return id
}

// nameAt returns the debug name of a net ("" in nameless mode).
func (b *Builder) nameAt(id NetID) string {
	if b.noNames {
		return ""
	}
	return b.names[id]
}

// Find returns the alias representative of n.
func (b *Builder) Find(n NetID) NetID {
	if n == Nil {
		return Nil
	}
	root := n
	for b.parent[root] != root {
		root = b.parent[root]
	}
	for b.parent[n] != root {
		b.parent[n], n = root, b.parent[n]
	}
	return root
}

// Alias merges nets a and b into one. Constants and named nets win
// representative selection; aliasing both constants together is an
// error (it means the design shorted 0 to 1).
func (b *Builder) Alias(x, y NetID) error {
	if b.logDepth > 0 {
		b.aliasLog = append(b.aliasLog, AliasPair{X: x, Y: y})
	}
	rx, ry := b.Find(x), b.Find(y)
	if rx == ry {
		return nil
	}
	cx := rx == b.const0 || rx == b.const1
	cy := ry == b.const0 || ry == b.const1
	if cx && cy {
		return fmt.Errorf("netlist: aliasing const0 with const1 (contradictory drivers)")
	}
	// Prefer constants, then named nets, as representatives.
	keep, drop := rx, ry
	if cy || (!cx && b.named[ry] && !b.named[rx]) {
		keep, drop = ry, rx
	}
	b.parent[drop] = keep
	return nil
}

// IsConst reports whether net n is (an alias of) a constant, and its
// value.
func (b *Builder) IsConst(n NetID) (val bool, ok bool) {
	r := b.Find(n)
	if r == b.const0 {
		return false, true
	}
	if r == b.const1 {
		return true, true
	}
	return false, false
}

// AddInput declares a top-level input bit.
func (b *Builder) AddInput(name string, n NetID) {
	b.inputs = append(b.inputs, PortBit{Name: name, Net: n})
}

// AddOutput declares a top-level output bit.
func (b *Builder) AddOutput(name string, n NetID) {
	b.outputs = append(b.outputs, PortBit{Name: name, Net: n})
}

// AddRAM registers a RAM macro.
func (b *Builder) AddRAM(r *RAM) { b.rams = append(b.rams, r) }

// NetCount returns the number of nets allocated so far. Together with
// CellCount and PushAliasLog it delimits a recording window for
// template-stamped lowering.
func (b *Builder) NetCount() int { return b.nets }

// NetNameAt returns the debug name net id was allocated with ("" for
// every net in nameless mode).
func (b *Builder) NetNameAt(id NetID) string { return b.nameAt(id) }

// NetNamedAt returns the representative-preference flag net id was
// allocated with (independent of the name text in nameless mode).
func (b *Builder) NetNamedAt(id NetID) bool { return b.named[id] }

// NoNames reports whether the builder runs in nameless mode.
func (b *Builder) NoNames() bool { return b.noNames }

// CellCount returns the number of cells appended so far.
func (b *Builder) CellCount() int { return len(b.cells) }

// CellsFrom returns a read-only view of the cells appended since index
// start. Pins are the raw (pre-resolution) values the cells were
// created with.
func (b *Builder) CellsFrom(start int) []Cell {
	return b.cells[start:len(b.cells):len(b.cells)]
}

// StampCell appends a fully-formed cell without allocating its output
// net: the caller provides every pin, typically renumbered from a
// recorded template. Pins still resolve through the union-find at
// Build time.
func (b *Builder) StampCell(c Cell) { b.cells = append(b.cells, c) }

// PushAliasLog starts (or nests) alias recording and returns the log
// position the caller should later pass to PopAliasLog.
func (b *Builder) PushAliasLog() int {
	b.logDepth++
	return len(b.aliasLog)
}

// PopAliasLog ends the innermost alias recording and returns the
// entries appended since the matching PushAliasLog. The returned slice
// aliases the builder's internal log: it is valid only until the next
// Alias call, so callers must copy what they keep.
func (b *Builder) PopAliasLog(start int) []AliasPair {
	b.logDepth--
	out := b.aliasLog[start:len(b.aliasLog):len(b.aliasLog)]
	if b.logDepth == 0 {
		b.aliasLog = b.aliasLog[:0]
	}
	return out
}

// rawCell appends a cell driving a fresh anonymous net and returns the
// output net.
func (b *Builder) rawCell(t CellType, a, bb, c NetID, clk NetID) NetID {
	out := b.NewNet("")
	b.cells = append(b.cells, Cell{Type: t, In: [3]NetID{a, bb, c}, Clk: clk, Out: out})
	return out
}

// Not returns ~a, folding constants and double inversions.
func (b *Builder) Not(a NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		return b.ConstBit(!v)
	}
	return b.rawCell(Inv, a, Nil, Nil, Nil)
}

// And returns a & c with constant folding and idempotence.
func (b *Builder) And(a, c NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		if !v {
			return b.const0
		}
		return c
	}
	if v, ok := b.IsConst(c); ok {
		if !v {
			return b.const0
		}
		return a
	}
	if b.Find(a) == b.Find(c) {
		return a
	}
	return b.rawCell(And2, a, c, Nil, Nil)
}

// Or returns a | c with constant folding and idempotence.
func (b *Builder) Or(a, c NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		if v {
			return b.const1
		}
		return c
	}
	if v, ok := b.IsConst(c); ok {
		if v {
			return b.const1
		}
		return a
	}
	if b.Find(a) == b.Find(c) {
		return a
	}
	return b.rawCell(Or2, a, c, Nil, Nil)
}

// Xor returns a ^ c with constant folding.
func (b *Builder) Xor(a, c NetID) NetID {
	if v, ok := b.IsConst(a); ok {
		if v {
			return b.Not(c)
		}
		return c
	}
	if v, ok := b.IsConst(c); ok {
		if v {
			return b.Not(a)
		}
		return a
	}
	if b.Find(a) == b.Find(c) {
		return b.const0
	}
	return b.rawCell(Xor2, a, c, Nil, Nil)
}

// Xnor returns ~(a ^ c).
func (b *Builder) Xnor(a, c NetID) NetID { return b.Not(b.Xor(a, c)) }

// Nand returns ~(a & c).
func (b *Builder) Nand(a, c NetID) NetID { return b.Not(b.And(a, c)) }

// Nor returns ~(a | c).
func (b *Builder) Nor(a, c NetID) NetID { return b.Not(b.Or(a, c)) }

// Mux returns s ? bb : a (a when s=0), with constant folding.
func (b *Builder) Mux(s, a, bb NetID) NetID {
	if v, ok := b.IsConst(s); ok {
		if v {
			return bb
		}
		return a
	}
	if b.Find(a) == b.Find(bb) {
		return a
	}
	// mux(s, 0, 1) = s; mux(s, 1, 0) = ~s
	av, aok := b.IsConst(a)
	bv, bok := b.IsConst(bb)
	if aok && bok {
		if !av && bv {
			return s
		}
		if av && !bv {
			return b.Not(s)
		}
	}
	return b.rawCell(Mux2, a, bb, s, Nil)
}

// NewDFF creates a flip-flop capturing d on clk and returns Q.
func (b *Builder) NewDFF(d, clk NetID) NetID {
	return b.rawCell(DFF, d, Nil, Nil, clk)
}

// NewLatch creates a transparent latch (Q follows d while en=1).
func (b *Builder) NewLatch(d, en NetID) NetID {
	return b.rawCell(Latch, d, en, Nil, Nil)
}

// Build resolves aliases, compacts nets, and returns the final Netlist.
// Cell output nets that were aliased to constants are rejected (that
// would be a short).
func (b *Builder) Build() (*Netlist, error) {
	if b.ws != nil {
		// Return the (possibly grown) buffers to the workspace so their
		// capacity carries to the next build, error or not.
		defer func() {
			ws := b.ws
			ws.bNames = b.names[:0]
			ws.bParent = b.parent[:0]
			ws.bNamed = b.named[:0]
			ws.bCells = b.cells[:0]
			ws.bRAMs = b.rams[:0]
			ws.bInputs = b.inputs[:0]
			ws.bOutputs = b.outputs[:0]
			ws.bAliasLog = b.aliasLog[:0]
		}()
	}
	// Resolve all pins through the union-find.
	for i := range b.cells {
		c := &b.cells[i]
		for j := range c.In {
			if c.In[j] != Nil {
				c.In[j] = b.Find(c.In[j])
			}
		}
		if c.Clk != Nil {
			c.Clk = b.Find(c.Clk)
		}
		c.Out = b.Find(c.Out)
	}
	resolve := func(ids []NetID) {
		for i, id := range ids {
			if id != Nil {
				ids[i] = b.Find(id)
			}
		}
	}
	for _, r := range b.rams {
		r.Clk = b.Find(r.Clk)
		for i := range r.WritePorts {
			r.WritePorts[i].En = b.Find(r.WritePorts[i].En)
			resolve(r.WritePorts[i].Addr)
			resolve(r.WritePorts[i].Data)
		}
		for i := range r.ReadPorts {
			resolve(r.ReadPorts[i].Addr)
			resolve(r.ReadPorts[i].Out)
		}
	}
	for i := range b.inputs {
		b.inputs[i].Net = b.Find(b.inputs[i].Net)
	}
	for i := range b.outputs {
		b.outputs[i].Net = b.Find(b.outputs[i].Net)
	}

	// Detect multiple drivers and cells driving constants. Driver
	// identities are packed into one int32 per net ((index<<2 | kind) + 1,
	// 0 = undriven) and only decoded into names when an error is
	// actually reported — this loop runs once per cell on the success
	// path, with no map traffic.
	const (
		drvCell  = 0
		drvRAM   = 1
		drvInput = 2
	)
	pack := func(kind, idx int) int32 { return int32(idx<<2|kind) + 1 }
	describe := func(code int32, net NetID) string {
		code--
		idx := int(code >> 2)
		switch code & 3 {
		case drvCell:
			return fmt.Sprintf("cell %d (%s)", idx, b.cells[idx].Type)
		case drvRAM:
			r := b.rams[idx]
			for pi, rp := range r.ReadPorts {
				for _, o := range rp.Out {
					if o == net {
						return fmt.Sprintf("RAM %s read port %d", r.Name, pi)
					}
				}
			}
			return fmt.Sprintf("RAM %s read port", r.Name)
		default:
			return "input " + b.inputs[idx].Name
		}
	}
	var seen []int32
	if b.ws != nil {
		seen = scratch.Zero(&b.ws.bSeen, b.nets)
	} else {
		seen = make([]int32, b.nets)
	}
	c0, c1 := b.Find(b.const0), b.Find(b.const1)
	for i := range b.cells {
		out := b.cells[i].Out
		if out == c0 || out == c1 {
			return nil, fmt.Errorf("netlist: %s drives a constant net", describe(pack(drvCell, i), out))
		}
		if prev := seen[out]; prev != 0 {
			return nil, fmt.Errorf("netlist: net %q driven by both %s and %s", b.nameAt(out), describe(prev, out), describe(pack(drvCell, i), out))
		}
		seen[out] = pack(drvCell, i)
	}
	for ri, r := range b.rams {
		for _, rp := range r.ReadPorts {
			for _, o := range rp.Out {
				if prev := seen[o]; prev != 0 {
					return nil, fmt.Errorf("netlist: net %q driven by both %s and %s", b.nameAt(o), describe(prev, o), describe(pack(drvRAM, ri), o))
				}
				seen[o] = pack(drvRAM, ri)
			}
		}
	}
	for pi, p := range b.inputs {
		if prev := seen[p.Net]; prev != 0 {
			return nil, fmt.Errorf("netlist: input %s conflicts with %s", p.Name, describe(prev, p.Net))
		}
		seen[p.Net] = pack(drvInput, pi)
	}

	// Compact: renumber only referenced representatives. The remap table
	// is a dense slice (0 = unseen, else compacted id + 1): net ids are
	// contiguous builder allocations, so a map would only add hashing
	// overhead on this hot path.
	var remap []NetID
	var names []string
	if b.ws != nil {
		remap = scratch.Zero(&b.ws.bRemap, b.nets)
		if !b.noNames {
			names = b.ws.bNameOut[:0]
		}
	} else {
		remap = make([]NetID, b.nets)
		names = make([]string, 0, b.nets)
	}
	count := 0
	get := func(id NetID) NetID {
		if id == Nil {
			return Nil
		}
		if v := remap[id]; v != 0 {
			return v - 1
		}
		nid := NetID(count)
		count++
		if !b.noNames {
			names = append(names, b.names[id])
		}
		remap[id] = nid + 1
		return nid
	}
	nl := &Netlist{
		Cells:   make([]Cell, 0, len(b.cells)),
		RAMs:    make([]*RAM, 0, len(b.rams)),
		Inputs:  make([]PortBit, 0, len(b.inputs)),
		Outputs: make([]PortBit, 0, len(b.outputs)),
	}
	nl.Const0 = get(c0)
	nl.Const1 = get(c1)
	for i := range b.cells {
		c := b.cells[i]
		for j := range c.In {
			c.In[j] = get(c.In[j])
		}
		c.Clk = get(c.Clk)
		c.Out = get(c.Out)
		nl.Cells = append(nl.Cells, c)
	}
	for _, r := range b.rams {
		rc := *r
		rc.Clk = get(r.Clk)
		rc.WritePorts = make([]RAMWritePort, len(r.WritePorts))
		for i, wp := range r.WritePorts {
			rc.WritePorts[i] = RAMWritePort{En: get(wp.En), Addr: mapIDs(wp.Addr, get), Data: mapIDs(wp.Data, get)}
		}
		rc.ReadPorts = make([]RAMReadPort, len(r.ReadPorts))
		for i, rp := range r.ReadPorts {
			rc.ReadPorts[i] = RAMReadPort{Addr: mapIDs(rp.Addr, get), Out: mapIDs(rp.Out, get)}
		}
		nl.RAMs = append(nl.RAMs, &rc)
	}
	for _, p := range b.inputs {
		nl.Inputs = append(nl.Inputs, PortBit{Name: p.Name, Net: get(p.Net)})
	}
	for _, p := range b.outputs {
		nl.Outputs = append(nl.Outputs, PortBit{Name: p.Name, Net: get(p.Net)})
	}
	if b.noNames {
		// Same state TrimNames leaves: the count is set, the name
		// tables stay empty, NetName returns "" for every net.
		nl.Nets = count
	} else {
		nl.SetNetNames(names)
		if b.ws != nil {
			b.ws.bNameOut = names[:0]
		}
	}
	return nl, nil
}

func mapIDs(ids []NetID, f func(NetID) NetID) []NetID {
	out := make([]NetID, len(ids))
	for i, id := range ids {
		out[i] = f(id)
	}
	return out
}
