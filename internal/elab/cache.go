package elab

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ParamSignature is the structural signature of a module under one
// resolved parameter assignment: two elaborations with equal signatures
// produce structurally identical instance subtrees and identical
// construct reports, because a module's elaboration depends only on its
// AST and its resolved parameters. internal/synth keys the
// single-instance rule by the same signature, and the session Cache
// below keys subtree memoization by it.
func ParamSignature(module string, params map[string]int64) string {
	names := make([]string, 0, len(params))
	n := len(module)
	for k := range params {
		names = append(names, k)
		n += len(k) + 2
	}
	sort.Strings(names)
	var b strings.Builder
	b.Grow(n + 8*len(names))
	b.WriteString(module)
	for _, k := range names {
		b.WriteByte(';')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(params[k], 10))
	}
	return b.String()
}

// CacheStats counts what a session Cache did: Hits is the number of
// subtree lookups served from the cache, Misses the number elaborated
// fresh (and stored), and InstancesReused the total instance count
// inside reused subtrees — the elaboration work the cache avoided.
type CacheStats struct {
	Hits, Misses    int
	InstancesReused int
}

// Sub returns the counter deltas since an earlier snapshot — how a
// batch that shares one long-lived cache (e.g. a measurement session)
// attributes activity to one span of work.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:            s.Hits - prev.Hits,
		Misses:          s.Misses - prev.Misses,
		InstancesReused: s.InstancesReused - prev.InstancesReused,
	}
}

// Cache memoizes elaborated subtrees within one measurement session
// (one design under one Options limit set — do not share a Cache
// across designs or across different MaxGenIterations/MaxInstances).
// It holds two tables:
//
//   - report fragments keyed by (module, resolved parameters): the
//     construct Report contribution of a whole subtree, independent of
//     where in the hierarchy it sits (construct keys are source
//     positions). Report-only probes of the accounting search reuse
//     these, so a candidate parameter point only walks the subtrees the
//     changed parameter actually reaches.
//
//   - full instance subtrees keyed by (hierarchical path, module,
//     resolved parameters): net names inside a lowered subtree embed
//     the instance path, so a tree is only reused at the exact path it
//     was built for. Across elaborations of the same top module at
//     nearby parameter points the paths coincide, which is what makes
//     the final full elaboration of the minimization winner cost only
//     the subtrees its parameters actually changed.
//
// Entries are immutable once stored (reports are merged by copy, trees
// are shared read-only — elaborated instances are never mutated). All
// methods are safe for concurrent use; concurrent writers of the same
// key store bit-identical values, so the first write wins.
type Cache struct {
	mu      sync.Mutex
	trees   map[treeKey]*treeEntry
	reports map[string]*reportEntry
	stats   CacheStats
}

type treeKey struct {
	path string
	sig  string
}

type treeEntry struct {
	inst  *Instance
	frag  *Report
	count int
}

type reportEntry struct {
	frag  *Report
	count int
}

// NewCache returns an empty session cache.
func NewCache() *Cache {
	return &Cache{
		trees:   map[treeKey]*treeEntry{},
		reports: map[string]*reportEntry{},
	}
}

// Stats returns the hit/miss/reuse tallies so far.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// lookupTree returns the memoized subtree elaborated at (path, sig).
func (c *Cache) lookupTree(path, sig string) (*treeEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.trees[treeKey{path, sig}]
	if ok {
		c.stats.Hits++
		c.stats.InstancesReused += e.count
	}
	return e, ok
}

// lookupReport returns the memoized report fragment of any subtree
// elaborated under signature sig.
func (c *Cache) lookupReport(sig string) (*reportEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.reports[sig]
	if ok {
		c.stats.Hits++
		c.stats.InstancesReused += e.count
	}
	return e, ok
}

// storeTree memoizes a freshly elaborated subtree under both tables
// (a full tree also answers report-only probes at the same signature).
func (c *Cache) storeTree(path, sig string, inst *Instance, frag *Report, count int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Misses++
	k := treeKey{path, sig}
	if _, dup := c.trees[k]; !dup {
		c.trees[k] = &treeEntry{inst: inst, frag: frag, count: count}
	}
	if _, dup := c.reports[sig]; !dup {
		c.reports[sig] = &reportEntry{frag: frag, count: count}
	}
}

// storeReport memoizes the report fragment of a subtree elaborated in
// report-only mode.
func (c *Cache) storeReport(sig string, frag *Report, count int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Misses++
	if _, dup := c.reports[sig]; !dup {
		c.reports[sig] = &reportEntry{frag: frag, count: count}
	}
}

// StatsRecorder aggregates elaboration-cache and probe-memo counters
// across measurement sessions (one accounting search owns one Cache;
// drivers that measure a whole corpus thread a shared recorder through
// measure.Options to report a run-wide total). Safe for concurrent use.
type StatsRecorder struct {
	mu                     sync.Mutex
	stats                  CacheStats
	probeHits, probeMisses int
}

// Add folds one session's cache stats and point-probe memo counters
// into the aggregate.
func (r *StatsRecorder) Add(s CacheStats, probeHits, probeMisses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Hits += s.Hits
	r.stats.Misses += s.Misses
	r.stats.InstancesReused += s.InstancesReused
	r.probeHits += probeHits
	r.probeMisses += probeMisses
}

// Snapshot returns the aggregated cache stats and probe counters.
func (r *StatsRecorder) Snapshot() (stats CacheStats, probeHits, probeMisses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats, r.probeHits, r.probeMisses
}
