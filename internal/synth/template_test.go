package synth_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// TestTemplateStampingBitIdentical proves the tentpole invariant for
// template-stamped lowering: for every corpus component, in both
// dedup modes, the stamped pipeline produces byte-for-byte the same
// raw and optimized netlists as direct lowering with templates
// disabled. Netlist.Hash() keys the persistent measurement cache, so
// any drift here would silently fork cached results from fresh ones.
func TestTemplateStampingBitIdentical(t *testing.T) {
	totalStamped := 0
	for _, c := range designs.All() {
		d, err := designs.Design(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		for _, dedup := range []bool{false, true} {
			lower := func(noTmpl bool) (*netlist.Netlist, *netlist.Netlist, synth.LowerStats) {
				inst, _, err := elab.Elaborate(d, c.Top, nil)
				if err != nil {
					t.Fatalf("%s: %v", c.Label(), err)
				}
				raw, ls, err := synth.LowerOpts(inst, synth.LowerOptions{
					DedupInstances:   dedup,
					DisableTemplates: noTmpl,
				})
				if err != nil {
					t.Fatalf("%s: %v", c.Label(), err)
				}
				opt, _, err := netlist.Optimize(raw)
				if err != nil {
					t.Fatalf("%s: %v", c.Label(), err)
				}
				return raw, opt, ls
			}
			sRaw, sOpt, sStats := lower(false)
			dRaw, dOpt, dStats := lower(true)
			if sRaw.Hash() != dRaw.Hash() {
				t.Errorf("%s dedup=%t: stamped raw hash diverges from direct lowering", c.Label(), dedup)
			}
			if sOpt.Hash() != dOpt.Hash() {
				t.Errorf("%s dedup=%t: stamped optimized hash diverges from direct lowering", c.Label(), dedup)
			}
			if sStats.Deduped != dStats.Deduped {
				t.Errorf("%s dedup=%t: Deduped %d with stamping, %d without",
					c.Label(), dedup, sStats.Deduped, dStats.Deduped)
			}
			if dStats.Stamped != 0 {
				t.Errorf("%s dedup=%t: DisableTemplates reported %d stamped", c.Label(), dedup, dStats.Stamped)
			}
			totalStamped += sStats.Stamped
		}
	}
	// The corpus has repeated child instances; if no template ever
	// fires, stamping is silently disabled and the speedup is gone.
	if totalStamped == 0 {
		t.Error("no instance in the corpus was template-stamped")
	}
	t.Logf("stamped %d instances across the corpus", totalStamped)
}

// TestStampedCopiesMergeUnderCSE exercises the optimizer across
// template boundaries: two stamped copies of the same module fed the
// same inputs must CSE into one, just as directly-lowered copies do.
func TestStampedCopiesMergeUnderCSE(t *testing.T) {
	src := `
module leaf (input [3:0] a, b, output [3:0] y);
  assign y = a ^ b;
endmodule
module pair (input [3:0] a, b, output [3:0] y0, y1);
  leaf u0 (.a(a), .b(b), .y(y0));
  leaf u1 (.a(a), .b(b), .y(y1));
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, "pair", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stamped != 1 {
		t.Errorf("Stamped = %d, want 1 (u1 replays u0's template)", res.Stamped)
	}
	// Identical inputs: the 4 XORs of the stamp merge with the 4 of
	// the original, leaving 4 cells.
	if got := len(res.Optimized.Cells); got != 4 {
		t.Errorf("optimized cells = %d, want 4 after cross-copy CSE", got)
	}
	direct, err := synth.SynthesizeOpts(d, "pair", nil, synth.LowerOptions{DisableTemplates: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized.Hash() != direct.Optimized.Hash() {
		t.Error("stamped and direct optimized netlists diverge")
	}
}

// TestStampingUnconnectedAndConstPorts covers template keying across
// binding shapes. A constant-tied input changes what the body's
// lowering can observe, so it must not share a template with a
// net-bound one; an unconnected output does not (binding happens
// before recording), so it may.
func TestStampingUnconnectedAndConstPorts(t *testing.T) {
	src := `
module leaf (input [1:0] a, b, output [1:0] y, output co);
  assign {co, y} = a + b;
endmodule
module mix (input [1:0] a, b, output [1:0] y0, y1, y2, y3, output c0);
  leaf u0 (.a(a),     .b(b),     .y(y0), .co(c0));
  leaf u1 (.a(a),     .b(b),     .y(y1), .co());
  leaf u2 (.a(2'b00), .b(b),     .y(y2), .co());
  leaf u3 (.a(2'b00), .b(b),     .y(y3), .co());
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, "mix", nil)
	if err != nil {
		t.Fatal(err)
	}
	// u1 replays u0 (unconnected co still binds a fresh net, same
	// pattern) and u3 replays u2 (same constant pattern). u2 must NOT
	// reuse u0's template: its a is constant, a different pattern.
	if res.Stamped != 2 {
		t.Errorf("Stamped = %d, want 2 (u1 and u3 match earlier shapes)", res.Stamped)
	}
	direct, err := synth.SynthesizeOpts(d, "mix", nil, synth.LowerOptions{DisableTemplates: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.Hash() != direct.Raw.Hash() {
		t.Error("stamped and direct raw netlists diverge")
	}
	if res.Optimized.Hash() != direct.Optimized.Hash() {
		t.Error("stamped and direct optimized netlists diverge")
	}
	// Functional check through the simulator: constant-tied copies
	// compute b+0, the full copies a+b.
	g, err := sim.NewGateSim(res.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	g.SetInput("a", 3)
	g.SetInput("b", 2)
	if err := g.Eval(); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]uint64{"y0": 1, "y1": 1, "y2": 2, "y3": 2, "c0": 1} {
		if got, _ := g.Output(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestStampingNestedHierarchy checks that a template recorded for a
// mid-level module replays its whole subtree, including nested
// children, and that RAM macros inside stamped subtrees land at the
// stamped instance's own hierarchical path.
func TestStampingNestedHierarchy(t *testing.T) {
	src := `
module cell (input clk, input [1:0] wa, ra, input [3:0] wd, output [3:0] rd);
  reg [3:0] mem [0:3];
  always @(posedge clk) mem[wa] <= wd;
  assign rd = mem[ra];
endmodule
module bank (input clk, input [1:0] wa, ra, input [3:0] wd, output [3:0] rd);
  cell c0 (.clk(clk), .wa(wa), .ra(ra), .wd(wd), .rd(rd));
endmodule
module top (input clk, input [1:0] wa, ra, input [3:0] wd0, wd1, output [3:0] rd0, rd1);
  bank b0 (.clk(clk), .wa(wa), .ra(ra), .wd(wd0), .rd(rd0));
  bank b1 (.clk(clk), .wa(wa), .ra(ra), .wd(wd1), .rd(rd1));
endmodule`
	d, err := hdl.ParseDesign(map[string]string{"t.v": src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(d, "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stamped != 1 {
		t.Errorf("Stamped = %d, want 1 (b1 replays b0's subtree)", res.Stamped)
	}
	direct, err := synth.SynthesizeOpts(d, "top", nil, synth.LowerOptions{DisableTemplates: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.Hash() != direct.Raw.Hash() {
		t.Error("stamped and direct raw netlists diverge")
	}
	names := map[string]bool{}
	for _, r := range res.Raw.RAMs {
		names[r.Name] = true
	}
	for _, want := range []string{"top.b0.c0.mem", "top.b1.c0.mem"} {
		if !names[want] {
			t.Errorf("missing RAM macro %q; have %v", want, names)
		}
	}
}
