package measure_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gencorpus"
	"repro/internal/measure"
)

// genUnits builds a small generated corpus and its unit list (no
// accounting: the cancellation tests care about synthesis volume, not
// the minimization search).
func genUnits(t *testing.T, n int) (*measure.Session, []measure.Unit) {
	t.Helper()
	corpus, err := gencorpus.Generate(gencorpus.Config{Components: n, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	design, err := corpus.Design(0)
	if err != nil {
		t.Fatal(err)
	}
	units := make([]measure.Unit, len(corpus.Components))
	for i, c := range corpus.Components {
		units[i] = measure.Unit{Top: c.Top}
	}
	return measure.NewSession(design), units
}

// TestMeasureAllCtxPreCanceled: a context already canceled at entry
// yields the context error and synthesizes nothing — no flight is
// registered, so nothing is left behind in the session either.
func TestMeasureAllCtxPreCanceled(t *testing.T) {
	sess, units := genUnits(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.MeasureAllCtx(ctx, units, measure.Options{Concurrency: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled MeasureAllCtx error = %v, want context.Canceled", err)
	}
	if st := sess.Stats(); st.Synthesized != 0 {
		t.Fatalf("pre-canceled call synthesized %d signatures, want 0", st.Synthesized)
	}
	// The same session still measures correctly under a live context.
	if _, err := sess.MeasureAllCtx(context.Background(), units, measure.Options{Concurrency: 1}); err != nil {
		t.Fatalf("post-cancel MeasureAll on the same session: %v", err)
	}
}

// TestRemeasureCtxPreCanceled: the ctx-aware remeasure propagates
// cancellation from its dirty-unit measurement. With no baseline every
// unit is dirty, so the canceled measurement surfaces directly.
func TestRemeasureCtxPreCanceled(t *testing.T) {
	sess, units := genUnits(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := sess.RemeasureCtx(ctx, nil, units, measure.Options{Concurrency: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RemeasureCtx error = %v, want context.Canceled", err)
	}
}

// TestMeasureStreamCtxCancelMidBatch cancels deterministically from
// inside the first yield and pins the whole cancellation contract:
//
//   - the call fails with an error wrapping context.Canceled,
//   - synthesis actually stopped (strictly fewer signatures synthesized
//     than the full batch needs — visible in the session stats, the same
//     probe the daemon's timeout test uses),
//   - abandoned flights were evicted, so a fresh MeasureAll on the same
//     session succeeds and is bit-identical to an untouched reference
//     session (cancellation cannot poison shared state).
func TestMeasureStreamCtxCancelMidBatch(t *testing.T) {
	const n = 24
	sess, units := genUnits(t, n)

	refSess, _ := genUnits(t, n)
	ref, err := refSess.MeasureAll(units, measure.Options{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullSynth := refSess.Stats().Synthesized

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	err = sess.MeasureStreamCtx(ctx, units, measure.Options{Concurrency: 1}, func(i int, res *measure.ComponentResult) error {
		yields++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled MeasureStreamCtx error = %v, want context.Canceled", err)
	}
	if yields == 0 {
		t.Fatal("cancel was supposed to fire from inside the first yield")
	}
	if got := sess.Stats().Synthesized; got >= fullSynth {
		t.Fatalf("cancellation did not stop synthesis: %d signatures synthesized, full batch needs %d", got, fullSynth)
	}

	// Recovery: the same session, fresh context, full batch — results
	// must match the untouched reference exactly.
	got, err := sess.MeasureAll(units, measure.Options{Concurrency: 4})
	if err != nil {
		t.Fatalf("post-cancel MeasureAll: %v", err)
	}
	for i := range units {
		sameKey(t, units[i].Top+" after cancel", project(got[i]), project(ref[i]))
	}
}

// TestNamespacePartitionsCacheKeys: two namespaces over one cache
// directory never share entries, and the namespaced results are
// bit-identical to the namespace-free ones.
func TestNamespacePartitionsCacheKeys(t *testing.T) {
	partsOf := func(ns string) []string {
		return measure.Options{Namespace: ns}.CacheKeyParts()
	}
	base, a, b := partsOf(""), partsOf("tenant-a"), partsOf("tenant-b")
	if len(a) != len(base)+1 || len(b) != len(base)+1 {
		t.Fatalf("namespace did not append exactly one key part: base=%v a=%v", base, a)
	}
	if a[len(a)-1] == b[len(b)-1] {
		t.Fatalf("distinct namespaces produced the same key part %q", a[len(a)-1])
	}
}
