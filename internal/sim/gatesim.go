// Package sim provides simulation for both levels of the µComplexity
// measurement pipeline: a cycle-based RTL interpreter over elaborated
// µHDL (the paper's "RTL Verification" substrate) and a gate-level
// simulator over synthesized netlists, plus random-vector equivalence
// checking between the two. The equivalence checker is how the
// reproduction validates that internal/synth preserves behaviour, which
// in turn makes the synthesis metrics trustworthy.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// GateSim simulates a netlist cycle by cycle. All flip-flops are
// assumed to share one clock domain: Step() captures every DFF and
// performs RAM writes, then re-settles combinational logic. Latches
// are settled transparently inside Eval.
type GateSim struct {
	nl    *netlist.Netlist
	vals  []bool
	order []int
	rams  []ramState

	inputBits  map[string][]netlist.NetID // base name → bit nets (LSB first)
	outputBits map[string][]netlist.NetID
}

type ramState struct {
	r    *netlist.RAM
	data []uint64
}

// NewGateSim prepares a simulator. The netlist must be acyclic in its
// combinational part.
func NewGateSim(nl *netlist.Netlist) (*GateSim, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	g := &GateSim{
		nl:         nl,
		vals:       make([]bool, nl.NumNets()),
		order:      order,
		inputBits:  groupPortBits(nl.Inputs),
		outputBits: groupPortBits(nl.Outputs),
	}
	g.vals[nl.Const1] = true
	for _, r := range nl.RAMs {
		g.rams = append(g.rams, ramState{r: r, data: make([]uint64, r.Depth)})
	}
	return g, nil
}

// groupPortBits groups "name[idx]" port bits under their base name in
// ascending bit order (ports are emitted LSB first by the
// synthesizer).
func groupPortBits(ports []netlist.PortBit) map[string][]netlist.NetID {
	out := map[string][]netlist.NetID{}
	for _, p := range ports {
		base := p.Name
		if i := strings.IndexByte(base, '['); i >= 0 {
			base = base[:i]
		}
		out[base] = append(out[base], p.Net)
	}
	return out
}

// SetInput assigns an input port (by base name) a value. Extra value
// bits beyond the port width are ignored.
func (g *GateSim) SetInput(name string, val uint64) error {
	bits, ok := g.inputBits[name]
	if !ok {
		return fmt.Errorf("sim: no input %q (have %v)", name, sortedNames(g.inputBits))
	}
	for i, nid := range bits {
		g.vals[nid] = (val>>uint(i))&1 == 1
	}
	return nil
}

// Output reads an output port (by base name) as a uint64.
func (g *GateSim) Output(name string) (uint64, error) {
	bits, ok := g.outputBits[name]
	if !ok {
		return 0, fmt.Errorf("sim: no output %q (have %v)", name, sortedNames(g.outputBits))
	}
	var v uint64
	for i, nid := range bits {
		if g.vals[nid] {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// OutputNames returns the base names of the outputs, sorted.
func (g *GateSim) OutputNames() []string { return sortedNames(g.outputBits) }

// InputNames returns the base names of the inputs, sorted.
func (g *GateSim) InputNames() []string { return sortedNames(g.inputBits) }

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (g *GateSim) evalCell(c *netlist.Cell) bool {
	in := func(i int) bool { return g.vals[c.In[i]] }
	switch c.Type {
	case netlist.Inv:
		return !in(0)
	case netlist.Buf:
		return in(0)
	case netlist.And2:
		return in(0) && in(1)
	case netlist.Or2:
		return in(0) || in(1)
	case netlist.Nand2:
		return !(in(0) && in(1))
	case netlist.Nor2:
		return !(in(0) || in(1))
	case netlist.Xor2:
		return in(0) != in(1)
	case netlist.Xnor2:
		return in(0) == in(1)
	case netlist.Mux2:
		if in(2) {
			return in(1)
		}
		return in(0)
	}
	panic(fmt.Sprintf("sim: evalCell on %s", c.Type))
}

func (g *GateSim) readBits(ids []netlist.NetID) uint64 {
	var v uint64
	for i, id := range ids {
		if g.vals[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Eval settles combinational logic, transparent latches, and RAM read
// ports to a fixpoint. It returns an error if the network oscillates.
func (g *GateSim) Eval() error {
	for iter := 0; iter < 100; iter++ {
		// One combinational sweep in topological order.
		for _, ci := range g.order {
			c := &g.nl.Cells[ci]
			g.vals[c.Out] = g.evalCell(c)
		}
		changed := false
		// RAM asynchronous reads.
		for i := range g.rams {
			rs := &g.rams[i]
			for _, rp := range rs.r.ReadPorts {
				addr := g.readBits(rp.Addr)
				var word uint64
				if addr < uint64(len(rs.data)) {
					word = rs.data[addr]
				}
				for b, nid := range rp.Out {
					nv := (word>>uint(b))&1 == 1
					if g.vals[nid] != nv {
						g.vals[nid] = nv
						changed = true
					}
				}
			}
		}
		// Transparent latches.
		for ci := range g.nl.Cells {
			c := &g.nl.Cells[ci]
			if c.Type != netlist.Latch {
				continue
			}
			if g.vals[c.In[1]] { // EN
				nv := g.vals[c.In[0]]
				if g.vals[c.Out] != nv {
					g.vals[c.Out] = nv
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational network did not settle (latch/RAM oscillation)")
}

// Step advances one clock cycle: settle, capture every DFF and RAM
// write, then settle again.
func (g *GateSim) Step() error {
	if err := g.Eval(); err != nil {
		return err
	}
	// Capture all D values first (simultaneous update).
	type upd struct {
		out netlist.NetID
		val bool
	}
	var updates []upd
	for ci := range g.nl.Cells {
		c := &g.nl.Cells[ci]
		if c.Type == netlist.DFF {
			updates = append(updates, upd{out: c.Out, val: g.vals[c.In[0]]})
		}
	}
	// RAM writes sample pre-edge values too. Ports apply in order, so
	// a later enabled port wins on an address collision — matching the
	// sequential semantics of the inferring always block.
	type ramUpd struct {
		rs   *ramState
		addr uint64
		data uint64
	}
	var ramUpds []ramUpd
	for i := range g.rams {
		rs := &g.rams[i]
		for _, wp := range rs.r.WritePorts {
			if g.vals[wp.En] {
				ramUpds = append(ramUpds, ramUpd{
					rs:   rs,
					addr: g.readBits(wp.Addr),
					data: g.readBits(wp.Data),
				})
			}
		}
	}
	for _, u := range updates {
		g.vals[u.out] = u.val
	}
	for _, u := range ramUpds {
		if u.addr < uint64(len(u.rs.data)) {
			u.rs.data[u.addr] = u.data
		}
	}
	return g.Eval()
}

// Reset clears all state (FF outputs, latches, RAM contents) to zero.
func (g *GateSim) Reset() {
	for i := range g.vals {
		g.vals[i] = false
	}
	g.vals[g.nl.Const1] = true
	for i := range g.rams {
		for j := range g.rams[i].data {
			g.rams[i].data[j] = 0
		}
	}
}
