package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/serve"
)

// fuzzServer is shared across fuzz iterations: tiny limits so hostile
// bodies stay cheap, a small session LRU so the fuzzer cannot grow the
// table without bound, and sequential measurement.
var fuzzServer = struct {
	once sync.Once
	h    http.Handler
}{}

func fuzzLimits() serve.Limits {
	return serve.Limits{
		MaxBodyBytes:   1 << 16,
		MaxSourceBytes: 1 << 12,
		MaxSourceFiles: 4,
		MaxUnits:       4,
		MaxTenantLen:   16,
	}
}

func fuzzHandler() http.Handler {
	fuzzServer.once.Do(func() {
		fuzzServer.h = serve.New(serve.Config{
			Concurrency:   1,
			MaxConcurrent: 1,
			MaxSessions:   4,
			Limits:        fuzzLimits(),
		}).Handler()
	})
	return fuzzServer.h
}

// FuzzServeRequest throws hostile bodies at the daemon's full request
// path — JSON parse, validation, and (when the body happens to be a
// well-formed request) parsing and measuring the embedded design. The
// invariants: never panic, always answer with a real status code, and
// a 200 always carries a decodable response. The same bytes also go
// through the binary response decoder, which must reject garbage with
// an error instead of panicking.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"a","sources":{"m.v":"module m (input clk, output reg y); always @(posedge clk) begin y <= ~y; end endmodule"},"units":[{"top":"m"}]}`))
	f.Add([]byte(`{"sources":{"m.v":"module m"},"units":[{"top":"m","accounting":true}]}`))
	f.Add([]byte(`{"sources":{},"units":[]}`))
	f.Add([]byte(`{"tenant":"` + string(make([]byte, 64)) + `","sources":{"a":"b"},"units":[{"top":"x"}]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"sources":{"a":"b"},"units":[{"top":"x"}],"timeout_ms":-5}`))
	f.Add([]byte{0x75, 0x43, 0x01, 0x00}) // codec magic prefix

	f.Fuzz(func(t *testing.T, body []byte) {
		// The parse/validate layer alone must never panic.
		if req, err := serve.ParseRequest(body, fuzzLimits()); err == nil && req == nil {
			t.Fatal("ParseRequest returned nil request and nil error")
		}

		// The full handler path: hostile bodies answer 4xx/5xx, valid
		// ones 200 with a decodable response — never a panic, never a
		// hung handler.
		for _, accept := range []string{serve.ContentTypeJSON, serve.ContentTypeBinary} {
			r := httptest.NewRequest(http.MethodPost, "/measure", bytes.NewReader(body))
			r.Header.Set("Accept", accept)
			w := httptest.NewRecorder()
			fuzzHandler().ServeHTTP(w, r)
			if w.Code < 200 || w.Code > 599 {
				t.Fatalf("handler answered impossible status %d", w.Code)
			}
			if w.Code == http.StatusOK {
				if accept == serve.ContentTypeBinary {
					if _, err := serve.DecodeResponse(w.Body.Bytes()); err != nil {
						t.Fatalf("200 with undecodable binary body: %v", err)
					}
				} else {
					var resp serve.Response
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						t.Fatalf("200 with undecodable JSON body: %v", err)
					}
				}
			}
		}

		// Hostile bytes into the client-side binary decoder: errors,
		// not panics.
		if _, err := serve.DecodeResponse(body); err == nil {
			// A fuzzer-built valid frame is fine — just exercise it.
			_ = err
		}
	})
}
