package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/elab"
	"repro/internal/measure"
)

// CacheMetrics is the shared disk cache's share of /metrics: runtime
// counters plus the memoized on-disk footprint.
type CacheMetrics struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	DecodeErrors int64 `json:"decode_errors"`
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
}

// MetricsSnapshot is the GET /metrics response: admission state,
// request counters, and the aggregated measurement-pipeline statistics
// of every live session.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`

	Requests      int64 `json:"requests"`
	Measures      int64 `json:"measures"`
	Remeasures    int64 `json:"remeasures"`
	UnitsMeasured int64 `json:"units_measured"`
	BadRequests   int64 `json:"bad_requests"`
	Rejected      int64 `json:"rejected_queue_full"`
	Drained       int64 `json:"rejected_draining"`
	Timeouts      int64 `json:"timeouts"`
	Failures      int64 `json:"measurement_failures"`

	Sessions int `json:"sessions"`
	Tenants  int `json:"tenants"`

	// Session aggregates measure.SessionStats over every live session;
	// Elab likewise for the per-session elaboration caches.
	Session measure.SessionStats `json:"session"`
	Elab    elab.CacheStats      `json:"elab"`

	// Cache is nil when the daemon runs without a disk cache.
	Cache *CacheMetrics `json:"cache,omitempty"`
}

// Metrics assembles the current snapshot. Exported (not just an HTTP
// handler) so the daemon smoke test and servetest assertions can read
// it typed.
func (s *Server) Metrics() MetricsSnapshot {
	m := MetricsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		InFlight:      s.gate.Running(),
		Queued:        s.gate.Queued(),
		Requests:      s.ctr.requests.Load(),
		Measures:      s.ctr.measures.Load(),
		Remeasures:    s.ctr.remeasures.Load(),
		UnitsMeasured: s.ctr.unitsMeasured.Load(),
		BadRequests:   s.ctr.badRequests.Load(),
		Rejected:      s.ctr.rejected.Load(),
		Drained:       s.ctr.drained.Load(),
		Timeouts:      s.ctr.timeouts.Load(),
		Failures:      s.ctr.failures.Load(),
	}

	s.smu.Lock()
	m.Sessions = len(s.sessions)
	live := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		live = append(live, e)
	}
	s.smu.Unlock()
	for _, e := range live {
		select {
		case <-e.done:
		default:
			continue // still parsing; nothing to aggregate yet
		}
		if e.sess == nil {
			continue
		}
		st := e.sess.Stats()
		m.Session.Components += st.Components
		m.Session.Planned += st.Planned
		m.Session.Synthesized += st.Synthesized
		m.Session.Shared += st.Shared
		es := e.sess.ElabStats()
		m.Elab.Hits += es.Hits
		m.Elab.Misses += es.Misses
		m.Elab.InstancesReused += es.InstancesReused
	}

	s.tmu.Lock()
	m.Tenants = len(s.tenants)
	s.tmu.Unlock()

	if s.cfg.Cache != nil {
		m.Cache = cacheMetrics(s.cfg.Cache)
	}
	return m
}

func cacheMetrics(c *cache.Cache) *CacheMetrics {
	st := c.Stats()
	cm := &CacheMetrics{
		Hits:         st.Hits,
		Misses:       st.Misses,
		Puts:         st.Puts,
		DecodeErrors: st.DecodeErrors,
	}
	if ds, err := c.DiskStats(); err == nil {
		cm.Entries = ds.Entries
		cm.Bytes = ds.Bytes
	}
	return cm
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "serve: /metrics wants GET")
		return
	}
	w.Header().Set("Content-Type", ContentTypeJSON)
	writeJSON(w, s.Metrics())
}

// handleHealthz answers 200 "ok" while serving and 503 "draining"
// once StartDrain has been called, so a supervisor can pull the
// instance out of rotation before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
