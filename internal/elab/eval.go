package elab

import (
	"fmt"

	"repro/internal/hdl"
)

// ErrNotConstant reports that an expression required at elaboration
// time references a signal.
type ErrNotConstant struct {
	Name string
	Pos  hdl.Pos
}

func (e *ErrNotConstant) Error() string {
	return fmt.Sprintf("%s: %q is not an elaboration-time constant", e.Pos, e.Name)
}

// Eval evaluates a constant expression in env. Arithmetic follows the
// host int64 semantics (µHDL constant expressions are parameter
// arithmetic: widths, counts, bounds), with division/modulo by zero and
// negative shift counts rejected.
func Eval(e hdl.Expr, env *Env) (int64, error) {
	switch v := e.(type) {
	case *hdl.Number:
		if v.CareMask != 0 {
			return 0, fmt.Errorf("%s: wildcard literal is only valid as a casez label", v.Pos)
		}
		return int64(v.Value), nil
	case *hdl.Ident:
		if val, ok := env.Lookup(v.Name); ok {
			return val, nil
		}
		return 0, &ErrNotConstant{Name: v.Name, Pos: v.Pos}
	case *hdl.Unary:
		x, err := Eval(v.X, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case hdl.OpNot:
			return ^x, nil
		case hdl.OpLogNot:
			return b2i(x == 0), nil
		case hdl.OpNeg:
			return -x, nil
		case hdl.OpRedOr, hdl.OpRedXor:
			// On constants, reductions are rarely used; define them over
			// the 64-bit value.
			if v.Op == hdl.OpRedOr {
				return b2i(x != 0), nil
			}
			var p int64
			for u := uint64(x); u != 0; u &= u - 1 {
				p ^= 1
			}
			return p, nil
		default:
			return 0, fmt.Errorf("%s: reduction operator not supported in constant expression", v.Pos)
		}
	case *hdl.Binary:
		l, err := Eval(v.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(v.R, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case hdl.OpAdd:
			return l + r, nil
		case hdl.OpSub:
			return l - r, nil
		case hdl.OpMul:
			return l * r, nil
		case hdl.OpDiv:
			if r == 0 {
				return 0, fmt.Errorf("%s: constant division by zero", v.Pos)
			}
			return l / r, nil
		case hdl.OpMod:
			if r == 0 {
				return 0, fmt.Errorf("%s: constant modulo by zero", v.Pos)
			}
			return l % r, nil
		case hdl.OpAnd:
			return l & r, nil
		case hdl.OpOr:
			return l | r, nil
		case hdl.OpXor:
			return l ^ r, nil
		case hdl.OpXnor:
			return ^(l ^ r), nil
		case hdl.OpLogAnd:
			return b2i(l != 0 && r != 0), nil
		case hdl.OpLogOr:
			return b2i(l != 0 || r != 0), nil
		case hdl.OpEq:
			return b2i(l == r), nil
		case hdl.OpNeq:
			return b2i(l != r), nil
		case hdl.OpLt:
			return b2i(l < r), nil
		case hdl.OpLe:
			return b2i(l <= r), nil
		case hdl.OpGt:
			return b2i(l > r), nil
		case hdl.OpGe:
			return b2i(l >= r), nil
		case hdl.OpShl:
			if r < 0 || r > 63 {
				return 0, fmt.Errorf("%s: constant shift amount %d out of range", v.Pos, r)
			}
			return l << uint(r), nil
		case hdl.OpShr:
			if r < 0 || r > 63 {
				return 0, fmt.Errorf("%s: constant shift amount %d out of range", v.Pos, r)
			}
			return int64(uint64(l) >> uint(r)), nil
		}
		return 0, fmt.Errorf("%s: unsupported constant binary operator", v.Pos)
	case *hdl.Ternary:
		c, err := Eval(v.Cond, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return Eval(v.Then, env)
		}
		return Eval(v.Else, env)
	}
	return 0, fmt.Errorf("elab: expression %s is not supported in constant context", hdl.FormatExpr(e))
}

// IsConstant reports whether e evaluates to a constant in env (signal
// references make it non-constant; structural errors propagate as
// non-constant too, to be reported later by the synthesizer).
func IsConstant(e hdl.Expr, env *Env) bool {
	_, err := Eval(e, env)
	return err == nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
