// Package accounting implements the µComplexity accounting procedure
// of Section 2.2 of the paper:
//
//  1. Account for a single instance of each component — when a design
//     reuses a module, only one instance contributes to the metrics,
//     because designing and verifying a reusable component is a
//     one-time cost.
//  2. Minimize the value of component parameters (the scaling rule) —
//     each parameter is set to the smallest value that does not cause
//     any loops or conditional statements in the RTL to be optimized
//     away, because parameterized code is not much harder to write
//     than its smallest nontrivial instance.
//
// MeasureComponent can run with the procedure enabled (the paper's
// recommended mode) or disabled (every instance, full parameters),
// which is exactly the comparison Figure 6 of the paper draws.
//
// The parameter-minimization search memoizes at two levels, both
// keyed by the structural signature of internal/synth's
// single-instance rule (module + resolved parameters). Point verdicts:
// a candidate that names a design point already probed — which the
// fixpoint iteration does constantly — reuses the stored verdict
// instead of re-elaborating. Subtrees: probes run in elab's
// report-only mode against a session-scoped elaboration cache, so a
// probe skips every submodule subtree whose resolved parameter binding
// was already elaborated and walks only what the candidate's changed
// parameter actually reaches; full instance trees are built once, for
// the point the search ends on, reusing the reference elaboration's
// unchanged subtrees. Candidate probes run on a bounded worker pool
// (measure.Options.Concurrency); the search visits candidates
// lowest-first in batches, so the minimized parameters are identical
// for every worker count.
package accounting

import (
	"fmt"
	"maps"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/measure"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/synth"
)

// elabMemo caches the point verdicts of one (design, module) pair
// across the minimization search. Keys are synth.ParamSignature
// strings, so two candidate maps that resolve to the same design point
// share one entry. No per-point instance trees are retained: probes
// run in report-only mode against a session-scoped subtree cache
// (sess), which also lets the final measurement's full elaboration
// reuse every subtree the winning parameters left unchanged from the
// reference.
type elabMemo struct {
	design *hdl.Design
	module string
	ref    *elab.Report
	sess   *elab.Cache

	mu      sync.Mutex
	verdict map[string]bool
	hits    int
	misses  int
}

// compatible reports whether the candidate parameter point elaborates
// to a structure compatible with the reference elaboration, memoized.
// Elaboration failures count as incompatible, as in the paper's rule
// (the smallest value must still elaborate). Probes are report-only:
// only the construct Report is computed, and subtrees whose resolved
// parameter bindings were already elaborated this session are skipped
// entirely, so a probe costs proportional to what the candidate's
// changed parameter actually reaches.
func (m *elabMemo) compatible(cand map[string]int64) bool {
	sig := synth.ParamSignature(m.module, cand)
	m.mu.Lock()
	if v, ok := m.verdict[sig]; ok {
		m.hits++
		m.mu.Unlock()
		return v
	}
	m.misses++
	m.mu.Unlock()

	_, rep, err := elab.ElaborateOpts(m.design, m.module, cand, elab.Options{
		Cache:      m.sess,
		ReportOnly: true,
	})
	ok := false
	if err == nil {
		ok, _ = m.ref.CompatibleWith(rep)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if v, seen := m.verdict[sig]; seen {
		// A concurrent probe of the same point won the race; both
		// computed the same deterministic verdict.
		return v
	}
	m.verdict[sig] = ok
	return ok
}

// counters returns the memo's hit/miss tallies.
func (m *elabMemo) counters() (hits, misses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// MinimizeParams returns, for each header parameter of the module, the
// smallest value compatible with the module's reference elaboration
// (its declared defaults): no generate loop that ran collapses to zero
// iterations, no constant conditional flips its branch, no memory
// degenerates, and elaboration still succeeds.
//
// The search lowers one parameter at a time, holding the others at
// their current values, and repeats until a fixpoint (parameters may
// interact through derived expressions). Candidate probes run on a
// GOMAXPROCS-bounded pool; use MinimizeParamsN to bound or serialize
// it. The result is identical for every worker count.
func MinimizeParams(design *hdl.Design, module string) (map[string]int64, error) {
	return MinimizeParamsN(design, module, 0)
}

// MinimizeParamsN is MinimizeParams with a concurrency bound
// (0 = GOMAXPROCS, 1 = exact sequential path).
func MinimizeParamsN(design *hdl.Design, module string, concurrency int) (map[string]int64, error) {
	params, _, err := minimizeParams(design, module, concurrency)
	return params, err
}

func minimizeParams(design *hdl.Design, module string, concurrency int) (map[string]int64, *elabMemo, error) {
	mod, err := design.Module(module)
	if err != nil {
		return nil, nil, err
	}
	// The session cache memoizes every subtree elaborated during this
	// search, keyed by resolved parameter binding. The reference
	// elaboration populates it, report-only probes draw on it, and the
	// final full elaboration of the winning point reuses each subtree
	// the minimized parameters did not touch.
	sess := elab.NewCache()
	_, refReport, err := elab.ElaborateOpts(design, module, nil, elab.Options{Cache: sess})
	if err != nil {
		return nil, nil, fmt.Errorf("accounting: reference elaboration of %s: %w", module, err)
	}
	// Start from the declared defaults.
	current := map[string]int64{}
	env := elab.NewEnv(nil)
	for _, p := range mod.Params {
		v, err := elab.Eval(p.Value, env)
		if err != nil {
			return nil, nil, fmt.Errorf("accounting: default of %s.%s: %w", module, p.Name, err)
		}
		current[p.Name] = v
		if err := env.Define(p.Name, v); err != nil {
			return nil, nil, err
		}
	}
	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)

	memo := &elabMemo{
		design:  design,
		module:  module,
		ref:     refReport,
		sess:    sess,
		verdict: map[string]bool{},
	}
	// Seed with the reference point: the defaults are compatible with
	// themselves, and if nothing minimizes, the final measurement's
	// elaboration is answered whole from the session cache.
	memo.verdict[synth.ParamSignature(module, current)] = true

	for round := 0; round < 5; round++ {
		changed := false
		for _, name := range names {
			// Candidates strictly below the current value, ascending;
			// the search keeps the lowest compatible one, exactly like
			// a sequential first-fit scan.
			var below []int64
			for _, v := range candidateValues(current[name]) {
				if v >= current[name] {
					break
				}
				below = append(below, v)
			}
			idx, err := parallel.FirstMatch(concurrency, len(below), func(i int) (bool, error) {
				cand := make(map[string]int64, len(current))
				for k, cv := range current {
					cand[k] = cv
				}
				cand[name] = below[i]
				return memo.compatible(cand), nil
			})
			if err != nil {
				return nil, nil, err
			}
			if idx >= 0 {
				current[name] = below[idx]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return current, memo, nil
}

// candidateValues returns ascending candidate values to try for a
// parameter whose current value is cur: small integers exhaustively,
// then powers of two below it.
func candidateValues(cur int64) []int64 {
	var out []int64
	limit := cur
	if limit > 64 {
		limit = 64
	}
	for v := int64(0); v <= limit; v++ {
		out = append(out, v)
	}
	for v := int64(128); v < cur; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Result carries a component measurement along with the accounting
// details that produced it.
type Result struct {
	Metrics *measure.Metrics
	// UniqueModules lists the distinct modules in the component's
	// hierarchy (sorted).
	UniqueModules []string
	// MinimizedParams holds the scaled top-level parameter values
	// (accounting mode only; nil otherwise).
	MinimizedParams map[string]int64
	// InstanceCount is the elaborated instance count of the component
	// at the parameters actually measured.
	InstanceCount int
	// DedupedInstances is how many duplicate instances the
	// single-instance rule removed (accounting mode only).
	DedupedInstances int
	// Synth is the synthesis of the component at the measured
	// parameter point. Downstream analyses (timing, power sweeps) can
	// reuse it instead of re-running synthesis.
	Synth *synth.Result
	// ElabCacheHits and ElabCacheMisses count memoized versus fresh
	// point verdicts during the parameter-minimization search
	// (accounting mode only).
	ElabCacheHits, ElabCacheMisses int
	// ElabStats counts the session elaboration cache's subtree-level
	// activity — fragments and trees reused versus elaborated fresh,
	// and how many instances the reuse skipped (accounting mode only).
	ElabStats elab.CacheStats
}

// MeasureComponent measures one component (a module plus everything it
// instantiates).
//
// With useAccounting (Section 2.2), the component is measured at its
// minimized parameterization and every repeated (module, parameters)
// subtree is synthesized once — duplicate instances reuse the
// representative's logic structurally during lowering. Without it, the
// component is measured as instantiated: full default parameters,
// every instance counted.
//
// The software metrics (LoC, Stmts) sum each unique module's source
// once in both modes — the paper notes in Section 5.3 that the
// accounting procedure does not affect them.
func MeasureComponent(design *hdl.Design, top string, useAccounting bool, opts measure.Options) (*Result, error) {
	if opts.Cache == nil {
		return measureComponent(design, top, useAccounting, opts)
	}
	eff := opts
	eff.DedupInstances = useAccounting
	key := cache.Key(append([]string{
		"accounting-component", design.Fingerprint(), top, fmt.Sprintf("acct=%t", useAccounting),
	}, eff.CacheKeyParts()...)...)
	rec, _, err := cache.DoEq(opts.Cache, key, func() (*componentRecord, error) {
		res, err := measureComponent(design, top, useAccounting, opts)
		if err != nil {
			return nil, err
		}
		return recordOf(res), nil
	}, compareRecords)
	if err != nil {
		return nil, err
	}
	return rec.toResult(), nil
}

// componentRecord is the cacheable projection of a Result: everything
// downstream consumers read (metrics, accounting details, and the
// optimized netlist that timing analysis reuses), without the live
// elaboration trees a fresh synthesis also carries.
type componentRecord struct {
	Metrics          *measure.Metrics
	UniqueModules    []string
	MinimizedParams  map[string]int64
	InstanceCount    int
	DedupedInstances int
	// ElabCacheHits/Misses and ElabStats describe the run that
	// populated the entry (they depend on probe scheduling, not on the
	// result).
	ElabCacheHits, ElabCacheMisses int
	ElabStats                      elab.CacheStats
	Optimized                      *netlist.Netlist
}

func recordOf(res *Result) *componentRecord {
	return &componentRecord{
		Metrics:          res.Metrics,
		UniqueModules:    res.UniqueModules,
		MinimizedParams:  res.MinimizedParams,
		InstanceCount:    res.InstanceCount,
		DedupedInstances: res.DedupedInstances,
		ElabCacheHits:    res.ElabCacheHits,
		ElabCacheMisses:  res.ElabCacheMisses,
		ElabStats:        res.ElabStats,
		Optimized:        res.Synth.Optimized,
	}
}

func (r *componentRecord) toResult() *Result {
	return &Result{
		Metrics:          r.Metrics,
		UniqueModules:    r.UniqueModules,
		MinimizedParams:  r.MinimizedParams,
		InstanceCount:    r.InstanceCount,
		DedupedInstances: r.DedupedInstances,
		ElabCacheHits:    r.ElabCacheHits,
		ElabCacheMisses:  r.ElabCacheMisses,
		ElabStats:        r.ElabStats,
		Synth:            &synth.Result{Optimized: r.Optimized},
	}
}

// compareRecords is the cache's verify-mode comparator: every
// paper-facing value must match bit-for-bit; the elaboration-memo
// counters are scheduling-dependent and excluded.
func compareRecords(cached, fresh *componentRecord) string {
	switch {
	case *cached.Metrics != *fresh.Metrics:
		return fmt.Sprintf("metrics differ: cached %+v, fresh %+v", *cached.Metrics, *fresh.Metrics)
	case !maps.Equal(cached.MinimizedParams, fresh.MinimizedParams):
		return fmt.Sprintf("minimized parameters differ: cached %v, fresh %v", cached.MinimizedParams, fresh.MinimizedParams)
	case cached.InstanceCount != fresh.InstanceCount:
		return fmt.Sprintf("instance count differs: cached %d, fresh %d", cached.InstanceCount, fresh.InstanceCount)
	case cached.DedupedInstances != fresh.DedupedInstances:
		return fmt.Sprintf("deduped instances differ: cached %d, fresh %d", cached.DedupedInstances, fresh.DedupedInstances)
	case cached.Optimized.Hash() != fresh.Optimized.Hash():
		return "optimized netlist structure differs"
	}
	return ""
}

func measureComponent(design *hdl.Design, top string, useAccounting bool, opts measure.Options) (*Result, error) {
	modules, err := design.TransitiveModules(top)
	if err != nil {
		return nil, err
	}
	res := &Result{UniqueModules: modules}

	var inst *elab.Instance
	var report *elab.Report
	if useAccounting {
		params, memo, err := minimizeParams(design, top, opts.Concurrency)
		if err != nil {
			return nil, err
		}
		res.MinimizedParams = params
		// The search probed candidates in report-only mode; the full
		// instance tree is materialized only here, for the point the
		// search ended on, reusing every subtree the minimized
		// parameters left unchanged from the reference elaboration.
		inst, report, err = elab.ElaborateOpts(design, top, params, elab.Options{Cache: memo.sess})
		if err != nil {
			return nil, err
		}
		res.ElabCacheHits, res.ElabCacheMisses = memo.counters()
		res.ElabStats = memo.sess.Stats()
		if opts.ElabStats != nil {
			opts.ElabStats.Add(res.ElabStats, res.ElabCacheHits, res.ElabCacheMisses)
		}
	} else {
		inst, report, err = elab.Elaborate(design, top, nil)
		if err != nil {
			return nil, err
		}
	}
	res.InstanceCount = inst.CountInstances()

	mopts := opts
	mopts.DedupInstances = useAccounting
	synres, err := synth.SynthesizeInstance(inst, report, synth.LowerOptions{
		DedupInstances:   useAccounting,
		DisableTemplates: opts.DisableTemplates,
	})
	if err != nil {
		return nil, err
	}
	res.Synth = synres
	res.DedupedInstances = synres.Deduped
	m := measure.SynthMetricsOnly(synres, mopts)

	// Software metrics: each unique module's source once.
	for _, name := range modules {
		src, err := measure.SourceOnly(design, name)
		if err != nil {
			return nil, err
		}
		m.Stmts += src.Stmts
		m.LoC += src.LoC
	}
	res.Metrics = m
	return res, nil
}
