package measure

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/elab"
	"repro/internal/netlist"
)

// Binary codecs for the two types the disk cache persists: the full
// component record (metrics + accounting details + the optimized
// netlist timing analysis reuses) and the bare metric vector of
// measure.Module. Explicit field-by-field encoders over
// internal/codec's primitives — what encoding/gob did by reflection,
// without the reflection. Each payload opens with its own structure
// version byte so the layout can evolve under one cache schema.

const (
	metricsVersion = 1
	recordVersion  = 1
	sigVersion     = 1
)

// metricsCodec persists *Metrics (the measure.Module cache entries).
var metricsCodec = codec.Codec[*Metrics]{
	Name: "measure.Metrics",
	Append: func(dst []byte, m *Metrics) []byte {
		dst = codec.AppendByte(dst, metricsVersion)
		return appendMetrics(dst, m)
	},
	Decode: func(r *codec.Reader) (*Metrics, error) {
		if v := r.Byte(); r.Err() == nil && v != metricsVersion {
			return nil, fmt.Errorf("%w: metrics structure version %d, want %d", codec.ErrCorrupt, v, metricsVersion)
		}
		return decodeMetrics(r)
	},
}

func appendMetrics(dst []byte, m *Metrics) []byte {
	dst = codec.AppendVarint(dst, int64(m.Stmts))
	dst = codec.AppendVarint(dst, int64(m.LoC))
	dst = codec.AppendVarint(dst, int64(m.FanInLC))
	dst = codec.AppendVarint(dst, int64(m.FanInLCExact))
	dst = codec.AppendVarint(dst, int64(m.Nets))
	dst = codec.AppendVarint(dst, int64(m.Cells))
	dst = codec.AppendVarint(dst, int64(m.FFs))
	dst = codec.AppendFloat64(dst, m.FreqMHz)
	dst = codec.AppendFloat64(dst, m.AreaL)
	dst = codec.AppendFloat64(dst, m.AreaS)
	dst = codec.AppendFloat64(dst, m.PowerD)
	return codec.AppendFloat64(dst, m.PowerS)
}

func decodeMetrics(r *codec.Reader) (*Metrics, error) {
	m := &Metrics{
		Stmts:        int(r.Varint()),
		LoC:          int(r.Varint()),
		FanInLC:      int(r.Varint()),
		FanInLCExact: int(r.Varint()),
		Nets:         int(r.Varint()),
		Cells:        int(r.Varint()),
		FFs:          int(r.Varint()),
		FreqMHz:      r.Float64(),
		AreaL:        r.Float64(),
		AreaS:        r.Float64(),
		PowerD:       r.Float64(),
		PowerS:       r.Float64(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// sigRecord is the cacheable outcome of synthesizing one signature —
// one (top module, resolved parameters) design point: the
// synthesis-derived metrics (source sums are added per unit at
// assembly), the elaborated instance count, the dedup removals, and
// the optimized netlist. It is the disk form of a Session flight-table
// entry, keyed by the design point's subtree sources ("sig" entries),
// so a remeasurement whose subtree is unchanged skips elaboration and
// synthesis entirely even in a fresh process.
type sigRecord struct {
	Metrics       *Metrics
	InstanceCount int
	Deduped       int
	Optimized     *netlist.Netlist
}

// sigRecordCodec persists *sigRecord (the "sig" cache entries).
var sigRecordCodec = codec.Codec[*sigRecord]{
	Name: "measure.sigRecord",
	Append: func(dst []byte, rec *sigRecord) []byte {
		dst = codec.AppendByte(dst, sigVersion)
		dst = codec.AppendBool(dst, rec.Metrics != nil)
		if rec.Metrics != nil {
			dst = appendMetrics(dst, rec.Metrics)
		}
		dst = codec.AppendVarint(dst, int64(rec.InstanceCount))
		dst = codec.AppendVarint(dst, int64(rec.Deduped))
		dst = codec.AppendBool(dst, rec.Optimized != nil)
		if rec.Optimized != nil {
			dst = codec.AppendNetlist(dst, rec.Optimized)
		}
		return dst
	},
	Decode: func(r *codec.Reader) (*sigRecord, error) {
		if v := r.Byte(); r.Err() == nil && v != sigVersion {
			return nil, fmt.Errorf("%w: sig record structure version %d, want %d", codec.ErrCorrupt, v, sigVersion)
		}
		rec := &sigRecord{}
		if r.Bool() {
			m, err := decodeMetrics(r)
			if err != nil {
				return nil, err
			}
			rec.Metrics = m
		}
		rec.InstanceCount = int(r.Varint())
		rec.Deduped = int(r.Varint())
		if r.Bool() && r.Err() == nil {
			opt, err := codec.DecodeNetlist(r)
			if err != nil {
				return nil, err
			}
			rec.Optimized = opt
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return rec, nil
	},
}

// compareSigRecords is the verify-mode comparator for "sig" entries:
// every field is result-determining, so all must match.
func compareSigRecords(cached, fresh *sigRecord) string {
	switch {
	case *cached.Metrics != *fresh.Metrics:
		return fmt.Sprintf("synthesis metrics differ: cached %+v, fresh %+v", *cached.Metrics, *fresh.Metrics)
	case cached.InstanceCount != fresh.InstanceCount:
		return fmt.Sprintf("instance count differs: cached %d, fresh %d", cached.InstanceCount, fresh.InstanceCount)
	case cached.Deduped != fresh.Deduped:
		return fmt.Sprintf("deduped instances differ: cached %d, fresh %d", cached.Deduped, fresh.Deduped)
	case cached.Optimized.Hash() != fresh.Optimized.Hash():
		return "optimized netlist structure differs"
	}
	return ""
}

// recordCodec persists *componentRecord — the shape both
// MeasureComponent and Session.MeasureAll store and serve. The
// MinimizedParams map is written in sorted key order so identical
// records encode to identical bytes (the cache's verify mode and the
// golden tests rely on byte-stable encodes).
var recordCodec = codec.Codec[*componentRecord]{
	Name: "measure.componentRecord",
	Append: func(dst []byte, rec *componentRecord) []byte {
		dst = codec.AppendByte(dst, recordVersion)
		dst = codec.AppendBool(dst, rec.Metrics != nil)
		if rec.Metrics != nil {
			dst = appendMetrics(dst, rec.Metrics)
		}
		dst = codec.AppendUvarint(dst, uint64(len(rec.UniqueModules)))
		for _, name := range rec.UniqueModules {
			dst = codec.AppendString(dst, name)
		}
		dst = codec.AppendUvarint(dst, uint64(len(rec.MinimizedParams)))
		names := make([]string, 0, len(rec.MinimizedParams))
		for name := range rec.MinimizedParams {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			dst = codec.AppendString(dst, name)
			dst = codec.AppendVarint(dst, rec.MinimizedParams[name])
		}
		dst = codec.AppendVarint(dst, int64(rec.InstanceCount))
		dst = codec.AppendVarint(dst, int64(rec.DedupedInstances))
		dst = codec.AppendVarint(dst, int64(rec.ElabCacheHits))
		dst = codec.AppendVarint(dst, int64(rec.ElabCacheMisses))
		dst = codec.AppendVarint(dst, int64(rec.ElabStats.Hits))
		dst = codec.AppendVarint(dst, int64(rec.ElabStats.Misses))
		dst = codec.AppendVarint(dst, int64(rec.ElabStats.InstancesReused))
		dst = codec.AppendBool(dst, rec.Optimized != nil)
		if rec.Optimized != nil {
			dst = codec.AppendNetlist(dst, rec.Optimized)
		}
		return dst
	},
	Decode: func(r *codec.Reader) (*componentRecord, error) {
		if v := r.Byte(); r.Err() == nil && v != recordVersion {
			return nil, fmt.Errorf("%w: record structure version %d, want %d", codec.ErrCorrupt, v, recordVersion)
		}
		rec := &componentRecord{}
		if r.Bool() {
			m, err := decodeMetrics(r)
			if err != nil {
				return nil, err
			}
			rec.Metrics = m
		}
		if n := r.Count(1); n > 0 {
			rec.UniqueModules = make([]string, n)
			for i := range rec.UniqueModules {
				rec.UniqueModules[i] = r.String()
			}
		}
		if n := r.Count(2); n > 0 {
			rec.MinimizedParams = make(map[string]int64, n)
			for i := 0; i < n; i++ {
				name := r.String()
				rec.MinimizedParams[name] = r.Varint()
				if r.Err() != nil {
					return nil, r.Err()
				}
			}
		}
		rec.InstanceCount = int(r.Varint())
		rec.DedupedInstances = int(r.Varint())
		rec.ElabCacheHits = int(r.Varint())
		rec.ElabCacheMisses = int(r.Varint())
		rec.ElabStats = elab.CacheStats{
			Hits:            int(r.Varint()),
			Misses:          int(r.Varint()),
			InstancesReused: int(r.Varint()),
		}
		var opt *netlist.Netlist
		if r.Bool() && r.Err() == nil {
			var err error
			opt, err = codec.DecodeNetlist(r)
			if err != nil {
				return nil, err
			}
		}
		rec.Optimized = opt
		if err := r.Err(); err != nil {
			return nil, err
		}
		return rec, nil
	},
}
