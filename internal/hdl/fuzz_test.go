package hdl_test

import (
	"sort"
	"testing"

	"repro/internal/designs"
	"repro/internal/hdl"
)

// FuzzParseDesign throws arbitrary source text at the parser and pins
// two properties on every input:
//
//  1. the parser never panics — malformed input must come back as a
//     *ParseError / *LexError, not a crash;
//  2. accepted input round-trips: printing each parsed module and
//     re-parsing the printed text succeeds and reaches the printer's
//     fixpoint (Format(reparse(Format(m))) == Format(m)), which is the
//     printable witness that the re-parsed AST is the same tree.
//
// The corpus is seeded with every bundled design source, so each
// construct the synthetic corpus exercises (generate loops, non-ANSI
// headers, casez wildcards, memories, replication, ...) is a mutation
// starting point.
func FuzzParseDesign(f *testing.F) {
	srcs := designs.Sources()
	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Add(srcs[name])
	}
	// A few handwritten seeds for shapes the corpus uses sparsely.
	f.Add("module m; endmodule")
	f.Add("module m #(parameter N = 4) (input [N-1:0] a, output y);\n  assign y = ^a;\nendmodule")
	f.Add("module m (a, y); input a; output reg y;\n  always @(posedge a) y <= ~y;\nendmodule")
	f.Add("module m (input [3:0] a, output reg y);\n  always @(*) casez (a) 4'b1??0: y = 1; default: y = 0; endcase\nendmodule")
	f.Add("module m (input a, output [7:0] y);\n  assign y = {8{a}};\nendmodule")
	f.Add("module m; wire w; genvar i; generate for (i = 0; i < 3; i = i + 1) begin : g end endgenerate endmodule")

	f.Fuzz(func(t *testing.T, src string) {
		d, err := hdl.ParseDesign(map[string]string{"fuzz.v": src})
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		for _, file := range d.Files {
			for _, m := range file.Modules {
				printed := hdl.Format(m)
				rf, err := hdl.Parse("printed.v", printed)
				if err != nil {
					t.Fatalf("printed form of accepted module %s does not re-parse: %v\ninput:\n%s\nprinted:\n%s",
						m.Name, err, src, printed)
				}
				var rm *hdl.Module
				for _, cand := range rf.Modules {
					if cand.Name == m.Name {
						rm = cand
					}
				}
				if rm == nil {
					t.Fatalf("printed form of %s lost the module\nprinted:\n%s", m.Name, printed)
				}
				if again := hdl.Format(rm); again != printed {
					t.Fatalf("printer fixpoint violated for %s:\nfirst:\n%s\nsecond:\n%s\ninput:\n%s",
						m.Name, printed, again, src)
				}
			}
		}
	})
}
