package elab

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/hdl"
)

// Binary codec for report fragments — the position-invariant
// elaboration signatures the session cache keys subtrees by. Reports
// are what a measurement service would replicate between nodes next to
// cached netlists (a compatibility verdict needs the report, not the
// instance tree), so they share the cache's wire encoding. Constructs
// are written in sorted key order and branch sets in sorted arm order:
// identical reports encode to identical bytes regardless of map
// iteration order.

const reportVersion = 1

// AppendReport appends the binary encoding of rep (which must be
// non-nil; an empty report encodes as a zero construct count).
func AppendReport(dst []byte, rep *Report) []byte {
	dst = codec.AppendByte(dst, reportVersion)
	keys := make([]ConstructKey, 0, len(rep.Constructs))
	for k := range rep.Constructs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
	dst = codec.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		c := rep.Constructs[k]
		dst = codec.AppendString(dst, k.Kind)
		dst = codec.AppendString(dst, k.Pos.File)
		dst = codec.AppendVarint(dst, int64(k.Pos.Line))
		dst = codec.AppendVarint(dst, int64(k.Pos.Col))
		dst = codec.AppendString(dst, c.Kind)
		dst = codec.AppendBool(dst, c.Alive)
		dst = codec.AppendBool(dst, c.NonConst)
		arms := make([]string, 0, len(c.Branches))
		for arm := range c.Branches {
			arms = append(arms, arm)
		}
		sort.Strings(arms)
		dst = codec.AppendUvarint(dst, uint64(len(arms)))
		for _, arm := range arms {
			dst = codec.AppendString(dst, arm)
			dst = codec.AppendBool(dst, c.Branches[arm])
		}
	}
	return dst
}

// DecodeReport reads one report from r, erroring (never panicking) on
// malformed input. Maps stay nil when empty, matching how elaboration
// builds them lazily.
func DecodeReport(r *codec.Reader) (*Report, error) {
	if v := r.Byte(); r.Err() == nil && v != reportVersion {
		return nil, fmt.Errorf("%w: report structure version %d, want %d", codec.ErrCorrupt, v, reportVersion)
	}
	rep := &Report{}
	n := r.Count(8)
	if n > 0 {
		rep.Constructs = make(map[ConstructKey]Construct, n)
	}
	for i := 0; i < n; i++ {
		var k ConstructKey
		var c Construct
		k.Kind = r.String()
		k.Pos = hdl.Pos{File: r.String(), Line: int(r.Varint()), Col: int(r.Varint())}
		c.Kind = r.String()
		c.Alive = r.Bool()
		c.NonConst = r.Bool()
		arms := r.Count(2)
		if arms > 0 {
			c.Branches = make(map[string]bool, arms)
		}
		for j := 0; j < arms; j++ {
			arm := r.String()
			c.Branches[arm] = r.Bool()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		rep.Constructs[k] = c
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// ReportCodec is the Codec binding for *Report.
var ReportCodec = codec.Codec[*Report]{
	Name:   "elab.Report",
	Append: AppendReport,
	Decode: DecodeReport,
}
